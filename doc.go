// Package nullcqa is a from-scratch Go implementation of
//
//	Loreto Bravo and Leopoldo Bertossi,
//	"Semantically Correct Query Answers in the Presence of Null Values",
//	EDBT 2006 (arXiv cs/0604076).
//
// It provides, stdlib-only:
//
//   - a relational engine over a domain with a distinguished null constant;
//   - the paper's integrity-constraint language (universal, referential,
//     denial/check and NOT NULL-constraints) with the relevant-attribute
//     analysis A(ψ) of Definition 2;
//   - the null-aware satisfaction semantics |=_N of Definitions 4–5,
//     together with classical FO, the all-exempt semantics of the paper's
//     [10], and the SQL:2003 simple/partial/full-match semantics for
//     comparison;
//   - the null-introducing repair semantics of Definitions 6–7, with a
//     complete repair enumerator, the deletion-preferring class Rep_d, and
//     the classic Arenas–Bertossi–Chomicki baseline;
//   - dependency graphs and the RIC-acyclicity test of Definition 1;
//   - a disjunctive logic-programming engine (grounder + stable models) and
//     the repair programs of Definition 9, including head-cycle-freeness
//     (Theorem 5) and the shift transformation;
//   - consistent query answering (Definition 8) for safe unions of
//     conjunctive queries with negation, by repair intersection or by
//     cautious stable-model reasoning.
//
// The facade is session-first: NewSession opens a persistent (D, IC)
// pair with O(|Δ|) updates and maintained standing queries, the ...Ctx
// one-shots take a context.Context whose cancellation aborts enumeration,
// and failures surface as typed errors (*ParseError with line/column;
// ErrStateLimit, ErrCandidateLimit, ErrConflictingSet,
// ErrInconsistentUnrepairable via errors.Is). cmd/cqad serves the same
// sessions to many tenants over HTTP/JSON (see README.md and DESIGN.md
// §11).
//
// The subpackage internal/experiments reproduces every worked example and
// figure of the paper; see DESIGN.md and EXPERIMENTS.md.
package nullcqa

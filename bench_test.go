package nullcqa_test

// One benchmark per experiment of DESIGN.md's index (E* = paper examples,
// C* = complexity experiments). Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks exercise exactly the code paths the experiments in
// internal/experiments validate; EXPERIMENTS.md records the correspondence.

import (
	"context"
	"fmt"
	"testing"

	nullcqa "repro"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/ground"
	"repro/internal/nullsem"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/repairprog"
	"repro/internal/session"
	"repro/internal/stable"
	"repro/internal/value"
)

// --- shared workloads -----------------------------------------------------

func example5DB() (*relational.Instance, *constraint.Set) {
	return parser.MustInstance(`
			course(cs27, 21, w04).
			course(cs18, 34, null).
			course(cs50, null, w05).
			exp(21, cs27, 3).
			exp(34, cs18, null).
			exp(45, cs32, 2).
		`), parser.MustConstraints(`
			course(Code, Id, Term) -> exp(Id, Code, Times).
			exp(I, C, T1), exp(I, C, T2) -> T1 = T2.
			exp(I, C, T), isnull(I) -> false.
			exp(I, C, T), isnull(C) -> false.
		`)
}

func example19DB() (*relational.Instance, *constraint.Set) {
	return parser.MustInstance(`r(a, b). r(a, c). s(e, f). s(null, a).`),
		parser.MustConstraints(`
			r(X, Y), r(X, Z) -> Y = Z.
			s(U, V) -> r(V, W).
			r(X, Y), isnull(X) -> false.
		`)
}

func courseStudentDB(extraViolations int) (*relational.Instance, *constraint.Set) {
	d := parser.MustInstance(`
		course(21, c15).
		course(34, c18).
		student(21, "Ann").
		student(45, "Paul").
	`)
	for i := 0; i < extraViolations; i++ {
		d.Insert(relational.F("course", value.Int(int64(100+i)), value.Str(fmt.Sprintf("cx%d", i))))
	}
	return d, parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`)
}

// --- E02/E03: dependency graphs --------------------------------------------

func BenchmarkDepGraph(b *testing.B) {
	set := parser.MustConstraints(`
		s(X) -> q(X).
		q(X) -> r(X).
		q(X) -> t(X, Y).
		t(X, Y) -> r(Y).
	`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if depgraph.RICAcyclic(set) {
			b.Fatal("set must be RIC-cyclic")
		}
	}
}

// --- E04–E09: satisfaction semantics matrix ---------------------------------

func BenchmarkSemanticsMatrix(b *testing.B) {
	d, set := example5DB()
	sems := nullsem.AllSemantics()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, sem := range sems {
			nullsem.Satisfies(d, set, sem)
		}
	}
}

// --- E10: relevant attributes -------------------------------------------------

func BenchmarkRelevantAttrs(b *testing.B) {
	gamma := parser.MustConstraints(`p(X, Y, Z), r(Z, W) -> r(X, V) | W > 3.`).ICs[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(gamma.RelevantAttrs()) == 0 {
			b.Fatal("no relevant attrs")
		}
	}
}

// --- E11–E13: |=_N checking ----------------------------------------------------

func BenchmarkSatisfaction(b *testing.B) {
	d := parser.MustInstance(`
		p1(a, b, c).  p1(d, null, c).  p1(b, e, null).  p1(null, b, b).
		p2(b, a).     p2(e, c).        p2(d, null).     p2(null, b).
		q(a, a, c).   q(b, null, c).   q(b, c, d).      q(null, c, a).
	`)
	set := parser.MustConstraints(`p1(X, Y, W), p2(Y, Z) -> q(X, Z, U).`)
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !nullsem.Satisfies(d, set, nullsem.NullAware) {
				b.Fatal("Example 12 must be consistent")
			}
		}
	})
	b.Run("projection-oracle", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !nullsem.SatisfiesOracle(d, set) {
				b.Fatal("oracle disagrees")
			}
		}
	})
}

// --- E14/E15 + C4: classic vs null-based repairs --------------------------------

func BenchmarkClassicVsNullRepairs(b *testing.B) {
	d, set := courseStudentDB(0)
	b.Run("null-based", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := repair.Repairs(d, set, repair.Options{})
			if err != nil || len(res.Repairs) != 2 {
				b.Fatalf("res=%v err=%v", len(res.Repairs), err)
			}
		}
	})
	b.Run("classic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := repair.Repairs(d, set, repair.Options{Mode: repair.Classic})
			if err != nil || len(res.Repairs) != 8 {
				b.Fatalf("res=%v err=%v", len(res.Repairs), err)
			}
		}
	})
}

// --- E16/E17/E19: repair enumeration ---------------------------------------------

func BenchmarkRepairEnum(b *testing.B) {
	d, set := example19DB()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := repair.Repairs(d, set, repair.Options{})
		if err != nil || len(res.Repairs) != 4 {
			b.Fatalf("repairs=%d err=%v", len(res.Repairs), err)
		}
	}
}

// --- E18 + C1: cyclic RICs (decidability) ------------------------------------------

func BenchmarkCyclicRepairs(b *testing.B) {
	set := parser.MustConstraints(`
		p(X, Y) -> t(X).
		t(X) -> p(Y, X).
	`)
	for _, n := range []int{1, 2, 4} {
		d := relational.NewInstance()
		for i := 0; i < n; i++ {
			d.Insert(relational.F("t", value.Str(fmt.Sprintf("c%d", i))))
		}
		b.Run(fmt.Sprintf("violations=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := repair.Repairs(d, set, repair.Options{})
				if err != nil || len(res.Repairs) != 1<<n {
					b.Fatalf("repairs=%d err=%v", len(res.Repairs), err)
				}
			}
		})
	}
}

// --- E21/E22: repair program generation ----------------------------------------------

func BenchmarkRepairProgramGen(b *testing.B) {
	d, set := example19DB()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repairprog.Build(d, set, repairprog.VariantPaper); err != nil {
			b.Fatal(err)
		}
	}
}

// --- grounding ------------------------------------------------------------------------

func BenchmarkGrounding(b *testing.B) {
	d, set := example19DB()
	tr, err := repairprog.Build(d, set, repairprog.VariantPaper)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ground.Ground(tr.Program); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E23: stable models -----------------------------------------------------------------

func BenchmarkStableModels(b *testing.B) {
	d, set := example19DB()
	tr, err := repairprog.Build(d, set, repairprog.VariantPaper)
	if err != nil {
		b.Fatal(err)
	}
	gp, err := ground.Ground(tr.Program)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ms, err := stable.Models(gp, stable.Options{})
		if err != nil || len(ms) != 4 {
			b.Fatalf("models=%d err=%v", len(ms), err)
		}
	}
}

// --- E24: HCF check ------------------------------------------------------------------------

func BenchmarkHCFCheck(b *testing.B) {
	d, set := example19DB()
	tr, err := repairprog.Build(d, set, repairprog.VariantPaper)
	if err != nil {
		b.Fatal(err)
	}
	gp, err := ground.Ground(tr.Program)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stable.IsHCF(gp)
		repairprog.GuaranteedHCF(set)
	}
}

// --- C2: disjunctive vs shifted -----------------------------------------------------------

func BenchmarkDisjunctiveVsShifted(b *testing.B) {
	set := parser.MustConstraints(`r(X, Y), r(X, Z) -> Y = Z.`)
	d := relational.NewInstance()
	for i := 0; i < 4; i++ {
		k := value.Str(fmt.Sprintf("k%d", i))
		d.Insert(relational.F("r", k, value.Str("b")))
		d.Insert(relational.F("r", k, value.Str("c")))
	}
	tr, err := repairprog.Build(d, set, repairprog.VariantPaper)
	if err != nil {
		b.Fatal(err)
	}
	gp, err := ground.Ground(tr.Program)
	if err != nil {
		b.Fatal(err)
	}
	shifted := stable.Shift(gp)
	b.Run("disjunctive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ms, err := stable.Models(gp, stable.Options{})
			if err != nil || len(ms) != 16 {
				b.Fatalf("models=%d err=%v", len(ms), err)
			}
		}
	})
	b.Run("shifted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ms, err := stable.Models(shifted, stable.Options{})
			if err != nil || len(ms) != 16 {
				b.Fatalf("models=%d err=%v", len(ms), err)
			}
		}
	})
}

// --- C3: Theorem 4 (search vs program engines) ------------------------------------------------

func BenchmarkTheorem4Agreement(b *testing.B) {
	d, set := example19DB()
	b.Run("search", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := repair.Repairs(d, set, repair.Options{})
			if err != nil || len(res.Repairs) != 4 {
				b.Fatal(err)
			}
		}
	})
	b.Run("program", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := repairprog.Build(d, set, repairprog.VariantCorrected)
			if err != nil {
				b.Fatal(err)
			}
			insts, _, err := tr.StableRepairs(stable.Options{})
			if err != nil || len(insts) != 4 {
				b.Fatal(err)
			}
		}
	})
}

// --- C5: consistent query answering end to end -------------------------------------------------

func BenchmarkCQA(b *testing.B) {
	q := parser.MustQuery(`q(Id) :- student(Id, Name).`)
	for _, k := range []int{1, 3} {
		d, set := courseStudentDB(k)
		b.Run(fmt.Sprintf("search/violations=%d", k+1), func(b *testing.B) {
			opts := core.NewOptions()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ConsistentAnswers(d, set, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("program/violations=%d", k+1), func(b *testing.B) {
			opts := core.NewOptions()
			opts.Engine = core.EngineProgram
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ConsistentAnswers(d, set, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablation: program pruning (the [12]-style optimization) ------------------------------------

func BenchmarkPruningAblation(b *testing.B) {
	d := parser.MustInstance(`r(a, b). r(a, c). s(e, f).`)
	for i := 0; i < 20; i++ {
		d.Insert(relational.F("audit", value.Int(int64(i)), value.Str(fmt.Sprintf("v%d", i))))
	}
	set := parser.MustConstraints(`
		r(X, Y), r(X, Z) -> Y = Z.
		s(U, V) -> r(V, W).
	`)
	run := func(b *testing.B, prune bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := repairprog.BuildWith(d, set, repairprog.BuildOptions{
				Variant:            repairprog.VariantCorrected,
				PruneUnconstrained: prune,
			})
			if err != nil {
				b.Fatal(err)
			}
			gp, err := ground.Ground(tr.Program)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := stable.Models(gp, stable.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("full", func(b *testing.B) { run(b, false) })
	b.Run("pruned", func(b *testing.B) { run(b, true) })
}

// --- cautious engine vs materializing engines -----------------------------------------------------

func BenchmarkCQACautious(b *testing.B) {
	d, set := courseStudentDB(2)
	q := parser.MustQuery(`q(Id) :- student(Id, Name).`)
	opts := core.NewOptions()
	opts.Engine = core.EngineProgramCautious
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ans, err := core.ConsistentAnswers(d, set, q, opts)
		if err != nil || len(ans.Tuples) != 2 {
			b.Fatalf("ans=%v err=%v", ans.Tuples, err)
		}
	}
}

// --- query evaluation modes -------------------------------------------------------------------------

func BenchmarkQueryModes(b *testing.B) {
	d, _ := example5DB()
	q := parser.MustQuery(`q(Code, Times) :- course(Code, Id, Term), exp(Id, Code, Times).`)
	for _, mode := range []query.Mode{query.ConstantNulls, query.SQLNulls} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := query.EvalWith(d, q, query.Options{Mode: mode}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- storage engine: repair enumeration at scale ---------------------------------------------------

// scalingRepairDB embeds a fixed number of key violations in a bulk of
// consistent rows plus an unrelated audit relation, the shape of the C1/C2
// scaling workloads at production size. The repair count depends only on the
// violations (2^3 = 8); the bulk exercises the per-state storage costs
// (clone, membership, constraint re-check) that dominate enumeration.
func scalingRepairDB(bulk int) (*relational.Instance, *constraint.Set) {
	d := relational.NewInstance()
	for i := 0; i < 3; i++ {
		k := value.Str(fmt.Sprintf("k%d", i))
		d.Insert(relational.F("r", k, value.Str("b")))
		d.Insert(relational.F("r", k, value.Str("c")))
	}
	for i := 0; i < bulk; i++ {
		d.Insert(relational.F("r", value.Str(fmt.Sprintf("u%d", i)), value.Str(fmt.Sprintf("v%d", i))))
		d.Insert(relational.F("audit", value.Int(int64(i)), value.Str(fmt.Sprintf("a%d", i))))
	}
	return d, parser.MustConstraints(`r(X, Y), r(X, Z) -> Y = Z.`)
}

func BenchmarkRepairScaling(b *testing.B) {
	for _, bulk := range []int{16, 64, 256} {
		d, set := scalingRepairDB(bulk)
		b.Run(fmt.Sprintf("bulk=%d", bulk), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := repair.Repairs(d, set, repair.Options{})
				if err != nil || len(res.Repairs) != 8 {
					b.Fatalf("repairs=%d err=%v", len(res.Repairs), err)
				}
			}
		})
		b.Run(fmt.Sprintf("bulk=%d/workers=4", bulk), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := repair.Repairs(d, set, repair.Options{Workers: 4})
				if err != nil || len(res.Repairs) != 8 {
					b.Fatalf("repairs=%d err=%v", len(res.Repairs), err)
				}
			}
		})
	}
}

// --- streaming CQA: boolean short-circuit vs full enumeration --------------------------------------

// BenchmarkBooleanShortCircuit measures the tentpole's early termination: a
// refuted boolean certain answer stops the repair search at the first
// confirmed-minimal counterexample, while the certain yes pays for the full
// enumeration.
func BenchmarkBooleanShortCircuit(b *testing.B) {
	d, set := courseStudentDB(6)
	refuted := parser.MustQuery(`q :- course(34, c18).`)
	certain := parser.MustQuery(`q :- student(21, "Ann").`)
	opts := core.NewOptions()
	b.Run("refuted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ans, err := core.ConsistentAnswers(d, set, refuted, opts)
			if err != nil || ans.Boolean || !ans.ShortCircuited {
				b.Fatalf("ans=%+v err=%v", ans, err)
			}
		}
	})
	b.Run("certain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ans, err := core.ConsistentAnswers(d, set, certain, opts)
			if err != nil || !ans.Boolean || ans.ShortCircuited {
				b.Fatalf("ans=%+v err=%v", ans, err)
			}
		}
	})
}

// --- program engine: stable-model repairs at scale -------------------------------------------------

// stableRepairDB embeds n key violations in a bulk of consistent rows — the
// scalingRepairDB shape pointed at the program engine. The repair program has
// one independent key-violation cluster per violating key, so the stable
// model count is 2^n while the grounding scales with the bulk.
func stableRepairDB(n, bulk int) (*relational.Instance, *constraint.Set) {
	d := relational.NewInstance()
	for i := 0; i < n; i++ {
		k := value.Str(fmt.Sprintf("k%d", i))
		d.Insert(relational.F("r", k, value.Str("b")))
		d.Insert(relational.F("r", k, value.Str("c")))
	}
	for i := 0; i < bulk; i++ {
		d.Insert(relational.F("r", value.Str(fmt.Sprintf("u%d", i)), value.Str(fmt.Sprintf("v%d", i))))
	}
	return d, parser.MustConstraints(`r(X, Y), r(X, Z) -> Y = Z.`)
}

// BenchmarkStableRepairs is the program-engine mirror of
// BenchmarkRepairScaling: repairs computed as the stable models of Π(D, IC),
// over 2^n-model workloads. This is the benchmark the stable-engine
// trajectory is tracked by in EXPERIMENTS.md.
func BenchmarkStableRepairs(b *testing.B) {
	for _, n := range []int{3, 5} {
		d, set := stableRepairDB(n, 16)
		tr, err := repairprog.BuildWith(d, set, repairprog.BuildOptions{
			Variant:            repairprog.VariantCorrected,
			PruneUnconstrained: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("violations=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				insts, _, err := tr.StableRepairs(stable.Options{})
				if err != nil || len(insts) != 1<<n {
					b.Fatalf("repairs=%d err=%v", len(insts), err)
				}
			}
		})
	}
}

// --- ablation: overlay repair emission vs materialized interpretation ------------------------------

// BenchmarkProgramRepairOverlay isolates the program engine's repair
// emission: turning each stable model of Π(D, IC) into an instance.
// "materialized" rebuilds a fresh instance per model by re-reading every
// annotated atom (the pre-overlay Interpret); "overlay" reads the model
// through the prepared edit lists and emits a copy-on-write overlay of the
// shared base, so the per-repair cost is O(|Δ|) instead of O(|D|). The bulk
// rides in an unconstrained relation to keep the edit lists small while the
// base stays large.
func BenchmarkProgramRepairOverlay(b *testing.B) {
	d, set := stableRepairDB(4, 16)
	for i := 0; i < 512; i++ {
		d.Insert(relational.F("audit", value.Int(int64(i)), value.Str(fmt.Sprintf("a%d", i))))
	}
	tr, err := repairprog.BuildWith(d, set, repairprog.BuildOptions{
		Variant:            repairprog.VariantCorrected,
		PruneUnconstrained: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	gp, err := ground.Ground(tr.Program)
	if err != nil {
		b.Fatal(err)
	}
	var models []stable.Model
	if err := stable.Enumerate(gp, stable.Options{}, func(m stable.Model) bool {
		models = append(models, m)
		return true
	}); err != nil {
		b.Fatal(err)
	}
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, m := range models {
				if inst := tr.Interpret(gp, m); inst.Len() == 0 {
					b.Fatal("empty repair")
				}
			}
		}
	})
	b.Run("overlay", func(b *testing.B) {
		b.ReportAllocs()
		reader := tr.NewModelReader(gp)
		for i := 0; i < b.N; i++ {
			for _, m := range models {
				if inst, _ := reader.Repair(m); inst.Len() == 0 {
					b.Fatal("empty repair")
				}
			}
		}
	})
}

// --- ablation: persistent Δ-seeded solving vs scratch rebuilds -------------------------------------

// BenchmarkSolverReuse is the solver mirror of IncrementalViolationProbe:
// the same stable-model enumeration once on a single persistent solver per
// component (learned clauses, saved phases and the assumption-prefix trail
// carried across candidate, minimization and stability solves) and once with
// Options.ScratchSolve rebuilding the solver from the clause log on every
// solve call.
func BenchmarkSolverReuse(b *testing.B) {
	d, set := stableRepairDB(4, 16)
	tr, err := repairprog.BuildWith(d, set, repairprog.BuildOptions{
		Variant:            repairprog.VariantCorrected,
		PruneUnconstrained: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	gp, err := ground.Ground(tr.Program)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		scratch bool
	}{{"persistent", false}, {"scratch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				if err := stable.Enumerate(gp, stable.Options{ScratchSolve: mode.scratch}, func(stable.Model) bool {
					n++
					return true
				}); err != nil || n != 1<<4 {
					b.Fatalf("models=%d err=%v", n, err)
				}
			}
		})
	}
}

// --- storage engine: constraint-check cost vs unrelated data ---------------------------------------

// BenchmarkUnrelatedScaling checks that |=_N satisfaction over a fixed
// constraint workload is independent of the size of relations no constraint
// mentions: doubling the unrelated relation must leave ns/op within noise.
func BenchmarkUnrelatedScaling(b *testing.B) {
	set := parser.MustConstraints(`r(X, Y), r(X, Z) -> Y = Z.`)
	for _, unrelated := range []int{1000, 2000, 4000} {
		d := relational.NewInstance()
		for i := 0; i < 50; i++ {
			d.Insert(relational.F("r", value.Int(int64(i)), value.Str("v")))
		}
		for i := 0; i < unrelated; i++ {
			d.Insert(relational.F("audit", value.Int(int64(i)), value.Str(fmt.Sprintf("a%d", i))))
		}
		b.Run(fmt.Sprintf("unrelated=%d", unrelated), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !nullsem.Satisfies(d, set, nullsem.NullAware) {
					b.Fatal("workload must be consistent")
				}
			}
		})
	}
}

// --- storage engine: query join cost with selective bindings ---------------------------------------

func BenchmarkIndexedJoin(b *testing.B) {
	d := relational.NewInstance()
	for i := 0; i < 2000; i++ {
		d.Insert(relational.F("e", value.Int(int64(i)), value.Int(int64((i+1)%2000))))
		d.Insert(relational.F("lbl", value.Int(int64(i)), value.Str(fmt.Sprintf("n%d", i%7))))
	}
	q := parser.MustQuery(`q(X, L) :- e(X, Y), lbl(Y, L), e(Y, Z), lbl(Z, "n3").`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts, err := query.Eval(d, q)
		if err != nil || len(ts) == 0 {
			b.Fatalf("answers=%d err=%v", len(ts), err)
		}
	}
}

// --- ablation: Δ-seeded violation probes vs scratch re-checks --------------------------------------

// BenchmarkIncrementalViolationProbe isolates the tentpole's probe: one
// constraint check on an instance that differs from a known-consistent
// parent by a single fact. The scratch probe re-joins the constraint body
// over the whole relation; the Δ-seeded probe anchors on the changed fact
// and completes the join through the index, so its cost is independent of
// the relation size. "violating" changes a late key so the scratch join
// pays most of the scan before finding the violation; "consistent" deletes
// a row, which forces the scratch probe through the entire join to prove
// satisfaction while the incremental probe has nothing to seed.
func BenchmarkIncrementalViolationProbe(b *testing.B) {
	set := parser.MustConstraints(`r(X, Y), r(X, Z) -> Y = Z.`)
	ic := set.ICs[0]
	parent := relational.NewInstance()
	for i := 0; i < 2000; i++ {
		parent.Insert(relational.F("r", value.Str(fmt.Sprintf("u%d", i)), value.Str(fmt.Sprintf("v%d", i))))
	}
	parent.Freeze()

	violating := parent.Clone()
	vfact := relational.F("r", value.Str("u1999"), value.Str("w"))
	violating.Insert(vfact)
	vdelta := relational.Delta{Added: []relational.Fact{vfact}}

	consistent := parent.Clone()
	dfact := relational.F("r", value.Str("u999"), value.Str("v999"))
	consistent.Delete(dfact)
	cdelta := relational.Delta{Removed: []relational.Fact{dfact}}

	b.Run("violating/scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := nullsem.FirstViolationIC(violating, ic, nullsem.NullAware); !ok {
				b.Fatal("expected a violation")
			}
		}
	})
	b.Run("violating/incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := nullsem.FirstViolationICFrom(violating, ic, nullsem.NullAware, vdelta); !ok {
				b.Fatal("expected a violation")
			}
		}
	})
	b.Run("consistent/scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := nullsem.FirstViolationIC(consistent, ic, nullsem.NullAware); ok {
				b.Fatal("unexpected violation")
			}
		}
	})
	b.Run("consistent/incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := nullsem.FirstViolationICFrom(consistent, ic, nullsem.NullAware, cdelta); ok {
				b.Fatal("unexpected violation")
			}
		}
	})
}

// --- ablation: base-anchored per-repair answering vs full re-evaluation ----------------------------

// BenchmarkCertainTuplesPatched isolates the per-repair query half of the
// tentpole: intersecting q's answers across a 16-repair set over a database
// whose query relation is large. "scratch" evaluates the full join on every
// repair; "patched" evaluates once on D and patches each repair's answer set
// along its Δ (one base evaluation plus k·O(|Δ|) anchored joins).
func BenchmarkCertainTuplesPatched(b *testing.B) {
	d := relational.NewInstance()
	for i := 0; i < 4; i++ {
		d.Insert(relational.F("course", value.Int(int64(100+i)), value.Str(fmt.Sprintf("cx%d", i))))
	}
	for i := 0; i < 1000; i++ {
		id := value.Int(int64(1000 + i))
		d.Insert(relational.F("course", id, value.Str(fmt.Sprintf("c%d", i))))
		d.Insert(relational.F("student", id, value.Str(fmt.Sprintf("n%d", i))))
	}
	set := parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`)
	q := parser.MustQuery(`q(Id) :- student(Id, Name).`)
	res, err := repair.Repairs(d, set, repair.Options{})
	if err != nil || len(res.Repairs) != 16 {
		b.Fatalf("repairs=%d err=%v", len(res.Repairs), err)
	}
	repairs := res.Repairs

	scratch := func(b *testing.B) map[string]relational.Tuple {
		certain := map[string]relational.Tuple{}
		for i, r := range repairs {
			tuples, err := query.Eval(r, q)
			if err != nil {
				b.Fatal(err)
			}
			here := map[string]relational.Tuple{}
			for _, t := range tuples {
				here[t.Key()] = t
			}
			if i == 0 {
				certain = here
				continue
			}
			for k := range certain {
				if _, ok := here[k]; !ok {
					delete(certain, k)
				}
			}
		}
		return certain
	}
	patched := func(b *testing.B) map[string]relational.Tuple {
		be, err := query.NewBaseEval(d, q)
		if err != nil {
			b.Fatal(err)
		}
		certain := map[string]relational.Tuple{}
		for i, r := range repairs {
			tuples := be.EvalOn(r)
			here := map[string]relational.Tuple{}
			for _, t := range tuples {
				here[t.Key()] = t
			}
			if i == 0 {
				certain = here
				continue
			}
			for k := range certain {
				if _, ok := here[k]; !ok {
					delete(certain, k)
				}
			}
		}
		return certain
	}
	if s, p := scratch(b), patched(b); len(s) != len(p) || len(s) != 1000 {
		b.Fatalf("ablation paths disagree: scratch %d certain tuples, patched %d", len(s), len(p))
	}

	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := scratch(b); len(got) != 1000 {
				b.Fatalf("certain=%d", len(got))
			}
		}
	})
	b.Run("patched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := patched(b); len(got) != 1000 {
				b.Fatalf("certain=%d", len(got))
			}
		}
	})
}

// --- public facade end-to-end -------------------------------------------------------------------

func BenchmarkFacadeQuickstart(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := nullcqa.ParseInstance(`
			course(21, c15).
			course(34, c18).
			student(21, "Ann").
		`)
		if err != nil {
			b.Fatal(err)
		}
		set, err := nullcqa.ParseConstraints(`course(Id, Code) -> student(Id, Name).`)
		if err != nil {
			b.Fatal(err)
		}
		if nullcqa.IsConsistent(d, set) {
			b.Fatal("must be inconsistent")
		}
		if _, err := nullcqa.RepairsCtx(context.Background(), d, set, nullcqa.RepairOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- grounding rewrite: fixpoint scaling, reuse, multi-query sessions ------------------------------

// BenchmarkGround scales the repair-program grounding over violations and
// bulk, comparing the semi-naive fixpoint (default) against the naive
// round-robin ablation and the parallel instantiation pool. The allocs/op
// column doubles as the hot-path hygiene gate: grounding interns atoms by
// hash, with no string keys on the fixpoint or instantiation path.
func BenchmarkGround(b *testing.B) {
	for _, cfg := range []struct{ n, bulk int }{{3, 16}, {3, 64}, {5, 64}} {
		d, set := stableRepairDB(cfg.n, cfg.bulk)
		tr, err := repairprog.BuildWith(d, set, repairprog.BuildOptions{
			Variant:            repairprog.VariantCorrected,
			PruneUnconstrained: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name string
			opts ground.Options
		}{
			{"seminaive", ground.Options{}},
			{"naive", ground.Options{Naive: true}},
			{"seminaive-workers=4", ground.Options{Workers: 4}},
		} {
			b.Run(fmt.Sprintf("violations=%d/bulk=%d/%s", cfg.n, cfg.bulk, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := ground.GroundWith(tr.Program, mode.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// extendQueryZoo is the multi-query session workload: eight query shapes
// over the benchmark schema, each grounding to its own q_ans rules.
var extendQueryZoo = []string{
	`q(X) :- r(X, Y).`,
	`q(Y) :- r(X, Y).`,
	`q(X, Y) :- r(X, Y).`,
	`q(X) :- r(X, b).`,
	`q(X, Y) :- r(X, Y), X != Y.`,
	`q(X) :- r(X, Y), not r(Y, X).`,
	`q(X, Z) :- r(X, Y), r(Y, Z).`,
	`q :- r(k0, b).`,
}

// multiQuerySessionDB is the grounding-reuse workload: a small queried
// relation r with key violations next to a bulk audit relation under its own
// key constraint. Π(D, IC) annotates both relations, so a monolithic
// grounding pays for the whole schema on every query, while the queries only
// ever touch r.
func multiQuerySessionDB(bulk int) (*relational.Instance, *constraint.Set) {
	d := relational.NewInstance()
	for i := 0; i < 3; i++ {
		k := value.Str(fmt.Sprintf("k%d", i))
		d.Insert(relational.F("r", k, value.Str("b")))
		d.Insert(relational.F("r", k, value.Str("c")))
	}
	for i := 0; i < 16; i++ {
		d.Insert(relational.F("r", value.Str(fmt.Sprintf("u%d", i)), value.Str(fmt.Sprintf("v%d", i))))
	}
	for i := 0; i < bulk; i++ {
		d.Insert(relational.F("audit", value.Int(int64(i)), value.Str(fmt.Sprintf("a%d", i))))
	}
	d.Insert(relational.F("audit", value.Int(0), value.Str("dup"))) // keep audit inconsistent too
	return d, parser.MustConstraints(`
		r(X, Y), r(X, Z) -> Y = Z.
		audit(X, Y), audit(X, Z) -> Y = Z.
	`)
}

// BenchmarkGroundExtend measures what the base/extend split buys a
// multi-query session: "reground" grounds Π(D, IC) ∪ Π(q) from scratch for
// each of the eight queries (the pre-split behavior), "extend" grounds the
// base once and extends it per query over the retained possible-set
// snapshot. Both arms include the base grounding cost, so the ratio is the
// end-to-end session speedup.
func BenchmarkGroundExtend(b *testing.B) {
	d, set := multiQuerySessionDB(192)
	tr, err := repairprog.BuildWith(d, set, repairprog.BuildOptions{
		Variant:            repairprog.VariantCorrected,
		PruneUnconstrained: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]*query.Q, len(extendQueryZoo))
	for i, src := range extendQueryZoo {
		queries[i] = parser.MustQuery(src)
	}
	b.Run("reground", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				prog, err := tr.WithQuery(q)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ground.Ground(prog); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("extend", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			base, err := ground.GroundBase(tr.Program, ground.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for _, q := range queries {
				rules, err := tr.QueryRules(q)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := base.Extend(rules); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkCQAProgramMultiQuery is the end-to-end mirror of GroundExtend:
// eight consistent-answer computations over one inconsistent database,
// "separate" via one ConsistentAnswers call per query (each re-building and
// re-grounding the repair program), "shared" via CautiousMany (one
// translation, one base grounding, per-query extension).
func BenchmarkCQAProgramMultiQuery(b *testing.B) {
	d, set := stableRepairDB(3, 16)
	queries := make([]*query.Q, len(extendQueryZoo))
	for i, src := range extendQueryZoo {
		queries[i] = parser.MustQuery(src)
	}
	opts := core.NewOptions()
	opts.Engine = core.EngineProgramCautious
	b.Run("separate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := core.ConsistentAnswers(d, set, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ans, err := core.CautiousMany(d, set, queries, opts)
			if err != nil || len(ans) != len(queries) {
				b.Fatalf("answers=%d err=%v", len(ans), err)
			}
		}
	})
}

// --- session layer: O(|Δ|) live updates vs scratch recomputation ---------------------------------

// sessionBenchDB builds the 2000-row update workload: 998 consistent
// (course, student) pairs plus 4 dangling courses under the referential
// constraint, so the repair set is the 16-element product of per-violation
// resolutions.
func sessionBenchDB() (*relational.Instance, *constraint.Set) {
	d := relational.NewInstance()
	for i := 0; i < 998; i++ {
		id := value.Int(int64(1000 + i))
		d.Insert(relational.F("course", id, value.Str(fmt.Sprintf("c%d", i))))
		d.Insert(relational.F("student", id, value.Str(fmt.Sprintf("n%d", i))))
	}
	for i := 0; i < 4; i++ {
		d.Insert(relational.F("course", value.Int(int64(100+i)), value.Str(fmt.Sprintf("cx%d", i))))
	}
	// An unconstrained relation read by a standing query: updates to it are
	// query-relevant but constraint-irrelevant, the common case in a live
	// database whose inconsistencies are localized.
	for i := 0; i < 500; i++ {
		d.Insert(relational.F("enrolled", value.Int(int64(1000+i)), value.Str("t1")))
	}
	return d, parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`)
}

// sessionBenchDeltas is a period-4 mixed update stream, each step ≤8 facts:
// a batch of enrollment facts enters (constraint-irrelevant, read by a
// standing query), then 4 consistent (course, student) pairs
// (constraint-relevant), then each batch leaves again, so the instance
// returns to its start state every fourth step. The mix is the session
// design point — most live updates don't touch a violated constraint — and
// the all-relevant worst case is benchmarked separately.
func sessionBenchDeltas() [4]relational.Delta {
	var pairs, enr []relational.Fact
	for i := 0; i < 4; i++ {
		id := value.Int(int64(5000 + i))
		pairs = append(pairs,
			relational.F("course", id, value.Str(fmt.Sprintf("d%d", i))),
			relational.F("student", id, value.Str(fmt.Sprintf("m%d", i))))
	}
	for i := 0; i < 8; i++ {
		enr = append(enr, relational.F("enrolled", value.Int(int64(7000+i)), value.Str("t2")))
	}
	relational.SortFacts(pairs)
	relational.SortFacts(enr)
	return [4]relational.Delta{{Added: enr}, {Added: pairs}, {Removed: enr}, {Removed: pairs}}
}

// sessionRelevantDeltas is the all-relevant worst case: every step flips
// the 4 consistent pairs, so each Apply invalidates the repair cache and
// pays a full seeded re-enumeration.
func sessionRelevantDeltas() [2]relational.Delta {
	all := sessionBenchDeltas()
	return [2]relational.Delta{all[1], all[3]}
}

// sessionBenchQueries returns the standing queries shared by both sides of
// the update benchmarks.
func sessionBenchQueries() []*query.Q {
	return []*query.Q{
		parser.MustQuery(`q(Id) :- student(Id, Name).`),
		parser.MustQuery(`q(Id) :- enrolled(Id, Term).`),
		parser.MustQuery(`q :- course(100, cx0).`),
	}
}

// BenchmarkSessionUpdate is the tentpole acceptance benchmark: sustained
// ≤8-fact updates over a 2000-row base with three standing queries.
// "session" advances one persistent session per step (maintained
// violations, seeded re-enumeration, prepared-query patching); "scratch"
// mutates a plain instance and recomputes every answer with fresh
// ConsistentAnswers calls, which is what callers had to do before the
// session layer. The top-level pair runs the mixed stream; the
// relevant-only pair isolates the worst case where every update
// invalidates the repair cache.
func BenchmarkSessionUpdate(b *testing.B) {
	d, set := sessionBenchDB()
	queries := sessionBenchQueries()
	opts := core.NewOptions()

	sessionSide := func(deltas []relational.Delta) func(b *testing.B) {
		return func(b *testing.B) {
			s := session.New(d.Clone(), set, opts)
			for _, q := range queries {
				if _, err := s.Prepare(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Apply(deltas[i%len(deltas)]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	scratchSide := func(deltas []relational.Delta) func(b *testing.B) {
		return func(b *testing.B) {
			cur := d.Clone()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dl := deltas[i%len(deltas)]
				for _, f := range dl.Removed {
					cur.Delete(f)
				}
				for _, f := range dl.Added {
					cur.Insert(f)
				}
				for _, q := range queries {
					if _, err := core.ConsistentAnswers(cur, set, q, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}

	mixed := sessionBenchDeltas()
	relevant := sessionRelevantDeltas()
	b.Run("session", sessionSide(mixed[:]))
	b.Run("scratch", scratchSide(mixed[:]))
	b.Run("relevant-only/session", sessionSide(relevant[:]))
	b.Run("relevant-only/scratch", scratchSide(relevant[:]))
}

// BenchmarkSessionPreparedQuery isolates the query half: answering on a
// warm session (cached repair set, anchored base evaluations) vs a fresh
// ConsistentAnswers that rebuilds everything per call.
func BenchmarkSessionPreparedQuery(b *testing.B) {
	d, set := sessionBenchDB()
	q := parser.MustQuery(`q(Id) :- student(Id, Name).`)
	opts := core.NewOptions()

	b.Run("session", func(b *testing.B) {
		s := session.New(d.Clone(), set, opts)
		if _, err := s.Answer(q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ans, err := s.Answer(q)
			if err != nil || len(ans.Tuples) != 998 {
				b.Fatalf("answers=%d err=%v", len(ans.Tuples), err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ans, err := core.ConsistentAnswers(d, set, q, opts)
			if err != nil || len(ans.Tuples) != 998 {
				b.Fatalf("answers=%d err=%v", len(ans.Tuples), err)
			}
		}
	})
}

package nullcqa

import (
	"context"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/direct"
	"repro/internal/engine"
	"repro/internal/nullsem"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/repairprog"
	"repro/internal/session"
	"repro/internal/stable"
	"repro/internal/value"
)

// The facade is session-first: NewSession is the primary entry point, the
// ...Ctx one-shots are adapters over a throwaway session, and the original
// flat one-shots survive as thin deprecated wrappers around the Ctx
// variants. Options structs are the single configuration path — there are
// no other knobs — and every long-running entry point takes a
// context.Context whose cancellation aborts the enumeration with ctx.Err().

// Core data types, re-exported for API clients.
type (
	// Value is a database constant; the zero value is null.
	Value = value.V
	// Tuple is a sequence of constants.
	Tuple = relational.Tuple
	// Fact is a ground database atom.
	Fact = relational.Fact
	// Instance is a finite database instance (a set of facts).
	Instance = relational.Instance
	// Delta is a symmetric difference Δ(D, D′).
	Delta = relational.Delta
	// IC is an integrity constraint of the paper's form (1).
	IC = constraint.IC
	// NNC is a NOT NULL-constraint (form (5)).
	NNC = constraint.NNC
	// ConstraintSet is a finite set of ICs and NNCs.
	ConstraintSet = constraint.Set
	// Query is a safe union of conjunctive queries with negation.
	Query = query.Q
	// Answer is the result of consistent query answering.
	Answer = core.Answer
	// RepairResult is the outcome of repair enumeration.
	RepairResult = repair.Result
	// Semantics selects an IC-satisfaction semantics.
	Semantics = nullsem.Semantics
	// ViolationReport lists all constraint violations of an instance.
	ViolationReport = nullsem.Report
	// RepairProgram is a generated Definition 9 program.
	RepairProgram = repairprog.Translation
	// ConstraintAnalysis classifies a constraint set for engine routing
	// (FD-only sets qualify for EngineDirect).
	ConstraintAnalysis = constraint.Analysis
	// EngineSpec describes one registered engine name with its
	// capabilities.
	EngineSpec = engine.Spec
)

// Typed errors. Long-running entry points fail with these instead of
// anonymous fmt.Errorf strings: match sentinels with errors.Is and
// *ParseError with errors.As. A canceled context surfaces as ctx.Err()
// (context.Canceled or context.DeadlineExceeded), also via errors.Is.
type (
	// ParseError reports a syntax error with its 1-based line and column.
	// Every Parse* function returns a *ParseError on bad input.
	ParseError = parser.ParseError
)

var (
	// ErrStateLimit: a repair search exceeded RepairOptions.MaxStates.
	ErrStateLimit = repair.ErrStateLimit
	// ErrConflictingSet: the constraint set has conflicting NOT
	// NULL-constraints (Example 20); use RepairsDCtx.
	ErrConflictingSet = repair.ErrConflictingSet
	// ErrCandidateLimit: a stable-model enumeration exceeded
	// StableOptions.MaxCandidates.
	ErrCandidateLimit = stable.ErrCandidateLimit
	// ErrInconsistentUnrepairable: an engine produced an empty repair set
	// on an inconsistent instance (Proposition 1 guarantees at least one
	// repair, so this indicates an engine limitation on the input).
	ErrInconsistentUnrepairable = session.ErrInconsistentUnrepairable
	// ErrDirectScope: EngineDirect was asked to handle a constraint set
	// outside its FD-only scope (or classic repair semantics). The full
	// reason travels as a *DirectScopeError.
	ErrDirectScope = direct.ErrScope
)

// DirectScopeError carries why a constraint set falls outside the direct
// engine's scope; it wraps ErrDirectScope.
type DirectScopeError = direct.ScopeError

// Options structs — the single configuration path.
type (
	// CQAOptions configures consistent query answering and sessions.
	// Engine selects the pipeline; each engine reads its own section and
	// ignores the rest:
	//
	//   - EngineSearch reads Repair (Mode, MaxStates, Workers,
	//     ScratchProbe; Repair.Seed is session-owned and any caller value
	//     is ignored).
	//   - EngineProgram reads Variant, Stable (MaxModels, MaxCandidates,
	//     Workers, ScratchSolve) and Ground (Workers, Naive).
	//   - EngineProgramCautious reads the same fields as EngineProgram.
	CQAOptions = core.Options
	// RepairOptions configures direct repair enumeration (mode, state
	// budget, worker pool).
	RepairOptions = repair.Options
	// StableOptions configures stable-model enumeration (model and
	// candidate budgets, worker pool).
	StableOptions = stable.Options
	// QueryOptions configures direct query evaluation (null-handling
	// mode).
	QueryOptions = query.Options
	// RepairProgramOptions configures program generation (variant,
	// pruning).
	RepairProgramOptions = repairprog.BuildOptions
)

// NewCQAOptions returns the default CQA options: search engine, corrected
// program variant.
func NewCQAOptions() CQAOptions { return core.NewOptions() }

// Value constructors.
var (
	// Null returns the distinguished null constant.
	Null = value.Null
	// Int returns an integer constant.
	Int = value.Int
	// Str returns a string constant.
	Str = value.Str
	// NewInstance builds an instance from facts.
	NewInstance = relational.NewInstance
	// F builds a fact.
	F = relational.F
)

// Satisfaction semantics (Section 3).
const (
	// SemNullAware is the paper's |=_N (Definition 4).
	SemNullAware = nullsem.NullAware
	// SemClassicFO is classical first-order satisfaction.
	SemClassicFO = nullsem.ClassicFO
	// SemAllExempt is the CASCON 2004 semantics (the paper's [10]).
	SemAllExempt = nullsem.AllExempt
	// SemSimpleMatch is SQL:2003 simple match (the DBMS behaviour).
	SemSimpleMatch = nullsem.SimpleMatch
	// SemPartialMatch is SQL:2003 partial match.
	SemPartialMatch = nullsem.PartialMatch
	// SemFullMatch is SQL:2003 full match.
	SemFullMatch = nullsem.FullMatch
)

// Repair modes (Section 4).
const (
	// RepairNullBased is the paper's semantics: null insertions, ≤_D
	// minimality.
	RepairNullBased = repair.NullBased
	// RepairClassic is the Arenas–Bertossi–Chomicki baseline.
	RepairClassic = repair.Classic
)

// Repair program variants (Section 5; see DESIGN.md for the wrinkle).
const (
	// VariantPaper is Definition 9 verbatim.
	VariantPaper = repairprog.VariantPaper
	// VariantCorrected adds the fact-based aux rule restoring Theorem 4
	// on instances with nulls in existential witness positions.
	VariantCorrected = repairprog.VariantCorrected
)

// CQA engines.
const (
	// EngineSearch enumerates repairs with the violation-driven search.
	EngineSearch = core.EngineSearch
	// EngineProgram uses Definition 9 repair programs and stable models.
	EngineProgram = core.EngineProgram
	// EngineProgramCautious compiles the query into the repair program
	// and answers by cautious stable-model reasoning (the paper's
	// Section 5 pipeline, no repairs materialized).
	EngineProgramCautious = core.EngineProgramCautious
	// EngineDirect answers FD-only constraint sets from a repair-less
	// polynomial classification (one pass, exact repair counts, O(|delta|)
	// session maintenance); out-of-scope sets fail with ErrDirectScope.
	EngineDirect = core.EngineDirect
	// EngineAuto routes by constraint class at session creation: direct
	// when AnalyzeConstraints reports FD-only, search otherwise.
	EngineAuto = core.EngineAuto
)

// AnalyzeConstraints classifies a constraint set for engine routing: the
// result reports whether the set is within the direct engine's FD-only
// scope, and if not, why.
func AnalyzeConstraints(set *ConstraintSet) ConstraintAnalysis { return constraint.Analyze(set) }

// EngineNames lists the registered engine names accepted by
// EngineOptionsByName, the cqa -engine flag, and the cqad wire fields.
func EngineNames() []string { return engine.Names() }

// Engines returns the full registry: every selectable engine with its
// capabilities, in documentation order.
func Engines() []EngineSpec { return engine.All() }

// EngineOptionsByName maps a registry name ("search", "program",
// "cautious", "direct", "auto") and a worker count onto CQA options —
// exactly the mapping the cqa CLI and cqad daemon apply to their engine
// selections. Unknown names fail with *engine.UnknownError.
func EngineOptionsByName(name string, workers int) (CQAOptions, error) {
	return engine.Options(name, workers)
}

// Query evaluation modes for the open |=q_N choice (see internal/query).
const (
	// QueryConstantNulls treats null as an ordinary constant (default).
	QueryConstantNulls = query.ConstantNulls
	// QuerySQLNulls follows SQL three-valued logic.
	QuerySQLNulls = query.SQLNulls
)

// Parsing.

// ParseInstance parses a database instance (facts like "course(21, c15).").
func ParseInstance(src string) (*Instance, error) { return parser.Instance(src) }

// ParseConstraints parses a constraint set (see internal/parser for the
// grammar).
func ParseConstraints(src string) (*ConstraintSet, error) { return parser.Constraints(src) }

// ParseQuery parses a datalog-style query.
func ParseQuery(src string) (*Query, error) { return parser.Query(src) }

// Sessions — the primary API. A session owns one persistent (D, IC) pair:
// maintained violation lists, cached repairs, and prepared standing
// queries survive across updates, so Session.Apply costs O(|Δ|) instead of
// a cold re-enumeration. Everything below the session (consistency,
// repairs, answers, standing-query diffs) is reachable through its
// methods, each with a ...Ctx variant.

// Session is a persistent (D, IC) pair. It is not safe for concurrent
// use; serialize access externally (cmd/cqad wraps one mutex per session).
type Session = session.Session

// SessionPrepared is a standing query registered with Session.Prepare.
type SessionPrepared = session.Prepared

// SessionApplyResult summarizes one Session.Apply.
type SessionApplyResult = session.ApplyResult

// SessionQueryUpdate is pushed to Subscribe callbacks when a prepared
// query's certain answers change.
type SessionQueryUpdate = session.QueryUpdate

// NewSession creates a session over d and set; d is frozen and all
// subsequent mutation goes through Session.Apply.
func NewSession(d *Instance, set *ConstraintSet, opts CQAOptions) *Session {
	return session.New(d, set, opts)
}

// Consistency checking (Section 3). These probes are instance-local (no
// repair enumeration), so they take no context.

// IsConsistent reports D |=_N IC.
func IsConsistent(d *Instance, set *ConstraintSet) bool { return core.IsConsistent(d, set) }

// SatisfiesUnder checks the instance under any of the six implemented
// satisfaction semantics.
func SatisfiesUnder(d *Instance, set *ConstraintSet, sem Semantics) bool {
	return nullsem.Satisfies(d, set, sem)
}

// CheckViolations returns every violation under |=_N.
func CheckViolations(d *Instance, set *ConstraintSet) ViolationReport {
	return nullsem.Check(d, set, nullsem.NullAware)
}

// InsertionAllowed reports whether inserting f keeps the database
// consistent — the DBMS-style admission check of Examples 5–6.
func InsertionAllowed(d *Instance, set *ConstraintSet, f Fact, sem Semantics) bool {
	return nullsem.InsertionAllowed(d, set, f, sem)
}

// RICAcyclic reports whether the set is RIC-acyclic (Definition 1).
func RICAcyclic(set *ConstraintSet) bool { return depgraph.RICAcyclic(set) }

// One-shot entry points. Each answers once over a throwaway enumeration;
// callers that answer more than once against the same instance should hold
// a Session instead.

// ConsistentAnswersCtx computes the certain answers of q over all repairs
// (Definition 8). Cancelling ctx aborts the enumeration with ctx.Err().
func ConsistentAnswersCtx(ctx context.Context, d *Instance, set *ConstraintSet, q *Query, opts CQAOptions) (Answer, error) {
	return core.ConsistentAnswersCtx(ctx, d, set, q, opts)
}

// PossibleAnswersCtx computes the brave answers (true in some repair).
func PossibleAnswersCtx(ctx context.Context, d *Instance, set *ConstraintSet, q *Query, opts CQAOptions) ([]Tuple, error) {
	return core.PossibleAnswersCtx(ctx, d, set, q, opts)
}

// RepairsCtx enumerates Rep(D, IC) (Section 4) under opts: the zero value
// means the paper's null-based semantics with default budgets.
func RepairsCtx(ctx context.Context, d *Instance, set *ConstraintSet, opts RepairOptions) (RepairResult, error) {
	return repair.RepairsCtx(ctx, d, set, opts)
}

// RepairsDCtx enumerates the deletion-preferring class Rep_d for sets with
// conflicting NOT NULL-constraints (Example 20).
func RepairsDCtx(ctx context.Context, d *Instance, set *ConstraintSet, opts RepairOptions) (RepairResult, error) {
	return repair.RepairsDCtx(ctx, d, set, opts)
}

// IsRepairCtx decides repair checking (Theorem 1's decision problem) by
// short-circuiting membership in the enumerated repair set.
func IsRepairCtx(ctx context.Context, d *Instance, set *ConstraintSet, cand *Instance, opts RepairOptions) (bool, error) {
	return repair.IsRepairCtx(ctx, d, set, cand, opts)
}

// StableModelRepairsCtx computes repairs via stable models of the repair
// program (corrected variant).
func StableModelRepairsCtx(ctx context.Context, d *Instance, set *ConstraintSet, opts StableOptions) ([]*Instance, error) {
	tr, err := repairprog.Build(d, set, repairprog.VariantCorrected)
	if err != nil {
		return nil, err
	}
	insts, _, err := tr.StableRepairsCtx(ctx, opts)
	return insts, err
}

// Repair programs (Section 5).

// BuildRepairProgram generates the Definition 9 repair program Π(D, IC).
func BuildRepairProgram(d *Instance, set *ConstraintSet, variant repairprog.Variant) (*RepairProgram, error) {
	return repairprog.Build(d, set, variant)
}

// BuildRepairProgramWith generates the program with explicit options, e.g.
// PruneUnconstrained to skip annotation rules for relations no constraint
// mentions (the [12]-style optimization).
func BuildRepairProgramWith(d *Instance, set *ConstraintSet, opts RepairProgramOptions) (*RepairProgram, error) {
	return repairprog.BuildWith(d, set, opts)
}

// GuaranteedHCF reports Theorem 5's sufficient head-cycle-freeness
// condition on the constraint set.
func GuaranteedHCF(set *ConstraintSet) bool { return repairprog.GuaranteedHCF(set) }

// Direct query evaluation (no repairs).

// EvalQuery evaluates q directly on one instance.
func EvalQuery(d *Instance, q *Query) ([]Tuple, error) { return query.Eval(d, q) }

// EvalQueryWith evaluates q with an explicit null-handling mode.
func EvalQueryWith(d *Instance, q *Query, opts QueryOptions) ([]Tuple, error) {
	return query.EvalWith(d, q, opts)
}

// Deprecated flat wrappers. Each delegates to its ...Ctx variant with
// context.Background(); they remain for source compatibility and add no
// behaviour.

// ConsistentAnswers computes the certain answers of q over all repairs.
//
// Deprecated: use ConsistentAnswersCtx, or a Session for repeated answers.
func ConsistentAnswers(d *Instance, set *ConstraintSet, q *Query, opts CQAOptions) (Answer, error) {
	return ConsistentAnswersCtx(context.Background(), d, set, q, opts)
}

// PossibleAnswers computes the brave answers (true in some repair).
//
// Deprecated: use PossibleAnswersCtx, or a Session for repeated answers.
func PossibleAnswers(d *Instance, set *ConstraintSet, q *Query, opts CQAOptions) ([]Tuple, error) {
	return PossibleAnswersCtx(context.Background(), d, set, q, opts)
}

// Repairs enumerates Rep(D, IC) under the paper's null-based semantics.
//
// Deprecated: use RepairsCtx.
func Repairs(d *Instance, set *ConstraintSet) (RepairResult, error) {
	return RepairsCtx(context.Background(), d, set, RepairOptions{})
}

// RepairsWith enumerates repairs with explicit options (classic baseline,
// state limits).
//
// Deprecated: use RepairsCtx.
func RepairsWith(d *Instance, set *ConstraintSet, opts RepairOptions) (RepairResult, error) {
	return RepairsCtx(context.Background(), d, set, opts)
}

// RepairsD enumerates the deletion-preferring class Rep_d.
//
// Deprecated: use RepairsDCtx.
func RepairsD(d *Instance, set *ConstraintSet) (RepairResult, error) {
	return RepairsDCtx(context.Background(), d, set, RepairOptions{})
}

// IsRepair decides repair checking by membership in the enumerated repair
// set.
//
// Deprecated: use IsRepairCtx.
func IsRepair(d *Instance, set *ConstraintSet, cand *Instance) (bool, error) {
	return IsRepairCtx(context.Background(), d, set, cand, RepairOptions{})
}

// StableModelRepairs computes repairs via stable models of the repair
// program (corrected variant).
//
// Deprecated: use StableModelRepairsCtx.
func StableModelRepairs(d *Instance, set *ConstraintSet) ([]*Instance, error) {
	return StableModelRepairsCtx(context.Background(), d, set, StableOptions{})
}

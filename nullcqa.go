package nullcqa

import (
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/nullsem"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/repairprog"
	"repro/internal/session"
	"repro/internal/stable"
	"repro/internal/value"
)

// Core data types, re-exported for API clients.
type (
	// Value is a database constant; the zero value is null.
	Value = value.V
	// Tuple is a sequence of constants.
	Tuple = relational.Tuple
	// Fact is a ground database atom.
	Fact = relational.Fact
	// Instance is a finite database instance (a set of facts).
	Instance = relational.Instance
	// Delta is a symmetric difference Δ(D, D′).
	Delta = relational.Delta
	// IC is an integrity constraint of the paper's form (1).
	IC = constraint.IC
	// NNC is a NOT NULL-constraint (form (5)).
	NNC = constraint.NNC
	// ConstraintSet is a finite set of ICs and NNCs.
	ConstraintSet = constraint.Set
	// Query is a safe union of conjunctive queries with negation.
	Query = query.Q
	// Answer is the result of consistent query answering.
	Answer = core.Answer
	// RepairResult is the outcome of repair enumeration.
	RepairResult = repair.Result
	// CQAOptions configures consistent query answering.
	CQAOptions = core.Options
	// RepairOptions configures repair enumeration.
	RepairOptions = repair.Options
	// Semantics selects an IC-satisfaction semantics.
	Semantics = nullsem.Semantics
	// ViolationReport lists all constraint violations of an instance.
	ViolationReport = nullsem.Report
	// RepairProgram is a generated Definition 9 program.
	RepairProgram = repairprog.Translation
)

// Value constructors.
var (
	// Null returns the distinguished null constant.
	Null = value.Null
	// Int returns an integer constant.
	Int = value.Int
	// Str returns a string constant.
	Str = value.Str
	// NewInstance builds an instance from facts.
	NewInstance = relational.NewInstance
	// F builds a fact.
	F = relational.F
)

// Satisfaction semantics (Section 3).
const (
	// SemNullAware is the paper's |=_N (Definition 4).
	SemNullAware = nullsem.NullAware
	// SemClassicFO is classical first-order satisfaction.
	SemClassicFO = nullsem.ClassicFO
	// SemAllExempt is the CASCON 2004 semantics (the paper's [10]).
	SemAllExempt = nullsem.AllExempt
	// SemSimpleMatch is SQL:2003 simple match (the DBMS behaviour).
	SemSimpleMatch = nullsem.SimpleMatch
	// SemPartialMatch is SQL:2003 partial match.
	SemPartialMatch = nullsem.PartialMatch
	// SemFullMatch is SQL:2003 full match.
	SemFullMatch = nullsem.FullMatch
)

// Repair modes (Section 4).
const (
	// RepairNullBased is the paper's semantics: null insertions, ≤_D
	// minimality.
	RepairNullBased = repair.NullBased
	// RepairClassic is the Arenas–Bertossi–Chomicki baseline.
	RepairClassic = repair.Classic
)

// Repair program variants (Section 5; see DESIGN.md for the wrinkle).
const (
	// VariantPaper is Definition 9 verbatim.
	VariantPaper = repairprog.VariantPaper
	// VariantCorrected adds the fact-based aux rule restoring Theorem 4
	// on instances with nulls in existential witness positions.
	VariantCorrected = repairprog.VariantCorrected
)

// CQA engines.
const (
	// EngineSearch enumerates repairs with the violation-driven search.
	EngineSearch = core.EngineSearch
	// EngineProgram uses Definition 9 repair programs and stable models.
	EngineProgram = core.EngineProgram
	// EngineProgramCautious compiles the query into the repair program
	// and answers by cautious stable-model reasoning (the paper's
	// Section 5 pipeline, no repairs materialized).
	EngineProgramCautious = core.EngineProgramCautious
)

// Query evaluation modes for the open |=q_N choice (see internal/query).
const (
	// QueryConstantNulls treats null as an ordinary constant (default).
	QueryConstantNulls = query.ConstantNulls
	// QuerySQLNulls follows SQL three-valued logic.
	QuerySQLNulls = query.SQLNulls
)

// QueryOptions configures direct query evaluation.
type QueryOptions = query.Options

// Parsing.

// ParseInstance parses a database instance (facts like "course(21, c15).").
func ParseInstance(src string) (*Instance, error) { return parser.Instance(src) }

// ParseConstraints parses a constraint set (see internal/parser for the
// grammar).
func ParseConstraints(src string) (*ConstraintSet, error) { return parser.Constraints(src) }

// ParseQuery parses a datalog-style query.
func ParseQuery(src string) (*Query, error) { return parser.Query(src) }

// Consistency checking (Section 3).

// IsConsistent reports D |=_N IC.
func IsConsistent(d *Instance, set *ConstraintSet) bool { return core.IsConsistent(d, set) }

// SatisfiesUnder checks the instance under any of the six implemented
// satisfaction semantics.
func SatisfiesUnder(d *Instance, set *ConstraintSet, sem Semantics) bool {
	return nullsem.Satisfies(d, set, sem)
}

// CheckViolations returns every violation under |=_N.
func CheckViolations(d *Instance, set *ConstraintSet) ViolationReport {
	return nullsem.Check(d, set, nullsem.NullAware)
}

// InsertionAllowed reports whether inserting f keeps the database
// consistent — the DBMS-style admission check of Examples 5–6.
func InsertionAllowed(d *Instance, set *ConstraintSet, f Fact, sem Semantics) bool {
	return nullsem.InsertionAllowed(d, set, f, sem)
}

// Repairs (Section 4).

// Repairs enumerates Rep(D, IC) under the paper's null-based semantics.
func Repairs(d *Instance, set *ConstraintSet) (RepairResult, error) {
	return repair.Repairs(d, set, repair.Options{})
}

// RepairsWith enumerates repairs with explicit options (classic baseline,
// state limits).
func RepairsWith(d *Instance, set *ConstraintSet, opts RepairOptions) (RepairResult, error) {
	return repair.Repairs(d, set, opts)
}

// RepairsD enumerates the deletion-preferring class Rep_d for sets with
// conflicting NOT NULL-constraints (Example 20).
func RepairsD(d *Instance, set *ConstraintSet) (RepairResult, error) {
	return repair.RepairsD(d, set, repair.Options{})
}

// IsRepair decides repair checking (Theorem 1's decision problem) by
// membership in the enumerated repair set.
func IsRepair(d *Instance, set *ConstraintSet, cand *Instance) (bool, error) {
	return repair.IsRepair(d, set, cand, repair.Options{})
}

// RICAcyclic reports whether the set is RIC-acyclic (Definition 1).
func RICAcyclic(set *ConstraintSet) bool { return depgraph.RICAcyclic(set) }

// Repair programs (Section 5).

// BuildRepairProgram generates the Definition 9 repair program Π(D, IC).
func BuildRepairProgram(d *Instance, set *ConstraintSet, variant repairprog.Variant) (*RepairProgram, error) {
	return repairprog.Build(d, set, variant)
}

// RepairProgramOptions configures program generation (variant, pruning).
type RepairProgramOptions = repairprog.BuildOptions

// BuildRepairProgramWith generates the program with explicit options, e.g.
// PruneUnconstrained to skip annotation rules for relations no constraint
// mentions (the [12]-style optimization).
func BuildRepairProgramWith(d *Instance, set *ConstraintSet, opts RepairProgramOptions) (*RepairProgram, error) {
	return repairprog.BuildWith(d, set, opts)
}

// GuaranteedHCF reports Theorem 5's sufficient head-cycle-freeness
// condition on the constraint set.
func GuaranteedHCF(set *ConstraintSet) bool { return repairprog.GuaranteedHCF(set) }

// StableModelRepairs computes repairs via stable models of the repair
// program (corrected variant).
func StableModelRepairs(d *Instance, set *ConstraintSet) ([]*Instance, error) {
	tr, err := repairprog.Build(d, set, repairprog.VariantCorrected)
	if err != nil {
		return nil, err
	}
	insts, _, err := tr.StableRepairs(stable.Options{})
	return insts, err
}

// Consistent query answering (Definition 8).

// NewCQAOptions returns the default CQA options.
func NewCQAOptions() CQAOptions { return core.NewOptions() }

// ConsistentAnswers computes the certain answers of q over all repairs.
func ConsistentAnswers(d *Instance, set *ConstraintSet, q *Query, opts CQAOptions) (Answer, error) {
	return core.ConsistentAnswers(d, set, q, opts)
}

// PossibleAnswers computes the brave answers (true in some repair).
func PossibleAnswers(d *Instance, set *ConstraintSet, q *Query, opts CQAOptions) ([]Tuple, error) {
	return core.PossibleAnswers(d, set, q, opts)
}

// Sessions (live CQA over an update stream).

// Session is a persistent (D, IC) pair: maintained violations, cached
// repairs, prepared standing queries, O(|Δ|) updates via Apply.
type Session = session.Session

// SessionPrepared is a standing query registered with Session.Prepare.
type SessionPrepared = session.Prepared

// SessionApplyResult summarizes one Session.Apply.
type SessionApplyResult = session.ApplyResult

// SessionQueryUpdate is pushed to Subscribe callbacks when a prepared
// query's certain answers change.
type SessionQueryUpdate = session.QueryUpdate

// NewSession creates a session over d and set; d is frozen and all
// subsequent mutation goes through Session.Apply.
func NewSession(d *Instance, set *ConstraintSet, opts CQAOptions) *Session {
	return session.New(d, set, opts)
}

// EvalQuery evaluates q directly on one instance (no repairs).
func EvalQuery(d *Instance, q *Query) ([]Tuple, error) { return query.Eval(d, q) }

// EvalQueryWith evaluates q with an explicit null-handling mode.
func EvalQueryWith(d *Instance, q *Query, opts QueryOptions) ([]Tuple, error) {
	return query.EvalWith(d, q, opts)
}

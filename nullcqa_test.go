package nullcqa_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	nullcqa "repro"
)

func TestPublicAPIQuickstart(t *testing.T) {
	// The Example 14/15 flow through the public facade.
	d, err := nullcqa.ParseInstance(`
		course(21, c15).
		course(34, c18).
		student(21, "Ann").
		student(45, "Paul").
	`)
	if err != nil {
		t.Fatal(err)
	}
	set, err := nullcqa.ParseConstraints(`course(Id, Code) -> student(Id, Name).`)
	if err != nil {
		t.Fatal(err)
	}
	if nullcqa.IsConsistent(d, set) {
		t.Fatal("instance must be inconsistent")
	}
	rep := nullcqa.CheckViolations(d, set)
	if rep.Consistent() || len(rep.IC) != 1 {
		t.Fatalf("violations = %v", rep)
	}

	res, err := nullcqa.RepairsCtx(context.Background(), d, set, nullcqa.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Repairs) != 2 {
		t.Fatalf("repairs = %d, want 2", len(res.Repairs))
	}

	q, err := nullcqa.ParseQuery(`q(Id, Code) :- course(Id, Code).`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := nullcqa.ConsistentAnswersCtx(context.Background(), d, set, q, nullcqa.NewCQAOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Tuples) != 1 || ans.Tuples[0][0].String() != "21" {
		t.Fatalf("certain answers = %v", ans.Tuples)
	}
}

func TestPublicAPISessionFirst(t *testing.T) {
	// The session-first flow: one persistent (D, IC) pair, a standing
	// query, and an O(|Δ|) update that pushes a diff to the subscriber.
	d, err := nullcqa.ParseInstance(`course(21, c15). course(34, c18). student(21, "Ann").`)
	if err != nil {
		t.Fatal(err)
	}
	set, err := nullcqa.ParseConstraints(`course(Id, Code) -> student(Id, Name).`)
	if err != nil {
		t.Fatal(err)
	}
	s := nullcqa.NewSession(d, set, nullcqa.NewCQAOptions())
	if s.Consistent() {
		t.Fatal("fixture must start inconsistent")
	}
	q, err := nullcqa.ParseQuery(`q(Id) :- course(Id, Code).`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.PrepareCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Answers(); len(got) != 1 || got[0][0].String() != "21" {
		t.Fatalf("initial certain answers = %v", got)
	}
	var updates []nullcqa.SessionQueryUpdate
	p.Subscribe(func(u nullcqa.SessionQueryUpdate) { updates = append(updates, u) })

	delta := nullcqa.Delta{Added: []nullcqa.Fact{nullcqa.F("student", nullcqa.Int(34), nullcqa.Str("Tom"))}}
	if _, err := s.ApplyCtx(context.Background(), delta); err != nil {
		t.Fatal(err)
	}
	if !s.Consistent() {
		t.Fatal("adding the missing student must restore consistency")
	}
	if len(updates) != 1 || len(updates[0].Added) != 1 {
		t.Fatalf("updates = %+v, want one diff adding (34)", updates)
	}
	if got := p.Answers(); len(got) != 2 {
		t.Fatalf("refreshed certain answers = %v", got)
	}
}

func TestPublicAPITypedErrors(t *testing.T) {
	// Parse errors carry their position through the facade.
	for _, src := range []struct{ name, bad string }{
		{"instance", "r(a,\n b"},
		{"constraints", "r(X) ->"},
		{"query", "q( :-"},
	} {
		var err error
		switch src.name {
		case "instance":
			_, err = nullcqa.ParseInstance(src.bad)
		case "constraints":
			_, err = nullcqa.ParseConstraints(src.bad)
		case "query":
			_, err = nullcqa.ParseQuery(src.bad)
		}
		var pe *nullcqa.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: error %v is not a *ParseError", src.name, err)
		}
		if pe.Line < 1 || pe.Col < 1 {
			t.Errorf("%s: position %d:%d not 1-based", src.name, pe.Line, pe.Col)
		}
	}

	d, _ := nullcqa.ParseInstance(`p(a). p(b). q(b, c).`)
	conflicting, _ := nullcqa.ParseConstraints(`
		p(X) -> q(X, Y).
		q(X, Y), isnull(Y) -> false.
	`)
	if _, err := nullcqa.RepairsCtx(context.Background(), d, conflicting, nullcqa.RepairOptions{}); !errors.Is(err, nullcqa.ErrConflictingSet) {
		t.Errorf("conflicting set: err = %v, want ErrConflictingSet", err)
	}

	set, _ := nullcqa.ParseConstraints(`p(X) -> q(X, Y).`)
	if _, err := nullcqa.RepairsCtx(context.Background(), d, set, nullcqa.RepairOptions{MaxStates: 1}); !errors.Is(err, nullcqa.ErrStateLimit) {
		t.Errorf("MaxStates=1: err = %v, want ErrStateLimit", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q, _ := nullcqa.ParseQuery(`q(X) :- p(X).`)
	if _, err := nullcqa.ConsistentAnswersCtx(ctx, d, set, q, nullcqa.NewCQAOptions()); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestPublicAPISemantics(t *testing.T) {
	d := nullcqa.NewInstance(nullcqa.F("p", nullcqa.Str("a"), nullcqa.Str("b"), nullcqa.Null()))
	set, err := nullcqa.ParseConstraints(`p(X, Y, Z) -> r(Y, Z).`)
	if err != nil {
		t.Fatal(err)
	}
	if !nullcqa.SatisfiesUnder(d, set, nullcqa.SemNullAware) {
		t.Error("null in a relevant attribute must exempt under |=_N")
	}
	if nullcqa.SatisfiesUnder(d, set, nullcqa.SemFullMatch) {
		t.Error("full match must reject a partially null key")
	}
	if !nullcqa.InsertionAllowed(d, set, nullcqa.F("r", nullcqa.Str("x"), nullcqa.Str("y")), nullcqa.SemNullAware) {
		t.Error("harmless insertion rejected")
	}
}

func TestPublicAPIRepairPrograms(t *testing.T) {
	d, err := nullcqa.ParseInstance(`r(a, b). r(a, c).`)
	if err != nil {
		t.Fatal(err)
	}
	set, err := nullcqa.ParseConstraints(`r(X, Y), r(X, Z) -> Y = Z.`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := nullcqa.BuildRepairProgram(d, set, nullcqa.VariantPaper)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Program.String(), "r_a(X,Y,fa) v r_a(X,Z,fa)") {
		t.Errorf("program:\n%s", tr.Program)
	}
	if !strings.Contains(tr.Program.DLV(), ":-") {
		t.Error("DLV export looks empty")
	}
	insts, err := nullcqa.StableModelRepairsCtx(context.Background(), d, set, nullcqa.StableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("stable repairs = %d, want 2", len(insts))
	}
	if !nullcqa.GuaranteedHCF(set) {
		t.Error("FD-only set satisfies Theorem 5's condition")
	}
	if !nullcqa.RICAcyclic(set) {
		t.Error("UIC-only set must be RIC-acyclic")
	}
}

func TestPublicAPIRepairsDAndClassic(t *testing.T) {
	d, err := nullcqa.ParseInstance(`p(a). p(b). q(b, c).`)
	if err != nil {
		t.Fatal(err)
	}
	set, err := nullcqa.ParseConstraints(`
		p(X) -> q(X, Y).
		q(X, Y), isnull(Y) -> false.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nullcqa.RepairsCtx(context.Background(), d, set, nullcqa.RepairOptions{}); err == nil {
		t.Error("conflicting set must be refused by RepairsCtx")
	}
	res, err := nullcqa.RepairsDCtx(context.Background(), d, set, nullcqa.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Repairs) != 1 {
		t.Fatalf("Rep_d = %d repairs, want 1", len(res.Repairs))
	}

	d2, _ := nullcqa.ParseInstance(`p(a).`)
	set2, _ := nullcqa.ParseConstraints(`p(X) -> q(X, Y).`)
	classic, err := nullcqa.RepairsCtx(context.Background(), d2, set2, nullcqa.RepairOptions{Mode: nullcqa.RepairClassic})
	if err != nil {
		t.Fatal(err)
	}
	if len(classic.Repairs) != 2 { // delete p(a), or insert q(a,a)
		t.Fatalf("classic repairs = %d, want 2", len(classic.Repairs))
	}
}

func TestPublicAPIIsRepair(t *testing.T) {
	d, _ := nullcqa.ParseInstance(`p(a, null). p(b, c). r(a, b).`)
	set, _ := nullcqa.ParseConstraints(`p(X, Y) -> r(X, Z).`)
	good, _ := nullcqa.ParseInstance(`p(a, null). r(a, b).`)
	ok, err := nullcqa.IsRepairCtx(context.Background(), d, set, good, nullcqa.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("deletion repair not recognized")
	}
	bad := d.Clone()
	bad.Insert(nullcqa.F("r", nullcqa.Str("b"), nullcqa.Str("d")))
	ok, err = nullcqa.IsRepairCtx(context.Background(), d, set, bad, nullcqa.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("non-minimal instance accepted as repair")
	}
}

func TestPublicAPIPossibleAnswers(t *testing.T) {
	d, _ := nullcqa.ParseInstance(`course(34, c18). student(1, a).`)
	set, _ := nullcqa.ParseConstraints(`course(Id, Code) -> student(Id, Name).`)
	q, _ := nullcqa.ParseQuery(`q(Id) :- student(Id, Name).`)
	possible, err := nullcqa.PossibleAnswersCtx(context.Background(), d, set, q, nullcqa.NewCQAOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(possible) != 2 { // 1 certain + 34 possible
		t.Fatalf("possible = %v", possible)
	}
	direct, err := nullcqa.EvalQuery(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != 1 {
		t.Fatalf("direct = %v", direct)
	}
}

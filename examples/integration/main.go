// Integration: the paper's motivating scenario from Section 1 — a virtual
// data-integration setting where autonomous sources cannot be repaired, so
// inconsistencies must be solved at query time. Two sources are merged into
// one global instance that violates the global constraints; consistent
// answers are computed without ever fixing the sources, using the cautious
// stable-model engine (the paper's Section 5 pipeline end to end).
package main

import (
	"context"
	"fmt"
	"log"

	nullcqa "repro"
)

func main() {
	// Source 1: the registrar's enrollment feed.
	// Source 2: the department's directory (with missing data as nulls).
	// Merged global instance:
	global, err := nullcqa.ParseInstance(`
		% source 1: enroll(Student, Course)
		enroll(s1, db101).
		enroll(s2, db101).
		enroll(s3, os201).

		% source 2: person(Student, Email), offering(Course, Teacher)
		person(s1, "ann@u.edu").
		person(s2, null).
		offering(db101, "Prof. Codd").

		% source-local audit trail, untouched by any constraint
		provenance(s1, "registrar").
		provenance(s3, "registrar").
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Global constraints: every enrolled student is a known person, and
	// every course with enrollments has an offering row.
	ics, err := nullcqa.ParseConstraints(`
		enroll(S, C) -> person(S, E).
		enroll(S, C) -> offering(C, T).
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("global instance consistent:", nullcqa.IsConsistent(global, ics))
	fmt.Println(nullcqa.CheckViolations(global, ics))
	// s3 is unknown to the directory, and os201 has no offering: the
	// sources disagree, but we cannot repair them.

	res, err := nullcqa.RepairsCtx(context.Background(), global, ics, nullcqa.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvirtual repairs: %d (with null placeholders for the missing data)\n", len(res.Repairs))
	for i := range res.Repairs {
		fmt.Printf("  Δ%d = %s\n", i+1, res.Deltas[i])
	}

	// Query time: which students are certainly enrolled in a course that
	// certainly has a teacher? Answered by cautious reasoning over the
	// stable models of the repair program — no repair is materialized.
	q, err := nullcqa.ParseQuery(`q(S) :- enroll(S, C), offering(C, T).`)
	if err != nil {
		log.Fatal(err)
	}
	opts := nullcqa.NewCQAOptions()
	opts.Engine = nullcqa.EngineProgramCautious
	ans, err := nullcqa.ConsistentAnswersCtx(context.Background(), global, ics, q, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconsistently enrolled with a certain teacher (%d repairs considered):\n", ans.NumRepairs)
	for _, t := range ans.Tuples {
		fmt.Println("  " + t.String())
	}

	// Possible answers (true in some repair) for comparison.
	possible, err := nullcqa.PossibleAnswersCtx(context.Background(), global, ics, q, nullcqa.NewCQAOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npossibly enrolled with a teacher:")
	for _, t := range possible {
		fmt.Println("  " + t.String())
	}
}

// HR: the paper's Example 19/21/23 — a primary key, a foreign key and a
// NOT NULL-constraint interacting. Shows the four repairs, the generated
// Definition 9 repair program (also in DLV syntax), and the stable-model
// route to the same repairs (Theorem 4).
package main

import (
	"context"
	"fmt"
	"log"

	nullcqa "repro"
)

func main() {
	// R(X,Y) with key R[1]; S(U,V) with S[2] a foreign key to R[1].
	db, err := nullcqa.ParseInstance(`
		r(a, b).
		r(a, c).      % key violation with r(a,b)
		s(e, f).      % dangling reference: no r(f, _)
		s(null, a).   % null in a non-referencing attribute: harmless
	`)
	if err != nil {
		log.Fatal(err)
	}
	ics, err := nullcqa.ParseConstraints(`
		r(X, Y), r(X, Z) -> Y = Z.
		s(U, V) -> r(V, W).
		r(X, Y), isnull(X) -> false.
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("RIC-acyclic:", nullcqa.RICAcyclic(ics))
	fmt.Println("Theorem 5 HCF condition:", nullcqa.GuaranteedHCF(ics))
	fmt.Println("consistent:", nullcqa.IsConsistent(db, ics))

	res, err := nullcqa.RepairsCtx(context.Background(), db, ics, nullcqa.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d repairs via search:\n", len(res.Repairs))
	for i, r := range res.Repairs {
		fmt.Printf("  D%d = %s\n", i+1, r)
	}

	tr, err := nullcqa.BuildRepairProgram(db, ics, nullcqa.VariantPaper)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepair program Π(D,IC) (Definition 9):\n%s", tr.Render())
	fmt.Printf("\nDLV syntax:\n%s", tr.Program.DLV())

	insts, err := nullcqa.StableModelRepairsCtx(context.Background(), db, ics, nullcqa.StableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d repairs via stable models (Theorem 4):\n", len(insts))
	for i, r := range insts {
		fmt.Printf("  D%d = %s\n", i+1, r)
	}

	// A certain fact: s(null,a) survives every repair, and some r(a,_)
	// row always exists.
	q, err := nullcqa.ParseQuery(`q :- s(U, a), r(a, Y).`)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := nullcqa.ConsistentAnswersCtx(context.Background(), db, ics, q, nullcqa.NewCQAOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncertainly some s(_,a) references an existing r(a,_): %v\n", ans.Boolean)
}

// Quickstart: the Course/Student scenario of the paper's Examples 14–15 in
// five minutes — check consistency, enumerate the null-based repairs, and
// answer a query consistently.
package main

import (
	"context"
	"fmt"
	"log"

	nullcqa "repro"
)

func main() {
	// A database violating the referential constraint
	// Course(Id, Code) -> ∃Name Student(Id, Name):
	// course 34 has no student row.
	db, err := nullcqa.ParseInstance(`
		course(21, c15).
		course(34, c18).
		student(21, "Ann").
		student(45, "Paul").
	`)
	if err != nil {
		log.Fatal(err)
	}
	ics, err := nullcqa.ParseConstraints(`course(Id, Code) -> student(Id, Name).`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("consistent:", nullcqa.IsConsistent(db, ics))
	fmt.Println(nullcqa.CheckViolations(db, ics))

	// The paper's repair semantics introduces nulls instead of sweeping
	// the (infinite) domain: exactly two repairs.
	res, err := nullcqa.RepairsCtx(context.Background(), db, ics, nullcqa.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d repairs:\n", len(res.Repairs))
	for i, r := range res.Repairs {
		fmt.Printf("  repair %d: %s  (Δ = %s)\n", i+1, r, res.Deltas[i])
	}

	// Consistent answers are those true in every repair (Definition 8):
	// course 34 may be deleted, so only course 21 is certain.
	q, err := nullcqa.ParseQuery(`q(Id, Code) :- course(Id, Code).`)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := nullcqa.ConsistentAnswersCtx(context.Background(), db, ics, q, nullcqa.NewCQAOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconsistent answers to %s:\n", q)
	for _, t := range ans.Tuples {
		fmt.Println("  " + t.String())
	}

	// The same computation through Definition 9's repair logic program
	// and its stable models gives the same result (Theorem 4).
	opts := nullcqa.NewCQAOptions()
	opts.Engine = nullcqa.EngineProgram
	ans2, err := nullcqa.ConsistentAnswersCtx(context.Background(), db, ics, q, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvia stable models of the repair program: %d answers over %d repairs\n",
		len(ans2.Tuples), ans2.NumRepairs)
}

// Semantics: side-by-side comparison of the six implemented satisfaction
// semantics on the paper's discriminating instances (Examples 4, 6, 8, 9
// and 13). This is the matrix Section 3 builds its case on: the paper's
// |=_N generalizes the SQL simple-match behaviour of commercial DBMSs,
// while the earlier [10] semantics is too liberal and partial/full match
// are too strict.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	nullcqa "repro"
)

type scenario struct {
	name string
	db   string
	ics  string
}

func main() {
	scenarios := []scenario{
		{
			name: "Ex4/ψ1: P(a,b,null) vs P(x,y,z)->R(y,z)",
			db:   `p(a, b, null).`,
			ics:  `p(X, Y, Z) -> r(Y, Z).`,
		},
		{
			name: "Ex4/ψ2: P(a,b,null) vs P(x,y,z)->R(x,y)",
			db:   `p(a, b, null).`,
			ics:  `p(X, Y, Z) -> r(X, Y).`,
		},
		{
			name: "Ex6: null salary vs Salary>100",
			db:   `emp(41, "Paul", null).`,
			ics:  `emp(Id, Name, Salary) -> Salary > 100.`,
		},
		{
			name: "Ex8: null age vs u > w+15",
			db: `person("Lee","Rod","Mary",27).
			     person("Mary","Adam","Ann",null).`,
			ics: `person(X,Y,Z,W), person(Z,S,T,U) -> U > W + 15.`,
		},
		{
			name: "Ex9: null in referenced attribute",
			db: `course(cs18, w04, 34).
			     employee(w04, null).`,
			ics: `course(X, Y, Z) -> employee(Y, Z).`,
		},
		{
			name: "Ex13: null witness for ∃z Q(x,z,z)",
			db: `p(a, b).
			     q(a, null, null).`,
			ics: `p(X, Y) -> q(X, Z, Z).`,
		},
	}

	sems := []nullcqa.Semantics{
		nullcqa.SemNullAware, nullcqa.SemClassicFO, nullcqa.SemAllExempt,
		nullcqa.SemSimpleMatch, nullcqa.SemPartialMatch, nullcqa.SemFullMatch,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "scenario")
	for _, s := range sems {
		fmt.Fprintf(tw, "\t%v", s)
	}
	fmt.Fprintln(tw)
	for _, sc := range scenarios {
		db, err := nullcqa.ParseInstance(sc.db)
		if err != nil {
			log.Fatal(err)
		}
		ics, err := nullcqa.ParseConstraints(sc.ics)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprint(tw, sc.name)
		for _, sem := range sems {
			mark := "✓"
			if !nullcqa.SatisfiesUnder(db, ics, sem) {
				mark = "✗"
			}
			fmt.Fprintf(tw, "\t%s", mark)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Println("\n✓ = consistent, ✗ = inconsistent.")
	fmt.Println("|=_N agrees with SQL simple match on DBMS-expressible constraints and")
	fmt.Println("extends it to arbitrary universal and referential constraints.")
}

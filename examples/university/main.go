// University: the paper's Example 5 — a Course table whose (ID, Code) pair
// references the key of an experience table Exp, with nulls scattered both
// in relevant and irrelevant attributes. Reproduces the IBM DB2 verdicts,
// the rejected insertion, and what happens to an inconsistent variant.
package main

import (
	"context"
	"fmt"
	"log"

	nullcqa "repro"
)

func main() {
	db, err := nullcqa.ParseInstance(`
		course(cs27, 21, w04).
		course(cs18, 34, null).   % null Term: irrelevant for the FK
		course(cs50, null, w05).  % null ID: simple match exempts the row
		exp(21, cs27, 3).
		exp(34, cs18, null).      % null Times: irrelevant for the key
		exp(45, cs32, 2).
	`)
	if err != nil {
		log.Fatal(err)
	}
	ics, err := nullcqa.ParseConstraints(`
		course(Code, Id, Term) -> exp(Id, Code, Times).
		exp(I, C, T1), exp(I, C, T2) -> T1 = T2.
		exp(I, C, T), isnull(I) -> false.
		exp(I, C, T), isnull(C) -> false.
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("verdicts per satisfaction semantics:")
	for _, sem := range []nullcqa.Semantics{
		nullcqa.SemNullAware, nullcqa.SemSimpleMatch,
		nullcqa.SemPartialMatch, nullcqa.SemFullMatch,
	} {
		fmt.Printf("  %-14v %v\n", sem, nullcqa.SatisfiesUnder(db, ics, sem))
	}

	// DB2 rejects this insertion: both FK attributes are non-null and no
	// matching Exp row exists.
	bad := nullcqa.F("course", nullcqa.Str("cs41"), nullcqa.Int(18), nullcqa.Null())
	fmt.Printf("\ninsert course(cs41,18,null) allowed: %v (DB2 rejects it)\n",
		nullcqa.InsertionAllowed(db, ics, bad, nullcqa.SemNullAware))

	// Force the inconsistency in and repair it.
	db.Insert(bad)
	fmt.Println("\nafter forcing the row in:")
	fmt.Println(nullcqa.CheckViolations(db, ics))
	res, err := nullcqa.RepairsCtx(context.Background(), db, ics, nullcqa.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d repairs:\n", len(res.Repairs))
	for i := range res.Repairs {
		fmt.Printf("  repair %d: Δ = %s\n", i+1, res.Deltas[i])
	}

	// Which courses can be trusted? cs41 survives in the repair that
	// invents exp(18, cs41, null), but not in the deleting repair.
	q, err := nullcqa.ParseQuery(`q(Code) :- course(Code, Id, Term).`)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := nullcqa.ConsistentAnswersCtx(context.Background(), db, ics, q, nullcqa.NewCQAOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconsistently answered course codes:")
	for _, t := range ans.Tuples {
		fmt.Println("  " + t.String())
	}
}

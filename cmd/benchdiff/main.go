// Command benchdiff converts `go test -bench` output into the BENCH_*.json
// format the CI benchmark-regression gate tracks, and compares two such
// files, failing on regressions. It is also what CHANGES.md perf notes are
// generated from.
//
// Usage:
//
//	benchdiff -parse bench.txt -o BENCH_4.json
//	    Parse benchmark output (possibly -count N repetitions; the median
//	    per benchmark is kept) into JSON: name -> {ns_per_op, allocs_per_op}.
//
//	benchdiff -baseline bench/baseline.json -current BENCH_4.json [-threshold 25] [-min-ns 1000000] [-summary path]
//	    Print a delta table and exit 1 when any tracked benchmark regressed
//	    by more than threshold percent. Benchmarks whose baseline ns/op is
//	    below min-ns (default 1ms) are compared on allocs/op only: with
//	    -benchtime 1x a sub-millisecond timing is scheduler noise, while
//	    allocation counts are deterministic, so the micro benchmarks are
//	    gated on allocations and the macro workloads on wall time. A
//	    benchmark present in the baseline but missing from the current run
//	    also fails the gate (delete it from the baseline deliberately, not
//	    silently).
//
//	    -summary appends the same comparison as a GitHub-flavored markdown
//	    table to the given file (defaulting to $GITHUB_STEP_SUMMARY, so CI
//	    runs surface the per-benchmark old/new/delta table on the workflow
//	    summary page); the table is written whether or not the gate fails.
//
// GOMAXPROCS suffixes ("-4") are stripped from benchmark names so files
// compare across machines with different core counts.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one tracked benchmark measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// File is the BENCH_*.json schema.
type File struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	parse := fs.String("parse", "", "benchmark output file to convert to JSON")
	out := fs.String("o", "", "output JSON path for -parse (default stdout)")
	baseline := fs.String("baseline", "", "baseline BENCH JSON for comparison")
	current := fs.String("current", "", "current BENCH JSON for comparison")
	threshold := fs.Float64("threshold", 25, "regression threshold in percent")
	minNs := fs.Float64("min-ns", 1_000_000, "below this baseline ns/op, compare allocs/op only")
	summary := fs.String("summary", "", "append a markdown comparison table to this file (default $GITHUB_STEP_SUMMARY)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *parse != "":
		f, err := parseBenchOutput(*parse)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *out == "" {
			_, err = stdout.Write(data)
			return err
		}
		return os.WriteFile(*out, data, 0o644)
	case *baseline != "" && *current != "":
		base, err := readFile(*baseline)
		if err != nil {
			return err
		}
		cur, err := readFile(*current)
		if err != nil {
			return err
		}
		gateErr := compare(stdout, base, cur, *threshold, *minNs)
		path := *summary
		if path == "" {
			path = os.Getenv("GITHUB_STEP_SUMMARY")
		}
		if path != "" {
			// The summary is written even when the gate fails — a failing
			// run is exactly when the table is wanted on the summary page.
			if err := appendSummary(path, base, cur, *threshold, *minNs); err != nil {
				return err
			}
		}
		return gateErr
	default:
		return fmt.Errorf("need either -parse, or -baseline and -current (see -h)")
	}
}

func readFile(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// benchLine matches one benchmark result line of `go test -bench` output.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)

// allocsField matches the -benchmem allocation column.
var allocsField = regexp.MustCompile(`([\d.]+) allocs/op`)

// parseBenchOutput reads `go test -bench` text, keeping the per-benchmark
// median over repeated runs (-count N).
func parseBenchOutput(path string) (File, error) {
	in, err := os.Open(path)
	if err != nil {
		return File{}, err
	}
	defer in.Close()

	ns := map[string][]float64{}
	allocs := map[string][]float64{}
	var order []string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimRight(sc.Text(), "\r"))
		if m == nil {
			continue
		}
		name, nsStr, rest := m[1], m[2], m[3]
		v, err := strconv.ParseFloat(nsStr, 64)
		if err != nil {
			return File{}, fmt.Errorf("%s: bad ns/op in %q", path, sc.Text())
		}
		if _, seen := ns[name]; !seen {
			order = append(order, name)
		}
		ns[name] = append(ns[name], v)
		if am := allocsField.FindStringSubmatch(rest); am != nil {
			a, err := strconv.ParseFloat(am[1], 64)
			if err != nil {
				return File{}, fmt.Errorf("%s: bad allocs/op in %q", path, sc.Text())
			}
			allocs[name] = append(allocs[name], a)
		}
	}
	if err := sc.Err(); err != nil {
		return File{}, err
	}
	if len(ns) == 0 {
		return File{}, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	f := File{Benchmarks: map[string]Result{}}
	for _, name := range order {
		f.Benchmarks[name] = Result{
			NsPerOp:     median(ns[name]),
			AllocsPerOp: median(allocs[name]),
		}
	}
	return f, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// compare prints the delta table and returns an error when the gate fails.
func compare(w io.Writer, base, cur File, threshold, minNs float64) error {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	fmt.Fprintf(w, "%-60s %14s %14s %8s %8s\n", "benchmark", "base ns/op", "cur ns/op", "Δns%", "Δallocs%")
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: tracked benchmark missing from current run", name))
			fmt.Fprintf(w, "%-60s %14.0f %14s %8s %8s\n", name, b.NsPerOp, "MISSING", "-", "-")
			continue
		}
		dNs := pctDelta(b.NsPerOp, c.NsPerOp)
		dAllocs := pctDelta(b.AllocsPerOp, c.AllocsPerOp)
		flag := ""
		if b.NsPerOp >= minNs && dNs > threshold {
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.1f%% (%.0f -> %.0f, threshold %.0f%%)",
				name, dNs, b.NsPerOp, c.NsPerOp, threshold))
			flag = "  << REGRESSION"
		}
		// pctDelta is 0 for a zero baseline, so a zero-alloc benchmark
		// growing any allocations must be failed explicitly or it would
		// slip through the gate entirely.
		if dAllocs > threshold || (b.AllocsPerOp == 0 && c.AllocsPerOp > 0) {
			failures = append(failures, fmt.Sprintf("%s: allocs/op regressed %.1f%% (%.0f -> %.0f, threshold %.0f%%)",
				name, dAllocs, b.AllocsPerOp, c.AllocsPerOp, threshold))
			flag = "  << REGRESSION"
		}
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %+7.1f%% %+7.1f%%%s\n", name, b.NsPerOp, c.NsPerOp, dNs, dAllocs, flag)
	}
	var untracked []string
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			untracked = append(untracked, name)
		}
	}
	sort.Strings(untracked)
	for _, name := range untracked {
		fmt.Fprintf(w, "%-60s %14s %14.0f %8s %8s\n", name, "untracked", cur.Benchmarks[name].NsPerOp, "-", "-")
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "gate ok: %d tracked benchmarks within %.0f%%\n", len(names), threshold)
	return nil
}

// pctDelta is the percentage change from base to cur; 0 when base is 0.
func pctDelta(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// appendSummary appends the markdown table to path (created if absent).
func appendSummary(path string, base, cur File, threshold, minNs float64) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return renderMarkdown(f, base, cur, threshold, minNs)
}

// renderMarkdown writes the baseline/current comparison as one GitHub-
// flavored markdown table: a row per tracked benchmark with old/new values
// and percentage deltas, regressions flagged (the same rules as the gate:
// ns/op only at or above minNs, allocs always, zero-alloc baselines must
// stay at zero), then the untracked current-only benchmarks.
func renderMarkdown(w io.Writer, base, cur File, threshold, minNs float64) error {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var buf strings.Builder
	regressions := 0
	buf.WriteString("### Benchmark gate\n\n")
	buf.WriteString("| benchmark | base ns/op | cur ns/op | Δns | base allocs | cur allocs | Δallocs | |\n")
	buf.WriteString("|---|---:|---:|---:|---:|---:|---:|---|\n")
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			regressions++
			fmt.Fprintf(&buf, "| `%s` | %.0f | missing | — | %.0f | missing | — | ❌ |\n",
				name, b.NsPerOp, b.AllocsPerOp)
			continue
		}
		dNs := pctDelta(b.NsPerOp, c.NsPerOp)
		dAllocs := pctDelta(b.AllocsPerOp, c.AllocsPerOp)
		bad := (b.NsPerOp >= minNs && dNs > threshold) ||
			dAllocs > threshold || (b.AllocsPerOp == 0 && c.AllocsPerOp > 0)
		flag := ""
		if bad {
			regressions++
			flag = "❌"
		}
		fmt.Fprintf(&buf, "| `%s` | %.0f | %.0f | %+.1f%% | %.0f | %.0f | %+.1f%% | %s |\n",
			name, b.NsPerOp, c.NsPerOp, dNs, b.AllocsPerOp, c.AllocsPerOp, dAllocs, flag)
	}
	var untracked []string
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			untracked = append(untracked, name)
		}
	}
	sort.Strings(untracked)
	for _, name := range untracked {
		c := cur.Benchmarks[name]
		fmt.Fprintf(&buf, "| `%s` | untracked | %.0f | — | untracked | %.0f | — | |\n",
			name, c.NsPerOp, c.AllocsPerOp)
	}
	if regressions > 0 {
		fmt.Fprintf(&buf, "\n**%d regression(s) over the %.0f%% threshold.**\n\n", regressions, threshold)
	} else {
		fmt.Fprintf(&buf, "\ngate ok: %d tracked benchmarks within %.0f%%\n\n", len(names), threshold)
	}
	_, err := io.WriteString(w, buf.String())
	return err
}

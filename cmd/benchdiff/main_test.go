package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStableRepairs/violations=3-4         	    1958	    611613 ns/op	  298242 B/op	    6026 allocs/op
BenchmarkStableRepairs/violations=3-4         	    1900	    650000 ns/op	  298242 B/op	    6026 allocs/op
BenchmarkStableRepairs/violations=3-4         	    2000	    600000 ns/op	  298242 B/op	    6026 allocs/op
BenchmarkDepGraph-4                           	  472441	      2568 ns/op	    1344 B/op	      30 allocs/op
PASS
ok  	repro	11.732s
`

func writeSample(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseMedianAndSuffixStripping(t *testing.T) {
	in := writeSample(t, "bench.txt", sampleBench)
	out := filepath.Join(t.TempDir(), "BENCH.json")
	var buf bytes.Buffer
	if err := run([]string{"-parse", in, "-o", out}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %v, want 2 entries", f.Benchmarks)
	}
	r, ok := f.Benchmarks["BenchmarkStableRepairs/violations=3"] // -4 suffix stripped
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", f.Benchmarks)
	}
	if r.NsPerOp != 611613 { // median of {600000, 611613, 650000}
		t.Errorf("median ns/op = %v, want 611613", r.NsPerOp)
	}
	if r.AllocsPerOp != 6026 {
		t.Errorf("allocs/op = %v, want 6026", r.AllocsPerOp)
	}
}

func benchJSON(t *testing.T, name string, f File) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	return writeSample(t, name, string(data))
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := benchJSON(t, "base.json", File{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1_000_000, AllocsPerOp: 100},
	}})
	cur := benchJSON(t, "cur.json", File{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1_200_000, AllocsPerOp: 110}, // +20%, +10%
		"BenchmarkB": {NsPerOp: 5, AllocsPerOp: 1},           // untracked: ignored
	}})
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &buf); err != nil {
		t.Fatalf("gate failed within threshold: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "gate ok") {
		t.Errorf("missing gate summary:\n%s", buf.String())
	}
}

// TestGateFailsOnSyntheticSlowdown is the acceptance check for the CI gate:
// a synthetic 30% ns/op slowdown on a tracked benchmark must fail.
func TestGateFailsOnSyntheticSlowdown(t *testing.T) {
	base := benchJSON(t, "base.json", File{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1_000_000, AllocsPerOp: 100},
	}})
	cur := benchJSON(t, "cur.json", File{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1_300_000, AllocsPerOp: 100}, // +30% > 25%
	}})
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &buf)
	if err == nil {
		t.Fatalf("gate passed a 30%% slowdown:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "ns/op regressed 30.0%") {
		t.Errorf("error does not name the regression: %v", err)
	}
	if !strings.Contains(buf.String(), "<< REGRESSION") {
		t.Errorf("table does not flag the regression:\n%s", buf.String())
	}
}

func TestGateFailsOnAllocRegressionEvenBelowNoiseFloor(t *testing.T) {
	base := benchJSON(t, "base.json", File{Benchmarks: map[string]Result{
		"BenchmarkTiny": {NsPerOp: 2_000, AllocsPerOp: 100}, // below -min-ns
	}})
	cur := benchJSON(t, "cur.json", File{Benchmarks: map[string]Result{
		"BenchmarkTiny": {NsPerOp: 9_000, AllocsPerOp: 140}, // noisy ns ignored, +40% allocs caught
	}})
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &buf)
	if err == nil || !strings.Contains(err.Error(), "allocs/op regressed 40.0%") {
		t.Fatalf("alloc regression not caught: err=%v\n%s", err, buf.String())
	}

	// The same ns blowup alone is below the noise floor: no failure.
	cur2 := benchJSON(t, "cur2.json", File{Benchmarks: map[string]Result{
		"BenchmarkTiny": {NsPerOp: 9_000, AllocsPerOp: 100},
	}})
	buf.Reset()
	if err := run([]string{"-baseline", base, "-current", cur2}, &buf); err != nil {
		t.Fatalf("sub-noise-floor timing failed the gate: %v", err)
	}
}

func TestGateFailsOnAllocsGrowingFromZeroBaseline(t *testing.T) {
	// pctDelta(0, x) is 0, so the zero-alloc case needs its own gate rule:
	// a benchmark with a zero-alloc baseline growing any allocations must
	// fail, not be silently exempt.
	base := benchJSON(t, "base.json", File{Benchmarks: map[string]Result{
		"BenchmarkZeroAlloc": {NsPerOp: 2_000, AllocsPerOp: 0},
	}})
	cur := benchJSON(t, "cur.json", File{Benchmarks: map[string]Result{
		"BenchmarkZeroAlloc": {NsPerOp: 2_000, AllocsPerOp: 500},
	}})
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &buf)
	if err == nil || !strings.Contains(err.Error(), "allocs/op regressed") {
		t.Fatalf("allocs growing from a zero baseline not caught: err=%v\n%s", err, buf.String())
	}

	// Staying at zero passes.
	cur2 := benchJSON(t, "cur2.json", File{Benchmarks: map[string]Result{
		"BenchmarkZeroAlloc": {NsPerOp: 2_000, AllocsPerOp: 0},
	}})
	buf.Reset()
	if err := run([]string{"-baseline", base, "-current", cur2}, &buf); err != nil {
		t.Fatalf("unchanged zero-alloc benchmark failed the gate: %v", err)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := benchJSON(t, "base.json", File{Benchmarks: map[string]Result{
		"BenchmarkGone": {NsPerOp: 1_000_000, AllocsPerOp: 100},
	}})
	cur := benchJSON(t, "cur.json", File{Benchmarks: map[string]Result{}})
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &buf)
	if err == nil || !strings.Contains(err.Error(), "missing from current run") {
		t.Fatalf("missing tracked benchmark not caught: %v", err)
	}
}

func TestSummaryMarkdownTable(t *testing.T) {
	base := benchJSON(t, "base.json", File{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1_000_000, AllocsPerOp: 100},
		"BenchmarkB": {NsPerOp: 2_000_000, AllocsPerOp: 50},
	}})
	cur := benchJSON(t, "cur.json", File{Benchmarks: map[string]Result{
		"BenchmarkA":   {NsPerOp: 800_000, AllocsPerOp: 90},   // improved
		"BenchmarkB":   {NsPerOp: 2_800_000, AllocsPerOp: 50}, // +40% ns: regression
		"BenchmarkNew": {NsPerOp: 1_000, AllocsPerOp: 1},      // untracked
	}})
	summary := filepath.Join(t.TempDir(), "summary.md")
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-summary", summary}, &buf)
	if err == nil {
		t.Fatalf("gate passed a 40%% slowdown:\n%s", buf.String())
	}
	md, readErr := os.ReadFile(summary)
	if readErr != nil {
		t.Fatalf("summary not written despite gate failure: %v", readErr)
	}
	text := string(md)
	for _, want := range []string{
		"| benchmark | base ns/op | cur ns/op | Δns | base allocs | cur allocs | Δallocs | |",
		"| `BenchmarkA` | 1000000 | 800000 | -20.0% | 100 | 90 | -10.0% |  |",
		"| `BenchmarkB` | 2000000 | 2800000 | +40.0% | 50 | 50 | +0.0% | ❌ |",
		"| `BenchmarkNew` | untracked | 1000 | — | untracked | 1 | — | |",
		"**1 regression(s) over the 25% threshold.**",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}

	// A second comparison appends — the step-summary file accumulates.
	if err := run([]string{"-baseline", base, "-current", base, "-summary", summary}, &buf); err != nil {
		t.Fatalf("identity comparison failed the gate: %v", err)
	}
	md2, _ := os.ReadFile(summary)
	if n := strings.Count(string(md2), "### Benchmark gate"); n != 2 {
		t.Errorf("summary file has %d tables after two runs, want 2:\n%s", n, md2)
	}
	if !strings.Contains(string(md2), "gate ok: 2 tracked benchmarks within 25%") {
		t.Errorf("passing table missing gate-ok line:\n%s", md2)
	}
}

func TestSummaryFlagsMissingBenchmark(t *testing.T) {
	base := benchJSON(t, "base.json", File{Benchmarks: map[string]Result{
		"BenchmarkGone": {NsPerOp: 1_000_000, AllocsPerOp: 100},
	}})
	cur := benchJSON(t, "cur.json", File{Benchmarks: map[string]Result{}})
	var md bytes.Buffer
	baseF, _ := readFile(base)
	curF, _ := readFile(cur)
	if err := renderMarkdown(&md, baseF, curF, 25, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| `BenchmarkGone` | 1000000 | missing | — | 100 | missing | — | ❌ |") {
		t.Errorf("missing benchmark row not rendered:\n%s", md.String())
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	in := writeSample(t, "empty.txt", "PASS\nok\n")
	var buf bytes.Buffer
	if err := run([]string{"-parse", in}, &buf); err == nil {
		t.Fatal("empty benchmark output accepted")
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// runCapture drives run with captured streams.
func runCapture(t *testing.T, args ...string) (stdout, stderr string, failures int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	failures, err := run(args, &out, &errBuf)
	if err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String(), errBuf.String(), failures
}

// TestListGolden pins the -list output: one "ID  Title" line per registered
// experiment, covering the full E/C registry of EXPERIMENTS.md.
func TestListGolden(t *testing.T) {
	out, _, failures := runCapture(t, "-list")
	if failures != 0 {
		t.Fatalf("-list reported %d failures", failures)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 25 {
		t.Fatalf("-list printed %d experiments, want the full registry:\n%s", len(lines), out)
	}
	for _, want := range []string{
		"C1    Decidability under RIC-cycles: repair enumeration terminates (Theorem 2)",
		"C3    Theorem 4 agreement rate: search engine vs stable-model engine",
		"E23   Example 23: stable models of Π(D,IC) are the repairs (Theorem 4)",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("-list output missing line %q:\n%s", want, out)
		}
	}
	for i, line := range lines {
		if len(line) < 7 || (line[0] != 'E' && line[0] != 'C') || !strings.Contains(line, " ") {
			t.Errorf("line %d is not an ID-title pair: %q", i, line)
		}
	}
}

// TestRunOneExperimentGolden runs a single experiment end-to-end and checks
// the full output shape (header, paper claim, artifact, trailing ok).
func TestRunOneExperimentGolden(t *testing.T) {
	out, _, failures := runCapture(t, "-id", "E02")
	if failures != 0 {
		t.Fatalf("E02 reported %d failures:\n%s", failures, out)
	}
	want := "=== E02: Example 2: dependency graph G(IC) for {S→Q, Q→R, Q→∃T}\n" +
		"paper: vertices S,Q,R,T; edges S→Q (ic1), Q→R (ic2), Q→T (ic3)\n" +
		"G(IC):\n" +
		"vertices: q, r, s, t\n" +
		"q -> r [ic2]\n" +
		"q -> t [ic3]\n" +
		"s -> q [ic1]\n" +
		"ok\n"
	if out != want {
		t.Errorf("E02 output mismatch:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

func TestUnknownExperimentID(t *testing.T) {
	var out, errBuf bytes.Buffer
	if _, err := run([]string{"-id", "E999"}, &out, &errBuf); err == nil {
		t.Fatal("unknown -id accepted")
	} else if !strings.Contains(err.Error(), "E999") {
		t.Errorf("error %q does not name the unknown ID", err)
	}
}

// TestFailedExperimentCounts checks the failure-count contract with a
// passing experiment (0) without running the full registry.
func TestFailedExperimentCounts(t *testing.T) {
	_, stderr, failures := runCapture(t, "-id", "C3")
	if failures != 0 {
		t.Fatalf("C3 failed:\n%s", stderr)
	}
}

// Command experiments reproduces every evaluation artifact of the paper —
// the worked examples 2–24 and the complexity experiments C1–C5 — printing
// each measured artifact and checking it against the paper's claim (see
// EXPERIMENTS.md for the index).
//
// Usage:
//
//	experiments            # run everything
//	experiments -id E23    # run one experiment
//	experiments -list      # list experiment IDs
//
// The exit code is the number of failed experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	id := flag.String("id", "", "run only the experiment with this ID")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}
	if *id != "" {
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown ID %q (use -list)\n", *id)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("paper: %s\n", e.PaperClaim)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ok")
		return
	}
	failures := experiments.RunAll(os.Stdout)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiments failed\n", failures)
	}
	os.Exit(failures)
}

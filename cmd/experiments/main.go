// Command experiments reproduces every evaluation artifact of the paper —
// the worked examples 2–24 and the complexity experiments C1–C5 — printing
// each measured artifact and checking it against the paper's claim (see
// EXPERIMENTS.md for the index).
//
// Usage:
//
//	experiments            # run everything
//	experiments -id E23    # run one experiment
//	experiments -list      # list experiment IDs
//
// -cpuprofile/-memprofile write runtime/pprof profiles of the run.
//
// The exit code is the number of failed experiments.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/prof"
)

func main() {
	failures, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	os.Exit(failures)
}

// run executes the command against the given streams and returns the number
// of failed experiments; err reports usage problems (unknown flags or IDs).
func run(args []string, stdout, stderr io.Writer) (failures int, err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	id := fs.String("id", "", "run only the experiment with this ID")
	list := fs.Bool("list", false, "list experiments and exit")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (taken after the run, post-GC) to this file")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return 0, err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-5s %s\n", e.ID, e.Title)
		}
		return 0, nil
	}
	if *id != "" {
		e, ok := experiments.ByID(*id)
		if !ok {
			return 0, fmt.Errorf("unknown ID %q (use -list)", *id)
		}
		fmt.Fprintf(stdout, "=== %s: %s\n", e.ID, e.Title)
		fmt.Fprintf(stdout, "paper: %s\n", e.PaperClaim)
		if err := e.Run(stdout); err != nil {
			fmt.Fprintf(stderr, "FAIL: %v\n", err)
			return 1, nil
		}
		fmt.Fprintln(stdout, "ok")
		return 0, nil
	}
	failures = experiments.RunAll(stdout)
	if failures > 0 {
		fmt.Fprintf(stderr, "%d experiments failed\n", failures)
	}
	return failures, nil
}

package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixture mirrors cmd/cqa's test fixture: an instance violating a key
// constraint, a referential constraint, and a NOT NULL-constraint.
const (
	fixtureDB = "r(a, b).\nr(a, c).\ns(e, f).\ns(null, a).\n"
	fixtureIC = "r(X, Y), r(X, Z) -> Y = Z.\ns(U, V) -> r(V, W).\nr(X, Y), isnull(X) -> false.\n"
)

func newTestServer(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(cfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs
}

func doJSON(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func createSession(t *testing.T, base, tenant, name string, extra string) {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"instance_text":%q,"constraints_text":%q%s}`,
		name, fixtureDB, fixtureIC, extra)
	code, resp := doJSON(t, "POST", base+"/v1/tenants/"+tenant+"/sessions", body)
	if code != http.StatusCreated {
		t.Fatalf("create session: status %d: %s", code, resp)
	}
}

// TestDirectEngine covers the repair-less engine over HTTP: auto resolves
// to direct on FD-only constraints (and the create response says so), the
// per-request engine override accepts direct, and a direct session on
// out-of-scope constraints fails with 422 direct_scope.
func TestDirectEngine(t *testing.T) {
	_, hs := newTestServer(t, config{})
	base := hs.URL
	fdDB := "r(a, b).\nr(a, c).\nr(d, b).\ns(e, a).\n"
	fdIC := "r(X, Y), r(X, Z) -> Y = Z."

	code, resp := doJSON(t, "POST", base+"/v1/tenants/acme/sessions",
		fmt.Sprintf(`{"name":"fd","instance_text":%q,"constraints_text":%q,"engine":"auto"}`, fdDB, fdIC))
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, resp)
	}
	if !strings.Contains(resp, `"engine":"direct"`) {
		t.Errorf("auto did not resolve to direct: %s", resp)
	}

	s1 := base + "/v1/tenants/acme/sessions/fd"
	code, resp = doJSON(t, "POST", s1+"/query", `{"query":"q(V) :- s(U, V)."}`)
	if code != http.StatusOK || !strings.Contains(resp, `"tuples":[["a"]]`) ||
		!strings.Contains(resp, `"num_repairs":2`) {
		t.Errorf("direct query: %d %s", code, resp)
	}
	code, resp = doJSON(t, "POST", s1+"/query", `{"query":"q(X) :- r(X, b).","semantics":"possible"}`)
	if code != http.StatusOK || !strings.Contains(resp, `[["a"],["d"]]`) {
		t.Errorf("direct possible query: %d %s", code, resp)
	}

	// Per-request override onto the same session.
	code, resp = doJSON(t, "POST", s1+"/query", `{"query":"q(V) :- s(U, V).","engine":"search"}`)
	if code != http.StatusOK || !strings.Contains(resp, `"tuples":[["a"]]`) {
		t.Errorf("search override on direct session: %d %s", code, resp)
	}

	// The mixed fixture is out of the direct scope: creation succeeds (the
	// classification is lazy) but the first answer reports 422.
	createSession(t, base, "acme", "mixed", `,"engine":"direct"`)
	code, resp = doJSON(t, "POST", base+"/v1/tenants/acme/sessions/mixed/query", `{"query":"q(V) :- s(U, V)."}`)
	if code != http.StatusUnprocessableEntity || !strings.Contains(resp, "direct_scope") {
		t.Errorf("direct on mixed constraints: %d %s", code, resp)
	}
	// The override path reports the same scope error.
	createSession(t, base, "acme", "mixed2", "")
	code, resp = doJSON(t, "POST", base+"/v1/tenants/acme/sessions/mixed2/query",
		`{"query":"q(V) :- s(U, V).","engine":"direct"}`)
	if code != http.StatusUnprocessableEntity || !strings.Contains(resp, "direct_scope") {
		t.Errorf("direct override on mixed constraints: %d %s", code, resp)
	}
}

// TestEndpointsGolden drives every endpoint once and pins the response
// documents.
func TestEndpointsGolden(t *testing.T) {
	_, hs := newTestServer(t, config{})
	base := hs.URL
	s1 := base + "/v1/tenants/acme/sessions/s1"

	code, resp := doJSON(t, "POST", base+"/v1/tenants/acme/sessions",
		fmt.Sprintf(`{"name":"s1","instance_text":%q,"constraints_text":%q}`, fixtureDB, fixtureIC))
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, resp)
	}
	if want := `{"tenant":"acme","name":"s1","facts":4,"constraints":3,"consistent":false,"engine":"search"}` + "\n"; resp != want {
		t.Errorf("create response:\n got %swant %s", resp, want)
	}

	code, resp = doJSON(t, "POST", s1+"/prepare", `{"query":"q(V) :- s(U, V)."}`)
	if code != http.StatusCreated {
		t.Fatalf("prepare: %d %s", code, resp)
	}
	if want := `{"query":"q(V) :- s(U,V).","answer":{"tuples":[["a"]],"boolean":false,"num_repairs":0}}` + "\n"; resp != want {
		t.Errorf("prepare response:\n got %swant %s", resp, want)
	}

	// Idempotent re-prepare returns 200 with the same document.
	code, resp2 := doJSON(t, "POST", s1+"/prepare", `{"query":"q(V) :- s(U, V)."}`)
	if code != http.StatusOK || resp2 != resp {
		t.Errorf("re-prepare: %d %s", code, resp2)
	}

	code, resp = doJSON(t, "POST", s1+"/apply", `{"delete_text":"r(a, c)."}`)
	if code != http.StatusOK {
		t.Fatalf("apply: %d %s", code, resp)
	}
	// Deleting r(a, c) resolves the key conflict without changing this
	// query's certain answers, so no update diff is pushed.
	want := `{"result":{"applied":{"removed":[{"pred":"r","args":["a","c"]}]},"constraint_relevant":true,"repairs_invalidated":2,"reenumerated":true,"queries_refreshed":1},"consistent":false,"violations":1}` + "\n"
	if resp != want {
		t.Errorf("apply response:\n got %swant %s", resp, want)
	}

	code, resp = doJSON(t, "GET", s1+"/answers/q", "")
	if code != http.StatusOK {
		t.Fatalf("answers: %d %s", code, resp)
	}
	if want := `{"query":"q(V) :- s(U,V).","answer":{"tuples":[["a"]],"boolean":false,"num_repairs":0}}` + "\n"; resp != want {
		t.Errorf("answers response:\n got %swant %s", resp, want)
	}

	code, resp = doJSON(t, "POST", s1+"/query", `{"query":"q(V) :- s(U, V)."}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, resp)
	}
	if want := `{"query":"q(V) :- s(U,V).","answer":{"tuples":[["a"]],"boolean":false,"num_repairs":2,"states_explored":3}}` + "\n"; resp != want {
		t.Errorf("query response:\n got %swant %s", resp, want)
	}

	code, resp = doJSON(t, "POST", s1+"/query", `{"query":"q(V) :- s(U, V).","semantics":"possible"}`)
	if code != http.StatusOK {
		t.Fatalf("possible query: %d %s", code, resp)
	}
	if want := `{"query":"q(V) :- s(U,V).","answer":{"tuples":[["a"],["f"]],"boolean":false,"num_repairs":0},"semantics":"possible"}` + "\n"; resp != want {
		t.Errorf("possible response:\n got %swant %s", resp, want)
	}

	// Per-request engine override: same answer, program-engine diagnostics.
	code, resp = doJSON(t, "POST", s1+"/query", `{"query":"q(V) :- s(U, V).","engine":"cautious"}`)
	if code != http.StatusOK {
		t.Fatalf("override query: %d %s", code, resp)
	}
	if !strings.Contains(resp, `"tuples":[["a"]]`) {
		t.Errorf("override response lost the answer: %s", resp)
	}

	code, _ = doJSON(t, "DELETE", s1, "")
	if code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	code, _ = doJSON(t, "GET", s1+"/answers/q", "")
	if code != http.StatusNotFound {
		t.Errorf("answers after delete: %d, want 404", code)
	}
}

// TestParityWithCLI replays cmd/cqa's JSON session script over HTTP and
// requires the concatenated response bodies to be byte-identical to the
// CLI transcript pinned in cmd/cqa/testdata/session_json.golden.
func TestParityWithCLI(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "cqa", "testdata", "session_json.golden"))
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, config{})
	base := hs.URL
	createSession(t, base, "acme", "s1", "")
	s1 := base + "/v1/tenants/acme/sessions/s1"

	// The script of cmd/cqa's TestSessionJSONGolden, verb by verb.
	var out strings.Builder
	steps := []struct {
		path, body string
	}{
		{"/prepare", `{"query":"q(V) :- s(U, V)."}`},
		{"/prepare", `{"query":"p :- r(a, b)."}`},
		{"/apply", `{"insert_text":"t(x, y)."}`},
		{"/apply", `{"delete_text":"r(a, c)."}`},
		{"/apply", `{"delete_text":"r(a, c)."}`},
		{"/prepare", `{"query":"q(V) :- s(U, V)."}`},
	}
	for _, st := range steps {
		code, resp := doJSON(t, "POST", s1+st.path, st.body)
		if code != http.StatusOK && code != http.StatusCreated {
			t.Fatalf("POST %s: %d %s", st.path, code, resp)
		}
		out.WriteString(resp)
	}
	if out.String() != string(golden) {
		t.Errorf("HTTP transcript differs from CLI golden:\n--- http ---\n%s--- cli ---\n%s", out.String(), golden)
	}
}

// TestConcurrentTenants hammers several tenants concurrently (meaningful
// under -race): every tenant owns an identical session, mutates it through
// a disjoint schedule, and must end with exactly its own answers.
func TestConcurrentTenants(t *testing.T) {
	_, hs := newTestServer(t, config{MaxInflight: 8})
	base := hs.URL

	const tenants = 4
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i)
			createSession(t, base, tenant, "s", "")
			url := base + "/v1/tenants/" + tenant + "/sessions/s"
			if code, resp := doJSON(t, "POST", url+"/prepare", `{"query":"q(V) :- s(U, V)."}`); code != http.StatusCreated {
				t.Errorf("%s prepare: %d %s", tenant, code, resp)
				return
			}
			// Tenant i inserts its private fact and resolves the key
			// conflict in its own direction.
			mine := fmt.Sprintf("u(v%d).", i)
			for _, body := range []string{
				fmt.Sprintf(`{"insert_text":%q}`, mine),
				`{"delete_text":"r(a, c)."}`,
				`{"insert_text":"r(a, c)."}`,
				`{"delete_text":"r(a, b)."}`,
			} {
				if code, resp := doJSON(t, "POST", url+"/apply", body); code != http.StatusOK {
					t.Errorf("%s apply %s: %d %s", tenant, body, code, resp)
					return
				}
			}
			code, resp := doJSON(t, "POST", url+"/query", fmt.Sprintf(`{"query":"q() :- u(v%d)."}`, i))
			if code != http.StatusOK || !strings.Contains(resp, `"boolean":true`) {
				t.Errorf("%s lost its own fact: %d %s", tenant, code, resp)
			}
			// No cross-tenant leakage: other tenants' facts are certainly
			// absent.
			other := (i + 1) % tenants
			code, resp = doJSON(t, "POST", url+"/query", fmt.Sprintf(`{"query":"q() :- u(v%d)."}`, other))
			if code != http.StatusOK || !strings.Contains(resp, `"boolean":false`) {
				t.Errorf("%s sees tenant %d's fact: %d %s", tenant, other, code, resp)
			}
		}(i)
	}
	wg.Wait()
}

// TestSessionEviction pins TTL eviction on an injected clock: idle
// sessions go away (404 afterwards), touched sessions survive, and
// eviction terminates subscriber streams.
func TestSessionEviction(t *testing.T) {
	clock := time.Now()
	var clockMu sync.Mutex
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		clock = clock.Add(d)
		clockMu.Unlock()
	}

	srv, hs := newTestServer(t, config{SessionTTL: time.Minute, now: now})
	base := hs.URL
	createSession(t, base, "acme", "idle", "")
	createSession(t, base, "acme", "busy", "")

	// A subscriber on the idle session observes the eviction as EOF.
	sub, err := http.Get(base + "/v1/tenants/acme/sessions/idle/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()

	advance(2 * time.Minute)
	// Touch only the busy session.
	if code, resp := doJSON(t, "POST", base+"/v1/tenants/acme/sessions/busy/query", `{"query":"q() :- r(a, b)."}`); code != http.StatusOK {
		t.Fatalf("touch busy: %d %s", code, resp)
	}
	if got := srv.evictIdle(now()); got != 1 {
		t.Fatalf("evictIdle evicted %d sessions, want 1", got)
	}
	if code, _ := doJSON(t, "GET", base+"/v1/tenants/acme/sessions/idle/answers/q", ""); code != http.StatusNotFound {
		t.Errorf("evicted session still answers: %d", code)
	}
	if code, resp := doJSON(t, "POST", base+"/v1/tenants/acme/sessions/busy/query", `{"query":"q() :- r(a, b)."}`); code != http.StatusOK {
		t.Errorf("busy session evicted: %d %s", code, resp)
	}
	// The subscriber's stream ends once the session is gone.
	done := make(chan struct{})
	go func() {
		io.Copy(io.Discard, sub.Body)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Error("subscriber stream did not terminate on eviction")
	}
}

// TestCancelledQueryDoesNotPoison cancels a query mid-request and checks
// (a) the request reports the cancellation, (b) the session stays usable,
// and (c) the enumeration really was aborted: the repair cache stayed
// cold, so the next query still pays — and reports — the full exploration
// diagnostics instead of answering from a half-filled cache.
func TestCancelledQueryDoesNotPoison(t *testing.T) {
	srv, _ := newTestServer(t, config{})
	// In-process request with a pre-cancelled context: deterministic
	// cancellation before any state is explored.
	create := httptest.NewRequest("POST", "/v1/tenants/acme/sessions",
		strings.NewReader(fmt.Sprintf(`{"name":"s1","instance_text":%q,"constraints_text":%q}`, fixtureDB, fixtureIC)))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, create)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := httptest.NewRequest("POST", "/v1/tenants/acme/sessions/s1/query",
		strings.NewReader(`{"query":"q(V) :- s(U, V)."}`)).WithContext(ctx)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, q)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("cancelled query: status %d %s, want %d", rec.Code, rec.Body, statusClientClosedRequest)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Code != "canceled" {
		t.Fatalf("cancelled query body: %s", rec.Body)
	}

	// The session answers normally afterwards, with the untruncated
	// full-enumeration diagnostics (states_explored 7 on this fixture —
	// the same count a fresh session reports).
	q = httptest.NewRequest("POST", "/v1/tenants/acme/sessions/s1/query",
		strings.NewReader(`{"query":"q(V) :- s(U, V)."}`))
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, q)
	want := `{"query":"q(V) :- s(U,V).","answer":{"tuples":[["a"]],"boolean":false,"num_repairs":4,"states_explored":7}}` + "\n"
	if rec.Code != http.StatusOK || rec.Body.String() != want {
		t.Errorf("query after cancellation: %d\n got %swant %s", rec.Code, rec.Body, want)
	}
}

// TestLoadShedding pins the per-tenant caps: in-flight requests beyond the
// pool shed with 429, session counts beyond the limit shed with 429, and
// per-session enumeration budgets surface as typed 422s.
func TestLoadShedding(t *testing.T) {
	srv, hs := newTestServer(t, config{MaxInflight: 1, MaxSessions: 2})
	base := hs.URL
	createSession(t, base, "acme", "s1", "")

	// Exhaust the tenant's only slot, then every expensive request sheds.
	tn := srv.tenantFor("acme", false)
	if tn == nil || !tn.acquire() {
		t.Fatal("could not claim the in-flight slot")
	}
	code, resp := doJSON(t, "POST", base+"/v1/tenants/acme/sessions/s1/query", `{"query":"q() :- r(a, b)."}`)
	if code != http.StatusTooManyRequests || !strings.Contains(resp, "tenant_busy") {
		t.Errorf("busy tenant query: %d %s, want 429 tenant_busy", code, resp)
	}
	// Cheap reads are never shed.
	if code, _ := doJSON(t, "GET", base+"/v1/tenants/acme/sessions/s1/answers/q", ""); code != http.StatusNotFound {
		t.Errorf("answers while busy: %d, want 404 (not 429)", code)
	}
	tn.release()
	if code, _ := doJSON(t, "POST", base+"/v1/tenants/acme/sessions/s1/query", `{"query":"q() :- r(a, b)."}`); code != http.StatusOK {
		t.Errorf("query after release: %d", code)
	}

	// Session limit.
	createSession(t, base, "acme", "s2", "")
	code, resp = doJSON(t, "POST", base+"/v1/tenants/acme/sessions",
		fmt.Sprintf(`{"name":"s3","instance_text":%q,"constraints_text":%q}`, fixtureDB, fixtureIC))
	if code != http.StatusTooManyRequests || !strings.Contains(resp, "session_limit") {
		t.Errorf("session limit: %d %s, want 429 session_limit", code, resp)
	}

	// Enumeration budget: a one-state search budget cannot finish the
	// fixture's repair search and sheds with a typed 422.
	createSession(t, base, "over", "tiny", `,"max_states":1`)
	code, resp = doJSON(t, "POST", base+"/v1/tenants/over/sessions/tiny/query", `{"query":"q(V) :- s(U, V)."}`)
	if code != http.StatusUnprocessableEntity || !strings.Contains(resp, "state_limit") {
		t.Errorf("state budget: %d %s, want 422 state_limit", code, resp)
	}
}

// TestErrorPaths pins the HTTP mapping of the remaining typed errors.
func TestErrorPaths(t *testing.T) {
	_, hs := newTestServer(t, config{})
	base := hs.URL
	createSession(t, base, "acme", "s1", "")
	s1 := base + "/v1/tenants/acme/sessions/s1"

	cases := []struct {
		name, method, url, body string
		status                  int
		wantIn                  string
	}{
		{"unknown tenant", "POST", base + "/v1/tenants/nope/sessions/s/query", `{"query":"q() :- r(a, b)."}`,
			http.StatusNotFound, "unknown_tenant"},
		{"unknown session", "POST", base + "/v1/tenants/acme/sessions/nope/query", `{"query":"q() :- r(a, b)."}`,
			http.StatusNotFound, "unknown_session"},
		{"duplicate session", "POST", base + "/v1/tenants/acme/sessions",
			fmt.Sprintf(`{"name":"s1","instance_text":%q}`, "r(a, b)."),
			http.StatusConflict, "session_exists"},
		{"bad session name", "POST", base + "/v1/tenants/acme/sessions", `{"name":"a/b","instance_text":"r(a, b)."}`,
			http.StatusBadRequest, "bad_name"},
		{"unknown body field", "POST", s1 + "/query", `{"qqq":"?"}`,
			http.StatusBadRequest, "bad_request"},
		{"parse error with position", "POST", s1 + "/query", `{"query":"q(V) :- s(U, ."}`,
			http.StatusBadRequest, `"line":1`},
		{"bad semantics", "POST", s1 + "/query", `{"query":"q() :- r(a, b).","semantics":"brave"}`,
			http.StatusBadRequest, "bad_semantics"},
		{"bad engine override", "POST", s1 + "/query", `{"query":"q() :- r(a, b).","engine":"quantum"}`,
			http.StatusBadRequest, "bad_engine"},
		{"bad engine at create", "POST", base + "/v1/tenants/acme/sessions", `{"name":"s9","instance_text":"r(a, b).","engine":"quantum"}`,
			http.StatusBadRequest, "bad_engine"},
		{"conflicting standing query", "POST", s1 + "/prepare", `{"query":"q(X) :- r(X, Y)."}`,
			0, ""}, // primer: registers q
	}
	for _, tc := range cases {
		code, resp := doJSON(t, tc.method, tc.url, tc.body)
		if tc.status == 0 {
			continue
		}
		if code != tc.status || !strings.Contains(resp, tc.wantIn) {
			t.Errorf("%s: got %d %s, want %d containing %q", tc.name, code, resp, tc.status, tc.wantIn)
		}
	}
	// A different query under an already-registered head name conflicts.
	code, resp := doJSON(t, "POST", s1+"/prepare", `{"query":"q(V) :- s(U, V)."}`)
	if code != http.StatusConflict || !strings.Contains(resp, "query_exists") {
		t.Errorf("conflicting standing query: %d %s, want 409 query_exists", code, resp)
	}
}

// TestSubscribeSSE applies an update while a subscriber listens and checks
// the pushed event carries the same wire.QueryUpdate the apply response
// reported.
func TestSubscribeSSE(t *testing.T) {
	_, hs := newTestServer(t, config{})
	base := hs.URL
	createSession(t, base, "acme", "s1", "")
	s1 := base + "/v1/tenants/acme/sessions/s1"
	if code, resp := doJSON(t, "POST", s1+"/prepare", `{"query":"p :- r(a, b)."}`); code != http.StatusCreated {
		t.Fatalf("prepare: %d %s", code, resp)
	}

	sub, err := http.Get(s1 + "/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()
	if ct := sub.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("subscribe content type %q", ct)
	}
	events := make(chan string, 4)
	go func() {
		sc := bufio.NewScanner(sub.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				events <- data
			}
		}
	}()

	code, resp := doJSON(t, "POST", s1+"/apply", `{"delete_text":"r(a, c)."}`)
	if code != http.StatusOK {
		t.Fatalf("apply: %d %s", code, resp)
	}
	want := `{"query":"p() :- r(a,b).","boolean":true,"boolean_changed":true}`
	select {
	case got := <-events:
		if got != want {
			t.Errorf("SSE event:\n got %s\nwant %s", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no SSE event within 5s of the apply")
	}
}

// Command cqad is a long-lived HTTP/JSON daemon serving consistent query
// answering over persistent sessions (internal/session) to many tenants.
// Each tenant owns named sessions; each session is one (D, IC) pair whose
// repair state, standing queries and violation lists survive across
// requests, so an update costs O(|Δ|) instead of a cold re-enumeration.
//
// API (all request and response bodies use the JSON wire schema of
// internal/wire; errors are {"error", "code"[, "line", "col"]}):
//
//	POST   /v1/tenants/{t}/sessions                    create a session (instance + ICs + engine)
//	DELETE /v1/tenants/{t}/sessions/{s}                drop it
//	POST   /v1/tenants/{t}/sessions/{s}/apply          apply a delta -> wire.ApplyResponse
//	POST   /v1/tenants/{t}/sessions/{s}/query          ad-hoc answer -> wire.AnswerResponse
//	POST   /v1/tenants/{t}/sessions/{s}/prepare        register a standing query
//	GET    /v1/tenants/{t}/sessions/{s}/answers/{q}    standing query's current answers
//	GET    /v1/tenants/{t}/sessions/{s}/subscribe      SSE stream of changed-answer diffs
//
// Quickstart:
//
//	cqad -addr :8080 &
//	curl -s localhost:8080/v1/tenants/acme/sessions -d '{
//	  "name": "s1",
//	  "instance_text": "r(a, b). r(a, c). s(e, f).",
//	  "constraints_text": "r(X, Y), r(X, Z) -> Y = Z. s(U, V) -> r(V, W)."
//	}'
//	curl -s localhost:8080/v1/tenants/acme/sessions/s1/prepare -d '{"query": "q(V) :- s(U, V)."}'
//	curl -s localhost:8080/v1/tenants/acme/sessions/s1/apply -d '{"delete_text": "r(a, c)."}'
//	curl -s localhost:8080/v1/tenants/acme/sessions/s1/answers/q
//
// Tenancy and isolation: all fact identity in the engine stack is
// content-addressed (internal/value interns nothing), so sessions of
// different tenants share zero mutable state; requests of one tenant can
// never observe, block on, or leak values into another's. Load shedding is
// per tenant: -max-inflight concurrent expensive requests (429 beyond
// that), -max-sessions live sessions, and per-session -engine budgets
// (max_states, max_candidates) that turn runaway enumerations into typed
// 422 responses. Idle sessions are evicted after -session-ttl.
//
// Cancellation: a client that disconnects mid-request aborts the
// enumeration it was waiting on (context propagation through the whole
// engine stack); the session survives, with interrupted standing queries
// marked stale until the next successful apply.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cqad:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cqad", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	ttl := fs.Duration("session-ttl", 30*time.Minute, "evict sessions idle for this long (0 disables)")
	inflight := fs.Int("max-inflight", 4, "concurrent apply/query/prepare requests per tenant before shedding 429s")
	maxSessions := fs.Int("max-sessions", 64, "live sessions per tenant")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	srv := newServer(config{
		SessionTTL:  *ttl,
		MaxInflight: *inflight,
		MaxSessions: *maxSessions,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go srv.janitor(ctx)

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("cqad: listening on %s", *addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("cqad: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}

package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/relational"
	"repro/internal/session"
)

// The apply benchmarks measure the per-update cost of the service against
// the in-process session layer on identical work: a key-constrained
// relation with benchPairs FD-violating groups (2^benchPairs repairs) and
// one standing query, alternating a constraint-relevant delete/insert of a
// single conflicting fact per iteration. The repair bookkeeping dominates,
// so the HTTP+JSON envelope must stay within the issue's <=2x overhead
// budget over BenchmarkSessionApply.
const benchPairs = 6

const (
	benchIC    = "r(X, Y), r(X, Z) -> Y = Z.\n"
	benchQuery = "q(V) :- r(k0, V)."
)

func benchInstanceSrc() string {
	var b strings.Builder
	for i := 0; i < benchPairs; i++ {
		fmt.Fprintf(&b, "r(k%d, x). r(k%d, y).\n", i, i)
	}
	return b.String()
}

func benchFacts(tb testing.TB, src string) []relational.Fact {
	tb.Helper()
	inst, err := parser.Instance(src)
	if err != nil {
		tb.Fatal(err)
	}
	return inst.Facts()
}

func BenchmarkSessionApply(b *testing.B) {
	d, err := parser.Instance(benchInstanceSrc())
	if err != nil {
		b.Fatal(err)
	}
	set, err := parser.Constraints(benchIC)
	if err != nil {
		b.Fatal(err)
	}
	s := session.New(d, set, session.NewOptions())
	q, err := parser.Query(benchQuery)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Prepare(q); err != nil {
		b.Fatal(err)
	}
	del := relational.Delta{Removed: benchFacts(b, "r(k1, y).")}
	ins := relational.Delta{Added: benchFacts(b, "r(k1, y).")}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta := del
		if i%2 == 1 {
			delta = ins
		}
		if _, err := s.Apply(delta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDaemonApply(b *testing.B) {
	hs := httptest.NewServer(newServer(config{}))
	defer hs.Close()
	client := hs.Client()

	post := func(path, body string, want int) {
		resp, err := client.Post(hs.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			b.Fatalf("POST %s: status %d, body %s", path, resp.StatusCode, out)
		}
	}
	post("/v1/tenants/bench/sessions",
		fmt.Sprintf(`{"name":"s1","instance_text":%q,"constraints_text":%q}`, benchInstanceSrc(), benchIC),
		http.StatusCreated)
	post("/v1/tenants/bench/sessions/s1/prepare",
		fmt.Sprintf(`{"query":%q}`, benchQuery), http.StatusCreated)

	applyURL := hs.URL + "/v1/tenants/bench/sessions/s1/apply"
	delBody := []byte(`{"delete_text":"r(k1, y)."}`)
	insBody := []byte(`{"insert_text":"r(k1, y)."}`)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := delBody
		if i%2 == 1 {
			body = insBody
		}
		resp, err := client.Post(applyURL, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("apply %d: status %d", i, resp.StatusCode)
		}
	}
}

package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/direct"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/session"
	"repro/internal/stable"
	"repro/internal/wire"
)

// config carries the server knobs. The zero value means defaults.
type config struct {
	// SessionTTL evicts sessions idle for longer (0 disables eviction).
	SessionTTL time.Duration
	// MaxInflight caps concurrently executing expensive requests (apply,
	// query, prepare) per tenant; excess requests are shed with 429.
	MaxInflight int
	// MaxSessions caps live sessions per tenant.
	MaxSessions int
	// now is the clock, injectable for eviction tests.
	now func() time.Time
}

// server is the multi-tenant CQA daemon. Tenants are namespaces that share
// nothing: every value, fact key and hash in this process is
// content-addressed (internal/value has no intern table), so two tenants'
// sessions touch zero common mutable state — isolation needs no
// per-tenant locking, only the per-session mutex serializing each
// session.Session (which is not concurrent-safe by contract).
type server struct {
	cfg config
	mux *http.ServeMux

	mu      sync.Mutex
	tenants map[string]*tenant
}

func newServer(cfg config) *server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &server{cfg: cfg, mux: http.NewServeMux(), tenants: map[string]*tenant{}}
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/sessions", s.handleCreate)
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}/sessions/{session}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/sessions/{session}/apply", s.handleApply)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/sessions/{session}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/sessions/{session}/prepare", s.handlePrepare)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/sessions/{session}/answers/{query}", s.handleAnswers)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/sessions/{session}/subscribe", s.handleSubscribe)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// tenant is one namespace of sessions with its own load-shedding slot pool.
type tenant struct {
	name     string
	inflight chan struct{}

	mu       sync.Mutex
	sessions map[string]*liveSession
}

// acquire claims an in-flight slot without blocking; callers shed load with
// 429 when it fails.
func (t *tenant) acquire() bool {
	select {
	case t.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

func (t *tenant) release() { <-t.inflight }

// standing is one prepared query plus the diff its subscription recorded
// during the current apply.
type standing struct {
	q    *query.Q
	p    *session.Prepared
	diff *session.QueryUpdate
}

// liveSession wraps one session.Session behind a mutex (the session layer
// is not concurrent-safe) together with its standing queries and SSE
// subscribers.
type liveSession struct {
	tenant, name string

	mu       sync.Mutex
	s        *session.Session
	prepared map[string]*standing // keyed by query head name
	order    []*standing          // registration order, for deterministic diffs
	lastUsed time.Time

	subMu   sync.Mutex
	subs    map[int]chan []byte
	nextSub int
	closed  bool
}

// subscribe registers an SSE consumer. The channel is buffered; a consumer
// that falls further behind than the buffer loses the oldest pending
// events (the next full snapshot is one GET answers away).
func (ls *liveSession) subscribe() (int, chan []byte, bool) {
	ls.subMu.Lock()
	defer ls.subMu.Unlock()
	if ls.closed {
		return 0, nil, false
	}
	id := ls.nextSub
	ls.nextSub++
	ch := make(chan []byte, 64)
	ls.subs[id] = ch
	return id, ch, true
}

func (ls *liveSession) unsubscribe(id int) {
	ls.subMu.Lock()
	defer ls.subMu.Unlock()
	if ch, ok := ls.subs[id]; ok {
		delete(ls.subs, id)
		close(ch)
	}
}

// broadcast fans an encoded event out to every subscriber, dropping it for
// consumers whose buffer is full.
func (ls *liveSession) broadcast(msg []byte) {
	ls.subMu.Lock()
	defer ls.subMu.Unlock()
	for _, ch := range ls.subs {
		select {
		case ch <- msg:
		default:
		}
	}
}

// closeSubs terminates every subscriber stream (eviction, deletion).
func (ls *liveSession) closeSubs() {
	ls.subMu.Lock()
	defer ls.subMu.Unlock()
	if ls.closed {
		return
	}
	ls.closed = true
	for id, ch := range ls.subs {
		delete(ls.subs, id)
		close(ch)
	}
}

// --- error mapping -----------------------------------------------------------

// statusClientClosedRequest is the de-facto status (nginx's 499) for
// requests abandoned by the client; nothing standard fits a cancellation
// observed server-side.
const statusClientClosedRequest = 499

type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
	Line  int    `json:"line,omitempty"`
	Col   int    `json:"col,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Code: code})
}

// writeEngineError maps the typed errors of the session/engine stack onto
// HTTP statuses: parse errors are the client's fault (400, with position),
// budget limits are load shedding (422, retryable with a larger budget or
// smaller input), cancellation reports 499, and everything else is a 500.
func writeEngineError(w http.ResponseWriter, err error) {
	var pe *parser.ParseError
	switch {
	case errors.As(err, &pe):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: pe.Error(), Code: "parse", Line: pe.Line, Col: pe.Col})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, statusClientClosedRequest, "canceled", err.Error())
	case errors.Is(err, stable.ErrCandidateLimit):
		writeError(w, http.StatusUnprocessableEntity, "candidate_limit", err.Error())
	case errors.Is(err, repair.ErrStateLimit):
		writeError(w, http.StatusUnprocessableEntity, "state_limit", err.Error())
	case errors.Is(err, repair.ErrConflictingSet):
		writeError(w, http.StatusUnprocessableEntity, "conflicting_constraints", err.Error())
	case errors.Is(err, direct.ErrScope):
		writeError(w, http.StatusUnprocessableEntity, "direct_scope", err.Error())
	case errors.As(err, new(*engine.UnknownError)):
		writeError(w, http.StatusBadRequest, "bad_engine", err.Error())
	case errors.Is(err, session.ErrInconsistentUnrepairable):
		writeError(w, http.StatusInternalServerError, "unrepairable", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// --- lookup helpers ----------------------------------------------------------

func (s *server) tenantFor(name string, create bool) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[name]
	if t == nil && create {
		t = &tenant{
			name:     name,
			inflight: make(chan struct{}, s.cfg.MaxInflight),
			sessions: map[string]*liveSession{},
		}
		s.tenants[name] = t
	}
	return t
}

// lookup resolves a request's tenant and session, writing the 404 itself
// when either is missing.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) (*tenant, *liveSession, bool) {
	t := s.tenantFor(r.PathValue("tenant"), false)
	if t == nil {
		writeError(w, http.StatusNotFound, "unknown_tenant", fmt.Sprintf("unknown tenant %q", r.PathValue("tenant")))
		return nil, nil, false
	}
	t.mu.Lock()
	ls := t.sessions[r.PathValue("session")]
	t.mu.Unlock()
	if ls == nil {
		writeError(w, http.StatusNotFound, "unknown_session", fmt.Sprintf("unknown session %q", r.PathValue("session")))
		return nil, nil, false
	}
	return t, ls, true
}

// shed acquires an in-flight slot for an expensive request, shedding with
// 429 when the tenant's pool is exhausted.
func shed(w http.ResponseWriter, t *tenant) bool {
	if !t.acquire() {
		writeError(w, http.StatusTooManyRequests, "tenant_busy",
			fmt.Sprintf("tenant %q has %d requests in flight; retry later", t.name, cap(t.inflight)))
		return false
	}
	return true
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding request body: "+err.Error())
		return false
	}
	return true
}

// engineOptions maps a request's engine selection onto session options via
// the shared registry, adding the per-session load-shedding budgets.
func engineOptions(name string, workers, maxStates, maxCandidates int) (session.Options, error) {
	opts, err := engine.Options(name, workers)
	if err != nil {
		return opts, err
	}
	opts.Repair.MaxStates = maxStates
	opts.Stable.MaxCandidates = maxCandidates
	return opts, nil
}

// --- handlers ----------------------------------------------------------------

// The request/response bodies are the shared wire schema (internal/wire),
// so clients and tests marshal against one definition.
type (
	createSessionRequest  = wire.CreateSessionRequest
	createSessionResponse = wire.CreateSessionResponse
	applyRequest          = wire.ApplyRequest
	queryRequest          = wire.QueryRequest
	prepareRequest        = wire.PrepareRequest
)

func (s *server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Name == "" || strings.ContainsAny(req.Name, "/ ") {
		writeError(w, http.StatusBadRequest, "bad_name", "session name must be non-empty without '/' or spaces")
		return
	}

	var d *relational.Instance
	switch {
	case req.Instance != nil && req.InstanceText != "":
		writeError(w, http.StatusBadRequest, "bad_request", "instance and instance_text are mutually exclusive")
		return
	case req.Instance != nil:
		d = req.Instance.ToInstance()
	default:
		var err error
		if d, err = parser.Instance(req.InstanceText); err != nil {
			writeEngineError(w, err)
			return
		}
	}

	var set *constraint.Set
	switch {
	case req.Constraints != nil && req.ConstraintsText != "":
		writeError(w, http.StatusBadRequest, "bad_request", "constraints and constraints_text are mutually exclusive")
		return
	case req.Constraints != nil:
		var err error
		if set, err = req.Constraints.ToSet(); err != nil {
			writeEngineError(w, err)
			return
		}
	default:
		var err error
		if set, err = parser.Constraints(req.ConstraintsText); err != nil {
			writeEngineError(w, err)
			return
		}
	}

	opts, err := engineOptions(req.Engine, req.Workers, req.MaxStates, req.MaxCandidates)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_engine", err.Error())
		return
	}

	t := s.tenantFor(r.PathValue("tenant"), true)
	ls := &liveSession{
		tenant:   t.name,
		name:     req.Name,
		s:        session.New(d, set, opts),
		prepared: map[string]*standing{},
		lastUsed: s.cfg.now(),
		subs:     map[int]chan []byte{},
	}
	t.mu.Lock()
	switch {
	case t.sessions[req.Name] != nil:
		t.mu.Unlock()
		writeError(w, http.StatusConflict, "session_exists",
			fmt.Sprintf("tenant %q already has a session %q", t.name, req.Name))
		return
	case len(t.sessions) >= s.cfg.MaxSessions:
		t.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "session_limit",
			fmt.Sprintf("tenant %q is at its session limit (%d)", t.name, s.cfg.MaxSessions))
		return
	}
	t.sessions[req.Name] = ls
	t.mu.Unlock()

	ls.mu.Lock()
	consistent := ls.s.Consistent()
	resolved := engine.NameOf(ls.s.Options().Engine)
	ls.mu.Unlock()
	writeJSON(w, http.StatusCreated, createSessionResponse{
		Tenant:      t.name,
		Name:        req.Name,
		Facts:       d.Len(),
		Constraints: len(set.ICs) + len(set.NNCs),
		Consistent:  consistent,
		Engine:      resolved,
	})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	t, ls, ok := s.lookup(w, r)
	if !ok {
		return
	}
	t.mu.Lock()
	delete(t.sessions, ls.name)
	t.mu.Unlock()
	ls.closeSubs()
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleApply(w http.ResponseWriter, r *http.Request) {
	t, ls, ok := s.lookup(w, r)
	if !ok || !shed(w, t) {
		return
	}
	defer t.release()
	var req applyRequest
	if !decode(w, r, &req) {
		return
	}
	var delta relational.Delta
	if req.Delta != nil {
		delta = req.Delta.ToDelta()
	}
	if req.InsertText != "" {
		inst, err := parser.Instance(req.InsertText)
		if err != nil {
			writeEngineError(w, err)
			return
		}
		delta.Added = append(delta.Added, inst.Facts()...)
	}
	if req.DeleteText != "" {
		inst, err := parser.Instance(req.DeleteText)
		if err != nil {
			writeEngineError(w, err)
			return
		}
		delta.Removed = append(delta.Removed, inst.Facts()...)
	}

	ls.mu.Lock()
	ls.lastUsed = s.cfg.now()
	res, err := ls.s.ApplyCtx(r.Context(), delta)
	if err != nil {
		// The update itself is applied; only the refresh was
		// interrupted. Drop any partial diffs — the affected standing
		// queries are marked stale and revalidate on the next apply.
		for _, st := range ls.order {
			st.diff = nil
		}
		ls.mu.Unlock()
		writeEngineError(w, err)
		return
	}
	resp := wire.ApplyResponse{
		Result:     wire.FromApplyResult(res),
		Consistent: ls.s.Consistent(),
	}
	if !resp.Consistent {
		resp.Violations = len(ls.s.Violations())
	}
	for _, st := range ls.order {
		if st.diff != nil {
			resp.Updates = append(resp.Updates, wire.FromQueryUpdate(*st.diff))
			st.diff = nil
		}
	}
	ls.mu.Unlock()

	for _, u := range resp.Updates {
		if msg, err := json.Marshal(u); err == nil {
			ls.broadcast(msg)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t, ls, ok := s.lookup(w, r)
	if !ok || !shed(w, t) {
		return
	}
	defer t.release()
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := parser.Query(req.Query)
	if err != nil {
		writeEngineError(w, err)
		return
	}

	ls.mu.Lock()
	ls.lastUsed = s.cfg.now()
	answer := func(ctx context.Context) (session.Answer, error) {
		if req.Engine == "" {
			return ls.s.AnswerCtx(ctx, q)
		}
		opts, err := engineOptions(req.Engine, req.Workers, 0, 0)
		if err != nil {
			return session.Answer{}, err
		}
		return core.ConsistentAnswersCtx(ctx, ls.s.Current(), ls.s.Set(), q, opts)
	}
	possible := func(ctx context.Context) ([]relational.Tuple, error) {
		if req.Engine == "" {
			return ls.s.PossibleCtx(ctx, q)
		}
		opts, err := engineOptions(req.Engine, req.Workers, 0, 0)
		if err != nil {
			return nil, err
		}
		return core.PossibleAnswersCtx(ctx, ls.s.Current(), ls.s.Set(), q, opts)
	}

	resp := wire.AnswerResponse{Query: q.String()}
	switch req.Semantics {
	case "", "certain":
		ans, err := answer(r.Context())
		if err != nil {
			ls.mu.Unlock()
			writeEngineError(w, err)
			return
		}
		resp.Answer = wire.FromAnswer(ans)
	case "possible":
		tuples, err := possible(r.Context())
		if err != nil {
			ls.mu.Unlock()
			writeEngineError(w, err)
			return
		}
		resp.Semantics = "possible"
		if q.IsBoolean() {
			resp.Answer.Boolean = len(tuples) > 0
		} else {
			resp.Answer.Tuples = wire.FromTuples(tuples)
		}
	default:
		ls.mu.Unlock()
		writeError(w, http.StatusBadRequest, "bad_semantics",
			fmt.Sprintf("unknown semantics %q: want certain or possible", req.Semantics))
		return
	}
	ls.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	t, ls, ok := s.lookup(w, r)
	if !ok || !shed(w, t) {
		return
	}
	defer t.release()
	var req prepareRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := parser.Query(req.Query)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	name := q.Name
	if name == "" {
		name = "q"
	}

	ls.mu.Lock()
	ls.lastUsed = s.cfg.now()
	if st := ls.prepared[name]; st != nil {
		defer ls.mu.Unlock()
		if st.q.String() == q.String() {
			// Idempotent re-prepare of the same query.
			writeJSON(w, http.StatusOK, preparedResponse(st.p))
			return
		}
		writeError(w, http.StatusConflict, "query_exists",
			fmt.Sprintf("session already has a different standing query named %q", name))
		return
	}
	p, err := ls.s.PrepareCtx(r.Context(), q)
	if err != nil {
		ls.mu.Unlock()
		writeEngineError(w, err)
		return
	}
	st := &standing{q: q, p: p}
	p.Subscribe(func(u session.QueryUpdate) { st.diff = &u })
	ls.prepared[name] = st
	ls.order = append(ls.order, st)
	resp := preparedResponse(p)
	ls.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

func (s *server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	_, ls, ok := s.lookup(w, r)
	if !ok {
		return
	}
	ls.mu.Lock()
	ls.lastUsed = s.cfg.now()
	st := ls.prepared[r.PathValue("query")]
	var resp wire.AnswerResponse
	if st != nil {
		resp = preparedResponse(st.p)
	}
	ls.mu.Unlock()
	if st == nil {
		writeError(w, http.StatusNotFound, "unknown_query",
			fmt.Sprintf("no standing query named %q; POST it to .../prepare first", r.PathValue("query")))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// preparedResponse serializes a standing query's maintained state with zero
// engine diagnostics — a patched answer inspects no new repairs. It matches
// cqa -json byte for byte.
func preparedResponse(p *session.Prepared) wire.AnswerResponse {
	q := p.Query()
	ans := wire.Answer{Boolean: p.Boolean()}
	if !q.IsBoolean() {
		ans.Tuples = wire.FromTuples(p.Answers())
	}
	return wire.AnswerResponse{Query: q.String(), Answer: ans, Stale: !p.Valid()}
}

func (s *server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	_, ls, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, "no_stream", "response writer cannot stream")
		return
	}
	id, ch, alive := ls.subscribe()
	if !alive {
		writeError(w, http.StatusGone, "session_closed", "session is being torn down")
		return
	}
	defer ls.unsubscribe(id)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": subscribed %s/%s\n\n", ls.tenant, ls.name)
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case msg, open := <-ch:
			if !open {
				return
			}
			fmt.Fprintf(w, "event: update\ndata: %s\n\n", msg)
			flusher.Flush()
		}
	}
}

// evictIdle removes every session idle since before now-TTL, terminating
// its subscriber streams. It returns how many sessions were evicted.
func (s *server) evictIdle(now time.Time) int {
	if s.cfg.SessionTTL <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.SessionTTL)
	s.mu.Lock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()

	evicted := 0
	for _, t := range tenants {
		var dead []*liveSession
		t.mu.Lock()
		for name, ls := range t.sessions {
			ls.mu.Lock()
			idle := ls.lastUsed.Before(cutoff)
			ls.mu.Unlock()
			if idle {
				delete(t.sessions, name)
				dead = append(dead, ls)
			}
		}
		t.mu.Unlock()
		for _, ls := range dead {
			ls.closeSubs()
			evicted++
		}
	}
	return evicted
}

// janitor runs TTL eviction until ctx is cancelled.
func (s *server) janitor(ctx context.Context) {
	if s.cfg.SessionTTL <= 0 {
		return
	}
	tick := time.NewTicker(s.cfg.SessionTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			s.evictIdle(s.cfg.now())
		}
	}
}

package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/constraint"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/session"
	"repro/internal/wire"
)

// preparedResponse serializes a standing query's current state: the answer
// carries the maintained tuples (or boolean verdict) with zero engine
// diagnostics, since a patched answer inspects no new repairs. The daemon's
// answers endpoint builds the identical document.
func preparedResponse(p *session.Prepared) wire.AnswerResponse {
	q := p.Query()
	ans := wire.Answer{Boolean: p.Boolean()}
	if !q.IsBoolean() {
		ans.Tuples = wire.FromTuples(p.Answers())
	}
	return wire.AnswerResponse{Query: q.String(), Answer: ans}
}

// cmdSession runs a -session script: a line-oriented file of
//
//	query  q(V) :- s(U, V).
//	insert r(a, b). r(a, c).
//	delete r(a, b).
//
// driving one persistent session. Each query line registers (or re-prints)
// a standing query; each insert/delete applies one delta in O(|Δ|) and
// prints the update summary followed by the answer diffs of every standing
// query whose certain answers changed. Blank lines and #-comments are
// skipped.
//
// With jsonOut each line produces one compact wire document instead of
// text: wire.AnswerResponse for query lines, wire.ApplyResponse for
// insert/delete lines — the same documents the cqad daemon serves, so a
// script replayed over HTTP is byte-comparable to this output.
func cmdSession(d *relational.Instance, set *constraint.Set, script string, engine string, workers int, jsonOut bool) error {
	opts, err := engineOptions(engine, workers)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(script)
	if err != nil {
		return fmt.Errorf("loading -session script: %w", err)
	}

	s := session.New(d, set, opts)
	if !jsonOut {
		fmt.Printf("session: %d facts, %d constraints, engine %s\n",
			d.Len(), len(set.ICs)+len(set.NNCs), engine)
	}

	// Standing queries in registration order, with their pending
	// subscription diffs collected across the enclosing Apply.
	type standing struct {
		src  string
		q    *query.Q
		p    *session.Prepared
		diff *session.QueryUpdate
	}
	var queries []*standing
	byKey := map[string]*standing{}

	for ln, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch verb {
		case "query":
			q, err := parser.Query(rest)
			if err != nil {
				return fmt.Errorf("line %d: parsing query: %w", ln+1, err)
			}
			st, seen := byKey[q.String()]
			if !seen {
				p, err := s.Prepare(q)
				if err != nil {
					return fmt.Errorf("line %d: %w", ln+1, err)
				}
				st = &standing{src: rest, q: q, p: p}
				st.p.Subscribe(func(u session.QueryUpdate) { st.diff = &u })
				byKey[q.String()] = st
				queries = append(queries, st)
			}
			if jsonOut {
				if err := emitJSON(preparedResponse(st.p)); err != nil {
					return err
				}
				continue
			}
			fmt.Printf("query %s\n", q)
			if q.IsBoolean() {
				fmt.Printf("  consistent answer: %v\n", st.p.Boolean())
				continue
			}
			ans := st.p.Answers()
			fmt.Printf("  consistent answers: %d\n", len(ans))
			for _, t := range ans {
				fmt.Println("    " + t.String())
			}
		case "insert", "delete":
			inst, err := parser.Instance(rest)
			if err != nil {
				return fmt.Errorf("line %d: parsing facts: %w", ln+1, err)
			}
			var dl relational.Delta
			if verb == "insert" {
				dl.Added = inst.Facts()
			} else {
				dl.Removed = inst.Facts()
			}
			res, err := s.Apply(dl)
			if err != nil {
				return fmt.Errorf("line %d: applying update: %w", ln+1, err)
			}
			if jsonOut {
				resp := wire.ApplyResponse{
					Result:     wire.FromApplyResult(res),
					Consistent: s.Consistent(),
				}
				if !resp.Consistent {
					resp.Violations = len(s.Violations())
				}
				for _, st := range queries {
					if st.diff != nil {
						resp.Updates = append(resp.Updates, wire.FromQueryUpdate(*st.diff))
						st.diff = nil
					}
				}
				if err := emitJSON(resp); err != nil {
					return err
				}
				continue
			}
			fmt.Printf("%s %s\n", verb, rest)
			if res.Applied.Size() == 0 {
				fmt.Println("  no effective change")
				continue
			}
			fmt.Printf("  applied %+d/-%d facts, constraint-relevant: %v\n",
				len(res.Applied.Added), len(res.Applied.Removed), res.ConstraintRelevant)
			consistent := "consistent"
			if !s.Consistent() {
				consistent = fmt.Sprintf("INCONSISTENT (%d violations)", len(s.Violations()))
			}
			fmt.Printf("  now %s; queries refreshed %d, skipped %d\n",
				consistent, res.QueriesRefreshed, res.QueriesSkipped)
			for _, st := range queries {
				u := st.diff
				st.diff = nil
				if u == nil {
					continue
				}
				if st.q.IsBoolean() {
					fmt.Printf("  %s -> %v\n", st.q, u.Boolean)
					continue
				}
				var parts []string
				for _, t := range u.Added {
					parts = append(parts, "+"+t.String())
				}
				for _, t := range u.Removed {
					parts = append(parts, "-"+t.String())
				}
				fmt.Printf("  %s -> %s\n", st.q, strings.Join(parts, " "))
			}
		default:
			return fmt.Errorf("line %d: unknown command %q: want query, insert, or delete", ln+1, verb)
		}
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSessionScript(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "script.txt")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSessionCommandGolden pins the full -session transcript for a scripted
// update sequence on the shared fixture, for each engine: standing-query
// registration, O(|Δ|) applies with their summaries, and the pushed answer
// diffs. The golden text is engine-independent by construction (certain
// answers are engine-independent, and the summary lines print no
// engine-specific diagnostics).
func TestSessionCommandGolden(t *testing.T) {
	db, ic, _ := writeFixtures(t)
	script := writeSessionScript(t, `
		# standing queries over the inconsistent fixture
		query q(V) :- s(U, V).
		query q :- r(a, b).

		# unconstrained relation: fast path, nothing refreshed
		insert t(x, y).

		# resolve the key conflict in favour of r(a, b)
		delete r(a, c).

		# no-op: already gone
		delete r(a, c).

		query q(V) :- s(U, V).
	`)
	const golden = `session: 4 facts, 3 constraints, engine %s
query q(V) :- s(U,V).
  consistent answers: 1
    (a)
query q() :- r(a,b).
  consistent answer: false
insert t(x, y).
  applied +1/-0 facts, constraint-relevant: false
  now INCONSISTENT (3 violations); queries refreshed 0, skipped 2
delete r(a, c).
  applied +0/-1 facts, constraint-relevant: true
  now INCONSISTENT (1 violations); queries refreshed 2, skipped 0
  q() :- r(a,b). -> true
delete r(a, c).
  no effective change
query q(V) :- s(U,V).
  consistent answers: 1
    (a)
`
	for _, engine := range []string{"search", "program", "cautious"} {
		out, err := capture(t, func() error {
			return run([]string{"-db", db, "-ic", ic, "-engine", engine, "-session", script})
		})
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		want := strings.Replace(golden, "%s", engine, 1)
		if out != want {
			t.Errorf("engine %s transcript differs:\n--- got ---\n%s--- want ---\n%s", engine, out, want)
		}
	}
}

// TestSessionJSONGolden pins the -json session transcript: one compact wire
// document per script line (wire.AnswerResponse for queries,
// wire.ApplyResponse for updates). The documents are pinned for the search
// engine; program engines produce different cache diagnostics inside
// result, by design.
//
// The golden lives in testdata/session_json.golden because the cqad daemon
// replays the identical script over HTTP against the same file — one file,
// two transports, byte-identical outputs (see cmd/cqad's parity test).
func TestSessionJSONGolden(t *testing.T) {
	db, ic, _ := writeFixtures(t)
	script := writeSessionScript(t, `
		query q(V) :- s(U, V).
		query p :- r(a, b).
		insert t(x, y).
		delete r(a, c).
		delete r(a, c).
		query q(V) :- s(U, V).
	`)
	golden, err := os.ReadFile(filepath.Join("testdata", "session_json.golden"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"-db", db, "-ic", ic, "-json", "-session", script})
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Errorf("JSON transcript differs:\n--- got ---\n%s--- want ---\n%s", out, golden)
	}
}

// TestSessionWorkersDeterministic extends the CLI determinism pin to the
// session transcript.
func TestSessionWorkersDeterministic(t *testing.T) {
	db, ic, _ := writeFixtures(t)
	script := writeSessionScript(t, `
		query q(V) :- s(U, V).
		insert r(b, b). s(g, b).
		delete r(a, b).
		query q(X, Y) :- r(X, Y).
	`)
	for _, engine := range []string{"search", "program", "cautious"} {
		args := []string{"-db", db, "-ic", ic, "-engine", engine, "-session", script}
		seq, err := capture(t, func() error { return run(args) })
		if err != nil {
			t.Fatal(err)
		}
		par, err := capture(t, func() error { return run(append([]string{"-workers", "4"}, args...)) })
		if err != nil {
			t.Fatal(err)
		}
		if seq != par {
			t.Errorf("engine %s: workers=4 session transcript differs:\n--- seq ---\n%s--- par ---\n%s", engine, seq, par)
		}
	}
}

// TestSessionErrorPaths pins the script-level and flag-level failures.
func TestSessionErrorPaths(t *testing.T) {
	db, ic, _ := writeFixtures(t)
	bad := func(src string) string { return writeSessionScript(t, src) }
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"session with positional command",
			[]string{"-db", db, "-ic", ic, "-session", bad("query q :- r(a, b)."), "check"},
			"-session is a command"},
		{"missing script file",
			[]string{"-db", db, "-ic", ic, "-session", filepath.Join(t.TempDir(), "nope.txt")},
			"loading -session script"},
		{"unknown verb",
			[]string{"-db", db, "-ic", ic, "-session", bad("upsert r(a, b).")},
			`unknown command "upsert"`},
		{"bad fact",
			[]string{"-db", db, "-ic", ic, "-session", bad("insert r(X).")},
			"parsing facts"},
		{"bad query",
			[]string{"-db", db, "-ic", ic, "-session", bad("query q( :- .")},
			"parsing query"},
	}
	for _, tc := range cases {
		_, err := capture(t, func() error { return run(tc.args) })
		if err == nil {
			t.Errorf("%s: run(%v) succeeded, want error", tc.name, tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

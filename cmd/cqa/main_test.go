package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := f()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func writeFixtures(t *testing.T) (db, ic, q string) {
	t.Helper()
	dir := t.TempDir()
	db = filepath.Join(dir, "db.facts")
	ic = filepath.Join(dir, "rules.ic")
	q = filepath.Join(dir, "query.q")
	if err := os.WriteFile(db, []byte(`
		r(a, b).
		r(a, c).
		s(e, f).
		s(null, a).
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ic, []byte(`
		r(X, Y), r(X, Z) -> Y = Z.
		s(U, V) -> r(V, W).
		r(X, Y), isnull(X) -> false.
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(q, []byte(`q(V) :- s(U, V).`), 0o644); err != nil {
		t.Fatal(err)
	}
	return db, ic, q
}

func TestCheckCommand(t *testing.T) {
	db, ic, _ := writeFixtures(t)
	out, err := capture(t, func() error {
		return run([]string{"-db", db, "-ic", ic, "check"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"INCONSISTENT", "RIC-acyclic: true", "4 facts"} {
		if !strings.Contains(out, want) {
			t.Errorf("check output missing %q:\n%s", want, out)
		}
	}
}

func TestRepairsCommand(t *testing.T) {
	db, ic, _ := writeFixtures(t)
	for _, engine := range []string{"search", "program"} {
		out, err := capture(t, func() error {
			return run([]string{"-db", db, "-ic", ic, "-engine", engine, "repairs"})
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "repair 4:") || strings.Contains(out, "repair 5:") {
			t.Errorf("engine %s: expected exactly 4 repairs:\n%s", engine, out)
		}
	}
}

func TestRepairsClassic(t *testing.T) {
	db, ic, _ := writeFixtures(t)
	out, err := capture(t, func() error {
		return run([]string{"-db", db, "-ic", ic, "-classic", "repairs"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "classic mode") {
		t.Errorf("classic flag ignored:\n%s", out)
	}
}

func TestAnswersCommand(t *testing.T) {
	db, ic, q := writeFixtures(t)
	for _, engine := range []string{"search", "program", "cautious"} {
		out, err := capture(t, func() error {
			return run([]string{"-db", db, "-ic", ic, "-query", q, "-engine", engine, "answers"})
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "consistent answers: 1") || !strings.Contains(out, "(a)") {
			t.Errorf("engine %s: unexpected answers:\n%s", engine, out)
		}
	}
}

// TestAnswersDirect exercises the repair-less engine end to end: on an
// FD-only fixture direct and auto agree with search, and on the mixed
// fixture direct fails with its scope error while auto falls back to search.
func TestAnswersDirect(t *testing.T) {
	fdDB := "r(a, b).\nr(a, c).\nr(d, b).\ns(e, a).\n"
	fdIC := "r(X, Y), r(X, Z) -> Y = Z."
	for _, engine := range []string{"direct", "auto"} {
		out, err := capture(t, func() error {
			return run([]string{"-db", fdDB, "-ic", fdIC, "-query", `q(V) :- s(U, V).`, "-engine", engine, "answers"})
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "consistent answers: 1") || !strings.Contains(out, "(a)") {
			t.Errorf("engine %s: unexpected answers:\n%s", engine, out)
		}
		if !strings.Contains(out, "repairs inspected: 2") {
			t.Errorf("engine %s: expected the exact repair count 2:\n%s", engine, out)
		}
	}

	db, ic, q := writeFixtures(t)
	if _, err := capture(t, func() error {
		return run([]string{"-db", db, "-ic", ic, "-query", q, "-engine", "direct", "answers"})
	}); err == nil || !strings.Contains(err.Error(), "direct engine:") {
		t.Errorf("direct on mixed constraints: err = %v, want scope error", err)
	}
	out, err := capture(t, func() error {
		return run([]string{"-db", db, "-ic", ic, "-query", q, "-engine", "auto", "answers"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "consistent answers: 1") || !strings.Contains(out, "(a)") {
		t.Errorf("auto on mixed constraints: unexpected answers:\n%s", out)
	}
}

// TestAnswersJSONGolden pins the -json answers document for the search
// engine (program engines report different diagnostics by design).
func TestAnswersJSONGolden(t *testing.T) {
	db, ic, q := writeFixtures(t)
	out, err := capture(t, func() error {
		return run([]string{"-db", db, "-ic", ic, "-query", q, "-json", "answers"})
	})
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"query":"q(V) :- s(U,V).","answer":{"tuples":[["a"]],"boolean":false,"num_repairs":4,"states_explored":7}}` + "\n"
	if out != golden {
		t.Errorf("answers -json differs:\n got %s\nwant %s", out, golden)
	}
	// The answer payload (tuples, boolean) is engine-independent even
	// though the diagnostics are not.
	for _, engine := range []string{"program", "cautious"} {
		out, err := capture(t, func() error {
			return run([]string{"-db", db, "-ic", ic, "-query", q, "-engine", engine, "-json", "answers"})
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, `"tuples":[["a"]],"boolean":false`) {
			t.Errorf("engine %s: unexpected -json answers:\n%s", engine, out)
		}
	}
}

func TestSemanticsCommand(t *testing.T) {
	db, ic, _ := writeFixtures(t)
	out, err := capture(t, func() error {
		return run([]string{"-db", db, "-ic", ic, "semantics"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"null-aware", "simple-match", "full-match"} {
		if !strings.Contains(out, want) {
			t.Errorf("semantics output missing %q:\n%s", want, out)
		}
	}
}

func TestInlineInput(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{
			"-db", "p(a).\nq(a).",
			"-ic", "p(X), q(X) -> false.",
			"check",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "INCONSISTENT") {
		t.Errorf("inline input not handled:\n%s", out)
	}
}

func TestErrorPaths(t *testing.T) {
	db, ic, _ := writeFixtures(t)
	cases := [][]string{
		{},                              // no command
		{"-db", db, "-ic", ic, "bogus"}, // unknown command
		{"-db", db, "check"},            // missing -ic
		{"-db", "missing.facts", "-ic", ic, "check"}, // missing file
		{"-db", db, "-ic", ic, "answers"},            // answers without -query
		{"-db", "p(X).", "-ic", ic, "check"},         // parse error
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	db, ic, q := writeFixtures(t)
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error
	}{
		{"repairs rejects typo'd engine", // used to silently fall back to search
			[]string{"-db", db, "-ic", ic, "-engine", "serach", "repairs"}, "unknown engine"},
		{"repairs rejects cautious", // cautious never materializes repairs
			[]string{"-db", db, "-ic", ic, "-engine", "cautious", "repairs"}, "never materializes repairs"},
		{"repairs rejects direct", // the classification never enumerates Rep(D)
			[]string{"-db", db, "-ic", ic, "-engine", "direct", "repairs"}, "never materializes repairs"},
		{"repairs rejects classic with program", // -classic used to be silently ignored
			[]string{"-db", db, "-ic", ic, "-classic", "-engine", "program", "repairs"}, "-classic requires -engine search"},
		{"answers rejects typo'd engine", // used to silently fall back to search
			[]string{"-db", db, "-ic", ic, "-query", q, "-engine", "progam", "answers"}, "unknown engine"},
		{"classic outside repairs",
			[]string{"-db", db, "-ic", ic, "-query", q, "-classic", "answers"}, "-classic only applies"},
		{"workers must be positive",
			[]string{"-db", db, "-ic", ic, "-workers", "0", "repairs"}, "-workers must be >= 1"},
		{"workers outside repairs/answers",
			[]string{"-db", db, "-ic", ic, "-workers", "4", "check"}, "-workers only applies"},
		{"typo'd engine on check", // used to be silently ignored
			[]string{"-db", db, "-ic", ic, "-engine", "serach", "check"}, "unknown engine"},
		{"engine outside repairs/answers",
			[]string{"-db", db, "-ic", ic, "-engine", "program", "semantics"}, "-engine only applies"},
	}
	for _, tc := range cases {
		_, err := capture(t, func() error { return run(tc.args) })
		if err == nil {
			t.Errorf("%s: run(%v) succeeded, want error", tc.name, tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestWorkersDeterministic pins the tentpole guarantee at the CLI level:
// both the parallel search and the parallel stable-model engine print
// byte-identical repair listings and answers. The fixture keeps even the
// search engine's states-explored line deterministic (at most one
// insertable atom per state, so expansion is content-determined; see the
// repair.Options.Workers contract), and the answers query is non-boolean,
// so no scheduling-dependent short-circuit diagnostics are printed. The
// program engines' model stream is deterministic outright.
func TestWorkersDeterministic(t *testing.T) {
	db, ic, q := writeFixtures(t)
	for _, cmd := range [][]string{
		{"-db", db, "-ic", ic, "repairs"},
		{"-db", db, "-ic", ic, "-query", q, "answers"},
		{"-db", db, "-ic", ic, "-engine", "program", "repairs"},
		{"-db", db, "-ic", ic, "-engine", "program", "-query", q, "answers"},
		{"-db", db, "-ic", ic, "-engine", "cautious", "-query", q, "answers"},
	} {
		seq, err := capture(t, func() error { return run(cmd) })
		if err != nil {
			t.Fatal(err)
		}
		par, err := capture(t, func() error { return run(append([]string{"-workers", "4"}, cmd...)) })
		if err != nil {
			t.Fatal(err)
		}
		if seq != par {
			t.Errorf("workers=4 output differs from sequential for %v:\n--- seq ---\n%s--- par ---\n%s", cmd, seq, par)
		}
	}
}

// TestProfileFlags checks -cpuprofile/-memprofile produce non-empty pprof
// files alongside a normal run.
func TestProfileFlags(t *testing.T) {
	db, ic, q := writeFixtures(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out, err := capture(t, func() error {
		return run([]string{"-db", db, "-ic", ic, "-query", q,
			"-engine", "cautious", "-cpuprofile", cpu, "-memprofile", mem, "answers"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "consistent answers") {
		t.Errorf("profiled run lost its output:\n%s", out)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile %s not written: %v", path, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

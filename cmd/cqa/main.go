// Command cqa checks consistency, enumerates repairs, and computes
// consistent query answers for a database instance and a set of integrity
// constraints, under the null-aware semantics of Bravo & Bertossi
// (EDBT 2006).
//
// Usage:
//
//	cqa -db db.facts -ic constraints.ic check
//	cqa -db db.facts -ic constraints.ic repairs [-classic] [-engine search|program] [-workers n]
//	cqa -db db.facts -ic constraints.ic answers -query query.q [-engine search|program|cautious|direct|auto] [-workers n]
//	cqa -db db.facts -ic constraints.ic semantics
//	cqa -db db.facts -ic constraints.ic -session script.txt [-engine ...] [-workers n]
//
// -engine selects from the registry of internal/engine: search and program
// materialize repairs; cautious answers by cautious stable-model reasoning;
// direct answers FD-only constraint sets from a repair-less polynomial
// classification (internal/direct) and rejects anything broader; auto picks
// direct when the set is FD-only and search otherwise.
//
// -session runs a line-oriented update script (query / insert / delete
// commands) against one persistent session: standing queries are prepared
// once and each update advances the shared repair state in O(|Δ|),
// printing the answer diffs it causes (see internal/session).
//
// -json switches the answers and session commands to the JSON wire schema
// of internal/wire — one compact document per line, byte-identical to what
// the cqad daemon serves for the same requests.
//
// -workers parallelizes the chosen engine: the search engine's state
// expansion pool, or the program engines' grounding and per-component
// stable-model solvers. Output is byte-identical for every worker count.
//
// -cpuprofile/-memprofile write runtime/pprof profiles of the whole
// command, for bottleneck hunts without an ad-hoc harness.
//
// Input files use the syntax of internal/parser (upper-case identifiers are
// variables; null is the null constant). The -db and -ic flags also accept
// inline text when the argument contains a newline or parenthesis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/engine"
	"repro/internal/ground"
	"repro/internal/nullsem"
	"repro/internal/parser"
	"repro/internal/prof"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/repairprog"
	"repro/internal/stable"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cqa:", err)
		os.Exit(1)
	}
}

func run(args []string) (retErr error) {
	fs := flag.NewFlagSet("cqa", flag.ContinueOnError)
	dbArg := fs.String("db", "", "database instance (file path or inline facts)")
	icArg := fs.String("ic", "", "integrity constraints (file path or inline)")
	queryArg := fs.String("query", "", "query (file path or inline), for the answers command")
	sessionArg := fs.String("session", "", "session update script (file of query/insert/delete lines)")
	engineFlag := fs.String("engine", "search", "CQA engine: "+strings.Join(engine.Names(), " | "))
	jsonOut := fs.Bool("json", false, "emit results as JSON wire documents (answers and session commands)")
	classic := fs.Bool("classic", false, "use the classic [2] repair semantics (repairs command, search engine)")
	workers := fs.Int("workers", 1, "parallel workers for the selected engine (>= 1)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the command to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (taken after the command, post-GC) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()
	cmd := ""
	switch {
	case *sessionArg != "":
		if fs.NArg() != 0 {
			return fmt.Errorf("-session is a command of its own: drop %q", fs.Arg(0))
		}
		cmd = "session"
	case fs.NArg() != 1:
		return fmt.Errorf("expected exactly one command: check | repairs | answers | semantics (or -session script)")
	default:
		cmd = fs.Arg(0)
	}

	if _, ok := engine.Lookup(*engineFlag); !ok {
		return fmt.Errorf("-engine: %w", &engine.UnknownError{Name: *engineFlag})
	}
	if *engineFlag != "search" && cmd != "repairs" && cmd != "answers" && cmd != "session" {
		return fmt.Errorf("-engine only applies to the repairs, answers, and session commands")
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1 (got %d)", *workers)
	}
	if *workers > 1 && cmd != "repairs" && cmd != "answers" && cmd != "session" {
		return fmt.Errorf("-workers only applies to the repairs, answers, and session commands")
	}
	if *classic && cmd != "repairs" {
		return fmt.Errorf("-classic only applies to the repairs command")
	}
	if *jsonOut && cmd != "answers" && cmd != "session" {
		return fmt.Errorf("-json only applies to the answers and session commands")
	}
	if *dbArg == "" || *icArg == "" {
		return fmt.Errorf("-db and -ic are required")
	}
	d, err := loadInstance(*dbArg)
	if err != nil {
		return fmt.Errorf("loading -db: %w", err)
	}
	set, err := loadConstraints(*icArg)
	if err != nil {
		return fmt.Errorf("loading -ic: %w", err)
	}

	switch cmd {
	case "check":
		return cmdCheck(d, set)
	case "repairs":
		return cmdRepairs(d, set, *engineFlag, *classic, *workers)
	case "answers":
		if *queryArg == "" {
			return fmt.Errorf("-query is required for the answers command")
		}
		q, err := loadQuery(*queryArg)
		if err != nil {
			return fmt.Errorf("loading -query: %w", err)
		}
		return cmdAnswers(d, set, q, *engineFlag, *workers, *jsonOut)
	case "semantics":
		return cmdSemantics(d, set)
	case "session":
		return cmdSession(d, set, *sessionArg, *engineFlag, *workers, *jsonOut)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// engineOptions maps the -engine/-workers flags onto session options via
// the shared registry; the answers and session commands share the mapping.
func engineOptions(name string, workers int) (core.Options, error) {
	return engine.Options(name, workers)
}

// emitJSON writes one compact wire document per line, exactly as the cqad
// daemon serializes the same type — which is what makes CLI and HTTP
// outputs byte-comparable.
func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	return enc.Encode(v)
}

// loadText treats the argument as inline text if it looks like source,
// otherwise as a file path.
func loadText(arg string) (string, error) {
	if strings.ContainsAny(arg, "(\n") {
		return arg, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func loadInstance(arg string) (*relational.Instance, error) {
	src, err := loadText(arg)
	if err != nil {
		return nil, err
	}
	return parser.Instance(src)
}

func loadConstraints(arg string) (*constraint.Set, error) {
	src, err := loadText(arg)
	if err != nil {
		return nil, err
	}
	return parser.Constraints(src)
}

func loadQuery(arg string) (*query.Q, error) {
	src, err := loadText(arg)
	if err != nil {
		return nil, err
	}
	return parser.Query(src)
}

func cmdCheck(d *relational.Instance, set *constraint.Set) error {
	fmt.Printf("instance: %d facts, %d constraints (%d ICs, %d NNCs)\n",
		d.Len(), len(set.ICs)+len(set.NNCs), len(set.ICs), len(set.NNCs))
	fmt.Printf("RIC-acyclic: %v, non-conflicting: %v, Theorem 5 HCF condition: %v\n",
		depgraph.RICAcyclic(set), set.NonConflicting(), repairprog.GuaranteedHCF(set))
	rep := nullsem.Check(d, set, nullsem.NullAware)
	if rep.Consistent() {
		fmt.Println("D |=_N IC: consistent")
		return nil
	}
	fmt.Printf("D |=_N IC: INCONSISTENT (%d IC violations, %d NNC violations)\n",
		len(rep.IC), len(rep.NNC))
	fmt.Println(rep)
	return nil
}

func cmdRepairs(d *relational.Instance, set *constraint.Set, name string, classic bool, workers int) error {
	if spec, ok := engine.Lookup(name); ok && !spec.Repairs {
		return fmt.Errorf("-engine %s never materializes repairs: the repairs command wants search or program", name)
	}
	switch name {
	case "program":
		if classic {
			return fmt.Errorf("-classic requires -engine search (the program engine implements only the null-based semantics)")
		}
		tr, err := repairprog.Build(d, set, repairprog.VariantCorrected)
		if err != nil {
			return err
		}
		tr.GroundOptions = ground.Options{Workers: workers}
		insts, models, err := tr.StableRepairs(stable.Options{Workers: workers})
		if err != nil {
			return err
		}
		fmt.Printf("%d stable models, %d distinct repairs:\n", len(models), len(insts))
		for i, r := range insts {
			fmt.Printf("repair %d: %s\n         Δ = %s\n", i+1, r, relational.Diff(d, r))
		}
		return nil
	case "search":
		opts := repair.Options{Workers: workers}
		if classic {
			opts.Mode = repair.Classic
		}
		res, err := repair.RepairsD(d, set, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%d repairs (%s mode, %d states explored):\n",
			len(res.Repairs), opts.Mode, res.StatesExplored)
		for i, r := range res.Repairs {
			fmt.Printf("repair %d: %s\n         Δ = %s\n", i+1, r, res.Deltas[i])
		}
		return nil
	default:
		return fmt.Errorf("unknown -engine %q for the repairs command: want search or program", name)
	}
}

func cmdAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, engine string, workers int, jsonOut bool) error {
	opts, err := engineOptions(engine, workers)
	if err != nil {
		return err
	}
	ans, err := core.ConsistentAnswers(d, set, q, opts)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(wire.AnswerResponse{Query: q.String(), Answer: wire.FromAnswer(ans)})
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("repairs inspected: %d\n", ans.NumRepairs)
	if q.IsBoolean() {
		fmt.Printf("consistent answer: %v\n", ans.Boolean)
		return nil
	}
	fmt.Printf("consistent answers: %d\n", len(ans.Tuples))
	for _, t := range ans.Tuples {
		fmt.Println("  " + t.String())
	}
	return nil
}

func cmdSemantics(d *relational.Instance, set *constraint.Set) error {
	fmt.Println("satisfaction under each implemented semantics:")
	for _, sem := range nullsem.AllSemantics() {
		ok := nullsem.Satisfies(d, set, sem)
		status := "consistent"
		if !ok {
			status = "INCONSISTENT"
		}
		fmt.Printf("  %-14s %s\n", sem.String()+":", status)
	}
	return nil
}

package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/fdgen"
	"repro/internal/relational"
	"repro/internal/wire"
)

// fdProfile holds the -profile=fd generator knobs.
type fdProfile struct {
	rows, relations, groupSize, classes, violations int
	violRate, nullRate                              float64
	seed                                            int64
	out                                             string
}

// emitFD generates a synthetic FD workload (see internal/fdgen): -o prefix
// writes prefix.facts and prefix.ic and prints a one-line summary; without
// -o the facts go to stdout with the constraints appended after a
// "# --- constraints ---" separator line.
func emitFD(p fdProfile) error {
	cfg := fdgen.Config{
		Relations:  p.relations,
		Rows:       p.rows,
		GroupSize:  p.groupSize,
		Violations: p.violations,
		Classes:    p.classes,
		NullRate:   p.nullRate,
		Seed:       p.seed,
	}
	cfg = cfg.Normalized()
	if p.violRate > 0 {
		if p.violRate > 1 {
			return fmt.Errorf("-violrate must be in [0, 1] (got %g)", p.violRate)
		}
		groups := cfg.Rows / cfg.GroupSize
		if groups == 0 {
			groups = 1
		}
		cfg.Violations = int(p.violRate * float64(groups))
	}
	d, set := fdgen.Generate(cfg)

	var facts strings.Builder
	renderInstance(&facts, d)
	ic := wire.FromConstraints(set).Source

	if p.out == "" {
		fmt.Print(facts.String())
		fmt.Println("# --- constraints ---")
		fmt.Print(ic)
		return nil
	}
	if err := os.WriteFile(p.out+".facts", []byte(facts.String()), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(p.out+".ic", []byte(ic), 0o644); err != nil {
		return err
	}
	fmt.Printf("fd profile: %d facts over %d relation(s), %d violated group(s), seed %d -> %s.facts, %s.ic\n",
		d.Len(), cfg.Relations, cfg.Violations, cfg.Seed, p.out, p.out)
	return nil
}

// renderInstance writes one fact per line in parser syntax, in canonical
// order.
func renderInstance(b *strings.Builder, d *relational.Instance) {
	for _, f := range d.Facts() {
		b.WriteString(renderFact(f))
		b.WriteString(".\n")
	}
}

// Command repairgen emits the Definition 9 repair program Π(D, IC) for a
// database instance and constraint set, in the library's native syntax or
// in DLV syntax (the solver the paper used).
//
// Usage:
//
//	repairgen -db db.facts -ic constraints.ic [-variant corrected] [-format dlv] [-ground]
//	repairgen -db db.facts -updates n [-seed s]
//
// -updates switches to the update-script generator: instead of a repair
// program it emits n randomized insert/delete lines (cqa -session syntax)
// over the instance's schemas and active domain, for the session
// differential and bench suites. -ic is not needed in this mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ground"
	"repro/internal/parser"
	"repro/internal/repairprog"
	"repro/internal/stable"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repairgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("repairgen", flag.ContinueOnError)
	dbArg := fs.String("db", "", "database instance (file path or inline facts)")
	icArg := fs.String("ic", "", "integrity constraints (file path or inline)")
	variantArg := fs.String("variant", "paper", "program variant: paper | corrected")
	format := fs.String("format", "native", "output format: native | dlv")
	groundOut := fs.Bool("ground", false, "also print the ground program and its stats")
	updates := fs.Int("updates", 0, "emit a randomized session update script of this many lines instead of a program")
	seedArg := fs.Int64("seed", 1, "random seed for -updates")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *updates < 0 {
		return fmt.Errorf("-updates must be >= 0 (got %d)", *updates)
	}
	if *dbArg == "" || (*icArg == "" && *updates == 0) {
		return fmt.Errorf("-db and -ic are required")
	}
	dSrc, err := loadText(*dbArg)
	if err != nil {
		return err
	}
	d, err := parser.Instance(dSrc)
	if err != nil {
		return fmt.Errorf("parsing -db: %w", err)
	}
	if *updates > 0 {
		return emitUpdates(d, *updates, *seedArg)
	}
	icSrc, err := loadText(*icArg)
	if err != nil {
		return err
	}
	set, err := parser.Constraints(icSrc)
	if err != nil {
		return fmt.Errorf("parsing -ic: %w", err)
	}

	variant := repairprog.VariantPaper
	switch *variantArg {
	case "paper":
	case "corrected":
		variant = repairprog.VariantCorrected
	default:
		return fmt.Errorf("unknown variant %q", *variantArg)
	}

	tr, err := repairprog.Build(d, set, variant)
	if err != nil {
		return err
	}
	switch *format {
	case "native":
		fmt.Print(tr.Render())
	case "dlv":
		fmt.Print(tr.Program.DLV())
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	if *groundOut {
		gp, err := ground.Ground(tr.Program)
		if err != nil {
			return err
		}
		fmt.Printf("\n%% ground program: %d atoms, %d rules, HCF=%v\n",
			gp.NumAtoms(), len(gp.Rules), stable.IsHCF(gp))
		fmt.Print(gp)
	}
	return nil
}

func loadText(arg string) (string, error) {
	if strings.ContainsAny(arg, "(\n") {
		return arg, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Command repairgen emits the Definition 9 repair program Π(D, IC) for a
// database instance and constraint set, in the library's native syntax or
// in DLV syntax (the solver the paper used).
//
// Usage:
//
//	repairgen -db db.facts -ic constraints.ic [-variant corrected] [-format dlv] [-ground]
//	repairgen -db db.facts -updates n [-seed s]
//	repairgen -profile fd [-rows n] [-relations k] [-groupsize g] [-violations v | -violrate p] [-classes c] [-nullrate p] [-seed s] [-o prefix]
//
// -updates switches to the update-script generator: instead of a repair
// program it emits n randomized insert/delete lines (cqa -session syntax)
// over the instance's schemas and active domain, for the session
// differential and bench suites. -ic is not needed in this mode.
//
// -profile fd switches to the FD-workload generator (internal/fdgen): a
// synthetic instance of -rows rows per relation whose only constraints are
// key-style functional dependencies, with an exact count (-violations) or
// rate (-violrate, fraction of key groups) of violated groups — the
// fixtures the direct engine's differential and scaling suites use. With
// -o the facts and constraints land in prefix.facts and prefix.ic; without
// it both print to stdout separated by a "# --- constraints ---" line.
// -db and -ic are not used in this mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ground"
	"repro/internal/parser"
	"repro/internal/repairprog"
	"repro/internal/stable"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repairgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("repairgen", flag.ContinueOnError)
	dbArg := fs.String("db", "", "database instance (file path or inline facts)")
	icArg := fs.String("ic", "", "integrity constraints (file path or inline)")
	variantArg := fs.String("variant", "paper", "program variant: paper | corrected")
	format := fs.String("format", "native", "output format: native | dlv")
	groundOut := fs.Bool("ground", false, "also print the ground program and its stats")
	updates := fs.Int("updates", 0, "emit a randomized session update script of this many lines instead of a program")
	seedArg := fs.Int64("seed", 1, "random seed for -updates and -profile")
	profile := fs.String("profile", "", "workload profile to generate instead of a program: fd")
	rows := fs.Int("rows", 0, "fd profile: rows per constrained relation")
	relations := fs.Int("relations", 1, "fd profile: number of FD-constrained relations")
	groupSize := fs.Int("groupsize", 2, "fd profile: rows sharing one key")
	violations := fs.Int("violations", 0, "fd profile: exact number of violated key groups per relation")
	violRate := fs.Float64("violrate", 0, "fd profile: fraction of key groups violated (overrides -violations)")
	classes := fs.Int("classes", 2, "fd profile: distinct dependent values per violated group")
	nullRate := fs.Float64("nullrate", 0, "fd profile: probability a clean row is null-exempt")
	outArg := fs.String("o", "", "fd profile: write <prefix>.facts and <prefix>.ic instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *updates < 0 {
		return fmt.Errorf("-updates must be >= 0 (got %d)", *updates)
	}
	switch *profile {
	case "":
	case "fd":
		return emitFD(fdProfile{
			rows: *rows, relations: *relations, groupSize: *groupSize,
			classes: *classes, violations: *violations,
			violRate: *violRate, nullRate: *nullRate,
			seed: *seedArg, out: *outArg,
		})
	default:
		return fmt.Errorf("unknown -profile %q: want fd", *profile)
	}
	if *dbArg == "" || (*icArg == "" && *updates == 0) {
		return fmt.Errorf("-db and -ic are required")
	}
	dSrc, err := loadText(*dbArg)
	if err != nil {
		return err
	}
	d, err := parser.Instance(dSrc)
	if err != nil {
		return fmt.Errorf("parsing -db: %w", err)
	}
	if *updates > 0 {
		return emitUpdates(d, *updates, *seedArg)
	}
	icSrc, err := loadText(*icArg)
	if err != nil {
		return err
	}
	set, err := parser.Constraints(icSrc)
	if err != nil {
		return fmt.Errorf("parsing -ic: %w", err)
	}

	variant := repairprog.VariantPaper
	switch *variantArg {
	case "paper":
	case "corrected":
		variant = repairprog.VariantCorrected
	default:
		return fmt.Errorf("unknown variant %q", *variantArg)
	}

	tr, err := repairprog.Build(d, set, variant)
	if err != nil {
		return err
	}
	switch *format {
	case "native":
		fmt.Print(tr.Render())
	case "dlv":
		fmt.Print(tr.Program.DLV())
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	if *groundOut {
		gp, err := ground.Ground(tr.Program)
		if err != nil {
			return err
		}
		fmt.Printf("\n%% ground program: %d atoms, %d rules, HCF=%v\n",
			gp.NumAtoms(), len(gp.Rules), stable.IsHCF(gp))
		fmt.Print(gp)
	}
	return nil
}

func loadText(arg string) (string, error) {
	if strings.ContainsAny(arg, "(\n") {
		return arg, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

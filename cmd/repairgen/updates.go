package main

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/parser"
	"repro/internal/relational"
	"repro/internal/value"
)

// poolCap bounds the enumerated fact pool; beyond it wide schemas would
// make script generation itself the bottleneck.
const poolCap = 50000

// emitUpdates prints a randomized session update script: n insert/delete
// lines in the syntax cqa -session consumes. Facts are drawn from the
// closed pool of the instance's relation schemas over its active domain
// plus null; a simulated fact set keeps the script well-formed (deletes
// only present facts, inserts only absent ones), so every line is an
// effective update. Deterministic for a fixed (-db, -updates, -seed)
// triple.
func emitUpdates(d *relational.Instance, n int, seed int64) error {
	pool := updatePool(d)
	if len(pool) == 0 {
		return fmt.Errorf("-updates needs a non-empty instance to derive a fact pool from")
	}
	have := map[string]bool{}
	d.ForEach(func(f relational.Fact) bool {
		have[f.Key()] = true
		return true
	})
	rng := rand.New(rand.NewSource(seed))
	fmt.Printf("# %d updates over %d pool facts (seed %d)\n", n, len(pool), seed)
	for i := 0; i < n; i++ {
		f := pool[rng.Intn(len(pool))]
		verb := "insert"
		if have[f.Key()] {
			// Bias towards keeping the instance populated: a touched
			// present fact is usually deleted, but a re-roll now and then
			// keeps long scripts from draining small pools.
			if rng.Intn(4) == 0 {
				i--
				continue
			}
			verb = "delete"
		}
		have[f.Key()] = verb == "insert"
		fmt.Printf("%s %s.\n", verb, renderFact(f))
	}
	return nil
}

// updatePool enumerates facts over the instance's relation schemas with
// arguments from the active domain extended with null, stopping at
// poolCap.
func updatePool(d *relational.Instance) []relational.Fact {
	vals := d.ActiveDomain()
	hasNull := false
	for _, v := range vals {
		if v.IsNull() {
			hasNull = true
			break
		}
	}
	if !hasNull {
		vals = append(vals, value.Null())
	}
	var pool []relational.Fact
	args := make([]value.V, 0, 8)
	var expand func(rk relational.RelKey)
	expand = func(rk relational.RelKey) {
		if len(pool) >= poolCap {
			return
		}
		if len(args) == rk.Arity {
			// relational.F keeps the slice, so detach it from the shared
			// recursion buffer.
			own := make([]value.V, len(args))
			copy(own, args)
			pool = append(pool, relational.F(rk.Pred, own...))
			return
		}
		for _, v := range vals {
			args = append(args, v)
			expand(rk)
			args = args[:len(args)-1]
		}
	}
	for _, rk := range d.RelKeys() {
		expand(rk)
	}
	return pool
}

func renderFact(f relational.Fact) string {
	if len(f.Args) == 0 {
		return f.Pred
	}
	parts := make([]string, len(f.Args))
	for i, v := range f.Args {
		parts[i] = parser.FormatValue(v)
	}
	return f.Pred + "(" + strings.Join(parts, ", ") + ")"
}

package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := f()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func fixtures(t *testing.T) (db, ic string) {
	t.Helper()
	dir := t.TempDir()
	db = filepath.Join(dir, "db.facts")
	ic = filepath.Join(dir, "rules.ic")
	if err := os.WriteFile(db, []byte(`r(a, b). r(a, c). s(e, f).`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ic, []byte(`
		r(X, Y), r(X, Z) -> Y = Z.
		s(U, V) -> r(V, W).
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	return db, ic
}

func TestNativeOutput(t *testing.T) {
	db, ic := fixtures(t)
	out, err := capture(t, func() error {
		return run([]string{"-db", db, "-ic", ic})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"variant=paper",
		"r_a(X,Y,fa) v r_a(X,Z,fa)",
		"not aux_",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDLVOutput(t *testing.T) {
	db, ic := fixtures(t)
	out, err := capture(t, func() error {
		return run([]string{"-db", db, "-ic", ic, "-format", "dlv", "-variant", "corrected"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "r_a(X,Y,fa) v r_a(X,Z,fa) :- ") {
		t.Errorf("DLV output unexpected:\n%s", out)
	}
}

func TestGroundOutput(t *testing.T) {
	db, ic := fixtures(t)
	out, err := capture(t, func() error {
		return run([]string{"-db", db, "-ic", ic, "-ground"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "% ground program:") || !strings.Contains(out, "HCF=true") {
		t.Errorf("ground stats missing:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	db, ic := fixtures(t)
	cases := [][]string{
		{"-db", db}, // missing -ic
		{"-db", db, "-ic", ic, "-variant", "bogus"}, // bad variant
		{"-db", db, "-ic", ic, "-format", "bogus"},  // bad format
		{"-db", "nope.facts", "-ic", ic},            // missing file
		{"-db", "p(X).", "-ic", ic},                 // parse error
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

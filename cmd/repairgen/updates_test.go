package main

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/relational"
)

// TestUpdatesScript pins the generator contract: exactly n lines of
// well-formed insert/delete commands (deletes of present facts, inserts of
// absent ones, tracked through the script), deterministic per seed.
func TestUpdatesScript(t *testing.T) {
	db, _ := fixtures(t)
	out, err := capture(t, func() error {
		return run([]string{"-db", db, "-updates", "40", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	again, err := capture(t, func() error {
		return run([]string{"-db", db, "-updates", "40", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Fatal("same seed produced different scripts")
	}
	other, err := capture(t, func() error {
		return run([]string{"-db", db, "-updates", "40", "-seed", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if out == other {
		t.Error("different seeds produced identical scripts")
	}

	have := map[string]bool{}
	base := parser.MustInstance(`r(a, b). r(a, c). s(e, f).`)
	base.ForEach(func(f relational.Fact) bool {
		have[f.Key()] = true
		return true
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "#") {
		t.Fatalf("missing header comment: %q", lines[0])
	}
	body := lines[1:]
	if len(body) != 40 {
		t.Fatalf("got %d update lines, want 40", len(body))
	}
	for _, line := range body {
		verb, rest, ok := strings.Cut(line, " ")
		if !ok || (verb != "insert" && verb != "delete") {
			t.Fatalf("malformed line %q", line)
		}
		inst, err := parser.Instance(rest)
		if err != nil {
			t.Fatalf("line %q does not parse as a fact: %v", line, err)
		}
		fs := inst.Facts()
		if len(fs) != 1 {
			t.Fatalf("line %q holds %d facts, want 1", line, len(fs))
		}
		f := fs[0]
		if verb == "delete" && !have[f.Key()] {
			t.Fatalf("delete of absent fact: %q", line)
		}
		if verb == "insert" && have[f.Key()] {
			t.Fatalf("insert of present fact: %q", line)
		}
		have[f.Key()] = verb == "insert"
	}
}

func TestUpdatesErrors(t *testing.T) {
	db, _ := fixtures(t)
	for _, args := range [][]string{
		{"-db", db, "-updates", "-1"}, // negative count
		{"-updates", "5"},             // missing -db
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

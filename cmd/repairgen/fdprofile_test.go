package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/parser"
)

// TestFDProfile pins the generator contract: the emitted files reparse, the
// constraints are within the direct engine's FD-only scope, the violation
// count is honored, and the output is deterministic per seed.
func TestFDProfile(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "w")
	out, err := capture(t, func() error {
		return run([]string{"-profile", "fd", "-rows", "40", "-violations", "3", "-classes", "3",
			"-nullrate", "0.2", "-seed", "11", "-o", prefix})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "40 facts") || !strings.Contains(out, "3 violated group(s)") {
		t.Errorf("summary line: %s", out)
	}

	facts, err := os.ReadFile(prefix + ".facts")
	if err != nil {
		t.Fatal(err)
	}
	d, err := parser.Instance(string(facts))
	if err != nil {
		t.Fatalf("emitted facts do not reparse: %v", err)
	}
	if d.Len() != 40 {
		t.Errorf("facts = %d, want 40", d.Len())
	}
	ic, err := os.ReadFile(prefix + ".ic")
	if err != nil {
		t.Fatal(err)
	}
	set, err := parser.Constraints(string(ic))
	if err != nil {
		t.Fatalf("emitted constraints do not reparse: %v", err)
	}
	if a := constraint.Analyze(set); !a.FDOnly {
		t.Errorf("emitted constraints are not FD-only: %s", a.Reason)
	}

	// Same seed, same bytes.
	prefix2 := filepath.Join(t.TempDir(), "w")
	if _, err := capture(t, func() error {
		return run([]string{"-profile", "fd", "-rows", "40", "-violations", "3", "-classes", "3",
			"-nullrate", "0.2", "-seed", "11", "-o", prefix2})
	}); err != nil {
		t.Fatal(err)
	}
	facts2, _ := os.ReadFile(prefix2 + ".facts")
	if string(facts) != string(facts2) {
		t.Errorf("generation is not deterministic per seed")
	}
}

func TestFDProfileStdoutAndErrors(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-profile", "fd", "-rows", "8", "-violrate", "0.5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	head, tail, found := strings.Cut(out, "# --- constraints ---\n")
	if !found {
		t.Fatalf("missing separator:\n%s", out)
	}
	if _, err := parser.Instance(head); err != nil {
		t.Errorf("stdout facts do not reparse: %v", err)
	}
	set, err := parser.Constraints(tail)
	if err != nil {
		t.Fatalf("stdout constraints do not reparse: %v", err)
	}
	if len(set.ICs) != 1 {
		t.Errorf("ICs = %d, want 1", len(set.ICs))
	}

	if _, err := capture(t, func() error {
		return run([]string{"-profile", "fd", "-violrate", "1.5"})
	}); err == nil || !strings.Contains(err.Error(), "-violrate") {
		t.Errorf("violrate out of range: err = %v", err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"-profile", "warp"})
	}); err == nil || !strings.Contains(err.Error(), "unknown -profile") {
		t.Errorf("unknown profile: err = %v", err)
	}
}

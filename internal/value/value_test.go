package value

import (
	"testing"
	"testing/quick"
)

func TestConstructorsAndKinds(t *testing.T) {
	tests := []struct {
		v    V
		kind Kind
		str  string
	}{
		{Null(), KindNull, "null"},
		{Int(0), KindInt, "0"},
		{Int(-7), KindInt, "-7"},
		{Int(42), KindInt, "42"},
		{Str(""), KindStr, ""},
		{Str("abc"), KindStr, "abc"},
		{Str("null-ish"), KindStr, "null-ish"},
	}
	for _, tt := range tests {
		if got := tt.v.Kind(); got != tt.kind {
			t.Errorf("Kind(%v) = %v, want %v", tt.v, got, tt.kind)
		}
		if got := tt.v.String(); got != tt.str {
			t.Errorf("String(%#v) = %q, want %q", tt.v, got, tt.str)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v V
	if !v.IsNull() {
		t.Fatal("zero V is not null")
	}
	if !v.Eq(Null()) {
		t.Fatal("zero V != Null()")
	}
}

func TestEqNullAsOrdinaryConstant(t *testing.T) {
	// Definition 4: over D^A, null is treated as any other constant,
	// so null = null holds (Example 12 relies on this).
	if !Null().Eq(Null()) {
		t.Error("null must equal null in ordinary-constant mode")
	}
	if Null().Eq(Int(1)) || Null().Eq(Str("null")) {
		t.Error("null must differ from non-null constants")
	}
	if Int(42).Eq(Str("42")) {
		t.Error("int 42 must differ from string \"42\"")
	}
	if !Int(42).Eq(Int(42)) || !Str("a").Eq(Str("a")) {
		t.Error("reflexive equality broken")
	}
}

func TestEq3SQLMode(t *testing.T) {
	tests := []struct {
		a, b V
		want Bool3
	}{
		{Null(), Null(), Unknown3},
		{Null(), Int(1), Unknown3},
		{Int(1), Null(), Unknown3},
		{Int(1), Int(1), True3},
		{Int(1), Int(2), False3},
		{Str("x"), Str("x"), True3},
		{Str("x"), Str("y"), False3},
	}
	for _, tt := range tests {
		if got := tt.a.Eq3(tt.b); got != tt.want {
			t.Errorf("Eq3(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestThreeValuedConnectives(t *testing.T) {
	vals := []Bool3{False3, Unknown3, True3}
	for _, a := range vals {
		for _, b := range vals {
			and, or := And3(a, b), Or3(a, b)
			if (a == False3 || b == False3) && and != False3 {
				t.Errorf("And3(%v,%v) = %v", a, b, and)
			}
			if a == True3 && b == True3 && and != True3 {
				t.Errorf("And3(%v,%v) = %v", a, b, and)
			}
			if (a == True3 || b == True3) && or != True3 {
				t.Errorf("Or3(%v,%v) = %v", a, b, or)
			}
			if a == False3 && b == False3 && or != False3 {
				t.Errorf("Or3(%v,%v) = %v", a, b, or)
			}
			// De Morgan in Kleene logic.
			if Not3(And3(a, b)) != Or3(Not3(a), Not3(b)) {
				t.Errorf("De Morgan fails for %v,%v", a, b)
			}
		}
	}
	if Not3(Unknown3) != Unknown3 {
		t.Error("Not3(unknown) != unknown")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	ordered := []V{Null(), Int(-5), Int(0), Int(10), Str(""), Str("a"), Str("b")}
	for i, a := range ordered {
		for j, b := range ordered {
			got := a.Compare(b)
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", a, b, got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v,%v) = %d, want >0", a, b, got)
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", a, b, got)
			}
		}
	}
}

func TestOrderComparability(t *testing.T) {
	if _, ok := Null().Order(Int(1)); ok {
		t.Error("null must not be order-comparable")
	}
	if _, ok := Int(1).Order(Str("a")); ok {
		t.Error("cross-kind values must not be order-comparable")
	}
	if cmp, ok := Int(1).Order(Int(2)); !ok || cmp >= 0 {
		t.Errorf("Order(1,2) = %d,%v", cmp, ok)
	}
	if cmp, ok := Str("b").Order(Str("a")); !ok || cmp <= 0 {
		t.Errorf("Order(b,a) = %d,%v", cmp, ok)
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		in   string
		want V
	}{
		{"null", Null()},
		{"42", Int(42)},
		{"-3", Int(-3)},
		{"abc", Str("abc")},
		{`"42"`, Str("42")},
		{`"null"`, Str("null")},
		{`"hello world"`, Str("hello world")},
		{"CS27", Str("CS27")},
	}
	for _, tt := range tests {
		if got := Parse(tt.in); !got.Eq(tt.want) || got.Kind() != tt.want.Kind() {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", tt.in, got, got.Kind(), tt.want, tt.want.Kind())
		}
	}
}

func TestKeyInjective(t *testing.T) {
	vals := []V{
		Null(), Int(0), Int(42), Int(-42), Str(""), Str("0"), Str("42"),
		Str("null"), Str("n"), Str("i42"), Str(`s"x"`), Str("x"),
	}
	seen := map[string]V{}
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("Key collision: %v and %v both map to %q", prev, v, k)
		}
		seen[k] = v
	}
}

// genValue deterministically derives a value from quick-generated inputs.
func genValue(sel uint8, i int64, s string) V {
	switch sel % 3 {
	case 0:
		return Null()
	case 1:
		return Int(i)
	default:
		return Str(s)
	}
}

func TestQuickEqIffKeyEqual(t *testing.T) {
	f := func(s1, s2 uint8, i1, i2 int64, a, b string) bool {
		v, w := genValue(s1, i1, a), genValue(s2, i2, b)
		return v.Eq(w) == (v.Key() == w.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareConsistentWithEq(t *testing.T) {
	f := func(s1, s2 uint8, i1, i2 int64, a, b string) bool {
		v, w := genValue(s1, i1, a), genValue(s2, i2, b)
		return (v.Compare(w) == 0) == v.Eq(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(s1, s2 uint8, i1, i2 int64, a, b string) bool {
		v, w := genValue(s1, i1, a), genValue(s2, i2, b)
		return v.Compare(w) == -w.Compare(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitive(t *testing.T) {
	f := func(s1, s2, s3 uint8, i1, i2, i3 int64, a, b, c string) bool {
		u, v, w := genValue(s1, i1, a), genValue(s2, i2, b), genValue(s3, i3, c)
		if u.Compare(v) <= 0 && v.Compare(w) <= 0 {
			return u.Compare(w) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickParseRoundTripInt(t *testing.T) {
	f := func(i int64) bool {
		return Parse(Int(i).String()).Eq(Int(i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package value

import "sync"

// This file implements the process-wide value interner backing the indexed
// storage engine in internal/relational. Every distinct constant of the
// domain U is assigned a dense uint32 id; the distinguished constant null is
// always id 0. Ids are stable for the lifetime of the process, so equality
// of constants (Eq, i.e. null treated as an ordinary constant) coincides
// with equality of ids, and tuple encodings built from ids are injective.
//
// The interner is deliberately global: instances, overlays and repair-search
// states all share one id space, which is what makes cross-instance
// operations (Diff, Equal, index lookups on overlay bases) comparisons of
// small integers instead of string rebuilds.

// NullID is the interned id of the null constant.
const NullID uint32 = 0

var interner = struct {
	mu   sync.RWMutex
	ids  map[V]uint32
	vals []V
}{
	ids:  map[V]uint32{{}: NullID},
	vals: []V{{}},
}

// ID returns the dense process-wide id of v, interning it on first use.
// Ids respect Eq: v.Eq(w) iff v.ID() == w.ID(). The null constant always
// has id NullID.
func (v V) ID() uint32 {
	interner.mu.RLock()
	id, ok := interner.ids[v]
	interner.mu.RUnlock()
	if ok {
		return id
	}
	interner.mu.Lock()
	defer interner.mu.Unlock()
	if id, ok := interner.ids[v]; ok {
		return id
	}
	id = uint32(len(interner.vals))
	interner.ids[v] = id
	interner.vals = append(interner.vals, v)
	return id
}

// FromID returns the constant interned under id, if any.
func FromID(id uint32) (V, bool) {
	interner.mu.RLock()
	defer interner.mu.RUnlock()
	if int(id) >= len(interner.vals) {
		return V{}, false
	}
	return interner.vals[id], true
}

// InternedCount reports how many distinct constants have been interned,
// including null.
func InternedCount() int {
	interner.mu.RLock()
	defer interner.mu.RUnlock()
	return len(interner.vals)
}

// Package value implements the constant domain U of the paper, including the
// distinguished constant null.
//
// Following Section 3 of Bravo & Bertossi (EDBT 2006), a single null constant
// is used for every interpretation (unknown, inapplicable, withheld). Two
// comparison modes are provided:
//
//   - "null as ordinary constant" (Eq, Compare): the mode used when checking
//     the transformed constraint ψ_N over the projected database D^A (Def. 4),
//     where null = null holds and the unique names assumption applies to null
//     like to any other constant.
//   - three-valued SQL mode (Eq3, Compare3): any comparison involving null is
//     Unknown. This mode backs the simple/partial/full-match comparison
//     semantics and the single-row check-constraint behaviour of commercial
//     DBMSs reproduced in internal/nullsem.
package value

import (
	"fmt"
	"strconv"
)

// Kind discriminates the representations a V can take.
type Kind uint8

// The kinds of database constants.
const (
	KindNull Kind = iota // the distinguished constant null
	KindInt              // 64-bit integer constant
	KindStr              // string constant
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindStr:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// V is a constant of the database domain U. The zero value is null.
type V struct {
	kind Kind
	i    int64
	s    string
}

// Null returns the distinguished constant null.
func Null() V { return V{} }

// Int returns an integer constant.
func Int(i int64) V { return V{kind: KindInt, i: i} }

// Str returns a string constant.
func Str(s string) V { return V{kind: KindStr, s: s} }

// Kind reports the kind of v.
func (v V) Kind() Kind { return v.kind }

// IsNull reports whether v is the null constant. This is the IsNull(·)
// predicate of Definition 4 and of NOT NULL-constraints (Definition 5).
func (v V) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It is only meaningful for KindInt.
func (v V) AsInt() (int64, bool) {
	if v.kind != KindInt {
		return 0, false
	}
	return v.i, true
}

// AsStr returns the string payload. It is only meaningful for KindStr.
func (v V) AsStr() (string, bool) {
	if v.kind != KindStr {
		return "", false
	}
	return v.s, true
}

// String renders the constant the way the paper writes it: null, 42, or the
// bare string.
func (v V) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	default:
		return v.s
	}
}

// AppendKey appends a compact, injective, self-delimiting binary encoding of
// v to b: one kind byte, then the payload (8 bytes little-endian for an
// integer; a 4-byte little-endian length plus the bytes for a string; nothing
// for null). The encoding depends only on the constant's content — not on any
// process-wide interning history — so keys built from it are identical across
// runs and across tenants without touching shared state.
func (v V) AppendKey(b []byte) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindInt:
		u := uint64(v.i)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	case KindStr:
		n := uint32(len(v.s))
		b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		b = append(b, v.s...)
	}
	return b
}

// KeyLen returns len(AppendKey(nil, v)) without building the encoding, for
// exact preallocation.
func (v V) KeyLen() int {
	switch v.kind {
	case KindInt:
		return 9
	case KindStr:
		return 5 + len(v.s)
	default:
		return 1
	}
}

// Hash continues an FNV-1a hash over v's content (kind byte plus payload).
// Equal constants hash equally; the hash never consults shared state.
func (v V) Hash(h uint64) uint64 {
	const prime = 1099511628211
	h ^= uint64(v.kind)
	h *= prime
	switch v.kind {
	case KindInt:
		u := uint64(v.i)
		for s := 0; s < 64; s += 8 {
			h ^= (u >> s) & 0xff
			h *= prime
		}
	case KindStr:
		for i := 0; i < len(v.s); i++ {
			h ^= uint64(v.s[i])
			h *= prime
		}
	}
	return h
}

// Key returns an injective encoding of v, suitable for use in map keys. It is
// unambiguous across kinds (a string "42" and the integer 42 differ).
func (v V) Key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	default:
		return "s" + strconv.Quote(v.s)
	}
}

// Eq reports v = w with null treated as an ordinary constant, so
// Eq(Null(), Null()) is true. This is the equality used for classical
// satisfaction of ψ_N per Definition 4.
func (v V) Eq(w V) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindInt:
		return v.i == w.i
	default:
		return v.s == w.s
	}
}

// Compare totally orders constants with null treated as an ordinary constant:
// null < every integer < every string; integers order numerically and strings
// lexicographically. The total order across kinds exists only to make results
// deterministic; constraints that compare values of different kinds are
// simply false under Less-style builtins (see Order).
func (v V) Compare(w V) int {
	if v.kind != w.kind {
		switch {
		case v.kind < w.kind:
			return -1
		default:
			return 1
		}
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		default:
			return 0
		}
	default:
		switch {
		case v.s < w.s:
			return -1
		case v.s > w.s:
			return 1
		default:
			return 0
		}
	}
}

// Bool3 is a three-valued logic value (true / false / unknown), used for the
// SQL-style comparison mode.
type Bool3 uint8

// Three-valued truth constants.
const (
	False3 Bool3 = iota
	Unknown3
	True3
)

func (b Bool3) String() string {
	switch b {
	case True3:
		return "true"
	case False3:
		return "false"
	default:
		return "unknown"
	}
}

// And3 is three-valued conjunction.
func And3(a, b Bool3) Bool3 {
	if a == False3 || b == False3 {
		return False3
	}
	if a == Unknown3 || b == Unknown3 {
		return Unknown3
	}
	return True3
}

// Or3 is three-valued disjunction.
func Or3(a, b Bool3) Bool3 {
	if a == True3 || b == True3 {
		return True3
	}
	if a == Unknown3 || b == Unknown3 {
		return Unknown3
	}
	return False3
}

// Not3 is three-valued negation.
func Not3(a Bool3) Bool3 {
	switch a {
	case True3:
		return False3
	case False3:
		return True3
	default:
		return Unknown3
	}
}

// Eq3 reports v = w in three-valued SQL logic: Unknown if either side is
// null, otherwise a definite verdict.
func (v V) Eq3(w V) Bool3 {
	if v.IsNull() || w.IsNull() {
		return Unknown3
	}
	if v.Eq(w) {
		return True3
	}
	return False3
}

// Order reports whether v and w are order-comparable (same non-null kind) and
// the comparison result. Order comparisons across kinds, or involving null,
// report ok = false; builtin predicates treat that as false (two-valued mode)
// or unknown (three-valued mode).
func (v V) Order(w V) (cmp int, ok bool) {
	if v.kind != w.kind || v.kind == KindNull {
		return 0, false
	}
	return v.Compare(w), true
}

// Parse interprets a bare token as a constant: "null" is the null constant,
// a valid integer literal is an integer, anything else (including quoted
// strings, with the quotes stripped) is a string constant.
func Parse(tok string) V {
	if tok == "null" {
		return Null()
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return Int(i)
	}
	if len(tok) >= 2 && tok[0] == '"' && tok[len(tok)-1] == '"' {
		if s, err := strconv.Unquote(tok); err == nil {
			return Str(s)
		}
	}
	return Str(tok)
}

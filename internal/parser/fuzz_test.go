package parser_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/parser"
)

// FuzzParser throws arbitrary source at all three entry points. The
// contract under attack: no panics, and every syntax-level failure is a
// *ParseError whose position is in-bounds (1-based line within the input,
// plus one for errors at EOF). Semantic validation after a successful
// parse (constraint.NewSet, query safety) may fail with other error types.
func FuzzParser(f *testing.F) {
	f.Add("r(a, b).\nr(a, null).\n")
	f.Add("r(X, Y), r(X, Z) -> Y = Z.")
	f.Add("s(U, V) -> r(V, W).\nr(X, Y), isnull(X) -> false.")
	f.Add(`q(V) :- s(U, V), not r(V, V), U >= 3.`)
	f.Add("q(X) :- r(X).\nq(X) :- s(X, Y).")
	f.Add(`p("quoted string", -42, null).`)
	f.Add("r(X Y) -> false")
	f.Add("q( :- ")
	f.Add("\x00\xff(")

	f.Fuzz(func(t *testing.T, src string) {
		lines := strings.Count(src, "\n") + 1
		checkPos := func(what string, err error) {
			var pe *parser.ParseError
			if !errors.As(err, &pe) {
				return // semantic validation error, allowed
			}
			if pe.Line < 1 || pe.Line > lines+1 {
				t.Errorf("%s: line %d out of bounds [1, %d] for input %q", what, pe.Line, lines+1, src)
			}
			if pe.Col < 1 {
				t.Errorf("%s: column %d < 1 for input %q", what, pe.Col, src)
			}
		}
		if _, err := parser.Instance(src); err != nil {
			checkPos("Instance", err)
		}
		if _, err := parser.Constraints(src); err != nil {
			checkPos("Constraints", err)
		}
		if _, err := parser.Query(src); err != nil {
			checkPos("Query", err)
		}
	})
}

package parser

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/nullsem"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/value"
)

func TestParseInstance(t *testing.T) {
	d, err := Instance(`
		% Example 14
		course(21, c15).
		course(34, c18).
		student(21, "Ann").
		student(45, "Paul").
		flag.
		withnull(null, 7).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 6 {
		t.Fatalf("facts = %d: %v", d.Len(), d)
	}
	if !d.Has(relational.F("student", value.Int(21), value.Str("Ann"))) {
		t.Error("missing student(21,Ann)")
	}
	if !d.Has(relational.F("withnull", value.Null(), value.Int(7))) {
		t.Error("missing withnull(null,7)")
	}
	if !d.Has(relational.F("flag")) {
		t.Error("missing 0-ary fact")
	}
}

func TestParseInstanceErrors(t *testing.T) {
	cases := []string{
		"course(X, c15).",   // variable in a fact
		"course(21, c15)",   // missing dot
		`course(21, "a.`,    // unterminated string
		"course(21,, c15).", // double comma
	}
	for _, src := range cases {
		if _, err := Instance(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name      string
		parse     func(string) error
		src       string
		line, col int
	}{
		{"bad char", instErr, "p(1).\n  p(2) ; q(3).", 2, 8},
		{"non-ground fact", instErr, "p(1).\np(X).", 2, 1},
		{"missing dot", instErr, "p(1)\nq(2).", 2, 1},
		{"bad head var", queryErr, "q(X) :- p(X).\nq(21) :- p(21).", 2, 1},
		{"bad operator", constrErr, "p(X) -> X ~ 2.", 1, 11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.parse(tc.src)
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v (%T) is not a *ParseError", err, err)
			}
			if pe.Line != tc.line || pe.Col != tc.col {
				t.Errorf("position = %d:%d, want %d:%d (%v)", pe.Line, pe.Col, tc.line, tc.col, err)
			}
			if !strings.HasPrefix(err.Error(), "line ") {
				t.Errorf("message %q lacks position prefix", err.Error())
			}
		})
	}
}

func instErr(src string) error   { _, err := Instance(src); return err }
func constrErr(src string) error { _, err := Constraints(src); return err }
func queryErr(src string) error  { _, err := Query(src); return err }

func TestParseRIC(t *testing.T) {
	set, err := Constraints(`course(Id, Code) -> student(Id, Name).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.ICs) != 1 || len(set.NNCs) != 0 {
		t.Fatalf("set = %+v", set)
	}
	ic := set.ICs[0]
	if ic.Classify() != constraint.ClassRIC {
		t.Errorf("class = %v", ic.Classify())
	}
	if got := ic.String(); got != "course(Id,Code) -> exists Name: student(Id,Name)" {
		t.Errorf("String = %q", got)
	}
}

func TestParseUICWithDisjunctionAndPhi(t *testing.T) {
	set, err := Constraints(`p(X, Y), r(Y, Z, W) -> s(X) | Z != 2 | W <= Y.`)
	if err != nil {
		t.Fatal(err)
	}
	ic := set.ICs[0]
	if ic.Classify() != constraint.ClassUIC {
		t.Errorf("class = %v", ic.Classify())
	}
	if len(ic.Head) != 1 || len(ic.Phi) != 2 {
		t.Fatalf("head/phi = %d/%d", len(ic.Head), len(ic.Phi))
	}
}

func TestParseCheckAndFD(t *testing.T) {
	set, err := Constraints(`
		emp(Id, Nm, Sal) -> Sal > 100.
		r(X, Y), r(X, Z) -> Y = Z.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.ICs) != 2 {
		t.Fatalf("ICs = %d", len(set.ICs))
	}
	if !set.ICs[0].IsCheck() || !set.ICs[1].IsCheck() {
		t.Error("check constraints misparsed")
	}
}

func TestParseCheckWithOffset(t *testing.T) {
	// Example 8: u > w + 15.
	set, err := Constraints(`person(X,Y,Z,W), person(Z,S,T,U) -> U > W + 15.`)
	if err != nil {
		t.Fatal(err)
	}
	phi := set.ICs[0].Phi
	if len(phi) != 1 || phi[0].Offset != 15 {
		t.Fatalf("phi = %v", phi)
	}
}

func TestParseDenial(t *testing.T) {
	set, err := Constraints(`p(X), q(X) -> false.`)
	if err != nil {
		t.Fatal(err)
	}
	if !set.ICs[0].IsDenial() {
		t.Error("denial misparsed")
	}
}

func TestParseNNC(t *testing.T) {
	set, err := Constraints(`r(X, Y), isnull(X) -> false.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.NNCs) != 1 || len(set.ICs) != 0 {
		t.Fatalf("set = %+v", set)
	}
	nnc := set.NNCs[0]
	if nnc.Pred != "r" || nnc.Arity != 2 || nnc.Pos != 0 {
		t.Errorf("NNC = %+v", nnc)
	}
	// Two isnull atoms produce two NNCs.
	set2, err := Constraints(`r(X, Y), isnull(X), isnull(Y) -> false.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set2.NNCs) != 2 {
		t.Errorf("NNCs = %d", len(set2.NNCs))
	}
}

func TestParseNNCErrors(t *testing.T) {
	cases := []string{
		`r(X), isnull(X) -> s(X).`,        // isnull must conclude false
		`r(X), s(Y), isnull(X) -> false.`, // one predicate atom only
		`r(X), isnull(W) -> false.`,       // variable not in the atom
		`r(X), isnull(a) -> false.`,       // isnull takes a variable
	}
	for _, src := range cases {
		if _, err := Constraints(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseStandardizesSharedExistentials(t *testing.T) {
	// Example 1(c): shared existential variables get renamed apart.
	set, err := Constraints(`s(X) -> r(X, Y) | r3(X, Y, Z).`)
	if err != nil {
		t.Fatal(err)
	}
	ic := set.ICs[0]
	if err := ic.Validate(); err != nil {
		t.Errorf("standardization failed: %v", err)
	}
}

func TestParsedConstraintsEvaluate(t *testing.T) {
	// End-to-end: Example 5 in parser syntax.
	d := MustInstance(`
		course(cs27, 21, w04).
		course(cs18, 34, null).
		course(cs50, null, w05).
		exp(21, cs27, 3).
		exp(34, cs18, null).
		exp(45, cs32, 2).
	`)
	set := MustConstraints(`
		course(Code, Id, Term) -> exp(Id, Code, Times).
		exp(I, C, T1), exp(I, C, T2) -> T1 = T2.
		exp(I, C, T), isnull(I) -> false.
		exp(I, C, T), isnull(C) -> false.
	`)
	if !nullsem.Satisfies(d, set, nullsem.NullAware) {
		t.Errorf("Example 5 must be consistent:\n%s", nullsem.Check(d, set, nullsem.NullAware))
	}
	d.Insert(relational.F("course", value.Str("cs41"), value.Int(18), value.Null()))
	if nullsem.Satisfies(d, set, nullsem.NullAware) {
		t.Error("inserting course(cs41,18,null) must break consistency")
	}
}

func TestParseQuery(t *testing.T) {
	q, err := Query(`
		q(Id) :- course(Id, Code), not dropped(Id), Id < 100.
		q(Id) :- star(Id).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "q" || len(q.Head) != 1 || len(q.Disjuncts) != 2 {
		t.Fatalf("query = %+v", q)
	}
	if len(q.Disjuncts[0].Lits) != 2 || !q.Disjuncts[0].Lits[1].Neg {
		t.Errorf("disjunct 0 = %+v", q.Disjuncts[0])
	}
	if len(q.Disjuncts[0].Builtins) != 1 {
		t.Errorf("builtins = %v", q.Disjuncts[0].Builtins)
	}
}

func TestParseQueryEvaluates(t *testing.T) {
	d := MustInstance(`
		course(21, c15).
		course(34, c18).
	`)
	q := MustQuery(`q(X) :- course(X, c15).`)
	got, err := query.Eval(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(relational.Tuple{value.Int(21)}) {
		t.Errorf("answers = %v", got)
	}
}

func TestParseQueryErrors(t *testing.T) {
	cases := []string{
		``,                            // empty
		`q(X) :- p(X). r(X) :- p(X).`, // mismatched heads
		`q(a) :- p(X).`,               // constant in head
		`q(X) :- not p(X).`,           // unsafe
		`q(X) :- p(X)`,                // missing dot
	}
	for _, src := range cases {
		if _, err := Query(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    value.V
		want string
	}{
		{value.Null(), "null"},
		{value.Int(42), "42"},
		{value.Int(-3), "-3"},
		{value.Str("abc"), "abc"},
		{value.Str("Ann"), `"Ann"`},
		{value.Str("a b"), `"a b"`},
		{value.Str(""), `""`},
	}
	for _, c := range cases {
		if got := FormatValue(c.v); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	// Round trip: parse what we format.
	for _, c := range cases {
		d, err := Instance("p(" + FormatValue(c.v) + ").")
		if err != nil {
			t.Errorf("round trip %q: %v", c.want, err)
			continue
		}
		if !d.Has(relational.F("p", c.v)) {
			t.Errorf("round trip %q lost the value", c.want)
		}
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	d, err := Instance(`p(-5).`)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Has(relational.F("p", value.Int(-5))) {
		t.Errorf("instance = %v", d)
	}
	set, err := Constraints(`p(X) -> X > -10.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.ICs[0].Phi) != 1 {
		t.Fatalf("phi = %v", set.ICs[0].Phi)
	}
	if !nullsem.Satisfies(d, set, nullsem.NullAware) {
		t.Error("-5 > -10 must hold")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	d, err := Instance(strings.Join([]string{
		"% comment",
		"# another",
		"  p(a).  % trailing",
		"",
		"q(b).",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Errorf("facts = %d", d.Len())
	}
}

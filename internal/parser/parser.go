// Package parser provides a small text syntax for the library's three
// languages — database instances, integrity constraints, and queries — used
// by the command-line tools and the examples.
//
// Conventions (Prolog-style): identifiers starting with an upper-case
// letter or underscore are variables; lower-case identifiers, numbers and
// double-quoted strings are constants; the keyword null is the null
// constant. Lines starting with % or # are comments.
//
// Instances:
//
//	course(21, c15).
//	student(21, "Ann").
//
// Constraints (one per line, terminated by '.'): the antecedent is a
// comma-separated list of atoms, optionally with isnull(V) atoms; the
// consequent is 'false', or a '|'-separated disjunction of atoms and
// comparisons. Variables in the consequent that do not occur in the
// antecedent are existentially quantified.
//
//	course(Id, Code) -> student(Id, Name).         % referential IC
//	emp(Id, Nm, Sal) -> Sal > 100.                 % check constraint
//	r(X, Y), r(X, Z) -> Y = Z.                     % functional dependency
//	r(X, Y), isnull(X) -> false.                   % NOT NULL-constraint
//	p(X), q(X) -> false.                           % denial constraint
//
// Queries (datalog-style; several rules with the same head form a union):
//
//	q(X) :- course(X, Code), not student(X, Code).
//	q(X) :- course(X, c15).
package parser

import (
	"fmt"
	"strings"

	"repro/internal/constraint"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

// ParseError reports a syntax error together with its position in the source
// text. Line and Col are 1-based; Col counts bytes from the start of the
// line. All parse failures returned by Instance, Constraints and Query are
// *ParseError values (retrievable with errors.As), except semantic
// validation errors raised after parsing completes.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// --- lexer -------------------------------------------------------------------

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVar
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokArrow // ->
	tokGets  // :-
	tokPipe  // |
	tokOp    // = != < <= > >=
	tokPlus  // +
	tokMinus // -
)

type token struct {
	kind tokenKind
	text string
	pos  int
	line int
	col  int // 1-based byte column of the token start
}

type lexer struct {
	src       string
	pos       int
	line      int
	lineStart int // byte offset where the current line begins
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) col(pos int) int { return pos - lx.lineStart + 1 }

func (lx *lexer) errf(format string, args ...interface{}) error {
	return &ParseError{Line: lx.line, Col: lx.col(lx.pos), Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
			lx.lineStart = lx.pos
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '%' || c == '#':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			return lx.scan()
		}
	}
	return token{kind: tokEOF, pos: lx.pos, line: lx.line, col: lx.col(lx.pos)}, nil
}

func (lx *lexer) scan() (token, error) {
	start := lx.pos
	c := lx.src[lx.pos]
	mk := func(kind tokenKind) (token, error) {
		return token{kind: kind, text: lx.src[start:lx.pos], pos: start, line: lx.line, col: lx.col(start)}, nil
	}
	switch {
	case c == '(':
		lx.pos++
		return mk(tokLParen)
	case c == ')':
		lx.pos++
		return mk(tokRParen)
	case c == ',':
		lx.pos++
		return mk(tokComma)
	case c == '.':
		lx.pos++
		return mk(tokDot)
	case c == '|':
		lx.pos++
		return mk(tokPipe)
	case c == '+':
		lx.pos++
		return mk(tokPlus)
	case c == '-':
		if strings.HasPrefix(lx.src[lx.pos:], "->") {
			lx.pos += 2
			return mk(tokArrow)
		}
		lx.pos++
		return mk(tokMinus)
	case c == ':':
		if strings.HasPrefix(lx.src[lx.pos:], ":-") {
			lx.pos += 2
			return mk(tokGets)
		}
		return token{}, lx.errf("unexpected ':'")
	case c == '=', c == '<', c == '>':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
		}
		return mk(tokOp)
	case c == '!':
		if strings.HasPrefix(lx.src[lx.pos:], "!=") {
			lx.pos += 2
			return mk(tokOp)
		}
		return token{}, lx.errf("unexpected '!'")
	case c == '"':
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
			if lx.src[lx.pos] == '\n' {
				return token{}, lx.errf("unterminated string")
			}
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return token{}, lx.errf("unterminated string")
		}
		lx.pos++
		return mk(tokString)
	case c >= '0' && c <= '9':
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
		}
		return mk(tokNumber)
	case isIdentStart(c):
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		if text[0] >= 'A' && text[0] <= 'Z' || text[0] == '_' {
			return token{kind: tokVar, text: text, pos: start, line: lx.line, col: lx.col(start)}, nil
		}
		return mk(tokIdent)
	default:
		return token{}, lx.errf("unexpected character %q", string(c))
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

// --- parser core ---------------------------------------------------------------

type parser struct {
	lx  *lexer
	tok token
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: newLexer(src)}
	return p, p.advance()
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// errAt positions an error at a previously captured token (used when the
// offending construct was already consumed).
func (p *parser) errAt(t token, format string, args ...interface{}) error {
	return &ParseError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) errf(format string, args ...interface{}) error {
	return p.errAt(p.tok, format, args...)
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errf("expected %s, found %q", what, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

// parseTerm parses a variable or constant.
func (p *parser) parseTerm() (term.T, error) {
	switch p.tok.kind {
	case tokVar:
		t := term.V(p.tok.text)
		return t, p.advance()
	case tokIdent:
		if p.tok.text == "null" {
			return term.CNull(), p.advance()
		}
		t := term.CStr(p.tok.text)
		return t, p.advance()
	case tokString:
		t := term.CStr(strings.Trim(p.tok.text, `"`))
		return t, p.advance()
	case tokNumber:
		return p.parseNumber(1)
	case tokMinus:
		if err := p.advance(); err != nil {
			return term.T{}, err
		}
		return p.parseNumber(-1)
	default:
		return term.T{}, p.errf("expected a term, found %q", p.tok.text)
	}
}

func (p *parser) parseNumber(sign int64) (term.T, error) {
	if p.tok.kind != tokNumber {
		return term.T{}, p.errf("expected a number, found %q", p.tok.text)
	}
	var n int64
	for _, c := range p.tok.text {
		n = n*10 + int64(c-'0')
	}
	return term.CInt(sign * n), p.advance()
}

// parseAtom parses pred(t1, ..., tn); 0-ary atoms are written pred or
// pred().
func (p *parser) parseAtom() (term.Atom, error) {
	name, err := p.expect(tokIdent, "a predicate name")
	if err != nil {
		return term.Atom{}, err
	}
	a := term.Atom{Pred: name.text}
	if p.tok.kind != tokLParen {
		return a, nil
	}
	if err := p.advance(); err != nil {
		return term.Atom{}, err
	}
	if p.tok.kind == tokRParen {
		return a, p.advance()
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return term.Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return term.Atom{}, err
			}
			continue
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return term.Atom{}, err
		}
		return a, nil
	}
}

var ops = map[string]term.CompOp{
	"=": term.EQ, "==": term.EQ, "!=": term.NEQ,
	"<": term.LT, "<=": term.LEQ, ">": term.GT, ">=": term.GEQ,
}

// parseBuiltin parses l op r [± offset] with l already consumed.
func (p *parser) parseBuiltinAfter(l term.T) (term.Builtin, error) {
	opTok, err := p.expect(tokOp, "a comparison operator")
	if err != nil {
		return term.Builtin{}, err
	}
	op, ok := ops[opTok.text]
	if !ok {
		return term.Builtin{}, p.errf("unknown operator %q", opTok.text)
	}
	r, err := p.parseTerm()
	if err != nil {
		return term.Builtin{}, err
	}
	b := term.Builtin{Op: op, L: l, R: r}
	if p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		sign := int64(1)
		if p.tok.kind == tokMinus {
			sign = -1
		}
		if err := p.advance(); err != nil {
			return term.Builtin{}, err
		}
		off, err := p.parseNumber(sign)
		if err != nil {
			return term.Builtin{}, err
		}
		b.Offset, _ = off.Const.AsInt()
	}
	return b, nil
}

// --- instances -------------------------------------------------------------------

// Instance parses a database instance: ground facts, one per '.'.
func Instance(src string) (*relational.Instance, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	d := relational.NewInstance()
	for p.tok.kind != tokEOF {
		at := p.tok
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		if !a.IsGround() {
			return nil, p.errAt(at, "fact %s is not ground (variables start upper-case)", a)
		}
		args := make(relational.Tuple, len(a.Args))
		for i, t := range a.Args {
			args[i] = t.Const
		}
		d.Insert(relational.Fact{Pred: a.Pred, Args: args})
		if _, err := p.expect(tokDot, "'.'"); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// --- constraints -------------------------------------------------------------------

// Constraints parses a constraint set: ICs and NNCs, one per '.'.
func Constraints(src string) (*constraint.Set, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var ics []*constraint.IC
	var nncs []*constraint.NNC
	for p.tok.kind != tokEOF {
		parsedICs, parsedNNCs, err := p.parseConstraint()
		if err != nil {
			return nil, err
		}
		ics = append(ics, parsedICs...)
		nncs = append(nncs, parsedNNCs...)
		if _, err := p.expect(tokDot, "'.'"); err != nil {
			return nil, err
		}
	}
	return constraint.NewSet(ics, nncs)
}

func (p *parser) parseConstraint() ([]*constraint.IC, []*constraint.NNC, error) {
	var body []term.Atom
	var isnullVars []string
	for {
		a, err := p.parseAtom()
		if err != nil {
			return nil, nil, err
		}
		if a.Pred == "isnull" {
			if len(a.Args) != 1 || !a.Args[0].IsVar() {
				return nil, nil, p.errf("isnull takes a single variable")
			}
			isnullVars = append(isnullVars, a.Args[0].Var)
		} else {
			body = append(body, a)
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokArrow, "'->'"); err != nil {
		return nil, nil, err
	}

	// NNC form: single body atom, isnull vars, consequent false.
	if len(isnullVars) > 0 {
		if p.tok.kind != tokIdent || p.tok.text != "false" {
			return nil, nil, p.errf("a constraint with isnull must conclude false")
		}
		if err := p.advance(); err != nil {
			return nil, nil, err
		}
		if len(body) != 1 {
			return nil, nil, p.errf("a NOT NULL-constraint has exactly one predicate atom")
		}
		var nncs []*constraint.NNC
		for _, v := range isnullVars {
			pos := -1
			for i, t := range body[0].Args {
				if t.IsVar() && t.Var == v {
					pos = i
					break
				}
			}
			if pos < 0 {
				return nil, nil, p.errf("isnull variable %s does not occur in %s", v, body[0])
			}
			nncs = append(nncs, &constraint.NNC{
				Pred:  body[0].Pred,
				Arity: body[0].Arity(),
				Pos:   pos,
			})
		}
		return nil, nncs, nil
	}

	ic := &constraint.IC{Body: body}
	if p.tok.kind == tokIdent && p.tok.text == "false" {
		// Denial constraint.
		return []*constraint.IC{ic}, nil, p.advance()
	}
	for {
		// A disjunct is an atom or a comparison; a comparison starts
		// with a term that is not a predicate application.
		if p.tok.kind == tokIdent && p.tok.text != "null" {
			a, err := p.parseAtom()
			if err != nil {
				return nil, nil, err
			}
			if len(a.Args) == 0 && p.tok.kind == tokOp {
				// Bare identifier: constant on the left of a
				// comparison.
				b, err := p.parseBuiltinAfter(term.CStr(a.Pred))
				if err != nil {
					return nil, nil, err
				}
				ic.Phi = append(ic.Phi, b)
			} else {
				ic.Head = append(ic.Head, a)
			}
		} else {
			l, err := p.parseTerm()
			if err != nil {
				return nil, nil, err
			}
			b, err := p.parseBuiltinAfter(l)
			if err != nil {
				return nil, nil, err
			}
			ic.Phi = append(ic.Phi, b)
		}
		if p.tok.kind == tokPipe {
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
			continue
		}
		break
	}
	ic.Standardize()
	return []*constraint.IC{ic}, nil, nil
}

// --- queries -------------------------------------------------------------------

// Query parses a datalog-style query: one or more rules sharing a head
// predicate, whose union is the query.
func Query(src string) (*query.Q, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var q *query.Q
	for p.tok.kind != tokEOF {
		at := p.tok
		head, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		var headVars []string
		for _, t := range head.Args {
			if !t.IsVar() {
				return nil, p.errAt(at, "query head arguments must be variables, got %s", t)
			}
			headVars = append(headVars, t.Var)
		}
		if q == nil {
			q = &query.Q{Name: head.Pred, Head: headVars}
		} else if head.Pred != q.Name || len(headVars) != len(q.Head) {
			return nil, p.errAt(at, "all query rules must share the head %s/%d", q.Name, len(q.Head))
		}
		var conj query.Conj
		if p.tok.kind == tokGets {
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				neg := false
				if p.tok.kind == tokIdent && p.tok.text == "not" {
					if err := p.advance(); err != nil {
						return nil, err
					}
					neg = true
				}
				if p.tok.kind == tokIdent && !neg {
					a, err := p.parseAtom()
					if err != nil {
						return nil, err
					}
					if p.tok.kind == tokOp {
						if len(a.Args) != 0 {
							return nil, p.errf("unexpected comparison after atom %s", a)
						}
						b, err := p.parseBuiltinAfter(term.CStr(a.Pred))
						if err != nil {
							return nil, err
						}
						conj.Builtins = append(conj.Builtins, b)
					} else {
						conj.Lits = append(conj.Lits, query.Literal{Atom: a})
					}
				} else if neg {
					a, err := p.parseAtom()
					if err != nil {
						return nil, err
					}
					conj.Lits = append(conj.Lits, query.Literal{Atom: a, Neg: true})
				} else {
					l, err := p.parseTerm()
					if err != nil {
						return nil, err
					}
					b, err := p.parseBuiltinAfter(l)
					if err != nil {
						return nil, err
					}
					conj.Builtins = append(conj.Builtins, b)
				}
				if p.tok.kind == tokComma {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
		}
		// Rules with head variables rewritten: if the head used the
		// same variable twice or a rule binds head vars only in the
		// head, Validate will object later.
		q.Disjuncts = append(q.Disjuncts, conj)
		if _, err := p.expect(tokDot, "'.'"); err != nil {
			return nil, err
		}
	}
	if q == nil {
		return nil, p.errf("empty query")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustInstance is Instance, panicking on error (for tests and examples).
func MustInstance(src string) *relational.Instance {
	d, err := Instance(src)
	if err != nil {
		panic(err)
	}
	return d
}

// MustConstraints is Constraints, panicking on error.
func MustConstraints(src string) *constraint.Set {
	s, err := Constraints(src)
	if err != nil {
		panic(err)
	}
	return s
}

// MustQuery is Query, panicking on error.
func MustQuery(src string) *query.Q {
	q, err := Query(src)
	if err != nil {
		panic(err)
	}
	return q
}

// FormatValue renders a value in parser-compatible syntax.
func FormatValue(v value.V) string {
	if v.IsNull() {
		return "null"
	}
	if i, ok := v.AsInt(); ok {
		return fmt.Sprint(i)
	}
	s, _ := v.AsStr()
	for i := 0; i < len(s); i++ {
		if !isIdentPart(s[i]) {
			return `"` + s + `"`
		}
	}
	if s == "" || !(s[0] >= 'a' && s[0] <= 'z') {
		return `"` + s + `"`
	}
	return s
}

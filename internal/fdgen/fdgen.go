// Package fdgen generates deterministic FD-only workloads: instances whose
// relations each carry one functional dependency, with an exact number of
// conflicted key groups, a tunable class count per conflict, and optional
// null-exempt rows. The same generator feeds `repairgen -profile=fd`, the
// direct-engine differential suites, and the scaling benchmarks, so fixture
// shapes are identical everywhere.
package fdgen

import (
	"fmt"
	"math/rand"

	"repro/internal/constraint"
	"repro/internal/relational"
	"repro/internal/value"
)

// Config describes one workload. The zero value is normalized to a single
// 3-ary relation (key, dependent, unique row id) with two rows per key
// group and no violations.
type Config struct {
	// Relations is the number of FD-constrained relations r0, r1, ...
	// (default 1).
	Relations int
	// Rows is the number of rows per constrained relation (default 16).
	Rows int
	// KeyWidth is the number of key (FD left-hand-side) positions
	// (default 1).
	KeyWidth int
	// GroupSize is the number of rows sharing one key (default 2).
	GroupSize int
	// Violations is the exact number of conflicted key groups per relation
	// (clamped to the group count). Each conflicted group's rows spread
	// over Classes distinct dependent values.
	Violations int
	// Classes is the number of distinct dependent values per conflicted
	// group (default 2, clamped to GroupSize).
	Classes int
	// NullRate is the probability that a clean-group row is made exempt by
	// nulling its dependent or one key position. Conflicted groups are
	// never nulled, so Violations stays exact.
	NullRate float64
	// Unconstrained is the number of rows of an extra unconstrained binary
	// relation s (default 0): s(k, v) with k drawn from r0's key domain,
	// giving joins and negation targets across the constraint boundary.
	Unconstrained int
	// Seed drives the deterministic rand stream.
	Seed int64
}

// Normalized fills in the documented defaults and clamps, returning the
// exact configuration Generate will use.
func (c Config) Normalized() Config {
	if c.Relations <= 0 {
		c.Relations = 1
	}
	if c.Rows <= 0 {
		c.Rows = 16
	}
	if c.KeyWidth <= 0 {
		c.KeyWidth = 1
	}
	if c.GroupSize <= 0 {
		c.GroupSize = 2
	}
	if c.Classes <= 1 {
		c.Classes = 2
	}
	if c.Classes > c.GroupSize {
		c.Classes = c.GroupSize
	}
	groups := c.Rows / c.GroupSize
	if groups < 1 {
		groups = 1
	}
	if c.Violations > groups {
		c.Violations = groups
	}
	if c.Violations < 0 {
		c.Violations = 0
	}
	return c
}

// Arity returns the row width of the constrained relations under cfg:
// KeyWidth key positions, one dependent, one unique row id.
func (c Config) Arity() int { return c.Normalized().KeyWidth + 2 }

// DepPos returns the dependent position index.
func (c Config) DepPos() int { return c.Normalized().KeyWidth }

// RelName returns the name of constrained relation i.
func RelName(i int) string { return fmt.Sprintf("r%d", i) }

// UnconstrainedName is the name of the extra unconstrained relation.
const UnconstrainedName = "s"

// Generate builds the instance and its FD-only constraint set. The
// instance layout per constrained relation: groups of GroupSize rows
// sharing a key; the first Violations groups spread their dependent values
// over Classes classes (round-robin, so every class is non-empty); the
// remaining groups agree on one dependent value, except rows nulled per
// NullRate. The last position carries a unique row id, so set semantics
// never collapses rows.
func Generate(cfg Config) (*relational.Instance, *constraint.Set) {
	cfg = cfg.Normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := relational.NewInstance()
	groups := cfg.Rows / cfg.GroupSize
	if groups < 1 {
		groups = 1
	}
	var ics []*constraint.IC
	keyPos := make([]int, cfg.KeyWidth)
	for i := range keyPos {
		keyPos[i] = i
	}
	dep := cfg.KeyWidth
	uniq := cfg.KeyWidth + 1
	for ri := 0; ri < cfg.Relations; ri++ {
		name := RelName(ri)
		ics = append(ics, constraint.FD(name, cfg.Arity(), keyPos, []int{dep})...)
		for row := 0; row < cfg.Rows; row++ {
			g := row / cfg.GroupSize
			if g >= groups {
				g = groups - 1
			}
			args := make(relational.Tuple, cfg.Arity())
			for k := 0; k < cfg.KeyWidth; k++ {
				args[k] = value.Str(fmt.Sprintf("k%d_%d", g, k))
			}
			slot := row % cfg.GroupSize
			if g < cfg.Violations {
				args[dep] = value.Str(fmt.Sprintf("v%d", slot%cfg.Classes))
			} else {
				args[dep] = value.Str("v0")
				if cfg.NullRate > 0 && rng.Float64() < cfg.NullRate {
					if rng.Intn(2) == 0 {
						args[dep] = value.Null()
					} else {
						args[rng.Intn(cfg.KeyWidth)] = value.Null()
					}
				}
			}
			args[uniq] = value.Int(int64(row))
			d.Insert(relational.Fact{Pred: name, Args: args})
		}
	}
	for i := 0; i < cfg.Unconstrained; i++ {
		g := rng.Intn(groups)
		d.Insert(relational.F(UnconstrainedName,
			value.Str(fmt.Sprintf("k%d_0", g)),
			value.Str(fmt.Sprintf("v%d", rng.Intn(cfg.Classes+1)))))
	}
	set, err := constraint.NewSet(ics, nil)
	if err != nil {
		panic(fmt.Sprintf("fdgen: generated set invalid: %v", err))
	}
	return d, set
}

// Updates derives a deterministic stream of n single-batch deltas against
// d (which must come from Generate(cfg)): inserts of fresh rows into
// existing key groups (sometimes opening a new dependent class), deletes
// of previously inserted rows, and unconstrained-relation churn. Batches
// are sized batch facts each; every delta is effective by construction.
func Updates(cfg Config, n, batch int) []relational.Delta {
	cfg = cfg.Normalized()
	if batch <= 0 {
		batch = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 0x5eed))
	groups := cfg.Rows / cfg.GroupSize
	if groups < 1 {
		groups = 1
	}
	nextID := int64(cfg.Rows)
	var live []relational.Fact
	out := make([]relational.Delta, 0, n)
	for i := 0; i < n; i++ {
		var dl relational.Delta
		for b := 0; b < batch; b++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				dl.Removed = append(dl.Removed, live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			name := RelName(rng.Intn(cfg.Relations))
			g := rng.Intn(groups)
			args := make(relational.Tuple, cfg.Arity())
			for k := 0; k < cfg.KeyWidth; k++ {
				args[k] = value.Str(fmt.Sprintf("k%d_%d", g, k))
			}
			args[cfg.KeyWidth] = value.Str(fmt.Sprintf("v%d", rng.Intn(cfg.Classes+1)))
			args[cfg.KeyWidth+1] = value.Int(nextID)
			nextID++
			f := relational.Fact{Pred: name, Args: args}
			dl.Added = append(dl.Added, f)
			live = append(live, f)
		}
		out = append(out, dl)
	}
	return out
}

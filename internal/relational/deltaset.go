package relational

// DeltaFingerprint hashes a delta's content. Both halves must be sorted
// (the Delta contract), so equal deltas always fingerprint equally; the
// removal/addition tags keep {−f} and {+f} apart.
func DeltaFingerprint(dl Delta) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
		remTag   = 0x9e3779b97f4a7c15
		addTag   = 0xc2b2ae3d27d4eb4f
	)
	h := uint64(offset64)
	mix := func(tag uint64, fs []Fact) {
		for _, f := range fs {
			h ^= tag ^ factHash(f)
			h *= prime64
		}
	}
	mix(remTag, dl.Removed)
	mix(addTag, dl.Added)
	return h
}

// DeltaSet deduplicates deltas by fingerprint with exact confirmation on
// collision, mirroring InstanceSet: no per-delta key strings are built, so
// membership tests on hot paths (cautious model streams) cost a hash plus,
// rarely, a fact-by-fact comparison.
type DeltaSet struct {
	buckets map[uint64][]Delta
	n       int
}

// NewDeltaSet returns an empty set.
func NewDeltaSet() *DeltaSet {
	return &DeltaSet{buckets: make(map[uint64][]Delta)}
}

// Add inserts dl (whose halves must be sorted) and reports whether it was
// not already present.
func (s *DeltaSet) Add(dl Delta) bool {
	fp := DeltaFingerprint(dl)
	for _, have := range s.buckets[fp] {
		if deltasEqual(have, dl) {
			return false
		}
	}
	s.buckets[fp] = append(s.buckets[fp], dl)
	s.n++
	return true
}

// Has reports whether dl (sorted halves) is in the set.
func (s *DeltaSet) Has(dl Delta) bool {
	for _, have := range s.buckets[DeltaFingerprint(dl)] {
		if deltasEqual(have, dl) {
			return true
		}
	}
	return false
}

// Len returns the number of distinct deltas added.
func (s *DeltaSet) Len() int { return s.n }

func deltasEqual(a, b Delta) bool {
	return factsEqual(a.Removed, b.Removed) && factsEqual(a.Added, b.Added)
}

func factsEqual(a, b []Fact) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

package relational

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// TestInstanceDelta pins the first-class overlay delta: after a random edit
// sequence on a clone, Delta() must equal Diff(base view, clone) — and both
// must be empty for an owner instance.
func TestInstanceDelta(t *testing.T) {
	if dl := NewInstance(F("p", value.Str("a"))).Delta(); dl.Size() != 0 {
		t.Fatalf("owner instance has non-empty delta %v", dl)
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		base := randInstance(rng, 2+rng.Intn(10))
		c := base.Clone()
		for k := 0; k < rng.Intn(8); k++ {
			f := randFact(rng)
			if rng.Intn(2) == 0 {
				c.Insert(f)
			} else {
				c.Delete(f)
			}
			// Also exercise delete-then-reinsert of base facts and
			// tombstoned re-adds.
			if facts := base.Facts(); len(facts) > 0 && rng.Intn(3) == 0 {
				g := facts[rng.Intn(len(facts))]
				c.Delete(g)
				if rng.Intn(2) == 0 {
					c.Insert(g)
				}
			}
		}
		want := Diff(base, c)
		got := c.Delta()
		if !equalFacts(want.Added, got.Added) || !equalFacts(want.Removed, got.Removed) {
			t.Fatalf("trial %d: Delta() = %v, Diff = %v", trial, got, want)
		}
		// The Diff fast path (d sitting on the base) must agree with the
		// general shared-engine diff: perturb the base view and compare
		// against a from-scratch diff of materialized copies.
		d2 := base.Clone()
		if facts := base.Facts(); len(facts) > 0 {
			d2.Delete(facts[rng.Intn(len(facts))])
		}
		naive := Diff(NewInstance(d2.Facts()...), NewInstance(c.Facts()...))
		shared := Diff(d2, c)
		if !equalFacts(naive.Added, shared.Added) || !equalFacts(naive.Removed, shared.Removed) {
			t.Fatalf("trial %d: shared diff %v, naive diff %v", trial, shared, naive)
		}
	}
}

func equalFacts(a, b []Fact) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

package relational

import (
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/value"
)

// Instance is a finite database instance: a set of ground atoms.
// The zero value is not usable; call NewInstance.
//
// Physically an Instance is either the owner of an engine (the common case
// for freshly built databases) or a copy-on-write overlay over a frozen
// engine: a base plus per-relation Δadd/Δdel maps. Clone returns an overlay
// in O(|Δ|), so the repair search pays for the atoms it changes, not for the
// whole database; Diff between two views of the same base is likewise
// computed from the deltas alone. An overlay whose edits come to dominate
// its base is flattened back into a privately owned engine.
//
// A single Instance view is not safe for concurrent use, even read-only:
// logically read-only operations lazily build and cache per-view state
// (sorted fact caches). Distinct views of one frozen engine, however, may be
// read concurrently from many goroutines — the shared engine's lazy index
// and sorted-view builds are internally synchronized once frozen (see
// Freeze) — which is what the parallel repair search relies on: each worker
// owns its private overlay states while all of them probe the same base.
type Instance struct {
	eng *engine

	// deltas is nil while the instance owns its engine and writes to it
	// directly. Once the instance participates in a Clone, the engine is
	// frozen and all views (including this one) write to deltas.
	deltas map[RelKey]*delta
	dorder []RelKey // first-touch order of deltas, for deterministic iteration
	size   int
	fp     uint64

	deltaN int // total entries across all delta maps; triggers flattening

	gen        int // bumped on every mutation; guards factsCache and deltaCache
	factsCache []Fact
	factsGen   int

	deltaCache Delta // sorted overlay delta, rebuilt when deltaGen falls behind
	deltaGen   int
	deltaOK    bool
}

// delta is the overlay Δ of one relation: added tuples (with their insertion
// order) and deleted base tuples, both keyed by tuple key. Deleting an added
// tuple tombstones its add entry (nil tuple) instead of removing it, so the
// key's addOrder slot stays unique and a later re-add cannot duplicate it;
// addN counts the live (non-tombstoned) adds.
type delta struct {
	add      map[string]Tuple
	addOrder []string
	addN     int
	del      map[string]Tuple

	// shared is set when a Clone makes a second view reference this object
	// (the clone shallow-copies the rk -> *delta map). A shared delta is
	// immutable: writers copy it first (deltaFor). The flag never reverts —
	// a copy starts private — so a true value is stable, while false
	// implies a single referencing view. It is atomic because concurrent
	// Clones of one instance are allowed (reads of a frozen view), and
	// each would publish the flag.
	shared atomic.Bool
}

func newDelta() *delta {
	return &delta{add: map[string]Tuple{}, del: map[string]Tuple{}}
}

func (dl *delta) clone() *delta {
	c := &delta{
		add:      make(map[string]Tuple, len(dl.add)),
		del:      make(map[string]Tuple, len(dl.del)),
		addOrder: append([]string(nil), dl.addOrder...),
		addN:     dl.addN,
	}
	for k, t := range dl.add {
		c.add[k] = t
	}
	for k, t := range dl.del {
		c.del[k] = t
	}
	return c
}

// NewInstance returns an empty instance, optionally populated with facts.
func NewInstance(facts ...Fact) *Instance {
	d := &Instance{eng: newEngine()}
	for _, f := range facts {
		d.Insert(f)
	}
	return d
}

func (d *Instance) overlay() bool { return d.deltas != nil }

// deltaFor returns the relation's delta for writing: a missing entry is
// allocated when create is set, and an entry shared with another view (see
// Clone) is copied first, so mutations never leak across views.
func (d *Instance) deltaFor(rk RelKey, create bool) *delta {
	dl, ok := d.deltas[rk]
	if !ok {
		if !create {
			return nil
		}
		dl = newDelta()
		d.deltas[rk] = dl
		d.dorder = append(d.dorder, rk)
		return dl
	}
	if dl.shared.Load() {
		dl = dl.clone()
		d.deltas[rk] = dl
	}
	return dl
}

// Insert adds a fact (set semantics: duplicates are absorbed). It reports
// whether the fact was new.
func (d *Instance) Insert(f Fact) bool {
	if !d.overlay() {
		if !d.eng.insert(f) {
			return false
		}
		d.size, d.fp = d.eng.size, d.eng.fp
		d.gen++
		return true
	}
	rk := RelKey{f.Pred, len(f.Args)}
	key := f.Args.Key()
	if dl := d.deltas[rk]; dl != nil {
		if t, ok := dl.del[key]; ok { // restore a deleted base fact
			delete(d.deltaFor(rk, false).del, key)
			d.deltaN--
			d.size++
			d.fp ^= factHash(Fact{Pred: f.Pred, Args: t})
			d.gen++
			return true
		}
		if t, ok := dl.add[key]; ok && t != nil {
			return false
		}
	}
	if d.eng.has(rk, key) {
		// No-op inserts never allocate a delta for the relation, so the
		// cached fast paths of untouched relations stay available.
		return false
	}
	dl := d.deltaFor(rk, true)
	if _, tombstoned := dl.add[key]; tombstoned {
		dl.add[key] = f.Args.Clone() // revive: the addOrder slot exists
	} else {
		dl.add[key] = f.Args.Clone()
		dl.addOrder = append(dl.addOrder, key)
	}
	dl.addN++
	d.deltaN++
	d.size++
	d.fp ^= factHash(f)
	d.gen++
	d.maybeFlatten()
	return true
}

// Delete removes a fact, reporting whether it was present.
func (d *Instance) Delete(f Fact) bool {
	if !d.overlay() {
		if !d.eng.delete(f) {
			return false
		}
		d.size, d.fp = d.eng.size, d.eng.fp
		d.gen++
		return true
	}
	rk := RelKey{f.Pred, len(f.Args)}
	key := f.Args.Key()
	if dl := d.deltas[rk]; dl != nil {
		if t, ok := dl.add[key]; ok && t != nil {
			dl = d.deltaFor(rk, false)
			dl.add[key] = nil // tombstone; the addOrder slot stays unique
			dl.addN--
			d.deltaN--
			d.size--
			d.fp ^= factHash(Fact{Pred: f.Pred, Args: t})
			d.gen++
			return true
		}
		if _, gone := dl.del[key]; gone {
			return false
		}
	}
	s := d.eng.stores[rk]
	if s == nil {
		return false
	}
	i, ok := s.pos[key]
	if !ok {
		return false
	}
	t := s.rows[i]
	dl := d.deltaFor(rk, true)
	dl.del[key] = t
	d.deltaN++
	d.size--
	d.fp ^= factHash(Fact{Pred: f.Pred, Args: t})
	d.gen++
	d.maybeFlatten()
	return true
}

// maybeFlatten folds a heavily edited overlay back into a fresh, privately
// owned engine, so a long-lived view that has diverged far from its base
// stops paying the delta-merge cost on every read. Flattening is purely a
// representation change — other views of the old base are unaffected — and
// restores direct-write (owner) mode until the next Clone.
func (d *Instance) maybeFlatten() {
	if d.deltaN <= 256 || d.deltaN*2 <= d.eng.size {
		return
	}
	eng := newEngine()
	d.ForEach(func(f Fact) bool {
		eng.insert(f)
		return true
	})
	d.eng = eng
	d.deltas, d.dorder, d.deltaN = nil, nil, 0
	d.size, d.fp = eng.size, eng.fp
	d.gen++
	d.factsCache = nil
	d.deltaCache, d.deltaOK = Delta{}, false
}

// Has reports membership.
func (d *Instance) Has(f Fact) bool {
	return d.has(RelKey{f.Pred, len(f.Args)}, f.Args.Key())
}

// Len returns the number of facts.
func (d *Instance) Len() int {
	if !d.overlay() {
		return d.eng.size
	}
	return d.size
}

// RelationSize returns the number of tuples of the given predicate/arity in
// O(1) (plus the overlay delta size).
func (d *Instance) RelationSize(pred string, arity int) int {
	rk := RelKey{pred, arity}
	n := 0
	if s := d.eng.stores[rk]; s != nil {
		n = s.live()
	}
	if d.overlay() {
		if dl := d.deltas[rk]; dl != nil {
			n += dl.addN - len(dl.del)
		}
	}
	return n
}

// Scan visits every tuple of the given predicate/arity that agrees with the
// bindings, in the store's deterministic iteration order (base insertion
// order, then overlay insertions). Bound columns are served from a lazily
// built hash index, so the cost depends on the matching tuples, not on the
// size of the relation — and never on unrelated relations. yield returns
// false to stop early.
func (d *Instance) Scan(pred string, arity int, bindings []Binding, yield func(Tuple) bool) {
	rk := RelKey{pred, arity}
	var dl *delta
	if d.overlay() {
		dl = d.deltas[rk]
	}
	if s := d.eng.stores[rk]; s != nil {
		cont := s.scan(bindings, func(row int) bool {
			if dl != nil {
				if _, gone := dl.del[s.keys[row]]; gone {
					return true
				}
			}
			return yield(s.rows[row])
		})
		if !cont {
			return
		}
	}
	if dl != nil {
		for _, k := range dl.addOrder {
			t := dl.add[k]
			if t == nil { // tombstoned (re-deleted) addition
				continue
			}
			if !matchBindings(t, bindings) {
				continue
			}
			if !yield(t) {
				return
			}
		}
	}
}

// ForEach visits every fact of the instance in a deterministic order without
// materializing a slice. yield returns false to stop early.
func (d *Instance) ForEach(yield func(Fact) bool) {
	if !d.overlay() {
		d.eng.forEach(yield)
		return
	}
	cont := d.eng.forEach(func(f Fact) bool {
		if dl := d.deltas[RelKey{f.Pred, len(f.Args)}]; dl != nil {
			if _, gone := dl.del[f.Args.Key()]; gone {
				return true
			}
		}
		return yield(f)
	})
	if !cont {
		return
	}
	for _, rk := range d.dorder {
		dl := d.deltas[rk]
		for _, k := range dl.addOrder {
			t := dl.add[k]
			if t == nil {
				continue
			}
			if !yield(Fact{Pred: rk.Pred, Args: t}) {
				return
			}
		}
	}
}

// sortedFacts returns the cached sorted fact list without copying; callers
// must not mutate it. For an overlay the list is a linear merge of the
// engine's shared sorted base (built once per engine, for every view) with
// the overlay's sorted delta — O(|D| + |Δ|) per view instead of a full
// O(|D| log |D|) re-sort, which is what keeps canonical repair listings
// cheap when thousands of leaves share one base.
func (d *Instance) sortedFacts() []Fact {
	if d.factsCache == nil || d.factsGen != d.gen {
		if !d.overlay() {
			d.factsCache = d.eng.sortedFacts()
		} else {
			d.factsCache = mergeSorted(d.eng.sortedFacts(), d.Delta(), d.size)
		}
		d.factsGen = d.gen
	}
	return d.factsCache
}

// mergeSorted merges a sorted base fact list with a sorted delta: removed
// facts (a subset of the base) are skipped, added facts (disjoint from the
// base) are merged in order. Distinct facts never compare equal (Compare is
// injective on fact content), so the two-pointer walk is exact.
func mergeSorted(base []Fact, dl Delta, size int) []Fact {
	if len(dl.Removed) == 0 && len(dl.Added) == 0 {
		return base
	}
	out := make([]Fact, 0, size)
	ri, ai := 0, 0
	for _, f := range base {
		if ri < len(dl.Removed) && dl.Removed[ri].Compare(f) == 0 {
			ri++
			continue
		}
		for ai < len(dl.Added) && dl.Added[ai].Compare(f) < 0 {
			out = append(out, dl.Added[ai])
			ai++
		}
		out = append(out, f)
	}
	out = append(out, dl.Added[ai:]...)
	return out
}

// Facts returns all facts sorted deterministically. The result is cached
// until the next mutation; callers receive a fresh copy each call.
func (d *Instance) Facts() []Fact {
	return append([]Fact(nil), d.sortedFacts()...)
}

// Compare orders instances content-canonically: lexicographically over
// their sorted fact lists under Fact.Compare. Like Key, this order depends
// only on the instances' content, so it is stable across runs; deterministic
// output (repair listings) sorts by it.
func (d *Instance) Compare(e *Instance) int {
	if d == e {
		return 0
	}
	if d.overlay() && e.overlay() && d.eng == e.eng {
		return d.compareShared(e)
	}
	fa, fb := d.sortedFacts(), e.sortedFacts()
	for i := 0; i < len(fa) && i < len(fb); i++ {
		if c := fa[i].Compare(fb[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(fa) < len(fb):
		return -1
	case len(fa) > len(fb):
		return 1
	default:
		return 0
	}
}

// compareShared orders two overlay views of one engine from their deltas
// alone, in O(|Δ| log |D|) instead of the O(|D|) merged-list walk. The two
// sorted fact sequences agree on every fact below the minimal fact f* whose
// membership differs (any such fact is in one of the deltas), so the
// comparison is decided at f*'s position: the view containing f* is smaller,
// unless the other view has no fact above f* at all — then it is a strict
// prefix and orders first.
func (d *Instance) compareShared(e *Instance) int {
	da, db := d.Delta().Facts(), e.Delta().Facts()
	i, j := 0, 0
	for i < len(da) || j < len(db) {
		var f Fact
		switch {
		case i >= len(da):
			f = db[j]
			j++
		case j >= len(db):
			f = da[i]
			i++
		default:
			if c := da[i].Compare(db[j]); c <= 0 {
				f = da[i]
				i++
				if c == 0 {
					j++
				}
			} else {
				f = db[j]
				j++
			}
		}
		inD, inE := d.Has(f), e.Has(f)
		if inD == inE {
			continue
		}
		other, sign := e, -1
		if inE {
			other, sign = d, 1
		}
		if other.hasFactAbove(f) {
			return sign
		}
		return -sign
	}
	return 0
}

// hasFactAbove reports whether the instance contains any fact strictly
// greater than f under Fact.Compare. Overlay-cheap: a binary search into the
// shared engine's sorted facts plus a walk over the (small) removed set.
func (d *Instance) hasFactAbove(f Fact) bool {
	dl := d.Delta()
	for k := len(dl.Added) - 1; k >= 0; k-- {
		if dl.Added[k].Compare(f) > 0 {
			return true
		}
	}
	base := d.eng.sortedFacts()
	idx := sort.Search(len(base), func(i int) bool { return base[i].Compare(f) > 0 })
	ri := sort.Search(len(dl.Removed), func(i int) bool { return dl.Removed[i].Compare(f) > 0 })
	for idx < len(base) {
		for ri < len(dl.Removed) && dl.Removed[ri].Compare(base[idx]) < 0 {
			ri++
		}
		if ri < len(dl.Removed) && dl.Removed[ri].Compare(base[idx]) == 0 {
			ri++
			idx++
			continue
		}
		return true
	}
	return false
}

// Relation returns the sorted tuples of the given predicate with the given
// arity. For an instance without overlay edits on the relation this is a
// copy of the store's cached sorted view (no re-sort); overlay edits are
// merged in.
func (d *Instance) Relation(pred string, arity int) []Tuple {
	rk := RelKey{pred, arity}
	s := d.eng.stores[rk]
	var dl *delta
	if d.overlay() {
		dl = d.deltas[rk]
	}
	if dl == nil || (dl.addN == 0 && len(dl.del) == 0) {
		if s == nil || s.live() == 0 {
			return nil
		}
		return append([]Tuple(nil), s.sortedTuples()...)
	}
	out := make([]Tuple, 0, d.RelationSize(pred, arity))
	d.Scan(pred, arity, nil, func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	if len(out) == 0 {
		return nil
	}
	return out
}

// RelKeys returns the relations with at least one fact, sorted by predicate
// then arity.
func (d *Instance) RelKeys() []RelKey {
	var out []RelKey
	seen := map[RelKey]bool{}
	add := func(rk RelKey) {
		if !seen[rk] && d.RelationSize(rk.Pred, rk.Arity) > 0 {
			seen[rk] = true
			out = append(out, rk)
		}
	}
	for _, rk := range d.eng.order {
		add(rk)
	}
	for _, rk := range d.dorder {
		add(rk)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred != out[j].Pred {
			return out[i].Pred < out[j].Pred
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// Preds returns the sorted predicate names occurring in the instance.
func (d *Instance) Preds() []string {
	var out []string
	seen := map[string]bool{}
	for _, rk := range d.RelKeys() {
		if !seen[rk.Pred] {
			seen[rk.Pred] = true
			out = append(out, rk.Pred)
		}
	}
	sort.Strings(out)
	return out
}

// Freeze seals the instance's physical engine for shared, concurrent read
// access without creating a copy: the engine is frozen exactly as a first
// Clone would freeze it, and this view is demoted to an overlay, so later
// writes land in private deltas while any number of goroutines may read
// views of the shared base race-free. Freezing an instance that is already
// an overlay is a no-op (its engine is frozen by construction).
func (d *Instance) Freeze() {
	if d.overlay() {
		return
	}
	d.eng.freeze()
	d.deltas = map[RelKey]*delta{}
	d.size, d.fp = d.eng.size, d.eng.fp
}

// Clone returns an independent copy of the instance in O(#touched
// relations): the physical base is shared (and frozen) and the overlay
// deltas are shared copy-on-write — both views mark every entry as borrowed
// and copy a relation's delta only when they first write to it.
func (d *Instance) Clone() *Instance {
	if !d.overlay() {
		// First clone: freeze the engine and demote the owner to an
		// overlay view so both copies write to private deltas from now
		// on.
		d.Freeze()
	}
	c := &Instance{
		eng:    d.eng,
		deltas: make(map[RelKey]*delta, len(d.deltas)),
		dorder: append([]RelKey(nil), d.dorder...),
		size:   d.size,
		fp:     d.fp,
		deltaN: d.deltaN,
	}
	for rk, dl := range d.deltas {
		// The load-then-store keeps already-shared deltas' cache lines
		// clean; the idempotent store is what makes concurrent Clones of
		// one (frozen, read-only) view race-free.
		if !dl.shared.Load() {
			dl.shared.Store(true)
		}
		c.deltas[rk] = dl
	}
	return c
}

// Fingerprint returns an order-independent 64-bit fingerprint of the fact
// set, maintained incrementally across mutations. Distinct fingerprints
// imply distinct instances; equal fingerprints must be confirmed with Equal.
func (d *Instance) Fingerprint() uint64 {
	if !d.overlay() {
		return d.eng.fp
	}
	return d.fp
}

// Equal reports set equality of instances. Views of the same physical base
// — every pair of states within one repair search — are compared through
// their overlay deltas alone in O(|Δ(d)| + |Δ(e)|).
func (d *Instance) Equal(e *Instance) bool {
	if d.Len() != e.Len() {
		return false
	}
	if d.Fingerprint() != e.Fingerprint() {
		return false
	}
	if d.eng == e.eng {
		return equalShared(d, e)
	}
	equal := true
	d.ForEach(func(f Fact) bool {
		if !e.Has(f) {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// equalShared decides equality of two views of one base from their deltas:
// the views agree everywhere except possibly at delta points, so it suffices
// to check that every add/del of each side holds in the other.
func equalShared(d, e *Instance) bool {
	check := func(a, b *Instance) bool {
		for _, rk := range a.dorder {
			dl := a.deltas[rk]
			for k, t := range dl.add {
				if t != nil && !b.has(rk, k) {
					return false
				}
			}
			for k := range dl.del {
				if b.has(rk, k) {
					return false
				}
			}
		}
		return true
	}
	return check(d, e) && check(e, d)
}

// Key returns a canonical injective encoding of the whole instance (used to
// memoize repair search states and to order repairs deterministically). The
// encoding is the sorted concatenation of the per-fact keys, each of which is
// self-delimiting (pred id, arity, then arity-many ids, 4 bytes each).
func (d *Instance) Key() string {
	keys := make([]string, 0, d.Len())
	d.ForEach(func(f Fact) bool {
		keys = append(keys, f.Key())
		return true
	})
	sort.Strings(keys)
	return strings.Join(keys, "")
}

// String renders the instance as a sorted set of facts.
func (d *Instance) String() string {
	fs := d.Facts()
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// ActiveDomain returns adom(D): the set of constants occurring in the
// instance, sorted, excluding null (null is accounted for separately in
// Proposition 1: adom(D) ∪ const(IC) ∪ {null}).
func (d *Instance) ActiveDomain() []value.V {
	seen := map[value.V]bool{}
	var out []value.V
	d.ForEach(func(f Fact) bool {
		for _, v := range f.Args {
			if !v.IsNull() && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Project computes D^A of Definition 3: every fact of a predicate named in
// positions is projected onto the given 0-based attribute positions (sorted
// ascending); predicates absent from positions are dropped. Projected
// predicates keep their names (their arity changes, which keeps them distinct
// in this package's Fact keys).
func (d *Instance) Project(positions map[string][]int) *Instance {
	out := NewInstance()
	d.ForEach(func(f Fact) bool {
		pos, ok := positions[f.Pred]
		if ok && fits(pos, len(f.Args)) {
			out.Insert(Fact{Pred: f.Pred, Args: f.Args.Project(pos)})
		}
		return true
	})
	return out
}

// fits reports whether every position is valid for the given arity (facts
// of a same-named predicate with a smaller arity are skipped rather than
// panicking).
func fits(pos []int, arity int) bool {
	for _, p := range pos {
		if p < 0 || p >= arity {
			return false
		}
	}
	return true
}

// Delta returns the overlay's symmetric difference against the physical base
// engine this view shares: Added are the facts inserted over the base,
// Removed the base facts deleted, both sorted. For an instance that owns its
// engine (no overlay, or an overlay folded back by flattening) the delta is
// empty — the base *is* the instance. The cost is O(|Δ|), independent of the
// instance size, which is what lets downstream layers (Δ-seeded constraint
// probes, base-anchored query patching) see what changed instead of
// re-scanning everything. The result is cached until the next mutation and
// its slices may be shared across calls: treat it as read-only.
func (d *Instance) Delta() Delta {
	if !d.overlay() {
		return Delta{}
	}
	if d.deltaOK && d.deltaGen == d.gen {
		return d.deltaCache
	}
	var dl Delta // built fresh, never reusing the previous cache's arrays:
	// earlier callers may still hold the old snapshot.
	for _, rk := range d.dorder {
		deltas := d.deltas[rk]
		for _, k := range deltas.addOrder {
			if t := deltas.add[k]; t != nil {
				dl.Added = append(dl.Added, Fact{Pred: rk.Pred, Args: t})
			}
		}
		for _, t := range deltas.del {
			dl.Removed = append(dl.Removed, Fact{Pred: rk.Pred, Args: t})
		}
	}
	SortFacts(dl.Added)
	SortFacts(dl.Removed)
	d.deltaCache, d.deltaGen, d.deltaOK = dl, d.gen, true
	return dl
}

// Diff computes Δ(d, e). When both instances are overlay views of the same
// physical base — as in the repair search, where every state is a clone of
// the original database — the difference is computed from the deltas alone
// in O(|Δ(d)| + |Δ(e)|), independent of |D|. When d additionally sits exactly
// on the base (a freshly frozen owner, the root of a repair search), the
// difference is e's own overlay delta.
func Diff(d, e *Instance) Delta {
	if d.eng == e.eng {
		if d.deltaN == 0 {
			return e.Delta()
		}
		return diffShared(d, e)
	}
	var dl Delta
	d.ForEach(func(f Fact) bool {
		if !e.Has(f) {
			dl.Removed = append(dl.Removed, f)
		}
		return true
	})
	e.ForEach(func(f Fact) bool {
		if !d.Has(f) {
			dl.Added = append(dl.Added, f)
		}
		return true
	})
	SortFacts(dl.Removed)
	SortFacts(dl.Added)
	return dl
}

// has reports membership of a relation tuple by key, overlay-aware. An add
// tombstone (nil tuple) means "not present": tombstoned keys never shadow
// base facts (adds are disjoint from the base).
func (d *Instance) has(rk RelKey, key string) bool {
	if d.overlay() {
		if dl := d.deltas[rk]; dl != nil {
			if t, ok := dl.add[key]; ok {
				return t != nil
			}
			if _, ok := dl.del[key]; ok {
				return false
			}
		}
	}
	return d.eng.has(rk, key)
}

func diffShared(d, e *Instance) Delta {
	var dl Delta
	// Removed = present in d, absent in e. Such a fact is either an
	// overlay addition of d that e lacks, or a base fact deleted in e but
	// not in d. (d's additions and e's base deletions are disjoint sets:
	// additions never shadow base facts.)
	for _, rk := range d.dorder {
		for k, t := range d.deltas[rk].add {
			if t != nil && !e.has(rk, k) {
				dl.Removed = append(dl.Removed, Fact{Pred: rk.Pred, Args: t})
			}
		}
	}
	for _, rk := range e.dorder {
		for k, t := range e.deltas[rk].del {
			if d.has(rk, k) {
				dl.Removed = append(dl.Removed, Fact{Pred: rk.Pred, Args: t})
			}
		}
	}
	// Added = present in e, absent in d — symmetric.
	for _, rk := range e.dorder {
		for k, t := range e.deltas[rk].add {
			if t != nil && !d.has(rk, k) {
				dl.Added = append(dl.Added, Fact{Pred: rk.Pred, Args: t})
			}
		}
	}
	for _, rk := range d.dorder {
		for k, t := range d.deltas[rk].del {
			if e.has(rk, k) {
				dl.Added = append(dl.Added, Fact{Pred: rk.Pred, Args: t})
			}
		}
	}
	SortFacts(dl.Removed)
	SortFacts(dl.Added)
	return dl
}

package relational

// InstanceSet deduplicates instances through their incrementally maintained
// 64-bit fingerprints, confirming hash hits with Equal — the streaming
// engines' repair dedup, with no O(|D|) canonical key string per member.
// When the members are overlay views of one shared base (the repair search
// and the program engine's overlay emission both produce exactly that), a
// confirm runs in O(|Δ|) via the shared-engine Equal fast path. Distinct
// instances are retained for the set's lifetime (Equal needs them on a
// fingerprint hit); that matches key-string dedup's asymptotics while never
// re-encoding a member.
//
// InstanceSet is not safe for concurrent use.
type InstanceSet struct {
	buckets map[uint64][]*Instance
	n       int
}

// NewInstanceSet returns an empty set.
func NewInstanceSet() *InstanceSet {
	return &InstanceSet{buckets: map[uint64][]*Instance{}}
}

// Add inserts the instance, reporting whether it was new.
func (s *InstanceSet) Add(d *Instance) bool {
	fp := d.Fingerprint()
	for _, o := range s.buckets[fp] {
		if o.Equal(d) {
			return false
		}
	}
	s.buckets[fp] = append(s.buckets[fp], d)
	s.n++
	return true
}

// Len returns the number of distinct instances added.
func (s *InstanceSet) Len() int { return s.n }

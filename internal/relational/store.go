package relational

import (
	"sort"
	"sync"

	"repro/internal/value"
)

// This file implements the physical storage layer of the package: per-relation
// tuple stores with lazily built hash indexes on bound-column subsets, grouped
// into an engine that one or more Instance views share. The logical layer
// (set semantics, overlays, Δ computation) lives in relational.go.
//
// Layering, bottom up:
//
//	value encodings (internal/value) — content-addressed keys and hashes
//	relStore                         — one predicate/arity: rows + indexes
//	engine                           — map[RelKey]*relStore + fingerprint
//	Instance                         — engine owner, or overlay Base+Δ view
//
// All keys are compact self-delimiting binary encodings of the constants'
// content (value.V.AppendKey), so membership tests and index probes never
// re-render constants as display text — and never consult any process-wide
// intern table. Every engine is therefore fully self-contained: two tenants
// of one process share no storage state whatsoever, which is what the
// multi-tenant daemon's isolation rests on.

// RelKey identifies one relation of an instance: predicate name and arity.
// The paper fixes one arity per predicate but Example 1 is loose about it, so
// the engine keys stores by both.
type RelKey struct {
	Pred  string
	Arity int
}

func appendU32(b []byte, x uint32) []byte {
	return append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
}

// appendTupleKey appends the self-delimiting content encoding of every
// position of t (value.V.AppendKey). The encoding is a pure function of the
// tuple's content: no intern table is consulted, so key construction is
// contention-free and tenants sharing a process share no state through it.
func appendTupleKey(b []byte, t Tuple) []byte {
	for _, v := range t {
		b = v.AppendKey(b)
	}
	return b
}

// tupleKeyLen returns the exact byte length of appendTupleKey(nil, t).
func tupleKeyLen(t Tuple) int {
	n := 0
	for _, v := range t {
		n += v.KeyLen()
	}
	return n
}

// factHash is a 64-bit FNV-1a hash of the fact identity (predicate name,
// arity, argument content). Instance fingerprints XOR these per-fact hashes,
// which makes the fingerprint order-independent and incrementally updatable
// on both insert and delete. The hash is content-determined — stable across
// runs and processes, no interner involved.
func factHash(f Fact) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(f.Pred); i++ {
		h ^= uint64(f.Pred[i])
		h *= prime
	}
	h ^= uint64(len(f.Pred))
	h *= prime
	h ^= uint64(len(f.Args))
	h *= prime
	for _, v := range f.Args {
		h = v.Hash(h)
	}
	return h
}

// Binding fixes one column of a scan to a constant. Scans with bindings are
// served from hash indexes on the bound-column subset.
type Binding struct {
	Pos int
	Val value.V
}

// matchBindings reports whether t agrees with every binding (null as an
// ordinary constant — value.V.Eq).
func matchBindings(t Tuple, bindings []Binding) bool {
	for _, b := range bindings {
		if !t[b.Pos].Eq(b.Val) {
			return false
		}
	}
	return true
}

// relStore holds the tuples of one relation. Rows keep their insertion
// order (the store's deterministic iteration order); deletion tombstones a
// row, and the store compacts itself when tombstones dominate. Secondary
// structures — the sorted view and the per-bound-column-subset hash indexes —
// are built lazily and dropped on any write.
//
// Concurrency: an unfrozen store is confined to one goroutine (the owner
// instance). Once the engine freezes (overlay views exist), rows/keys/pos
// become immutable and any number of goroutines may scan concurrently; the
// only remaining writes are the lazy builds of sorted and idx, which are
// double-checked under mu. Scan bookkeeping (scanning / maybeCompact) is
// skipped entirely on frozen stores — nothing can be tombstoned anymore.
type relStore struct {
	rows []Tuple        // insertion order; nil = tombstone
	keys []string       // tuple key per row, parallel to rows
	pos  map[string]int // tuple key -> row position
	dead int

	scanning int // active scans; compaction is deferred while nonzero

	frozen bool // rows/keys/pos immutable; lazy builds go through mu

	mu     sync.RWMutex                // guards sorted/idx once frozen
	sorted []Tuple                     // lazy: rows in Tuple.Compare order
	idx    map[uint32]map[string][]int // lazy: position mask -> bound ids -> rows
}

func newRelStore() *relStore {
	return &relStore{pos: map[string]int{}}
}

func (s *relStore) live() int { return len(s.rows) - s.dead }

func (s *relStore) invalidate() {
	s.sorted = nil
	s.idx = nil
}

// insert adds a tuple (set semantics), reporting whether it was new. The
// caller passes the precomputed tuple key. Existing hash indexes are kept
// valid incrementally — the new row is appended to the matching bucket of
// each index — so interleaved scan/insert loops (the grounder fixpoint) do
// not rebuild indexes per derived atom.
func (s *relStore) insert(key string, t Tuple) bool {
	if _, ok := s.pos[key]; ok {
		return false
	}
	row := len(s.rows)
	s.pos[key] = row
	s.rows = append(s.rows, t.Clone())
	s.keys = append(s.keys, key)
	s.sorted = nil
	var buf []byte
	for mask, m := range s.idx {
		buf = buf[:0]
		for p := 0; p < 32; p++ {
			if mask&(1<<uint(p)) != 0 {
				buf = t[p].AppendKey(buf)
			}
		}
		m[string(buf)] = append(m[string(buf)], row)
	}
	return true
}

// delete tombstones a row. Hash indexes stay valid — scans skip tombstones
// via the liveness check — and are only dropped when compaction renumbers
// rows.
func (s *relStore) delete(key string) bool {
	i, ok := s.pos[key]
	if !ok {
		return false
	}
	delete(s.pos, key)
	s.rows[i] = nil
	s.dead++
	s.sorted = nil
	s.maybeCompact()
	return true
}

func (s *relStore) has(key string) bool {
	_, ok := s.pos[key]
	return ok
}

// maybeCompact rebuilds the row arrays once tombstones dominate, preserving
// the relative (insertion) order of the surviving rows. Compaction renumbers
// row positions, so it is deferred while any scan is in flight (a scan's
// captured index entries reference positions; tombstoned rows are skipped by
// the scan's liveness check, but renumbering would alias them to live rows).
func (s *relStore) maybeCompact() {
	if s.scanning > 0 {
		return
	}
	if s.dead <= 32 || s.dead*2 <= len(s.rows) {
		return
	}
	rows := make([]Tuple, 0, s.live())
	keys := make([]string, 0, s.live())
	for i, t := range s.rows {
		if t == nil {
			continue
		}
		s.pos[s.keys[i]] = len(rows)
		rows = append(rows, t)
		keys = append(keys, s.keys[i])
	}
	s.rows, s.keys, s.dead = rows, keys, 0
	s.invalidate()
}

// sortedTuples returns (and caches) the live rows in Tuple.Compare order.
// Callers must not mutate the result; Instance.Relation copies. On a frozen
// store the lazy build is double-checked under mu so concurrent readers
// share one cached view.
func (s *relStore) sortedTuples() []Tuple {
	if s.frozen {
		s.mu.RLock()
		out := s.sorted
		s.mu.RUnlock()
		if out != nil {
			return out
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.sorted == nil {
			s.sorted = s.buildSorted()
		}
		return s.sorted
	}
	if s.sorted == nil {
		s.sorted = s.buildSorted()
	}
	return s.sorted
}

func (s *relStore) buildSorted() []Tuple {
	out := make([]Tuple, 0, s.live())
	for _, t := range s.rows {
		if t != nil {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// maskAndPositions derives the index identity of a binding set. ok is false
// when the bindings cannot be served by a mask index (arity beyond 32).
func maskAndPositions(bindings []Binding, arity int) (mask uint32, positions []int, ok bool) {
	if arity > 32 {
		return 0, nil, false
	}
	positions = make([]int, len(bindings))
	for i, b := range bindings {
		positions[i] = b.Pos
		mask |= 1 << uint(b.Pos)
	}
	sort.Ints(positions)
	return mask, positions, true
}

// index returns the hash index on the given bound-column subset, building it
// on first use. The index maps the encoded ids of the bound columns (in
// ascending position order) to row positions. On a frozen store the build is
// double-checked under mu: concurrent scanners either observe the published
// (immutable) index or serialize on building it exactly once.
func (s *relStore) index(mask uint32, positions []int) map[string][]int {
	if s.frozen {
		s.mu.RLock()
		m, ok := s.idx[mask]
		s.mu.RUnlock()
		if ok {
			return m
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if m, ok := s.idx[mask]; ok {
			return m
		}
		m = s.buildIndex(positions)
		if s.idx == nil {
			s.idx = map[uint32]map[string][]int{}
		}
		s.idx[mask] = m
		return m
	}
	if s.idx == nil {
		s.idx = map[uint32]map[string][]int{}
	}
	if m, ok := s.idx[mask]; ok {
		return m
	}
	m := s.buildIndex(positions)
	s.idx[mask] = m
	return m
}

func (s *relStore) buildIndex(positions []int) map[string][]int {
	m := make(map[string][]int, len(s.rows))
	var buf []byte
	for i, t := range s.rows {
		if t == nil {
			continue
		}
		buf = buf[:0]
		for _, p := range positions {
			buf = t[p].AppendKey(buf)
		}
		m[string(buf)] = append(m[string(buf)], i)
	}
	return m
}

// scan visits the row positions matching the bindings, in insertion order,
// using (and lazily building) the hash index on the bound columns. yield
// returns false to stop; scan reports whether the iteration ran to the end.
// Mutating the relation from inside yield is allowed on an owner instance
// (the grounder's fixpoint inserts while scanning): inserts appended after
// the scan started are not visited, deletes are skipped by the liveness
// check, and compaction is deferred until the scan unwinds.
func (s *relStore) scan(bindings []Binding, yield func(row int) bool) bool {
	if !s.frozen {
		// Deletion bookkeeping only matters while the store can still be
		// written; frozen stores are immutable, and skipping the counter
		// keeps concurrent scans write-free.
		s.scanning++
		defer func() {
			s.scanning--
			s.maybeCompact()
		}()
	}
	if len(bindings) == 0 {
		for i, t := range s.rows {
			if t != nil && !yield(i) {
				return false
			}
		}
		return true
	}
	mask, positions, ok := maskAndPositions(bindings, cap32(bindings))
	if !ok {
		for i, t := range s.rows {
			if t != nil && matchBindings(t, bindings) && !yield(i) {
				return false
			}
		}
		return true
	}
	idx := s.index(mask, positions)
	var buf []byte
	vals := make(map[int]value.V, len(bindings))
	for _, b := range bindings {
		vals[b.Pos] = b.Val
	}
	for _, p := range positions {
		buf = vals[p].AppendKey(buf)
	}
	for _, i := range idx[string(buf)] {
		// Rows referenced by a frozen engine's index are never
		// tombstoned, but an owner instance may delete between probes;
		// re-check liveness (positions stay valid: compaction is
		// deferred while scanning).
		if s.rows[i] == nil {
			continue
		}
		if !yield(i) {
			return false
		}
	}
	return true
}

// cap32 returns the highest bound position + 1, used as the effective arity
// for mask construction.
func cap32(bindings []Binding) int {
	max := 0
	for _, b := range bindings {
		if b.Pos+1 > max {
			max = b.Pos + 1
		}
	}
	return max
}

// engine is the physical store shared by an owner Instance and the overlay
// views cloned from it. Once any overlay exists the engine is frozen and
// becomes immutable, so its caches and indexes stay valid for every view —
// including views probed concurrently from multiple goroutines (the parallel
// repair search): all remaining writes are lazy cache builds, serialized per
// store by relStore.mu and per engine by mu.
type engine struct {
	stores map[RelKey]*relStore
	order  []RelKey // first-insertion order of relations
	size   int
	fp     uint64
	frozen bool

	mu    sync.Mutex // guards the lazy facts build once frozen
	facts []Fact     // lazy: all live facts, sorted
}

// freeze makes the engine immutable: writes panic, and every store switches
// to its race-free concurrent-read mode.
func (e *engine) freeze() {
	if e.frozen {
		return
	}
	e.frozen = true
	for _, s := range e.stores {
		s.frozen = true
	}
}

func newEngine() *engine {
	return &engine{stores: map[RelKey]*relStore{}}
}

func (e *engine) store(rk RelKey, create bool) *relStore {
	s, ok := e.stores[rk]
	if !ok && create {
		s = newRelStore()
		e.stores[rk] = s
		e.order = append(e.order, rk)
	}
	return s
}

func (e *engine) insert(f Fact) bool {
	if e.frozen {
		panic("relational: write to a frozen engine (overlay views exist)")
	}
	s := e.store(RelKey{f.Pred, len(f.Args)}, true)
	key := f.Args.Key()
	if !s.insert(key, f.Args) {
		return false
	}
	e.size++
	e.fp ^= factHash(f)
	e.facts = nil
	return true
}

func (e *engine) delete(f Fact) bool {
	if e.frozen {
		panic("relational: write to a frozen engine (overlay views exist)")
	}
	s := e.store(RelKey{f.Pred, len(f.Args)}, false)
	if s == nil || !s.delete(f.Args.Key()) {
		return false
	}
	e.size--
	e.fp ^= factHash(f)
	e.facts = nil
	return true
}

func (e *engine) has(rk RelKey, key string) bool {
	s := e.stores[rk]
	return s != nil && s.has(key)
}

// sortedFacts returns (and caches) every live fact in Fact.Compare order.
// Callers must not mutate the result.
func (e *engine) sortedFacts() []Fact {
	if e.frozen {
		e.mu.Lock()
		defer e.mu.Unlock()
	}
	if e.facts == nil {
		out := make([]Fact, 0, e.size)
		for rk, s := range e.stores {
			for _, t := range s.rows {
				if t != nil {
					out = append(out, Fact{Pred: rk.Pred, Args: t})
				}
			}
		}
		SortFacts(out)
		e.facts = out
	}
	return e.facts
}

// forEach visits every live fact in deterministic (relation-declaration,
// then row-insertion) order. Compaction is deferred per relation while it
// is being iterated, so deletes from inside yield stay visible as
// tombstones rather than renumbering rows mid-iteration.
func (e *engine) forEach(yield func(Fact) bool) bool {
	for _, rk := range e.order {
		s := e.stores[rk]
		if s.frozen {
			// Immutable: iterate without deletion bookkeeping, so
			// concurrent iterations stay write-free.
			for i := 0; i < len(s.rows); i++ {
				if s.rows[i] == nil {
					continue
				}
				if !yield(Fact{Pred: rk.Pred, Args: s.rows[i]}) {
					return false
				}
			}
			continue
		}
		s.scanning++
		for i := 0; i < len(s.rows); i++ {
			if s.rows[i] == nil {
				continue
			}
			if !yield(Fact{Pred: rk.Pred, Args: s.rows[i]}) {
				s.scanning--
				s.maybeCompact()
				return false
			}
		}
		s.scanning--
		s.maybeCompact()
	}
	return true
}

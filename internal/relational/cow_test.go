package relational

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// This file pins the sharing mechanics behind Clone: after a clone the two
// views reference the same per-relation delta objects and a writer copies
// only the relation it touches, so cloning is O(#touched relations) and
// mutations never leak across views. It also differential-tests the
// delta-based Compare fast path for shared-engine overlays against the
// generic merged-list comparison.

// TestCloneSharesUntouchedDeltas asserts the copy-on-write contract
// directly on the representation: cloned views share delta objects until
// one of them writes, and only the written relation is copied.
func TestCloneSharesUntouchedDeltas(t *testing.T) {
	d := NewInstance(
		F("p", value.Str("a")),
		F("q", value.Str("b")),
	)
	d.Clone() // freeze and demote to overlay
	d.Insert(F("p", value.Str("x")))
	d.Delete(F("q", value.Str("b")))

	c := d.Clone()
	pk, qk := RelKey{"p", 1}, RelKey{"q", 1}
	if d.deltas[pk] != c.deltas[pk] || d.deltas[qk] != c.deltas[qk] {
		t.Fatal("clone must share delta objects until a write")
	}
	if !d.deltas[pk].shared.Load() || !d.deltas[qk].shared.Load() {
		t.Fatal("shared flag not set on cloned deltas")
	}

	c.Insert(F("p", value.Str("y")))
	if d.deltas[pk] == c.deltas[pk] {
		t.Fatal("write through a shared delta must copy it first")
	}
	if d.deltas[qk] != c.deltas[qk] {
		t.Fatal("untouched relation was copied")
	}
	if d.Has(F("p", value.Str("y"))) {
		t.Fatal("write leaked into the sibling view")
	}
	if !c.Has(F("p", value.Str("x"))) || c.Has(F("q", value.Str("b"))) {
		t.Fatal("copied delta lost the pre-clone edits")
	}

	// The sibling's own later write must also copy: its map entry still
	// points at the shared object.
	d.Insert(F("p", value.Str("z")))
	if c.Has(F("p", value.Str("z"))) {
		t.Fatal("sibling write leaked into the clone")
	}
}

// TestCompareSharedMatchesGeneric differential-tests the shared-engine
// Compare fast path: random overlay pairs of one frozen base must order
// exactly as the generic sorted-fact-list comparison, including prefix
// cases where one view is a strict prefix of the other.
func TestCompareSharedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	genericCompare := func(a, b *Instance) int {
		fa, fb := SortFacts(a.Facts()), SortFacts(b.Facts())
		for i := 0; i < len(fa) && i < len(fb); i++ {
			if c := fa[i].Compare(fb[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(fa) < len(fb):
			return -1
		case len(fa) > len(fb):
			return 1
		}
		return 0
	}
	for round := 0; round < 200; round++ {
		base := randInstance(rng, 2+rng.Intn(20))
		a, b := base.Clone(), base.Clone()
		for _, v := range []*Instance{a, b} {
			for k := 0; k < rng.Intn(6); k++ {
				f := randFact(rng)
				if rng.Intn(2) == 0 {
					v.Insert(f)
				} else {
					v.Delete(f)
				}
			}
			// Bias towards prefix relationships: sometimes drop the
			// largest facts of the view.
			if rng.Intn(3) == 0 {
				fs := SortFacts(v.Facts())
				for k := len(fs) - 1; k >= 0 && k >= len(fs)-2; k-- {
					v.Delete(fs[k])
				}
			}
		}
		want := genericCompare(a, b)
		if got := a.Compare(b); got != want {
			t.Fatalf("round %d: Compare = %d, generic = %d\na = %v\nb = %v",
				round, got, want, a.Facts(), b.Facts())
		}
		if got := b.Compare(a); got != -want {
			t.Fatalf("round %d: Compare not antisymmetric", round)
		}
	}
}

// TestDeltaCacheInvalidation pins the gen-guarded Delta cache: repeated
// calls return the cached snapshot, mutations invalidate it, and
// flattening drops it along with the overlay.
func TestDeltaCacheInvalidation(t *testing.T) {
	d := NewInstance(F("p", value.Str("a")))
	d.Clone()
	d.Insert(F("p", value.Str("b")))

	d1 := d.Delta()
	d2 := d.Delta()
	if len(d1.Added) != 1 || len(d2.Added) != 1 {
		t.Fatalf("Delta = %v / %v, want one addition", d1, d2)
	}
	d.Insert(F("p", value.Str("c")))
	d3 := d.Delta()
	if len(d3.Added) != 2 {
		t.Fatalf("Delta after second insert = %v, want two additions", d3)
	}
	if len(d1.Added) != 1 {
		t.Fatal("earlier Delta snapshot was mutated by the rebuild")
	}
}

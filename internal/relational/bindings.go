package relational

import "repro/internal/term"

// AtomBindings collects the columns of atom a that are fixed under the
// current substitution — constants and already-bound variables — as Scan
// bindings, so the storage engine serves the atom from a hash index on
// exactly those columns. Repeated unbound variables within the atom are not
// expressible as bindings; callers enforce them when matching the yielded
// tuples. This is the shared binding derivation for the "null as ordinary
// constant" comparison mode (Definition 4); evaluation modes with other
// comparison semantics (SQL three-valued logic, match semantics) derive
// their own, stricter binding sets.
func AtomBindings(a term.Atom, subst term.Subst) []Binding {
	var bs []Binding
	for i, t := range a.Args {
		if !t.IsVar() {
			bs = append(bs, Binding{Pos: i, Val: t.Const})
		} else if v, ok := subst[t.Var]; ok {
			bs = append(bs, Binding{Pos: i, Val: v})
		}
	}
	return bs
}

package relational

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/value"
)

// This file property-tests the storage engine introduced with the indexed,
// interned instance representation: overlay (copy-on-write) views must be
// observationally identical to deep copies, and indexed scans must agree
// with naive filtered iteration on randomized instances and binding sets.

func randFact(rng *rand.Rand) Fact {
	preds := []string{"p", "q", "r"}
	pred := preds[rng.Intn(len(preds))]
	arity := 1 + rng.Intn(3)
	args := make(Tuple, arity)
	for i := range args {
		switch rng.Intn(4) {
		case 0:
			args[i] = value.Null()
		case 1:
			args[i] = value.Int(int64(rng.Intn(4)))
		default:
			args[i] = value.Str(fmt.Sprintf("c%d", rng.Intn(4)))
		}
	}
	return Fact{Pred: pred, Args: args}
}

func randInstance(rng *rand.Rand, n int) *Instance {
	d := NewInstance()
	for i := 0; i < n; i++ {
		d.Insert(randFact(rng))
	}
	return d
}

// refInstance is an independent reference implementation: a plain map from
// rendered fact strings (String is injective enough for the small random
// domain plus the pred/arity tag we add).
type refInstance map[string]Fact

func refKey(f Fact) string { return fmt.Sprintf("%s/%d%s", f.Pred, len(f.Args), f.Args.String()) }

func (r refInstance) insert(f Fact) bool {
	k := refKey(f)
	if _, ok := r[k]; ok {
		return false
	}
	r[k] = Fact{Pred: f.Pred, Args: f.Args.Clone()}
	return true
}

func (r refInstance) delete(f Fact) bool {
	k := refKey(f)
	if _, ok := r[k]; !ok {
		return false
	}
	delete(r, k)
	return true
}

func sameAsRef(t *testing.T, d *Instance, ref refInstance, label string) {
	t.Helper()
	if d.Len() != len(ref) {
		t.Fatalf("%s: Len = %d, ref = %d", label, d.Len(), len(ref))
	}
	seen := map[string]bool{}
	d.ForEach(func(f Fact) bool {
		k := refKey(f)
		if _, ok := ref[k]; !ok {
			t.Fatalf("%s: instance has %v, ref does not", label, f)
		}
		if seen[k] {
			t.Fatalf("%s: ForEach visited %v twice", label, f)
		}
		seen[k] = true
		return true
	})
	for _, f := range ref {
		if !d.Has(f) {
			t.Fatalf("%s: ref has %v, instance does not", label, f)
		}
	}
}

// TestOverlayMatchesCloneSemantics drives random insert/delete workloads
// through chains of clones and checks every view against an independent
// reference at every step, including Diff round-trips against the original.
func TestOverlayMatchesCloneSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		base := randInstance(rng, 2+rng.Intn(12))
		baseRef := refInstance{}
		base.ForEach(func(f Fact) bool { baseRef.insert(f); return true })

		// Fork a chain of overlays, mutating each.
		views := []*Instance{base}
		refs := []refInstance{baseRef}
		for v := 0; v < 3; v++ {
			src := rng.Intn(len(views))
			d := views[src].Clone()
			ref := refInstance{}
			for k, f := range refs[src] {
				ref[k] = f
			}
			for op := 0; op < 5+rng.Intn(10); op++ {
				f := randFact(rng)
				if rng.Intn(2) == 0 {
					if got, want := d.Insert(f), ref.insert(f); got != want {
						t.Fatalf("Insert(%v) = %v, ref = %v", f, got, want)
					}
				} else {
					if got, want := d.Delete(f), ref.delete(f); got != want {
						t.Fatalf("Delete(%v) = %v, ref = %v", f, got, want)
					}
				}
			}
			views = append(views, d)
			refs = append(refs, ref)
		}
		for i, d := range views {
			sameAsRef(t, d, refs[i], fmt.Sprintf("trial %d view %d", trial, i))
		}

		// Diff between any two views must round-trip: applying Δ(a, b)
		// to a clone of a yields b.
		for i := range views {
			for j := range views {
				dl := Diff(views[i], views[j])
				applied := views[i].Clone()
				for _, f := range dl.Removed {
					if !applied.Delete(f) {
						t.Fatalf("Diff removed %v not present in source", f)
					}
				}
				for _, f := range dl.Added {
					if !applied.Insert(f) {
						t.Fatalf("Diff added %v already present", f)
					}
				}
				if !applied.Equal(views[j]) {
					t.Fatalf("Diff round-trip failed: %v + %v != %v", views[i], dl, views[j])
				}
				if (dl.Size() == 0) != views[i].Equal(views[j]) {
					t.Fatalf("empty Δ iff equal violated")
				}
				if views[i].Equal(views[j]) != (views[i].Key() == views[j].Key()) {
					t.Fatalf("Key/Equal disagree")
				}
				if views[i].Equal(views[j]) && views[i].Fingerprint() != views[j].Fingerprint() {
					t.Fatalf("equal instances with different fingerprints")
				}
			}
		}
	}
}

// TestScanMatchesNaiveFilter cross-checks indexed scans against filtering
// the materialized fact list, over random instances, overlays, and binding
// subsets.
func TestScanMatchesNaiveFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := []value.V{value.Null(), value.Int(0), value.Int(1), value.Str("c0"), value.Str("c1"), value.Str("c2")}
	for trial := 0; trial < 120; trial++ {
		d := randInstance(rng, 3+rng.Intn(20))
		if rng.Intn(2) == 0 { // exercise the overlay path too
			d = d.Clone()
			for op := 0; op < rng.Intn(8); op++ {
				if rng.Intn(2) == 0 {
					d.Insert(randFact(rng))
				} else {
					d.Delete(randFact(rng))
				}
			}
		}
		pred := []string{"p", "q", "r"}[rng.Intn(3)]
		arity := 1 + rng.Intn(3)
		var bindings []Binding
		for pos := 0; pos < arity; pos++ {
			if rng.Intn(2) == 0 {
				bindings = append(bindings, Binding{Pos: pos, Val: vals[rng.Intn(len(vals))]})
			}
		}

		got := map[string]int{}
		d.Scan(pred, arity, bindings, func(tp Tuple) bool {
			got[tp.Key()]++
			return true
		})
		want := map[string]int{}
		for _, f := range d.Facts() {
			if f.Pred != pred || len(f.Args) != arity {
				continue
			}
			if matchBindings(f.Args, bindings) {
				want[f.Args.Key()]++
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: Scan found %d tuples, naive filter %d (pred=%s/%d bindings=%v in %v)",
				trial, len(got), len(want), pred, arity, bindings, d)
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("trial %d: tuple multiplicity mismatch", trial)
			}
		}
		// A second scan over the same bindings uses the cached index.
		again := 0
		d.Scan(pred, arity, bindings, func(Tuple) bool { again++; return true })
		if again != len(want) {
			t.Fatalf("trial %d: cached-index rescan returned %d, want %d", trial, again, len(want))
		}
	}
}

// TestRelationSizeAndRelKeys checks the O(1) size accounting and live
// relation enumeration across deletions, compaction, and overlays.
func TestRelationSizeAndRelKeys(t *testing.T) {
	d := NewInstance()
	for i := 0; i < 100; i++ {
		d.Insert(F("p", value.Int(int64(i))))
	}
	for i := 0; i < 90; i++ { // force compaction (tombstones dominate)
		d.Delete(F("p", value.Int(int64(i))))
	}
	if got := d.RelationSize("p", 1); got != 10 {
		t.Fatalf("RelationSize = %d, want 10", got)
	}
	if got := len(d.Relation("p", 1)); got != 10 {
		t.Fatalf("Relation rows = %d, want 10", got)
	}
	o := d.Clone()
	o.Insert(F("p", value.Int(1000)))
	o.Delete(F("p", value.Int(95)))
	o.Insert(F("znew", value.Str("x")))
	if got := o.RelationSize("p", 1); got != 10 {
		t.Fatalf("overlay RelationSize = %d, want 10", got)
	}
	if got, want := fmt.Sprint(o.RelKeys()), "[{p 1} {znew 1}]"; got != want {
		t.Fatalf("RelKeys = %v, want %v", got, want)
	}
	if got, want := fmt.Sprint(o.Preds()), "[p znew]"; got != want {
		t.Fatalf("Preds = %v, want %v", got, want)
	}
	// The base view is unaffected.
	if d.Has(F("p", value.Int(1000))) || !d.Has(F("p", value.Int(95))) {
		t.Fatal("overlay mutation leaked into base")
	}
}

// TestOverlayReAddAfterDelete is the regression test for the stale addOrder
// slot: deleting an overlay addition and re-adding the same fact must not
// duplicate it in iteration, keys, or sizes.
func TestOverlayReAddAfterDelete(t *testing.T) {
	base := NewInstance(F("r", value.Str("base")))
	c := base.Clone()
	f := F("r", value.Str("x"))
	for round := 0; round < 3; round++ { // add→delete→re-add, repeatedly
		if !c.Insert(f) {
			t.Fatalf("round %d: Insert = false", round)
		}
		if c.Insert(f) {
			t.Fatalf("round %d: duplicate Insert = true", round)
		}
		if c.Len() != 2 {
			t.Fatalf("round %d: Len = %d, want 2", round, c.Len())
		}
		if fs := c.Facts(); len(fs) != 2 {
			t.Fatalf("round %d: Facts = %v", round, fs)
		}
		count := 0
		c.ForEach(func(Fact) bool { count++; return true })
		if count != 2 {
			t.Fatalf("round %d: ForEach visited %d facts, want 2", round, count)
		}
		if n := c.RelationSize("r", 1); n != 2 {
			t.Fatalf("round %d: RelationSize = %d, want 2", round, n)
		}
		want := NewInstance(F("r", value.Str("base")), f)
		if !c.Equal(want) || c.Key() != want.Key() || c.Compare(want) != 0 {
			t.Fatalf("round %d: content diverged: %v", round, c)
		}
		if round < 2 {
			if !c.Delete(f) {
				t.Fatalf("round %d: Delete = false", round)
			}
			if c.Len() != 1 {
				t.Fatalf("round %d: Len after delete = %d", round, c.Len())
			}
		}
	}
}

// TestNoOpWritesKeepFastPath checks that inserting an existing base fact or
// deleting an absent one does not allocate overlay deltas (which would
// permanently disable the relation's cached sorted view).
func TestNoOpWritesKeepFastPath(t *testing.T) {
	base := NewInstance(F("r", value.Str("a")), F("s", value.Str("b")))
	c := base.Clone()
	if c.Insert(F("r", value.Str("a"))) {
		t.Fatal("duplicate insert reported true")
	}
	if c.Delete(F("r", value.Str("zzz"))) || c.Delete(F("nosuch", value.Str("x"))) {
		t.Fatal("no-op delete reported true")
	}
	if len(c.deltas) != 0 {
		t.Fatalf("no-op writes allocated deltas: %v", c.dorder)
	}
}

// TestOverlayFlattening drives an overlay far past its base so it folds back
// into a privately owned engine, and checks that neither the view's contents
// nor its siblings change across the representation switch.
func TestOverlayFlattening(t *testing.T) {
	base := NewInstance()
	for i := 0; i < 50; i++ {
		base.Insert(F("p", value.Int(int64(i))))
	}
	a := base.Clone()
	b := base.Clone()
	for i := 0; i < 600; i++ { // far beyond the flatten threshold
		a.Insert(F("q", value.Int(int64(i))))
	}
	for i := 0; i < 25; i++ {
		a.Delete(F("p", value.Int(int64(i))))
	}
	if a.Len() != 50+600-25 {
		t.Fatalf("a.Len = %d", a.Len())
	}
	if a.overlay() {
		t.Fatalf("expected a to have flattened back to owner mode (deltaN=%d)", a.deltaN)
	}
	for i := 0; i < 600; i++ {
		if !a.Has(F("q", value.Int(int64(i)))) {
			t.Fatalf("flattened view lost q(%d)", i)
		}
	}
	for i := 0; i < 25; i++ {
		if a.Has(F("p", value.Int(int64(i)))) {
			t.Fatalf("flattened view resurrected p(%d)", i)
		}
	}
	// Siblings and base still see the original contents.
	if b.Len() != 50 || base.Len() != 50 {
		t.Fatalf("sibling/base affected by flattening: %d/%d", b.Len(), base.Len())
	}
	// A flattened view is writable and Diff against its old siblings still
	// works through the generic path.
	a.Insert(F("znew", value.Str("x")))
	dl := Diff(base, a)
	if got := dl.Size(); got != 601+25 {
		t.Fatalf("Diff size = %d, want %d (601 added, 25 removed)", got, 601+25)
	}
}

// TestFactsCachedSorted checks that Facts keeps its sorted contract and that
// the cache is invalidated by mutations on both owner and overlay paths.
func TestFactsCachedSorted(t *testing.T) {
	d := NewInstance(F("b", value.Int(2)), F("a", value.Int(9)), F("a", value.Int(1)))
	check := func(d *Instance, wantLen int) {
		fs := d.Facts()
		if len(fs) != wantLen {
			t.Fatalf("Facts len = %d, want %d", len(fs), wantLen)
		}
		for i := 1; i < len(fs); i++ {
			if fs[i-1].Compare(fs[i]) >= 0 {
				t.Fatalf("Facts not strictly sorted: %v", fs)
			}
		}
	}
	check(d, 3)
	check(d, 3) // cached path
	d.Insert(F("c", value.Str("x")))
	check(d, 4)
	o := d.Clone()
	o.Delete(F("a", value.Int(1)))
	check(o, 3)
	o.Insert(F("a", value.Int(0)))
	check(o, 4)
	// Mutating the returned slice must not corrupt the cache.
	fs := o.Facts()
	fs[0] = Fact{Pred: "corrupt"}
	check(o, 4)
	if o.Facts()[0].Pred == "corrupt" {
		t.Fatal("Facts cache aliased to caller slice")
	}
}

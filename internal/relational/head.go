package relational

// Head is a mutable view over a frozen anchor instance: the anchor is the
// immutable snapshot long-lived readers (prepared query plans, cached repair
// enumerations, base groundings) are anchored to, and the current instance is
// an overlay of the anchor advanced fact-by-fact through Apply. All engines
// read the current instance; anything that wants O(|Δ|) patching diffs
// against the anchor, whose distance from the current instance is Drift().
//
// Head is not safe for concurrent mutation; readers of Anchor() are safe
// because the anchor is never written after it becomes the anchor.
type Head struct {
	anchor *Instance
	cur    *Instance
	// Cumulative effective delta from anchor to cur, keyed by Fact.Key so a
	// removal re-added (or an addition re-removed) cancels instead of
	// accumulating. Invariant: added/removed are disjoint and every entry is
	// an actual difference between anchor and cur.
	added   map[string]Fact
	removed map[string]Fact
}

// NewHead freezes d and returns a head anchored at d with an identical
// current instance. d must not be mutated by the caller afterwards.
func NewHead(d *Instance) *Head {
	d.Freeze()
	return &Head{
		anchor:  d,
		cur:     d.Clone(),
		added:   make(map[string]Fact),
		removed: make(map[string]Fact),
	}
}

// Anchor returns the frozen snapshot the cumulative delta is relative to.
// It is immutable until the next Rebase.
func (h *Head) Anchor() *Instance { return h.anchor }

// Current returns the live instance. Callers must treat it as read-only;
// all mutation goes through Apply.
func (h *Head) Current() *Instance { return h.cur }

// Apply advances the current instance by dl (removals first, then
// additions) and returns the effective delta: the facts whose presence
// actually changed, with both halves sorted per the Delta contract. No-op
// edits (deleting an absent fact, inserting a present one) are dropped.
func (h *Head) Apply(dl Delta) Delta {
	var eff Delta
	for _, f := range dl.Removed {
		if h.cur.Delete(f) {
			eff.Removed = append(eff.Removed, f)
			h.note(f, false)
		}
	}
	for _, f := range dl.Added {
		if h.cur.Insert(f) {
			eff.Added = append(eff.Added, f)
			h.note(f, true)
		}
	}
	SortFacts(eff.Removed)
	SortFacts(eff.Added)
	return eff
}

func (h *Head) note(f Fact, added bool) {
	key := f.Key()
	if added {
		if _, ok := h.removed[key]; ok {
			delete(h.removed, key)
			return
		}
		h.added[key] = f
	} else {
		if _, ok := h.added[key]; ok {
			delete(h.added, key)
			return
		}
		h.removed[key] = f
	}
}

// Delta returns the cumulative anchor→current delta with sorted halves.
func (h *Head) Delta() Delta {
	var dl Delta
	if len(h.removed) > 0 {
		dl.Removed = make([]Fact, 0, len(h.removed))
		for _, f := range h.removed {
			dl.Removed = append(dl.Removed, f)
		}
		SortFacts(dl.Removed)
	}
	if len(h.added) > 0 {
		dl.Added = make([]Fact, 0, len(h.added))
		for _, f := range h.added {
			dl.Added = append(dl.Added, f)
		}
		SortFacts(dl.Added)
	}
	return dl
}

// Rebase makes the current contents the new anchor and resets the
// cumulative delta to empty. Owners call it before the overlay's delta
// outgrows the shared engine (see Instance flattening), which would
// silently break the shared-engine O(|Δ|) diff path long-lived anchors
// rely on. Costs O(|D|); amortize it over many Applies.
func (h *Head) Rebase() {
	// Build the new anchor as a private owner so its overlay delta restarts
	// at zero; clones of the old chain keep the old engine and stay valid.
	na := NewInstance()
	h.cur.ForEach(func(f Fact) bool {
		na.Insert(f)
		return true
	})
	na.Freeze()
	h.anchor = na
	h.cur = na.Clone()
	h.added = make(map[string]Fact)
	h.removed = make(map[string]Fact)
}

// Drift reports how many facts separate the current instance from the
// anchor (the size of Delta()).
func (h *Head) Drift() int { return len(h.added) + len(h.removed) }

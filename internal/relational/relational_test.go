package relational

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func s(v string) value.V { return value.Str(v) }
func n() value.V         { return value.Null() }
func i(x int64) value.V  { return value.Int(x) }

func TestTupleKeyInjective(t *testing.T) {
	tuples := []Tuple{
		{s("a"), s("b")},
		{s("a,b")},
		{s("a"), s("b"), n()},
		{s("a"), n(), s("b")},
		{n(), s("a"), s("b")},
		{i(1), i(2)},
		{s("1"), s("2")},
		{},
	}
	seen := map[string]Tuple{}
	for _, tp := range tuples {
		k := tp.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %v and %v", prev, tp)
		}
		seen[k] = tp
	}
}

func TestTupleProjectAndHasNull(t *testing.T) {
	tp := Tuple{s("a"), n(), s("c")}
	if !tp.HasNull() {
		t.Error("HasNull false for tuple with null")
	}
	p := tp.Project([]int{0, 2})
	if !p.Equal(Tuple{s("a"), s("c")}) {
		t.Errorf("Project = %v", p)
	}
	if p.HasNull() {
		t.Error("projection dropped null but HasNull still true")
	}
	if got := tp.Project(nil); len(got) != 0 {
		t.Errorf("empty projection = %v", got)
	}
}

func TestFactStringAndEqual(t *testing.T) {
	f := F("Course", s("CS27"), i(21), s("W04"))
	if f.String() != "Course(CS27,21,W04)" {
		t.Errorf("String = %q", f.String())
	}
	if !f.Equal(F("Course", s("CS27"), i(21), s("W04"))) {
		t.Error("Equal broken")
	}
	if f.Equal(F("Course", s("CS27"), i(21))) {
		t.Error("arity must matter")
	}
	zero := F("True")
	if zero.String() != "True" {
		t.Errorf("0-ary String = %q", zero.String())
	}
}

func TestInstanceSetSemantics(t *testing.T) {
	// Example 7: with set semantics, inserting P(a,b) twice keeps one copy.
	d := NewInstance()
	if !d.Insert(F("P", s("a"), s("b"))) {
		t.Error("first insert reported duplicate")
	}
	if d.Insert(F("P", s("a"), s("b"))) {
		t.Error("second insert reported new")
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
	if !d.Delete(F("P", s("a"), s("b"))) {
		t.Error("delete reported missing")
	}
	if d.Delete(F("P", s("a"), s("b"))) {
		t.Error("second delete reported present")
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d, want 0", d.Len())
	}
}

func TestInstanceInsertClonesTuple(t *testing.T) {
	args := Tuple{s("a")}
	d := NewInstance()
	d.Insert(Fact{Pred: "P", Args: args})
	args[0] = s("mutated")
	if !d.Has(F("P", s("a"))) {
		t.Error("instance shares caller's tuple storage")
	}
}

func TestInstanceCloneIndependent(t *testing.T) {
	d := NewInstance(F("P", s("a")), F("Q", s("b"), n()))
	c := d.Clone()
	c.Delete(F("P", s("a")))
	c.Insert(F("R", i(1)))
	if !d.Has(F("P", s("a"))) || d.Has(F("R", i(1))) {
		t.Error("Clone not independent")
	}
	if !d.Equal(NewInstance(F("Q", s("b"), n()), F("P", s("a")))) {
		t.Error("Equal broken after clone mutation")
	}
}

func TestInstanceRelationSorted(t *testing.T) {
	d := NewInstance(
		F("R", s("b"), i(2)),
		F("R", s("a"), i(9)),
		F("R", s("a"), i(1)),
		F("S", s("z")),
	)
	rows := d.Relation("R", 2)
	if len(rows) != 3 {
		t.Fatalf("Relation rows = %d", len(rows))
	}
	if !rows[0].Equal(Tuple{s("a"), i(1)}) || !rows[2].Equal(Tuple{s("b"), i(2)}) {
		t.Errorf("Relation not sorted: %v", rows)
	}
	if got := d.Relation("R", 3); len(got) != 0 {
		t.Error("arity mismatch must return nothing")
	}
}

func TestActiveDomainExcludesNull(t *testing.T) {
	d := NewInstance(F("P", s("a"), n()), F("Q", i(3)), F("Q", i(3)))
	adom := d.ActiveDomain()
	if len(adom) != 2 {
		t.Fatalf("adom = %v", adom)
	}
	for _, v := range adom {
		if v.IsNull() {
			t.Error("active domain contains null")
		}
	}
}

func TestProjectDefinition3(t *testing.T) {
	// Example 10: D with P(a,b,a), P(b,c,a), R(a,5), R(a,2);
	// A(ψ) = {P[1],P[2],R[1],R[2]} (0-based: P{0,1}, R{0,1}).
	d := NewInstance(
		F("P", s("a"), s("b"), s("a")),
		F("P", s("b"), s("c"), s("a")),
		F("R", s("a"), i(5)),
		F("R", s("a"), i(2)),
	)
	proj := d.Project(map[string][]int{"P": {0, 1}, "R": {0, 1}})
	want := NewInstance(
		F("P", s("a"), s("b")),
		F("P", s("b"), s("c")),
		F("R", s("a"), i(5)),
		F("R", s("a"), i(2)),
	)
	if !proj.Equal(want) {
		t.Errorf("Project = %v, want %v", proj, want)
	}

	// A(γ) = {P[1],P[3],R[1],R[2]} (0-based P{0,2}, R{0,1}): P collapses.
	proj2 := d.Project(map[string][]int{"P": {0, 2}, "R": {0, 1}})
	want2 := NewInstance(
		F("P", s("a"), s("a")),
		F("P", s("b"), s("a")),
		F("R", s("a"), i(5)),
		F("R", s("a"), i(2)),
	)
	if !proj2.Equal(want2) {
		t.Errorf("Project(γ) = %v, want %v", proj2, want2)
	}
}

func TestProjectCanCollapseTuples(t *testing.T) {
	d := NewInstance(F("P", s("a"), s("x")), F("P", s("a"), s("y")))
	proj := d.Project(map[string][]int{"P": {0}})
	if proj.Len() != 1 {
		t.Errorf("projection should collapse to one tuple, got %v", proj)
	}
}

func TestProjectToZeroAry(t *testing.T) {
	d := NewInstance(F("P", s("a"), s("x")))
	proj := d.Project(map[string][]int{"P": {}})
	if proj.Len() != 1 || !proj.Has(F("P")) {
		t.Errorf("0-ary projection = %v", proj)
	}
}

func TestDiff(t *testing.T) {
	// Example 16: D = {Q(a,b), P(a,c)}, D2 = {P(a,c), Q(a,null)}.
	d := NewInstance(F("Q", s("a"), s("b")), F("P", s("a"), s("c")))
	d2 := NewInstance(F("P", s("a"), s("c")), F("Q", s("a"), n()))
	dl := Diff(d, d2)
	if len(dl.Removed) != 1 || !dl.Removed[0].Equal(F("Q", s("a"), s("b"))) {
		t.Errorf("Removed = %v", dl.Removed)
	}
	if len(dl.Added) != 1 || !dl.Added[0].Equal(F("Q", s("a"), n())) {
		t.Errorf("Added = %v", dl.Added)
	}
	if dl.Size() != 2 {
		t.Errorf("Size = %d", dl.Size())
	}
	empty := Diff(d, d.Clone())
	if empty.Size() != 0 {
		t.Errorf("self diff = %v", empty)
	}
}

func TestSchema(t *testing.T) {
	sc := NewSchema().MustAddRelation("Course", "Code", "ID", "Term")
	if err := sc.AddRelation("Course", "X"); err == nil {
		t.Error("duplicate relation accepted")
	}
	if err := sc.AddRelation("Bad", "A", "A"); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if err := sc.AddRelation(""); err == nil {
		t.Error("empty name accepted")
	}
	r, ok := sc.Relation("Course")
	if !ok || r.Arity() != 3 || r.Attrs[2] != "Term" {
		t.Errorf("Relation lookup = %+v, %v", r, ok)
	}
	if len(sc.Relations()) != 1 {
		t.Error("Relations count wrong")
	}
	if got := Anon(3); got[0] != "A1" || got[2] != "A3" {
		t.Errorf("Anon = %v", got)
	}
}

func TestInstanceKeyCanonical(t *testing.T) {
	d1 := NewInstance(F("P", s("a")), F("Q", s("b")))
	d2 := NewInstance(F("Q", s("b")), F("P", s("a")))
	if d1.Key() != d2.Key() {
		t.Error("Key not canonical across insertion orders")
	}
	d2.Insert(F("P", s("c")))
	if d1.Key() == d2.Key() {
		t.Error("distinct instances share a key")
	}
}

func TestFormatTable(t *testing.T) {
	sc := NewSchema().MustAddRelation("Student", "ID", "Name")
	d := NewInstance(F("Student", i(21), s("Ann")), F("Student", i(45), s("Paul")))
	r, _ := sc.Relation("Student")
	out := FormatTable(d, r)
	if !strings.Contains(out, "ID") || !strings.Contains(out, "Ann") || !strings.Contains(out, "Paul") {
		t.Errorf("FormatTable output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("FormatTable lines = %d, want 3", len(lines))
	}
}

func TestInstanceString(t *testing.T) {
	d := NewInstance(F("Q", s("b")), F("P", s("a")))
	if got := d.String(); got != "{P(a), Q(b)}" {
		t.Errorf("String = %q", got)
	}
}

// genTuple builds a tuple from quick-generated data.
func genTuple(raw []uint8) Tuple {
	tp := make(Tuple, 0, len(raw)%5)
	for idx := 0; idx < len(raw) && idx < 4; idx++ {
		switch raw[idx] % 3 {
		case 0:
			tp = append(tp, n())
		case 1:
			tp = append(tp, i(int64(raw[idx])))
		default:
			tp = append(tp, s(string(rune('a'+raw[idx]%26))))
		}
	}
	return tp
}

func TestQuickDeltaInvariants(t *testing.T) {
	// For random instance pairs: Diff(d,d)=∅, Removed ⊆ d, Added ⊆ e,
	// and applying the delta to d yields e.
	f := func(raws [][]uint8) bool {
		d, e := NewInstance(), NewInstance()
		for idx, raw := range raws {
			fct := Fact{Pred: "P", Args: genTuple(raw)}
			if idx%2 == 0 {
				d.Insert(fct)
			}
			if idx%3 == 0 {
				e.Insert(fct)
			}
		}
		dl := Diff(d, e)
		applied := d.Clone()
		for _, r := range dl.Removed {
			if !d.Has(r) || e.Has(r) {
				return false
			}
			applied.Delete(r)
		}
		for _, a := range dl.Added {
			if d.Has(a) || !e.Has(a) {
				return false
			}
			applied.Insert(a)
		}
		return applied.Equal(e) && Diff(d, d).Size() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickProjectionMonotone(t *testing.T) {
	// |D^A| <= |D| and every projected fact comes from some original fact.
	f := func(raws [][]uint8) bool {
		d := NewInstance()
		for _, raw := range raws {
			tp := genTuple(raw)
			if len(tp) >= 2 {
				d.Insert(Fact{Pred: "P", Args: tp[:2]})
			}
		}
		proj := d.Project(map[string][]int{"P": {0}})
		if proj.Len() > d.Len() {
			return false
		}
		for _, pf := range proj.Facts() {
			found := false
			for _, of := range d.Facts() {
				if of.Args[0].Eq(pf.Args[0]) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

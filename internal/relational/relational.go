// Package relational implements the database substrate of the paper: finite
// relational instances over a schema Σ = (U, R, B) whose domain U contains
// the distinguished constant null (Section 2). Instances are finite sets of
// ground atoms with set semantics (the paper's standing assumption after
// Example 7), and the package provides the projection D^A of Definition 3,
// active domains, and the symmetric difference Δ(D, D′) underlying repairs.
package relational

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Tuple is a finite sequence of constants from U.
type Tuple []value.V

// Key returns an injective encoding of the tuple for use in set membership.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Equal reports whether two tuples are identical (null compares equal to
// null, per the ordinary-constant treatment of Definition 4).
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Eq(u[i]) {
			return false
		}
	}
	return true
}

// HasNull reports whether any position of the tuple is null.
func (t Tuple) HasNull() bool {
	for _, v := range t {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Project returns the subtuple at the given positions (0-based), in the order
// given. This is Π_A(t̄) from Definition 3.
func (t Tuple) Project(positions []int) Tuple {
	p := make(Tuple, len(positions))
	for i, pos := range positions {
		p[i] = t[pos]
	}
	return p
}

// Compare orders tuples lexicographically for deterministic output.
func (t Tuple) Compare(u Tuple) int {
	for i := 0; i < len(t) && i < len(u); i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	default:
		return 0
	}
}

// Fact is a ground database atom P(c1, ..., cn).
type Fact struct {
	Pred string
	Args Tuple
}

// F builds a Fact from bare values.
func F(pred string, args ...value.V) Fact {
	return Fact{Pred: pred, Args: Tuple(args)}
}

func (f Fact) String() string {
	if len(f.Args) == 0 {
		return f.Pred
	}
	return f.Pred + f.Args.String()
}

// Key returns an injective encoding of the fact.
func (f Fact) Key() string { return f.Pred + "/" + fmt.Sprint(len(f.Args)) + ":" + f.Args.Key() }

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool { return f.Pred == g.Pred && f.Args.Equal(g.Args) }

// Compare orders facts by predicate, then tuple, for deterministic output.
func (f Fact) Compare(g Fact) int {
	if f.Pred != g.Pred {
		if f.Pred < g.Pred {
			return -1
		}
		return 1
	}
	return f.Args.Compare(g.Args)
}

// SortFacts sorts a fact slice in place and returns it.
func SortFacts(fs []Fact) []Fact {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Compare(fs[j]) < 0 })
	return fs
}

// Relation describes one predicate of the schema: a name and an ordered list
// of attribute names. R[i] in the paper denotes the attribute at (1-based)
// position i; this package uses 0-based positions internally and formats them
// 1-based to match the paper.
type Relation struct {
	Name  string
	Attrs []string
}

// Arity returns the number of attributes.
func (r Relation) Arity() int { return len(r.Attrs) }

// Schema is the database schema: the set R of database predicates. The
// domain U is implicit (all of package value) and the builtins B are fixed.
type Schema struct {
	rels  map[string]Relation
	order []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{rels: make(map[string]Relation)}
}

// MustAddRelation adds a relation, panicking on duplicates. Attribute names
// are optional; pass generated names via Anon if unknown.
func (s *Schema) MustAddRelation(name string, attrs ...string) *Schema {
	if err := s.AddRelation(name, attrs...); err != nil {
		panic(err)
	}
	return s
}

// AddRelation adds a relation to the schema.
func (s *Schema) AddRelation(name string, attrs ...string) error {
	if name == "" {
		return fmt.Errorf("relational: empty relation name")
	}
	if _, dup := s.rels[name]; dup {
		return fmt.Errorf("relational: duplicate relation %q", name)
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return fmt.Errorf("relational: relation %q has an empty attribute name", name)
		}
		if seen[a] {
			return fmt.Errorf("relational: relation %q repeats attribute %q", name, a)
		}
		seen[a] = true
	}
	s.rels[name] = Relation{Name: name, Attrs: append([]string(nil), attrs...)}
	s.order = append(s.order, name)
	return nil
}

// Anon generates n anonymous attribute names A1..An.
func Anon(n int) []string {
	attrs := make([]string, n)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i+1)
	}
	return attrs
}

// Relation looks up a relation by name.
func (s *Schema) Relation(name string) (Relation, bool) {
	r, ok := s.rels[name]
	return r, ok
}

// Relations returns the relations in declaration order.
func (s *Schema) Relations() []Relation {
	out := make([]Relation, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.rels[n])
	}
	return out
}

// Instance is a finite database instance: a set of ground atoms.
// The zero value is not usable; call NewInstance.
type Instance struct {
	facts map[string]Fact // key -> fact
}

// NewInstance returns an empty instance, optionally populated with facts.
func NewInstance(facts ...Fact) *Instance {
	d := &Instance{facts: make(map[string]Fact, len(facts))}
	for _, f := range facts {
		d.Insert(f)
	}
	return d
}

// Insert adds a fact (set semantics: duplicates are absorbed). It reports
// whether the fact was new.
func (d *Instance) Insert(f Fact) bool {
	k := f.Key()
	if _, ok := d.facts[k]; ok {
		return false
	}
	d.facts[k] = Fact{Pred: f.Pred, Args: f.Args.Clone()}
	return true
}

// Delete removes a fact, reporting whether it was present.
func (d *Instance) Delete(f Fact) bool {
	k := f.Key()
	if _, ok := d.facts[k]; !ok {
		return false
	}
	delete(d.facts, k)
	return true
}

// Has reports membership.
func (d *Instance) Has(f Fact) bool {
	_, ok := d.facts[f.Key()]
	return ok
}

// Len returns the number of facts.
func (d *Instance) Len() int { return len(d.facts) }

// Facts returns all facts sorted deterministically.
func (d *Instance) Facts() []Fact {
	out := make([]Fact, 0, len(d.facts))
	for _, f := range d.facts {
		out = append(out, f)
	}
	return SortFacts(out)
}

// Relation returns the sorted tuples of the given predicate with the given
// arity.
func (d *Instance) Relation(pred string, arity int) []Tuple {
	var out []Tuple
	for _, f := range d.facts {
		if f.Pred == pred && len(f.Args) == arity {
			out = append(out, f.Args)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Preds returns the sorted predicate names occurring in the instance.
func (d *Instance) Preds() []string {
	seen := map[string]bool{}
	for _, f := range d.facts {
		seen[f.Pred] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the instance.
func (d *Instance) Clone() *Instance {
	c := &Instance{facts: make(map[string]Fact, len(d.facts))}
	for k, f := range d.facts {
		c.facts[k] = f
	}
	return c
}

// Equal reports set equality of instances.
func (d *Instance) Equal(e *Instance) bool {
	if len(d.facts) != len(e.facts) {
		return false
	}
	for k := range d.facts {
		if _, ok := e.facts[k]; !ok {
			return false
		}
	}
	return true
}

// Key returns a canonical encoding of the whole instance (used to memoize
// repair search states).
func (d *Instance) Key() string {
	keys := make([]string, 0, len(d.facts))
	for k := range d.facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// String renders the instance as a sorted set of facts.
func (d *Instance) String() string {
	fs := d.Facts()
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// ActiveDomain returns adom(D): the set of constants occurring in the
// instance, sorted, excluding null (null is accounted for separately in
// Proposition 1: adom(D) ∪ const(IC) ∪ {null}).
func (d *Instance) ActiveDomain() []value.V {
	seen := map[string]value.V{}
	for _, f := range d.facts {
		for _, v := range f.Args {
			if !v.IsNull() {
				seen[v.Key()] = v
			}
		}
	}
	out := make([]value.V, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Project computes D^A of Definition 3: every fact of a predicate named in
// positions is projected onto the given 0-based attribute positions (sorted
// ascending); predicates absent from positions are dropped. Projected
// predicates keep their names (their arity changes, which keeps them distinct
// in this package's Fact keys).
func (d *Instance) Project(positions map[string][]int) *Instance {
	out := NewInstance()
	for _, f := range d.facts {
		pos, ok := positions[f.Pred]
		if !ok || !fits(pos, len(f.Args)) {
			continue
		}
		out.Insert(Fact{Pred: f.Pred, Args: f.Args.Project(pos)})
	}
	return out
}

// fits reports whether every position is valid for the given arity (facts
// of a same-named predicate with a smaller arity are skipped rather than
// panicking).
func fits(pos []int, arity int) bool {
	for _, p := range pos {
		if p < 0 || p >= arity {
			return false
		}
	}
	return true
}

// Delta is the symmetric difference Δ(D, D′) split into its two halves:
// Removed = D \ D′ and Added = D′ \ D, each sorted.
type Delta struct {
	Removed []Fact
	Added   []Fact
}

// Size returns |Δ|.
func (dl Delta) Size() int { return len(dl.Removed) + len(dl.Added) }

// Facts returns all atoms of the symmetric difference, sorted.
func (dl Delta) Facts() []Fact {
	out := make([]Fact, 0, dl.Size())
	out = append(out, dl.Removed...)
	out = append(out, dl.Added...)
	return SortFacts(out)
}

func (dl Delta) String() string {
	fs := dl.Facts()
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Diff computes Δ(d, e).
func Diff(d, e *Instance) Delta {
	var dl Delta
	for k, f := range d.facts {
		if _, ok := e.facts[k]; !ok {
			dl.Removed = append(dl.Removed, f)
		}
	}
	for k, f := range e.facts {
		if _, ok := d.facts[k]; !ok {
			dl.Added = append(dl.Added, f)
		}
	}
	SortFacts(dl.Removed)
	SortFacts(dl.Added)
	return dl
}

// FormatTable renders one relation as an aligned text table in the style of
// the paper's examples, with attribute headers when the schema knows them.
func FormatTable(d *Instance, rel Relation) string {
	tuples := d.Relation(rel.Name, rel.Arity())
	headers := append([]string{rel.Name}, rel.Attrs...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	rows := make([][]string, len(tuples))
	for r, t := range tuples {
		row := make([]string, len(headers))
		row[0] = ""
		for i, v := range t {
			cell := v.String()
			row[i+1] = cell
			if len(cell) > widths[i+1] {
				widths[i+1] = len(cell)
			}
		}
		rows[r] = row
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

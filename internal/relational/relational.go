// Package relational implements the database substrate of the paper: finite
// relational instances over a schema Σ = (U, R, B) whose domain U contains
// the distinguished constant null (Section 2). Instances are finite sets of
// ground atoms with set semantics (the paper's standing assumption after
// Example 7), and the package provides the projection D^A of Definition 3,
// active domains, and the symmetric difference Δ(D, D′) underlying repairs.
package relational

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Tuple is a finite sequence of constants from U.
type Tuple []value.V

// Key returns an injective encoding of the tuple for use in set membership:
// each constant's self-delimiting content encoding (value.V.AppendKey). The
// encoding is compact, allocation-cheap and stable across runs — it depends
// only on the tuple's content, never on interning history — but not
// human-readable; use String for display.
func (t Tuple) Key() string {
	return string(appendTupleKey(make([]byte, 0, tupleKeyLen(t)), t))
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Equal reports whether two tuples are identical (null compares equal to
// null, per the ordinary-constant treatment of Definition 4).
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Eq(u[i]) {
			return false
		}
	}
	return true
}

// HasNull reports whether any position of the tuple is null.
func (t Tuple) HasNull() bool {
	for _, v := range t {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Project returns the subtuple at the given positions (0-based), in the order
// given. This is Π_A(t̄) from Definition 3.
func (t Tuple) Project(positions []int) Tuple {
	p := make(Tuple, len(positions))
	for i, pos := range positions {
		p[i] = t[pos]
	}
	return p
}

// Compare orders tuples lexicographically for deterministic output.
func (t Tuple) Compare(u Tuple) int {
	for i := 0; i < len(t) && i < len(u); i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	default:
		return 0
	}
}

// Fact is a ground database atom P(c1, ..., cn).
type Fact struct {
	Pred string
	Args Tuple
}

// F builds a Fact from bare values.
func F(pred string, args ...value.V) Fact {
	return Fact{Pred: pred, Args: Tuple(args)}
}

func (f Fact) String() string {
	if len(f.Args) == 0 {
		return f.Pred
	}
	return f.Pred + f.Args.String()
}

// Key returns an injective encoding of the fact: length-prefixed predicate
// name, arity, then the argument content encodings. Keys are self-delimiting,
// so concatenations of fact keys (Instance.Key) remain injective — and, being
// content-addressed, identical across runs and processes.
func (f Fact) Key() string {
	b := make([]byte, 0, 8+len(f.Pred)+tupleKeyLen(f.Args))
	b = appendU32(b, uint32(len(f.Pred)))
	b = append(b, f.Pred...)
	b = appendU32(b, uint32(len(f.Args)))
	b = appendTupleKey(b, f.Args)
	return string(b)
}

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool { return f.Pred == g.Pred && f.Args.Equal(g.Args) }

// Hash returns the 64-bit identity hash of the fact (the per-fact term of
// Instance.Fingerprint). Equal facts hash equally; distinct facts collide
// only with FNV-level probability, so hot-path dedup maps can bucket by this
// hash and confirm with Equal instead of materializing string keys.
func (f Fact) Hash() uint64 { return factHash(f) }

// Compare orders facts by predicate, then tuple, for deterministic output.
func (f Fact) Compare(g Fact) int {
	if f.Pred != g.Pred {
		if f.Pred < g.Pred {
			return -1
		}
		return 1
	}
	return f.Args.Compare(g.Args)
}

// SortFacts sorts a fact slice in place and returns it.
func SortFacts(fs []Fact) []Fact {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Compare(fs[j]) < 0 })
	return fs
}

// Relation describes one predicate of the schema: a name and an ordered list
// of attribute names. R[i] in the paper denotes the attribute at (1-based)
// position i; this package uses 0-based positions internally and formats them
// 1-based to match the paper.
type Relation struct {
	Name  string
	Attrs []string
}

// Arity returns the number of attributes.
func (r Relation) Arity() int { return len(r.Attrs) }

// Schema is the database schema: the set R of database predicates. The
// domain U is implicit (all of package value) and the builtins B are fixed.
type Schema struct {
	rels  map[string]Relation
	order []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{rels: make(map[string]Relation)}
}

// MustAddRelation adds a relation, panicking on duplicates. Attribute names
// are optional; pass generated names via Anon if unknown.
func (s *Schema) MustAddRelation(name string, attrs ...string) *Schema {
	if err := s.AddRelation(name, attrs...); err != nil {
		panic(err)
	}
	return s
}

// AddRelation adds a relation to the schema.
func (s *Schema) AddRelation(name string, attrs ...string) error {
	if name == "" {
		return fmt.Errorf("relational: empty relation name")
	}
	if _, dup := s.rels[name]; dup {
		return fmt.Errorf("relational: duplicate relation %q", name)
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return fmt.Errorf("relational: relation %q has an empty attribute name", name)
		}
		if seen[a] {
			return fmt.Errorf("relational: relation %q repeats attribute %q", name, a)
		}
		seen[a] = true
	}
	s.rels[name] = Relation{Name: name, Attrs: append([]string(nil), attrs...)}
	s.order = append(s.order, name)
	return nil
}

// Anon generates n anonymous attribute names A1..An.
func Anon(n int) []string {
	attrs := make([]string, n)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i+1)
	}
	return attrs
}

// Relation looks up a relation by name.
func (s *Schema) Relation(name string) (Relation, bool) {
	r, ok := s.rels[name]
	return r, ok
}

// Relations returns the relations in declaration order.
func (s *Schema) Relations() []Relation {
	out := make([]Relation, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.rels[n])
	}
	return out
}

// Delta is the symmetric difference Δ(D, D′) split into its two halves:
// Removed = D \ D′ and Added = D′ \ D, each sorted.
type Delta struct {
	Removed []Fact
	Added   []Fact
}

// Size returns |Δ|.
func (dl Delta) Size() int { return len(dl.Removed) + len(dl.Added) }

// Facts returns all atoms of the symmetric difference, sorted.
func (dl Delta) Facts() []Fact {
	out := make([]Fact, 0, dl.Size())
	out = append(out, dl.Removed...)
	out = append(out, dl.Added...)
	return SortFacts(out)
}

func (dl Delta) String() string {
	fs := dl.Facts()
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// FormatTable renders one relation as an aligned text table in the style of
// the paper's examples, with attribute headers when the schema knows them.
func FormatTable(d *Instance, rel Relation) string {
	tuples := d.Relation(rel.Name, rel.Arity())
	headers := append([]string{rel.Name}, rel.Attrs...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	rows := make([][]string, len(tuples))
	for r, t := range tuples {
		row := make([]string, len(headers))
		row[0] = ""
		for i, v := range t {
			cell := v.String()
			row[i+1] = cell
			if len(cell) > widths[i+1] {
				widths[i+1] = len(cell)
			}
		}
		rows[r] = row
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

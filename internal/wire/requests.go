package wire

// Request and response bodies of the cqad HTTP API. They live here, next to
// the payload types they embed, so CLI clients, the daemon, and tests share
// one schema definition — in particular the engine-selection fields accept
// exactly the names of the internal/engine registry (search, program,
// cautious, direct, auto).

// CreateSessionRequest creates one session within a tenant.
type CreateSessionRequest struct {
	// Name identifies the session within its tenant.
	Name string `json:"name"`
	// Instance and Constraints load structured wire documents;
	// InstanceText and ConstraintsText accept parser-syntax source
	// instead. Exactly one form of each must be present (constraints may
	// be omitted entirely for an unconstrained session).
	Instance        *Instance      `json:"instance,omitempty"`
	InstanceText    string         `json:"instance_text,omitempty"`
	Constraints     *ConstraintSet `json:"constraints,omitempty"`
	ConstraintsText string         `json:"constraints_text,omitempty"`
	// Engine (an internal/engine registry name), Workers, and the
	// shedding budgets configure every request served by this session.
	Engine        string `json:"engine,omitempty"`
	Workers       int    `json:"workers,omitempty"`
	MaxStates     int    `json:"max_states,omitempty"`
	MaxCandidates int    `json:"max_candidates,omitempty"`
}

// CreateSessionResponse acknowledges session creation. Engine reports the
// resolved engine: a session created with "auto" answers with the concrete
// engine the constraint analysis picked (direct or search).
type CreateSessionResponse struct {
	Tenant      string `json:"tenant"`
	Name        string `json:"name"`
	Facts       int    `json:"facts"`
	Constraints int    `json:"constraints"`
	Consistent  bool   `json:"consistent"`
	Engine      string `json:"engine"`
}

// ApplyRequest applies one update to a session.
type ApplyRequest struct {
	// Delta is the structured update; InsertText/DeleteText accept
	// parser-syntax fact lists instead (all three combine additively).
	Delta      *Delta `json:"delta,omitempty"`
	InsertText string `json:"insert_text,omitempty"`
	DeleteText string `json:"delete_text,omitempty"`
}

// QueryRequest answers one query against a session.
type QueryRequest struct {
	// Query is parser-syntax source.
	Query string `json:"query"`
	// Semantics selects certain (default) or possible (brave) answers.
	Semantics string `json:"semantics,omitempty"`
	// Engine and Workers override the session's engine for this request
	// only, with any registry name (including direct and auto). An
	// override answers from a throwaway session over the current head:
	// correct, but without the session's caches.
	Engine  string `json:"engine,omitempty"`
	Workers int    `json:"workers,omitempty"`
}

// PrepareRequest registers a standing query with a session.
type PrepareRequest struct {
	Query string `json:"query"`
}

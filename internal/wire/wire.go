// Package wire defines the stable JSON schema shared by the cqad daemon and
// the cqa CLI: instances, constraint sets, queries, answers, and update
// results all have one canonical wire form, so a scripted HTTP exchange and
// an in-process run serialize to byte-identical documents.
//
// Two representation choices keep the schema both stable and readable:
//
//   - Database constants map to JSON natives: null is JSON null, integer
//     constants are JSON numbers, string constants are JSON strings. The
//     mapping is injective (the string "42" and the integer 42 stay
//     distinct) and decoding goes through json.Number, so the full int64
//     range survives a round trip.
//   - Constraints and queries travel as source text in the syntax of
//     internal/parser, the one concrete syntax the repo already has. The
//     renderers here emit canonical text (string constants always quoted,
//     existential quantification left implicit) that reparses to an
//     equivalent set; auto-assigned constraint names (ic1, nnc1, ...) are
//     positional and therefore survive, custom names do not.
//
// Every type round-trips: Marshal∘Unmarshal is the identity on the wire
// form, and the From*/To* conversions invert each other up to canonical
// ordering (instances serialize their facts sorted).
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/constraint"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/session"
	"repro/internal/term"
	"repro/internal/value"
)

// Value is the wire form of one database constant. It marshals to a JSON
// native: null, an integer number, or a string.
type Value struct {
	V value.V
}

// MarshalJSON renders the constant as its JSON native.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.V.Kind() {
	case value.KindNull:
		return []byte("null"), nil
	case value.KindInt:
		i, _ := v.V.AsInt()
		return strconv.AppendInt(nil, i, 10), nil
	default:
		s, _ := v.V.AsStr()
		return json.Marshal(s)
	}
}

// UnmarshalJSON decodes a JSON native back into a constant. Numbers must be
// integers (the domain U has no floats); anything but null, an integer, or
// a string is rejected.
func (v *Value) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	switch x := raw.(type) {
	case nil:
		v.V = value.Null()
	case json.Number:
		i, err := strconv.ParseInt(string(x), 10, 64)
		if err != nil {
			return fmt.Errorf("wire: constant %s is not a 64-bit integer", x)
		}
		v.V = value.Int(i)
	case string:
		v.V = value.Str(x)
	default:
		return fmt.Errorf("wire: constant must be null, an integer, or a string (got %s)", b)
	}
	return nil
}

// Tuple conversions.

// FromTuple converts one answer tuple.
func FromTuple(t relational.Tuple) []Value {
	if t == nil {
		return nil
	}
	out := make([]Value, len(t))
	for i, v := range t {
		out[i] = Value{v}
	}
	return out
}

// ToTuple inverts FromTuple.
func ToTuple(t []Value) relational.Tuple {
	if t == nil {
		return nil
	}
	out := make(relational.Tuple, len(t))
	for i, v := range t {
		out[i] = v.V
	}
	return out
}

// FromTuples converts a sorted answer-tuple list.
func FromTuples(ts []relational.Tuple) [][]Value {
	if ts == nil {
		return nil
	}
	out := make([][]Value, len(ts))
	for i, t := range ts {
		out[i] = FromTuple(t)
	}
	return out
}

// ToTuples inverts FromTuples.
func ToTuples(ts [][]Value) []relational.Tuple {
	if ts == nil {
		return nil
	}
	out := make([]relational.Tuple, len(ts))
	for i, t := range ts {
		out[i] = ToTuple(t)
	}
	return out
}

// Fact is the wire form of one ground atom.
type Fact struct {
	Pred string  `json:"pred"`
	Args []Value `json:"args,omitempty"`
}

// FromFact converts a ground atom.
func FromFact(f relational.Fact) Fact {
	return Fact{Pred: f.Pred, Args: FromTuple(f.Args)}
}

// ToFact inverts FromFact.
func (f Fact) ToFact() relational.Fact {
	return relational.Fact{Pred: f.Pred, Args: ToTuple(f.Args)}
}

// Instance is the wire form of a database instance: its facts in canonical
// (Compare) order.
type Instance struct {
	Facts []Fact `json:"facts"`
}

// FromInstance serializes d with its facts sorted, so equal instances have
// equal wire forms regardless of construction history.
func FromInstance(d *relational.Instance) Instance {
	facts := d.Facts()
	out := Instance{Facts: make([]Fact, len(facts))}
	for i, f := range facts {
		out.Facts[i] = FromFact(f)
	}
	return out
}

// ToInstance inverts FromInstance (set semantics: duplicate facts collapse).
func (in Instance) ToInstance() *relational.Instance {
	d := relational.NewInstance()
	for _, f := range in.Facts {
		d.Insert(f.ToFact())
	}
	return d
}

// Delta is the wire form of a symmetric difference.
type Delta struct {
	Added   []Fact `json:"added,omitempty"`
	Removed []Fact `json:"removed,omitempty"`
}

// FromDelta converts a delta.
func FromDelta(dl relational.Delta) Delta {
	out := Delta{}
	for _, f := range dl.Added {
		out.Added = append(out.Added, FromFact(f))
	}
	for _, f := range dl.Removed {
		out.Removed = append(out.Removed, FromFact(f))
	}
	return out
}

// ToDelta inverts FromDelta.
func (dl Delta) ToDelta() relational.Delta {
	out := relational.Delta{}
	for _, f := range dl.Added {
		out.Added = append(out.Added, f.ToFact())
	}
	for _, f := range dl.Removed {
		out.Removed = append(out.Removed, f.ToFact())
	}
	return out
}

// ConstraintSet carries a constraint set as canonical source text in the
// syntax of internal/parser.
type ConstraintSet struct {
	Source string `json:"source"`
}

// FromConstraints renders set canonically: one constraint per line, ICs
// first then NNCs, string constants quoted, existentials implicit.
func FromConstraints(set *constraint.Set) ConstraintSet {
	var b strings.Builder
	for _, ic := range set.ICs {
		renderIC(&b, ic)
	}
	for _, n := range set.NNCs {
		renderNNC(&b, n)
	}
	return ConstraintSet{Source: b.String()}
}

// ToSet parses the carried source.
func (cs ConstraintSet) ToSet() (*constraint.Set, error) {
	return parser.Constraints(cs.Source)
}

// Query carries a query as canonical source text in the syntax of
// internal/parser.
type Query struct {
	Source string `json:"source"`
}

// FromQuery renders q canonically. Unlike query.Q.String (a display form)
// the canonical text always quotes string constants, so constants like
// "two words" reparse as the constants they are.
func FromQuery(q *query.Q) Query {
	var b strings.Builder
	head := q.Name
	if head == "" {
		head = "q"
	}
	for i, d := range q.Disjuncts {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(head)
		b.WriteByte('(')
		b.WriteString(strings.Join(q.Head, ", "))
		b.WriteByte(')')
		if len(d.Lits) == 0 && len(d.Builtins) == 0 {
			// The grammar allows an empty (trivially true) body, but only
			// without the ":-".
			b.WriteByte('.')
			continue
		}
		b.WriteString(" :- ")
		first := true
		for _, l := range d.Lits {
			if !first {
				b.WriteString(", ")
			}
			first = false
			if l.Neg {
				b.WriteString("not ")
			}
			renderAtom(&b, l.Atom)
		}
		for _, bi := range d.Builtins {
			if !first {
				b.WriteString(", ")
			}
			first = false
			renderBuiltin(&b, bi)
		}
		b.WriteByte('.')
	}
	return Query{Source: b.String()}
}

// ToQuery parses the carried source.
func (wq Query) ToQuery() (*query.Q, error) {
	return parser.Query(wq.Source)
}

// Answer is the wire form of session.Answer.
type Answer struct {
	// Tuples are the certain answers in canonical order; absent for
	// boolean queries.
	Tuples [][]Value `json:"tuples,omitempty"`
	// Boolean is the certain verdict of a boolean query.
	Boolean bool `json:"boolean"`
	// NumRepairs, StatesExplored and ShortCircuited carry the engine
	// diagnostics (see session.Answer for their exact semantics).
	NumRepairs     int  `json:"num_repairs"`
	StatesExplored int  `json:"states_explored,omitempty"`
	ShortCircuited bool `json:"short_circuited,omitempty"`
}

// FromAnswer converts an answer.
func FromAnswer(a session.Answer) Answer {
	return Answer{
		Tuples:         FromTuples(a.Tuples),
		Boolean:        a.Boolean,
		NumRepairs:     a.NumRepairs,
		StatesExplored: a.StatesExplored,
		ShortCircuited: a.ShortCircuited,
	}
}

// ToAnswer inverts FromAnswer.
func (a Answer) ToAnswer() session.Answer {
	return session.Answer{
		Tuples:         ToTuples(a.Tuples),
		Boolean:        a.Boolean,
		NumRepairs:     a.NumRepairs,
		StatesExplored: a.StatesExplored,
		ShortCircuited: a.ShortCircuited,
	}
}

// ApplyResult is the wire form of session.ApplyResult.
type ApplyResult struct {
	Applied            Delta `json:"applied"`
	ConstraintRelevant bool  `json:"constraint_relevant"`
	RepairsSurvived    int   `json:"repairs_survived,omitempty"`
	RepairsInvalidated int   `json:"repairs_invalidated,omitempty"`
	Reenumerated       bool  `json:"reenumerated,omitempty"`
	QueriesRefreshed   int   `json:"queries_refreshed,omitempty"`
	QueriesSkipped     int   `json:"queries_skipped,omitempty"`
}

// FromApplyResult converts an update summary.
func FromApplyResult(r session.ApplyResult) ApplyResult {
	return ApplyResult{
		Applied:            FromDelta(r.Applied),
		ConstraintRelevant: r.ConstraintRelevant,
		RepairsSurvived:    r.RepairsSurvived,
		RepairsInvalidated: r.RepairsInvalidated,
		Reenumerated:       r.Reenumerated,
		QueriesRefreshed:   r.QueriesRefreshed,
		QueriesSkipped:     r.QueriesSkipped,
	}
}

// ToApplyResult inverts FromApplyResult.
func (r ApplyResult) ToApplyResult() session.ApplyResult {
	return session.ApplyResult{
		Applied:            r.Applied.ToDelta(),
		ConstraintRelevant: r.ConstraintRelevant,
		RepairsSurvived:    r.RepairsSurvived,
		RepairsInvalidated: r.RepairsInvalidated,
		Reenumerated:       r.Reenumerated,
		QueriesRefreshed:   r.QueriesRefreshed,
		QueriesSkipped:     r.QueriesSkipped,
	}
}

// QueryUpdate is the wire form of a changed-answer diff pushed for one
// standing query (session.QueryUpdate), keyed by the query's canonical text.
type QueryUpdate struct {
	Query          string    `json:"query"`
	Added          [][]Value `json:"added,omitempty"`
	Removed        [][]Value `json:"removed,omitempty"`
	Boolean        bool      `json:"boolean,omitempty"`
	BooleanChanged bool      `json:"boolean_changed,omitempty"`
}

// FromQueryUpdate converts a subscription diff.
func FromQueryUpdate(u session.QueryUpdate) QueryUpdate {
	return QueryUpdate{
		Query:          u.Prepared.Query().String(),
		Added:          FromTuples(u.Added),
		Removed:        FromTuples(u.Removed),
		Boolean:        u.Boolean,
		BooleanChanged: u.BooleanChanged,
	}
}

// AnswerResponse is the shared answer envelope: the canonical query text
// plus its consistent answer. The daemon's query endpoint and cqa's -json
// mode emit this exact document, which is what makes their outputs
// byte-comparable.
type AnswerResponse struct {
	Query  string `json:"query"`
	Answer Answer `json:"answer"`
	// Semantics is set to "possible" for brave-semantics answers; absent
	// (certain semantics) otherwise.
	Semantics string `json:"semantics,omitempty"`
	// Stale marks a standing-query snapshot whose refresh was interrupted
	// (e.g. a cancelled apply); the next successful apply revalidates it.
	Stale bool `json:"stale,omitempty"`
}

// ApplyResponse is the shared update envelope: the update summary, the
// post-update consistency verdict, and the changed-answer diffs of every
// standing query the update affected (in registration order).
type ApplyResponse struct {
	Result     ApplyResult   `json:"result"`
	Consistent bool          `json:"consistent"`
	Violations int           `json:"violations,omitempty"`
	Updates    []QueryUpdate `json:"updates,omitempty"`
}

// --- canonical constraint rendering ------------------------------------------

// renderTerm writes a term in parser syntax. Unlike term.T.String it always
// quotes string constants, so constants like "C15" or "two words" reparse as
// the constants they are rather than as variables or syntax errors.
// Variables are emitted verbatim; a set that came from the parser always
// has parser-valid (upper-case) variable names.
func renderTerm(b *strings.Builder, t term.T) {
	if t.IsVar() {
		b.WriteString(t.Var)
		return
	}
	switch t.Const.Kind() {
	case value.KindNull:
		b.WriteString("null")
	case value.KindInt:
		i, _ := t.Const.AsInt()
		b.WriteString(strconv.FormatInt(i, 10))
	default:
		s, _ := t.Const.AsStr()
		b.WriteString(strconv.Quote(s))
	}
}

func renderAtom(b *strings.Builder, a term.Atom) {
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		renderTerm(b, t)
	}
	b.WriteByte(')')
}

func renderBuiltin(b *strings.Builder, bi term.Builtin) {
	renderTerm(b, bi.L)
	b.WriteByte(' ')
	b.WriteString(bi.Op.String())
	b.WriteByte(' ')
	renderTerm(b, bi.R)
	switch {
	case bi.Offset > 0:
		fmt.Fprintf(b, " + %d", bi.Offset)
	case bi.Offset < 0:
		fmt.Fprintf(b, " - %d", -bi.Offset)
	}
}

func renderIC(b *strings.Builder, ic *constraint.IC) {
	for i, a := range ic.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		renderAtom(b, a)
	}
	b.WriteString(" -> ")
	if ic.IsDenial() {
		b.WriteString("false.\n")
		return
	}
	first := true
	for _, a := range ic.Head {
		if !first {
			b.WriteString(" | ")
		}
		first = false
		renderAtom(b, a)
	}
	for _, bi := range ic.Phi {
		if !first {
			b.WriteString(" | ")
		}
		first = false
		renderBuiltin(b, bi)
	}
	b.WriteString(".\n")
}

func renderNNC(b *strings.Builder, n *constraint.NNC) {
	b.WriteString(n.Pred)
	b.WriteByte('(')
	for i := 0; i < n.Arity; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "X%d", i+1)
	}
	fmt.Fprintf(b, "), isnull(X%d) -> false.\n", n.Pos+1)
}

package wire

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/parser"
	"repro/internal/relational"
	"repro/internal/session"
	"repro/internal/value"
)

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestValueRoundTrip(t *testing.T) {
	cases := []value.V{
		value.Null(),
		value.Int(0),
		value.Int(-5),
		value.Int(math.MaxInt64),
		value.Int(math.MinInt64),
		value.Str(""),
		value.Str("null"),
		value.Str("42"),
		value.Str("two words"),
		value.Str("Ünïcødé"),
	}
	for _, v := range cases {
		b := marshal(t, Value{v})
		var got Value
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("%v: unmarshal %s: %v", v, b, err)
		}
		if !got.V.Eq(v) || got.V.Kind() != v.Kind() {
			t.Errorf("%v round-tripped via %s to %v (%v)", v, b, got.V, got.V.Kind())
		}
	}

	// The integer 42 and the string "42" stay distinct on the wire.
	bi := marshal(t, Value{value.Int(42)})
	bs := marshal(t, Value{value.Str("42")})
	if string(bi) == string(bs) {
		t.Errorf("int 42 and string %q marshal identically: %s", "42", bi)
	}

	// Non-integer numbers and composite values are rejected.
	for _, bad := range []string{"1.5", "1e3", "[1]", "{}", "true"} {
		var v Value
		if err := json.Unmarshal([]byte(bad), &v); err == nil {
			t.Errorf("unmarshal %s: want error, got %v", bad, v.V)
		}
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	d := parser.MustInstance(`
		r(a, 1). r(a, null). r("Two Words", -7).
		s(null). emp(21, "Ann", 5000).
	`)
	w := FromInstance(d)
	b := marshal(t, w)

	var got Instance
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !got.ToInstance().Equal(d) {
		t.Errorf("round-tripped instance differs:\n got %s\nwant %s", got.ToInstance(), d)
	}
	// The wire form is canonical: re-serializing the decoded instance
	// reproduces the exact bytes.
	if b2 := marshal(t, FromInstance(got.ToInstance())); string(b2) != string(b) {
		t.Errorf("wire form not canonical:\n %s\n vs %s", b, b2)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	dl := relational.Delta{
		Added:   []relational.Fact{relational.F("r", value.Str("a"), value.Null())},
		Removed: []relational.Fact{relational.F("s", value.Int(3))},
	}
	b := marshal(t, FromDelta(dl))
	var got Delta
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	back := got.ToDelta()
	if len(back.Added) != 1 || !back.Added[0].Equal(dl.Added[0]) ||
		len(back.Removed) != 1 || !back.Removed[0].Equal(dl.Removed[0]) {
		t.Errorf("delta round-tripped to %v, want %v", back, dl)
	}
}

func TestConstraintSetRoundTrip(t *testing.T) {
	src := `
		course(Id, Code) -> student(Id, Name).
		emp(Id, Nm, Sal) -> Sal > 100.
		r(X, Y), r(X, Z) -> Y = Z.
		r(X, Y), isnull(X) -> false.
		p(X), q(X) -> false.
		t(X, Y) -> u(X) | Y >= X + 1.
		emp(Id, Nm, Sal) -> Nm = "Ann" | Nm = "Two Words".
	`
	set, err := parser.Constraints(src)
	if err != nil {
		t.Fatal(err)
	}
	w := FromConstraints(set)

	// JSON round trip preserves the source verbatim.
	var got ConstraintSet
	if err := json.Unmarshal(marshal(t, w), &got); err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Fatalf("ConstraintSet changed across JSON: %+v vs %+v", got, w)
	}

	// The canonical rendering reparses, and is a fixpoint of
	// render-parse-render.
	set2, err := got.ToSet()
	if err != nil {
		t.Fatalf("canonical rendering does not reparse: %v\n%s", err, got.Source)
	}
	if len(set2.ICs) != len(set.ICs) || len(set2.NNCs) != len(set.NNCs) {
		t.Fatalf("reparsed set has %d ICs / %d NNCs, want %d / %d",
			len(set2.ICs), len(set2.NNCs), len(set.ICs), len(set.NNCs))
	}
	if again := FromConstraints(set2); again != w {
		t.Errorf("rendering is not a fixpoint:\n%s\nvs\n%s", w.Source, again.Source)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	for _, src := range []string{
		"q(X) :- course(X, Code), not student(X, Code).\nq(X) :- course(X, 15).",
		"q() :- r(a, X), X > 2.",
	} {
		q, err := parser.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		w := FromQuery(q)
		var got Query
		if err := json.Unmarshal(marshal(t, w), &got); err != nil {
			t.Fatal(err)
		}
		q2, err := got.ToQuery()
		if err != nil {
			t.Fatalf("canonical query does not reparse: %v\n%s", err, got.Source)
		}
		if again := FromQuery(q2); again != w {
			t.Errorf("query rendering is not a fixpoint: %q vs %q", w.Source, again.Source)
		}
	}
}

func TestAnswerRoundTrip(t *testing.T) {
	cases := []session.Answer{
		{
			Tuples: []relational.Tuple{
				{value.Str("a"), value.Null()},
				{value.Int(3), value.Str("b")},
			},
			NumRepairs:     4,
			StatesExplored: 17,
		},
		{Boolean: true, NumRepairs: 1, ShortCircuited: true},
	}
	for _, a := range cases {
		b := marshal(t, FromAnswer(a))
		var got Answer
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.ToAnswer(), a) {
			t.Errorf("answer round-tripped via %s to %+v, want %+v", b, got.ToAnswer(), a)
		}
	}
}

func TestApplyResultRoundTrip(t *testing.T) {
	r := session.ApplyResult{
		Applied: relational.Delta{
			Added: []relational.Fact{relational.F("r", value.Str("a"), value.Str("d"))},
		},
		ConstraintRelevant: true,
		RepairsSurvived:    2,
		RepairsInvalidated: 1,
		Reenumerated:       true,
		QueriesRefreshed:   1,
		QueriesSkipped:     3,
	}
	b := marshal(t, FromApplyResult(r))
	var got ApplyResult
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.ToApplyResult(), r) {
		t.Errorf("apply result round-tripped via %s to %+v, want %+v", b, got.ToApplyResult(), r)
	}
}

// TestWireAgainstSession drives a real session and checks that its answers
// and apply results survive the wire without changing what they say.
func TestWireAgainstSession(t *testing.T) {
	d := parser.MustInstance(`r(a, b). r(a, c). s(e, f).`)
	set, err := parser.Constraints(`r(X, Y), r(X, Z) -> Y = Z. s(U, V) -> r(V, W).`)
	if err != nil {
		t.Fatal(err)
	}
	q := parser.MustQuery(`q(X) :- r(a, X).`)

	s := session.New(d, set, session.NewOptions())
	ans, err := s.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	var gotAns Answer
	if err := json.Unmarshal(marshal(t, FromAnswer(ans)), &gotAns); err != nil {
		t.Fatal(err)
	}
	back := gotAns.ToAnswer()
	if len(back.Tuples) != len(ans.Tuples) || back.NumRepairs != ans.NumRepairs {
		t.Errorf("session answer changed on the wire: %+v vs %+v", back, ans)
	}
	for i := range back.Tuples {
		if !back.Tuples[i].Equal(ans.Tuples[i]) {
			t.Errorf("tuple %d changed on the wire: %v vs %v", i, back.Tuples[i], ans.Tuples[i])
		}
	}

	res, err := s.Apply(relational.Delta{
		Added: []relational.Fact{relational.F("r", value.Str("f"), value.Str("g"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	var gotRes ApplyResult
	if err := json.Unmarshal(marshal(t, FromApplyResult(res)), &gotRes); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes.ToApplyResult(), res) {
		t.Errorf("apply result changed on the wire: %+v vs %+v", gotRes.ToApplyResult(), res)
	}
}

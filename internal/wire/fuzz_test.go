package wire_test

import (
	"encoding/json"
	"testing"

	"repro/internal/parser"
	"repro/internal/wire"
)

// FuzzWireRoundTrip pins the package contract under adversarial input:
// render∘parse is a fixpoint. Any JSON that decodes into a wire document
// must survive marshal→unmarshal→marshal byte-identically after one
// canonicalization pass, and any parseable constraint/query source must
// render to canonical text that reparses to the same canonical text.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(`{"facts":[{"pred":"r","args":["a",1,null]}]}`,
		`{"added":[{"pred":"r","args":["a"]}],"removed":[{"pred":"s"}]}`,
		"r(X, Y), r(X, Z) -> Y = Z.\ns(U, V) -> r(V, W).\nr(X, Y), isnull(X) -> false.",
		`q(V) :- s(U, V), not r(V, V), U >= 3.`)
	f.Add(`{"facts":[]}`, `{}`, `p(X), q(X) -> false.`, `q :- p("two words", -7).`)
	f.Add(`{"facts":[{"pred":"p","args":[9223372036854775807]}]}`, `{"added":null}`,
		`r(X) -> s(X, Z).`, "q(X) :- r(X).\nq(X) :- s(X, Y).")

	f.Fuzz(func(t *testing.T, instJSON, deltaJSON, icSrc, qSrc string) {
		var wi wire.Instance
		if err := json.Unmarshal([]byte(instJSON), &wi); err == nil {
			d := wi.ToInstance()
			b1, err := json.Marshal(wire.FromInstance(d))
			if err != nil {
				t.Fatalf("marshal instance: %v", err)
			}
			var wi2 wire.Instance
			if err := json.Unmarshal(b1, &wi2); err != nil {
				t.Fatalf("canonical instance does not decode: %v\n%s", err, b1)
			}
			if !d.Equal(wi2.ToInstance()) {
				t.Fatalf("instance round trip diverged:\n%s", b1)
			}
			b2, _ := json.Marshal(wire.FromInstance(wi2.ToInstance()))
			if string(b1) != string(b2) {
				t.Fatalf("instance marshal is not a fixpoint:\n%s\n%s", b1, b2)
			}
		}

		var wd wire.Delta
		if err := json.Unmarshal([]byte(deltaJSON), &wd); err == nil {
			b1, err := json.Marshal(wire.FromDelta(wd.ToDelta()))
			if err != nil {
				t.Fatalf("marshal delta: %v", err)
			}
			var wd2 wire.Delta
			if err := json.Unmarshal(b1, &wd2); err != nil {
				t.Fatalf("canonical delta does not decode: %v\n%s", err, b1)
			}
			b2, _ := json.Marshal(wire.FromDelta(wd2.ToDelta()))
			if string(b1) != string(b2) {
				t.Fatalf("delta marshal is not a fixpoint:\n%s\n%s", b1, b2)
			}
		}

		if set, err := parser.Constraints(icSrc); err == nil {
			r1 := wire.FromConstraints(set).Source
			set2, err := wire.ConstraintSet{Source: r1}.ToSet()
			if err != nil {
				t.Fatalf("canonical constraints do not reparse: %v\n%s", err, r1)
			}
			if r2 := wire.FromConstraints(set2).Source; r1 != r2 {
				t.Fatalf("constraint render is not a fixpoint:\n%s\n%s", r1, r2)
			}
		}

		if q, err := parser.Query(qSrc); err == nil {
			r1 := wire.FromQuery(q).Source
			q2, err := wire.Query{Source: r1}.ToQuery()
			if err != nil {
				t.Fatalf("canonical query does not reparse: %v\n%s", err, r1)
			}
			if r2 := wire.FromQuery(q2).Source; r1 != r2 {
				t.Fatalf("query render is not a fixpoint:\n%s\n%s", r1, r2)
			}
		}
	})
}

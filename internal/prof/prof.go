// Package prof wires the runtime/pprof CPU and heap profilers behind two
// file-path options, so every command can expose -cpuprofile/-memprofile
// without an ad-hoc harness per bottleneck hunt.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the (possibly empty) file paths: a
// CPU profile streams to cpu until stop is called, and a heap profile is
// captured into mem at stop time, after a GC, so it reflects live memory
// at the end of the profiled region. Either path may be empty to skip that
// profile; with both empty Start is a no-op and stop never fails.
//
// The returned stop function must be called exactly once (defer it); it
// finishes both profiles and closes the files.
func Start(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("prof: creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: closing CPU profile: %w", err)
			}
		}
		if mem != "" {
			memFile, err := os.Create(mem)
			if err != nil {
				return fmt.Errorf("prof: creating heap profile: %w", err)
			}
			defer memFile.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				return fmt.Errorf("prof: writing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}

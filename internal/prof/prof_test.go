package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("no-op stop: %v", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and memory so the profiles have something to say.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile %s not written: %v", path, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Error("unwritable CPU profile path accepted")
	}
}

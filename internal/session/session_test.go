package session

import (
	"fmt"
	"testing"

	"repro/internal/parser"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/value"
)

func fixtureSet() string {
	return `
		r(X, Y), r(X, Z) -> Y = Z.
		s(U, V) -> r(V, W).
	`
}

func fixtureSession(t *testing.T, opts Options) *Session {
	t.Helper()
	d := parser.MustInstance(`
		r(a, b).
		r(a, c).
		s(e, f).
		t(x, y).
	`)
	return New(d, parser.MustConstraints(fixtureSet()), opts)
}

func str(s string) value.V { return value.Str(s) }

// TestIrrelevantUpdateRebasesRepairs pins the constraint-irrelevance fast
// path: an update touching only the unconstrained t relation keeps every
// cached repair (same deltas, advanced contents) without re-enumerating.
func TestIrrelevantUpdateRebasesRepairs(t *testing.T) {
	s := fixtureSession(t, NewOptions())
	before, err := s.Repairs()
	if err != nil {
		t.Fatal(err)
	}
	statsBefore := s.searchStats

	newFact := relational.F("t", str("p"), str("q"))
	res, err := s.Apply(relational.Delta{Added: []relational.Fact{newFact}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConstraintRelevant {
		t.Error("t-only update reported constraint-relevant")
	}
	if res.RepairsSurvived != len(before) || res.RepairsInvalidated != 0 || res.Reenumerated {
		t.Errorf("fast path stats: %+v (want all %d survived)", res, len(before))
	}
	if !s.repairsOK {
		t.Fatal("repair cache dropped on irrelevant update")
	}
	if s.searchStats != statsBefore {
		t.Error("search stats changed without a re-enumeration")
	}
	after, err := s.Repairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("repair count changed: %d -> %d", len(before), len(after))
	}
	for _, r := range after {
		if !r.Has(newFact) {
			t.Errorf("rebased repair lost the new passthrough fact: %s", r)
		}
	}
}

// TestRelevantUpdateInvalidatesTouchedRepairs pins posting-list
// invalidation: deleting a fact that some repair deltas remove invalidates
// exactly those repairs, and untouched candidates are counted as
// survivors when their deltas reappear in the re-enumeration.
func TestRelevantUpdateInvalidatesTouchedRepairs(t *testing.T) {
	s := fixtureSession(t, NewOptions())
	if _, err := s.Prepare(parser.MustQuery(`q(V) :- s(U, V).`)); err != nil {
		t.Fatal(err)
	}
	deltas, err := s.Deltas()
	if err != nil {
		t.Fatal(err)
	}
	// r(a, b) shows up in the deltas of the repairs that resolve the key
	// conflict by dropping it.
	target := relational.F("r", str("a"), str("b"))
	touched := 0
	for _, dl := range deltas {
		if deltaHasFact(dl, target) {
			touched++
		}
	}
	if touched == 0 {
		t.Fatalf("fixture lost its premise: no repair delta touches %s", target)
	}

	res, err := s.Apply(relational.Delta{Removed: []relational.Fact{target}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConstraintRelevant {
		t.Error("r update reported irrelevant")
	}
	if res.RepairsInvalidated != touched {
		t.Errorf("RepairsInvalidated = %d, want %d", res.RepairsInvalidated, touched)
	}
	if !res.Reenumerated {
		t.Error("relevant update with a prepared query did not re-enumerate")
	}
	// Removing r(a, b) dissolves the key conflict, so even the untouched
	// candidates' deltas cannot reappear verbatim.
	if res.RepairsSurvived != 0 {
		t.Errorf("RepairsSurvived = %d after a conflict-dissolving removal", res.RepairsSurvived)
	}
}

// TestRelevantUpdatePreservingConflictsKeepsAll pins the survivor count on
// the other relevant-path outcome: an insert over a constrained relation
// that creates no new violation and joins no repair delta leaves every
// candidate intact, and the re-enumeration confirms all of them.
func TestRelevantUpdatePreservingConflictsKeepsAll(t *testing.T) {
	s := fixtureSession(t, NewOptions())
	if _, err := s.Prepare(parser.MustQuery(`q(V) :- s(U, V).`)); err != nil {
		t.Fatal(err)
	}
	before, err := s.Repairs()
	if err != nil {
		t.Fatal(err)
	}
	// r(c, d) is on a fresh key value and does not witness the dangling
	// RIC reference s(e, f) -> r(f, W), so the violation set — and hence
	// every minimal repair delta — is unchanged.
	res, err := s.Apply(relational.Delta{Added: []relational.Fact{relational.F("r", str("c"), str("d"))}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConstraintRelevant {
		t.Error("r update reported irrelevant")
	}
	if res.RepairsInvalidated != 0 {
		t.Errorf("RepairsInvalidated = %d for a fact outside every delta", res.RepairsInvalidated)
	}
	if res.RepairsSurvived != len(before) {
		t.Errorf("RepairsSurvived = %d, want all %d", res.RepairsSurvived, len(before))
	}
}

// TestPreparedSkipRule pins the refresh skip: a constraint-irrelevant
// update only refreshes prepared queries that mention a changed relation.
func TestPreparedSkipRule(t *testing.T) {
	s := fixtureSession(t, NewOptions())
	if _, err := s.Prepare(parser.MustQuery(`q(V) :- s(U, V).`)); err != nil {
		t.Fatal(err)
	}
	pt, err := s.Prepare(parser.MustQuery(`q(X) :- t(X, Y).`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Apply(relational.Delta{Added: []relational.Fact{relational.F("t", str("p"), str("q"))}})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesSkipped != 1 || res.QueriesRefreshed != 1 {
		t.Errorf("skip rule: %+v (want 1 skipped, 1 refreshed)", res)
	}
	found := false
	for _, tu := range pt.Answers() {
		if tu.Key() == (relational.Tuple{str("p")}).Key() {
			found = true
		}
	}
	if !found {
		t.Errorf("t query missed the inserted fact: %v", pt.Answers())
	}
}

// TestBooleanSubscribeFlip pins boolean notifications: the verdict flip is
// pushed exactly when it happens.
func TestBooleanSubscribeFlip(t *testing.T) {
	d := parser.MustInstance(`r(a, b).`)
	set := parser.MustConstraints(`r(X, Y), r(X, Z) -> Y = Z.`)
	s := New(d, set, NewOptions())
	p, err := s.Prepare(parser.MustQuery(`q :- r(a, b).`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Boolean() {
		t.Fatal("q should hold on the consistent base")
	}
	var flips []bool
	p.Subscribe(func(u QueryUpdate) {
		if u.BooleanChanged {
			flips = append(flips, u.Boolean)
		}
	})
	// Adding r(a, c) makes the key conflict: one repair drops r(a, b), so
	// the certain answer flips to no.
	if _, err := s.Apply(relational.Delta{Added: []relational.Fact{relational.F("r", str("a"), str("c"))}}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(flips) != "[false]" {
		t.Fatalf("flips = %v, want [false]", flips)
	}
	// Removing it again restores the verdict.
	if _, err := s.Apply(relational.Delta{Removed: []relational.Fact{relational.F("r", str("a"), str("c"))}}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(flips) != "[false true]" {
		t.Fatalf("flips = %v, want [false true]", flips)
	}
}

// TestNoOpApply pins that an ineffective delta changes nothing and fires
// nothing.
func TestNoOpApply(t *testing.T) {
	s := fixtureSession(t, NewOptions())
	p, err := s.Prepare(parser.MustQuery(`q(V) :- s(U, V).`))
	if err != nil {
		t.Fatal(err)
	}
	p.Subscribe(func(QueryUpdate) { t.Error("no-op apply notified a subscriber") })
	res, err := s.Apply(relational.Delta{
		Added:   []relational.Fact{relational.F("r", str("a"), str("b"))}, // already present
		Removed: []relational.Fact{relational.F("r", str("z"), str("z"))}, // absent
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied.Size() != 0 || res.ConstraintRelevant {
		t.Errorf("no-op apply result: %+v", res)
	}
	if !s.repairsOK {
		t.Error("no-op apply dropped the repair cache")
	}
}

// TestClassicModeConservative pins that classic mode treats every update
// as constraint-relevant: the irrelevance theorem is null-based only (any
// fact extends the classic insertion domain).
func TestClassicModeConservative(t *testing.T) {
	opts := NewOptions()
	opts.Repair.Mode = repair.Classic
	s := fixtureSession(t, opts)
	if _, err := s.Repairs(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Apply(relational.Delta{Added: []relational.Fact{relational.F("t", str("p"), str("q"))}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConstraintRelevant {
		t.Error("classic mode must treat every effective update as relevant")
	}
	if s.repairsOK {
		t.Error("classic mode kept the repair cache across an update")
	}
}

// TestReanchorKeepsAnswers drives the head past the rebase threshold and
// checks the session stays correct: the anchor is refreshed, prepared
// plans are rebuilt, and answers still match a scratch computation.
func TestReanchorKeepsAnswers(t *testing.T) {
	s := fixtureSession(t, NewOptions())
	p, err := s.Prepare(parser.MustQuery(`q(X) :- t(X, Y).`))
	if err != nil {
		t.Fatal(err)
	}
	anchorBefore := s.head.Anchor()
	// Push well past rebaseThreshold with passthrough inserts.
	for i := 0; i < rebaseThreshold+10; i++ {
		f := relational.F("t", str(fmt.Sprintf("k%03d", i)), str("v"))
		if _, err := s.Apply(relational.Delta{Added: []relational.Fact{f}}); err != nil {
			t.Fatal(err)
		}
	}
	if s.head.Anchor() == anchorBefore {
		t.Fatal("head never re-anchored past the threshold")
	}
	if s.head.Drift() > rebaseThreshold {
		t.Fatalf("drift %d still above threshold after reanchor", s.head.Drift())
	}
	if got := len(p.Answers()); got != rebaseThreshold+10+1 {
		t.Fatalf("prepared answers = %d tuples, want %d", got, rebaseThreshold+10+1)
	}
	// And the repair cache still matches a fresh enumeration.
	sessionRepairs, err := s.Repairs()
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(s.head.Current().Clone(), s.set, s.opts)
	scratchRepairs, err := fresh.Repairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(sessionRepairs) != len(scratchRepairs) {
		t.Fatalf("repairs diverged after reanchor: %d vs %d", len(sessionRepairs), len(scratchRepairs))
	}
	for i := range sessionRepairs {
		if sessionRepairs[i].Key() != scratchRepairs[i].Key() {
			t.Fatalf("repair %d differs after reanchor", i)
		}
	}
}

// TestSeedValidation pins the repair.Seed length check.
func TestSeedValidation(t *testing.T) {
	d := parser.MustInstance(`r(a, b).`)
	set := parser.MustConstraints(`r(X, Y), r(X, Z) -> Y = Z.`)
	opts := repair.Options{Seed: &repair.Seed{}}
	opts.Seed.Viols = nil
	if _, err := repair.Repairs(d, set, opts); err == nil {
		t.Error("mismatched seed length accepted")
	}
}

// TestCautiousDirtyPassthroughRebuild pins the translation dirty rule: a
// cautious session whose passthrough relation drifts must rebuild before
// answering a query that mentions it, and must keep the cached
// translation for queries that do not.
func TestCautiousDirtyPassthroughRebuild(t *testing.T) {
	opts := NewOptions()
	opts.Engine = EngineProgramCautious
	s := fixtureSession(t, opts)
	qt := parser.MustQuery(`q(X) :- t(X, Y).`)
	qs := parser.MustQuery(`q(V) :- s(U, V).`)
	if _, err := s.Answer(qt); err != nil {
		t.Fatal(err)
	}
	trBefore := s.tr
	if trBefore == nil {
		t.Fatal("no cached translation after a cautious answer")
	}
	if _, err := s.Apply(relational.Delta{Added: []relational.Fact{relational.F("t", str("p"), str("q"))}}); err != nil {
		t.Fatal(err)
	}
	if s.tr != trBefore {
		t.Fatal("passthrough-only update dropped the translation")
	}
	if _, err := s.Answer(qs); err != nil {
		t.Fatal(err)
	}
	if s.tr != trBefore {
		t.Error("query avoiding the dirty relation rebuilt the translation")
	}
	ans, err := s.Answer(qt)
	if err != nil {
		t.Fatal(err)
	}
	if s.tr == trBefore {
		t.Error("query over the dirty relation did not rebuild the translation")
	}
	found := false
	for _, tu := range ans.Tuples {
		if tu.Key() == (relational.Tuple{str("p")}).Key() {
			found = true
		}
	}
	if !found {
		t.Errorf("cautious answer missed the drifted passthrough fact: %v", ans.Tuples)
	}
}

// TestDeltaSetDedup pins the fingerprint+Equal dedup that replaced the
// string delta keys on the cautious hot path.
func TestDeltaSetDedup(t *testing.T) {
	a := relational.F("r", str("a"), str("b"))
	b := relational.F("r", str("a"), str("c"))
	ds := relational.NewDeltaSet()
	d1 := relational.Delta{Removed: []relational.Fact{a}}
	d2 := relational.Delta{Added: []relational.Fact{a}}
	d3 := relational.Delta{Removed: []relational.Fact{a}, Added: []relational.Fact{b}}
	if !ds.Add(d1) || !ds.Add(d2) || !ds.Add(d3) {
		t.Fatal("distinct deltas rejected")
	}
	if ds.Add(d1) || ds.Add(d3) {
		t.Fatal("duplicate deltas accepted")
	}
	if ds.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ds.Len())
	}
	if !ds.Has(d2) || ds.Has(relational.Delta{Added: []relational.Fact{b}}) {
		t.Fatal("Has misreports membership")
	}
}

package session

import (
	"context"

	"repro/internal/constraint"
	"repro/internal/direct"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
)

// resolveAuto picks the engine for EngineAuto: the repair-less direct
// engine when the set is FD-only under null-aware semantics, the search
// engine otherwise.
func resolveAuto(set *constraint.Set, opts Options) Engine {
	if opts.Repair.Mode == repair.Classic {
		return EngineSearch
	}
	if constraint.Analyze(set).FDOnly {
		return EngineDirect
	}
	return EngineSearch
}

// ensureDirect materializes the FD classification on first use; Apply
// keeps it maintained afterwards. Scope violations (non-FD constraints,
// classic semantics) surface as *direct.ScopeError wrapping
// direct.ErrScope.
func (s *Session) ensureDirect() (*direct.Engine, error) {
	if s.dir != nil {
		return s.dir, nil
	}
	if s.opts.Repair.Mode == repair.Classic {
		return nil, &direct.ScopeError{Reason: "classic repair semantics (the classification is null-aware only)"}
	}
	e, err := direct.New(s.head.Current(), s.set)
	if err != nil {
		return nil, err
	}
	s.dir = e
	return e, nil
}

// directAnswer implements EngineDirect: certain answers straight off the
// maintained classification, one polynomial pass, no repair enumeration.
// NumRepairs is the exact product count; StatesExplored stays 0 and the
// engine never short-circuits, so the diagnostics are deterministic.
func (s *Session) directAnswer(ctx context.Context, q *query.Q) (Answer, error) {
	e, err := s.ensureDirect()
	if err != nil {
		return Answer{}, err
	}
	res, err := e.CertainCtx(ctx, s.head.Current(), q)
	if err != nil {
		return Answer{}, err
	}
	return Answer{Tuples: res.Tuples, Boolean: res.Boolean, NumRepairs: res.NumRepairs}, nil
}

// directPossible implements the brave side of EngineDirect.
func (s *Session) directPossible(ctx context.Context, q *query.Q) ([]relational.Tuple, error) {
	e, err := s.ensureDirect()
	if err != nil {
		return nil, err
	}
	return e.PossibleCtx(ctx, s.head.Current(), q)
}

// DirectStats exposes the classification work counters of the maintained
// direct engine (zero Stats when none was built), for tests pinning the
// O(|Δ|) incremental-maintenance contract.
func (s *Session) DirectStats() direct.Stats {
	if s.dir == nil {
		return direct.Stats{}
	}
	return s.dir.Stats()
}

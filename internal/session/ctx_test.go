package session

import (
	"context"
	"errors"
	"testing"

	"repro/internal/parser"
	"repro/internal/relational"
)

// TestCancelledAnswerReturnsCtxErr pins the cancellation contract of
// AnswerCtx: a cancelled context aborts the enumeration with ctx.Err() for
// every engine, and the session answers normally afterwards (the cache is
// never poisoned by a partial fill).
func TestCancelledAnswerReturnsCtxErr(t *testing.T) {
	q := parser.MustQuery(`q(X) :- r(a, X).`)
	for _, eng := range []Engine{EngineSearch, EngineProgram, EngineProgramCautious} {
		opts := NewOptions()
		opts.Engine = eng
		s := fixtureSession(t, opts)

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.AnswerCtx(ctx, q); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: cancelled AnswerCtx err = %v, want context.Canceled", eng, err)
		}
		if s.repairsOK && eng == EngineSearch {
			t.Fatalf("%v: cancelled answer populated the repair cache", eng)
		}

		got, err := s.Answer(q)
		if err != nil {
			t.Fatalf("%v: answer after cancellation: %v", eng, err)
		}
		want, err := fixtureSession(t, opts).Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Tuples) != len(want.Tuples) || got.NumRepairs != want.NumRepairs {
			t.Errorf("%v: post-cancel answer %+v differs from fresh session %+v", eng, got, want)
		}
	}
}

// TestCancelledApplyLeavesSessionUsable pins the non-poisoning contract of
// ApplyCtx: when cancellation interrupts the prepared-query refresh, the
// update itself is applied, the interrupted query is flagged invalid, and
// both ad-hoc answers and the next successful Apply behave exactly as on an
// untouched session over the same data.
func TestCancelledApplyLeavesSessionUsable(t *testing.T) {
	q := parser.MustQuery(`q(X) :- r(a, X).`)
	s := fixtureSession(t, NewOptions())
	p, err := s.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid() {
		t.Fatal("prepared query invalid after Prepare")
	}

	// A constraint-relevant update forces a refresh, which the cancelled
	// context aborts before any enumeration work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	add := relational.F("r", str("a"), str("d"))
	if _, err := s.ApplyCtx(ctx, relational.Delta{Added: []relational.Fact{add}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ApplyCtx err = %v, want context.Canceled", err)
	}
	if p.Valid() {
		t.Error("interrupted prepared query still marked valid")
	}
	if !s.Current().Has(add) {
		t.Error("update lost by cancelled Apply")
	}

	// Ad-hoc answering works and matches a fresh session on the same head.
	got, err := s.Answer(q)
	if err != nil {
		t.Fatalf("answer after cancelled Apply: %v", err)
	}
	fresh := New(s.Current(), s.Set(), s.Options())
	want, err := fresh.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != len(want.Tuples) || got.NumRepairs != want.NumRepairs {
		t.Errorf("post-cancel answer %+v differs from fresh session %+v", got, want)
	}

	// The next successful Apply re-validates the prepared query and
	// notifies subscribers (wasValid=false forces the notification).
	notified := 0
	p.Subscribe(func(QueryUpdate) { notified++ })
	if _, err := s.Apply(relational.Delta{Removed: []relational.Fact{add}}); err != nil {
		t.Fatalf("apply after cancellation: %v", err)
	}
	if !p.Valid() {
		t.Error("prepared query not re-validated by successful Apply")
	}
	if notified == 0 {
		t.Error("subscriber not notified on re-validation")
	}
}

package session

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/direct"
	"repro/internal/fdgen"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
)

func tuplesEqual(a, b []relational.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestDirectSessionIncremental pins the O(|Δ|) maintenance contract: a
// long-lived EngineDirect session fed a stream of deltas must answer
// exactly like a direct engine rebuilt from scratch on the final instance,
// and it must get there incrementally — InitialFacts frozen after New,
// DeltaFacts growing with the stream, never a reclassification.
func TestDirectSessionIncremental(t *testing.T) {
	ctx := context.Background()
	queries := []*query.Q{
		parser.MustQuery(`q(K,V) :- r0(K,V,W).`),
		parser.MustQuery(`q(K) :- r0(K,v1,W).`),
		parser.MustQuery(`q :- r0(K,v0,W).`),
	}
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := fdgen.Config{
				Rows:       24,
				GroupSize:  3,
				Violations: 2 + int(seed%2),
				Classes:    2,
				NullRate:   0.1,
				Seed:       seed,
			}
			d, set := fdgen.Generate(cfg)
			opts := NewOptions()
			opts.Engine = EngineDirect
			s := New(d.Clone(), set, opts)

			// Force the classification to exist before the stream so the
			// stats prove updates are absorbed, not rebuilt.
			if _, err := s.AnswerCtx(ctx, queries[0]); err != nil {
				t.Fatalf("initial answer: %v", err)
			}
			initial := s.DirectStats().InitialFacts
			if initial == 0 {
				t.Fatalf("classification not built")
			}

			deltas := fdgen.Updates(cfg, 12, 3)
			applied := 0
			for di, dl := range deltas {
				if _, err := s.ApplyCtx(ctx, dl); err != nil {
					t.Fatalf("apply %d: %v", di, err)
				}
				applied += len(dl.Removed) + len(dl.Added)
				st := s.DirectStats()
				if st.InitialFacts != initial {
					t.Fatalf("apply %d: classification rebuilt (InitialFacts %d -> %d)",
						di, initial, st.InitialFacts)
				}
				if st.DeltaFacts > applied {
					t.Fatalf("apply %d: DeltaFacts %d exceeds delta stream size %d",
						di, st.DeltaFacts, applied)
				}

				scratch, err := direct.New(s.head.Current(), set)
				if err != nil {
					t.Fatalf("apply %d: scratch rebuild: %v", di, err)
				}
				if got, want := s.dir.NumRepairs(), scratch.NumRepairs(); got != want {
					t.Fatalf("apply %d: NumRepairs session=%d scratch=%d", di, got, want)
				}
				for qi, q := range queries {
					got, err := s.AnswerCtx(ctx, q)
					if err != nil {
						t.Fatalf("apply %d q%d session: %v", di, qi, err)
					}
					want, err := scratch.CertainCtx(ctx, s.head.Current(), q)
					if err != nil {
						t.Fatalf("apply %d q%d scratch: %v", di, qi, err)
					}
					if q.IsBoolean() {
						if got.Boolean != want.Boolean {
							t.Fatalf("apply %d q%d: boolean session=%v scratch=%v",
								di, qi, got.Boolean, want.Boolean)
						}
					} else if !tuplesEqual(got.Tuples, want.Tuples) {
						t.Fatalf("apply %d q%d: session=%v scratch=%v",
							di, qi, got.Tuples, want.Tuples)
					}
					gotPoss, err := s.PossibleCtx(ctx, q)
					if err != nil {
						t.Fatalf("apply %d q%d possible: %v", di, qi, err)
					}
					wantPoss, err := scratch.PossibleCtx(ctx, s.head.Current(), q)
					if err != nil {
						t.Fatalf("apply %d q%d scratch possible: %v", di, qi, err)
					}
					if !tuplesEqual(gotPoss, wantPoss) {
						t.Fatalf("apply %d q%d: possible session=%v scratch=%v",
							di, qi, gotPoss, wantPoss)
					}
				}
			}
			if s.DirectStats().DeltaFacts == 0 {
				t.Fatalf("delta stream was empty — test proves nothing")
			}
		})
	}
}

// TestEngineAutoRouting pins the constraint-class router: FD-only sets
// resolve to the direct engine, everything else falls back to search, and
// classic-mode sessions never take the null-aware classification.
func TestEngineAutoRouting(t *testing.T) {
	fdSet := parser.MustConstraints("r(X, Y1, W1), r(X, Y2, W2) -> Y1 = Y2.")
	denialSet := parser.MustConstraints("p(X), q(X) -> false.")

	opts := NewOptions()
	opts.Engine = EngineAuto
	if s := New(relational.NewInstance(), fdSet, opts); s.opts.Engine != EngineDirect {
		t.Errorf("FD-only auto: got %v, want direct", s.opts.Engine)
	}
	if s := New(relational.NewInstance(), denialSet, opts); s.opts.Engine != EngineSearch {
		t.Errorf("denial auto: got %v, want search", s.opts.Engine)
	}
	classic := opts
	classic.Repair.Mode = repair.Classic
	if s := New(relational.NewInstance(), fdSet, classic); s.opts.Engine != EngineSearch {
		t.Errorf("classic auto: got %v, want search", s.opts.Engine)
	}
}

// TestDirectScopeRejection pins the typed error: forcing EngineDirect on a
// non-FD set fails with *direct.ScopeError at answer time.
func TestDirectScopeRejection(t *testing.T) {
	set := parser.MustConstraints("p(X), q(X) -> false.")
	opts := NewOptions()
	opts.Engine = EngineDirect
	s := New(relational.NewInstance(), set, opts)
	_, err := s.Answer(parser.MustQuery(`q :- p(X).`))
	var scope *direct.ScopeError
	if !errors.As(err, &scope) {
		t.Fatalf("got %v, want *direct.ScopeError", err)
	}
	if _, err := s.Possible(parser.MustQuery(`q :- p(X).`)); !errors.As(err, &scope) {
		t.Fatalf("possible: got %v, want *direct.ScopeError", err)
	}
}

package session_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/nullsem"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/session"
	"repro/internal/value"
)

// The differential contract: after any chain of Apply calls, a session's
// maintained violations, repair set, one-shot answers and standing-query
// answers are byte-identical to a fresh scratch computation
// (core.ConsistentAnswers et al.) on an independently built copy of the
// mutated instance — for all three engines, workers {1, 4}, under -race.

// diffCase is one (IC set, query battery) scenario. The t relation is
// deliberately unconstrained so random updates exercise the
// constraint-irrelevant fast path (repairs rebased, not re-enumerated).
type diffCase struct {
	name    string
	ics     string
	queries []string
	// seedN/steps size the run; the cyclic-RIC case stays small because
	// its model count grows steeply with the instance (and the race
	// detector multiplies every worker-pool step).
	seedN, steps int
}

var diffCases = []diffCase{
	{
		name: "key+ric+nnc",
		ics: `
			r(X, Y), r(X, Z) -> Y = Z.
			s(U, V) -> r(V, W).
			r(X, Y), isnull(X) -> false.
		`,
		queries: []string{
			`q(V) :- s(U, V).`,
			`q(X, Y) :- r(X, Y).`,
			`q :- r(a, b).`,
			`q(X) :- r(X, Y), t(X, Z).`,
		},
		seedN: 6, steps: 7,
	},
	{
		name: "fd+denial",
		ics: `
			s(X, Y), s(X, Z) -> Y = Z.
			r(X, X) -> false.
		`,
		queries: []string{
			`q(Y) :- s(X, Y).`,
			`q :- s(a, b).`,
			`q(X) :- t(X, Y), not r(X, Y).`,
		},
		seedN: 6, steps: 7,
	},
	{
		name: "ric-cycle",
		ics: `
			r(X, Y) -> s(Y, Z).
			s(X, Y) -> r(Y, Z).
		`,
		queries: []string{
			`q(X) :- r(X, Y).`,
			`q :- s(b, a).`,
		},
		seedN: 4, steps: 4,
	},
}

// refDB is the scratch-side mirror: a plain fact set rebuilt into a fresh
// instance at every step, sharing nothing with the session.
type refDB map[string]relational.Fact

func (r refDB) apply(dl relational.Delta) {
	for _, f := range dl.Removed {
		delete(r, f.Key())
	}
	for _, f := range dl.Added {
		r[f.Key()] = f
	}
}

func (r refDB) instance() *relational.Instance {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	d := relational.NewInstance()
	for _, k := range keys {
		d.Insert(r[k])
	}
	return d
}

// factPool is the closed universe updates draw from.
func factPool() []relational.Fact {
	vals := []value.V{value.Str("a"), value.Str("b"), value.Str("c"), value.Null()}
	var pool []relational.Fact
	for _, p := range []string{"r", "s", "t"} {
		for _, x := range vals {
			for _, y := range vals {
				pool = append(pool, relational.F(p, x, y))
			}
		}
	}
	return pool
}

func randomDelta(rng *rand.Rand, pool []relational.Fact, have refDB) relational.Delta {
	var dl relational.Delta
	used := map[string]bool{}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		f := pool[rng.Intn(len(pool))]
		if used[f.Key()] {
			continue
		}
		used[f.Key()] = true
		if _, present := have[f.Key()]; present && rng.Intn(2) == 0 {
			dl.Removed = append(dl.Removed, f)
		} else {
			dl.Added = append(dl.Added, f)
		}
	}
	relational.SortFacts(dl.Removed)
	relational.SortFacts(dl.Added)
	return dl
}

func seedDB(rng *rand.Rand, pool []relational.Fact, n int) refDB {
	db := refDB{}
	for len(db) < n {
		f := pool[rng.Intn(len(pool))]
		db[f.Key()] = f
	}
	return db
}

func violationKeys(vs []nullsem.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	sort.Strings(out)
	return out
}

func tuplesKey(ts []relational.Tuple) string {
	s := ""
	for _, t := range ts {
		s += t.Key() + ";"
	}
	return s
}

func answersEqual(a, b session.Answer) bool {
	return a.Boolean == b.Boolean && tuplesKey(a.Tuples) == tuplesKey(b.Tuples)
}

func TestSessionEqualsScratchDifferential(t *testing.T) {
	engines := []session.Engine{session.EngineSearch, session.EngineProgram, session.EngineProgramCautious}
	pool := factPool()
	for _, tc := range diffCases {
		set := parser.MustConstraints(tc.ics)
		var queries []*query.Q
		for _, src := range tc.queries {
			queries = append(queries, parser.MustQuery(src))
		}
		for _, engine := range engines {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/workers=%d", tc.name, engine, workers)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(1009*workers) + int64(len(tc.name))))
					db := seedDB(rng, pool, tc.seedN)

					opts := session.NewOptions()
					opts.Engine = engine
					opts.Repair.Workers = workers
					opts.Stable.Workers = workers

					s := session.New(db.instance(), set, opts)
					var prepared []*session.Prepared
					for _, q := range queries {
						p, err := s.Prepare(q)
						if err != nil {
							t.Fatalf("Prepare(%s): %v", q, err)
						}
						prepared = append(prepared, p)
					}

					for step := 0; step < tc.steps; step++ {
						dl := randomDelta(rng, pool, db)
						db.apply(dl)
						if _, err := s.Apply(dl); err != nil {
							t.Fatalf("step %d: Apply(%s): %v", step, dl, err)
						}
						scratch := db.instance()

						// Consistency and maintained violations.
						report := nullsem.Check(scratch, set, nullsem.NullAware)
						if got, want := s.Consistent(), report.Consistent(); got != want {
							t.Fatalf("step %d: Consistent() = %v, scratch %v", step, got, want)
						}
						gotV := violationKeys(s.Violations())
						wantV := violationKeys(report.IC)
						if fmt.Sprint(gotV) != fmt.Sprint(wantV) {
							t.Fatalf("step %d: maintained violations %v != scratch %v", step, gotV, wantV)
						}

						// Repair set, byte-identical in canonical order.
						sessionRepairs, err := s.Repairs()
						if err != nil {
							t.Fatalf("step %d: session Repairs: %v", step, err)
						}
						scratchRepairs, err := core.RepairsOf(scratch, set, opts)
						if err != nil {
							t.Fatalf("step %d: scratch RepairsOf: %v", step, err)
						}
						if len(sessionRepairs) != len(scratchRepairs) {
							t.Fatalf("step %d: %d session repairs, %d scratch", step, len(sessionRepairs), len(scratchRepairs))
						}
						for i := range sessionRepairs {
							if sessionRepairs[i].Key() != scratchRepairs[i].Key() {
								t.Fatalf("step %d: repair %d differs\nsession: %s\nscratch: %s",
									step, i, sessionRepairs[i], scratchRepairs[i])
							}
						}

						// One-shot answers and maintained standing answers.
						for qi, q := range queries {
							want, err := core.ConsistentAnswers(scratch, set, q, opts)
							if err != nil {
								t.Fatalf("step %d: scratch ConsistentAnswers(%s): %v", step, q, err)
							}
							got, err := s.Answer(q)
							if err != nil {
								t.Fatalf("step %d: session Answer(%s): %v", step, q, err)
							}
							if !answersEqual(got, want) {
								t.Fatalf("step %d query %s:\nsession %+v\nscratch %+v", step, q, got, want)
							}
							p := prepared[qi]
							if q.IsBoolean() {
								if p.Boolean() != want.Boolean {
									t.Fatalf("step %d query %s: prepared Boolean %v, scratch %v", step, q, p.Boolean(), want.Boolean)
								}
							} else if tuplesKey(p.Answers()) != tuplesKey(want.Tuples) {
								t.Fatalf("step %d query %s: prepared %v, scratch %v", step, q, p.Answers(), want.Tuples)
							}
						}

						// Brave answers ride the same caches.
						bq := queries[0]
						wantP, err := core.PossibleAnswers(scratch, set, bq, opts)
						if err != nil {
							t.Fatalf("step %d: scratch PossibleAnswers: %v", step, err)
						}
						gotP, err := s.Possible(bq)
						if err != nil {
							t.Fatalf("step %d: session Possible: %v", step, err)
						}
						if tuplesKey(gotP) != tuplesKey(wantP) {
							t.Fatalf("step %d: possible %v != scratch %v", step, gotP, wantP)
						}
					}
				})
			}
		}
	}
}

// TestSessionSubscribeMatchesScratchDiff pins the Subscribe contract: the
// pushed diffs, replayed over the initial answers, always equal the
// scratch answers on the mutated instance.
func TestSessionSubscribeMatchesScratchDiff(t *testing.T) {
	set := parser.MustConstraints(`
		r(X, Y), r(X, Z) -> Y = Z.
		s(U, V) -> r(V, W).
	`)
	q := parser.MustQuery(`q(V) :- s(U, V).`)
	pool := factPool()
	rng := rand.New(rand.NewSource(42))
	db := seedDB(rng, pool, 6)

	s := session.New(db.instance(), set, session.NewOptions())
	p, err := s.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	current := map[string]relational.Tuple{}
	for _, tu := range p.Answers() {
		current[tu.Key()] = tu
	}
	p.Subscribe(func(u session.QueryUpdate) {
		for _, tu := range u.Removed {
			if _, ok := current[tu.Key()]; !ok {
				t.Errorf("removed tuple %v was not an answer", tu)
			}
			delete(current, tu.Key())
		}
		for _, tu := range u.Added {
			if _, ok := current[tu.Key()]; ok {
				t.Errorf("added tuple %v already an answer", tu)
			}
			current[tu.Key()] = tu
		}
	})

	for step := 0; step < 10; step++ {
		dl := randomDelta(rng, pool, db)
		db.apply(dl)
		if _, err := s.Apply(dl); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, err := core.ConsistentAnswers(db.instance(), set, q, session.NewOptions())
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		wantKeys := map[string]bool{}
		for _, tu := range want.Tuples {
			wantKeys[tu.Key()] = true
		}
		if len(wantKeys) != len(current) {
			t.Fatalf("step %d: replayed answers %v, scratch %v", step, current, want.Tuples)
		}
		for k := range wantKeys {
			if _, ok := current[k]; !ok {
				t.Fatalf("step %d: replayed answers missing %s", step, k)
			}
		}
	}
}

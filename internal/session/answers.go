package session

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/repairprog"
	"repro/internal/stable"
)

// Answer computes the consistent answers to q on the session's current
// head with the session's engine. Results are identical to a one-shot
// computation on the same instance; a warm session answers from its cached
// repair set (search/program) or cached translation and base grounding
// (program engines) instead of re-deriving them.
func (s *Session) Answer(q *query.Q) (Answer, error) {
	return s.AnswerCtx(context.Background(), q)
}

// AnswerCtx is Answer under a context. Cancellation aborts the underlying
// repair/stable enumeration and returns ctx.Err(); the session's caches are
// never left partially filled (a completed enumeration populates them, a
// cancelled one leaves them cold), so later calls are unaffected.
func (s *Session) AnswerCtx(ctx context.Context, q *query.Q) (Answer, error) {
	if err := q.Validate(); err != nil {
		return Answer{}, err
	}
	switch s.opts.Engine {
	case EngineProgramCautious:
		return s.cautiousAnswer(ctx, q)
	case EngineProgram:
		return s.programAnswer(ctx, q)
	case EngineDirect:
		return s.directAnswer(ctx, q)
	default:
		return s.searchAnswer(ctx, q)
	}
}

// searchAnswer implements EngineSearch. Non-boolean queries intersect one
// base evaluation patched across the cached repair set. Boolean queries
// answer from the cache when it exists; a cold session streams the search
// (seeded from the maintained violation lists) exactly like the one-shot
// engine — leaves feed the online ≤_D antichain, each surviving candidate
// is evaluated by patching the base result along its delta, and the
// moment a falsifying leaf carries a ConfirmMinimal certificate the whole
// search is cancelled (the certain answer is already no). A completed
// stream populates the repair cache for later calls.
func (s *Session) searchAnswer(ctx context.Context, q *query.Q) (Answer, error) {
	if !q.IsBoolean() {
		if err := s.ensureRepairs(ctx); err != nil {
			return Answer{}, err
		}
		if len(s.repairs) == 0 {
			return Answer{}, errEmptyRepairSet
		}
		ans := Answer{NumRepairs: len(s.repairs), StatesExplored: s.searchStats.StatesExplored}
		var err error
		if ans.Tuples, err = s.certainTuples(q); err != nil {
			return Answer{}, err
		}
		return ans, nil
	}

	cur := s.head.Current()
	// One base evaluation of q; every candidate is answered by patching
	// that result along its delta — O(|Δ|) anchored joins instead of a
	// full per-candidate evaluation.
	be, err := query.NewBaseEval(cur, q)
	if err != nil {
		return Answer{}, err
	}
	if s.repairsOK {
		if len(s.repairs) == 0 {
			return Answer{}, errEmptyRepairSet
		}
		ans := Answer{NumRepairs: len(s.repairs), StatesExplored: s.searchStats.StatesExplored, Boolean: true}
		for _, r := range s.repairs {
			if len(be.EvalOn(r)) == 0 {
				ans.Boolean = false
				break
			}
		}
		return ans, nil
	}

	ropts := s.opts.Repair
	if !ropts.ScratchProbe {
		ropts.Seed = s.seed()
	}
	ac := repair.NewAntichain(cur, ropts.Mode)
	holdsBy := map[*relational.Instance]bool{}
	short := false
	// A failed certificate costs up to 2^ConfirmLimit consistency checks
	// (the falsifying leaf is minimal so far, but its dominator arrives
	// later), so stop attempting after a few misses: the stream still
	// completes and the final answer is unchanged.
	confirmBudget := maxConfirmAttempts
	stats, err := repair.EnumerateCtx(ctx, cur, s.set, ropts, func(leaf *relational.Instance) bool {
		minimal, displaced := ac.Add(leaf)
		for _, m := range displaced {
			delete(holdsBy, m)
		}
		if !minimal {
			return true
		}
		holds := len(be.EvalOn(leaf)) > 0
		holdsBy[leaf] = holds
		if !holds && confirmBudget > 0 {
			confirmBudget--
			if repair.ConfirmMinimal(cur, leaf, s.set, s.opts.Repair) {
				short = true
				return false
			}
		}
		return true
	})
	if err != nil {
		return Answer{}, err
	}
	ans := Answer{StatesExplored: stats.StatesExplored}
	if short {
		ans.ShortCircuited = true
		// Exactly one repair — the confirmed counterexample — has been
		// established; report that, deterministically across worker
		// counts (the surviving-candidate count at the cancellation
		// point is scheduling-dependent for Workers > 1).
		ans.NumRepairs = 1
		return ans, nil
	}
	if stats.Leaves == 0 {
		return Answer{}, errEmptyRepairSet
	}
	// The stream ran to completion: keep its results as the session's
	// repair cache.
	s.repairs, s.deltas = ac.Results()
	s.searchStats = stats
	s.rebuildPostings()
	s.repairsOK = true
	ans.NumRepairs = len(s.repairs)
	ans.Boolean = true
	for _, r := range s.repairs {
		if !holdsBy[r] {
			ans.Boolean = false
			break
		}
	}
	return ans, nil
}

// programAnswer implements EngineProgram. Non-boolean queries evaluate
// the cached repair set (built once from the stable-model stream). A
// boolean query with no cache rides the model stream and short-circuits
// at the first falsifying repair — every stable model of Π(D, IC) induces
// a repair (Theorem 4), so the certain answer is already no and the rest
// of the enumeration is cancelled.
func (s *Session) programAnswer(ctx context.Context, q *query.Q) (Answer, error) {
	if !q.IsBoolean() {
		if err := s.ensureRepairs(ctx); err != nil {
			return Answer{}, err
		}
		if len(s.repairs) == 0 {
			return Answer{}, errEmptyRepairSet
		}
		ans := Answer{NumRepairs: len(s.repairs)}
		var err error
		if ans.Tuples, err = s.certainTuples(q); err != nil {
			return Answer{}, err
		}
		return ans, nil
	}
	cur := s.head.Current()
	be, err := query.NewBaseEval(cur, q)
	if err != nil {
		return Answer{}, err
	}
	if s.repairsOK {
		if len(s.repairs) == 0 {
			return Answer{}, errEmptyRepairSet
		}
		ans := Answer{NumRepairs: len(s.repairs), Boolean: true}
		for _, r := range s.repairs {
			if len(be.EvalOn(r)) == 0 {
				ans.Boolean = false
				break
			}
		}
		return ans, nil
	}
	tr, err := s.translation()
	if err != nil {
		return Answer{}, err
	}
	seen := relational.NewInstanceSet()
	holds := true
	short := false
	if err := tr.StreamRepairsCtx(ctx, s.opts.Stable, func(inst *relational.Instance, delta relational.Delta, _ stable.Model) bool {
		if !seen.Add(inst) {
			return true
		}
		if len(be.EvalDelta(inst, delta)) == 0 {
			holds = false
			short = true
			return false
		}
		return true
	}); err != nil {
		return Answer{}, err
	}
	if seen.Len() == 0 {
		return Answer{}, errEmptyRepairSet
	}
	return Answer{NumRepairs: seen.Len(), Boolean: holds, ShortCircuited: short}, nil
}

// cautiousAnswer implements EngineProgramCautious: cautious reasoning
// over the stable models of Π(D, IC) ∪ Π(q) on the session's cached
// translation and base grounding. A query mentioning a passthrough
// relation that drifted since the translation was built rebuilds the
// translation first (see Session.trDirty).
func (s *Session) cautiousAnswer(ctx context.Context, q *query.Q) (Answer, error) {
	if len(s.trDirty) > 0 {
		for _, name := range q.Preds() {
			if s.trDirty[name] {
				s.tr, s.trDirty = nil, nil
				break
			}
		}
	}
	tr, err := s.translation()
	if err != nil {
		return Answer{}, err
	}
	return s.cautiousQuery(ctx, tr, q)
}

// cautiousQuery answers one query over the translation's cached base
// grounding: the query rules are ground against the retained possible-set
// snapshot (no re-grounding, no Facts/Rules copy), and the stable models
// of the extended program drive the cautious intersection. The certain
// answers are the running intersection of each model's answer atoms; a
// boolean query short-circuits the moment a model lacks the answer atom —
// that model witnesses a repair falsifying the query, so the certain
// answer is already no and the enumeration is cancelled. Non-boolean
// queries enumerate fully: NumRepairs (the distinct induced repairs) is
// part of the cross-engine differential contract.
func (s *Session) cautiousQuery(ctx context.Context, tr *repairprog.Translation, q *query.Q) (Answer, error) {
	gp, err := tr.GroundWithQuery(q)
	if err != nil {
		return Answer{}, err
	}

	boolean := q.IsBoolean()
	emptyKey := relational.Tuple{}.Key()
	// The distinct-repair count (part of the cross-engine contract) needs
	// no materialized instances: every repair is determined by its delta
	// against the shared base, so a fingerprint delta set dedups in
	// O(|Δ|) per model with no instance build and no key strings at all.
	reader := tr.NewModelReader(gp)
	repairSeen := relational.NewDeltaSet()
	certain := map[string]relational.Tuple{}
	first := true
	short := false
	if err := stable.EnumerateCtx(ctx, gp, s.opts.Stable, func(m stable.Model) bool {
		repairSeen.Add(reader.Delta(m))
		here := map[string]relational.Tuple{}
		for _, id := range m {
			f := gp.Atoms[id]
			if f.Pred == repairprog.AnswerPred {
				here[f.Args.Key()] = f.Args
			}
		}
		if first {
			first = false
			certain = here
		} else {
			for k := range certain {
				if _, ok := here[k]; !ok {
					delete(certain, k)
				}
			}
		}
		if boolean {
			if _, ok := certain[emptyKey]; !ok {
				short = true
				return false
			}
		}
		return true
	}); err != nil {
		return Answer{}, err
	}
	if first {
		return Answer{}, fmt.Errorf("the repair program has no stable model: %w", ErrInconsistentUnrepairable)
	}

	ans := Answer{NumRepairs: repairSeen.Len(), ShortCircuited: short}
	if boolean {
		_, ans.Boolean = certain[emptyKey]
		return ans, nil
	}
	ans.Tuples = sortedTuples(certain)
	return ans, nil
}

// Possible returns the tuples answering q in at least one repair (brave
// semantics). The search engine evaluates the cached repair set; the
// program engines ride the stable-model stream, cancelling a boolean
// query at the first satisfying repair.
func (s *Session) Possible(q *query.Q) ([]relational.Tuple, error) {
	return s.PossibleCtx(context.Background(), q)
}

// PossibleCtx is Possible under a context (see AnswerCtx for the
// cancellation contract).
func (s *Session) PossibleCtx(ctx context.Context, q *query.Q) ([]relational.Tuple, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	switch s.opts.Engine {
	case EngineDirect:
		return s.directPossible(ctx, q)
	case EngineSearch:
	default:
		return s.possibleProgram(ctx, q)
	}
	if err := s.ensureRepairs(ctx); err != nil {
		return nil, err
	}
	if len(s.repairs) == 0 {
		return nil, errEmptyRepairSet
	}
	be, err := query.NewBaseEval(s.head.Current(), q)
	if err != nil {
		return nil, err
	}
	seen := map[string]relational.Tuple{}
	for _, r := range s.repairs {
		for _, t := range be.EvalOn(r) {
			seen[t.Key()] = t
		}
	}
	return sortedTuples(seen), nil
}

// possibleProgram unions per-repair answers over the stable-model stream
// of the session's translation.
func (s *Session) possibleProgram(ctx context.Context, q *query.Q) ([]relational.Tuple, error) {
	tr, err := s.translation()
	if err != nil {
		return nil, err
	}
	be, err := query.NewBaseEval(s.head.Current(), q)
	if err != nil {
		return nil, err
	}
	boolean := q.IsBoolean()
	seenRepair := relational.NewInstanceSet()
	seen := map[string]relational.Tuple{}
	if err := tr.StreamRepairsCtx(ctx, s.opts.Stable, func(inst *relational.Instance, delta relational.Delta, _ stable.Model) bool {
		if !seenRepair.Add(inst) {
			return true
		}
		for _, t := range be.EvalDelta(inst, delta) {
			seen[t.Key()] = t
		}
		return !(boolean && len(seen) > 0)
	}); err != nil {
		return nil, err
	}
	return sortedTuples(seen), nil
}

// certainTuples intersects the answers of q across the cached repairs,
// breaking off as soon as the intersection empties. q is evaluated in
// full once, on the current head; each repair's answer set is then
// computed by patching that base result along its delta, so k repairs
// cost one evaluation plus k·O(|Δ|) anchored joins rather than k full
// joins.
func (s *Session) certainTuples(q *query.Q) ([]relational.Tuple, error) {
	be, err := query.NewBaseEval(s.head.Current(), q)
	if err != nil {
		return nil, err
	}
	return certainWith(be, s.repairs), nil
}

// certainWith is the shared intersection core. Each repair's answer set is
// (base answers − lost_r) ∪ fresh_r with fresh_r disjoint from the base
// answers, so the intersection across the repair set is
//
//	(base answers − ∪_r lost_r) ∪ ∩_r fresh_r
//
// computed from the per-repair diffs in O(Σ|diff_r|) plus one linear pass
// over the (sorted) base answers — no per-repair answer list is ever
// materialized.
func certainWith(be *query.BaseEval, repairs []*relational.Instance) []relational.Tuple {
	if len(repairs) == 0 {
		return nil
	}
	var lostAny map[string]bool
	var freshAll map[string]relational.Tuple
	for i, r := range repairs {
		fresh, lost := be.DiffOn(r)
		for k := range lost {
			if lostAny == nil {
				lostAny = map[string]bool{}
			}
			lostAny[k] = true
		}
		if i == 0 {
			freshAll = fresh
			continue
		}
		for k := range freshAll {
			if _, ok := fresh[k]; !ok {
				delete(freshAll, k)
			}
		}
	}
	base, keys := be.BaseAnswers(), be.BaseKeys()
	freshSorted := make([]relational.Tuple, 0, len(freshAll))
	for _, t := range freshAll {
		freshSorted = append(freshSorted, t)
	}
	sort.Slice(freshSorted, func(i, j int) bool { return freshSorted[i].Compare(freshSorted[j]) < 0 })
	if lostAny == nil && len(freshSorted) == 0 {
		return append([]relational.Tuple(nil), base...)
	}
	out := make([]relational.Tuple, 0, len(base)+len(freshSorted))
	fi := 0
	for ti, t := range base {
		if lostAny != nil && lostAny[keys[ti]] {
			continue
		}
		for fi < len(freshSorted) && freshSorted[fi].Compare(t) < 0 {
			out = append(out, freshSorted[fi])
			fi++
		}
		out = append(out, t)
	}
	out = append(out, freshSorted[fi:]...)
	if len(out) == 0 {
		return nil
	}
	return out
}

// intersectSorted intersects two Compare-sorted distinct tuple lists with
// a two-pointer walk, preserving order.
func intersectSorted(a, b []relational.Tuple) []relational.Tuple {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := a[i].Compare(b[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sortedTuples flattens a keyed tuple set into Compare order.
func sortedTuples(m map[string]relational.Tuple) []relational.Tuple {
	if len(m) == 0 {
		return nil
	}
	out := make([]relational.Tuple, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Package session turns one-shot consistent query answering into a
// persistent service primitive. A Session owns a (D, IC) pair — a frozen
// base anchor with a mutable head (relational.Head), the constraint set,
// the maintained per-IC violation lists, the cached repair set with its
// aligned deltas and fingerprint posting lists, the cached repair-program
// translation (whose base grounding repairprog.Translation retains), and a
// set of prepared standing queries with their query.BaseEval plans.
//
// Session.Apply(delta) advances all of that in O(|Δ|) instead of O(|D|):
// nullsem.ICChecker.Update moves each violation list across the delta;
// constraint-irrelevant updates rebase the cached repairs verbatim (their
// deltas are provably unchanged — every repair-delta fact mentions a
// constraint predicate, so a repair of the old head ± the update is a
// repair of the new head); constraint-relevant updates invalidate exactly
// the cached repairs whose deltas intersect the update (fingerprint
// posting lists over the antichain results) and re-enumerate with the
// maintained violation lists seeded into the search root (repair.Seed), so
// even the "from scratch" path never re-checks a constraint over the whole
// instance; and each prepared query is re-answered by patching its base
// evaluation along the per-repair deltas, with changed-answer diffs pushed
// to Subscribe callbacks.
//
// The one-shot entry points in internal/core are thin adapters over a
// throwaway Session, so every engine — search, program, cautious — runs on
// this machinery whether or not the caller keeps the session.
package session

import (
	"context"
	"errors"
	"sort"

	"repro/internal/constraint"
	"repro/internal/direct"
	"repro/internal/ground"
	"repro/internal/nullsem"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/repairprog"
	"repro/internal/stable"
)

// Engine selects how repairs are produced.
type Engine uint8

const (
	// EngineSearch uses the violation-driven repair search.
	EngineSearch Engine = iota
	// EngineProgram uses the Definition 9 repair program and its stable
	// models, materializing each repair and evaluating the query on it.
	EngineProgram
	// EngineProgramCautious runs the paper's Section 5 pipeline
	// end-to-end: the query is compiled to rules over the t**-annotated
	// predicates, appended to the repair program, and the consistent
	// answers are the cautious (certain) consequences of the combined
	// program — no repair is ever materialized.
	EngineProgramCautious
	// EngineDirect answers FD-only constraint sets from the repair-less
	// polynomial classification of internal/direct (Laurent–Spyratos): no
	// repair is ever enumerated, and Session.Apply maintains the
	// classification in O(|Δ|). Out-of-scope sets (anything beyond one FD
	// per relation, or classic semantics) fail with *direct.ScopeError.
	EngineDirect
	// EngineAuto routes by constraint class at session construction:
	// FD-only sets under null-aware semantics take EngineDirect, everything
	// else EngineSearch. The session's Options() report the resolved
	// engine.
	EngineAuto
)

func (e Engine) String() string {
	switch e {
	case EngineProgram:
		return "program"
	case EngineProgramCautious:
		return "program-cautious"
	case EngineDirect:
		return "direct"
	case EngineAuto:
		return "auto"
	default:
		return "search"
	}
}

// Options configures consistent query answering.
type Options struct {
	Engine Engine
	// Variant selects the repair-program flavour for EngineProgram.
	// The zero value is repairprog.VariantPaper; NewOptions defaults to
	// the corrected variant, which is the one matching Theorem 4 on all
	// inputs.
	Variant repairprog.Variant
	// Repair configures the search engine. Repair.Seed is owned by the
	// session (it wires its maintained violation lists there); any caller
	// value is ignored.
	Repair repair.Options
	// Stable configures the model enumeration.
	Stable stable.Options
	// Ground configures the grounding of the repair program (worker pool,
	// naive-fixpoint ablation). The answers are identical for every
	// setting.
	Ground ground.Options
}

// NewOptions returns the default options: search engine, corrected
// program variant.
func NewOptions() Options {
	return Options{Variant: repairprog.VariantCorrected}
}

// Answer is the result of consistent query answering.
type Answer struct {
	// Tuples are the certain answers (sorted, distinct); nil for boolean
	// queries.
	Tuples []relational.Tuple
	// Boolean is the certain answer of a boolean query.
	Boolean bool
	// NumRepairs is the number of repairs inspected. After a short-circuit
	// it is 1: the confirmed-minimal counterexample is the only candidate
	// established as a repair when the search stops.
	NumRepairs int
	// StatesExplored counts the search states visited when the search
	// engine produced the answer (0 for the program engines). After a
	// short-circuit with Workers <= 1 it is strictly below the
	// full-enumeration count; parallel cancellation is best-effort, so
	// in-flight workers may have admitted further states by the time the
	// stop propagates.
	StatesExplored int
	// ShortCircuited reports that the engine stopped at the first
	// counterexample instead of enumerating exhaustively. Only boolean
	// queries short-circuit, and only when the certain answer is no: the
	// search engine stops at the first confirmed-minimal falsifying leaf,
	// and the program engines stop at the first stable model whose induced
	// repair (EngineProgram) or answer-atom set (EngineProgramCautious)
	// falsifies the query — a stable model is a repair outright
	// (Theorem 4), so no certificate is needed. After a program-engine
	// short-circuit NumRepairs counts the distinct repairs seen up to and
	// including the counterexample.
	//
	// Boolean and Tuples are identical for every Repair.Workers and
	// Stable.Workers value; NumRepairs, StatesExplored and ShortCircuited
	// are diagnostics that are deterministic for the program engines and
	// for search Workers <= 1, but can vary with scheduling for larger
	// search worker counts (leaf arrival order decides which falsifying
	// candidates spend the certificate budget). A session answering from
	// its cached repair set reports the full-enumeration diagnostics of
	// the run that filled the cache, never a short-circuit.
	ShortCircuited bool
}

// rebaseThreshold is the head drift at which a session re-anchors. It must
// stay below the Instance overlay-flattening threshold (256): once the live
// head flattens to a private engine, clones stop sharing the anchor's
// engine and every Diff against the anchor degrades from O(|Δ|) to a full
// scan. Re-anchoring earlier keeps that path permanently fast at an O(|D|)
// cost amortized over rebaseThreshold updates.
const rebaseThreshold = 128

// maxConfirmAttempts bounds how many falsifying leaves a boolean search
// answer will try to certify with ConfirmMinimal before falling back to
// plain full enumeration.
const maxConfirmAttempts = 8

// ErrInconsistentUnrepairable reports that an engine produced an empty
// repair set for an inconsistent instance. Proposition 1 guarantees at least
// one repair always exists, so this sentinel signals an engine limitation on
// the given input (e.g. a constraint class outside the engine's scope), not
// a property of the data. API consumers match it with errors.Is.
var ErrInconsistentUnrepairable = errors.New("cqa: empty repair set (Proposition 1 guarantees at least one repair; this indicates an engine limitation on this input)")

// errEmptyRepairSet guards the Proposition 1 invariant (kept as the internal
// alias used throughout this package).
var errEmptyRepairSet = ErrInconsistentUnrepairable

// Session is a persistent (D, IC) pair with maintained CQA state. It is
// not safe for concurrent use; a server wraps one session per client (or
// shards) rather than sharing one across goroutines.
type Session struct {
	set  *constraint.Set
	opts Options
	head *relational.Head
	// icPreds are the predicate names mentioned by any constraint
	// (IC bodies and heads plus NNCs). An update touching none of them is
	// constraint-irrelevant: violations and repair deltas are provably
	// unchanged under the null-based semantics.
	icPreds map[string]bool

	// Maintained violation state (lazy; advanced by Apply once computed).
	checkers []*nullsem.ICChecker
	viols    [][]nullsem.Violation
	violsOK  bool

	// Cached repair set: instances in content-canonical order, deltas
	// aligned, posting lists mapping fact hashes to the indices of repairs
	// whose delta contains a fact with that hash.
	repairsOK   bool
	repairs     []*relational.Instance
	deltas      []relational.Delta
	post        map[uint64][]int
	searchStats repair.Stats

	// Cached repair-program translation (program engines): pruned for the
	// cautious engine, full otherwise. trDirty tracks passthrough
	// relations that drifted since the translation was built — the one
	// surface repairprog.Translation.Rebase cannot keep coherent is
	// query-rule grounding over drifted passthrough relations, so cautious
	// queries mentioning a dirty relation rebuild the translation first.
	tr      *repairprog.Translation
	trDirty map[string]bool

	// Live FD classification (EngineDirect); built lazily, advanced by
	// Apply in O(|Δ|) once built.
	dir *direct.Engine

	prepared []*Prepared
}

// New creates a session over d and set. d is frozen and must not be
// mutated by the caller afterwards; all updates go through Apply. State is
// materialized lazily, so a session used for a single cautious query never
// runs the repair search, and vice versa.
func New(d *relational.Instance, set *constraint.Set, opts Options) *Session {
	opts.Repair.Seed = nil
	if opts.Engine == EngineAuto {
		opts.Engine = resolveAuto(set, opts)
	}
	s := &Session{
		set:     set,
		opts:    opts,
		head:    relational.NewHead(d),
		icPreds: map[string]bool{},
	}
	for _, ps := range set.Preds() {
		s.icPreds[ps.Name] = true
	}
	return s
}

// Current returns the live instance. Read-only: mutate through Apply.
func (s *Session) Current() *relational.Instance { return s.head.Current() }

// Set returns the session's constraint set.
func (s *Session) Set() *constraint.Set { return s.set }

// Options returns the session's options.
func (s *Session) Options() Options { return s.opts }

// ApplyResult summarizes what one Apply did.
type ApplyResult struct {
	// Applied is the effective delta: the facts whose presence actually
	// changed (no-op inserts/deletes are dropped).
	Applied relational.Delta
	// ConstraintRelevant reports whether the update touched a constraint
	// predicate (always true for effective updates in classic mode, where
	// the irrelevance theorem does not hold — insertion candidates come
	// from the active domain, which any fact can extend).
	ConstraintRelevant bool
	// RepairsSurvived / RepairsInvalidated classify the cached repair set:
	// on a constraint-irrelevant update every cached repair survives with
	// its delta intact; on a relevant update the repairs whose deltas
	// intersect the update are invalidated outright, and a survivor is a
	// retained candidate whose delta reappears verbatim in the
	// re-enumeration. Both are 0 when no repair cache existed.
	RepairsSurvived, RepairsInvalidated int
	// Reenumerated reports that the update forced a (seeded) re-enumeration
	// of the repair set during this Apply. False when the cache was
	// rebased, dropped for lazy recomputation, or absent.
	Reenumerated bool
	// QueriesRefreshed / QueriesSkipped count the prepared queries that
	// were re-answered vs. skipped because the update could not change
	// their answers (constraint-irrelevant and touching none of the
	// query's predicates).
	QueriesRefreshed, QueriesSkipped int
}

// Apply advances the session across delta. Violation lists move in
// O(|Δ|·cost(IC)) via ICChecker.Update; the repair cache is rebased
// (irrelevant update) or selectively invalidated and re-enumerated from
// the maintained violation seed (relevant update); prepared queries whose
// predicates the update cannot reach are skipped, the rest are re-answered
// by patching their base evaluations per repair, with changed-answer diffs
// delivered to Subscribe callbacks before Apply returns.
func (s *Session) Apply(delta relational.Delta) (ApplyResult, error) {
	return s.ApplyCtx(context.Background(), delta)
}

// ApplyCtx is Apply under a context. Cancellation can interrupt the
// re-enumeration that refreshes prepared queries; the update itself is
// already applied at that point (the head, violation lists, translation and
// repair cache are all advanced coherently before any enumeration starts),
// so the session stays usable — the interrupted prepared query is marked
// invalid and recomputed from scratch on its next use, and a later
// ApplyCtx/Answer simply redoes the abandoned enumeration.
func (s *Session) ApplyCtx(ctx context.Context, delta relational.Delta) (ApplyResult, error) {
	eff := s.head.Apply(delta)
	res := ApplyResult{Applied: eff}
	if eff.Size() == 0 {
		return res, nil
	}
	relevant := s.touchesConstraints(eff)
	if s.opts.Repair.Mode == repair.Classic {
		// The irrelevance theorem is null-based: classic insertion
		// candidates range over the active domain, which any fact extends.
		relevant = true
	}
	res.ConstraintRelevant = relevant

	// Direct classification: class counts and the conflicted-group set
	// move in O(|Δ|); no re-scan, no repair enumeration.
	if s.dir != nil {
		s.dir.Update(eff)
	}

	// Violations: advance only the checkers whose constraint shares a
	// changed predicate; the rest are untouched by construction.
	if s.violsOK {
		cur := s.head.Current()
		for i, ck := range s.checkers {
			if checkerTouched(ck, eff) {
				s.viols[i] = ck.Update(cur, s.viols[i], eff)
			}
		}
	}

	// Translation: drop when the compiled program went stale, otherwise
	// rebase and remember which passthrough relations drifted.
	if s.tr != nil {
		if s.tr.AffectedBy(eff) {
			s.tr, s.trDirty = nil, nil
		} else {
			s.tr.Rebase(s.head.Current(), eff)
			if s.trDirty == nil {
				s.trDirty = map[string]bool{}
			}
			for _, f := range eff.Facts() {
				s.trDirty[f.Pred] = true
			}
		}
	}

	// Repair cache.
	var retained []relational.Delta
	if s.repairsOK {
		if !relevant {
			s.rebaseRepairs()
			res.RepairsSurvived = len(s.repairs)
		} else {
			touched := s.touchedRepairs(eff)
			res.RepairsInvalidated = len(touched)
			for i, dl := range s.deltas {
				if !touched[i] {
					retained = append(retained, dl)
				}
			}
			s.dropRepairs()
		}
	}

	if s.head.Drift() > rebaseThreshold {
		if err := s.reanchor(); err != nil {
			return res, err
		}
	}

	// Prepared queries. Refreshing needs the repair set for the
	// non-cautious engines, so a relevant update re-enumerates here
	// (seeded from the maintained violation lists).
	for _, p := range s.prepared {
		if !relevant && !p.touches(eff) {
			res.QueriesSkipped++
			continue
		}
		wasEmpty := !s.repairsOK
		if err := s.refresh(ctx, p); err != nil {
			return res, err
		}
		res.QueriesRefreshed++
		if wasEmpty && s.repairsOK {
			res.Reenumerated = true
		}
	}
	if retained != nil && s.repairsOK {
		res.RepairsSurvived = s.countRetained(retained)
	}
	return res, nil
}

// touchesConstraints reports whether any changed fact belongs to a
// constraint predicate.
func (s *Session) touchesConstraints(eff relational.Delta) bool {
	for _, f := range eff.Removed {
		if s.icPreds[f.Pred] {
			return true
		}
	}
	for _, f := range eff.Added {
		if s.icPreds[f.Pred] {
			return true
		}
	}
	return false
}

func checkerTouched(ck *nullsem.ICChecker, eff relational.Delta) bool {
	for _, f := range eff.Removed {
		if ck.SharesPred(f.Pred) {
			return true
		}
	}
	for _, f := range eff.Added {
		if ck.SharesPred(f.Pred) {
			return true
		}
	}
	return false
}

// ensureViolations materializes the per-IC violation lists from the
// current head; Apply keeps them maintained afterwards.
func (s *Session) ensureViolations() {
	if s.violsOK {
		return
	}
	if s.checkers == nil {
		sem := nullsem.NullAware
		if s.opts.Repair.Mode == repair.Classic {
			sem = nullsem.ClassicFO
		}
		s.checkers = make([]*nullsem.ICChecker, len(s.set.ICs))
		for i, ic := range s.set.ICs {
			s.checkers[i] = nullsem.NewICChecker(ic, sem)
		}
	}
	cur := s.head.Current()
	s.viols = make([][]nullsem.Violation, len(s.checkers))
	for i, ck := range s.checkers {
		s.viols[i] = ck.Violations(cur)
	}
	s.violsOK = true
}

// Violations returns the maintained IC violation lists flattened in
// constraint order. Within one IC the order reflects the update history
// (survivors first, then violations seeded by later deltas), so it equals
// a scratch check's list as a set, not necessarily as a sequence. The
// slice is read-only.
func (s *Session) Violations() []nullsem.Violation {
	s.ensureViolations()
	var out []nullsem.Violation
	for _, vs := range s.viols {
		out = append(out, vs...)
	}
	return out
}

// Consistent reports whether the current head satisfies the constraint
// set, from the maintained violation lists plus an indexed NNC probe.
func (s *Session) Consistent() bool {
	s.ensureViolations()
	for _, vs := range s.viols {
		if len(vs) > 0 {
			return false
		}
	}
	cur := s.head.Current()
	for _, n := range s.set.NNCs {
		if _, found := nullsem.FirstViolationNNC(cur, n); found {
			return false
		}
	}
	return true
}

// seed packages the maintained violation lists for the search root.
func (s *Session) seed() *repair.Seed {
	s.ensureViolations()
	return &repair.Seed{Viols: s.viols}
}

// ensureRepairs fills the repair cache with the session's engine:
// the streaming search (seeded from the maintained violation lists) for
// EngineSearch, the stable models of the cached translation otherwise.
// An empty result is cached as empty; answer paths enforce Proposition 1.
// Cancellation mid-fill leaves the cache untouched (still cold) — partial
// enumerations are never cached, so a later call recomputes cleanly.
func (s *Session) ensureRepairs(ctx context.Context) error {
	if s.repairsOK {
		return nil
	}
	switch s.opts.Engine {
	case EngineProgram, EngineProgramCautious:
		tr, err := s.translation()
		if err != nil {
			return err
		}
		insts, _, err := tr.StableRepairsCtx(ctx, s.opts.Stable)
		if err != nil {
			return err
		}
		cur := s.head.Current()
		s.repairs = insts
		s.deltas = make([]relational.Delta, len(insts))
		for i, inst := range insts {
			s.deltas[i] = relational.Diff(cur, inst)
		}
		s.searchStats = repair.Stats{}
	default:
		ropts := s.opts.Repair
		if !ropts.ScratchProbe {
			ropts.Seed = s.seed()
		}
		cur := s.head.Current()
		ac := repair.NewAntichain(cur, ropts.Mode)
		stats, err := repair.EnumerateCtx(ctx, cur, s.set, ropts, func(leaf *relational.Instance) bool {
			ac.Add(leaf)
			return true
		})
		if err != nil {
			return err
		}
		s.repairs, s.deltas = ac.Results()
		s.searchStats = stats
	}
	s.rebuildPostings()
	s.repairsOK = true
	return nil
}

// Repairs returns the session's repair set in content-canonical order.
// The instances are shared with the cache: read-only.
func (s *Session) Repairs() ([]*relational.Instance, error) {
	return s.RepairsCtx(context.Background())
}

// RepairsCtx is Repairs under a context (cancellation aborts a cold cache
// fill; see ApplyCtx for the non-poisoning contract).
func (s *Session) RepairsCtx(ctx context.Context) ([]*relational.Instance, error) {
	if err := s.ensureRepairs(ctx); err != nil {
		return nil, err
	}
	return append([]*relational.Instance(nil), s.repairs...), nil
}

// Deltas returns Δ(current, repair) aligned with Repairs(). Read-only.
func (s *Session) Deltas() ([]relational.Delta, error) {
	return s.DeltasCtx(context.Background())
}

// DeltasCtx is Deltas under a context.
func (s *Session) DeltasCtx(ctx context.Context) ([]relational.Delta, error) {
	if err := s.ensureRepairs(ctx); err != nil {
		return nil, err
	}
	return append([]relational.Delta(nil), s.deltas...), nil
}

func (s *Session) dropRepairs() {
	s.repairsOK = false
	s.repairs, s.deltas, s.post = nil, nil, nil
	s.searchStats = repair.Stats{}
}

func (s *Session) rebuildPostings() {
	s.post = map[uint64][]int{}
	for i, dl := range s.deltas {
		for _, f := range dl.Facts() {
			h := f.Hash()
			s.post[h] = append(s.post[h], i)
		}
	}
}

// touchedRepairs returns the set of cached repair indices whose delta
// contains a fact of eff — fingerprint posting lists confirmed by Equal.
func (s *Session) touchedRepairs(eff relational.Delta) map[int]bool {
	touched := map[int]bool{}
	for _, f := range eff.Facts() {
		for _, i := range s.post[f.Hash()] {
			if touched[i] {
				continue
			}
			if deltaHasFact(s.deltas[i], f) {
				touched[i] = true
			}
		}
	}
	return touched
}

func deltaHasFact(dl relational.Delta, f relational.Fact) bool {
	for _, g := range dl.Removed {
		if g.Equal(f) {
			return true
		}
	}
	for _, g := range dl.Added {
		if g.Equal(f) {
			return true
		}
	}
	return false
}

// countRetained reports how many retained candidate deltas reappeared
// verbatim in the fresh repair set.
func (s *Session) countRetained(retained []relational.Delta) int {
	have := relational.NewDeltaSet()
	for _, dl := range s.deltas {
		have.Add(dl)
	}
	n := 0
	for _, dl := range retained {
		if have.Has(dl) {
			n++
		}
	}
	return n
}

// rebaseRepairs rebuilds the cached repair instances over the advanced
// head after a constraint-irrelevant update: every delta is provably still
// exactly a repair delta (each of its facts mentions a constraint
// predicate, which the update did not touch), so each instance is the new
// head ± the same delta. Canonical order is re-established — the changed
// passthrough facts participate in Instance.Compare — and the posting
// lists are rebuilt over the new indices.
func (s *Session) rebaseRepairs() {
	cur := s.head.Current()
	for i := range s.repairs {
		r := cur.Clone()
		for _, f := range s.deltas[i].Removed {
			r.Delete(f)
		}
		for _, f := range s.deltas[i].Added {
			r.Insert(f)
		}
		s.repairs[i] = r
	}
	idx := make([]int, len(s.repairs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return s.repairs[idx[a]].Compare(s.repairs[idx[b]]) < 0
	})
	repairs := make([]*relational.Instance, len(idx))
	deltas := make([]relational.Delta, len(idx))
	for at, i := range idx {
		repairs[at] = s.repairs[i]
		deltas[at] = s.deltas[i]
	}
	s.repairs, s.deltas = repairs, deltas
	s.rebuildPostings()
}

// reanchor makes the current head the new anchor (see rebaseThreshold) and
// re-bases everything anchored to the old one: prepared base evaluations
// are rebuilt, cached repair instances are recloned from the new anchor's
// engine, and a surviving translation is repointed.
func (s *Session) reanchor() error {
	s.head.Rebase()
	if s.repairsOK {
		s.rebaseRepairs()
	}
	if s.tr != nil {
		s.tr.Rebase(s.head.Current(), relational.Delta{})
	}
	for _, p := range s.prepared {
		if p.be != nil {
			be, err := query.NewBaseEval(s.head.Anchor(), p.q)
			if err != nil {
				return err
			}
			p.be = be
		}
	}
	return nil
}

// translation returns the cached repair-program translation, building it
// on first use: pruned to the constrained relations for the cautious
// engine (passthrough relations ride the base), full otherwise.
func (s *Session) translation() (*repairprog.Translation, error) {
	if s.tr != nil {
		return s.tr, nil
	}
	var (
		tr  *repairprog.Translation
		err error
	)
	if s.opts.Engine == EngineProgramCautious {
		tr, err = repairprog.BuildWith(s.head.Current(), s.set, repairprog.BuildOptions{
			Variant:            s.opts.Variant,
			PruneUnconstrained: true,
		})
	} else {
		tr, err = repairprog.Build(s.head.Current(), s.set, s.opts.Variant)
	}
	if err != nil {
		return nil, err
	}
	tr.GroundOptions = s.opts.Ground
	s.tr = tr
	s.trDirty = nil
	return tr, nil
}

// Prepared is a standing query registered with Prepare: the session keeps
// its base evaluation plan and current certain answers, re-patching them
// on every Apply that could change them.
type Prepared struct {
	q      *query.Q
	preds  map[string]bool
	be     *query.BaseEval // nil for the cautious engine
	isBool bool

	tuples  []relational.Tuple
	boolAns bool
	valid   bool

	subs []func(QueryUpdate)
}

// QueryUpdate is pushed to subscribers when a prepared query's certain
// answers change across an Apply.
type QueryUpdate struct {
	Prepared *Prepared
	// Added and Removed are the certain-answer tuples that appeared and
	// disappeared (sorted, for non-boolean queries).
	Added, Removed []relational.Tuple
	// Boolean is the new verdict of a boolean query; BooleanChanged
	// reports that it flipped.
	Boolean        bool
	BooleanChanged bool
}

// Query returns the prepared query.
func (p *Prepared) Query() *query.Q { return p.q }

// Answers returns the current certain answers (read-only, sorted); nil
// for boolean queries.
func (p *Prepared) Answers() []relational.Tuple { return p.tuples }

// Boolean returns the current certain verdict of a boolean query.
func (p *Prepared) Boolean() bool { return p.boolAns }

// Valid reports whether the stored answers reflect the session's current
// head. False after a refresh was interrupted (e.g. a cancelled ApplyCtx);
// the next successful Apply recomputes and re-validates them.
func (p *Prepared) Valid() bool { return p.valid }

// Subscribe registers fn to be called (synchronously, inside Apply) each
// time the prepared query's answers change.
func (p *Prepared) Subscribe(fn func(QueryUpdate)) { p.subs = append(p.subs, fn) }

func (p *Prepared) touches(eff relational.Delta) bool {
	for _, f := range eff.Removed {
		if p.preds[f.Pred] {
			return true
		}
	}
	for _, f := range eff.Added {
		if p.preds[f.Pred] {
			return true
		}
	}
	return false
}

// Prepare registers q as a standing query and computes its initial
// answers. The plan (query.BaseEval, anchored at the frozen anchor) is
// kept for the session's lifetime; Apply re-patches the answers.
func (s *Session) Prepare(q *query.Q) (*Prepared, error) {
	return s.PrepareCtx(context.Background(), q)
}

// PrepareCtx is Prepare under a context: cancellation aborts the initial
// answer computation and the query is not registered.
func (s *Session) PrepareCtx(ctx context.Context, q *query.Q) (*Prepared, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	p := &Prepared{q: q, preds: map[string]bool{}, isBool: q.IsBoolean()}
	for _, name := range q.Preds() {
		p.preds[name] = true
	}
	if s.opts.Engine != EngineProgramCautious && s.opts.Engine != EngineDirect {
		be, err := query.NewBaseEval(s.head.Anchor(), q)
		if err != nil {
			return nil, err
		}
		p.be = be
	}
	if err := s.compute(ctx, p); err != nil {
		return nil, err
	}
	s.prepared = append(s.prepared, p)
	return p, nil
}

// compute fills p's answers from the session's current state.
func (s *Session) compute(ctx context.Context, p *Prepared) error {
	if s.opts.Engine == EngineProgramCautious || s.opts.Engine == EngineDirect {
		var (
			ans Answer
			err error
		)
		if s.opts.Engine == EngineDirect {
			ans, err = s.directAnswer(ctx, p.q)
		} else {
			ans, err = s.cautiousAnswer(ctx, p.q)
		}
		if err != nil {
			return err
		}
		p.tuples, p.boolAns, p.valid = ans.Tuples, ans.Boolean, true
		return nil
	}
	if err := s.ensureRepairs(ctx); err != nil {
		return err
	}
	if len(s.repairs) == 0 {
		return errEmptyRepairSet
	}
	if p.isBool {
		holds := true
		for _, r := range s.repairs {
			if len(p.be.EvalOn(r)) == 0 {
				holds = false
				break
			}
		}
		p.boolAns, p.valid = holds, true
		return nil
	}
	p.tuples, p.valid = certainWith(p.be, s.repairs), true
	return nil
}

// refresh recomputes p and notifies subscribers of any change. On error
// (cancellation included) p is marked invalid: its retained answers are
// stale against the advanced head, and the next refresh recomputes and
// notifies unconditionally.
func (s *Session) refresh(ctx context.Context, p *Prepared) error {
	oldTuples, oldBool, wasValid := p.tuples, p.boolAns, p.valid
	if err := s.compute(ctx, p); err != nil {
		p.valid = false
		return err
	}
	if len(p.subs) == 0 {
		return nil
	}
	var upd QueryUpdate
	changed := false
	if p.isBool {
		if !wasValid || oldBool != p.boolAns {
			upd.Boolean, upd.BooleanChanged = p.boolAns, true
			changed = true
		}
	} else {
		added, removed := diffSorted(oldTuples, p.tuples)
		if !wasValid || len(added) > 0 || len(removed) > 0 {
			upd.Added, upd.Removed = added, removed
			changed = true
		}
	}
	if changed {
		upd.Prepared = p
		for _, fn := range p.subs {
			fn(upd)
		}
	}
	return nil
}

// diffSorted compares two Compare-sorted distinct tuple lists and returns
// what newer gained and lost relative to older.
func diffSorted(older, newer []relational.Tuple) (added, removed []relational.Tuple) {
	i, j := 0, 0
	for i < len(older) && j < len(newer) {
		switch c := older[i].Compare(newer[j]); {
		case c < 0:
			removed = append(removed, older[i])
			i++
		case c > 0:
			added = append(added, newer[j])
			j++
		default:
			i++
			j++
		}
	}
	removed = append(removed, older[i:]...)
	added = append(added, newer[j:]...)
	return added, removed
}

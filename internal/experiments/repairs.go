package experiments

import (
	"fmt"
	"io"

	"repro/internal/nullsem"
	"repro/internal/parser"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/value"
)

// This file reproduces the repair-semantics artifacts: Examples 14–20 of
// Section 4.

func init() {
	register(Experiment{
		ID:         "E14",
		Title:      "Example 14: classic repairs sweep the domain",
		PaperClaim: "classic repairs: one deletion plus Student(34,µ) for every domain value µ",
		Run:        runE14,
	})
	register(Experiment{
		ID:         "E15",
		Title:      "Example 15: null-based repairs of the Course/Student instance",
		PaperClaim: "exactly two repairs: delete Course(34,C18), or insert Student(34,null)",
		Run:        runE15,
	})
	register(Experiment{
		ID:         "E16",
		Title:      "Example 16: repairs under a non-generic check constraint",
		PaperClaim: "two repairs: D1 = {} and D2 = {P(a,c), Q(a,null)}",
		Run:        runE16,
	})
	register(Experiment{
		ID:         "E17",
		Title:      "Example 17: null insertion dominates arbitrary-value insertion",
		PaperClaim: "two repairs; D3 = D ∪ {R(b,d)} satisfies IC but D1 <_D D3",
		Run:        runE17,
	})
	register(Experiment{
		ID:         "E18",
		Title:      "Example 18: finitely many repairs for a RIC-cyclic set (Theorem 2)",
		PaperClaim: "exactly four repairs D1–D4, each finite",
		Run:        runE18,
	})
	register(Experiment{
		ID:         "E19",
		Title:      "Example 19: primary key + foreign key + NOT NULL",
		PaperClaim: "four repairs D1–D4",
		Run:        runE19,
	})
	register(Experiment{
		ID:         "E20",
		Title:      "Example 20: conflicting NNC and the deletion-preferring class Rep_d",
		PaperClaim: "repairs are the deletion plus Q(a,µ) for arbitrary µ; Rep_d keeps only the deletion",
		Run:        runE20,
	})
}

func courseStudent() (*relational.Instance, string) {
	return parser.MustInstance(`
		course(21, c15).
		course(34, c18).
		student(21, "Ann").
		student(45, "Paul").
	`), `course(Id, Code) -> student(Id, Name).`
}

func printRepairs(w io.Writer, d *relational.Instance, res repair.Result) {
	for i, r := range res.Repairs {
		fmt.Fprintf(w, "repair %d: %s\n         Δ = %s\n", i+1, r, res.Deltas[i])
	}
	_ = d
}

func sameRepairSet(res repair.Result, want []*relational.Instance) bool {
	if len(res.Repairs) != len(want) {
		return false
	}
	keys := map[string]bool{}
	for _, r := range res.Repairs {
		keys[r.Key()] = true
	}
	for _, r := range want {
		if !keys[r.Key()] {
			return false
		}
	}
	return true
}

func runE14(w io.Writer) error {
	d, setSrc := courseStudent()
	set := parser.MustConstraints(setSrc)
	res, err := repair.Repairs(d, set, repair.Options{Mode: repair.Classic})
	if err != nil {
		return err
	}
	adom := len(d.ActiveDomain())
	fmt.Fprintf(w, "active domain size: %d\n", adom)
	fmt.Fprintf(w, "classic repairs (µ restricted to the active domain): %d\n", len(res.Repairs))
	if len(res.Repairs) != 1+adom {
		return fmt.Errorf("classic repairs = %d, want 1+|adom| = %d", len(res.Repairs), 1+adom)
	}
	for _, r := range res.Repairs {
		for _, f := range relational.Diff(d, r).Added {
			if f.Args.HasNull() {
				return fmt.Errorf("classic repair inserted a null: %v", f)
			}
		}
	}
	fmt.Fprintf(w, "over the paper's infinite domain this family is infinite — the motivation for null-based repairs\n")
	return nil
}

func runE15(w io.Writer) error {
	d, setSrc := courseStudent()
	set := parser.MustConstraints(setSrc)
	res, err := repair.Repairs(d, set, repair.Options{})
	if err != nil {
		return err
	}
	printRepairs(w, d, res)
	del := parser.MustInstance(`course(21, c15). student(21, "Ann"). student(45, "Paul").`)
	ins := d.Clone()
	ins.Insert(relational.F("student", value.Int(34), value.Null()))
	if !sameRepairSet(res, []*relational.Instance{del, ins}) {
		return fmt.Errorf("repairs do not match the paper's two repairs")
	}
	return nil
}

func runE16(w io.Writer) error {
	d := parser.MustInstance(`q(a, b). p(a, c).`)
	set := parser.MustConstraints(`
		p(X, Y) -> q(X, Z).
		q(X, Y) -> Y != b.
	`)
	res, err := repair.Repairs(d, set, repair.Options{})
	if err != nil {
		return err
	}
	printRepairs(w, d, res)
	d1 := relational.NewInstance()
	d2 := parser.MustInstance(`p(a, c). q(a, null).`)
	if !sameRepairSet(res, []*relational.Instance{d1, d2}) {
		return fmt.Errorf("repairs do not match the paper (D1 = {}, D2 = {P(a,c), Q(a,null)})")
	}
	return nil
}

func runE17(w io.Writer) error {
	d := parser.MustInstance(`p(a, null). p(b, c). r(a, b).`)
	set := parser.MustConstraints(`p(X, Y) -> r(X, Z).`)
	res, err := repair.Repairs(d, set, repair.Options{})
	if err != nil {
		return err
	}
	printRepairs(w, d, res)
	d1 := d.Clone()
	d1.Insert(relational.F("r", value.Str("b"), value.Null()))
	d2 := parser.MustInstance(`p(a, null). r(a, b).`)
	if !sameRepairSet(res, []*relational.Instance{d1, d2}) {
		return fmt.Errorf("repairs do not match the paper")
	}
	d3 := d.Clone()
	d3.Insert(relational.F("r", value.Str("b"), value.Str("d")))
	if !nullsem.Satisfies(d3, set, nullsem.NullAware) {
		return fmt.Errorf("D3 must satisfy IC")
	}
	if !repair.LessD(d, d1, d3) {
		return fmt.Errorf("D1 <_D D3 must hold")
	}
	fmt.Fprintf(w, "D3 = D ∪ {r(b,d)} satisfies IC but D1 <_D D3: not a repair\n")
	return nil
}

func runE18(w io.Writer) error {
	d := parser.MustInstance(`p(a, b). p(null, a). t(c).`)
	set := parser.MustConstraints(`
		p(X, Y) -> t(X).
		t(X) -> p(Y, X).
	`)
	res, err := repair.Repairs(d, set, repair.Options{})
	if err != nil {
		return err
	}
	printRepairs(w, d, res)
	want := []*relational.Instance{
		parser.MustInstance(`p(a, b). p(null, a). t(c). p(null, c). t(a).`),
		parser.MustInstance(`p(a, b). p(null, a). t(a).`),
		parser.MustInstance(`p(null, a). t(c). p(null, c).`),
		parser.MustInstance(`p(null, a).`),
	}
	if !sameRepairSet(res, want) {
		return fmt.Errorf("repairs do not match the paper's D1–D4")
	}
	fmt.Fprintf(w, "the set is RIC-cyclic, yet the repair set is finite: CQA is decidable (Theorem 2)\n")
	return nil
}

func runE19(w io.Writer) error {
	d := parser.MustInstance(`r(a, b). r(a, c). s(e, f). s(null, a).`)
	set := parser.MustConstraints(`
		r(X, Y), r(X, Z) -> Y = Z.
		s(U, V) -> r(V, W).
		r(X, Y), isnull(X) -> false.
	`)
	if !set.NonConflicting() {
		return fmt.Errorf("the set must be non-conflicting")
	}
	res, err := repair.Repairs(d, set, repair.Options{})
	if err != nil {
		return err
	}
	printRepairs(w, d, res)
	want := []*relational.Instance{
		parser.MustInstance(`r(a, b). s(e, f). s(null, a). r(f, null).`),
		parser.MustInstance(`r(a, c). s(e, f). s(null, a). r(f, null).`),
		parser.MustInstance(`r(a, b). s(null, a).`),
		parser.MustInstance(`r(a, c). s(null, a).`),
	}
	if !sameRepairSet(res, want) {
		return fmt.Errorf("repairs do not match the paper's D1–D4")
	}
	return nil
}

func runE20(w io.Writer) error {
	d := parser.MustInstance(`p(a). p(b). q(b, c).`)
	set := parser.MustConstraints(`
		p(X) -> q(X, Y).
		q(X, Y), isnull(Y) -> false.
	`)
	if set.NonConflicting() {
		return fmt.Errorf("the set must be conflicting")
	}
	fmt.Fprintf(w, "conflict: %s\n", set.Conflicts()[0])
	if _, err := repair.Repairs(d, set, repair.Options{}); err == nil {
		return fmt.Errorf("Repairs must refuse the conflicting set")
	}
	res, err := repair.RepairsD(d, set, repair.Options{})
	if err != nil {
		return err
	}
	printRepairs(w, d, res)
	del := parser.MustInstance(`p(b). q(b, c).`)
	if !sameRepairSet(res, []*relational.Instance{del}) {
		return fmt.Errorf("Rep_d must keep only the tuple-deletion repair")
	}
	fmt.Fprintf(w, "Rep_d prefers the deletion: the arbitrary-value insertions Q(a,µ) are dominated\n")
	return nil
}

package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/parser"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/repairprog"
	"repro/internal/stable"
	"repro/internal/value"
)

// This file holds the quantitative experiments C1–C5 exercising the
// paper's complexity and decidability claims. Absolute timings are
// hardware-dependent; the asserted artifacts are the shapes (repair counts,
// model counts, agreement rates).

func init() {
	register(Experiment{
		ID:         "C1",
		Title:      "Decidability under RIC-cycles: repair enumeration terminates (Theorem 2)",
		PaperClaim: "with null-based repairs, CQA is decidable even for cyclic RICs; 2^n finite repairs here",
		Run:        runC1,
	})
	register(Experiment{
		ID:         "C2",
		Title:      "HCF programs vs disjunctive programs (Section 6, Corollary 1)",
		PaperClaim: "key-repair programs are HCF: shifting preserves the stable models (coNP vs Π2p machinery)",
		Run:        runC2,
	})
	register(Experiment{
		ID:         "C3",
		Title:      "Theorem 4 agreement rate: search engine vs stable-model engine",
		PaperClaim: "stable models of Π(D,IC) induce exactly Rep(D,IC) for RIC-acyclic IC",
		Run:        runC3,
	})
	register(Experiment{
		ID:         "C4",
		Title:      "Repair-count growth: classic [2] vs null-based semantics (Examples 14/15)",
		PaperClaim: "classic repairs grow linearly with the domain; null-based repairs stay at 2",
		Run:        runC4,
	})
	register(Experiment{
		ID:         "C5",
		Title:      "CQA end-to-end scaling: certain answers over 2^k repairs",
		PaperClaim: "both engines return the same certain answers; repairs double per violation",
		Run:        runC5,
	})
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000) }

func runC1(w io.Writer) error {
	set := parser.MustConstraints(`
		p(X, Y) -> t(X).
		t(X) -> p(Y, X).
	`)
	var rows [][]string
	for _, n := range []int{1, 2, 3, 4, 5, 6} {
		d := relational.NewInstance()
		for i := 0; i < n; i++ {
			d.Insert(relational.F("t", value.Str(fmt.Sprintf("c%d", i))))
		}
		start := time.Now()
		res, err := repair.Repairs(d, set, repair.Options{})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		rows = append(rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(res.Repairs)),
			fmt.Sprint(res.StatesExplored), ms(elapsed),
		})
		if want := 1 << n; len(res.Repairs) != want {
			return fmt.Errorf("n=%d: repairs = %d, want 2^n = %d", n, len(res.Repairs), want)
		}
	}
	table(w, []string{"|T|", "repairs", "states", "time"}, rows)
	fmt.Fprintf(w, "every run terminates: the repair space is finite (Proposition 1)\n")
	return nil
}

// keyViolationInstance builds n key-violating pairs R(a_i,b), R(a_i,c).
func keyViolationInstance(n int) *relational.Instance {
	d := relational.NewInstance()
	for i := 0; i < n; i++ {
		k := value.Str(fmt.Sprintf("k%d", i))
		d.Insert(relational.F("r", k, value.Str("b")))
		d.Insert(relational.F("r", k, value.Str("c")))
	}
	return d
}

func runC2(w io.Writer) error {
	set := parser.MustConstraints(`r(X, Y), r(X, Z) -> Y = Z.`)
	var rows [][]string
	for _, n := range []int{1, 2, 3, 4, 5} {
		d := keyViolationInstance(n)
		tr, err := repairprog.Build(d, set, repairprog.VariantPaper)
		if err != nil {
			return err
		}
		gp, err := ground.Ground(tr.Program)
		if err != nil {
			return err
		}
		if !stable.IsHCF(gp) {
			return fmt.Errorf("n=%d: key-repair program must be HCF (Corollary 1)", n)
		}
		startD := time.Now()
		disj, err := stable.Models(gp, stable.Options{})
		if err != nil {
			return err
		}
		tDisj := time.Since(startD)
		startS := time.Now()
		shifted, err := stable.Models(stable.Shift(gp), stable.Options{})
		if err != nil {
			return err
		}
		tShift := time.Since(startS)
		rows = append(rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(disj)), fmt.Sprint(len(shifted)),
			ms(tDisj), ms(tShift),
		})
		if len(disj) != 1<<n || len(shifted) != 1<<n {
			return fmt.Errorf("n=%d: models disjunctive=%d shifted=%d, want %d", n, len(disj), len(shifted), 1<<n)
		}
	}
	table(w, []string{"violations", "models (disjunctive)", "models (shifted)", "time disj", "time shifted"}, rows)

	// Contrast: a genuinely non-HCF program, where shifting is unsound.
	symSet := parser.MustConstraints(`p(X, Y) -> p(Y, X).`)
	d := parser.MustInstance(`p(a, b).`)
	tr, err := repairprog.Build(d, symSet, repairprog.VariantPaper)
	if err != nil {
		return err
	}
	gp, err := ground.Ground(tr.Program)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "contrast P(x,y)->P(y,x): ground program HCF = %s (Theorem 5 condition fails, too)\n",
		yesNo(stable.IsHCF(gp)))
	if stable.IsHCF(gp) {
		return fmt.Errorf("symmetric-constraint program must not be HCF")
	}
	return nil
}

func runC3(w io.Writer) error {
	set := parser.MustConstraints(`
		r(X, Y), r(X, Z) -> Y = Z.
		s(U, V) -> r(V, W).
		r(X, Y), isnull(X) -> false.
	`)
	vals := []value.V{value.Str("a"), value.Str("b"), value.Null()}
	rng := rand.New(rand.NewSource(17))
	const trials = 12
	agree := 0
	var tSearch, tProgram time.Duration
	for trial := 0; trial < trials; trial++ {
		d := relational.NewInstance()
		for k := 0; k < 1+rng.Intn(3); k++ {
			d.Insert(relational.F("r", vals[rng.Intn(3)], vals[rng.Intn(3)]))
		}
		for k := 0; k < rng.Intn(3); k++ {
			d.Insert(relational.F("s", vals[rng.Intn(3)], vals[rng.Intn(3)]))
		}
		start := time.Now()
		res, err := repair.Repairs(d, set, repair.Options{})
		if err != nil {
			return err
		}
		tSearch += time.Since(start)
		start = time.Now()
		tr, err := repairprog.Build(d, set, repairprog.VariantCorrected)
		if err != nil {
			return err
		}
		insts, _, err := tr.StableRepairs(stable.Options{})
		if err != nil {
			return err
		}
		tProgram += time.Since(start)
		keys := map[string]bool{}
		for _, r := range res.Repairs {
			keys[r.Key()] = true
		}
		same := len(insts) == len(res.Repairs)
		if same {
			for _, i := range insts {
				if !keys[i.Key()] {
					same = false
					break
				}
			}
		}
		if same {
			agree++
		}
	}
	table(w, []string{"trials", "agreement", "total time (search)", "total time (program)"},
		[][]string{{fmt.Sprint(trials), fmt.Sprintf("%d/%d", agree, trials), ms(tSearch), ms(tProgram)}})
	if agree != trials {
		return fmt.Errorf("agreement %d/%d: Theorem 4 correspondence violated", agree, trials)
	}
	return nil
}

func runC4(w io.Writer) error {
	set := parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`)
	var rows [][]string
	for _, pad := range []int{0, 2, 4, 6, 8} {
		d := parser.MustInstance(`
			course(21, c15).
			course(34, c18).
			student(21, "Ann").
		`)
		for i := 0; i < pad; i++ {
			d.Insert(relational.F("student", value.Int(int64(100+i)), value.Str(fmt.Sprintf("n%d", i))))
		}
		adom := len(d.ActiveDomain())
		classic, err := repair.Repairs(d, set, repair.Options{Mode: repair.Classic})
		if err != nil {
			return err
		}
		nullBased, err := repair.Repairs(d, set, repair.Options{})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprint(adom), fmt.Sprint(len(classic.Repairs)), fmt.Sprint(len(nullBased.Repairs)),
		})
		if len(classic.Repairs) != 1+adom {
			return fmt.Errorf("adom=%d: classic repairs = %d, want %d", adom, len(classic.Repairs), 1+adom)
		}
		if len(nullBased.Repairs) != 2 {
			return fmt.Errorf("adom=%d: null-based repairs = %d, want 2", adom, len(nullBased.Repairs))
		}
	}
	table(w, []string{"|adom|", "classic repairs", "null-based repairs"}, rows)
	fmt.Fprintf(w, "classic repairs grow with the domain; null-based repairs are domain-independent\n")
	return nil
}

func runC5(w io.Writer) error {
	q := parser.MustQuery(`q(Id) :- student(Id, Name).`)
	var rows [][]string
	for _, k := range []int{1, 2, 3, 4, 5} {
		d := relational.NewInstance()
		for i := 0; i < 5; i++ {
			d.Insert(relational.F("student", value.Int(int64(i)), value.Str(fmt.Sprintf("s%d", i))))
		}
		for i := 0; i < k; i++ {
			d.Insert(relational.F("course", value.Int(int64(100+i)), value.Str(fmt.Sprintf("c%d", i))))
		}
		set := parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`)

		searchOpts := core.NewOptions()
		start := time.Now()
		ansSearch, err := core.ConsistentAnswers(d, set, q, searchOpts)
		if err != nil {
			return err
		}
		tSearch := time.Since(start)

		progOpts := core.NewOptions()
		progOpts.Engine = core.EngineProgram
		start = time.Now()
		ansProg, err := core.ConsistentAnswers(d, set, q, progOpts)
		if err != nil {
			return err
		}
		tProg := time.Since(start)

		rows = append(rows, []string{
			fmt.Sprint(k), fmt.Sprint(ansSearch.NumRepairs), fmt.Sprint(len(ansSearch.Tuples)),
			ms(tSearch), ms(tProg),
		})
		if ansSearch.NumRepairs != 1<<k {
			return fmt.Errorf("k=%d: repairs = %d, want 2^k = %d", k, ansSearch.NumRepairs, 1<<k)
		}
		if len(ansSearch.Tuples) != 5 || len(ansProg.Tuples) != 5 {
			return fmt.Errorf("k=%d: certain answers = %d/%d, want 5 (inserted null-students are uncertain)",
				k, len(ansSearch.Tuples), len(ansProg.Tuples))
		}
	}
	table(w, []string{"violations k", "repairs", "certain answers", "time (search)", "time (program)"}, rows)
	return nil
}

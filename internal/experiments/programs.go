package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/ground"
	"repro/internal/parser"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/repairprog"
	"repro/internal/stable"
)

// This file reproduces the repair-program artifacts: Examples 21–23 of
// Section 5 and the Definition 9 wrinkle documented in DESIGN.md.

func init() {
	register(Experiment{
		ID:         "E21",
		Title:      "Example 21: the repair program Π(D,IC) for Example 19",
		PaperClaim: "rules 1–7 with the FD, RIC (with aux) and NNC translations",
		Run:        runE21,
	})
	register(Experiment{
		ID:         "E22",
		Title:      "Example 22: the Q′/Q″ combinations for a disjunctive UIC",
		PaperClaim: "four rules, one per split of {R(x), S(y)}",
		Run:        runE22,
	})
	register(Experiment{
		ID:         "E23",
		Title:      "Example 23: stable models of Π(D,IC) are the repairs (Theorem 4)",
		PaperClaim: "four stable models M1–M4 inducing exactly the repairs D1–D4",
		Run:        runE23,
	})
	register(Experiment{
		ID:    "E23b",
		Title: "Definition 9 wrinkle: original null witness in an existential position",
		PaperClaim: "Definition 9 verbatim yields a spurious stable model on D={P(a),Q(a,null)}; " +
			"the corrected aux rule restores the Theorem 4 correspondence",
		Run: runE23b,
	})
}

func example19Repair() (*relational.Instance, string) {
	return parser.MustInstance(`r(a, b). r(a, c). s(e, f). s(null, a).`), `
		r(X, Y), r(X, Z) -> Y = Z.
		s(U, V) -> r(V, W).
		r(X, Y), isnull(X) -> false.
	`
}

func runE21(w io.Writer) error {
	d, setSrc := example19Repair()
	set := parser.MustConstraints(setSrc)
	tr, err := repairprog.Build(d, set, repairprog.VariantPaper)
	if err != nil {
		return err
	}
	out := tr.Render()
	fmt.Fprint(w, out)
	for _, want := range []string{
		"r(a,b).",
		"s(null,a).",
		"r_a(X,Y,fa) v r_a(X,Z,fa) :- r_a(X,Y,ts), r_a(X,Z,ts), X != null, Y != null, Z != null, Y != Z.",
		"s_a(U,V,fa) v r_a(V,null,ta) :- s_a(U,V,ts), not aux_ic2(V), V != null.",
		"aux_ic2(V) :- r_a(V,W,ts), not r_a(V,W,fa), V != null, W != null.",
		"r_a(x1,x2,fa) :- r_a(x1,x2,ts), x1 = null.",
		"r_a(x1,x2,tss) :- r_a(x1,x2,ts), not r_a(x1,x2,fa).",
		":- r_a(x1,x2,ta), r_a(x1,x2,fa).",
	} {
		if !strings.Contains(out, want) {
			return fmt.Errorf("program missing %q", want)
		}
	}
	return nil
}

func runE22(w io.Writer) error {
	d := parser.MustInstance(`p(a, b). p(c, null).`)
	set := parser.MustConstraints(`
		p(X, Y) -> r(X) | s(Y).
		p(X, Y), isnull(Y) -> false.
	`)
	tr, err := repairprog.Build(d, set, repairprog.VariantPaper)
	if err != nil {
		return err
	}
	fmt.Fprint(w, tr.Render())
	splits := 0
	for _, r := range tr.Program.Rules {
		if len(r.Head) == 3 {
			splits++
		}
	}
	if splits != 4 {
		return fmt.Errorf("Q'/Q'' rules = %d, want 4", splits)
	}
	fmt.Fprintf(w, "%% %d Q'/Q'' combination rules generated\n", splits)
	return nil
}

func runE23(w io.Writer) error {
	d, setSrc := example19Repair()
	set := parser.MustConstraints(setSrc)
	tr, err := repairprog.Build(d, set, repairprog.VariantPaper)
	if err != nil {
		return err
	}
	gp, err := ground.Ground(tr.Program)
	if err != nil {
		return err
	}
	models, err := stable.Models(gp, stable.Options{Sorted: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ground atoms: %d, ground rules: %d\n", gp.NumAtoms(), len(gp.Rules))
	fmt.Fprintf(w, "stable models: %d\n", len(models))
	if len(models) != 4 {
		return fmt.Errorf("stable models = %d, paper says 4", len(models))
	}
	var rows [][]string
	for i, m := range models {
		inst := tr.Interpret(gp, m)
		rows = append(rows, []string{fmt.Sprintf("M%d", i+1), inst.String()})
	}
	table(w, []string{"model", "induced instance D_M"}, rows)

	res, err := repair.Repairs(d, set, repair.Options{})
	if err != nil {
		return err
	}
	keys := map[string]bool{}
	for _, r := range res.Repairs {
		keys[r.Key()] = true
	}
	for _, m := range models {
		inst := tr.Interpret(gp, m)
		if !keys[inst.Key()] {
			return fmt.Errorf("stable model induces %v, which is not a repair", inst)
		}
	}
	if len(res.Repairs) != 4 {
		return fmt.Errorf("search repairs = %d, want 4", len(res.Repairs))
	}
	fmt.Fprintf(w, "stable models and search repairs coincide (Theorem 4)\n")
	return nil
}

func runE23b(w io.Writer) error {
	d := parser.MustInstance(`p(a). q(a, null).`)
	set := parser.MustConstraints(`p(X) -> q(X, Y).`)

	res, err := repair.Repairs(d, set, repair.Options{})
	if err != nil {
		return err
	}
	if len(res.Repairs) != 1 {
		return fmt.Errorf("D is consistent; repairs = %d, want 1", len(res.Repairs))
	}
	fmt.Fprintf(w, "D is consistent under Definition 4 (null witness allowed): Rep(D,IC) = {D}\n")

	for _, variant := range []repairprog.Variant{repairprog.VariantPaper, repairprog.VariantCorrected} {
		tr, err := repairprog.Build(d, set, variant)
		if err != nil {
			return err
		}
		insts, models, err := tr.StableRepairs(stable.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "variant %-9s: %d stable models, %d induced instances: ", variant, len(models), len(insts))
		for i, inst := range insts {
			if i > 0 {
				fmt.Fprint(w, " ; ")
			}
			fmt.Fprint(w, inst)
		}
		fmt.Fprintln(w)
		switch variant {
		case repairprog.VariantPaper:
			if len(insts) != 2 {
				return fmt.Errorf("paper variant: expected the documented spurious instance")
			}
		case repairprog.VariantCorrected:
			if len(insts) != 1 || insts[0].Key() != d.Key() {
				return fmt.Errorf("corrected variant must induce exactly {D}")
			}
		}
	}
	return nil
}

// Package experiments reproduces every evaluation artifact of the paper:
// the worked examples 2–24 (instance tables, consistency verdicts, repair
// sets, repair programs, stable models, dependency-graph figures) and a set
// of quantitative experiments exercising the complexity and decidability
// claims (Theorems 1–5). Each experiment prints the measured artifact and
// returns an error if it deviates from what the paper states, so the whole
// suite doubles as an executable regression test of the reproduction
// (EXPERIMENTS.md records the outcomes).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Experiment is one reproducible artifact.
type Experiment struct {
	// ID is the index key, e.g. "E04" (paper example 4) or "C1"
	// (complexity experiment 1).
	ID string
	// Title is a one-line description.
	Title string
	// PaperClaim summarizes what the paper states for this artifact.
	PaperClaim string
	// Run prints the measured artifact to w and returns an error if it
	// does not match the paper's claim.
	Run func(w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll runs every experiment, printing a banner per experiment, and
// returns the number of failures.
func RunAll(w io.Writer) int {
	failures := 0
	for _, e := range All() {
		fmt.Fprintf(w, "=== %s: %s\n", e.ID, e.Title)
		fmt.Fprintf(w, "paper: %s\n", e.PaperClaim)
		if err := e.Run(w); err != nil {
			failures++
			fmt.Fprintf(w, "FAIL: %v\n", err)
		} else {
			fmt.Fprintf(w, "ok\n")
		}
		fmt.Fprintln(w)
	}
	return failures
}

// table writes an aligned table.
func table(w io.Writer, header []string, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

func verdict(b bool) string {
	if b {
		return "consistent"
	}
	return "INCONSISTENT"
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

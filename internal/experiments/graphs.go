package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/depgraph"
	"repro/internal/ground"
	"repro/internal/parser"
	"repro/internal/repairprog"
	"repro/internal/stable"
)

// This file reproduces the dependency-graph figures (Examples 2–3) and the
// head-cycle-freeness artifacts (Example 24, Theorem 5).

func init() {
	register(Experiment{
		ID:         "E02",
		Title:      "Example 2: dependency graph G(IC) for {S→Q, Q→R, Q→∃T}",
		PaperClaim: "vertices S,Q,R,T; edges S→Q (ic1), Q→R (ic2), Q→T (ic3)",
		Run:        runE02,
	})
	register(Experiment{
		ID:         "E03",
		Title:      "Example 3: contracted graph G^C(IC); RIC-acyclicity flips when adding T→R",
		PaperClaim: "{Q,R,S}→T is acyclic; adding T(x,y)→R(y) creates a self-loop (not RIC-acyclic)",
		Run:        runE03,
	})
	register(Experiment{
		ID:         "E24",
		Title:      "Example 24 / Theorem 5: bilateral predicates and guaranteed HCF",
		PaperClaim: "bilateral = {T}; the condition holds, so Π(D,IC) is head-cycle-free",
		Run:        runE24,
	})
}

const example2Src = `
	s(X) -> q(X).
	q(X) -> r(X).
	q(X) -> t(X, Y).
`

func runE02(w io.Writer) error {
	set := parser.MustConstraints(example2Src)
	g := depgraph.Build(set)
	fmt.Fprintf(w, "G(IC):\n%s", g)
	if got := strings.Join(g.Vertices(), ","); got != "q,r,s,t" {
		return fmt.Errorf("vertices = %s", got)
	}
	for _, e := range []struct{ from, to string }{{"s", "q"}, {"q", "r"}, {"q", "t"}} {
		if !g.HasEdge(e.from, e.to) {
			return fmt.Errorf("missing edge %s→%s", e.from, e.to)
		}
	}
	if len(g.Edges()) != 3 {
		return fmt.Errorf("edges = %d, want 3", len(g.Edges()))
	}
	return nil
}

func runE03(w io.Writer) error {
	set := parser.MustConstraints(example2Src)
	gc := depgraph.Contracted(set)
	fmt.Fprintf(w, "G^C(IC):\n%s", gc)
	if !depgraph.RICAcyclic(set) {
		return fmt.Errorf("the original set must be RIC-acyclic")
	}
	if got := strings.Join(gc.Vertices(), " "); got != "t {q,r,s}" {
		return fmt.Errorf("contracted vertices = %q", got)
	}
	fmt.Fprintf(w, "RIC-acyclic: %s\n\n", yesNo(true))

	extended := parser.MustConstraints(example2Src + `t(X, Y) -> r(Y).`)
	gc2 := depgraph.Contracted(extended)
	fmt.Fprintf(w, "after adding T(x,y) -> R(y):\nG^C(IC):\n%s", gc2)
	if depgraph.RICAcyclic(extended) {
		return fmt.Errorf("the extended set must not be RIC-acyclic")
	}
	if got := strings.Join(gc2.Vertices(), " "); got != "{q,r,s,t}" {
		return fmt.Errorf("contracted vertices = %q", got)
	}
	fmt.Fprintf(w, "RIC-acyclic: %s\n", yesNo(false))
	return nil
}

func runE24(w io.Writer) error {
	set := parser.MustConstraints(`
		t(X) -> r(X, Y).
		s(X, Y) -> t(X).
	`)
	bp := repairprog.BilateralPreds(set)
	fmt.Fprintf(w, "bilateral predicates: %v\n", bp)
	if len(bp) != 1 || bp[0] != "t" {
		return fmt.Errorf("bilateral = %v, paper says {T}", bp)
	}
	if !repairprog.GuaranteedHCF(set) {
		return fmt.Errorf("Theorem 5's condition must hold")
	}
	fmt.Fprintf(w, "Theorem 5 condition: holds\n")

	d := parser.MustInstance(`t(a). s(a, b). s(c, d).`)
	tr, err := repairprog.Build(d, set, repairprog.VariantPaper)
	if err != nil {
		return err
	}
	gp, err := ground.Ground(tr.Program)
	if err != nil {
		return err
	}
	hcf := stable.IsHCF(gp)
	fmt.Fprintf(w, "ground Π(D,IC) head-cycle-free: %s\n", yesNo(hcf))
	if !hcf {
		return fmt.Errorf("the program must be HCF")
	}

	// The sufficient condition is not necessary: P(x,a) → P(x,b).
	set2 := parser.MustConstraints(`p(X, a) -> p(X, b).`)
	d2 := parser.MustInstance(`p(q, a).`)
	tr2, err := repairprog.Build(d2, set2, repairprog.VariantPaper)
	if err != nil {
		return err
	}
	gp2, err := ground.Ground(tr2.Program)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "P(x,a)->P(x,b): condition=%s, ground HCF=%s (sufficient, not necessary)\n",
		yesNo(repairprog.GuaranteedHCF(set2)), yesNo(stable.IsHCF(gp2)))
	if repairprog.GuaranteedHCF(set2) || !stable.IsHCF(gp2) {
		return fmt.Errorf("P(x,a)->P(x,b) must fail the condition yet ground to an HCF program")
	}
	return nil
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/nullsem"
	"repro/internal/parser"
	"repro/internal/relational"
	"repro/internal/value"
)

// This file reproduces the satisfaction-semantics artifacts: Examples 4–13
// of Section 3.

func init() {
	register(Experiment{
		ID:    "E04",
		Title: "Example 4: verdict matrix for D={P(a,b,null)} under five semantics",
		PaperClaim: "ψ1 consistent under [10] and simple-match, inconsistent under partial- " +
			"and full-match; ψ2 consistent only under [10]",
		Run: runE04,
	})
	register(Experiment{
		ID:    "E05",
		Title: "Example 5: Course/Exp foreign key with nulls (IBM DB2 behaviour)",
		PaperClaim: "DB2 accepts the instance (simple match); partial and full match reject it; " +
			"inserting Course(CS41,18,null) is rejected",
		Run: runE05,
	})
	register(Experiment{
		ID:         "E06",
		Title:      "Example 6: single-row check constraint Salary > 100 with nulls",
		PaperClaim: "the instance is consistent; inserting (32,null,50) is rejected",
		Run:        runE06,
	})
	register(Experiment{
		ID:         "E07",
		Title:      "Example 7: set semantics for duplicate rows",
		PaperClaim: "with first-order (set) semantics, the duplicate P(a,b) collapses and the key FD is satisfied",
		Run:        runE07,
	})
	register(Experiment{
		ID:         "E08",
		Title:      "Example 8: multi-row check constraint u > w+15 over Person",
		PaperClaim: "the instance is consistent: the only matching join has a null age (unknown passes)",
		Run:        runE08,
	})
	register(Experiment{
		ID:         "E09",
		Title:      "Example 9: non-FK inclusion dependency with null in the referenced attribute",
		PaperClaim: "(W04,34) is not less informative than (W04,null): the instance is inconsistent",
		Run:        runE09,
	})
	register(Experiment{
		ID:         "E10",
		Title:      "Example 10: relevant attributes and projected instances D^A",
		PaperClaim: "A(ψ)={P[1],P[2],R[1],R[2]}; A(γ)={P[1],P[3],R[1],R[2]}",
		Run:        runE10,
	})
	register(Experiment{
		ID:         "E11",
		Title:      "Example 11: consistency wrt a UIC and a RIC; adding P(f,d,null) breaks (a)",
		PaperClaim: "D is consistent; D ∪ {P(f,d,null)} is inconsistent wrt constraint (a)",
		Run:        runE11,
	})
	register(Experiment{
		ID:         "E12",
		Title:      "Example 12: joins through null under the ordinary-constant treatment",
		PaperClaim: "D^A(ψ) |= ψ_N: the database satisfies the constraint",
		Run:        runE12,
	})
	register(Experiment{
		ID:         "E13",
		Title:      "Example 13: repeated existential variable with a null witness",
		PaperClaim: "Q(a,null,null) satisfies ∃z Q(x,z,z); the database is consistent",
		Run:        runE13,
	})
}

func runE04(w io.Writer) error {
	d := parser.MustInstance(`p(a, b, null).`)
	set1 := parser.MustConstraints(`p(X, Y, Z) -> r(Y, Z).`)
	set2 := parser.MustConstraints(`p(X, Y, Z) -> r(X, Y).`)
	want1 := map[nullsem.Semantics]bool{
		nullsem.NullAware: true, nullsem.ClassicFO: false, nullsem.AllExempt: true,
		nullsem.SimpleMatch: true, nullsem.PartialMatch: false, nullsem.FullMatch: false,
	}
	want2 := map[nullsem.Semantics]bool{
		nullsem.NullAware: false, nullsem.ClassicFO: false, nullsem.AllExempt: true,
		nullsem.SimpleMatch: false, nullsem.PartialMatch: false, nullsem.FullMatch: false,
	}
	var rows [][]string
	for _, sem := range nullsem.AllSemantics() {
		got1 := nullsem.Satisfies(d, set1, sem)
		got2 := nullsem.Satisfies(d, set2, sem)
		rows = append(rows, []string{sem.String(), verdict(got1), verdict(got2)})
		if got1 != want1[sem] {
			return fmt.Errorf("ψ1 under %v = %v, paper says %v", sem, got1, want1[sem])
		}
		if got2 != want2[sem] {
			return fmt.Errorf("ψ2 under %v = %v, paper says %v", sem, got2, want2[sem])
		}
	}
	table(w, []string{"semantics", "ψ1: P(x,y,z)->R(y,z)", "ψ2: P(x,y,z)->R(x,y)"}, rows)
	return nil
}

func example5() (*relational.Instance, string) {
	return parser.MustInstance(`
		course(cs27, 21, w04).
		course(cs18, 34, null).
		course(cs50, null, w05).
		exp(21, cs27, 3).
		exp(34, cs18, null).
		exp(45, cs32, 2).
	`), `
		course(Code, Id, Term) -> exp(Id, Code, Times).
		exp(I, C, T1), exp(I, C, T2) -> T1 = T2.
		exp(I, C, T), isnull(I) -> false.
		exp(I, C, T), isnull(C) -> false.
	`
}

func runE05(w io.Writer) error {
	d, setSrc := example5()
	set := parser.MustConstraints(setSrc)
	var rows [][]string
	expect := map[nullsem.Semantics]bool{
		nullsem.NullAware: true, nullsem.SimpleMatch: true,
		nullsem.PartialMatch: false, nullsem.FullMatch: false,
	}
	for _, sem := range []nullsem.Semantics{nullsem.NullAware, nullsem.SimpleMatch, nullsem.PartialMatch, nullsem.FullMatch} {
		got := nullsem.Satisfies(d, set, sem)
		rows = append(rows, []string{sem.String(), verdict(got)})
		if got != expect[sem] {
			return fmt.Errorf("under %v = %v, paper says %v", sem, got, expect[sem])
		}
	}
	table(w, []string{"semantics", "verdict"}, rows)

	bad := relational.F("course", value.Str("cs41"), value.Int(18), value.Null())
	if nullsem.InsertionAllowed(d, set, bad, nullsem.NullAware) {
		return fmt.Errorf("insertion of course(cs41,18,null) must be rejected")
	}
	fmt.Fprintf(w, "insert course(cs41,18,null): rejected (as in DB2)\n")
	good := relational.F("course", value.Str("cs32"), value.Int(45), value.Null())
	if !nullsem.InsertionAllowed(d, set, good, nullsem.NullAware) {
		return fmt.Errorf("insertion of course(cs32,45,null) must be accepted")
	}
	fmt.Fprintf(w, "insert course(cs32,45,null): accepted\n")
	return nil
}

func runE06(w io.Writer) error {
	d := parser.MustInstance(`
		emp(32, null, 1000).
		emp(41, "Paul", null).
	`)
	set := parser.MustConstraints(`emp(Id, Name, Salary) -> Salary > 100.`)
	got := nullsem.Satisfies(d, set, nullsem.NullAware)
	fmt.Fprintf(w, "D |=_N (Salary > 100): %s\n", verdict(got))
	if !got {
		return fmt.Errorf("Example 6 instance must be consistent")
	}
	bad := relational.F("emp", value.Int(32), value.Null(), value.Int(50))
	if nullsem.InsertionAllowed(d, set, bad, nullsem.NullAware) {
		return fmt.Errorf("insertion of (32,null,50) must be rejected")
	}
	fmt.Fprintf(w, "insert emp(32,null,50): rejected (50 > 100 is false)\n")
	return nil
}

func runE07(w io.Writer) error {
	d := relational.NewInstance()
	first := d.Insert(relational.F("p", value.Str("a"), value.Str("b")))
	second := d.Insert(relational.F("p", value.Str("a"), value.Str("b")))
	fmt.Fprintf(w, "insert P(a,b): new=%v; insert P(a,b) again: new=%v; |D| = %d\n",
		first, second, d.Len())
	if !first || second || d.Len() != 1 {
		return fmt.Errorf("set semantics violated")
	}
	set := parser.MustConstraints(`p(X, Y), p(X, Z) -> Y = Z.`)
	if !nullsem.Satisfies(d, set, nullsem.NullAware) {
		return fmt.Errorf("the collapsed instance must satisfy the key FD")
	}
	fmt.Fprintf(w, "key FD P[1] -> P[2] holds on the collapsed instance\n")
	return nil
}

func runE08(w io.Writer) error {
	d := parser.MustInstance(`
		person("Lee", "Rod", "Mary", 27).
		person("Rod", "Joe", "Tess", 55).
		person("Mary", "Adam", "Ann", null).
	`)
	set := parser.MustConstraints(`person(X,Y,Z,W), person(Z,S,T,U) -> U > W + 15.`)
	got := nullsem.Satisfies(d, set, nullsem.NullAware)
	fmt.Fprintf(w, "relevant attributes: %s\n", set.ICs[0].RelevantAttrs())
	fmt.Fprintf(w, "D |=_N: %s\n", verdict(got))
	if !got {
		return fmt.Errorf("Example 8 must be consistent")
	}
	if want := "{person[1], person[3], person[4]}"; set.ICs[0].RelevantAttrs().String() != want {
		return fmt.Errorf("relevant attributes = %s, paper says %s", set.ICs[0].RelevantAttrs(), want)
	}
	d2 := d.Clone()
	d2.Delete(relational.F("person", value.Str("Mary"), value.Str("Adam"), value.Str("Ann"), value.Null()))
	d2.Insert(relational.F("person", value.Str("Mary"), value.Str("Adam"), value.Str("Ann"), value.Int(30)))
	if nullsem.Satisfies(d2, set, nullsem.NullAware) {
		return fmt.Errorf("with age 30 the constraint must fail (30 > 27+15 is false)")
	}
	fmt.Fprintf(w, "with Mary's age = 30 instead of null: INCONSISTENT (30 > 27+15 fails)\n")
	return nil
}

func runE09(w io.Writer) error {
	d := parser.MustInstance(`
		course(cs18, w04, 34).
		employee(w04, null).
	`)
	set := parser.MustConstraints(`course(X, Y, Z) -> employee(Y, Z).`)
	got := nullsem.Satisfies(d, set, nullsem.NullAware)
	fmt.Fprintf(w, "D |=_N Course(x,y,z) -> Employee(y,z): %s\n", verdict(got))
	if got {
		return fmt.Errorf("Example 9 must be inconsistent")
	}
	d.Insert(relational.F("employee", value.Str("w04"), value.Int(34)))
	if !nullsem.Satisfies(d, set, nullsem.NullAware) {
		return fmt.Errorf("with Employee(w04,34) the instance must be consistent")
	}
	fmt.Fprintf(w, "after inserting employee(w04,34): consistent\n")
	return nil
}

func runE10(w io.Writer) error {
	d := parser.MustInstance(`
		p(a, b, a).
		p(b, c, a).
		r(a, 5).
		r(a, 2).
	`)
	psi := parser.MustConstraints(`p(X, Y, Z) -> r(X, Y).`).ICs[0]
	gamma := parser.MustConstraints(`p(X, Y, Z), r(Z, W) -> r(X, V) | W > 3.`).ICs[0]
	fmt.Fprintf(w, "A(ψ) = %s\n", psi.RelevantAttrs())
	fmt.Fprintf(w, "A(γ) = %s\n", gamma.RelevantAttrs())
	if got, want := psi.RelevantAttrs().String(), "{p[1], p[2], r[1], r[2]}"; got != want {
		return fmt.Errorf("A(ψ) = %s, paper says %s", got, want)
	}
	if got, want := gamma.RelevantAttrs().String(), "{p[1], p[3], r[1], r[2]}"; got != want {
		return fmt.Errorf("A(γ) = %s, paper says %s", got, want)
	}
	projPsi := nullsem.ProjectInstance(d, nullsem.ProjectConstraint(psi))
	projGamma := nullsem.ProjectInstance(d, nullsem.ProjectConstraint(gamma))
	fmt.Fprintf(w, "D^A(ψ) = %s\n", projPsi)
	fmt.Fprintf(w, "D^A(γ) = %s\n", projGamma)
	// D^A(γ) collapses P onto positions {1,3}: (a,a) and (b,a).
	if projGamma.Len() != 4 {
		return fmt.Errorf("D^A(γ) = %d facts, want 4", projGamma.Len())
	}
	return nil
}

func runE11(w io.Writer) error {
	d := parser.MustInstance(`
		p(a, d, e).
		p(b, null, g).
		r(a, d).
		t(b).
	`)
	set := parser.MustConstraints(`
		p(X, Y, Z) -> r(X, Y).
		t(X) -> p(X, Y, Z).
	`)
	if !nullsem.Satisfies(d, set, nullsem.NullAware) {
		return fmt.Errorf("Example 11 must be consistent:\n%s", nullsem.Check(d, set, nullsem.NullAware))
	}
	fmt.Fprintf(w, "D |=_N {(a),(b)}: consistent\n")
	d.Insert(relational.F("p", value.Str("f"), value.Str("d"), value.Null()))
	rep := nullsem.Check(d, set, nullsem.NullAware)
	if rep.Consistent() || len(rep.IC) != 1 || rep.IC[0].IC.Name != "ic1" {
		return fmt.Errorf("adding P(f,d,null) must violate exactly constraint (a); got %s", rep)
	}
	fmt.Fprintf(w, "after adding p(f,d,null): %s\n", rep)
	return nil
}

func runE12(w io.Writer) error {
	d := parser.MustInstance(`
		p1(a, b, c).  p1(d, null, c).  p1(b, e, null).  p1(null, b, b).
		p2(b, a).     p2(e, c).        p2(d, null).     p2(null, b).
		q(a, a, c).   q(b, null, c).   q(b, c, d).      q(null, c, a).
	`)
	set := parser.MustConstraints(`p1(X, Y, W), p2(Y, Z) -> q(X, Z, U).`)
	nullAware := nullsem.Satisfies(d, set, nullsem.NullAware)
	classic := nullsem.Satisfies(d, set, nullsem.ClassicFO)
	fmt.Fprintf(w, "D |=_N ψ: %s (classically: %s)\n", verdict(nullAware), verdict(classic))
	if !nullAware {
		return fmt.Errorf("Example 12 must be consistent under |=_N")
	}
	if classic {
		return fmt.Errorf("Example 12 should be inconsistent classically (null joins fire)")
	}
	return nil
}

func runE13(w io.Writer) error {
	d := parser.MustInstance(`
		p(a, b).
		p(null, c).
		q(a, null, null).
	`)
	set := parser.MustConstraints(`p(X, Y) -> q(X, Z, Z).`)
	if got := set.ICs[0].RelevantAttrs().String(); got != "{p[1], q[1], q[2], q[3]}" {
		return fmt.Errorf("A(ψ) = %s, paper says {p[1], q[1], q[2], q[3]}", got)
	}
	fmt.Fprintf(w, "A(ψ) = %s\n", set.ICs[0].RelevantAttrs())
	if !nullsem.Satisfies(d, set, nullsem.NullAware) {
		return fmt.Errorf("Example 13 must be consistent under |=_N")
	}
	fmt.Fprintf(w, "D |=_N ψ: consistent (z = null witnesses ∃z Q(x,z,z))\n")
	if nullsem.Satisfies(d, set, nullsem.SimpleMatch) {
		return fmt.Errorf("under SQL-style matching the null witness must fail")
	}
	fmt.Fprintf(w, "under simple-match: INCONSISTENT (null never equals null in SQL)\n")
	return nil
}

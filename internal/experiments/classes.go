package experiments

import (
	"fmt"
	"io"

	"repro/internal/constraint"
	"repro/internal/parser"
)

// This file reproduces Example 1 of Section 2: the three syntactic classes
// of integrity constraints of form (1).

func init() {
	register(Experiment{
		ID:    "E01",
		Title: "Example 1: the constraint classes of form (1)",
		PaperClaim: "(a) is universal, (b) is referential, (c) is a general existential " +
			"constraint (after standardizing the shared existential variable)",
		Run: runE01,
	})
}

func runE01(w io.Writer) error {
	set := parser.MustConstraints(`
		p(X, Y), r(Y, Z, W) -> s(X) | Z != 2 | W <= Y.
		p(X, Y) -> r(X, Y, Z).
		s(X) -> r2(X, Y) | r3(X, Y, Z).
	`)
	want := []constraint.Class{constraint.ClassUIC, constraint.ClassRIC, constraint.ClassGeneral}
	var rows [][]string
	for i, ic := range set.ICs {
		cls := ic.Classify()
		rows = append(rows, []string{
			fmt.Sprintf("(%c)", 'a'+i), ic.String(), cls.String(), ic.RelevantAttrs().String(),
		})
		if cls != want[i] {
			return fmt.Errorf("constraint (%c) classified as %v, paper says %v", 'a'+i, cls, want[i])
		}
		if err := ic.Validate(); err != nil {
			return fmt.Errorf("constraint (%c) invalid after standardization: %v", 'a'+i, err)
		}
	}
	table(w, []string{"ic", "constraint", "class", "A(ψ)"}, rows)
	fmt.Fprintf(w, "note: (c)'s shared existential variable is renamed apart (z̄i ∩ z̄j = ∅), as form (1) requires\n")
	return nil
}

package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every registered experiment; each validates
// its own artifact against the paper's claim.
func TestAllExperimentsPass(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s (%s): %v\noutput:\n%s", e.ID, e.Title, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"C1", "C2", "C3", "C4", "C5",
		"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08", "E09", "E10",
		"E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19",
		"E20", "E21", "E22", "E23", "E23b", "E24",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.PaperClaim == "" || e.Run == nil {
			t.Errorf("experiment %s is incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("E15")
	if !ok || e.ID != "E15" {
		t.Fatal("ByID(E15) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	failures := RunAll(&buf)
	if failures != 0 {
		t.Fatalf("RunAll reported %d failures:\n%s", failures, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"=== E04", "=== E23", "=== C1", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestTableHelper(t *testing.T) {
	var buf bytes.Buffer
	table(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Errorf("table lines = %d", len(lines))
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)

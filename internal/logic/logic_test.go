package logic

import (
	"strings"
	"testing"

	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

func v(name string) term.T                       { return term.V(name) }
func atom(pred string, args ...term.T) term.Atom { return term.NewAtom(pred, args...) }

func TestRuleString(t *testing.T) {
	r := Rule{
		Head: []term.Atom{atom("p", v("x")), atom("q", v("x"))},
		Pos:  []term.Atom{atom("r", v("x"))},
		Neg:  []term.Atom{atom("s", v("x"))},
		Builtins: []term.Builtin{
			{Op: term.NEQ, L: v("x"), R: term.CNull()},
		},
	}
	want := "p(x) v q(x) :- r(x), not s(x), x != null."
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	c := Rule{Pos: []term.Atom{atom("p", v("x"))}}
	if got := c.String(); got != ":- p(x)." {
		t.Errorf("constraint String = %q", got)
	}
	f := Rule{Head: []term.Atom{atom("p", term.CStr("a"))}}
	if got := f.String(); got != "p(a)." {
		t.Errorf("fact String = %q", got)
	}
}

func TestRuleClassifiers(t *testing.T) {
	f := Rule{Head: []term.Atom{atom("p", term.CStr("a"))}}
	if !f.IsFact() || f.IsConstraint() {
		t.Error("fact misclassified")
	}
	c := Rule{Pos: []term.Atom{atom("p", v("x"))}}
	if c.IsFact() || !c.IsConstraint() {
		t.Error("constraint misclassified")
	}
	nonGround := Rule{Head: []term.Atom{atom("p", v("x"))}}
	if nonGround.IsFact() {
		t.Error("non-ground head is not a fact")
	}
}

func TestSafety(t *testing.T) {
	safe := Rule{
		Head: []term.Atom{atom("p", v("x"))},
		Pos:  []term.Atom{atom("q", v("x"), v("y"))},
		Neg:  []term.Atom{atom("r", v("y"))},
	}
	if !safe.Safe() {
		t.Error("safe rule reported unsafe")
	}
	unsafeHead := Rule{
		Head: []term.Atom{atom("p", v("z"))},
		Pos:  []term.Atom{atom("q", v("x"))},
	}
	if unsafeHead.Safe() {
		t.Error("unsafe head variable accepted")
	}
	unsafeNeg := Rule{
		Head: []term.Atom{atom("p", v("x"))},
		Pos:  []term.Atom{atom("q", v("x"))},
		Neg:  []term.Atom{atom("r", v("w"))},
	}
	if unsafeNeg.Safe() {
		t.Error("unsafe negated variable accepted")
	}
	unsafeBuiltin := Rule{
		Head:     []term.Atom{atom("p", v("x"))},
		Pos:      []term.Atom{atom("q", v("x"))},
		Builtins: []term.Builtin{{Op: term.GT, L: v("u"), R: term.CInt(0)}},
	}
	if unsafeBuiltin.Safe() {
		t.Error("unsafe builtin variable accepted")
	}
}

func TestProgramValidate(t *testing.T) {
	var p Program
	if err := p.AddFact(atom("p", term.CStr("a"))); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFact(atom("p", v("x"))); err == nil {
		t.Error("non-ground fact accepted")
	}
	p.Rules = append(p.Rules, Rule{Head: []term.Atom{atom("q", v("x"))}, Pos: []term.Atom{atom("p", v("x"))}})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Rules = append(p.Rules, Rule{Head: []term.Atom{atom("q", v("z"))}, Pos: []term.Atom{atom("p", v("x"))}})
	if err := p.Validate(); err == nil {
		t.Error("unsafe rule accepted")
	}
}

func TestAddInstance(t *testing.T) {
	d := relational.NewInstance(
		relational.F("R", value.Str("a"), value.Null()),
		relational.F("S", value.Int(3)),
	)
	var p Program
	p.AddInstance(d)
	if len(p.Facts) != 2 {
		t.Fatalf("facts = %v", p.Facts)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	out := p.String()
	if !strings.Contains(out, "R(a,null).") || !strings.Contains(out, "S(3).") {
		t.Errorf("String:\n%s", out)
	}
}

func TestDLVExport(t *testing.T) {
	var p Program
	p.AddFact(atom("r", term.CStr("a"), term.CNull()))
	p.AddFact(atom("s", term.CStr("CS27"), term.CInt(21)))
	p.Rules = append(p.Rules, Rule{
		Head:     []term.Atom{atom("r_fa", v("x"), v("y")), atom("q", v("x"))},
		Pos:      []term.Atom{atom("r", v("x"), v("y"))},
		Neg:      []term.Atom{atom("aux", v("x"))},
		Builtins: []term.Builtin{{Op: term.NEQ, L: v("x"), R: term.CNull()}},
	})
	out := p.DLV()
	for _, want := range []string{
		"r(a,null).",
		`s("CS27",21).`,
		`r_fa(X,Y) v q(X) :- r(X,Y), not aux(X), X != null.`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DLV output missing %q:\n%s", want, out)
		}
	}
}

func TestPreds(t *testing.T) {
	var p Program
	p.AddFact(atom("p", term.CStr("a")))
	p.Rules = append(p.Rules, Rule{
		Head: []term.Atom{atom("q", v("x"), v("y"))},
		Pos:  []term.Atom{atom("p", v("x")), atom("p", v("y"))},
		Neg:  []term.Atom{atom("z", v("x"))},
	})
	got := p.Preds()
	want := []string{"p/1", "q/2", "z/1"}
	if len(got) != len(want) {
		t.Fatalf("Preds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Preds[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// Package logic implements disjunctive logic programs with default negation
// and builtin comparisons — the program class of Section 5 of the paper
// (repair programs run under the stable model semantics of Gelfond &
// Lifschitz). Programs here are function-free (datalog) with constants from
// the database domain, including null, which behaves as an ordinary
// constant inside programs ("in the repair program, null is treated as any
// other constant in U").
package logic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relational"
	"repro/internal/term"
)

// Rule is a disjunctive rule
//
//	H1 v ... v Hk :- P1, ..., Pm, not N1, ..., not Nn, B1, ..., Bl.
//
// An empty Head makes it a (program denial) constraint. Facts are rules
// with a single head atom and an empty body, but are usually supplied via
// Program.Facts.
type Rule struct {
	Head     []term.Atom
	Pos      []term.Atom
	Neg      []term.Atom
	Builtins []term.Builtin
}

// IsConstraint reports whether the rule has an empty head.
func (r Rule) IsConstraint() bool { return len(r.Head) == 0 }

// IsFact reports whether the rule is a ground fact.
func (r Rule) IsFact() bool {
	return len(r.Head) == 1 && len(r.Pos) == 0 && len(r.Neg) == 0 &&
		len(r.Builtins) == 0 && r.Head[0].IsGround()
}

// Vars returns the variables of the rule, deduplicated in order of first
// occurrence.
func (r Rule) Vars() []string {
	var raw []string
	for _, a := range r.Head {
		raw = a.Vars(raw)
	}
	for _, a := range r.Pos {
		raw = a.Vars(raw)
	}
	for _, a := range r.Neg {
		raw = a.Vars(raw)
	}
	for _, b := range r.Builtins {
		raw = b.Vars(raw)
	}
	seen := map[string]bool{}
	out := raw[:0]
	for _, v := range raw {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Safe reports whether every variable of the rule occurs in some positive
// body atom — the safety condition grounding requires.
func (r Rule) Safe() bool {
	inPos := map[string]bool{}
	for _, a := range r.Pos {
		for _, t := range a.Args {
			if t.IsVar() {
				inPos[t.Var] = true
			}
		}
	}
	for _, v := range r.Vars() {
		if !inPos[v] {
			return false
		}
	}
	return true
}

// String renders the rule in DLV-like syntax.
func (r Rule) String() string {
	var b strings.Builder
	for i, a := range r.Head {
		if i > 0 {
			b.WriteString(" v ")
		}
		b.WriteString(a.String())
	}
	bodyParts := make([]string, 0, len(r.Pos)+len(r.Neg)+len(r.Builtins))
	for _, a := range r.Pos {
		bodyParts = append(bodyParts, a.String())
	}
	for _, a := range r.Neg {
		bodyParts = append(bodyParts, "not "+a.String())
	}
	for _, bi := range r.Builtins {
		bodyParts = append(bodyParts, bi.String())
	}
	if len(bodyParts) > 0 {
		if len(r.Head) > 0 {
			b.WriteString(" ")
		}
		b.WriteString(":- ")
		b.WriteString(strings.Join(bodyParts, ", "))
	}
	b.WriteString(".")
	return b.String()
}

// Program is a disjunctive logic program: ground facts plus rules.
type Program struct {
	Facts []term.Atom
	Rules []Rule
}

// AddFact appends a ground fact.
func (p *Program) AddFact(a term.Atom) error {
	if !a.IsGround() {
		return fmt.Errorf("logic: fact %s is not ground", a)
	}
	p.Facts = append(p.Facts, a)
	return nil
}

// AddInstance appends every fact of a database instance (rule 1 of
// Definition 9), in the store's deterministic iteration order and without
// materializing an intermediate slice.
func (p *Program) AddInstance(d *relational.Instance) {
	d.ForEach(func(f relational.Fact) bool {
		p.Facts = append(p.Facts, FactAtom(f))
		return true
	})
}

// FactAtom converts a database fact into a ground program atom.
func FactAtom(f relational.Fact) term.Atom {
	args := make([]term.T, len(f.Args))
	for i, v := range f.Args {
		args[i] = term.C(v)
	}
	return term.Atom{Pred: f.Pred, Args: args}
}

// Validate checks that all rules are safe and all facts ground.
func (p *Program) Validate() error {
	for _, f := range p.Facts {
		if !f.IsGround() {
			return fmt.Errorf("logic: fact %s is not ground", f)
		}
	}
	for i, r := range p.Rules {
		if !r.Safe() {
			return fmt.Errorf("logic: rule %d is unsafe: %s", i+1, r)
		}
	}
	return nil
}

// String renders the program: facts first, then rules.
func (p *Program) String() string {
	var b strings.Builder
	for _, f := range p.Facts {
		b.WriteString(f.String())
		b.WriteString(".\n")
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}

// DLV renders the program in DLV syntax: predicate names and constants are
// lower-cased or quoted as needed, null is the constant null, and builtin
// operators use DLV spellings. The output is accepted by the DLV system the
// paper used, enabling interop checks.
func (p *Program) DLV() string {
	var b strings.Builder
	for _, f := range p.Facts {
		b.WriteString(dlvAtom(f))
		b.WriteString(".\n")
	}
	for _, r := range p.Rules {
		var heads []string
		for _, a := range r.Head {
			heads = append(heads, dlvAtom(a))
		}
		var body []string
		for _, a := range r.Pos {
			body = append(body, dlvAtom(a))
		}
		for _, a := range r.Neg {
			body = append(body, "not "+dlvAtom(a))
		}
		for _, bi := range r.Builtins {
			body = append(body, dlvBuiltin(bi))
		}
		b.WriteString(strings.Join(heads, " v "))
		if len(body) > 0 {
			if len(heads) > 0 {
				b.WriteString(" ")
			}
			b.WriteString(":- ")
			b.WriteString(strings.Join(body, ", "))
		}
		b.WriteString(".\n")
	}
	return b.String()
}

func dlvAtom(a term.Atom) string {
	name := dlvIdent(a.Pred)
	if len(a.Args) == 0 {
		return name
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = dlvTerm(t)
	}
	return name + "(" + strings.Join(parts, ",") + ")"
}

func dlvTerm(t term.T) string {
	if t.IsVar() {
		return strings.ToUpper(t.Var[:1]) + t.Var[1:]
	}
	v := t.Const
	if v.IsNull() {
		return "null"
	}
	if i, ok := v.AsInt(); ok {
		return fmt.Sprint(i)
	}
	s, _ := v.AsStr()
	return dlvIdent(s)
}

func dlvIdent(s string) string {
	if s == "" {
		return `""`
	}
	ok := s[0] >= 'a' && s[0] <= 'z'
	if ok {
		for i := 0; i < len(s); i++ {
			c := s[i]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
				ok = false
				break
			}
		}
	}
	if ok {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

func dlvBuiltin(b term.Builtin) string {
	rhs := dlvTerm(b.R)
	switch {
	case b.Offset > 0:
		rhs = fmt.Sprintf("%s+%d", rhs, b.Offset)
	case b.Offset < 0:
		rhs = fmt.Sprintf("%s-%d", rhs, -b.Offset)
	}
	return dlvTerm(b.L) + " " + b.Op.String() + " " + rhs
}

// Preds returns the sorted predicate signatures used by the program.
func (p *Program) Preds() []string {
	seen := map[string]bool{}
	add := func(a term.Atom) { seen[fmt.Sprintf("%s/%d", a.Pred, a.Arity())] = true }
	for _, f := range p.Facts {
		add(f)
	}
	for _, r := range p.Rules {
		for _, a := range r.Head {
			add(a)
		}
		for _, a := range r.Pos {
			add(a)
		}
		for _, a := range r.Neg {
			add(a)
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package query

import (
	"sort"

	"repro/internal/relational"
	"repro/internal/term"
)

// This file implements base-anchored per-repair query answering: evaluate q
// once on the base instance D, then compute the answer set of each repair R
// by patching the base result along Δ(D, R) instead of re-running the full
// join. The patch has three parts, each a Δ-anchored join:
//
//   - gained answers: assignments over R that use an added fact in a
//     positive literal (the join is anchored on the Δ⁺-atom and completed
//     against R's indexes), plus assignments whose blocking negated atom was
//     removed (anchored on the Δ⁻-atom through the negated literal);
//   - lost candidates: base answers that *might* have lost support — their
//     witnessing assignments used a removed fact positively (anchored over
//     D) or are now blocked by an added fact through a negated literal;
//   - confirmation: each lost candidate is re-probed on R with the head
//     variables bound (a highly selective join), and dropped only if no
//     disjunct supports it anymore.
//
// Every surviving base answer keeps a witness untouched by Δ, every gained
// answer is verified on R, and every dropped answer was exhaustively
// re-probed, so the patched result is byte-identical to Eval(R) — the
// randomized differential suite in delta_test.go pins this over enumerated
// repair sets. The cost per repair is O(|Δ| · anchored-join) plus one bound
// probe per candidate, instead of a full evaluation.

// BaseEval is a query evaluated once on a base instance, ready to be patched
// onto instances that differ from the base by small deltas (the repairs of
// the base, in CQA). It implements the package's default semantics (null as
// an ordinary constant, no answer filtering) — exactly Eval.
//
// A BaseEval is immutable after construction and safe for concurrent use as
// long as the base instance is not mutated (distinct overlay views of a
// frozen engine are fine; see relational.Instance).
type BaseEval struct {
	base      *relational.Instance
	q         *Q
	tuples    []relational.Tuple          // sorted base answers
	tupleKeys []string                    // keys aligned with tuples
	keys      map[string]relational.Tuple // base answers by tuple key
	pos       [][]term.Atom               // positive atoms per disjunct
}

// NewBaseEval validates q and evaluates it on the base instance.
func NewBaseEval(base *relational.Instance, q *Q) (*BaseEval, error) {
	tuples, err := Eval(base, q)
	if err != nil {
		return nil, err
	}
	be := &BaseEval{
		base:      base,
		q:         q,
		tuples:    tuples,
		tupleKeys: make([]string, len(tuples)),
		keys:      make(map[string]relational.Tuple, len(tuples)),
		pos:       make([][]term.Atom, len(q.Disjuncts)),
	}
	for i, t := range tuples {
		k := t.Key()
		be.tupleKeys[i] = k
		be.keys[k] = t
	}
	for i, c := range q.Disjuncts {
		be.pos[i] = positiveAtoms(c)
	}
	return be, nil
}

// BaseAnswers returns the base instance's answers (shared; callers must not
// mutate).
func (be *BaseEval) BaseAnswers() []relational.Tuple { return be.tuples }

// BaseKeys returns the tuple keys aligned with BaseAnswers (shared; callers
// must not mutate).
func (be *BaseEval) BaseKeys() []string { return be.tupleKeys }

// EvalOn returns the answers of the query on r, computed by patching the
// base answers along Δ(base, r). The result equals Eval(r, q) — same
// tuples, same order. When r is an overlay view of the base's engine (a
// repair-search leaf), the delta itself costs O(|Δ|), not O(|r|).
func (be *BaseEval) EvalOn(r *relational.Instance) []relational.Tuple {
	return be.EvalDelta(r, relational.Diff(be.base, r))
}

// DiffOn computes the patch of the base answers for r without building the
// merged answer list: fresh holds the answers on r that are not base answers
// (keyed by tuple key), lost the keys of base answers that do not survive on
// r. ans(r) = (base answers − lost) ∪ fresh. Callers that only need how r's
// answers differ from the base — certain-answer intersection across a repair
// set, for one — avoid the O(|base answers|) merge EvalDelta pays per call.
func (be *BaseEval) DiffOn(r *relational.Instance) (fresh map[string]relational.Tuple, lost map[string]bool) {
	return be.DiffDelta(r, relational.Diff(be.base, r))
}

// DiffDelta is DiffOn with a precomputed delta = Δ(base, r). Either result
// map may be nil when empty.
func (be *BaseEval) DiffDelta(r *relational.Instance, delta relational.Delta) (fresh map[string]relational.Tuple, lost map[string]bool) {
	if delta.Size() == 0 {
		return nil, nil
	}
	gained := map[string]relational.Tuple{}
	cands := map[string]relational.Tuple{}
	for ci, c := range be.q.Disjuncts {
		be.gainedFrom(r, c, be.pos[ci], delta, gained)
		be.lostCandidates(c, be.pos[ci], delta, cands)
	}
	for k, t := range cands {
		if _, inBase := be.keys[k]; !inBase {
			continue // the candidate assignment never produced a base answer
		}
		if _, g := gained[k]; g {
			continue // re-supported on r by a Δ-anchored witness
		}
		if !be.supported(r, t) {
			if lost == nil {
				lost = map[string]bool{}
			}
			lost[k] = true
		}
	}
	for k, t := range gained {
		if _, inBase := be.keys[k]; !inBase {
			if fresh == nil {
				fresh = map[string]relational.Tuple{}
			}
			fresh[k] = t
		}
	}
	return fresh, lost
}

// EvalDelta is EvalOn with a precomputed delta = Δ(base, r): Removed holds
// base facts absent from r, Added the facts of r absent from the base.
func (be *BaseEval) EvalDelta(r *relational.Instance, delta relational.Delta) []relational.Tuple {
	if delta.Size() == 0 {
		return append([]relational.Tuple(nil), be.tuples...)
	}
	freshByKey, lost := be.DiffDelta(r, delta)
	// The base answers are already sorted; only the (small) genuinely new
	// tuples need sorting, and the result is a linear merge — no O(n log n)
	// re-sort per repair.
	fresh := make([]relational.Tuple, 0, len(freshByKey))
	for _, t := range freshByKey {
		fresh = append(fresh, t)
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Compare(fresh[j]) < 0 })
	out := make([]relational.Tuple, 0, len(be.tuples)+len(fresh))
	fi := 0
	for ti, t := range be.tuples {
		if len(lost) != 0 && lost[be.tupleKeys[ti]] {
			continue
		}
		for fi < len(fresh) && fresh[fi].Compare(t) < 0 {
			out = append(out, fresh[fi])
			fi++
		}
		out = append(out, t)
	}
	out = append(out, fresh[fi:]...)
	if len(out) == 0 {
		return nil
	}
	return out
}

// gainedFrom collects the head projections of assignments over r that
// involve the delta: positive joins anchored on each added fact, and joins
// seeded by a removed fact through each negated literal (the blocker whose
// disappearance enables the assignment). All conditions are re-checked over
// r, so everything collected is a genuine answer on r.
func (be *BaseEval) gainedFrom(r *relational.Instance, c Conj, pos []term.Atom, delta relational.Delta, gained map[string]relational.Tuple) {
	for gi := range delta.Added {
		g := &delta.Added[gi]
		for j, a := range pos {
			be.anchored(r, c, pos, j, a, *g, gained)
		}
	}
	for fi := range delta.Removed {
		f := &delta.Removed[fi]
		for _, l := range c.Lits {
			if !l.Neg {
				continue
			}
			be.anchored(r, c, pos, -1, l.Atom, *f, gained)
		}
	}
}

// lostCandidates collects the head projections of base assignments the delta
// can invalidate: joins over the base anchored on each removed fact through
// a positive literal, and joins seeded by an added fact through each negated
// literal (the new blocker). Conditions are checked over the base, so every
// candidate is a genuine base answer; whether it survives on r is decided by
// the supported re-probe.
func (be *BaseEval) lostCandidates(c Conj, pos []term.Atom, delta relational.Delta, cands map[string]relational.Tuple) {
	for fi := range delta.Removed {
		f := &delta.Removed[fi]
		for j, a := range pos {
			be.anchored(be.base, c, pos, j, a, *f, cands)
		}
	}
	for gi := range delta.Added {
		g := &delta.Added[gi]
		for _, l := range c.Lits {
			if !l.Neg {
				continue
			}
			be.anchored(be.base, c, pos, -1, l.Atom, *g, cands)
		}
	}
}

// anchored seeds a join of c's positive atoms over d with the bindings the
// delta fact f imposes on atom a — pos[skip] when the anchor is a positive
// literal (the atom is then excluded from the join), or a negated literal
// (skip = -1, all positives joined) — and collects the head projections of
// the assignments whose conditions hold on d.
func (be *BaseEval) anchored(d *relational.Instance, c Conj, pos []term.Atom, skip int, a term.Atom, f relational.Fact, into map[string]relational.Tuple) {
	if a.Pred != f.Pred || a.Arity() != len(f.Args) {
		return
	}
	subst := term.Subst{}
	if _, ok := matchAtom(f.Args, a, subst); !ok {
		return
	}
	rest := make([]term.Atom, 0, len(pos))
	for j, p := range pos {
		if j != skip {
			rest = append(rest, p)
		}
	}
	pre := make(map[string]bool, len(subst))
	for v := range subst {
		pre[v] = true
	}
	rest = orderBySelectivity(d, rest, pre)
	joinPositives(d, rest, subst, func() bool {
		if condsHold(d, c, subst) {
			t := projectHead(be.q.Head, subst)
			into[t.Key()] = t
		}
		return true
	})
}

// supported reports whether t is still an answer on r: some disjunct admits
// an assignment extending the head binding. The head variables make the join
// highly selective, so the probe cost tracks the matching tuples.
func (be *BaseEval) supported(r *relational.Instance, t relational.Tuple) bool {
	for ci, c := range be.q.Disjuncts {
		subst := term.Subst{}
		ok := true
		for j, v := range be.q.Head {
			if prev, bound := subst[v]; bound {
				if !prev.Eq(t[j]) {
					ok = false
					break
				}
				continue
			}
			subst[v] = t[j]
		}
		if !ok {
			continue
		}
		pre := make(map[string]bool, len(subst))
		for v := range subst {
			pre[v] = true
		}
		atoms := orderBySelectivity(r, be.pos[ci], pre)
		found := false
		joinPositives(r, atoms, subst, func() bool {
			if condsHold(r, c, subst) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

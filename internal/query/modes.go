package query

import (
	"sort"

	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

// The paper deliberately leaves the query-answering semantics |=q_N open
// (Section 4: "we are not committing to any particular semantics", only
// requiring polynomial evaluation and agreement with classical semantics on
// null-free databases). This file provides the two natural candidates as
// explicit modes:
//
//   - ConstantNulls (the package default, used by CQA): null behaves as an
//     ordinary constant — null joins with null, negation is set membership,
//     comparisons treat null as a plain value. This matches how Definition 4
//     evaluates ψ_N and how the repair programs treat null.
//   - SQLNulls: null never equals anything (not even null), so joins and
//     selections involving null fail, and builtin comparisons follow
//     three-valued logic with unknown discarded. This matches the behaviour
//     of SQL query evaluation in commercial DBMSs.
//
// Both coincide on databases without nulls, as the paper requires.

// Mode selects the null treatment during query evaluation.
type Mode uint8

const (
	// ConstantNulls treats null as an ordinary constant.
	ConstantNulls Mode = iota
	// SQLNulls makes every comparison with null unknown (discarded).
	SQLNulls
)

func (m Mode) String() string {
	if m == SQLNulls {
		return "sql-nulls"
	}
	return "constant-nulls"
}

// Options configures evaluation.
type Options struct {
	Mode Mode
	// ExcludeNullAnswers drops answer tuples containing null (the
	// SQL-style presentation choice for certain answers).
	ExcludeNullAnswers bool
}

// EvalWith evaluates the query under explicit options. Eval is equivalent
// to EvalWith with the zero Options.
func EvalWith(d *relational.Instance, q *Q, opts Options) ([]relational.Tuple, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	seen := map[string]relational.Tuple{}
	for _, disj := range q.Disjuncts {
		evalConjWith(d, disj, q.Head, opts, func(t relational.Tuple) {
			if opts.ExcludeNullAnswers && t.HasNull() {
				return
			}
			seen[t.Key()] = t
		})
	}
	out := make([]relational.Tuple, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

func evalConjWith(d *relational.Instance, c Conj, head []string, opts Options, yield func(relational.Tuple)) {
	if opts.Mode == ConstantNulls {
		evalConj(d, c, head, yield)
		return
	}
	var posAtoms []term.Atom
	for _, l := range c.Lits {
		if !l.Neg {
			posAtoms = append(posAtoms, l.Atom)
		}
	}
	posAtoms = orderBySelectivity(d, posAtoms, nil)
	subst := term.Subst{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(posAtoms) {
			for _, b := range c.Builtins {
				res, ok := b.Eval3(subst)
				if !ok || res != value.True3 {
					return
				}
			}
			for _, l := range c.Lits {
				if l.Neg && holdsGroundSQL(d, l.Atom, subst) {
					return
				}
			}
			out := make(relational.Tuple, len(head))
			for j, v := range head {
				out[j] = subst[v]
			}
			yield(out)
			return
		}
		a := posAtoms[i]
		bs, possible := bindingsSQL(a, subst)
		if !possible {
			return
		}
		d.Scan(a.Pred, a.Arity(), bs, func(tuple relational.Tuple) bool {
			bound, ok := matchAtomSQL(tuple, a, subst)
			if !ok {
				return true
			}
			rec(i + 1)
			undo(subst, bound)
			return true
		})
	}
	rec(0)
}

// bindingsSQL derives the index-servable columns under SQL null semantics:
// only non-null constants and non-null bound variables are equality probes
// (Eq3 == True3 implies interned-id equality of non-null values). A null
// want can never match any stored value, so the whole atom is unsatisfiable
// and possible is false.
func bindingsSQL(a term.Atom, subst term.Subst) (bs []relational.Binding, possible bool) {
	for i, t := range a.Args {
		var want value.V
		if !t.IsVar() {
			want = t.Const
		} else if v, ok := subst[t.Var]; ok {
			want = v
		} else {
			continue
		}
		if want.IsNull() {
			return nil, false
		}
		bs = append(bs, relational.Binding{Pos: i, Val: want})
	}
	return bs, true
}

// matchAtomSQL unifies with SQL null semantics: a null in the tuple can
// bind a fresh variable (NULL is retrievable), but never satisfies an
// equality against a constant or an already-bound variable — not even
// another null.
func matchAtomSQL(tuple relational.Tuple, a term.Atom, subst term.Subst) (bound []string, ok bool) {
	for idx, t := range a.Args {
		if !t.IsVar() {
			if tuple[idx].Eq3(t.Const) != value.True3 {
				undo(subst, bound)
				return nil, false
			}
			continue
		}
		if v, isBound := subst[t.Var]; isBound {
			if tuple[idx].Eq3(v) != value.True3 {
				undo(subst, bound)
				return nil, false
			}
			continue
		}
		subst[t.Var] = tuple[idx]
		bound = append(bound, t.Var)
	}
	return bound, true
}

// holdsGroundSQL checks negated membership under SQL semantics: a ground
// atom involving null never matches a stored row (every Eq3 against null is
// unknown), and a fully non-null atom matches exactly the identical stored
// row — an O(1) membership probe.
func holdsGroundSQL(d *relational.Instance, a term.Atom, subst term.Subst) bool {
	args := make(relational.Tuple, len(a.Args))
	for i, t := range a.Args {
		v, ok := subst.Apply(t)
		if !ok {
			return false
		}
		if v.IsNull() {
			return false
		}
		args[i] = v
	}
	return d.Has(relational.Fact{Pred: a.Pred, Args: args})
}

package query

import (
	"testing"

	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

func v(name string) term.T                       { return term.V(name) }
func atom(pred string, args ...term.T) term.Atom { return term.NewAtom(pred, args...) }
func s(x string) value.V                         { return value.Str(x) }
func i(x int64) value.V                          { return value.Int(x) }
func n() value.V                                 { return value.Null() }

func db() *relational.Instance {
	return relational.NewInstance(
		relational.F("Course", i(21), s("C15")),
		relational.F("Course", i(34), s("C18")),
		relational.F("Student", i(21), s("Ann")),
		relational.F("Student", i(45), s("Paul")),
		relational.F("Student", i(34), n()),
	)
}

func TestEvalJoin(t *testing.T) {
	q := &Q{
		Name: "q",
		Head: []string{"Id", "Nm"},
		Disjuncts: []Conj{{
			Lits: []Literal{
				{Atom: atom("Course", v("Id"), v("Code"))},
				{Atom: atom("Student", v("Id"), v("Nm"))},
			},
		}},
	}
	got, err := Eval(db(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("answers = %v", got)
	}
	// Sorted: (21,Ann), (34,null).
	if !got[0].Equal(relational.Tuple{i(21), s("Ann")}) {
		t.Errorf("got[0] = %v", got[0])
	}
	if !got[1].Equal(relational.Tuple{i(34), n()}) {
		t.Errorf("got[1] = %v (null must join as an ordinary constant)", got[1])
	}
}

func TestEvalNegation(t *testing.T) {
	q := &Q{
		Name: "q",
		Head: []string{"Id"},
		Disjuncts: []Conj{{
			Lits: []Literal{
				{Atom: atom("Student", v("Id"), v("Nm"))},
				{Atom: atom("Course", v("Id"), v("Code"))}, // bind Code
			},
		}},
	}
	// Students with a course.
	got, err := Eval(db(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("answers = %v", got)
	}

	// Students with no course: need negation with bound vars only.
	qn := &Q{
		Name: "q",
		Head: []string{"Id"},
		Disjuncts: []Conj{{
			Lits: []Literal{
				{Atom: atom("Student", v("Id"), v("Nm"))},
				{Atom: atom("HasCourse", v("Id")), Neg: true},
			},
		}},
	}
	d := db()
	d.Insert(relational.F("HasCourse", i(21)))
	d.Insert(relational.F("HasCourse", i(34)))
	got, err = Eval(d, qn)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(relational.Tuple{i(45)}) {
		t.Errorf("answers = %v", got)
	}
}

func TestEvalBuiltinsAndUnion(t *testing.T) {
	q := &Q{
		Name: "q",
		Head: []string{"Id"},
		Disjuncts: []Conj{
			{
				Lits:     []Literal{{Atom: atom("Student", v("Id"), v("Nm"))}},
				Builtins: []term.Builtin{{Op: term.LT, L: v("Id"), R: term.CInt(30)}},
			},
			{
				Lits: []Literal{{Atom: atom("Course", v("Id"), term.CStr("C18"))}},
			},
		},
	}
	got, err := Eval(db(), q)
	if err != nil {
		t.Fatal(err)
	}
	// 21 (from the filter) and 34 (from the C18 course).
	if len(got) != 2 || !got[0].Equal(relational.Tuple{i(21)}) || !got[1].Equal(relational.Tuple{i(34)}) {
		t.Errorf("answers = %v", got)
	}
}

func TestEvalBoolean(t *testing.T) {
	q := &Q{
		Name:      "hasC15",
		Disjuncts: []Conj{{Lits: []Literal{{Atom: atom("Course", v("X"), term.CStr("C15"))}}}},
	}
	holds, err := EvalBool(db(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Error("boolean query should hold")
	}
	q2 := &Q{
		Name:      "hasC99",
		Disjuncts: []Conj{{Lits: []Literal{{Atom: atom("Course", v("X"), term.CStr("C99"))}}}},
	}
	holds, err = EvalBool(db(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("boolean query should fail")
	}
	open := &Q{Name: "q", Head: []string{"X"},
		Disjuncts: []Conj{{Lits: []Literal{{Atom: atom("Course", v("X"), v("Y"))}}}}}
	if _, err := EvalBool(db(), open); err == nil {
		t.Error("EvalBool must reject open queries")
	}
}

func TestValidateSafety(t *testing.T) {
	bad := []*Q{
		{Name: "noDisjuncts", Head: []string{"X"}},
		{ // unbound head var
			Name: "q", Head: []string{"Z"},
			Disjuncts: []Conj{{Lits: []Literal{{Atom: atom("P", v("X"))}}}},
		},
		{ // unbound negated var
			Name: "q", Head: []string{"X"},
			Disjuncts: []Conj{{Lits: []Literal{
				{Atom: atom("P", v("X"))},
				{Atom: atom("R", v("W")), Neg: true},
			}}},
		},
		{ // unbound builtin var
			Name: "q", Head: []string{"X"},
			Disjuncts: []Conj{{
				Lits:     []Literal{{Atom: atom("P", v("X"))}},
				Builtins: []term.Builtin{{Op: term.GT, L: v("Q"), R: term.CInt(0)}},
			}},
		},
	}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("query %s accepted", q.Name)
		}
	}
}

func TestEvalProjectionDedup(t *testing.T) {
	d := relational.NewInstance(
		relational.F("P", s("a"), s("x")),
		relational.F("P", s("a"), s("y")),
	)
	q := &Q{Name: "q", Head: []string{"X"},
		Disjuncts: []Conj{{Lits: []Literal{{Atom: atom("P", v("X"), v("Y"))}}}}}
	got, err := Eval(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("projection must deduplicate: %v", got)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	d := relational.NewInstance(
		relational.F("E", s("a"), s("a")),
		relational.F("E", s("a"), s("b")),
	)
	q := &Q{Name: "q", Head: []string{"X"},
		Disjuncts: []Conj{{Lits: []Literal{{Atom: atom("E", v("X"), v("X"))}}}}}
	got, err := Eval(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(relational.Tuple{s("a")}) {
		t.Errorf("answers = %v", got)
	}
}

func TestQueryString(t *testing.T) {
	q := &Q{
		Name: "q",
		Head: []string{"X"},
		Disjuncts: []Conj{{
			Lits:     []Literal{{Atom: atom("P", v("X"), v("Y"))}, {Atom: atom("R", v("Y")), Neg: true}},
			Builtins: []term.Builtin{{Op: term.GT, L: v("X"), R: term.CInt(3)}},
		}},
	}
	want := "q(X) :- P(X,Y), not R(Y), X > 3."
	if got := q.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

package query

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

// This file pins the base-anchored patched evaluation against the
// from-scratch evaluator: for random base instances, random deltas, and a
// query zoo covering joins, unions, negation, builtins, repeated variables,
// and boolean queries, BaseEval.EvalOn must be byte-identical to Eval on the
// patched instance. The suite runs under -race in CI with the rest of the
// package.

func deltaQueryZoo() []*Q {
	lit := func(neg bool, pred string, args ...term.T) Literal {
		return Literal{Atom: term.NewAtom(pred, args...), Neg: neg}
	}
	v := term.V
	return []*Q{
		{Name: "q1", Head: []string{"X"}, Disjuncts: []Conj{{
			Lits: []Literal{lit(false, "r", v("X"), v("Y"))},
		}}},
		{Name: "q2", Head: []string{"X", "Z"}, Disjuncts: []Conj{{
			Lits: []Literal{lit(false, "r", v("X"), v("Y")), lit(false, "s", v("Y"), v("Z"))},
		}}},
		{Name: "q3", Head: []string{"X"}, Disjuncts: []Conj{{
			Lits: []Literal{lit(false, "r", v("X"), v("Y")), lit(true, "s", v("X"), v("Y"))},
		}}},
		{Name: "q4", Head: []string{"X"}, Disjuncts: []Conj{
			{Lits: []Literal{lit(false, "r", v("X"), v("X"))}},
			{Lits: []Literal{lit(false, "s", v("X"), v("Y")), lit(true, "r", v("Y"), v("X"))}},
		}},
		{Name: "q5", Head: nil, Disjuncts: []Conj{{ // boolean join
			Lits: []Literal{lit(false, "r", v("X"), v("Y")), lit(false, "s", v("Y"), v("Z"))},
		}}},
		{Name: "q6", Head: nil, Disjuncts: []Conj{{ // boolean ground negation
			Lits: []Literal{lit(true, "r", term.CStr("a"), term.CStr("b"))},
		}}},
		{Name: "q7", Head: []string{"X", "Y"}, Disjuncts: []Conj{{
			Lits:     []Literal{lit(false, "r", v("X"), v("Y"))},
			Builtins: []term.Builtin{{Op: term.NEQ, L: v("X"), R: v("Y")}},
		}}},
		{Name: "q8", Head: []string{"X", "X"}, Disjuncts: []Conj{{ // repeated head var
			Lits: []Literal{lit(false, "s", v("X"), v("Y")), lit(true, "r", v("X"), v("X"))},
		}}},
	}
}

func randDeltaFact(rng *rand.Rand) relational.Fact {
	vals := []value.V{value.Str("a"), value.Str("b"), value.Str("c"), value.Null(), value.Int(7)}
	preds := []string{"r", "s"}
	return relational.Fact{
		Pred: preds[rng.Intn(2)],
		Args: relational.Tuple{vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]},
	}
}

func tuplesEqual(a, b []relational.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestPatchedEvalMatchesScratch compares EvalOn against Eval over random
// base instances and random overlay deltas of growing size, including deltas
// that delete and re-insert base facts.
func TestPatchedEvalMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	zoo := deltaQueryZooValidated(t)
	for trial := 0; trial < 300; trial++ {
		base := relational.NewInstance()
		for k := 0; k < rng.Intn(12); k++ {
			base.Insert(randDeltaFact(rng))
		}
		evals := make([]*BaseEval, len(zoo))
		for i, q := range zoo {
			be, err := NewBaseEval(base, q)
			if err != nil {
				t.Fatal(err)
			}
			evals[i] = be
		}
		for variant := 0; variant < 3; variant++ {
			r := base.Clone()
			for k := 0; k < rng.Intn(5); k++ {
				f := randDeltaFact(rng)
				if rng.Intn(2) == 0 {
					r.Insert(f)
				} else if facts := r.Facts(); len(facts) > 0 && rng.Intn(2) == 0 {
					r.Delete(facts[rng.Intn(len(facts))])
				} else {
					r.Delete(f)
				}
			}
			for i, q := range zoo {
				want, err := Eval(r, q)
				if err != nil {
					t.Fatal(err)
				}
				got := evals[i].EvalOn(r)
				if !tuplesEqual(got, want) {
					t.Fatalf("trial %d query %s: patched %v, scratch %v\nbase=%v\nr=%v\nΔ=%v",
						trial, q.Name, got, want, base, r, relational.Diff(base, r))
				}
			}
		}
	}
}

func deltaQueryZooValidated(t *testing.T) []*Q {
	t.Helper()
	zoo := deltaQueryZoo()
	for _, q := range zoo {
		if err := q.Validate(); err != nil {
			t.Fatalf("query zoo entry %s invalid: %v", q.Name, err)
		}
	}
	return zoo
}

// TestPatchedEvalEmptyDelta pins the fast path: patching with an untouched
// clone returns the base answers verbatim.
func TestPatchedEvalEmptyDelta(t *testing.T) {
	base := relational.NewInstance(
		relational.F("r", value.Str("a"), value.Str("b")),
		relational.F("s", value.Str("b"), value.Str("c")),
	)
	q := deltaQueryZoo()[1]
	be, err := NewBaseEval(base, q)
	if err != nil {
		t.Fatal(err)
	}
	got := be.EvalOn(base.Clone())
	if !tuplesEqual(got, be.BaseAnswers()) {
		t.Fatalf("empty delta: got %v, base %v", got, be.BaseAnswers())
	}
	if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", be.BaseAnswers()) {
		t.Fatalf("empty delta rendering differs")
	}
}

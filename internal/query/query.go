// Package query implements the query language over which consistent query
// answering (Definition 8) is defined: safe unions of conjunctive queries
// with negated atoms and builtin comparisons — the fragment the CQA
// literature works with, covering safe first-order queries in the sense of
// Van Gelder & Topor (the paper's [32]).
//
// Query answering over databases with nulls follows the same convention as
// IC checking inside repairs: null is an ordinary constant (null joins with
// null, and a negated atom holds iff the ground atom is absent). The paper
// deliberately leaves the query semantics |=q_N open ("we are not
// committing to any particular semantics"), requiring only polynomial data
// complexity and agreement with classical semantics on null-free databases;
// this choice satisfies both requirements and matches how the repair
// programs treat null.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relational"
	"repro/internal/term"
)

// Literal is a possibly negated predicate atom.
type Literal struct {
	Atom term.Atom
	Neg  bool
}

func (l Literal) String() string {
	if l.Neg {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Conj is one conjunctive disjunct of a query.
type Conj struct {
	Lits     []Literal
	Builtins []term.Builtin
}

func (c Conj) String() string {
	parts := make([]string, 0, len(c.Lits)+len(c.Builtins))
	for _, l := range c.Lits {
		parts = append(parts, l.String())
	}
	for _, b := range c.Builtins {
		parts = append(parts, b.String())
	}
	return strings.Join(parts, ", ")
}

// Q is a query: a union of conjunctive queries with negation, projected
// onto the head variables. An empty Head makes it a boolean query.
type Q struct {
	// Name labels the query in output (e.g. "q").
	Name string
	// Head lists the free (answer) variables.
	Head []string
	// Disjuncts are the union members; at least one is required.
	Disjuncts []Conj
}

func (q *Q) String() string {
	head := q.Name
	if head == "" {
		head = "q"
	}
	head += "(" + strings.Join(q.Head, ",") + ")"
	parts := make([]string, len(q.Disjuncts))
	for i, d := range q.Disjuncts {
		parts[i] = head + " :- " + d.String() + "."
	}
	return strings.Join(parts, "\n")
}

// IsBoolean reports whether the query has no answer variables.
func (q *Q) IsBoolean() bool { return len(q.Head) == 0 }

// Preds returns the sorted, deduplicated predicate names the query
// mentions (positive and negated literals across all disjuncts). A base
// update touching none of them cannot change the query's answers on any
// fixed instance, which is what lets a session skip re-evaluating
// standing queries unaffected by a delta.
func (q *Q) Preds() []string {
	seen := map[string]bool{}
	for _, d := range q.Disjuncts {
		for _, l := range d.Lits {
			seen[l.Atom.Pred] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Validate checks safety: in every disjunct, each head variable, negated
// variable and builtin variable must occur in a positive literal.
func (q *Q) Validate() error {
	if len(q.Disjuncts) == 0 {
		return fmt.Errorf("query %s: no disjuncts", q.Name)
	}
	for i, d := range q.Disjuncts {
		posVars := map[string]bool{}
		for _, l := range d.Lits {
			if !l.Neg {
				for _, t := range l.Atom.Args {
					if t.IsVar() {
						posVars[t.Var] = true
					}
				}
			}
		}
		check := func(v, role string) error {
			if !posVars[v] {
				return fmt.Errorf("query %s, disjunct %d: %s variable %q not bound by a positive literal (unsafe)",
					q.Name, i+1, role, v)
			}
			return nil
		}
		for _, v := range q.Head {
			if err := check(v, "head"); err != nil {
				return err
			}
		}
		for _, l := range d.Lits {
			if l.Neg {
				for _, t := range l.Atom.Args {
					if t.IsVar() {
						if err := check(t.Var, "negated"); err != nil {
							return err
						}
					}
				}
			}
		}
		for _, b := range d.Builtins {
			for _, v := range b.Vars(nil) {
				if err := check(v, "builtin"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Eval returns the distinct answers of the query over the instance, sorted.
// For boolean queries the result is non-nil (a single empty tuple) iff the
// query holds.
func Eval(d *relational.Instance, q *Q) ([]relational.Tuple, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	seen := map[string]relational.Tuple{}
	for _, disj := range q.Disjuncts {
		evalConj(d, disj, q.Head, func(t relational.Tuple) {
			seen[t.Key()] = t
		})
	}
	out := make([]relational.Tuple, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// EvalBool evaluates a boolean query.
func EvalBool(d *relational.Instance, q *Q) (bool, error) {
	if !q.IsBoolean() {
		return false, fmt.Errorf("query %s is not boolean", q.Name)
	}
	ts, err := Eval(d, q)
	if err != nil {
		return false, err
	}
	return len(ts) > 0, nil
}

// orderBySelectivity reorders the positive atoms of a join greedily: at each
// step it picks the remaining atom with the most columns bound by the atoms
// already placed (constants and the pre-bound variables count as bound),
// breaking ties toward the smaller relation and then toward the original
// order. The answer set is order-independent; only the enumeration cost
// changes. pre names variables an anchored join has already bound; nil for a
// join from scratch.
func orderBySelectivity(d *relational.Instance, atoms []term.Atom, pre map[string]bool) []term.Atom {
	if len(atoms) < 2 {
		return atoms
	}
	remaining := append([]term.Atom(nil), atoms...)
	bound := map[string]bool{}
	for v := range pre {
		bound[v] = true
	}
	out := make([]term.Atom, 0, len(atoms))
	for len(remaining) > 0 {
		best, bestBound, bestSize := -1, -1, 0
		for i, a := range remaining {
			nb := 0
			for _, t := range a.Args {
				if !t.IsVar() || bound[t.Var] {
					nb++
				}
			}
			size := d.RelationSize(a.Pred, a.Arity())
			if best == -1 || nb > bestBound || (nb == bestBound && size < bestSize) {
				best, bestBound, bestSize = i, nb, size
			}
		}
		a := remaining[best]
		out = append(out, a)
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	return out
}

// evalConj joins the positive literals — reordered by selectivity and
// resolved through per-relation hash indexes on the bound columns — then
// filters by negated literals and builtins, yielding each head projection.
func evalConj(d *relational.Instance, c Conj, head []string, yield func(relational.Tuple)) {
	atoms := orderBySelectivity(d, positiveAtoms(c), nil)
	subst := term.Subst{}
	joinPositives(d, atoms, subst, func() bool {
		if condsHold(d, c, subst) {
			yield(projectHead(head, subst))
		}
		return true
	})
}

// ForEachAssignment enumerates every assignment of c's positive literals
// over d that satisfies c's builtins, with the join selectivity-ordered and
// resolved through the per-relation hash indexes, exactly as evalConj does.
// Negated literals are NOT applied: callers that answer negation against a
// set of instances at once (the direct engine evaluates a negated literal
// against every repair simultaneously) own that check themselves. The subst
// passed to yield is reused across calls — copy it if it must outlive the
// callback. yield returns false to stop the enumeration early.
func ForEachAssignment(d *relational.Instance, c Conj, yield func(term.Subst) bool) {
	atoms := orderBySelectivity(d, positiveAtoms(c), nil)
	subst := term.Subst{}
	joinPositives(d, atoms, subst, func() bool {
		for _, b := range c.Builtins {
			res, ok := b.Eval(subst)
			if !ok || !res {
				return true
			}
		}
		return yield(subst)
	})
}

// positiveAtoms collects the positive literals of a disjunct, in order.
func positiveAtoms(c Conj) []term.Atom {
	var out []term.Atom
	for _, l := range c.Lits {
		if !l.Neg {
			out = append(out, l.Atom)
		}
	}
	return out
}

// joinPositives enumerates the assignments of the positive atoms over d,
// extending subst in place — the shared join core of the from-scratch, the
// Δ-anchored, and the head-bound evaluations. The atoms should already be
// selectivity-ordered; bound columns (constants and variables subst already
// binds) are resolved through the per-relation hash indexes. yield returns
// false to stop; joinPositives reports whether the enumeration completed.
func joinPositives(d *relational.Instance, atoms []term.Atom, subst term.Subst, yield func() bool) bool {
	if len(atoms) == 0 {
		return yield()
	}
	a := atoms[0]
	cont := true
	d.Scan(a.Pred, a.Arity(), relational.AtomBindings(a, subst), func(tuple relational.Tuple) bool {
		bound, ok := matchAtom(tuple, a, subst)
		if !ok {
			return true
		}
		cont = joinPositives(d, atoms[1:], subst, yield)
		undo(subst, bound)
		return cont
	})
	return cont
}

// condsHold evaluates the builtins and then the negated literals of c under
// a complete assignment, with null as an ordinary constant (the package's
// default ConstantNulls semantics).
func condsHold(d *relational.Instance, c Conj, subst term.Subst) bool {
	for _, b := range c.Builtins {
		res, ok := b.Eval(subst)
		if !ok || !res {
			return false
		}
	}
	for _, l := range c.Lits {
		if l.Neg && holdsGround(d, l.Atom, subst) {
			return false
		}
	}
	return true
}

// projectHead materializes the head projection of an assignment.
func projectHead(head []string, subst term.Subst) relational.Tuple {
	out := make(relational.Tuple, len(head))
	for j, v := range head {
		out[j] = subst[v]
	}
	return out
}

func holdsGround(d *relational.Instance, a term.Atom, subst term.Subst) bool {
	args := make(relational.Tuple, len(a.Args))
	for i, t := range a.Args {
		v, ok := subst.Apply(t)
		if !ok {
			return false
		}
		args[i] = v
	}
	return d.Has(relational.Fact{Pred: a.Pred, Args: args})
}

func matchAtom(tuple relational.Tuple, a term.Atom, subst term.Subst) (bound []string, ok bool) {
	for i, t := range a.Args {
		if !t.IsVar() {
			if !tuple[i].Eq(t.Const) {
				undo(subst, bound)
				return nil, false
			}
			continue
		}
		if v, isBound := subst[t.Var]; isBound {
			if !tuple[i].Eq(v) {
				undo(subst, bound)
				return nil, false
			}
			continue
		}
		subst[t.Var] = tuple[i]
		bound = append(bound, t.Var)
	}
	return bound, true
}

func undo(subst term.Subst, bound []string) {
	for _, v := range bound {
		delete(subst, v)
	}
}

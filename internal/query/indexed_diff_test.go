package query

import (
	"math/rand"
	"testing"

	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

// Differential test: the index-backed, selectivity-reordered join must
// return exactly the answers of a naive evaluator that keeps the literal
// order and filters the full fact list per atom (the seed strategy). The
// randomized-instance shape mirrors internal/core/fuzz_test.go.

// naiveEval evaluates q with no reordering and no index: for each disjunct,
// positive literals are joined by scanning Facts() in the order written.
func naiveEval(d *relational.Instance, q *Q, opts Options) []relational.Tuple {
	seen := map[string]relational.Tuple{}
	for _, disj := range q.Disjuncts {
		var posAtoms []term.Atom
		for _, l := range disj.Lits {
			if !l.Neg {
				posAtoms = append(posAtoms, l.Atom)
			}
		}
		subst := term.Subst{}
		var rec func(i int)
		rec = func(i int) {
			if i == len(posAtoms) {
				for _, b := range disj.Builtins {
					if opts.Mode == SQLNulls {
						if res, ok := b.Eval3(subst); !ok || res != value.True3 {
							return
						}
					} else if res, ok := b.Eval(subst); !ok || !res {
						return
					}
				}
				for _, l := range disj.Lits {
					if !l.Neg {
						continue
					}
					if opts.Mode == SQLNulls {
						if naiveHoldsSQL(d, l.Atom, subst) {
							return
						}
					} else if holdsGround(d, l.Atom, subst) {
						return
					}
				}
				out := make(relational.Tuple, len(q.Head))
				for j, v := range q.Head {
					out[j] = subst[v]
				}
				if opts.ExcludeNullAnswers && out.HasNull() {
					return
				}
				seen[out.Key()] = out
				return
			}
			a := posAtoms[i]
			for _, f := range d.Facts() {
				if f.Pred != a.Pred || len(f.Args) != a.Arity() {
					continue
				}
				var bound []string
				var ok bool
				if opts.Mode == SQLNulls {
					bound, ok = matchAtomSQL(f.Args, a, subst)
				} else {
					bound, ok = matchAtom(f.Args, a, subst)
				}
				if !ok {
					continue
				}
				rec(i + 1)
				undo(subst, bound)
			}
		}
		rec(0)
	}
	out := make([]relational.Tuple, 0, len(seen))
	for _, tp := range seen {
		out = append(out, tp)
	}
	return relationalSort(out)
}

// naiveHoldsSQL is the pre-engine row scan for negated ground atoms under
// SQL null semantics.
func naiveHoldsSQL(d *relational.Instance, a term.Atom, subst term.Subst) bool {
	args := make(relational.Tuple, len(a.Args))
	for i, t := range a.Args {
		v, ok := subst.Apply(t)
		if !ok {
			return false
		}
		args[i] = v
	}
	found := false
	for _, f := range d.Facts() {
		if f.Pred != a.Pred || len(f.Args) != len(args) {
			continue
		}
		match := true
		for i := range args {
			if f.Args[i].Eq3(args[i]) != value.True3 {
				match = false
				break
			}
		}
		if match {
			found = true
			break
		}
	}
	return found
}

func relationalSort(ts []relational.Tuple) []relational.Tuple {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Compare(ts[j-1]) < 0; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	return ts
}

func TestIndexedEvalMatchesNaiveScan(t *testing.T) {
	// Queries are built with term constructors: the parser package imports
	// query, so it cannot be used from these in-package tests.
	pos := func(pred string, args ...term.T) Literal {
		return Literal{Atom: term.NewAtom(pred, args...)}
	}
	neg := func(pred string, args ...term.T) Literal {
		return Literal{Atom: term.NewAtom(pred, args...), Neg: true}
	}
	queries := []*Q{
		// q(Id) :- student(Id, Name).
		{Name: "q", Head: []string{"Id"}, Disjuncts: []Conj{
			{Lits: []Literal{pos("student", term.V("Id"), term.V("Name"))}},
		}},
		// q(U) :- s(U, V), r(V, W).
		{Name: "q", Head: []string{"U"}, Disjuncts: []Conj{
			{Lits: []Literal{pos("s", term.V("U"), term.V("V")), pos("r", term.V("V"), term.V("W"))}},
		}},
		// q(X) :- r(X, Y), not s(X, Y).
		{Name: "q", Head: []string{"X"}, Disjuncts: []Conj{
			{Lits: []Literal{pos("r", term.V("X"), term.V("Y")), neg("s", term.V("X"), term.V("Y"))}},
		}},
		// q(X, Z) :- r(X, Y), r(Y, Z), X != Z.
		{Name: "q", Head: []string{"X", "Z"}, Disjuncts: []Conj{
			{
				Lits:     []Literal{pos("r", term.V("X"), term.V("Y")), pos("r", term.V("Y"), term.V("Z"))},
				Builtins: []term.Builtin{{Op: term.NEQ, L: term.V("X"), R: term.V("Z")}},
			},
		}},
		// q(V) :- s(U, V), not r(V, V).  |  q(V) :- r(V, W), W = a.
		{Name: "q", Head: []string{"V"}, Disjuncts: []Conj{
			{Lits: []Literal{pos("s", term.V("U"), term.V("V")), neg("r", term.V("V"), term.V("V"))}},
			{
				Lits:     []Literal{pos("r", term.V("V"), term.V("W"))},
				Builtins: []term.Builtin{{Op: term.EQ, L: term.V("W"), R: term.CStr("a")}},
			},
		}},
	}
	rng := rand.New(rand.NewSource(2028))
	vals := []value.V{value.Str("a"), value.Str("b"), value.Null(), value.Int(21)}
	pick := func() value.V { return vals[rng.Intn(len(vals))] }

	for trial := 0; trial < 200; trial++ {
		d := relational.NewInstance()
		for k := 0; k < 1+rng.Intn(4); k++ {
			d.Insert(relational.F("r", pick(), pick()))
		}
		for k := 0; k < rng.Intn(4); k++ {
			d.Insert(relational.F("s", pick(), pick()))
		}
		for k := 0; k < rng.Intn(3); k++ {
			d.Insert(relational.F("student", pick(), pick()))
		}
		if rng.Intn(2) == 0 {
			d = d.Clone()
			d.Insert(relational.F("r", pick(), pick()))
			d.Delete(relational.F("s", pick(), pick()))
		}
		for qi, q := range queries {
			for _, opts := range []Options{
				{Mode: ConstantNulls},
				{Mode: SQLNulls},
				{Mode: ConstantNulls, ExcludeNullAnswers: true},
				{Mode: SQLNulls, ExcludeNullAnswers: true},
			} {
				got, err := EvalWith(d, q, opts)
				if err != nil {
					t.Fatalf("trial %d q%d: %v", trial, qi, err)
				}
				want := naiveEval(d, q, opts)
				if len(got) != len(want) {
					t.Fatalf("trial %d q%d opts %+v: indexed %d answers, naive %d\nD = %v\nindexed %v\nnaive %v",
						trial, qi, opts, len(got), len(want), d, got, want)
				}
				for i := range got {
					if !got[i].Equal(want[i]) {
						t.Fatalf("trial %d q%d opts %+v: answer %d differs: %v vs %v",
							trial, qi, opts, i, got[i], want[i])
					}
				}
			}
		}
	}
}

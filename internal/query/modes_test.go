package query

import (
	"math/rand"
	"testing"

	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

func TestSQLNullsJoin(t *testing.T) {
	// Under ConstantNulls the null values join; under SQLNulls they
	// don't (null = null is unknown in SQL).
	d := relational.NewInstance(
		relational.F("P", s("a"), n()),
		relational.F("R", n(), s("c")),
		relational.F("P", s("b"), s("k")),
		relational.F("R", s("k"), s("d")),
	)
	q := &Q{
		Name: "q",
		Head: []string{"X", "Z"},
		Disjuncts: []Conj{{
			Lits: []Literal{
				{Atom: atom("P", v("X"), v("Y"))},
				{Atom: atom("R", v("Y"), v("Z"))},
			},
		}},
	}
	constant, err := EvalWith(d, q, Options{Mode: ConstantNulls})
	if err != nil {
		t.Fatal(err)
	}
	if len(constant) != 2 { // (a,c) through the null join, (b,d) through k
		t.Errorf("constant-nulls answers = %v", constant)
	}
	sql, err := EvalWith(d, q, Options{Mode: SQLNulls})
	if err != nil {
		t.Fatal(err)
	}
	if len(sql) != 1 || !sql[0].Equal(relational.Tuple{s("b"), s("d")}) {
		t.Errorf("sql-nulls answers = %v", sql)
	}
}

func TestSQLNullsBuiltins(t *testing.T) {
	d := relational.NewInstance(
		relational.F("Emp", i(1), i(1000)),
		relational.F("Emp", i(2), n()),
	)
	q := &Q{
		Name: "q",
		Head: []string{"Id"},
		Disjuncts: []Conj{{
			Lits:     []Literal{{Atom: atom("Emp", v("Id"), v("Sal"))}},
			Builtins: []term.Builtin{{Op: term.GT, L: v("Sal"), R: term.CInt(100)}},
		}},
	}
	sql, err := EvalWith(d, q, Options{Mode: SQLNulls})
	if err != nil {
		t.Fatal(err)
	}
	if len(sql) != 1 || !sql[0].Equal(relational.Tuple{i(1)}) {
		t.Errorf("sql-nulls answers = %v (null > 100 must be discarded)", sql)
	}
}

func TestSQLNullsRetrievesNullColumns(t *testing.T) {
	// A null is still retrievable through a fresh variable.
	d := relational.NewInstance(relational.F("P", s("a"), n()))
	q := &Q{Name: "q", Head: []string{"Y"},
		Disjuncts: []Conj{{Lits: []Literal{{Atom: atom("P", s2("a"), v("Y"))}}}}}
	sql, err := EvalWith(d, q, Options{Mode: SQLNulls})
	if err != nil {
		t.Fatal(err)
	}
	if len(sql) != 1 || !sql[0][0].IsNull() {
		t.Errorf("answers = %v", sql)
	}
	// ...unless ExcludeNullAnswers is set.
	excl, err := EvalWith(d, q, Options{Mode: SQLNulls, ExcludeNullAnswers: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(excl) != 0 {
		t.Errorf("answers = %v, want none", excl)
	}
}

func s2(x string) term.T { return term.CStr(x) }

func TestSQLNullsNegation(t *testing.T) {
	d := relational.NewInstance(
		relational.F("P", s("a")),
		relational.F("P", s("b")),
		relational.F("Block", s("a")),
	)
	q := &Q{Name: "q", Head: []string{"X"},
		Disjuncts: []Conj{{
			Lits: []Literal{
				{Atom: atom("P", v("X"))},
				{Atom: atom("Block", v("X")), Neg: true},
			},
		}}}
	sql, err := EvalWith(d, q, Options{Mode: SQLNulls})
	if err != nil {
		t.Fatal(err)
	}
	if len(sql) != 1 || !sql[0].Equal(relational.Tuple{s("b")}) {
		t.Errorf("answers = %v", sql)
	}
}

func TestModesCoincideWithoutNulls(t *testing.T) {
	// The paper's requirement: |=q_N agrees with classical semantics on
	// null-free databases — so both modes must agree there.
	rng := rand.New(rand.NewSource(3))
	consts := []value.V{s("a"), s("b"), s("c")}
	pick := func() value.V { return consts[rng.Intn(len(consts))] }
	queries := []*Q{
		{Name: "q", Head: []string{"X"},
			Disjuncts: []Conj{{Lits: []Literal{
				{Atom: atom("P", v("X"), v("Y"))},
				{Atom: atom("R", v("Y"))},
			}}}},
		{Name: "q", Head: []string{"X", "Y"},
			Disjuncts: []Conj{{
				Lits:     []Literal{{Atom: atom("P", v("X"), v("Y"))}},
				Builtins: []term.Builtin{{Op: term.NEQ, L: v("X"), R: v("Y")}},
			}}},
		{Name: "q", Head: []string{"X"},
			Disjuncts: []Conj{{Lits: []Literal{
				{Atom: atom("P", v("X"), v("Y"))},
				{Atom: atom("R", v("X")), Neg: true},
			}}}},
	}
	for trial := 0; trial < 200; trial++ {
		d := relational.NewInstance()
		for k := 0; k < rng.Intn(6); k++ {
			d.Insert(relational.F("P", pick(), pick()))
		}
		for k := 0; k < rng.Intn(4); k++ {
			d.Insert(relational.F("R", pick()))
		}
		q := queries[trial%len(queries)]
		a, err := EvalWith(d, q, Options{Mode: ConstantNulls})
		if err != nil {
			t.Fatal(err)
		}
		b, err := EvalWith(d, q, Options{Mode: SQLNulls})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d: modes disagree on a null-free database: %v vs %v", trial, a, b)
		}
		for idx := range a {
			if !a[idx].Equal(b[idx]) {
				t.Fatalf("trial %d: tuple %d differs: %v vs %v", trial, idx, a[idx], b[idx])
			}
		}
	}
}

func TestEvalWithMatchesEval(t *testing.T) {
	d := db()
	q := &Q{Name: "q", Head: []string{"Id"},
		Disjuncts: []Conj{{Lits: []Literal{{Atom: atom("Student", v("Id"), v("Nm"))}}}}}
	a, err := Eval(d, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvalWith(d, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("Eval and EvalWith(zero) disagree: %v vs %v", a, b)
	}
}

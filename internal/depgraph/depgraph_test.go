package depgraph

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/term"
)

func v(name string) term.T                       { return term.V(name) }
func atom(pred string, args ...term.T) term.Atom { return term.NewAtom(pred, args...) }

// example2Set builds IC of Example 2: ic1: S(x) → Q(x), ic2: Q(x) → R(x),
// ic3: Q(x) → ∃y T(x,y).
func example2Set(t *testing.T) *constraint.Set {
	t.Helper()
	ic1 := &constraint.IC{Name: "ic1", Body: []term.Atom{atom("S", v("x"))}, Head: []term.Atom{atom("Q", v("x"))}}
	ic2 := &constraint.IC{Name: "ic2", Body: []term.Atom{atom("Q", v("x"))}, Head: []term.Atom{atom("R", v("x"))}}
	ic3 := &constraint.IC{Name: "ic3", Body: []term.Atom{atom("Q", v("x"))}, Head: []term.Atom{atom("T", v("x"), v("y"))}}
	s, err := constraint.NewSet([]*constraint.IC{ic1, ic2, ic3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildExample2(t *testing.T) {
	g := Build(example2Set(t))
	if got := g.Vertices(); !reflect.DeepEqual(got, []string{"Q", "R", "S", "T"}) {
		t.Errorf("vertices = %v", got)
	}
	wantEdges := []struct{ from, to string }{{"Q", "R"}, {"Q", "T"}, {"S", "Q"}}
	edges := g.Edges()
	if len(edges) != len(wantEdges) {
		t.Fatalf("edges = %v", edges)
	}
	for i, w := range wantEdges {
		if edges[i].From != w.from || edges[i].To != w.to {
			t.Errorf("edge %d = %v, want %s->%s", i, edges[i], w.from, w.to)
		}
	}
	if g.HasCycle() {
		t.Error("Example 2 graph has no directed cycle")
	}
}

func TestContractedExample3(t *testing.T) {
	s := example2Set(t)
	gc := Contracted(s)
	if got := gc.Vertices(); !reflect.DeepEqual(got, []string{"T", "{Q,R,S}"}) {
		t.Errorf("contracted vertices = %v", got)
	}
	if !gc.HasEdge("{Q,R,S}", "T") {
		t.Errorf("missing contracted RIC edge:\n%s", gc)
	}
	if !RICAcyclic(s) {
		t.Error("Example 2/3 set must be RIC-acyclic")
	}
}

func TestContractedExample3WithExtraUIC(t *testing.T) {
	// Adding ic4: T(x,y) → R(y) merges everything into one component, and
	// the RIC edge Q → T becomes a self-loop: not RIC-acyclic.
	s := example2Set(t)
	ic4 := &constraint.IC{Name: "ic4", Body: []term.Atom{atom("T", v("x"), v("y"))}, Head: []term.Atom{atom("R", v("y"))}}
	s2, err := constraint.NewSet(append(append([]*constraint.IC{}, s.ICs...), ic4), nil)
	if err != nil {
		t.Fatal(err)
	}
	gc := Contracted(s2)
	if got := gc.Vertices(); !reflect.DeepEqual(got, []string{"{Q,R,S,T}"}) {
		t.Errorf("contracted vertices = %v", got)
	}
	if !gc.HasEdge("{Q,R,S,T}", "{Q,R,S,T}") {
		t.Errorf("expected self-loop:\n%s", gc)
	}
	if RICAcyclic(s2) {
		t.Error("extended Example 3 set must not be RIC-acyclic")
	}
}

func TestUICOnlySetAlwaysAcyclic(t *testing.T) {
	// "As expected, a set of UICs is always RIC-acyclic" — even with
	// cyclic UIC dependencies.
	ic1 := &constraint.IC{Body: []term.Atom{atom("P", v("x"))}, Head: []term.Atom{atom("Q", v("x"))}}
	ic2 := &constraint.IC{Body: []term.Atom{atom("Q", v("x"))}, Head: []term.Atom{atom("P", v("x"))}}
	s := constraint.MustSet([]*constraint.IC{ic1, ic2}, nil)
	if !RICAcyclic(s) {
		t.Error("UIC-only set reported RIC-cyclic")
	}
	g := Build(s)
	if !g.HasCycle() {
		t.Error("G(IC) itself should be cyclic here")
	}
}

func TestCyclicRICs(t *testing.T) {
	// Example 18: P(x,y) → T(x) (UIC), T(x) → ∃y P(y,x) (RIC): the
	// contracted graph has a cycle {P,T} via the RIC edge.
	uic := &constraint.IC{Body: []term.Atom{atom("P", v("x"), v("y"))}, Head: []term.Atom{atom("T", v("x"))}}
	ric := &constraint.IC{Body: []term.Atom{atom("T", v("x"))}, Head: []term.Atom{atom("P", v("y"), v("x"))}}
	s := constraint.MustSet([]*constraint.IC{uic, ric}, nil)
	if RICAcyclic(s) {
		t.Error("Example 18 set must be RIC-cyclic")
	}
}

func TestTwoRICCycle(t *testing.T) {
	r1 := &constraint.IC{Body: []term.Atom{atom("P", v("x"))}, Head: []term.Atom{atom("Q", v("x"), v("y"))}}
	r2 := &constraint.IC{Body: []term.Atom{atom("Q", v("x"), v("y"))}, Head: []term.Atom{atom("P", v("z"))}}
	// r2's head var z is existential; x,y universal. P(z) with z fresh.
	s := constraint.MustSet([]*constraint.IC{r1, r2}, nil)
	if RICAcyclic(s) {
		t.Error("mutual RICs must be RIC-cyclic")
	}
}

func TestSelfLoopRIC(t *testing.T) {
	// P(x,y) → ∃z P(y,z): self-referential RIC is a cycle.
	r := &constraint.IC{Body: []term.Atom{atom("P", v("x"), v("y"))}, Head: []term.Atom{atom("P", v("y"), v("z"))}}
	s := constraint.MustSet([]*constraint.IC{r}, nil)
	if RICAcyclic(s) {
		t.Error("self-referential RIC must be RIC-cyclic")
	}
}

func TestGeneralExistentialTreatedAsRICEdge(t *testing.T) {
	// A general constraint with an existential must contribute contracted
	// edges: P(x),S(x) → ∃z Q(x,z) then Q(x,z) → P(x) makes a cycle.
	g1 := &constraint.IC{
		Body: []term.Atom{atom("P", v("x")), atom("S", v("x"))},
		Head: []term.Atom{atom("Q", v("x"), v("z"))},
	}
	u1 := &constraint.IC{Body: []term.Atom{atom("Q", v("x"), v("z"))}, Head: []term.Atom{atom("P", v("x"))}}
	s := constraint.MustSet([]*constraint.IC{g1, u1}, nil)
	if RICAcyclic(s) {
		t.Error("existential general constraint into a UIC component cycle must be RIC-cyclic")
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := NewGraph()
	g.AddEdge("A", "B", "e1")
	g.AddEdge("C", "B", "e2") // weakly connects C despite no directed path A<->C
	g.AddVertex("D")
	comps := g.WeaklyConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if !reflect.DeepEqual(comps[0], []string{"A", "B", "C"}) || !reflect.DeepEqual(comps[1], []string{"D"}) {
		t.Errorf("components = %v", comps)
	}
}

func TestGraphString(t *testing.T) {
	g := Build(example2Set(t))
	out := g.String()
	if !strings.Contains(out, "S -> Q [ic1]") || !strings.Contains(out, "Q -> T [ic3]") {
		t.Errorf("String output:\n%s", out)
	}
}

func TestNNCVertexOnly(t *testing.T) {
	ic := &constraint.IC{Body: []term.Atom{atom("P", v("x"))}, Head: []term.Atom{atom("Q", v("x"))}}
	s := constraint.MustSet([]*constraint.IC{ic}, []*constraint.NNC{{Pred: "Z", Arity: 1, Pos: 0}})
	g := Build(s)
	if got := g.Vertices(); !reflect.DeepEqual(got, []string{"P", "Q", "Z"}) {
		t.Errorf("vertices = %v", got)
	}
	if len(g.Edges()) != 1 {
		t.Errorf("edges = %v", g.Edges())
	}
}

func TestSCCInts(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 is one component; 3 -> 4 are singletons; 5 isolated.
	adj := [][]int{{1}, {2}, {0}, {4}, nil, nil}
	comp := SCC(adj)
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("cycle split across components: %v", comp)
	}
	if comp[3] == comp[4] || comp[3] == comp[0] || comp[5] == comp[0] {
		t.Errorf("singletons merged: %v", comp)
	}
	ids := map[int]bool{}
	for _, c := range comp {
		ids[c] = true
	}
	if len(ids) != 4 {
		t.Errorf("component count = %d, want 4 (%v)", len(ids), comp)
	}
	if len(SCC(nil)) != 0 {
		t.Error("empty graph must have no components")
	}
}

func TestUnionFind(t *testing.T) {
	u := NewUnionFind(6)
	u.Union(0, 1)
	u.Union(1, 2)
	u.Union(4, 5)
	if u.Find(0) != u.Find(2) {
		t.Error("0 and 2 must share a set after transitive unions")
	}
	if u.Find(3) == u.Find(0) || u.Find(3) == u.Find(4) {
		t.Error("3 must stay a singleton")
	}
	if u.Find(4) != u.Find(5) || u.Find(4) == u.Find(0) {
		t.Error("4/5 set broken")
	}
	u.Union(2, 5) // merge the two big sets
	if u.Find(0) != u.Find(4) {
		t.Error("sets not merged")
	}
}

func TestHasCycleSelfLoop(t *testing.T) {
	g := NewGraph()
	g.AddEdge("A", "A", "loop")
	if !g.HasCycle() {
		t.Error("self-loop not detected")
	}
	g2 := NewGraph()
	g2.AddEdge("A", "B", "x")
	g2.AddEdge("B", "C", "y")
	if g2.HasCycle() {
		t.Error("acyclic graph reported cyclic")
	}
}

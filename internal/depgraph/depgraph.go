// Package depgraph implements the dependency graphs of Definition 1 and
// Examples 2–3: the dependency graph G(IC) over database predicates, the
// contraction of the connected components of G(IC_U), and the RIC-acyclicity
// test that gates the correctness of the repair programs (Theorem 4).
package depgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/constraint"
)

// Edge is a directed edge of a dependency graph, labelled with the names of
// the constraints that induce it.
type Edge struct {
	From, To string
	Labels   []string
}

// Graph is a directed graph over predicate names.
type Graph struct {
	verts map[string]bool
	edges map[string]map[string][]string // from -> to -> labels
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{verts: map[string]bool{}, edges: map[string]map[string][]string{}}
}

// AddVertex adds a vertex.
func (g *Graph) AddVertex(v string) { g.verts[v] = true }

// AddEdge adds a labelled directed edge, creating the endpoints as needed.
func (g *Graph) AddEdge(from, to, label string) {
	g.AddVertex(from)
	g.AddVertex(to)
	if g.edges[from] == nil {
		g.edges[from] = map[string][]string{}
	}
	g.edges[from][to] = append(g.edges[from][to], label)
}

// HasEdge reports whether the edge from -> to exists.
func (g *Graph) HasEdge(from, to string) bool {
	_, ok := g.edges[from][to]
	return ok
}

// Vertices returns the sorted vertex set.
func (g *Graph) Vertices() []string {
	out := make([]string, 0, len(g.verts))
	for v := range g.verts {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Edges returns the edges sorted by (from, to).
func (g *Graph) Edges() []Edge {
	var out []Edge
	for from, tos := range g.edges {
		for to, labels := range tos {
			ls := append([]string(nil), labels...)
			sort.Strings(ls)
			out = append(out, Edge{From: from, To: to, Labels: ls})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// HasCycle reports whether the graph contains a directed cycle (self-loops
// included).
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(v string) bool
	visit = func(v string) bool {
		color[v] = gray
		for to := range g.edges[v] {
			switch color[to] {
			case gray:
				return true
			case white:
				if visit(to) {
					return true
				}
			}
		}
		color[v] = black
		return false
	}
	for v := range g.verts {
		if color[v] == white && visit(v) {
			return true
		}
	}
	return false
}

// WeaklyConnectedComponents returns the weakly connected components of the
// graph (edge direction ignored), each sorted, ordered by first element.
// This is the notion of "connected component" Definition 1 uses when
// contracting G(IC_U): in Example 3, adding T(x,y) → R(y) puts all four
// predicates in one component even though T and S have no directed path
// between them.
func (g *Graph) WeaklyConnectedComponents() [][]string {
	adj := map[string]map[string]bool{}
	link := func(a, b string) {
		if adj[a] == nil {
			adj[a] = map[string]bool{}
		}
		adj[a][b] = true
	}
	for from, tos := range g.edges {
		for to := range tos {
			link(from, to)
			link(to, from)
		}
	}
	seen := map[string]bool{}
	var comps [][]string
	for _, start := range g.Vertices() {
		if seen[start] {
			continue
		}
		var comp []string
		stack := []string{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// String renders the graph as sorted "from -> to [labels]" lines.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vertices: %s\n", strings.Join(g.Vertices(), ", "))
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "%s -> %s [%s]\n", e.From, e.To, strings.Join(e.Labels, ","))
	}
	return b.String()
}

// SCC computes the strongly connected components of a directed graph over
// dense integer vertex ids, given as an adjacency list (Tarjan's algorithm,
// iterative). It returns the component id of every vertex; ids are dense but
// carry no topological guarantee. Both the ground-program analyses — the
// head-cycle-freeness test of Section 6 and the component split of the
// stable-model engine — run on this primitive.
func SCC(adj [][]int) []int {
	n := len(adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var counter, nComp int

	type frame struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}

// UnionFind is a disjoint-set forest over dense integer ids, used to
// partition ground programs into independent components.
type UnionFind struct {
	parent []int32
	rank   []int8
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the set representative of x, with path halving.
func (u *UnionFind) Find(x int) int {
	for int(u.parent[x]) != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = int(u.parent[x])
	}
	return x
}

// Union merges the sets of a and b by rank.
func (u *UnionFind) Union(a, b int) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Build constructs the dependency graph G(IC): one vertex per database
// predicate appearing in IC, and an edge (P_i, P_j) iff some constraint has
// P_i in its antecedent and P_j in its consequent. NNCs contribute their
// predicate as a vertex but no edges (their consequent is false).
func Build(s *constraint.Set) *Graph {
	g := NewGraph()
	for _, ic := range s.ICs {
		for _, b := range ic.Body {
			g.AddVertex(b.Pred)
			for _, h := range ic.Head {
				g.AddEdge(b.Pred, h.Pred, ic.Name)
			}
		}
	}
	for _, n := range s.NNCs {
		g.AddVertex(n.Pred)
	}
	return g
}

// buildUniversal builds G(IC_U): the dependency graph of only the universal
// constraints in the set.
func buildUniversal(s *constraint.Set) *Graph {
	return Build(constraint.MustSet(s.UICs(), nil))
}

// Contracted computes the contracted dependency graph G^C(IC) of
// Definition 1: every connected component of G(IC_U) collapses to a single
// vertex, all UIC edges are deleted, and the remaining (RIC) edges are drawn
// between component vertices. Component vertices are named by their sorted
// members, e.g. "{Q,R,S}".
func Contracted(s *constraint.Set) *Graph {
	comps := buildUniversal(s).WeaklyConnectedComponents()
	compOf := map[string]string{}
	for _, comp := range comps {
		name := "{" + strings.Join(comp, ",") + "}"
		for _, v := range comp {
			compOf[v] = name
		}
	}
	vertexFor := func(p string) string {
		if c, ok := compOf[p]; ok {
			return c
		}
		return p
	}
	full := Build(s)
	out := NewGraph()
	for _, v := range full.Vertices() {
		out.AddVertex(vertexFor(v))
	}
	for _, ic := range s.RICs() {
		for _, b := range ic.Body {
			for _, h := range ic.Head {
				out.AddEdge(vertexFor(b.Pred), vertexFor(h.Pred), ic.Name)
			}
		}
	}
	// General constraints with existentials behave like RICs for cycle
	// purposes: their consequent insertions can trigger further repairs.
	for _, ic := range s.ICs {
		if ic.Classify() != constraint.ClassGeneral || len(ic.ExistVars()) == 0 {
			continue
		}
		for _, b := range ic.Body {
			for _, h := range ic.Head {
				out.AddEdge(vertexFor(b.Pred), vertexFor(h.Pred), ic.Name)
			}
		}
	}
	return out
}

// RICAcyclic reports whether the constraint set is RIC-acyclic
// (Definition 1): the contracted dependency graph has no directed cycles.
// A set of UICs only is always RIC-acyclic.
func RICAcyclic(s *constraint.Set) bool {
	return !Contracted(s).HasCycle()
}

package ground

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

func v(name string) term.T                       { return term.V(name) }
func atom(pred string, args ...term.T) term.Atom { return term.NewAtom(pred, args...) }
func ca(s string) term.T                         { return term.CStr(s) }

func mustGround(t *testing.T, p *logic.Program) *Program {
	t.Helper()
	gp, err := Ground(p)
	if err != nil {
		t.Fatal(err)
	}
	return gp
}

func TestGroundPositiveChain(t *testing.T) {
	// q(a). q(b). p(x) :- q(x). r(x) :- p(x).
	p := &logic.Program{
		Facts: []term.Atom{atom("q", ca("a")), atom("q", ca("b"))},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("p", v("x"))}, Pos: []term.Atom{atom("q", v("x"))}},
			{Head: []term.Atom{atom("r", v("x"))}, Pos: []term.Atom{atom("p", v("x"))}},
		},
	}
	gp := mustGround(t, p)
	// Facts q(a), q(b); possible p(a),p(b),r(a),r(b).
	if len(gp.Facts) != 2 {
		t.Errorf("facts = %d", len(gp.Facts))
	}
	// Rule instances: p(a):-, p(b):- (q facts dropped), r(a):-p(a), etc.
	if len(gp.Rules) != 4 {
		t.Errorf("rules = %d:\n%s", len(gp.Rules), gp)
	}
	for _, r := range gp.Rules {
		if len(r.Neg) != 0 {
			t.Errorf("unexpected negation: %v", r)
		}
	}
}

func TestGroundDropsUnderivableNegation(t *testing.T) {
	// p(x) :- q(x), not r(x). with no way to derive r: negation dropped.
	p := &logic.Program{
		Facts: []term.Atom{atom("q", ca("a"))},
		Rules: []logic.Rule{
			{
				Head: []term.Atom{atom("p", v("x"))},
				Pos:  []term.Atom{atom("q", v("x"))},
				Neg:  []term.Atom{atom("r", v("x"))},
			},
		},
	}
	gp := mustGround(t, p)
	if len(gp.Rules) != 1 || len(gp.Rules[0].Neg) != 0 || len(gp.Rules[0].Pos) != 0 {
		t.Errorf("rules:\n%s", gp)
	}
}

func TestGroundKeepsDerivableNegation(t *testing.T) {
	// r is derivable, so the negation must stay.
	p := &logic.Program{
		Facts: []term.Atom{atom("q", ca("a")), atom("s", ca("a"))},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("r", v("x"))}, Pos: []term.Atom{atom("s", v("x"))}},
			{
				Head: []term.Atom{atom("p", v("x"))},
				Pos:  []term.Atom{atom("q", v("x"))},
				Neg:  []term.Atom{atom("r", v("x"))},
			},
		},
	}
	gp := mustGround(t, p)
	var found bool
	for _, r := range gp.Rules {
		if len(r.Neg) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("negation lost:\n%s", gp)
	}
}

func TestGroundNegatedFactKillsRule(t *testing.T) {
	// p(x) :- q(x), not q(x) ... via a fact: not q(a) is false.
	p := &logic.Program{
		Facts: []term.Atom{atom("q", ca("a"))},
		Rules: []logic.Rule{
			{
				Head: []term.Atom{atom("p", v("x"))},
				Pos:  []term.Atom{atom("q", v("x"))},
				Neg:  []term.Atom{atom("q", v("x"))},
			},
		},
	}
	gp := mustGround(t, p)
	if len(gp.Rules) != 0 {
		t.Errorf("rule with negated fact must vanish:\n%s", gp)
	}
}

func TestGroundBuiltins(t *testing.T) {
	// p(x,y) :- q(x), q(y), x != y.
	p := &logic.Program{
		Facts: []term.Atom{atom("q", ca("a")), atom("q", ca("b"))},
		Rules: []logic.Rule{
			{
				Head:     []term.Atom{atom("p", v("x"), v("y"))},
				Pos:      []term.Atom{atom("q", v("x")), atom("q", v("y"))},
				Builtins: []term.Builtin{{Op: term.NEQ, L: v("x"), R: v("y")}},
			},
		},
	}
	gp := mustGround(t, p)
	if len(gp.Rules) != 2 {
		t.Errorf("want 2 instances (a,b) and (b,a):\n%s", gp)
	}
}

func TestGroundNullIsOrdinaryConstant(t *testing.T) {
	// Rules must join on null like any constant, and x != null must
	// filter it (Definition 9's guards).
	p := &logic.Program{
		Facts: []term.Atom{
			atom("q", term.CNull()),
			atom("q", ca("a")),
		},
		Rules: []logic.Rule{
			{
				Head:     []term.Atom{atom("p", v("x"))},
				Pos:      []term.Atom{atom("q", v("x"))},
				Builtins: []term.Builtin{{Op: term.NEQ, L: v("x"), R: term.CNull()}},
			},
			{
				Head: []term.Atom{atom("r", v("x"))},
				Pos:  []term.Atom{atom("q", v("x"))},
			},
		},
	}
	gp := mustGround(t, p)
	out := gp.String()
	if strings.Contains(out, "p(null)") {
		t.Errorf("x != null not applied:\n%s", out)
	}
	if !strings.Contains(out, "r(null)") {
		t.Errorf("null lost as a constant:\n%s", out)
	}
}

func TestGroundDisjunctiveHead(t *testing.T) {
	p := &logic.Program{
		Facts: []term.Atom{atom("q", ca("a"))},
		Rules: []logic.Rule{
			{
				Head: []term.Atom{atom("p", v("x")), atom("r", v("x"))},
				Pos:  []term.Atom{atom("q", v("x"))},
			},
			{
				Head: []term.Atom{atom("s", v("x"))},
				Pos:  []term.Atom{atom("r", v("x"))},
			},
		},
	}
	gp := mustGround(t, p)
	// possible must include both disjuncts: s(a) reachable through r(a).
	if _, ok := gp.AtomID(relational.F("s", value.Str("a"))); !ok {
		t.Errorf("s(a) not reachable through disjunctive head:\n%s", gp)
	}
}

func TestGroundConstraintRule(t *testing.T) {
	p := &logic.Program{
		Facts: []term.Atom{atom("p", ca("a")), atom("q", ca("a"))},
		Rules: []logic.Rule{
			{Pos: []term.Atom{atom("p", v("x")), atom("q", v("x"))}},
		},
	}
	gp := mustGround(t, p)
	// Both body atoms are facts: the ground constraint has empty head
	// and empty body — an unconditional contradiction.
	if len(gp.Rules) != 1 || len(gp.Rules[0].Head) != 0 || len(gp.Rules[0].Pos) != 0 {
		t.Errorf("rules:\n%s", gp)
	}
}

func TestGroundHeadFactSimplification(t *testing.T) {
	// A rule whose head instance is already a fact disappears.
	p := &logic.Program{
		Facts: []term.Atom{atom("p", ca("a")), atom("q", ca("a"))},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("p", v("x"))}, Pos: []term.Atom{atom("q", v("x"))}},
		},
	}
	gp := mustGround(t, p)
	if len(gp.Rules) != 0 {
		t.Errorf("satisfied rule kept:\n%s", gp)
	}
}

func TestGroundUnsafeRejected(t *testing.T) {
	p := &logic.Program{
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("p", v("x"))}},
		},
	}
	if _, err := Ground(p); err == nil {
		t.Error("unsafe program accepted")
	}
}

func TestGroundDeduplicatesRules(t *testing.T) {
	// Two source rules that instantiate identically collapse.
	p := &logic.Program{
		Facts: []term.Atom{atom("q", ca("a"))},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("p", ca("a"))}, Pos: []term.Atom{atom("q", v("x"))}},
			{Head: []term.Atom{atom("p", v("x"))}, Pos: []term.Atom{atom("q", v("x"))}},
		},
	}
	gp := mustGround(t, p)
	if len(gp.Rules) != 1 {
		t.Errorf("rules = %d:\n%s", len(gp.Rules), gp)
	}
}

func TestRecursiveGrounding(t *testing.T) {
	// Transitive closure: reach(x,y) :- edge(x,y).
	// reach(x,z) :- reach(x,y), edge(y,z).
	p := &logic.Program{
		Facts: []term.Atom{
			atom("edge", ca("a"), ca("b")),
			atom("edge", ca("b"), ca("c")),
			atom("edge", ca("c"), ca("d")),
		},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("reach", v("x"), v("y"))}, Pos: []term.Atom{atom("edge", v("x"), v("y"))}},
			{
				Head: []term.Atom{atom("reach", v("x"), v("z"))},
				Pos:  []term.Atom{atom("reach", v("x"), v("y")), atom("edge", v("y"), v("z"))},
			},
		},
	}
	gp := mustGround(t, p)
	for _, want := range []relational.Fact{
		relational.F("reach", value.Str("a"), value.Str("d")),
		relational.F("reach", value.Str("b"), value.Str("d")),
	} {
		if _, ok := gp.AtomID(want); !ok {
			t.Errorf("missing possible atom %v:\n%s", want, gp)
		}
	}
}

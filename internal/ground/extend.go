package ground

import (
	"errors"
	"fmt"

	"repro/internal/logic"
	"repro/internal/relational"
	"repro/internal/term"
)

// ErrNoSnapshot is returned by Extend on a program that does not carry a
// grounding snapshot (hand-built or head-cycle-shifted programs).
var ErrNoSnapshot = errors.New("ground: program carries no grounding snapshot")

// ErrExtendConflict is returned by Extend when an extension rule's head
// could change how the already-grounded base rules would instantiate, so
// the extension cannot share the base grounding.
var ErrExtendConflict = errors.New("ground: extension head collides with a base relation")

// Extend grounds additional rules against the program's retained grounding
// snapshot and returns a new program containing the base and the extension,
// without re-grounding the base: the possible set, atom table, emitted
// rules, and dedup state are shared copy-on-write. The extension rules'
// heads must derive only fresh relations — predicates with no possible atom
// in the base and no occurrence in a base rule body (query-answer
// predicates, by construction) — otherwise Extend reports
// ErrExtendConflict and the caller must fall back to a monolithic Ground.
// Extension rules may chain (one extension rule's head feeding another's
// body) and may be constraints.
//
// The returned program is byte-identical (Program.String, atom ids, rule
// order) to grounding the base program with the extension rules appended.
// The receiver is not modified, and a base program may be extended
// concurrently from multiple goroutines; extensions themselves are
// extendable in turn.
func (p *Program) Extend(rules []logic.Rule) (*Program, error) {
	st := p.ext
	if st == nil {
		return nil, ErrNoSnapshot
	}
	for i, r := range rules {
		if !r.Safe() {
			return nil, fmt.Errorf("ground: extension rule %d is unsafe: %s", i+1, r)
		}
		for _, h := range r.Head {
			rk := relational.RelKey{Pred: h.Pred, Arity: h.Arity()}
			if st.guardRels[rk] {
				return nil, fmt.Errorf("%w: %s/%d", ErrExtendConflict, h.Pred, h.Arity())
			}
		}
	}

	// Mini-fixpoint over the extension rules only: the first pass joins
	// each rule fully against the base possible set (every base atom is
	// "new" from the extension's point of view); later rounds are
	// semi-naive over the extension-derived delta, which covers extension
	// rules feeding each other.
	eg := &grounder{
		fix:   st.canon.Clone(),
		poss:  st.poss.extend(),
		facts: st.facts,
	}
	subst := term.Subst{}
	var scratch relational.Tuple
	var delta []relational.Fact
	for _, r := range rules {
		if len(r.Head) == 0 {
			continue
		}
		pl := buildPlan(eg.fix, r.Pos, r.Builtins, term.Atom{})
		if !evalBuiltins(pl.pre, subst) {
			continue
		}
		runPlan(eg.fix, pl.steps, subst, func() bool {
			for _, h := range r.Head {
				scratch = groundAtomInto(scratch, h, subst)
				if eg.insertPossible(relational.Fact{Pred: h.Pred, Args: scratch}) {
					delta = append(delta, eg.poss.facts[len(eg.poss.facts)-1])
				}
			}
			return true
		})
	}
	eg.semiNaiveRounds(rules, delta)

	// Canonicalize the extension-derived atoms over the frozen base: the
	// derived relations are fresh (guarded above), so inserting the sorted
	// derived atoms into a base overlay yields the same per-relation scan
	// order a monolithic canonicalization would.
	derived := relational.SortFacts(append([]relational.Fact(nil), eg.poss.facts...))
	canon := st.canon.Clone()
	for _, f := range derived {
		canon.Insert(f)
	}
	// A large extension may have flattened the overlay back into an owner
	// engine; re-freeze so emission workers can clone views race-free.
	canon.Freeze()

	child := &extState{
		canon:     canon,
		poss:      eg.poss,
		facts:     st.facts,
		in:        st.in.extend(),
		rs:        st.rs.extend(),
		guardRels: guardRels(st.guardRels, rules, canon),
		workers:   st.workers,
	}
	ep := &Program{Facts: p.Facts[:len(p.Facts):len(p.Facts)]}
	emit(child, rules)
	finish(ep, child, p.Names, p.Rules)
	return ep, nil
}

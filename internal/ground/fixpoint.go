package ground

import (
	"repro/internal/logic"
	"repro/internal/relational"
	"repro/internal/term"
)

// Ground instantiates the program. It returns an error for unsafe rules.
// The returned Program retains its grounding snapshot, so further rules can
// be grounded against it with Extend without re-grounding the base.
func Ground(p *logic.Program) (*Program, error) {
	return GroundWith(p, Options{})
}

// GroundBase grounds the shared base of a multi-query session — typically
// the repair program Π(D, IC) — once, so per-query rules can be added with
// Extend. It is GroundWith under a name that states the intent.
func GroundBase(p *logic.Program, opts Options) (*Program, error) {
	return GroundWith(p, opts)
}

// GroundWith instantiates the program with explicit options. The emitted
// program is identical for every option setting; options only change how it
// is computed.
func GroundWith(p *logic.Program, opts Options) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &grounder{
		opts:  opts,
		fix:   relational.NewInstance(),
		poss:  newFactSet(),
		facts: newFactSet(),
	}

	// Seed: program facts are unconditionally true and possible.
	var seedFacts []relational.Fact
	for _, a := range p.Facts {
		f := groundFact(a)
		if g.facts.add(f) {
			seedFacts = append(seedFacts, f)
		}
		g.insertPossible(f)
	}

	if opts.Naive {
		g.fixpointNaive(p.Rules)
	} else {
		g.fixpointSemiNaive(p.Rules)
	}

	// Canonicalize: rebuild the possible set in sorted fact order, so rule
	// instantiation — whose enumeration order follows store scan order —
	// becomes a pure function of the possible set, independent of the
	// fixpoint schedule that derived it.
	canon := relational.NewInstance()
	for _, f := range g.fix.Facts() {
		canon.Insert(f)
	}
	canon.Freeze()
	g.fix = nil

	st := &extState{
		canon:     canon,
		poss:      g.poss,
		facts:     g.facts,
		in:        newInterner(),
		rs:        newRuleSet(),
		guardRels: guardRels(nil, p.Rules, canon),
		workers:   opts.Workers,
	}
	gp := &Program{}
	for _, f := range seedFacts {
		gp.Facts = append(gp.Facts, st.in.intern(f))
	}
	emit(st, p.Rules)
	finish(gp, st, nil, nil)
	return gp, nil
}

// guardRels collects the relations an extension's rule heads must avoid:
// every relation with a possible atom and every relation referenced by a
// rule body. Deriving new atoms into any of them could change how the
// already-emitted rules would have grounded. base is the inherited guard
// set of a parent extension (nil for a fresh grounding); it is not mutated.
func guardRels(base map[relational.RelKey]bool, rules []logic.Rule, canon *relational.Instance) map[relational.RelKey]bool {
	g := make(map[relational.RelKey]bool, len(base)+len(rules))
	for rk := range base {
		g[rk] = true
	}
	for _, r := range rules {
		for _, a := range r.Pos {
			g[relational.RelKey{Pred: a.Pred, Arity: a.Arity()}] = true
		}
		for _, a := range r.Neg {
			g[relational.RelKey{Pred: a.Pred, Arity: a.Arity()}] = true
		}
	}
	for _, rk := range canon.RelKeys() {
		g[rk] = true
	}
	return g
}

// finish assembles the program from the grounding state. For an extension,
// baseNames and baseRules are the parent program's slices, shared as
// capacity-capped prefixes so appends never clobber the parent; the level's
// ruleSet holds only the rules emitted at this level.
func finish(gp *Program, st *extState, baseNames []string, baseRules []Rule) {
	gp.Rules = append(baseRules[:len(baseRules):len(baseRules)], st.rs.rules...)
	gp.Atoms = st.in.atoms
	gp.Names = baseNames[:len(baseNames):len(baseNames)]
	for _, f := range gp.Atoms[len(baseNames):] {
		gp.Names = append(gp.Names, f.String())
	}
	gp.idx = st.in
	gp.ext = st
}

// grounder carries the fixpoint state: fix is the growing possible-set
// instance (joined through per-relation stores and bound-column indexes),
// poss mirrors it for alloc-free membership, facts holds the
// unconditionally true atoms.
type grounder struct {
	opts  Options
	fix   *relational.Instance
	poss  *factSet
	facts *factSet
}

// insertPossible adds a possible atom, reporting whether it was new. f may
// alias scratch storage; it is cloned before being retained.
func (g *grounder) insertPossible(f relational.Fact) bool {
	h := f.Hash()
	if g.poss.hasHash(f, h) {
		return false
	}
	owned := relational.Fact{Pred: f.Pred, Args: f.Args.Clone()}
	g.poss.buckets[h] = append(g.poss.buckets[h], int32(len(g.poss.facts)))
	g.poss.facts = append(g.poss.facts, owned)
	g.fix.Insert(owned)
	return true
}

// fixpointSemiNaive computes the possible set bottom-up, instantiating each
// rule only through substitutions anchored on an atom derived in the
// previous round. Every positive literal takes a turn as the delta anchor,
// so a substitution whose newest body atom was derived in round k is found
// in round k+1 (at the latest) when that atom's literal anchors. Headless
// rules (constraints) derive nothing and are skipped.
func (g *grounder) fixpointSemiNaive(rules []logic.Rule) {
	subst := term.Subst{}
	var scratch relational.Tuple
	var delta []relational.Fact

	// Round 0: the seeded facts, plus heads of rules with no positive
	// body (their builtins, if any, are ground and decide applicability
	// once).
	delta = append(delta, g.poss.facts...)
	for _, r := range rules {
		if len(r.Head) == 0 || len(r.Pos) > 0 {
			continue
		}
		if !evalBuiltins(r.Builtins, subst) {
			continue
		}
		for _, h := range r.Head {
			scratch = groundAtomInto(scratch, h, subst)
			f := relational.Fact{Pred: h.Pred, Args: scratch}
			if g.insertPossible(f) {
				delta = append(delta, g.poss.facts[len(g.poss.facts)-1])
			}
		}
	}

	g.semiNaiveRounds(rules, delta)
}

// semiNaiveRounds drives the delta rounds to fixpoint: each round joins
// every rule through substitutions anchored on an atom of the previous
// round's delta, each positive literal taking a turn as the anchor, and the
// newly derived atoms form the next round's delta. Atoms derived within a
// round are visible to the rest of the round (the possible-set instance
// grows in place); they anchor joins themselves one round later.
func (g *grounder) semiNaiveRounds(rules []logic.Rule, delta []relational.Fact) {
	subst := term.Subst{}
	var scratch relational.Tuple
	var restbuf [8]term.Atom
	for len(delta) > 0 {
		byRel := make(map[relational.RelKey][]relational.Fact)
		for _, f := range delta {
			rk := relational.RelKey{Pred: f.Pred, Arity: len(f.Args)}
			byRel[rk] = append(byRel[rk], f)
		}
		var next []relational.Fact
		for _, r := range rules {
			if len(r.Head) == 0 || len(r.Pos) == 0 {
				continue
			}
			for ai := range r.Pos {
				anchor := r.Pos[ai]
				group := byRel[relational.RelKey{Pred: anchor.Pred, Arity: anchor.Arity()}]
				if len(group) == 0 {
					continue
				}
				// The plan is consumed before the next anchor reuses the
				// buffer.
				rest := append(restbuf[:0], r.Pos[:ai]...)
				rest = append(rest, r.Pos[ai+1:]...)
				pl := buildPlan(g.fix, rest, r.Builtins, anchor)
				for _, f := range group {
					bound, ok := match(f.Args, anchor, subst)
					if !ok {
						continue
					}
					if evalBuiltins(pl.pre, subst) {
						runPlan(g.fix, pl.steps, subst, func() bool {
							for _, h := range r.Head {
								scratch = groundAtomInto(scratch, h, subst)
								if g.insertPossible(relational.Fact{Pred: h.Pred, Args: scratch}) {
									next = append(next, g.poss.facts[len(g.poss.facts)-1])
								}
							}
							return true
						})
					}
					unbind(subst, bound)
				}
			}
		}
		delta = next
	}
}

// fixpointNaive is the round-robin ablation: every rule re-joined over the
// whole possible set each round, builtins evaluated at the join leaf, no
// literal reordering — the pre-semi-naive algorithm, kept as a
// differential-testing reference.
func (g *grounder) fixpointNaive(rules []logic.Rule) {
	var scratch relational.Tuple
	for changed := true; changed; {
		changed = false
		for _, r := range rules {
			if len(r.Head) == 0 {
				continue
			}
			joinLeafBuiltins(g.fix, r, func(subst term.Subst) {
				for _, h := range r.Head {
					scratch = groundAtomInto(scratch, h, subst)
					if g.insertPossible(relational.Fact{Pred: h.Pred, Args: scratch}) {
						changed = true
					}
				}
			})
		}
	}
}

// joinLeafBuiltins enumerates substitutions satisfying the positive body in
// literal order, checking builtins only once the join is complete.
func joinLeafBuiltins(inst *relational.Instance, r logic.Rule, yield func(term.Subst)) {
	subst := term.Subst{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(r.Pos) {
			if evalBuiltins(r.Builtins, subst) {
				yield(subst)
			}
			return
		}
		a := r.Pos[i]
		inst.Scan(a.Pred, a.Arity(), relational.AtomBindings(a, subst), func(t relational.Tuple) bool {
			if bound, ok := match(t, a, subst); ok {
				rec(i + 1)
				unbind(subst, bound)
			}
			return true
		})
	}
	rec(0)
}

// plan is a compiled join order for the positive literals of one rule: the
// atoms reordered by bound-column selectivity, with each builtin attached
// to the earliest step after which its variables are bound. pre holds the
// builtins decidable before any step (ground, or bound by the anchor).
type plan struct {
	pre   []term.Builtin
	steps []planStep
}

type planStep struct {
	atom     term.Atom
	builtins []term.Builtin
}

// indexOf is a linear lookup in a small variable list — rule bodies bind a
// handful of variables, so slices beat maps on the plan-building hot path.
func indexOf(vs []string, v string) int {
	for i, x := range vs {
		if x == v {
			return i
		}
	}
	return -1
}

// buildPlan compiles the join. anchor, if non-zero, is a literal already
// matched by the caller; its variables count as bound.
func buildPlan(inst *relational.Instance, pos []term.Atom, builtins []term.Builtin, anchor term.Atom) plan {
	var prebuf [8]string
	pre := prebuf[:0]
	for _, t := range anchor.Args {
		if t.IsVar() && indexOf(pre, t.Var) < 0 {
			pre = append(pre, t.Var)
		}
	}
	ordered := orderBySelectivity(inst, pos, pre)
	pl := plan{steps: make([]planStep, len(ordered))}
	if len(builtins) == 0 {
		for i := range ordered {
			pl.steps[i].atom = ordered[i]
		}
		return pl
	}
	// boundVar/boundIdx map each variable to the step index after which it
	// is bound; anchor variables map to -1.
	var varbuf [8]string
	var idxbuf [8]int
	boundVar, boundIdx := varbuf[:0], idxbuf[:0]
	for _, v := range pre {
		boundVar = append(boundVar, v)
		boundIdx = append(boundIdx, -1)
	}
	for i := range ordered {
		pl.steps[i].atom = ordered[i]
		for _, t := range ordered[i].Args {
			if t.IsVar() && indexOf(boundVar, t.Var) < 0 {
				boundVar = append(boundVar, t.Var)
				boundIdx = append(boundIdx, i)
			}
		}
	}
	var vars []string
	for _, b := range builtins {
		at := -1
		vars = b.Vars(vars[:0])
		for _, v := range vars {
			if j := indexOf(boundVar, v); j >= 0 && boundIdx[j] > at {
				at = boundIdx[j]
			}
		}
		if at < 0 {
			pl.pre = append(pl.pre, b)
		} else {
			pl.steps[at].builtins = append(pl.steps[at].builtins, b)
		}
	}
	return pl
}

// orderBySelectivity reorders join atoms greedily: at each step it picks
// the remaining atom with the most columns bound by the atoms already
// placed (constants and pre-bound variables count), breaking ties toward
// the smaller relation and then toward the original order — the same
// heuristic as the query evaluator's join planner. The enumerated
// substitution set is order-independent; only the cost changes. pre is not
// mutated.
func orderBySelectivity(inst *relational.Instance, atoms []term.Atom, pre []string) []term.Atom {
	if len(atoms) < 2 {
		return atoms
	}
	var atombuf [8]term.Atom
	var boundbuf [16]string
	remaining := append(atombuf[:0], atoms...)
	bound := append(boundbuf[:0], pre...)
	out := make([]term.Atom, 0, len(atoms))
	for len(remaining) > 0 {
		best, bestBound, bestSize := -1, -1, 0
		for i, a := range remaining {
			nb := 0
			for _, t := range a.Args {
				if !t.IsVar() || indexOf(bound, t.Var) >= 0 {
					nb++
				}
			}
			size := inst.RelationSize(a.Pred, a.Arity())
			if best == -1 || nb > bestBound || (nb == bestBound && size < bestSize) {
				best, bestBound, bestSize = i, nb, size
			}
		}
		a := remaining[best]
		out = append(out, a)
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, t := range a.Args {
			if t.IsVar() && indexOf(bound, t.Var) < 0 {
				bound = append(bound, t.Var)
			}
		}
	}
	return out
}

// runPlan enumerates the substitutions of the planned join, extending subst
// in place and evaluating each step's builtins as soon as the step binds.
// yield returns false to stop; runPlan reports whether the enumeration
// completed.
func runPlan(inst *relational.Instance, steps []planStep, subst term.Subst, yield func() bool) bool {
	if len(steps) == 0 {
		return yield()
	}
	st := &steps[0]
	a := st.atom
	cont := true
	inst.Scan(a.Pred, a.Arity(), relational.AtomBindings(a, subst), func(t relational.Tuple) bool {
		bound, ok := match(t, a, subst)
		if !ok {
			return true
		}
		if evalBuiltins(st.builtins, subst) {
			cont = runPlan(inst, steps[1:], subst, yield)
		}
		unbind(subst, bound)
		return cont
	})
	return cont
}

func evalBuiltins(bs []term.Builtin, subst term.Subst) bool {
	for _, b := range bs {
		res, ok := b.Eval(subst)
		if !ok || !res {
			return false
		}
	}
	return true
}

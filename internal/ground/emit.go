package ground

import (
	"sync"
	"sync/atomic"

	"repro/internal/logic"
	"repro/internal/relational"
	"repro/internal/term"
)

// extState is the grounding snapshot a Program retains so Extend can ground
// further rules against it: the canonical (sorted, frozen) possible-set
// instance, the possible/fact membership sets, the atom interner and rule
// dedup state, and the relations extension heads must avoid. All of it is
// frozen once the program is built; extensions layer child sets on top.
type extState struct {
	canon     *relational.Instance
	poss      *factSet
	facts     *factSet
	in        *interner
	rs        *ruleSet
	guardRels map[relational.RelKey]bool
	workers   int
}

// pendingRule is one simplified rule instance before interning: the
// surviving literals as facts, each part duplicate-free and in source
// literal order. Workers produce pendingRules; the sequential merge assigns
// atom ids.
type pendingRule struct {
	head, pos, neg []relational.Fact
}

// emit instantiates rules over the canonical possible set and merges the
// survivors into st.rs (dedup) and st.in (atom ids). With workers > 1 the
// per-rule instantiation fans out over a pool; the merge happens
// sequentially in source-rule order either way, so the emitted program is
// byte-identical at every worker count. st.canon must be frozen; each
// worker reads through its own O(|Δ|) view of it, since a single Instance
// view is not safe for concurrent use.
func emit(st *extState, rules []logic.Rule) {
	workers := st.workers
	if workers > len(rules) {
		workers = len(rules)
	}
	if workers > 1 {
		pend := make([][]pendingRule, len(rules))
		var next int32
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ew := &emitWorker{st: st, canon: st.canon.Clone(), subst: term.Subst{}}
				for {
					i := int(atomic.AddInt32(&next, 1)) - 1
					if i >= len(rules) {
						return
					}
					pend[i] = ew.emitRule(rules[i])
				}
			}()
		}
		wg.Wait()
		for _, ps := range pend {
			for _, pr := range ps {
				merge(st, pr)
			}
		}
		return
	}
	ew := &emitWorker{st: st, canon: st.canon, subst: term.Subst{}}
	for _, r := range rules {
		for _, pr := range ew.emitRule(r) {
			merge(st, pr)
		}
	}
}

// emitWorker holds one instantiation goroutine's scratch state and private
// view of the canonical possible set.
type emitWorker struct {
	st      *extState
	canon   *relational.Instance
	subst   term.Subst
	scratch relational.Tuple
}

// emitRule enumerates the rule's substitutions over the canonical possible
// set and simplifies each instance, returning the survivors in enumeration
// order.
func (w *emitWorker) emitRule(r logic.Rule) []pendingRule {
	var out []pendingRule
	pl := buildPlan(w.canon, r.Pos, r.Builtins, term.Atom{})
	if !evalBuiltins(pl.pre, w.subst) {
		return nil
	}
	runPlan(w.canon, pl.steps, w.subst, func() bool {
		if pr, keep := w.simplify(r); keep {
			out = append(out, pr)
		}
		return true
	})
	return out
}

// simplify builds one ground rule instance under the worker's current
// substitution, simplifying it against the possible and fact sets: a head
// that is a fact satisfies the rule (drop it); a positive literal that is a
// fact is always true (omit it) and one that is not possible can never hold
// (drop the rule); a negated fact is false (drop the rule) and a negated
// non-possible atom is true (omit it).
func (w *emitWorker) simplify(r logic.Rule) (pendingRule, bool) {
	var pr pendingRule
	for _, h := range r.Head {
		w.scratch = groundAtomInto(w.scratch, h, w.subst)
		f := relational.Fact{Pred: h.Pred, Args: w.scratch}
		if w.st.facts.has(f) {
			return pendingRule{}, false
		}
		pr.head = appendUniqFact(pr.head, f)
	}
	for _, a := range r.Pos {
		w.scratch = groundAtomInto(w.scratch, a, w.subst)
		f := relational.Fact{Pred: a.Pred, Args: w.scratch}
		if w.st.facts.has(f) {
			continue
		}
		if !w.st.poss.has(f) {
			return pendingRule{}, false
		}
		pr.pos = appendUniqFact(pr.pos, f)
	}
	for _, a := range r.Neg {
		w.scratch = groundAtomInto(w.scratch, a, w.subst)
		f := relational.Fact{Pred: a.Pred, Args: w.scratch}
		if w.st.facts.has(f) {
			return pendingRule{}, false
		}
		if !w.st.poss.has(f) {
			continue
		}
		pr.neg = appendUniqFact(pr.neg, f)
	}
	return pr, true
}

// appendUniqFact appends f unless an equal fact is present, cloning its
// tuple out of the caller's scratch storage on insert.
func appendUniqFact(xs []relational.Fact, f relational.Fact) []relational.Fact {
	for _, g := range xs {
		if g.Equal(f) {
			return xs
		}
	}
	return append(xs, relational.Fact{Pred: f.Pred, Args: f.Args.Clone()})
}

// merge interns one pending rule's atoms and adds it to the rule set unless
// an equal rule was already emitted.
func merge(st *extState, pr pendingRule) {
	var r Rule
	for _, f := range pr.head {
		r.Head = append(r.Head, st.in.intern(f))
	}
	for _, f := range pr.pos {
		r.Pos = append(r.Pos, st.in.intern(f))
	}
	for _, f := range pr.neg {
		r.Neg = append(r.Neg, st.in.intern(f))
	}
	st.rs.add(r)
}

package ground

// Differential tests pinning the grounding rewrite's determinism contract:
// the emitted program is a pure function of the input program — byte-
// identical across the naive and semi-naive fixpoints, every worker count,
// and the GroundBase+Extend split vs a monolithic grounding — checked over
// randomized programs with recursion, disjunction, negation, constraints,
// and builtins.

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

// progGen generates random safe programs over a small fixed schema: base
// relations e/2, f/1, g/2, h/1 (facts) and derived relations p/1, q/2, r/1
// (rule heads), sharing a four-constant domain so joins actually join.
type progGen struct {
	rng *rand.Rand
}

type predSig struct {
	name  string
	arity int
}

var (
	genBase    = []predSig{{"e", 2}, {"f", 1}, {"g", 2}, {"h", 1}}
	genDerived = []predSig{{"p", 1}, {"q", 2}, {"r", 1}}
	genConsts  = []term.T{term.CStr("a"), term.CStr("b"), term.CStr("c"), term.CNull()}
	genVars    = []string{"x", "y", "z", "w"}
)

func (g *progGen) constant() term.T { return genConsts[g.rng.Intn(len(genConsts))] }

// bodyAtom builds an atom over sig mixing fresh variables and constants.
func (g *progGen) bodyAtom(sig predSig) term.Atom {
	args := make([]term.T, sig.arity)
	for i := range args {
		if g.rng.Intn(100) < 70 {
			args[i] = term.V(genVars[g.rng.Intn(len(genVars))])
		} else {
			args[i] = g.constant()
		}
	}
	return term.Atom{Pred: sig.name, Args: args}
}

// headAtom builds an atom whose variables all come from bound (safety).
func (g *progGen) headAtom(sig predSig, bound []string) term.Atom {
	args := make([]term.T, sig.arity)
	for i := range args {
		if len(bound) > 0 && g.rng.Intn(100) < 70 {
			args[i] = term.V(bound[g.rng.Intn(len(bound))])
		} else {
			args[i] = g.constant()
		}
	}
	return term.Atom{Pred: sig.name, Args: args}
}

func (g *progGen) rule(preds []predSig) logic.Rule {
	var r logic.Rule
	npos := 1 + g.rng.Intn(3)
	for i := 0; i < npos; i++ {
		r.Pos = append(r.Pos, g.bodyAtom(preds[g.rng.Intn(len(preds))]))
	}
	var bound []string
	seen := map[string]bool{}
	for _, a := range r.Pos {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t.Var] {
				seen[t.Var] = true
				bound = append(bound, t.Var)
			}
		}
	}
	if g.rng.Intn(100) < 85 { // 15% headless constraints
		nhead := 1 + g.rng.Intn(2)
		for i := 0; i < nhead; i++ {
			r.Head = append(r.Head, g.headAtom(genDerived[g.rng.Intn(len(genDerived))], bound))
		}
	}
	if g.rng.Intn(100) < 40 {
		r.Neg = append(r.Neg, g.headAtom(preds[g.rng.Intn(len(preds))], bound))
	}
	if len(bound) > 0 && g.rng.Intn(100) < 50 {
		l := term.V(bound[g.rng.Intn(len(bound))])
		var rhs term.T
		if len(bound) > 1 && g.rng.Intn(2) == 0 {
			rhs = term.V(bound[g.rng.Intn(len(bound))])
		} else {
			rhs = g.constant()
		}
		r.Builtins = append(r.Builtins, term.Builtin{Op: term.NEQ, L: l, R: rhs})
	}
	return r
}

func (g *progGen) program() *logic.Program {
	p := &logic.Program{}
	nfacts := 4 + g.rng.Intn(10)
	for i := 0; i < nfacts; i++ {
		sig := genBase[g.rng.Intn(len(genBase))]
		args := make([]term.T, sig.arity)
		for j := range args {
			args[j] = g.constant()
		}
		p.Facts = append(p.Facts, term.Atom{Pred: sig.name, Args: args})
	}
	all := append(append([]predSig(nil), genBase...), genDerived...)
	nrules := 2 + g.rng.Intn(6)
	for i := 0; i < nrules; i++ {
		p.Rules = append(p.Rules, g.rule(all))
	}
	return p
}

// extRules generates extension rules in the shape of query rules: heads over
// fresh ans*/k relations, bodies over the base schema and earlier ans
// relations (chaining), with optional negation, builtins and constraints.
func (g *progGen) extRules() []logic.Rule {
	ansSigs := []predSig{{"ans1", 1}, {"ans2", 2}}
	bodyPreds := append(append([]predSig(nil), genBase...), genDerived...)
	var rules []logic.Rule
	for i, sig := range ansSigs {
		nr := 1 + g.rng.Intn(2)
		for j := 0; j < nr; j++ {
			r := g.rule(bodyPreds)
			r.Head = []term.Atom{g.headAtom(sig, posVars(r))}
			rules = append(rules, r)
		}
		bodyPreds = append(bodyPreds, ansSigs[i]) // later rules may chain
	}
	if g.rng.Intn(2) == 0 { // extension constraint
		r := g.rule(bodyPreds)
		r.Head = nil
		rules = append(rules, r)
	}
	return rules
}

func posVars(r logic.Rule) []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range r.Pos {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		}
	}
	return out
}

// TestDifferentialFixpointsAndWorkers pins the core determinism invariant:
// for random programs, the semi-naive and naive fixpoints and every worker
// count render the same program byte for byte.
func TestDifferentialFixpointsAndWorkers(t *testing.T) {
	variants := []Options{
		{},
		{Naive: true},
		{Workers: 4},
		{Naive: true, Workers: 4},
		{Workers: 7},
	}
	totalRules := 0
	for seed := int64(0); seed < 60; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(seed))}
		p := g.program()
		ref, err := GroundWith(p, variants[0])
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		totalRules += len(ref.Rules)
		want := ref.String()
		for _, opts := range variants[1:] {
			gp, err := GroundWith(p, opts)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			if got := gp.String(); got != want {
				t.Fatalf("seed %d: grounding with %+v diverges from default:\n--- want\n%s\n--- got\n%s",
					seed, opts, want, got)
			}
		}
	}
	if totalRules == 0 {
		t.Fatal("generator produced no ground rules across all seeds; differential is vacuous")
	}
}

// TestDifferentialExtendVsMonolithic pins the reuse contract: grounding the
// base once and extending it with query-shaped rules is byte-identical —
// same string, atom table, and rule list — to a monolithic grounding of the
// combined program, at several worker counts.
func TestDifferentialExtendVsMonolithic(t *testing.T) {
	sawExtRules := false
	for _, workers := range []int{0, 4} {
		for seed := int64(0); seed < 40; seed++ {
			g := &progGen{rng: rand.New(rand.NewSource(1000 + seed))}
			base := g.program()
			ext := g.extRules()
			opts := Options{Workers: workers}

			mono, err := GroundWith(&logic.Program{
				Facts: base.Facts,
				Rules: append(append([]logic.Rule(nil), base.Rules...), ext...),
			}, opts)
			if err != nil {
				t.Fatalf("seed %d: monolithic: %v", seed, err)
			}
			bg, err := GroundBase(base, opts)
			if err != nil {
				t.Fatalf("seed %d: base: %v", seed, err)
			}
			baseStr := bg.String()
			got, err := bg.Extend(ext)
			if err != nil {
				t.Fatalf("seed %d: extend: %v", seed, err)
			}
			if got.String() != mono.String() {
				t.Fatalf("seed %d workers %d: extend diverges from monolithic:\n--- monolithic\n%s\n--- extend\n%s",
					seed, workers, mono.String(), got.String())
			}
			if len(got.Names) != len(mono.Names) {
				t.Fatalf("seed %d: atom tables differ: %d vs %d atoms", seed, len(got.Names), len(mono.Names))
			}
			for i := range got.Names {
				if got.Names[i] != mono.Names[i] {
					t.Fatalf("seed %d: atom id %d differs: %q vs %q", seed, i, got.Names[i], mono.Names[i])
				}
			}
			if len(got.Rules) > len(bg.Rules) {
				sawExtRules = true
			}
			if bg.String() != baseStr {
				t.Fatalf("seed %d: Extend mutated its base program", seed)
			}
		}
	}
	if !sawExtRules {
		t.Fatal("no extension produced ground rules; differential is vacuous")
	}
}

// TestExtendMatchesAtomIDs checks that base atom ids survive extension
// unchanged — the property the cautious engine's model readers rely on.
func TestExtendMatchesAtomIDs(t *testing.T) {
	g := &progGen{rng: rand.New(rand.NewSource(7))}
	base := g.program()
	bg, err := GroundBase(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := bg.Extend(g.extRules())
	if err != nil {
		t.Fatal(err)
	}
	for id, f := range bg.Atoms {
		got, ok := ep.AtomID(f)
		if !ok || got != id {
			t.Fatalf("base atom %v: id %d became (%d, %v) in extension", f, id, got, ok)
		}
	}
}

// --- hot-path allocation pins ----------------------------------------------
//
// The grounder's inner loops — atom interning, possible-set membership, rule
// dedup, atom instantiation — must not allocate on hits: no string keys, no
// fmt, no per-probe garbage.

func testFacts(n int) []relational.Fact {
	fs := make([]relational.Fact, n)
	for i := range fs {
		fs[i] = relational.F("e", value.Int(int64(i)), value.Str("v"))
	}
	return fs
}

func TestInternerLookupNoAlloc(t *testing.T) {
	in := newInterner()
	fs := testFacts(64)
	for _, f := range fs {
		in.intern(f)
	}
	probe := fs[37]
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := in.lookup(probe); !ok {
			t.Fatal("interned atom not found")
		}
	}); n != 0 {
		t.Errorf("interner lookup allocates %.1f per probe", n)
	}
}

func TestFactSetMembershipNoAlloc(t *testing.T) {
	s := newFactSet()
	fs := testFacts(64)
	for _, f := range fs {
		s.add(f)
	}
	hit, miss := fs[11], relational.F("e", value.Int(9999), value.Str("v"))
	if n := testing.AllocsPerRun(200, func() {
		if !s.has(hit) || s.has(miss) {
			t.Fatal("factSet membership wrong")
		}
	}); n != 0 {
		t.Errorf("factSet.has allocates %.1f per probe", n)
	}
}

func TestRuleSetDuplicateNoAlloc(t *testing.T) {
	rs := newRuleSet()
	r := Rule{Head: []int{3}, Pos: []int{1, 2}, Neg: []int{4}}
	rs.add(r)
	if n := testing.AllocsPerRun(200, func() {
		if rs.add(r) {
			t.Fatal("duplicate rule accepted")
		}
	}); n != 0 {
		t.Errorf("ruleSet duplicate check allocates %.1f per probe", n)
	}
}

func TestGroundAtomIntoNoAlloc(t *testing.T) {
	a := term.NewAtom("e", term.V("x"), term.V("y"))
	subst := term.Subst{"x": value.Str("a"), "y": value.Str("b")}
	scratch := make(relational.Tuple, 0, 2)
	if n := testing.AllocsPerRun(200, func() {
		scratch = groundAtomInto(scratch, a, subst)
	}); n != 0 {
		t.Errorf("groundAtomInto allocates %.1f per instantiation", n)
	}
}

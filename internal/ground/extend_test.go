package ground

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/logic"
	"repro/internal/term"
)

func TestExtendConflictOnBaseRelation(t *testing.T) {
	gp := mustGround(t, &logic.Program{
		Facts: []term.Atom{atom("q", ca("a"))},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("p", v("x"))}, Pos: []term.Atom{atom("q", v("x"))}},
		},
	})
	cases := []struct {
		name string
		head term.Atom
	}{
		{"fact relation", atom("q", ca("z"))},
		{"derived relation", atom("p", ca("z"))},
	}
	for _, tc := range cases {
		_, err := gp.Extend([]logic.Rule{
			{Head: []term.Atom{tc.head}, Pos: []term.Atom{atom("q", v("x"))}},
		})
		if !errors.Is(err, ErrExtendConflict) {
			t.Errorf("%s: err = %v, want ErrExtendConflict", tc.name, err)
		}
	}
	// Same predicate at a different arity is a different relation: allowed.
	if _, err := gp.Extend([]logic.Rule{
		{Head: []term.Atom{atom("p", v("x"), v("x"))}, Pos: []term.Atom{atom("q", v("x"))}},
	}); err != nil {
		t.Errorf("fresh arity rejected: %v", err)
	}
}

func TestExtendNoSnapshot(t *testing.T) {
	handBuilt := &Program{Names: []string{"a"}, Rules: []Rule{{Head: []int{0}}}}
	if _, err := handBuilt.Extend(nil); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("err = %v, want ErrNoSnapshot", err)
	}
}

func TestExtendRejectsUnsafeRule(t *testing.T) {
	gp := mustGround(t, &logic.Program{Facts: []term.Atom{atom("q", ca("a"))}})
	if _, err := gp.Extend([]logic.Rule{
		{Head: []term.Atom{atom("ans", v("y"))}, Pos: []term.Atom{atom("q", v("x"))}},
	}); err == nil {
		t.Error("unsafe extension rule accepted")
	}
}

// TestExtendChained extends an extension: the second layer's rules read the
// first layer's derived relation, and the result still matches a monolithic
// grounding of everything.
func TestExtendChained(t *testing.T) {
	base := &logic.Program{
		Facts: []term.Atom{atom("q", ca("a")), atom("q", ca("b"))},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("p", v("x"))}, Pos: []term.Atom{atom("q", v("x"))}},
		},
	}
	layer1 := []logic.Rule{
		{Head: []term.Atom{atom("ans1", v("x"))}, Pos: []term.Atom{atom("p", v("x"))}},
	}
	layer2 := []logic.Rule{
		{Head: []term.Atom{atom("ans2", v("x"))}, Pos: []term.Atom{atom("ans1", v("x"))}},
	}
	gp := mustGround(t, base)
	e1, err := gp.Extend(layer1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := e1.Extend(layer2)
	if err != nil {
		t.Fatal(err)
	}
	mono := mustGround(t, &logic.Program{
		Facts: base.Facts,
		Rules: append(append(append([]logic.Rule(nil), base.Rules...), layer1...), layer2...),
	})
	if e2.String() != mono.String() {
		t.Errorf("chained extension diverges:\n--- monolithic\n%s\n--- chained\n%s", mono, e2)
	}
	// A second extension may not rederive into the first's relations.
	if _, err := e1.Extend([]logic.Rule{
		{Head: []term.Atom{atom("ans1", v("x"))}, Pos: []term.Atom{atom("q", v("x"))}},
	}); !errors.Is(err, ErrExtendConflict) {
		t.Errorf("re-deriving an extension relation: err = %v, want ErrExtendConflict", err)
	}
}

// TestExtendConcurrent extends one frozen base from many goroutines — the
// pattern of a multi-query cautious session — and checks each extension
// against its own monolithic grounding. Run under -race this also pins the
// snapshot's freeze discipline.
func TestExtendConcurrent(t *testing.T) {
	base := &logic.Program{
		Facts: []term.Atom{atom("q", ca("a")), atom("q", ca("b")), atom("q", ca("c"))},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("p", v("x"))}, Pos: []term.Atom{atom("q", v("x"))}},
			{
				Head:     []term.Atom{atom("s", v("x"), v("y"))},
				Pos:      []term.Atom{atom("p", v("x")), atom("p", v("y"))},
				Builtins: []term.Builtin{{Op: term.NEQ, L: v("x"), R: v("y")}},
			},
		},
	}
	gp := mustGround(t, base)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rules := []logic.Rule{{
				Head: []term.Atom{atom(fmt.Sprintf("ans%d", i), v("x"))},
				Pos:  []term.Atom{atom("s", v("x"), v("y"))},
			}}
			ep, err := gp.Extend(rules)
			if err != nil {
				errs[i] = err
				return
			}
			mono, err := Ground(&logic.Program{
				Facts: base.Facts,
				Rules: append(append([]logic.Rule(nil), base.Rules...), rules...),
			})
			if err != nil {
				errs[i] = err
				return
			}
			if ep.String() != mono.String() {
				errs[i] = fmt.Errorf("extension %d diverges from monolithic", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", i, err)
		}
	}
}

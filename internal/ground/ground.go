// Package ground instantiates disjunctive logic programs over their active
// (Herbrand) domain, producing the ground programs consumed by the stable
// model engine in internal/stable.
//
// Grounding is "intelligent" in the DLV sense: a fixpoint first computes an
// over-approximation of the derivable atoms (treating every disjunct of
// every applicable rule as derivable and ignoring negation), and rules are
// then instantiated only over that set. Negative literals whose atom cannot
// possibly be derived are dropped as trivially true; positive literals that
// are facts are dropped as well. The result is typically a small fraction
// of the naive instantiation.
//
// The fixpoint is semi-naive (fixpoint.go): each round joins rules only
// through substitutions anchored on an atom derived in the previous round,
// with the remaining positive literals reordered by bound-column
// selectivity and builtins evaluated as soon as their variables are bound.
// Options.Naive selects the round-robin full re-join ablation.
//
// Rule instantiation (emit.go) runs over a canonicalized possible set — the
// fixpoint result re-inserted in sorted fact order — so the emitted program
// is a pure function of the possible *set*, not of the fixpoint's derivation
// order: naive and semi-naive grounding, and every Options.Workers setting,
// produce byte-identical programs by construction.
//
// A grounded Program can be extended with further rules (extend.go) without
// re-grounding: Extend grounds only the new rules against the retained
// possible-set snapshot and shares the base program's slices copy-on-write.
package ground

import (
	"sort"
	"strings"

	"repro/internal/relational"
	"repro/internal/term"
)

// Options tunes grounding. The zero value is the default configuration:
// semi-naive fixpoint, sequential instantiation.
type Options struct {
	// Workers sets the size of the rule-instantiation worker pool; values
	// below 2 instantiate sequentially. The output is byte-identical at
	// every worker count.
	Workers int
	// Naive selects the naive fixpoint (every rule re-joined over the whole
	// possible set on every round, builtins evaluated at the join leaf) — an
	// ablation and differential-testing reference for the semi-naive
	// fixpoint. The emitted program is identical either way.
	Naive bool
}

// Program is a ground disjunctive program over interned atoms.
type Program struct {
	// Names renders each atom id.
	Names []string
	// Atoms maps each atom id back to predicate and arguments.
	Atoms []relational.Fact
	// Facts are atom ids that are unconditionally true.
	Facts []int
	// Rules are the instantiated non-fact rules.
	Rules []Rule

	// idx indexes Atoms for O(1) AtomID lookups; nil on hand-built
	// programs, which fall back to a linear scan.
	idx *interner
	// ext retains the grounding snapshot (canonical possible set, member-
	// ship sets, dedup state) that Extend grounds additional rules against;
	// nil on hand-built programs.
	ext *extState
}

// Rule is one ground rule over atom ids.
type Rule struct {
	Head []int
	Pos  []int
	Neg  []int
}

// NumAtoms returns the number of interned atoms.
func (p *Program) NumAtoms() int { return len(p.Names) }

// String renders the ground program deterministically.
func (p *Program) String() string {
	var b strings.Builder
	facts := append([]int(nil), p.Facts...)
	sort.Ints(facts)
	for _, f := range facts {
		b.WriteString(p.Names[f])
		b.WriteString(".\n")
	}
	for _, r := range p.Rules {
		var parts []string
		for _, h := range r.Head {
			parts = append(parts, p.Names[h])
		}
		b.WriteString(strings.Join(parts, " v "))
		var body []string
		for _, a := range r.Pos {
			body = append(body, p.Names[a])
		}
		for _, a := range r.Neg {
			body = append(body, "not "+p.Names[a])
		}
		if len(body) > 0 {
			if len(r.Head) > 0 {
				b.WriteString(" ")
			}
			b.WriteString(":- ")
			b.WriteString(strings.Join(body, ", "))
		}
		b.WriteString(".\n")
	}
	return b.String()
}

// Fact exposed for tests: value constants of an atom id.
func (p *Program) Fact(id int) relational.Fact { return p.Atoms[id] }

// AtomID looks up the id of a ground fact, if interned.
func (p *Program) AtomID(f relational.Fact) (int, bool) {
	if p.idx != nil {
		return p.idx.lookup(f)
	}
	for id, g := range p.Atoms {
		if g.Equal(f) {
			return id, true
		}
	}
	return 0, false
}

// interner assigns dense ids to ground atoms. It buckets by Fact.Hash and
// confirms with Fact.Equal, so neither interning a new atom nor looking up
// an existing one materializes a string key. An interner may extend a
// frozen parent: the child sees every parent atom (ids are shared) while
// new atoms land only in the child, which is what lets an extension program
// share its base program's atom table copy-on-write.
type interner struct {
	parent  *interner
	buckets map[uint64][]int32
	// atoms holds the full atom table including the parent prefix; the
	// prefix is capacity-capped so appends never clobber the parent.
	atoms []relational.Fact
}

func newInterner() *interner {
	return &interner{buckets: make(map[uint64][]int32)}
}

// extend returns a child interner sharing this interner's atoms as an
// immutable prefix. The parent must not intern further atoms.
func (in *interner) extend() *interner {
	return &interner{
		parent:  in,
		buckets: make(map[uint64][]int32),
		atoms:   in.atoms[:len(in.atoms):len(in.atoms)],
	}
}

func (in *interner) lookupHash(f relational.Fact, h uint64) (int, bool) {
	for lvl := in; lvl != nil; lvl = lvl.parent {
		for _, id := range lvl.buckets[h] {
			if in.atoms[id].Equal(f) {
				return int(id), true
			}
		}
	}
	return 0, false
}

func (in *interner) lookup(f relational.Fact) (int, bool) {
	return in.lookupHash(f, f.Hash())
}

// intern returns the id of f, assigning the next dense id if new. The fact
// is stored as given; callers pass facts that own their tuples.
func (in *interner) intern(f relational.Fact) int {
	h := f.Hash()
	if id, ok := in.lookupHash(f, h); ok {
		return id
	}
	id := len(in.atoms)
	in.atoms = append(in.atoms, f)
	in.buckets[h] = append(in.buckets[h], int32(id))
	return id
}

// factSet is a membership set of ground facts, hash-bucketed with exact
// confirmation (no string keys). Like the interner it may extend a frozen
// parent, giving an extension grounding a copy-on-write view of the base
// possible/fact sets.
type factSet struct {
	parent  *factSet
	buckets map[uint64][]int32
	facts   []relational.Fact
}

func newFactSet() *factSet {
	return &factSet{buckets: make(map[uint64][]int32)}
}

func (s *factSet) extend() *factSet {
	return &factSet{parent: s, buckets: make(map[uint64][]int32)}
}

func (s *factSet) has(f relational.Fact) bool {
	return s.hasHash(f, f.Hash())
}

func (s *factSet) hasHash(f relational.Fact, h uint64) bool {
	for lvl := s; lvl != nil; lvl = lvl.parent {
		for _, i := range lvl.buckets[h] {
			if lvl.facts[i].Equal(f) {
				return true
			}
		}
	}
	return false
}

// add inserts f unless present, reporting whether it was new. The fact is
// stored as given; callers pass facts that own their tuples.
func (s *factSet) add(f relational.Fact) bool {
	h := f.Hash()
	if s.hasHash(f, h) {
		return false
	}
	s.buckets[h] = append(s.buckets[h], int32(len(s.facts)))
	s.facts = append(s.facts, f)
	return true
}

// ruleSet deduplicates ground rules. Equality treats each rule part as a
// set (parts are duplicate-free by construction), matching the sorted-part
// string keys of the pre-hash implementation; the hash is accordingly
// order-independent within each part. A ruleSet may extend a frozen parent
// so an extension program dedups against the base rules it shares.
type ruleSet struct {
	parent  *ruleSet
	buckets map[uint64][]int32
	// rules holds the rules added at this level, in insertion order; it is
	// the emitted rule list of the level's program.
	rules []Rule
}

func newRuleSet() *ruleSet {
	return &ruleSet{buckets: make(map[uint64][]int32)}
}

func (s *ruleSet) extend() *ruleSet {
	return &ruleSet{parent: s, buckets: make(map[uint64][]int32)}
}

// add inserts r unless an equal rule exists at any level, reporting whether
// it was new.
func (s *ruleSet) add(r Rule) bool {
	h := ruleHash(r)
	for lvl := s; lvl != nil; lvl = lvl.parent {
		for _, i := range lvl.buckets[h] {
			if ruleEq(lvl.rules[i], r) {
				return false
			}
		}
	}
	s.buckets[h] = append(s.buckets[h], int32(len(s.rules)))
	s.rules = append(s.rules, r)
	return true
}

func ruleHash(r Rule) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, part := range [3][]int{r.Head, r.Pos, r.Neg} {
		var x uint64
		for _, id := range part {
			x ^= scramble(uint64(id))
		}
		h ^= x
		h *= prime
		h ^= uint64(len(part))
		h *= prime
	}
	return h
}

// scramble is the splitmix64 finalizer, spreading dense atom ids so that
// XOR-combining them within a rule part stays collision-resistant.
func scramble(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func ruleEq(a, b Rule) bool {
	return partEq(a.Head, b.Head) && partEq(a.Pos, b.Pos) && partEq(a.Neg, b.Neg)
}

// partEq is set equality of duplicate-free id lists.
func partEq(xs, ys []int) bool {
	if len(xs) != len(ys) {
		return false
	}
outer:
	for _, x := range xs {
		for _, y := range ys {
			if x == y {
				continue outer
			}
		}
		return false
	}
	return true
}

// match binds the variables of a against the tuple, extending subst in
// place; on mismatch it unbinds what it bound and reports false.
func match(tuple relational.Tuple, a term.Atom, subst term.Subst) (bound []string, ok bool) {
	for i, t := range a.Args {
		if !t.IsVar() {
			if !tuple[i].Eq(t.Const) {
				for _, v := range bound {
					delete(subst, v)
				}
				return nil, false
			}
			continue
		}
		if v, isBound := subst[t.Var]; isBound {
			if !tuple[i].Eq(v) {
				for _, v := range bound {
					delete(subst, v)
				}
				return nil, false
			}
			continue
		}
		subst[t.Var] = tuple[i]
		bound = append(bound, t.Var)
	}
	return bound, true
}

func unbind(subst term.Subst, bound []string) {
	for _, v := range bound {
		delete(subst, v)
	}
}

// groundAtomInto instantiates a under subst into dst's storage (reusing its
// capacity), returning the tuple. The result aliases dst; callers clone
// before retaining.
func groundAtomInto(dst relational.Tuple, a term.Atom, subst term.Subst) relational.Tuple {
	dst = dst[:0]
	for _, t := range a.Args {
		if t.IsVar() {
			dst = append(dst, subst[t.Var])
		} else {
			dst = append(dst, t.Const)
		}
	}
	return dst
}

func groundAtom(a term.Atom, subst term.Subst) relational.Fact {
	return relational.Fact{Pred: a.Pred, Args: groundAtomInto(make(relational.Tuple, 0, len(a.Args)), a, subst)}
}

func groundFact(a term.Atom) relational.Fact {
	args := make(relational.Tuple, len(a.Args))
	for i, t := range a.Args {
		args[i] = t.Const
	}
	return relational.Fact{Pred: a.Pred, Args: args}
}

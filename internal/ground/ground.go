// Package ground instantiates disjunctive logic programs over their active
// (Herbrand) domain, producing the ground programs consumed by the stable
// model engine in internal/stable.
//
// Grounding is "intelligent" in the DLV sense: a fixpoint first computes an
// over-approximation of the derivable atoms (treating every disjunct of
// every applicable rule as derivable and ignoring negation), and rules are
// then instantiated only over that set. Negative literals whose atom cannot
// possibly be derived are dropped as trivially true; positive literals that
// are facts are dropped as well. The result is typically a small fraction
// of the naive instantiation.
package ground

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/relational"
	"repro/internal/term"
)

// Program is a ground disjunctive program over interned atoms.
type Program struct {
	// Names renders each atom id.
	Names []string
	// Atoms maps each atom id back to predicate and arguments.
	Atoms []relational.Fact
	// Facts are atom ids that are unconditionally true.
	Facts []int
	// Rules are the instantiated non-fact rules.
	Rules []Rule

	// ids indexes Atoms by fact key for O(1) AtomID lookups; nil on
	// hand-built programs, which fall back to a linear scan.
	ids map[string]int
}

// Rule is one ground rule over atom ids.
type Rule struct {
	Head []int
	Pos  []int
	Neg  []int
}

// NumAtoms returns the number of interned atoms.
func (p *Program) NumAtoms() int { return len(p.Names) }

// String renders the ground program deterministically.
func (p *Program) String() string {
	var b strings.Builder
	facts := append([]int(nil), p.Facts...)
	sort.Ints(facts)
	for _, f := range facts {
		b.WriteString(p.Names[f])
		b.WriteString(".\n")
	}
	for _, r := range p.Rules {
		var parts []string
		for _, h := range r.Head {
			parts = append(parts, p.Names[h])
		}
		b.WriteString(strings.Join(parts, " v "))
		var body []string
		for _, a := range r.Pos {
			body = append(body, p.Names[a])
		}
		for _, a := range r.Neg {
			body = append(body, "not "+p.Names[a])
		}
		if len(body) > 0 {
			if len(r.Head) > 0 {
				b.WriteString(" ")
			}
			b.WriteString(":- ")
			b.WriteString(strings.Join(body, ", "))
		}
		b.WriteString(".\n")
	}
	return b.String()
}

// interner assigns dense ids to ground atoms.
type interner struct {
	ids   map[string]int
	names []string
	atoms []relational.Fact
}

func newInterner() *interner {
	return &interner{ids: map[string]int{}}
}

func (in *interner) intern(f relational.Fact) int {
	k := f.Key()
	if id, ok := in.ids[k]; ok {
		return id
	}
	id := len(in.names)
	in.ids[k] = id
	in.names = append(in.names, f.String())
	in.atoms = append(in.atoms, f)
	return id
}

func (in *interner) lookup(f relational.Fact) (int, bool) {
	id, ok := in.ids[f.Key()]
	return id, ok
}

// Ground instantiates the program. It returns an error for unsafe rules.
func Ground(p *logic.Program) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	in := newInterner()

	// possible holds the over-approximated derivable atoms in a relational
	// instance, so rule instantiation joins through the engine's
	// per-relation stores and bound-column indexes instead of re-keying
	// fact slices. facts mirrors the unconditionally true atoms.
	possible := relational.NewInstance()
	facts := relational.NewInstance()

	gp := &Program{}
	for _, a := range p.Facts {
		f := groundFact(a)
		if facts.Insert(f) {
			gp.Facts = append(gp.Facts, in.intern(f))
		}
		possible.Insert(f)
	}

	// Fixpoint: instantiate heads of rules whose positive bodies join
	// over the possible set and whose builtins hold.
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			joinPossible(possible, r, func(subst term.Subst) {
				for _, h := range r.Head {
					if possible.Insert(groundAtom(h, subst)) {
						changed = true
					}
				}
			})
		}
	}

	// Instantiate the rules over the possible set.
	seenRules := map[string]bool{}
	for _, r := range p.Rules {
		joinPossible(possible, r, func(subst term.Subst) {
			rule, keep := instantiate(in, r, subst, possible, facts)
			if !keep {
				return
			}
			key := ruleKey(rule)
			if !seenRules[key] {
				seenRules[key] = true
				gp.Rules = append(gp.Rules, rule)
			}
		})
	}

	gp.Names = in.names
	gp.Atoms = in.atoms
	gp.ids = in.ids
	return gp, nil
}

// instantiate builds one ground rule, simplifying it against the possible
// and fact sets. keep is false when the rule instance is trivially
// satisfied (a head atom or negated non-possible literal... ) or its body is
// false.
func instantiate(in *interner, r logic.Rule, subst term.Subst, possible, facts *relational.Instance) (Rule, bool) {
	var out Rule
	for _, h := range r.Head {
		f := groundAtom(h, subst)
		if facts.Has(f) {
			return Rule{}, false // head already true
		}
		out.Head = appendUniq(out.Head, in.intern(f))
	}
	for _, a := range r.Pos {
		f := groundAtom(a, subst)
		if facts.Has(f) {
			continue // always true
		}
		if !possible.Has(f) {
			return Rule{}, false // body can never hold
		}
		out.Pos = appendUniq(out.Pos, in.intern(f))
	}
	for _, a := range r.Neg {
		f := groundAtom(a, subst)
		if facts.Has(f) {
			return Rule{}, false // not <fact> is false
		}
		if !possible.Has(f) {
			continue // not <underivable> is true
		}
		out.Neg = appendUniq(out.Neg, in.intern(f))
	}
	return out, true
}

func appendUniq(xs []int, x int) []int {
	for _, y := range xs {
		if y == x {
			return xs
		}
	}
	return append(xs, x)
}

func ruleKey(r Rule) string {
	var b strings.Builder
	for _, part := range [][]int{r.Head, r.Pos, r.Neg} {
		s := append([]int(nil), part...)
		sort.Ints(s)
		fmt.Fprintf(&b, "%v|", s)
	}
	return b.String()
}

// joinPossible enumerates substitutions satisfying the positive body and
// the builtins over the possible-atom instance, probing each atom through
// the store index on its bound columns.
func joinPossible(possible *relational.Instance, r logic.Rule, yield func(term.Subst)) {
	subst := term.Subst{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(r.Pos) {
			for _, b := range r.Builtins {
				res, ok := b.Eval(subst)
				if !ok || !res {
					return
				}
			}
			yield(subst)
			return
		}
		a := r.Pos[i]
		possible.Scan(a.Pred, a.Arity(), relational.AtomBindings(a, subst), func(t relational.Tuple) bool {
			bound, ok := match(t, a, subst)
			if ok {
				rec(i + 1)
				for _, v := range bound {
					delete(subst, v)
				}
			}
			return true
		})
	}
	rec(0)
}

func match(tuple relational.Tuple, a term.Atom, subst term.Subst) (bound []string, ok bool) {
	for i, t := range a.Args {
		if !t.IsVar() {
			if !tuple[i].Eq(t.Const) {
				for _, v := range bound {
					delete(subst, v)
				}
				return nil, false
			}
			continue
		}
		if v, isBound := subst[t.Var]; isBound {
			if !tuple[i].Eq(v) {
				for _, v := range bound {
					delete(subst, v)
				}
				return nil, false
			}
			continue
		}
		subst[t.Var] = tuple[i]
		bound = append(bound, t.Var)
	}
	return bound, true
}

func groundAtom(a term.Atom, subst term.Subst) relational.Fact {
	args := make(relational.Tuple, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			args[i] = subst[t.Var]
		} else {
			args[i] = t.Const
		}
	}
	return relational.Fact{Pred: a.Pred, Args: args}
}

func groundFact(a term.Atom) relational.Fact {
	args := make(relational.Tuple, len(a.Args))
	for i, t := range a.Args {
		args[i] = t.Const
	}
	return relational.Fact{Pred: a.Pred, Args: args}
}

// Facts exposed for tests: value constants of an atom id.
func (p *Program) Fact(id int) relational.Fact { return p.Atoms[id] }

// AtomID looks up the id of a ground fact, if interned.
func (p *Program) AtomID(f relational.Fact) (int, bool) {
	if p.ids != nil {
		id, ok := p.ids[f.Key()]
		return id, ok
	}
	for id, g := range p.Atoms {
		if g.Equal(f) {
			return id, true
		}
	}
	return 0, false
}

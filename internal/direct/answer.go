package direct

import (
	"context"
	"sort"

	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/term"
)

// Result is the outcome of one direct evaluation, mirroring the session
// Answer conventions: boolean queries set Boolean and leave Tuples nil;
// non-boolean queries return sorted distinct tuples, nil when empty.
// NumRepairs is the exact repair count (never a short-circuit artifact —
// the direct engine computes it as a product, not by enumeration).
type Result struct {
	Tuples     []relational.Tuple
	Boolean    bool
	NumRepairs int
}

// witness is the repair-set footprint of one assignment: the classes its
// positive literals require to survive and the classes its negated literals
// require to be deleted, per conflict group. A witness with no constraints
// holds in every repair. req and exc are nil when empty.
type witness struct {
	req map[*group]string
	exc map[*group]map[string]bool
}

func (w *witness) free() bool { return len(w.req) == 0 && len(w.exc) == 0 }

// mentions reports whether the witness constrains g.
func (w *witness) mentions(g *group) bool {
	if _, ok := w.req[g]; ok {
		return true
	}
	_, ok := w.exc[g]
	return ok
}

// cand accumulates the witnesses of one candidate answer tuple.
type cand struct {
	tuple     relational.Tuple
	witnesses []*witness
	certain   bool // a constraint-free witness was seen
}

const ctxCheckEvery = 4096

// evaluator runs one query over one instance against the classification.
type evaluator struct {
	e     *Engine
	d     *relational.Instance
	ctx   context.Context
	steps int
}

func (ev *evaluator) tick() error {
	ev.steps++
	if ev.steps%ctxCheckEvery == 0 {
		return ev.ctx.Err()
	}
	return nil
}

// CertainCtx computes the certain (consistent) answers of q on d: the
// tuples answering q in every null-based repair. One polynomial pass builds
// each candidate's witnesses from the classification; a candidate is
// certain iff its witnesses cover every per-group class choice.
func (e *Engine) CertainCtx(ctx context.Context, d *relational.Instance, q *query.Q) (Result, error) {
	cands, err := e.collect(ctx, d, q)
	if err != nil {
		return Result{}, err
	}
	res := Result{NumRepairs: e.NumRepairs()}
	ev := &evaluator{e: e, d: d, ctx: ctx}
	var tuples []relational.Tuple
	for _, c := range cands {
		ok := c.certain
		if !ok {
			ok, err = ev.covers(c.witnesses)
			if err != nil {
				return Result{}, err
			}
		}
		if ok {
			tuples = append(tuples, c.tuple)
		}
	}
	if q.IsBoolean() {
		res.Boolean = len(tuples) > 0
		return res, nil
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Compare(tuples[j]) < 0 })
	res.Tuples = tuples
	return res, nil
}

// PossibleCtx computes the possible (brave) answers of q on d: the tuples
// answering q in at least one repair — exactly the candidates with a live
// witness, since a witness's constraints are satisfiable by construction
// and groups are chosen independently.
func (e *Engine) PossibleCtx(ctx context.Context, d *relational.Instance, q *query.Q) ([]relational.Tuple, error) {
	cands, err := e.collect(ctx, d, q)
	if err != nil {
		return nil, err
	}
	var tuples []relational.Tuple
	for _, c := range cands {
		if c.certain || len(c.witnesses) > 0 {
			tuples = append(tuples, c.tuple)
		}
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Compare(tuples[j]) < 0 })
	return tuples, nil
}

// collect enumerates the candidate assignments of every disjunct over d and
// builds their witnesses. Candidates whose every witness died (the
// assignment holds in no repair) are kept with an empty witness list — they
// are neither possible nor certain.
func (e *Engine) collect(ctx context.Context, d *relational.Instance, q *query.Q) (map[string]*cand, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ev := &evaluator{e: e, d: d, ctx: ctx}
	cands := map[string]*cand{}
	for _, disj := range q.Disjuncts {
		var stop error
		query.ForEachAssignment(d, disj, func(subst term.Subst) bool {
			if err := ev.tick(); err != nil {
				stop = err
				return false
			}
			w, alive := ev.buildWitness(disj, subst)
			t := projectHead(q.Head, subst)
			key := t.Key()
			c := cands[key]
			if c == nil {
				c = &cand{tuple: t}
				cands[key] = c
			}
			if !alive {
				return true
			}
			if w.free() {
				c.certain = true
				// Further witnesses can't change either answer; keep
				// enumerating only because other candidates may follow.
				c.witnesses = c.witnesses[:0]
				return true
			}
			if !c.certain {
				c.witnesses = append(c.witnesses, w)
			}
			return true
		})
		if stop != nil {
			return nil, stop
		}
	}
	return cands, nil
}

// buildWitness folds one assignment into a witness. alive is false when the
// assignment holds in no repair: a positive literal requires two different
// classes of one group, a negated literal hits a true fact, or a negated
// literal's group has every class excluded.
func (ev *evaluator) buildWitness(disj query.Conj, subst term.Subst) (*witness, bool) {
	w := &witness{}
	// Positive literals: each inconsistent fact requires its own class.
	for _, l := range disj.Lits {
		if l.Neg {
			continue
		}
		st, g, ck := ev.e.classify(groundFact(l.Atom, subst))
		if st != Inconsistent {
			continue
		}
		if w.req == nil {
			w.req = map[*group]string{}
		}
		if prev, ok := w.req[g]; ok {
			if prev != ck {
				return nil, false
			}
			continue
		}
		w.req[g] = ck
	}
	// Negated literals: a ground fact absent from D is absent from every
	// repair (repairs never insert); a true fact is present in every
	// repair; an inconsistent fact must have its class deselected.
	for _, l := range disj.Lits {
		if !l.Neg {
			continue
		}
		u := groundFact(l.Atom, subst)
		if !ev.d.Has(u) {
			continue
		}
		st, g, ck := ev.e.classify(u)
		if st != Inconsistent {
			return nil, false
		}
		if r, ok := w.req[g]; ok {
			if r == ck {
				return nil, false
			}
			continue // the required class already excludes ck
		}
		if w.exc == nil {
			w.exc = map[*group]map[string]bool{}
		}
		ex := w.exc[g]
		if ex == nil {
			ex = map[string]bool{}
			w.exc[g] = ex
		}
		ex[ck] = true
		if len(ex) == len(g.classes) {
			return nil, false
		}
	}
	return w, true
}

// covers decides whether the witnesses jointly hold under every class
// choice: pick a group mentioned by the first witness, branch over its
// classes, restrict, recurse. Each level eliminates one group from every
// witness, so the depth is bounded by the groups entangled by this
// candidate; a witness free of constraints ends a branch immediately.
func (ev *evaluator) covers(ws []*witness) (bool, error) {
	if err := ev.tick(); err != nil {
		return false, err
	}
	if len(ws) == 0 {
		return false, nil
	}
	var g *group
	for cand := range ws[0].req {
		g = cand
		break
	}
	if g == nil {
		for cand := range ws[0].exc {
			g = cand
			break
		}
	}
	if g == nil {
		return true, nil // ws[0] is constraint-free
	}
	for ck := range g.classes {
		sub, settled := restrict(ws, g, ck)
		if settled {
			continue
		}
		ok, err := ev.covers(sub)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// restrict specializes the witnesses to the choice "group g keeps class
// ck", dropping dead witnesses and g's constraints from survivors. settled
// is true when some survivor became constraint-free (the branch is covered
// without recursion).
func restrict(ws []*witness, g *group, ck string) (sub []*witness, settled bool) {
	for _, w := range ws {
		if r, ok := w.req[g]; ok {
			if r != ck {
				continue
			}
		} else if ex, ok := w.exc[g]; ok {
			if ex[ck] {
				continue
			}
		} else {
			if w.free() {
				return nil, true
			}
			sub = append(sub, w)
			continue
		}
		nw := w.without(g)
		if nw.free() {
			return nil, true
		}
		sub = append(sub, nw)
	}
	return sub, false
}

// without copies the witness minus any constraint on g.
func (w *witness) without(g *group) *witness {
	nw := &witness{}
	for k, v := range w.req {
		if k == g {
			continue
		}
		if nw.req == nil {
			nw.req = map[*group]string{}
		}
		nw.req[k] = v
	}
	for k, v := range w.exc {
		if k == g {
			continue
		}
		if nw.exc == nil {
			nw.exc = map[*group]map[string]bool{}
		}
		nw.exc[k] = v
	}
	return nw
}

// groundFact instantiates an atom under a complete assignment.
func groundFact(a term.Atom, subst term.Subst) relational.Fact {
	args := make(relational.Tuple, len(a.Args))
	for i, t := range a.Args {
		v, _ := subst.Apply(t)
		args[i] = v
	}
	return relational.Fact{Pred: a.Pred, Args: args}
}

// projectHead materializes the head projection of an assignment.
func projectHead(head []string, subst term.Subst) relational.Tuple {
	out := make(relational.Tuple, len(head))
	for j, v := range head {
		out[j] = subst[v]
	}
	return out
}

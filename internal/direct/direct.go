// Package direct implements the repair-less polynomial CQA engine for
// FD-only constraint sets, after Laurent & Spyratos (arXiv 2301.03668):
// consistent answers over tables with nulls and functional dependencies are
// computed from a classification of the data, never from an enumeration of
// repairs.
//
// # Classification
//
// For each relation carrying an FD K → A the engine partitions the tuples
// by their K-projection into key groups and, inside each group, by their
// A-value into classes. Under the paper's null-aware semantics
// (Definition 4) a tuple with null in a key or dependent position is exempt
// — those are exactly the relevant attributes A(ψ) of Definition 2 — so
// exempt tuples, tuples of non-FD relations, and tuples of groups with a
// single class are classified true (they belong to every repair). Tuples of
// a group with ≥ 2 classes are inconsistent: the null-based repairs of an
// FD-only set are exactly the choice products
//
//	Rep(D) = { D − ⋃_{g conflicted} (g − class c_g) : one class c_g per group }
//
// (deletion-only, one surviving class per conflicted group, all choices
// pairwise Δ-incomparable), so an inconsistent tuple belongs to exactly the
// repairs whose choice for its group is its own class. Facts absent from D
// are classified false — they belong to no repair, since null-based FD
// repairs never insert. The classification is maintained incrementally:
// Update applies a Delta in O(|Δ|), adjusting class counts and the
// conflicted-group set, with no re-scan of the instance.
//
// # Answering
//
// A candidate answer is an assignment of a disjunct's positive literals over
// D (builtins included); its witness records, per conflict group, which
// class the assignment requires to survive (positive literals) and which
// classes it requires to be deleted (negated literals). A candidate is a
// possible answer iff some witness is internally consistent, and a certain
// answer iff the disjunction of its witnesses covers every choice of classes
// — decided by branching over the classes of one mentioned group at a time.
// The pass is polynomial in |D| per candidate except in the number of
// conflict groups entangled by a single candidate's witnesses, which is the
// irreducible hard core: certain answers for conjunctive queries under key
// repairs are coNP-complete in general (Fuxman–Miller), and the branching
// is exponential only where that hardness actually bites.
package direct

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/constraint"
	"repro/internal/relational"
)

// ErrScope is the sentinel wrapped by every ScopeError: the constraint set
// (or semantics) is outside the direct engine's FD-only scope and must be
// routed to a repair engine.
var ErrScope = errors.New("constraint set outside the direct engine's FD-only scope")

// ScopeError reports why a set was rejected. It unwraps to ErrScope so
// callers can route on errors.Is(err, direct.ErrScope).
type ScopeError struct {
	// Reason names the first disqualifier, e.g. a non-FD constraint or a
	// NOT NULL-constraint.
	Reason string
}

func (e *ScopeError) Error() string {
	return fmt.Sprintf("direct engine: %s", e.Reason)
}

// Unwrap makes errors.Is(err, ErrScope) hold.
func (e *ScopeError) Unwrap() error { return ErrScope }

// Status classifies a fact with respect to the repair set (the paper's
// true/false/inconsistent trichotomy).
type Status uint8

const (
	// True: the fact is in every repair (exempt, unconstrained relation, or
	// sole class of its group).
	True Status = iota
	// False: the fact is in no repair (absent from D).
	False
	// Inconsistent: the fact is in exactly the repairs that choose its
	// class for its conflict group.
	Inconsistent
)

func (s Status) String() string {
	switch s {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "inconsistent"
	}
}

// group is one FD key group: class counts keyed by the dependent value's
// content encoding. Exempt tuples are never counted.
type group struct {
	classes map[string]int
}

// fdRel is the classification of one FD-constrained relation.
type fdRel struct {
	fd     constraint.FuncDep
	groups map[string]*group
}

// Stats counts classification work, for tests pinning the O(|Δ|) contract.
type Stats struct {
	// InitialFacts is the number of facts scanned by New.
	InitialFacts int
	// DeltaFacts is the number of delta facts processed by Update since New.
	DeltaFacts int
}

// Engine holds the live classification of one instance under an FD-only
// set. It retains no reference to the instance: New scans it once, Update
// keeps the counts current, and the answering entry points take the
// instance to read from explicitly.
type Engine struct {
	set        *constraint.Set
	fds        map[relational.RelKey]*fdRel
	conflicted map[*group]struct{}
	stats      Stats
}

// New analyzes the set and classifies d. It fails with a *ScopeError
// (wrapping ErrScope) unless the set is FD-only with at most one FD per
// relation (constraint.Analyze).
func New(d *relational.Instance, set *constraint.Set) (*Engine, error) {
	an := constraint.Analyze(set)
	if !an.FDOnly {
		return nil, &ScopeError{Reason: an.Reason}
	}
	e := &Engine{
		set:        set,
		fds:        make(map[relational.RelKey]*fdRel, len(an.FDs)),
		conflicted: map[*group]struct{}{},
	}
	for _, fd := range an.FDs {
		e.fds[relational.RelKey{Pred: fd.Pred, Arity: fd.Arity}] = &fdRel{fd: fd, groups: map[string]*group{}}
	}
	for rk, fr := range e.fds {
		d.Scan(rk.Pred, rk.Arity, nil, func(t relational.Tuple) bool {
			e.stats.InitialFacts++
			e.add(fr, t)
			return true
		})
	}
	return e, nil
}

// groupClass computes the key-group and class encodings of a tuple under
// fd; exempt is true when a key or dependent position is null, in which
// case the tuple never participates in a conflict (Definition 4: a relevant
// attribute is null, so the constraint is exempt on it).
func groupClass(fd constraint.FuncDep, t relational.Tuple) (gk, ck string, exempt bool) {
	if t[fd.DepPos].IsNull() {
		return "", "", true
	}
	kb := make([]byte, 0, 16)
	for _, p := range fd.KeyPos {
		if t[p].IsNull() {
			return "", "", true
		}
		kb = t[p].AppendKey(kb)
	}
	return string(kb), string(t[fd.DepPos].AppendKey(nil)), false
}

// add counts one tuple of fr's relation into its group/class, maintaining
// the conflicted set across the 1 → 2 class transition.
func (e *Engine) add(fr *fdRel, t relational.Tuple) {
	gk, ck, exempt := groupClass(fr.fd, t)
	if exempt {
		return
	}
	g := fr.groups[gk]
	if g == nil {
		g = &group{classes: map[string]int{}}
		fr.groups[gk] = g
	}
	g.classes[ck]++
	if g.classes[ck] == 1 && len(g.classes) == 2 {
		e.conflicted[g] = struct{}{}
	}
}

// remove undoes add, maintaining the conflicted set across the 2 → 1 class
// transition and dropping emptied groups.
func (e *Engine) remove(fr *fdRel, t relational.Tuple) {
	gk, ck, exempt := groupClass(fr.fd, t)
	if exempt {
		return
	}
	g := fr.groups[gk]
	if g == nil || g.classes[ck] == 0 {
		return
	}
	g.classes[ck]--
	if g.classes[ck] == 0 {
		delete(g.classes, ck)
		if len(g.classes) == 1 {
			delete(e.conflicted, g)
		}
		if len(g.classes) == 0 {
			delete(fr.groups, gk)
		}
	}
}

// Update applies a delta to the classification in O(|Δ|): only the groups
// of the delta's own facts are touched, never the instance. The delta must
// be effective (already deduplicated against the instance, as
// relational.Head.Apply returns it).
func (e *Engine) Update(dl relational.Delta) {
	for _, f := range dl.Removed {
		if fr := e.fds[relational.RelKey{Pred: f.Pred, Arity: len(f.Args)}]; fr != nil {
			e.stats.DeltaFacts++
			e.remove(fr, f.Args)
		}
	}
	for _, f := range dl.Added {
		if fr := e.fds[relational.RelKey{Pred: f.Pred, Arity: len(f.Args)}]; fr != nil {
			e.stats.DeltaFacts++
			e.add(fr, f.Args)
		}
	}
}

// classify returns the status of a fact assumed present in D, plus its
// conflict group and class when inconsistent.
func (e *Engine) classify(f relational.Fact) (Status, *group, string) {
	fr := e.fds[relational.RelKey{Pred: f.Pred, Arity: len(f.Args)}]
	if fr == nil {
		return True, nil, ""
	}
	gk, ck, exempt := groupClass(fr.fd, f.Args)
	if exempt {
		return True, nil, ""
	}
	g := fr.groups[gk]
	if g == nil || len(g.classes) < 2 {
		return True, nil, ""
	}
	return Inconsistent, g, ck
}

// Classify reports the repair-set status of an arbitrary fact on d: True
// (in every repair), Inconsistent (in some), or False (in none, i.e. absent
// from d).
func (e *Engine) Classify(d *relational.Instance, f relational.Fact) Status {
	if !d.Has(f) {
		return False
	}
	st, _, _ := e.classify(f)
	return st
}

// Consistent reports whether the classified instance satisfies the set
// (no conflicted group).
func (e *Engine) Consistent() bool { return len(e.conflicted) == 0 }

// NumRepairs returns the exact repair count ∏_g |classes(g)| over the
// conflicted groups, saturating at math.MaxInt.
func (e *Engine) NumRepairs() int {
	n := 1
	for g := range e.conflicted {
		k := len(g.classes)
		if n > math.MaxInt/k {
			return math.MaxInt
		}
		n *= k
	}
	return n
}

// Stats returns the classification work counters.
func (e *Engine) Stats() Stats { return e.stats }

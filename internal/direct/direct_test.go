package direct

import (
	"context"
	"errors"
	"testing"

	"repro/internal/parser"
	"repro/internal/relational"
)

const fdIC = `r(X,Y1,W1), r(X,Y2,W2) -> Y1 = Y2.`

func mustEngine(t *testing.T, dsrc, icsrc string) (*Engine, *relational.Instance) {
	t.Helper()
	d := parser.MustInstance(dsrc)
	set := parser.MustConstraints(icsrc)
	e, err := New(d, set)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, d
}

func certain(t *testing.T, e *Engine, d *relational.Instance, qsrc string) Result {
	t.Helper()
	res, err := e.CertainCtx(context.Background(), d, parser.MustQuery(qsrc))
	if err != nil {
		t.Fatalf("CertainCtx(%s): %v", qsrc, err)
	}
	return res
}

func possible(t *testing.T, e *Engine, d *relational.Instance, qsrc string) []relational.Tuple {
	t.Helper()
	ts, err := e.PossibleCtx(context.Background(), d, parser.MustQuery(qsrc))
	if err != nil {
		t.Fatalf("PossibleCtx(%s): %v", qsrc, err)
	}
	return ts
}

func tupleStrings(ts []relational.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	return out
}

func wantTuples(t *testing.T, got []relational.Tuple, want ...string) {
	t.Helper()
	gs := tupleStrings(got)
	if len(gs) != len(want) {
		t.Fatalf("got %v, want %v", gs, want)
	}
	for i := range gs {
		if gs[i] != want[i] {
			t.Fatalf("got %v, want %v", gs, want)
		}
	}
}

func TestConflictedGroupBasics(t *testing.T) {
	e, d := mustEngine(t, `r(a,b,1). r(a,c,2). r(d,b,3).`, fdIC)
	if e.Consistent() {
		t.Fatal("instance should be inconsistent")
	}
	if n := e.NumRepairs(); n != 2 {
		t.Fatalf("NumRepairs = %d, want 2", n)
	}

	// The key a group is conflicted: neither dependent value is certain,
	// both are possible. Key d is clean.
	res := certain(t, e, d, `q(X,Y) :- r(X,Y,W).`)
	wantTuples(t, res.Tuples, "(d,b)")
	if res.NumRepairs != 2 {
		t.Fatalf("NumRepairs = %d, want 2", res.NumRepairs)
	}
	wantTuples(t, possible(t, e, d, `q(X,Y) :- r(X,Y,W).`), "(a,b)", "(a,c)", "(d,b)")

	// The key itself survives in every repair (some class always remains).
	res = certain(t, e, d, `q(X) :- r(X,Y,W).`)
	wantTuples(t, res.Tuples, "(a)", "(d)")
}

func TestExemptionNullKeyAndDep(t *testing.T) {
	// Null in the key or dependent position exempts the tuple entirely
	// (Definition 4): no conflicts, everything certain.
	e, d := mustEngine(t, `r(null,b,1). r(null,c,2). r(a,null,3). r(a,b,4).`, fdIC)
	if !e.Consistent() {
		t.Fatal("instance should be consistent under null-aware semantics")
	}
	if n := e.NumRepairs(); n != 1 {
		t.Fatalf("NumRepairs = %d, want 1", n)
	}
	res := certain(t, e, d, `q(X,Y) :- r(X,Y,W).`)
	wantTuples(t, res.Tuples, "(null,b)", "(null,c)", "(a,null)", "(a,b)")
}

func TestNegationAgainstInconsistentFact(t *testing.T) {
	// s(a) is certain only in the repairs keeping r(a,c,_): not r(a,b,1)
	// excludes class b.
	e, d := mustEngine(t, `r(a,b,1). r(a,c,2). s(a). s(b).`, fdIC)
	res := certain(t, e, d, `q(X) :- s(X), not r(X,b,1).`)
	wantTuples(t, res.Tuples, "(b)")
	wantTuples(t, possible(t, e, d, `q(X) :- s(X), not r(X,b,1).`), "(a)", "(b)")

	// Negating a safe fact kills the witness in every repair.
	res = certain(t, e, d, `q(X) :- r(X,Y,W), not s(a).`)
	if res.Tuples != nil {
		t.Fatalf("got %v, want none", tupleStrings(res.Tuples))
	}
	if ts := possible(t, e, d, `q(X) :- r(X,Y,W), not s(a).`); ts != nil {
		t.Fatalf("got %v, want none", tupleStrings(ts))
	}
}

func TestDisjunctionCoversChoices(t *testing.T) {
	// Neither disjunct alone is certain, but together they cover both
	// classes of the conflicted group: q is certain.
	e, d := mustEngine(t, `r(a,b,1). r(a,c,2).`, fdIC)
	res := certain(t, e, d, "q :- r(a,b,1).\nq :- r(a,c,2).")
	if !res.Boolean {
		t.Fatal("disjunction over both classes should be certainly true")
	}
	res = certain(t, e, d, `q :- r(a,b,1).`)
	if res.Boolean {
		t.Fatal("single class should not be certain")
	}
	// Boolean possible answers follow the []Tuple{{}} convention.
	wantTuples(t, possible(t, e, d, `q :- r(a,b,1).`), "()")
}

func TestMultiGroupEntanglement(t *testing.T) {
	// Two conflicted groups; the join q :- r(a,Y,_), r(d,Y,_) holds only
	// when both groups choose the same dependent value. Four repairs, two
	// satisfy it: possible but not certain.
	e, d := mustEngine(t, `r(a,b,1). r(a,c,2). r(d,b,3). r(d,c,4).`, fdIC)
	if n := e.NumRepairs(); n != 4 {
		t.Fatalf("NumRepairs = %d, want 4", n)
	}
	res := certain(t, e, d, `q :- r(a,Y,W1), r(d,Y,W2).`)
	if res.Boolean {
		t.Fatal("join should not be certain")
	}
	wantTuples(t, possible(t, e, d, `q :- r(a,Y,W1), r(d,Y,W2).`), "()")

	// But the union over both shared values is certain... it is not:
	// group a may pick b while group d picks c. Verify covers() says no.
	res = certain(t, e, d, "q :- r(a,b,1), r(d,b,3).\nq :- r(a,c,2), r(d,c,4).")
	if res.Boolean {
		t.Fatal("diagonal union is falsified by mixed choices")
	}
}

func TestUpdateIncremental(t *testing.T) {
	e, d := mustEngine(t, `r(a,b,1).`, fdIC)
	apply := func(add, del []relational.Fact) {
		var dl relational.Delta
		for _, f := range del {
			if d.Delete(f) {
				dl.Removed = append(dl.Removed, f)
			}
		}
		for _, f := range add {
			if d.Insert(f) {
				dl.Added = append(dl.Added, f)
			}
		}
		e.Update(dl)
	}
	f := func(src string) relational.Fact { return parser.MustInstance(src).Facts()[0] }

	apply([]relational.Fact{f(`r(a,c,2).`)}, nil)
	if e.Consistent() || e.NumRepairs() != 2 {
		t.Fatalf("after insert: consistent=%v repairs=%d", e.Consistent(), e.NumRepairs())
	}
	apply([]relational.Fact{f(`r(a,c,3).`)}, nil)
	if e.NumRepairs() != 2 {
		t.Fatalf("same class insert changed repairs: %d", e.NumRepairs())
	}
	apply(nil, []relational.Fact{f(`r(a,c,2).`), f(`r(a,c,3).`)})
	if !e.Consistent() || e.NumRepairs() != 1 {
		t.Fatalf("after deletes: consistent=%v repairs=%d", e.Consistent(), e.NumRepairs())
	}
	st := e.Stats()
	if st.InitialFacts != 1 || st.DeltaFacts != 4 {
		t.Fatalf("stats = %+v, want initial 1, delta 4", st)
	}
}

func TestScopeRejection(t *testing.T) {
	d := parser.MustInstance(`p(a).`)
	for name, icsrc := range map[string]string{
		"denial":      `p(X), q(X) -> false.`,
		"referential": `p(X) -> q(X,Z).`,
		"two FDs":     "r(X,Y1,W1), r(X,Y2,W2) -> Y1 = Y2.\nr(X1,Y,W1), r(X2,Y,W2) -> W1 = W2.",
	} {
		set, err := parser.Constraints(icsrc)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		_, err = New(d, set)
		if !errors.Is(err, ErrScope) {
			t.Fatalf("%s: err = %v, want ErrScope", name, err)
		}
		var se *ScopeError
		if !errors.As(err, &se) || se.Reason == "" {
			t.Fatalf("%s: err = %v, want *ScopeError with reason", name, err)
		}
	}
}

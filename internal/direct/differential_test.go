package direct_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/direct"
	"repro/internal/fdgen"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/session"
)

// The direct ≡ search ≡ program contract: on FD-only workloads the three
// engines agree on certain answers (tuples and boolean verdicts), possible
// answers, and — when no engine short-circuited — the exact repair count.
// 45 seeds × 8 queries, random violation structure, null-exempt rows,
// joins, negation, builtins, unions, across repair worker counts; run it
// under -race to pin the parallel search side too.

// diffQueries builds the query battery for a KeyWidth-1 fdgen workload
// (relations r0[, r1] of arity 3: key, dep, unique id; unconstrained s/2).
func diffQueries(relations int) []*query.Q {
	srcs := []string{
		`q(K,V) :- r0(K,V,W).`,                         // full projection
		`q(K) :- r0(K,V,W).`,                           // key survival
		`q(V) :- r0(K,V,W), s(K,V2).`,                  // join across the constraint boundary
		`q(K,V) :- s(K,V), r0(K,V2,W), not r0(K,V,W).`, // negation on the constrained relation
		`q(K) :- r0(K,v1,W).`,                          // constant dependent
		`q :- r0(K,v0,W), s(K,V).`,                     // boolean join
		`q(K,W) :- r0(K,V,W), W >= 6.`,                 // builtin filter
		"q(K) :- r0(K,v0,W).\nq(K) :- r0(K,v1,W).",     // union over classes
	}
	if relations > 1 {
		srcs = append(srcs,
			`q(V) :- r0(K,V,W1), r1(K,V,W2).`, // join of two conflicted relations
			`q :- r0(K,V,W1), r1(K2,V,W2).`)   // boolean cross-relation join
	}
	out := make([]*query.Q, len(srcs))
	for i, src := range srcs {
		out[i] = parser.MustQuery(src)
	}
	return out
}

func diffConfig(seed int64) fdgen.Config {
	cfg := fdgen.Config{
		Relations:     1 + int(seed%2),
		Rows:          12 + int(seed%4)*8,
		GroupSize:     2 + int(seed%3),
		Violations:    int(seed % 4),
		Classes:       2 + int(seed%2),
		NullRate:      0.15,
		Unconstrained: 8,
		Seed:          seed,
	}
	// Keep Rep(D) small enough for the repair engines to enumerate: the
	// repair count is Classes^(Violations·Relations) in the worst case.
	if cfg.Relations > 1 && cfg.Violations > 2 {
		cfg.Violations = 2
	}
	return cfg
}

func sameTuples(a, b []relational.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestDirectDifferential(t *testing.T) {
	for seed := int64(0); seed < 45; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := diffConfig(seed)
			d, set := fdgen.Generate(cfg)
			eng, err := direct.New(d, set)
			if err != nil {
				t.Fatalf("direct.New: %v", err)
			}
			ctx := context.Background()

			// One session per reference side: the repair set (search) and
			// program translation are computed once and shared across the
			// whole query battery, which is what keeps 45 seeds fast.
			type side struct {
				name string
				sess *session.Session
			}
			sides := []side{}
			for _, workers := range []int{1, 3} {
				opts := core.NewOptions()
				opts.Repair.Workers = workers
				sides = append(sides, side{fmt.Sprintf("search/w%d", workers), session.New(d, set, opts)})
			}
			progOpts := core.NewOptions()
			progOpts.Engine = core.EngineProgram
			sides = append(sides, side{"program", session.New(d, set, progOpts)})

			for qi, q := range diffQueries(cfg.Relations) {
				res, err := eng.CertainCtx(ctx, d, q)
				if err != nil {
					t.Fatalf("q%d direct certain: %v", qi, err)
				}
				poss, err := eng.PossibleCtx(ctx, d, q)
				if err != nil {
					t.Fatalf("q%d direct possible: %v", qi, err)
				}
				for _, s := range sides {
					ref, err := s.sess.AnswerCtx(ctx, q)
					if err != nil {
						t.Fatalf("q%d %s certain: %v", qi, s.name, err)
					}
					if q.IsBoolean() {
						if res.Boolean != ref.Boolean {
							t.Errorf("q%d %s: boolean direct=%v ref=%v", qi, s.name, res.Boolean, ref.Boolean)
						}
					} else if !sameTuples(res.Tuples, ref.Tuples) {
						t.Errorf("q%d %s: certain direct=%v ref=%v", qi, s.name, res.Tuples, ref.Tuples)
					}
					if !ref.ShortCircuited && res.NumRepairs != ref.NumRepairs {
						t.Errorf("q%d %s: NumRepairs direct=%d ref=%d", qi, s.name, res.NumRepairs, ref.NumRepairs)
					}
					refPoss, err := s.sess.PossibleCtx(ctx, q)
					if err != nil {
						t.Fatalf("q%d %s possible: %v", qi, s.name, err)
					}
					if !sameTuples(poss, refPoss) {
						t.Errorf("q%d %s: possible direct=%v ref=%v", qi, s.name, poss, refPoss)
					}
				}
			}
		})
	}
}

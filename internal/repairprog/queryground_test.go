package repairprog

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/ground"
	"repro/internal/parser"
	"repro/internal/relational"
)

// example19Parsed is the Example 19 scenario in parser-friendly lower-case
// relation names, for tests that drive the query side through the parser.
func example19Parsed() (*relational.Instance, *constraint.Set) {
	return parser.MustInstance(`
			r(a, b).
			r(a, c).
			s(e, f).
			s(null, a).
		`), parser.MustConstraints(`
			r(X, Y), r(X, Z) -> Y = Z.
			s(U, V) -> r(V, W).
			r(X, Y), isnull(X) -> false.
		`)
}

// queryZoo covers the query-rule shapes GroundWithQuery must handle: open
// and boolean queries, joins, negation, builtins, and disjunction (unions).
var queryZoo = []string{
	`q(X) :- r(X, Y).`,
	`q(X, Y) :- r(X, Y).`,
	`q(U) :- s(U, V), r(V, W).`,
	`q(X) :- r(X, Y), not s(Y, X).`,
	`q(X, Y) :- r(X, Y), X != Y.`,
	`q(X) :- r(X, Y). q(X) :- s(X, V).`,
	`q :- r(a, b).`,
	`q :- s(U, V), not r(V, V).`,
}

// TestGroundWithQueryMatchesMonolithic pins the grounding-reuse contract at
// the translation level: extending the cached base grounding with the query
// rules renders byte-identically to re-grounding WithQuery(q) from scratch,
// for every query shape and at several worker counts.
func TestGroundWithQueryMatchesMonolithic(t *testing.T) {
	d, set := example19Parsed()
	for _, workers := range []int{0, 4} {
		tr := mustBuild(t, d, set, VariantCorrected)
		tr.GroundOptions = ground.Options{Workers: workers}
		for _, qsrc := range queryZoo {
			q := parser.MustQuery(qsrc)
			got, err := tr.GroundWithQuery(q)
			if err != nil {
				t.Fatalf("workers %d, query %q: %v", workers, qsrc, err)
			}
			prog, err := tr.WithQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			mono, err := ground.GroundWith(prog, tr.GroundOptions)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != mono.String() {
				t.Errorf("workers %d, query %q: extension diverges from monolithic:\n--- monolithic\n%s\n--- extension\n%s",
					workers, qsrc, mono, got)
			}
		}
	}
}

// TestBaseGroundingCached checks that the base grounding is computed once
// per translation and shared by every query extension.
func TestBaseGroundingCached(t *testing.T) {
	d, set := example19Parsed()
	tr := mustBuild(t, d, set, VariantCorrected)
	g1, err := tr.BaseGrounding()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := tr.BaseGrounding()
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("BaseGrounding re-grounded the base")
	}
	// Query extensions must share the base atom table: ids and names of the
	// base atoms survive unchanged.
	gp, err := tr.GroundWithQuery(parser.MustQuery(`q(X) :- r(X, Y).`))
	if err != nil {
		t.Fatal(err)
	}
	if len(gp.Names) < len(g1.Names) {
		t.Fatalf("extension lost base atoms: %d < %d", len(gp.Names), len(g1.Names))
	}
	for id := range g1.Names {
		if gp.Names[id] != g1.Names[id] {
			t.Fatalf("atom id %d renamed by extension: %q vs %q", id, gp.Names[id], g1.Names[id])
		}
	}
}

// TestGroundWithQueryFallback forces the extension conflict path: a database
// relation named like the answer predicate makes the base grounding
// unshareable, and GroundWithQuery must silently fall back to a monolithic
// grounding with the same rendered result.
func TestGroundWithQueryFallback(t *testing.T) {
	d := parser.MustInstance(`
		r(a, b).
		r(a, c).
		q_ans(a).
	`)
	set := parser.MustConstraints(`r(X, Y), r(X, Z) -> Y = Z.`)
	tr := mustBuild(t, d, set, VariantCorrected)
	q := parser.MustQuery(`q(X) :- r(X, Y), q_ans(X).`)
	got, err := tr.GroundWithQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tr.WithQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := ground.Ground(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != mono.String() {
		t.Errorf("fallback diverges from monolithic:\n--- monolithic\n%s\n--- fallback\n%s", mono, got)
	}
}

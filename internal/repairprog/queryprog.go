package repairprog

import (
	"errors"
	"fmt"

	"repro/internal/ground"
	"repro/internal/logic"
	"repro/internal/query"
	"repro/internal/term"
)

// This file implements the query side of Section 5: consistent query
// answering as cautious reasoning over the stable models of the repair
// program extended with query rules. A query atom P(t̄) is evaluated in a
// repair D_M through the t**-annotated version of P; predicates the repair
// program does not annotate (possible with pruning, see prune.go) are read
// from their base facts, which every stable model preserves.

// AnswerPred is the reserved head predicate of generated query rules.
const AnswerPred = "q_ans"

// QueryRules translates a safe query into logic rules over the program's
// annotated predicates, with head predicate AnswerPred.
func (tr *Translation) QueryRules(q *query.Q) ([]logic.Rule, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	head := term.Atom{Pred: AnswerPred}
	for _, v := range q.Head {
		head.Args = append(head.Args, term.V(v))
	}
	var rules []logic.Rule
	for _, disj := range q.Disjuncts {
		r := logic.Rule{Head: []term.Atom{head}}
		for _, lit := range disj.Lits {
			atom := tr.repairedAtom(lit.Atom)
			if lit.Neg {
				r.Neg = append(r.Neg, atom)
			} else {
				r.Pos = append(r.Pos, atom)
			}
		}
		r.Builtins = append(r.Builtins, disj.Builtins...)
		if !r.Safe() {
			return nil, fmt.Errorf("repairprog: query disjunct %s grounds to an unsafe rule", disj)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// repairedAtom maps a query atom onto the repaired database: the
// t**-annotated predicate when the program annotates it, the base predicate
// otherwise.
func (tr *Translation) repairedAtom(a term.Atom) term.Atom {
	if _, ok := tr.annToBase[a.Pred+AnnSuffix]; ok && tr.annotates(a.Pred) {
		return annAtom(a, TSS)
	}
	return a.Clone()
}

// annotates reports whether the program carries rules 5–7 for the
// predicate.
func (tr *Translation) annotates(pred string) bool {
	return tr.annotated == nil || tr.annotated[pred]
}

// GroundWithQuery returns the ground program of Π(D, IC) ∪ Π(q): the
// cached base grounding (BaseGrounding) extended with just the query rules,
// so the per-query cost is grounding a handful of rules over the retained
// possible-set snapshot instead of re-grounding the whole repair program.
// The result is byte-identical to a monolithic grounding of WithQuery(q).
// If the extension cannot share the base — a database relation named
// AnswerPred, say — it falls back to that monolithic grounding. Safe for
// concurrent use: queries extend one shared frozen base.
func (tr *Translation) GroundWithQuery(q *query.Q) (*ground.Program, error) {
	rules, err := tr.QueryRules(q)
	if err != nil {
		return nil, err
	}
	base, err := tr.BaseGrounding()
	if err != nil {
		return nil, err
	}
	gp, err := base.Extend(rules)
	if err == nil {
		return gp, nil
	}
	if !errors.Is(err, ground.ErrExtendConflict) {
		return nil, err
	}
	prog, err := tr.WithQuery(q)
	if err != nil {
		return nil, err
	}
	return ground.GroundWith(prog, tr.GroundOptions)
}

// WithQuery returns a copy of the repair program extended with the query
// rules for q.
func (tr *Translation) WithQuery(q *query.Q) (*logic.Program, error) {
	rules, err := tr.QueryRules(q)
	if err != nil {
		return nil, err
	}
	p := &logic.Program{
		Facts: append([]term.Atom(nil), tr.Program.Facts...),
		Rules: append(append([]logic.Rule(nil), tr.Program.Rules...), rules...),
	}
	return p, nil
}

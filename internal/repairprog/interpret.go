package repairprog

import (
	"sort"

	"repro/internal/ground"
	"repro/internal/relational"
	"repro/internal/stable"
)

// ModelReader reads the database instance D_M of Definition 10 off stable
// models of one grounding of the translation, in O(|Δ|) per model instead of
// a per-model full-instance build. The reader precomputes, once per
// grounding, the candidate edits a model can apply to the base instance:
//
//   - a base fact can be removed only if its advised-false atom (annotation
//     fa) was grounded — facts no constraint ever touches have no fa atom
//     and ride every repair untouched, which is also what keeps the edit
//     lists proportional to the constraint-relevant grounding, not to |D|;
//   - a fact can be inserted only if its t** atom was grounded for a tuple
//     outside the base.
//
// Per model, each candidate resolves by a binary-search membership probe:
// a base fact is removed iff its fa atom is in M (the program denial and
// rule 6 make that equivalent to "t** not in M"), and a non-base fact is
// inserted iff its t** atom is in M. Applying the resolved edits to a
// copy-on-write Clone of the base yields exactly Interpret's instance —
// pruned-passthrough predicates ride the shared base verbatim — as an
// overlay whose Delta is free.
type ModelReader struct {
	base      *relational.Instance
	removals  []readerEdit
	additions []readerEdit
}

// readerEdit pairs the ground atom id that decides an edit with the
// base-predicate fact the edit applies to.
type readerEdit struct {
	id   int
	fact relational.Fact
}

// NewModelReader precomputes the candidate edit lists for one grounding of
// the translation's program (or of an extension of it, such as WithQuery:
// atoms of predicates outside the annotation scheme are ignored).
func (tr *Translation) NewModelReader(gp *ground.Program) *ModelReader {
	r := &ModelReader{base: tr.base}
	for id, f := range gp.Atoms {
		base, ok := tr.annToBase[f.Pred]
		if !ok || len(f.Args) == 0 {
			continue
		}
		switch ann := f.Args[len(f.Args)-1]; {
		case ann.Eq(FA):
			fact := relational.Fact{Pred: base, Args: f.Args[:len(f.Args)-1]}
			if tr.base.Has(fact) {
				r.removals = append(r.removals, readerEdit{id: id, fact: fact})
			}
		case ann.Eq(TSS):
			fact := relational.Fact{Pred: base, Args: f.Args[:len(f.Args)-1]}
			if !tr.base.Has(fact) {
				r.additions = append(r.additions, readerEdit{id: id, fact: fact})
			}
		}
	}
	// Edits in fact order make every per-model delta (a subsequence) come
	// out sorted, matching the Delta contract with no per-model sort.
	sortEdits(r.removals)
	sortEdits(r.additions)
	return r
}

func sortEdits(edits []readerEdit) {
	sort.Slice(edits, func(i, j int) bool { return edits[i].fact.Compare(edits[j].fact) < 0 })
}

// Delta resolves the candidate edits against m and returns Δ(base, D_M),
// halves sorted.
func (r *ModelReader) Delta(m stable.Model) relational.Delta {
	var dl relational.Delta
	for _, e := range r.removals {
		if m.Contains(e.id) {
			dl.Removed = append(dl.Removed, e.fact)
		}
	}
	for _, e := range r.additions {
		if m.Contains(e.id) {
			dl.Added = append(dl.Added, e.fact)
		}
	}
	return dl
}

// Repair returns D_M as a copy-on-write overlay of the base together with
// its delta. The overlay shares the base's physical engine, so the build
// costs O(|Δ|) and the instance's own Delta/Diff against the base stay
// O(|Δ|) downstream.
func (r *ModelReader) Repair(m stable.Model) (*relational.Instance, relational.Delta) {
	dl := r.Delta(m)
	inst := r.base.Clone()
	for _, f := range dl.Removed {
		inst.Delete(f)
	}
	for _, f := range dl.Added {
		inst.Insert(f)
	}
	return inst, dl
}

// InterpretDelta is the overlay counterpart of Interpret: the same D_M, as
// a clone-plus-delta of the base instead of a fresh full build. For repeated
// reads off one grounding, build a ModelReader once and call Repair.
func (tr *Translation) InterpretDelta(gp *ground.Program, m stable.Model) (*relational.Instance, relational.Delta) {
	return tr.NewModelReader(gp).Repair(m)
}

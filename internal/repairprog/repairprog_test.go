package repairprog

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/depgraph"
	"repro/internal/ground"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/stable"
	"repro/internal/term"
	"repro/internal/value"
)

func v(name string) term.T                       { return term.V(name) }
func atom(pred string, args ...term.T) term.Atom { return term.NewAtom(pred, args...) }
func s(x string) value.V                         { return value.Str(x) }
func n() value.V                                 { return value.Null() }
func fact(pred string, args ...value.V) relational.Fact {
	return relational.F(pred, args...)
}
func inst(facts ...relational.Fact) *relational.Instance {
	return relational.NewInstance(facts...)
}

// example19 is the instance and constraint set of Examples 19/21/23.
func example19() (*relational.Instance, *constraint.Set) {
	d := inst(
		fact("R", s("a"), s("b")),
		fact("R", s("a"), s("c")),
		fact("S", s("e"), s("f")),
		fact("S", n(), s("a")),
	)
	fd := constraint.FD("R", 2, []int{0}, []int{1})
	fk := constraint.ForeignKey("S", 2, []int{1}, "R", 2, []int{0})
	nnc := &constraint.NNC{Name: "rkey", Pred: "R", Arity: 2, Pos: 0}
	return d, constraint.MustSet(append(fd, fk), []*constraint.NNC{nnc})
}

func mustBuild(t *testing.T, d *relational.Instance, set *constraint.Set, variant Variant) *Translation {
	t.Helper()
	tr, err := Build(d, set, variant)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func stableInstances(t *testing.T, tr *Translation) []*relational.Instance {
	t.Helper()
	insts, _, err := tr.StableRepairs(stable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

func sameInstanceSets(a, b []*relational.Instance) bool {
	if len(a) != len(b) {
		return false
	}
	keys := map[string]bool{}
	for _, x := range a {
		keys[x.Key()] = true
	}
	for _, y := range b {
		if !keys[y.Key()] {
			return false
		}
	}
	return true
}

// --- Example 21: program shape ------------------------------------------------

func TestExample21ProgramShape(t *testing.T) {
	d, set := example19()
	tr := mustBuild(t, d, set, VariantPaper)
	out := tr.Program.String()

	// Rule 1: the four facts.
	for _, want := range []string{"R(a,b).", "R(a,c).", "S(e,f).", "S(null,a)."} {
		if !strings.Contains(out, want) {
			t.Errorf("missing fact %q:\n%s", want, out)
		}
	}
	// Rule 2 for the FD (the paper prints only x != null; Definition 9
	// also guards the ϕ-variables y and z, which are relevant).
	if !strings.Contains(out, "R_a(X1,X2,fa) v R_a(X1,Y2,fa) :- R_a(X1,X2,ts), R_a(X1,Y2,ts)") {
		t.Errorf("missing FD rule:\n%s", out)
	}
	if !strings.Contains(out, "X2 != Y2") { // ϕ̄: negation of the FD's x2 = y2
		t.Errorf("missing negated ϕ:\n%s", out)
	}
	// Rule 3 for the RIC with its aux rule.
	if !strings.Contains(out, "S_a(X1,X2,fa) v R_a(X2,null,ta) :- S_a(X1,X2,ts), not aux_fk_S_R(X2), X2 != null.") {
		t.Errorf("missing RIC rule:\n%s", out)
	}
	if !strings.Contains(out, "aux_fk_S_R(X2) :- R_a(X2,Z2,ts), not R_a(X2,Z2,fa), X2 != null, Z2 != null.") {
		t.Errorf("missing aux rule:\n%s", out)
	}
	// Rule 4 for the NNC.
	if !strings.Contains(out, "R_a(x1,x2,fa) :- R_a(x1,x2,ts), x1 = null.") {
		t.Errorf("missing NNC rule:\n%s", out)
	}
	// Rules 5–7.
	for _, want := range []string{
		"R_a(x1,x2,ts) :- R(x1,x2).",
		"R_a(x1,x2,ts) :- R_a(x1,x2,ta).",
		"R_a(x1,x2,tss) :- R_a(x1,x2,ts), not R_a(x1,x2,fa).",
		":- R_a(x1,x2,ta), R_a(x1,x2,fa).",
		"S_a(x1,x2,ts) :- S(x1,x2).",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing rule %q:\n%s", want, out)
		}
	}
}

// --- Example 22: Q'/Q'' combinations -------------------------------------------

func TestExample22QSplitRules(t *testing.T) {
	d := inst(fact("P", s("a"), s("b")), fact("P", s("c"), n()))
	uic := &constraint.IC{
		Name: "u",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("R", v("x")), atom("S", v("y"))},
	}
	nnc := &constraint.NNC{Name: "pnn", Pred: "P", Arity: 2, Pos: 1}
	set := constraint.MustSet([]*constraint.IC{uic}, []*constraint.NNC{nnc})
	tr := mustBuild(t, d, set, VariantPaper)

	// 2^2 = 4 split rules, all with the same head.
	count := 0
	for _, r := range tr.Program.Rules {
		if len(r.Head) == 3 {
			count++
			if r.Head[0].Pred != "P_a" || r.Head[1].Pred != "R_a" || r.Head[2].Pred != "S_a" {
				t.Errorf("unexpected head: %v", r)
			}
		}
	}
	if count != 4 {
		t.Errorf("Q'/Q'' split rules = %d, want 4", count)
	}
	out := tr.Program.String()
	// The all-Q'' split uses base-predicate negation.
	if !strings.Contains(out, "not R(x), not S(y), x != null, y != null") {
		t.Errorf("missing all-Q'' rule:\n%s", out)
	}
	// The NNC rule on the existentially... on P's second attribute.
	if !strings.Contains(out, "P_a(x1,x2,fa) :- P_a(x1,x2,ts), x2 = null.") {
		t.Errorf("missing NNC rule:\n%s", out)
	}
}

// --- Example 23: stable models are the repairs ---------------------------------

func TestExample23StableModels(t *testing.T) {
	d, set := example19()
	tr := mustBuild(t, d, set, VariantPaper)
	insts, models, err := tr.StableRepairs(stable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 4 {
		t.Fatalf("stable models = %d, want 4", len(models))
	}
	d1 := inst(fact("S", s("e"), s("f")), fact("S", n(), s("a")), fact("R", s("a"), s("b")), fact("R", s("f"), n()))
	d2 := inst(fact("S", s("e"), s("f")), fact("S", n(), s("a")), fact("R", s("a"), s("c")), fact("R", s("f"), n()))
	d3 := inst(fact("S", n(), s("a")), fact("R", s("a"), s("b")))
	d4 := inst(fact("S", n(), s("a")), fact("R", s("a"), s("c")))
	if !sameInstanceSets(insts, []*relational.Instance{d1, d2, d3, d4}) {
		t.Errorf("stable repairs = %v", insts)
	}
}

func TestExample23AgainstSearch(t *testing.T) {
	d, set := example19()
	for _, variant := range []Variant{VariantPaper, VariantCorrected} {
		tr := mustBuild(t, d, set, variant)
		insts := stableInstances(t, tr)
		res, err := repair.Repairs(d, set, repair.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameInstanceSets(insts, res.Repairs) {
			t.Errorf("variant %v: stable repairs %v != search repairs %v", variant, insts, res.Repairs)
		}
	}
}

// --- The Definition 9 wrinkle ---------------------------------------------------

func TestDefinition9WrinkleNullWitness(t *testing.T) {
	// D = {P(a), Q(a,null)} with P(x) → ∃y Q(x,y) is consistent
	// (Definition 4), so its only repair is D itself. The verbatim
	// Definition 9 program admits a spurious second stable model that
	// deletes P(a); the corrected variant does not.
	d := inst(fact("P", s("a")), fact("Q", s("a"), n()))
	ric := &constraint.IC{
		Name: "ric",
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("Q", v("x"), v("y"))},
	}
	set := constraint.MustSet([]*constraint.IC{ric}, nil)

	res, err := repair.Repairs(d, set, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Repairs) != 1 || res.Repairs[0].Key() != d.Key() {
		t.Fatalf("search repairs = %v, want {D}", res.Repairs)
	}

	paper := stableInstances(t, mustBuild(t, d, set, VariantPaper))
	if len(paper) != 2 {
		t.Errorf("paper variant instances = %v, expected the documented spurious model", paper)
	}
	corrected := stableInstances(t, mustBuild(t, d, set, VariantCorrected))
	if !sameInstanceSets(corrected, res.Repairs) {
		t.Errorf("corrected variant = %v, want {D}", corrected)
	}
}

// --- Theorem 4: stable models ↔ repairs -----------------------------------------

func theorem4Scenarios() []struct {
	name string
	d    *relational.Instance
	set  *constraint.Set
} {
	ric := func(name string) *constraint.IC {
		return &constraint.IC{
			Name: name,
			Body: []term.Atom{atom("Course", v("id"), v("code"))},
			Head: []term.Atom{atom("Student", v("id"), v("nm"))},
		}
	}
	ex16psi1 := &constraint.IC{
		Name: "psi1",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("Q", v("x"), v("z"))},
	}
	ex16psi2 := &constraint.IC{
		Name: "psi2",
		Body: []term.Atom{atom("Q", v("x"), v("y"))},
		Phi:  []term.Builtin{{Op: term.NEQ, L: v("y"), R: term.CStr("b")}},
	}
	ex17ric := &constraint.IC{
		Name: "ric",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("R", v("x"), v("z"))},
	}
	return []struct {
		name string
		d    *relational.Instance
		set  *constraint.Set
	}{
		{
			name: "example15",
			d: inst(fact("Course", value.Int(21), s("C15")), fact("Course", value.Int(34), s("C18")),
				fact("Student", value.Int(21), s("Ann")), fact("Student", value.Int(45), s("Paul"))),
			set: constraint.MustSet([]*constraint.IC{ric("fk")}, nil),
		},
		{
			name: "example16",
			d:    inst(fact("Q", s("a"), s("b")), fact("P", s("a"), s("c"))),
			set:  constraint.MustSet([]*constraint.IC{ex16psi1, ex16psi2}, nil),
		},
		{
			name: "example17",
			d:    inst(fact("P", s("a"), n()), fact("P", s("b"), s("c")), fact("R", s("a"), s("b"))),
			set:  constraint.MustSet([]*constraint.IC{ex17ric}, nil),
		},
	}
}

func TestTheorem4OnScenarios(t *testing.T) {
	for _, sc := range theorem4Scenarios() {
		if !depgraph.RICAcyclic(sc.set) {
			t.Fatalf("%s: scenario must be RIC-acyclic", sc.name)
		}
		res, err := repair.Repairs(sc.d, sc.set, repair.Options{})
		if err != nil {
			t.Fatal(err)
		}
		insts := stableInstances(t, mustBuild(t, sc.d, sc.set, VariantCorrected))
		if !sameInstanceSets(insts, res.Repairs) {
			t.Errorf("%s: stable %v != search %v", sc.name, insts, res.Repairs)
		}
	}
}

func TestTheorem4Randomized(t *testing.T) {
	// Random instances over a RIC-acyclic set with an FD, a RIC and an
	// NNC: the corrected program's stable models must induce exactly the
	// search repairs.
	fd := constraint.FD("R", 2, []int{0}, []int{1})
	fk := constraint.ForeignKey("S", 2, []int{1}, "R", 2, []int{0})
	nnc := &constraint.NNC{Name: "rkey", Pred: "R", Arity: 2, Pos: 0}
	set := constraint.MustSet(append(fd, fk), []*constraint.NNC{nnc})
	if !depgraph.RICAcyclic(set) {
		t.Fatal("set must be RIC-acyclic")
	}
	vals := []value.V{s("a"), s("b"), n()}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		d := relational.NewInstance()
		for k := 0; k < 1+rng.Intn(3); k++ {
			d.Insert(fact("R", vals[rng.Intn(3)], vals[rng.Intn(3)]))
		}
		for k := 0; k < rng.Intn(3); k++ {
			d.Insert(fact("S", vals[rng.Intn(3)], vals[rng.Intn(3)]))
		}
		res, err := repair.Repairs(d, set, repair.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Build(d, set, VariantCorrected)
		if err != nil {
			t.Fatal(err)
		}
		insts, _, err := tr.StableRepairs(stable.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameInstanceSets(insts, res.Repairs) {
			t.Fatalf("trial %d (D=%v): stable %v != search %v", trial, d, insts, res.Repairs)
		}
	}
}

func TestCyclicRICExample18(t *testing.T) {
	// Example 18's set is RIC-cyclic, outside Theorem 4's guarantee; we
	// record the observed behaviour of the corrected program here.
	d := inst(fact("P", s("a"), s("b")), fact("P", n(), s("a")), fact("T", s("c")))
	uic := &constraint.IC{
		Name: "uic",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("T", v("x"))},
	}
	ric := &constraint.IC{
		Name: "ric",
		Body: []term.Atom{atom("T", v("x"))},
		Head: []term.Atom{atom("P", v("y"), v("x"))},
	}
	set := constraint.MustSet([]*constraint.IC{uic, ric}, nil)
	if depgraph.RICAcyclic(set) {
		t.Fatal("Example 18 must be RIC-cyclic")
	}
	res, err := repair.Repairs(d, set, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	insts := stableInstances(t, mustBuild(t, d, set, VariantCorrected))
	// Every stable-model instance must at least be a repair (soundness
	// direction); completeness is only guaranteed for acyclic sets.
	repairKeys := map[string]bool{}
	for _, r := range res.Repairs {
		repairKeys[r.Key()] = true
	}
	for _, i := range insts {
		if !repairKeys[i.Key()] {
			t.Errorf("stable instance %v is not a repair (repairs: %v)", i, res.Repairs)
		}
	}
	if len(insts) == 0 {
		t.Error("cyclic program yielded no stable models")
	}
}

// --- Theorem 5 / Example 24 -----------------------------------------------------

func TestExample24Bilateral(t *testing.T) {
	// IC = {T(x) → ∃y R(x,y), S(x,y) → T(x)}: bilateral = {T}.
	ic1 := &constraint.IC{
		Name: "ic1",
		Body: []term.Atom{atom("T", v("x"))},
		Head: []term.Atom{atom("R", v("x"), v("y"))},
	}
	ic2 := &constraint.IC{
		Name: "ic2",
		Body: []term.Atom{atom("S", v("x"), v("y"))},
		Head: []term.Atom{atom("T", v("x"))},
	}
	set := constraint.MustSet([]*constraint.IC{ic1, ic2}, nil)
	bp := BilateralPreds(set)
	if len(bp) != 1 || bp[0] != "T" {
		t.Errorf("bilateral = %v, want [T]", bp)
	}
	if !GuaranteedHCF(set) {
		t.Error("Example 24 satisfies Theorem 5's condition")
	}
	// The generated program must indeed be HCF.
	d := inst(fact("T", s("a")), fact("S", s("a"), s("b")))
	tr := mustBuild(t, d, set, VariantPaper)
	gp, err := ground.Ground(tr.Program)
	if err != nil {
		t.Fatal(err)
	}
	if !stable.IsHCF(gp) {
		t.Error("program for Example 24 must be HCF")
	}
}

func TestTheorem5SufficientNotNecessary(t *testing.T) {
	// P(x,y) → P(y,x): two occurrences of the bilateral predicate P;
	// condition fails and the program is genuinely not HCF.
	sym := &constraint.IC{
		Name: "sym",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("P", v("y"), v("x"))},
	}
	set1 := constraint.MustSet([]*constraint.IC{sym}, nil)
	if GuaranteedHCF(set1) {
		t.Error("P(x,y) → P(y,x) must fail Theorem 5's condition")
	}
	d1 := inst(fact("P", s("a"), s("b")))
	tr1 := mustBuild(t, d1, set1, VariantPaper)
	gp1, err := ground.Ground(tr1.Program)
	if err != nil {
		t.Fatal(err)
	}
	if stable.IsHCF(gp1) {
		t.Error("program for P(x,y) → P(y,x) should not be HCF")
	}

	// P(x,a) → P(x,b): condition also fails, but the ground program is
	// HCF — the condition is sufficient, not necessary.
	shift := &constraint.IC{
		Name: "shift",
		Body: []term.Atom{atom("P", v("x"), term.CStr("a"))},
		Head: []term.Atom{atom("P", v("x"), term.CStr("b"))},
	}
	set2 := constraint.MustSet([]*constraint.IC{shift}, nil)
	if GuaranteedHCF(set2) {
		t.Error("P(x,a) → P(x,b) must fail the syntactic condition")
	}
	d2 := inst(fact("P", s("q"), s("a")))
	tr2 := mustBuild(t, d2, set2, VariantPaper)
	gp2, err := ground.Ground(tr2.Program)
	if err != nil {
		t.Fatal(err)
	}
	if !stable.IsHCF(gp2) {
		t.Error("program for P(x,a) → P(x,b) must be HCF")
	}
}

func TestDenialOnlySetsAreHCF(t *testing.T) {
	// Corollary 1: denial-constraint programs are HCF.
	den := constraint.Denial("d", atom("P", v("x")), atom("Q", v("x")))
	set := constraint.MustSet([]*constraint.IC{den}, nil)
	if !GuaranteedHCF(set) {
		t.Error("denial sets have no bilateral predicates")
	}
	d := inst(fact("P", s("a")), fact("Q", s("a")))
	tr := mustBuild(t, d, set, VariantPaper)
	gp, err := ground.Ground(tr.Program)
	if err != nil {
		t.Fatal(err)
	}
	if !stable.IsHCF(gp) {
		t.Error("denial program must be HCF")
	}
	// And the shift preserves its stable models.
	ms, err := stable.Models(gp, stable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sms, err := stable.Models(stable.Shift(gp), stable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(sms) {
		t.Errorf("shift changed model count: %d vs %d", len(ms), len(sms))
	}
}

// --- Misc -----------------------------------------------------------------------

func TestBuildRejectsConflictingAndGeneral(t *testing.T) {
	ric := &constraint.IC{
		Name: "ric",
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("Q", v("x"), v("y"))},
	}
	conflicting := constraint.MustSet([]*constraint.IC{ric},
		[]*constraint.NNC{{Pred: "Q", Arity: 2, Pos: 1}})
	if _, err := Build(inst(), conflicting, VariantPaper); err == nil {
		t.Error("conflicting set accepted")
	}

	general := &constraint.IC{
		Name: "gen",
		Body: []term.Atom{atom("P", v("x")), atom("S", v("x"))},
		Head: []term.Atom{atom("Q", v("x"), v("y"))},
	}
	set := constraint.MustSet([]*constraint.IC{general}, nil)
	if _, err := Build(inst(), set, VariantPaper); err == nil {
		t.Error("general existential constraint accepted")
	}
}

func TestInterpretIgnoresBaseAtoms(t *testing.T) {
	d := inst(fact("P", s("tss"))) // a value that looks like an annotation
	set := constraint.MustSet([]*constraint.IC{
		{Name: "u", Body: []term.Atom{atom("P", v("x"))}, Head: []term.Atom{atom("Q", v("x"))}},
	}, nil)
	tr := mustBuild(t, d, set, VariantPaper)
	insts := stableInstances(t, tr)
	for _, i := range insts {
		for _, f := range i.Facts() {
			if strings.HasSuffix(f.Pred, AnnSuffix) {
				t.Errorf("annotated predicate leaked into instance: %v", f)
			}
		}
	}
}

func TestRenderAndDLV(t *testing.T) {
	d, set := example19()
	tr := mustBuild(t, d, set, VariantCorrected)
	if !strings.Contains(tr.Render(), "variant=corrected") {
		t.Error("Render missing variant")
	}
	dlv := tr.Program.DLV()
	if !strings.Contains(dlv, "r_a(") && !strings.Contains(dlv, `"R_a"(`) {
		t.Errorf("DLV export looks wrong:\n%s", dlv)
	}
}

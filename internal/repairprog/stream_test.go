package repairprog

import (
	"testing"

	"repro/internal/relational"
	"repro/internal/stable"
)

// TestStreamRepairsMatchesMaterialized checks the streaming entry point
// against its materialized wrapper: the streamed (instance, model) pairs
// dedup to exactly the StableRepairs instance set, in a deterministic
// stream order, at every worker count.
func TestStreamRepairsMatchesMaterialized(t *testing.T) {
	d, set := example19()
	tr := mustBuild(t, d, set, VariantCorrected)
	want := stableInstances(t, tr)

	var sequential []string
	for _, workers := range []int{1, 4} {
		var streamed []string
		seen := map[string]bool{}
		if err := tr.StreamRepairs(stable.Options{Workers: workers}, func(inst *relational.Instance, delta relational.Delta, m stable.Model) bool {
			if len(m) == 0 {
				t.Fatal("empty stable model streamed")
			}
			if got := relational.Diff(d, inst); !deltasEqual(got, delta) {
				t.Fatalf("emitted delta %v does not match Diff %v", delta, got)
			}
			key := inst.Key()
			streamed = append(streamed, key)
			seen[key] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(want) {
			t.Fatalf("workers=%d: %d distinct streamed repairs, want %d", workers, len(seen), len(want))
		}
		for _, w := range want {
			if !seen[w.Key()] {
				t.Errorf("workers=%d: repair %v never streamed", workers, w)
			}
		}
		// The stream — content and order — must not depend on workers.
		if workers == 1 {
			sequential = streamed
		} else if len(streamed) != len(sequential) {
			t.Fatalf("workers=%d: stream length %d differs from sequential %d", workers, len(streamed), len(sequential))
		} else {
			for i := range streamed {
				if streamed[i] != sequential[i] {
					t.Fatalf("workers=%d: stream diverges at %d", workers, i)
				}
			}
		}
	}
}

// TestStreamRepairsCancel checks that yield returning false stops the
// stream without an error — the hook core's boolean short-circuit rides on.
func TestStreamRepairsCancel(t *testing.T) {
	d, set := example19()
	tr := mustBuild(t, d, set, VariantCorrected)
	calls := 0
	if err := tr.StreamRepairs(stable.Options{}, func(_ *relational.Instance, _ relational.Delta, _ stable.Model) bool {
		calls++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("yield ran %d times after immediate cancellation", calls)
	}
}

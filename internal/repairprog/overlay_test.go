package repairprog

import (
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/ground"
	"repro/internal/relational"
	"repro/internal/stable"
	"repro/internal/value"
)

func deltasEqual(a, b relational.Delta) bool {
	if len(a.Removed) != len(b.Removed) || len(a.Added) != len(b.Added) {
		return false
	}
	for i := range a.Removed {
		if a.Removed[i].Compare(b.Removed[i]) != 0 {
			return false
		}
	}
	for i := range a.Added {
		if a.Added[i].Compare(b.Added[i]) != 0 {
			return false
		}
	}
	return true
}

func factsEqual(a, b []relational.Fact) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}

// TestInterpretDeltaMatchesInterpret is the tentpole's byte-identity pin:
// on randomized instances, every stable model's overlay repair must carry
// exactly the materialized Interpret instance — same Facts(), and a Delta()
// that matches both the emitted delta and Diff against the base — with the
// stream identical across worker counts, under both pruning modes.
func TestInterpretDeltaMatchesInterpret(t *testing.T) {
	fd := constraint.FD("R", 2, []int{0}, []int{1})
	fk := constraint.ForeignKey("S", 2, []int{1}, "R", 2, []int{0})
	nnc := &constraint.NNC{Name: "rkey", Pred: "R", Arity: 2, Pos: 0}
	set := constraint.MustSet(append(fd, fk), []*constraint.NNC{nnc})
	vals := []value.V{s("a"), s("b"), n()}
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		d := relational.NewInstance()
		for k := 0; k < 1+rng.Intn(3); k++ {
			d.Insert(fact("R", vals[rng.Intn(3)], vals[rng.Intn(3)]))
		}
		for k := 0; k < rng.Intn(3); k++ {
			d.Insert(fact("S", vals[rng.Intn(3)], vals[rng.Intn(3)]))
		}
		// Unconstrained bulk: pruned to passthrough when pruning is on,
		// annotated (rules 5–7 only) when off — both must ride along.
		for k := 0; k < rng.Intn(4); k++ {
			d.Insert(fact("T", value.Int(int64(k))))
		}
		for _, prune := range []bool{false, true} {
			tr, err := BuildWith(d, set, BuildOptions{Variant: VariantCorrected, PruneUnconstrained: prune})
			if err != nil {
				t.Fatal(err)
			}
			gp, err := ground.Ground(tr.Program)
			if err != nil {
				t.Fatal(err)
			}
			reader := tr.NewModelReader(gp)
			if err := stable.Enumerate(gp, stable.Options{}, func(m stable.Model) bool {
				want := tr.Interpret(gp, m)
				inst, delta := reader.Repair(m)
				if !factsEqual(inst.Facts(), want.Facts()) {
					t.Fatalf("trial %d prune=%v: overlay facts %v != materialized %v (model %v)",
						trial, prune, inst.Facts(), want.Facts(), m)
				}
				if diff := relational.Diff(d, want); !deltasEqual(delta, diff) {
					t.Fatalf("trial %d prune=%v: emitted delta %v != Diff %v", trial, prune, delta, diff)
				}
				if own := inst.Delta(); !deltasEqual(own, delta) {
					t.Fatalf("trial %d prune=%v: overlay Delta() %v != emitted delta %v", trial, prune, own, delta)
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}

			// The (instance, delta) stream is identical at every worker
			// count, including content order.
			var sequential []string
			for _, workers := range []int{1, 4} {
				var stream []string
				if err := tr.StreamRepairs(stable.Options{Workers: workers}, func(inst *relational.Instance, delta relational.Delta, _ stable.Model) bool {
					stream = append(stream, inst.Key())
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if workers == 1 {
					sequential = stream
					continue
				}
				if len(stream) != len(sequential) {
					t.Fatalf("trial %d prune=%v workers=%d: stream length %d != %d",
						trial, prune, workers, len(stream), len(sequential))
				}
				for i := range stream {
					if stream[i] != sequential[i] {
						t.Fatalf("trial %d prune=%v workers=%d: stream diverges at %d",
							trial, prune, workers, i)
					}
				}
			}
		}
	}
}

// TestInterpretDeltaCutoff pins the MaxCandidates cutoff point: the overlay
// stream must deliver the same prefix and the same error as the materialized
// interpretation at every worker count, for budgets straddling the cutoff.
func TestInterpretDeltaCutoff(t *testing.T) {
	d, set := example19()
	tr := mustBuild(t, d, set, VariantCorrected)
	for _, budget := range []int{1, 2, 3, 5, 8, 100} {
		type outcome struct {
			keys []string
			err  error
		}
		collect := func(workers int) outcome {
			var out outcome
			out.err = tr.StreamRepairs(stable.Options{MaxCandidates: budget, Workers: workers},
				func(inst *relational.Instance, _ relational.Delta, _ stable.Model) bool {
					out.keys = append(out.keys, inst.Key())
					return true
				})
			return out
		}
		seq := collect(1)
		for _, workers := range []int{2, 4} {
			par := collect(workers)
			if seq.err != par.err {
				t.Fatalf("budget=%d workers=%d: err %v != sequential %v", budget, workers, par.err, seq.err)
			}
			if len(par.keys) != len(seq.keys) {
				t.Fatalf("budget=%d workers=%d: %d repairs != sequential %d", budget, workers, len(par.keys), len(seq.keys))
			}
			for i := range par.keys {
				if par.keys[i] != seq.keys[i] {
					t.Fatalf("budget=%d workers=%d: stream diverges at %d", budget, workers, i)
				}
			}
		}
	}
}

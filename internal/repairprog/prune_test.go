package repairprog

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/ground"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/stable"
	"repro/internal/term"
	"repro/internal/value"
)

func i(x int64) value.V { return value.Int(x) }

func mustQuery(t *testing.T, src string) *query.Q {
	t.Helper()
	q, err := parser.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestPruneUnconstrained(t *testing.T) {
	d := inst(
		fact("r", s("a"), s("b")),
		fact("r", s("a"), s("c")),
		fact("s", s("e"), s("f")),
		fact("audit", s("x"), i(1)),
		fact("audit", s("y"), i(2)),
	)
	fd := constraint.FD("r", 2, []int{0}, []int{1})
	fk := constraint.ForeignKey("s", 2, []int{1}, "r", 2, []int{0})
	set := constraint.MustSet(append(fd, fk), nil)

	full, err := Build(d, set, VariantCorrected)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := BuildWith(d, set, BuildOptions{Variant: VariantCorrected, PruneUnconstrained: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Program.Rules) >= len(full.Program.Rules) {
		t.Errorf("pruning did not shrink the program: %d vs %d rules",
			len(pruned.Program.Rules), len(full.Program.Rules))
	}
	if strings.Contains(pruned.Program.String(), "audit_a(") {
		t.Error("pruned program still annotates the unconstrained predicate")
	}

	fullInsts, _, err := full.StableRepairs(stable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prunedInsts, _, err := pruned.StableRepairs(stable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fullInsts) != len(prunedInsts) {
		t.Fatalf("pruning changed the repairs: %d vs %d", len(fullInsts), len(prunedInsts))
	}
	keys := map[string]bool{}
	for _, r := range fullInsts {
		keys[r.Key()] = true
	}
	for _, r := range prunedInsts {
		if !keys[r.Key()] {
			t.Errorf("pruned repair %v missing from the full program's repairs", r)
		}
		// The audit relation must survive verbatim.
		if len(r.Relation("audit", 2)) != 2 {
			t.Errorf("repair %v lost audit facts", r)
		}
	}

	fullGP, err := ground.Ground(full.Program)
	if err != nil {
		t.Fatal(err)
	}
	prunedGP, err := ground.Ground(pruned.Program)
	if err != nil {
		t.Fatal(err)
	}
	if prunedGP.NumAtoms() >= fullGP.NumAtoms() {
		t.Errorf("pruning did not shrink the ground program: %d vs %d atoms",
			prunedGP.NumAtoms(), fullGP.NumAtoms())
	}
}

func TestPruneWithoutUnconstrainedPredsIsIdentity(t *testing.T) {
	d, set := example19()
	full, err := Build(d, set, VariantPaper)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := BuildWith(d, set, BuildOptions{Variant: VariantPaper, PruneUnconstrained: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Program.String() != pruned.Program.String() {
		t.Error("pruning changed a program with no unconstrained predicates")
	}
}

func TestQueryRules(t *testing.T) {
	d := inst(fact("r", s("a"), s("b")), fact("audit", s("x"), i(1)))
	set := constraint.MustSet(constraint.FD("r", 2, []int{0}, []int{1}), nil)
	tr, err := BuildWith(d, set, BuildOptions{Variant: VariantCorrected, PruneUnconstrained: true})
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, `q(X) :- r(X, Y), not audit(X, Y), Y != b.`)
	rules, err := tr.QueryRules(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("rules = %v", rules)
	}
	r := rules[0]
	if r.Head[0].Pred != AnswerPred {
		t.Errorf("head = %v", r.Head)
	}
	// Constrained predicate r goes through the t** annotation;
	// unconstrained audit stays a base atom.
	if r.Pos[0].Pred != "r"+AnnSuffix {
		t.Errorf("positive literal = %v, want annotated", r.Pos[0])
	}
	if !r.Pos[0].Args[len(r.Pos[0].Args)-1].Equal(term.C(TSS)) {
		t.Errorf("annotation = %v, want tss", r.Pos[0])
	}
	if r.Neg[0].Pred != "audit" {
		t.Errorf("negated literal = %v, want base predicate", r.Neg[0])
	}
	if len(r.Builtins) != 1 {
		t.Errorf("builtins = %v", r.Builtins)
	}
}

func TestWithQueryBuildsValidProgram(t *testing.T) {
	d, set := example19()
	tr, err := Build(d, set, VariantCorrected)
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, `q(V) :- s(U, V).`)
	prog, err := tr.WithQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != len(tr.Program.Rules)+1 {
		t.Errorf("rules = %d, want %d", len(prog.Rules), len(tr.Program.Rules)+1)
	}
	// Unsafe query rules are rejected.
	bad := &query.Q{Name: "q", Head: []string{"X"},
		Disjuncts: []query.Conj{{Lits: []query.Literal{{Atom: term.NewAtom("r", term.V("X"), term.V("Y")), Neg: true}}}}}
	if _, err := tr.QueryRules(bad); err == nil {
		t.Error("unsafe query accepted")
	}
}

// Package repairprog builds the repair logic programs of Definition 9: for
// a database D and a set IC of universal constraints, referential
// constraints and NOT NULL-constraints, a disjunctive program Π(D, IC)
// whose stable models correspond to the repairs of D for RIC-acyclic IC
// (Theorem 4). It also implements the bilateral-predicate analysis of
// Definition 11 and the sufficient head-cycle-freeness condition of
// Theorem 5.
//
// Annotated predicates carry an extra final attribute holding one of the
// annotation constants (the paper's ta, fa, t*, t**); their names get an
// "_a" suffix so annotated relations can never collide with base relations
// regardless of the data values.
//
// # Known wrinkle of Definition 9 (documented deviation)
//
// The aux rules of Definition 9 require every existential attribute of a
// witness tuple to be non-null. That keeps inserted null-padded witnesses
// from deriving aux and destroying their own justification, but it also
// means an original fact with a null in an existential position — which
// satisfies the constraint under Definition 4 — cannot witness it either,
// and the program gains a spurious stable model that instead deletes the
// referencing tuple. VariantPaper reproduces the definition verbatim
// (matching Examples 21–23); VariantCorrected adds, per RIC, the rule
//
//	aux(x̄′) ← Q(x̄′, ȳ), not Q_a(x̄′, ȳ, fa), x̄′ ≠ null
//
// which lets original facts (any null pattern in ȳ) act as witnesses while
// inserted atoms remain governed by the paper's rules. With the corrected
// variant the Theorem 4 correspondence holds on all our test instances,
// including the discriminating ones.
package repairprog

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/constraint"
	"repro/internal/ground"
	"repro/internal/logic"
	"repro/internal/relational"
	"repro/internal/stable"
	"repro/internal/term"
	"repro/internal/value"
)

// Annotation constants (the paper's ta, fa, t*, t**).
var (
	TA  = value.Str("ta")
	FA  = value.Str("fa")
	TS  = value.Str("ts")
	TSS = value.Str("tss")
)

// AnnSuffix distinguishes annotated predicate names from base relations.
const AnnSuffix = "_a"

// Variant selects the aux-rule treatment.
type Variant uint8

const (
	// VariantPaper is Definition 9 verbatim.
	VariantPaper Variant = iota
	// VariantCorrected adds the fact-based aux rule (see package doc).
	VariantCorrected
)

func (v Variant) String() string {
	if v == VariantCorrected {
		return "corrected"
	}
	return "paper"
}

// Translation is a generated repair program with the metadata needed to
// read repairs back from its stable models.
type Translation struct {
	Program *logic.Program
	Set     *constraint.Set
	Variant Variant
	// GroundOptions configures how Π(D, IC) is grounded. It must be set
	// before the first call of BaseGrounding (directly or via
	// StreamRepairs/GroundWithQuery); later changes have no effect, since
	// the grounding is computed once and cached.
	GroundOptions ground.Options
	// base is the instance D the program was built from. Streamed repairs
	// are emitted as copy-on-write overlays of it (see ModelReader), so it
	// must not be mutated while the translation is in use.
	base *relational.Instance
	// annToBase maps annotated predicate names to their base predicate.
	annToBase map[string]string
	// annotated records the base predicates carrying rules 5–7; nil
	// means "all of them" (no pruning).
	annotated map[string]bool
	// passthrough records the predicates whose base facts are copied
	// verbatim into every repair (pruned unconstrained predicates).
	passthrough map[string]bool

	// groundOnce guards the cached grounding of Π(D, IC), shared by every
	// repair stream and query of this translation.
	groundOnce sync.Once
	groundProg *ground.Program
	groundErr  error
}

// BuildOptions configures program generation.
type BuildOptions struct {
	Variant Variant
	// PruneUnconstrained drops the annotation rules 5–7 for predicates
	// that occur in no constraint: such relations are untouched by every
	// repair, so their facts can be copied into D_M directly. This is
	// the spirit of the repair-program optimizations of Caniupán &
	// Bertossi (SCCC 2005, the paper's [12]): smaller programs, smaller
	// groundings, same stable-model repairs.
	PruneUnconstrained bool
}

// annAtom returns the annotated version of atom a with the given
// annotation constant.
func annAtom(a term.Atom, ann value.V) term.Atom {
	args := make([]term.T, 0, len(a.Args)+1)
	args = append(args, a.Args...)
	args = append(args, term.C(ann))
	return term.Atom{Pred: a.Pred + AnnSuffix, Args: args}
}

// freshVars returns the variable terms prefix1..prefixN.
func freshVars(prefix string, n int) []term.T {
	out := make([]term.T, n)
	for i := range out {
		out[i] = term.V(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return out
}

// Build translates (D, IC) into the repair program Π(D, IC). It returns an
// error if the set contains constraints outside Definition 9's scope
// (general existential constraints with multiple body or head atoms) or if
// the set is conflicting.
func Build(d *relational.Instance, set *constraint.Set, variant Variant) (*Translation, error) {
	return BuildWith(d, set, BuildOptions{Variant: variant})
}

// BuildWith is Build with explicit options.
func BuildWith(d *relational.Instance, set *constraint.Set, opts BuildOptions) (*Translation, error) {
	variant := opts.Variant
	if !set.NonConflicting() {
		return nil, fmt.Errorf("repairprog: conflicting IC set: %v", set.Conflicts()[0])
	}
	tr := &Translation{
		Program:   &logic.Program{},
		Set:       set,
		Variant:   variant,
		base:      d,
		annToBase: map[string]string{},
	}
	if opts.PruneUnconstrained {
		tr.annotated = map[string]bool{}
		tr.passthrough = map[string]bool{}
		for _, sig := range set.Preds() {
			tr.annotated[sig.Name] = true
		}
		for _, rk := range d.RelKeys() {
			if !tr.annotated[rk.Pred] {
				tr.passthrough[rk.Pred] = true
			}
		}
	}

	// Rule 1: facts.
	tr.Program.AddInstance(d)

	for _, ic := range set.ICs {
		switch ic.Classify() {
		case constraint.ClassUIC:
			tr.addUIC(ic)
		case constraint.ClassRIC:
			tr.addRIC(ic)
		default:
			return nil, fmt.Errorf("repairprog: constraint %s is outside Definition 9's class (general existential constraint)", ic.Name)
		}
	}

	// Rule 4: NNCs.
	for _, n := range set.NNCs {
		vars := freshVars("x", n.Arity)
		base := term.Atom{Pred: n.Pred, Args: vars}
		tr.notePred(n.Pred)
		tr.Program.Rules = append(tr.Program.Rules, logic.Rule{
			Head:     []term.Atom{annAtom(base, FA)},
			Pos:      []term.Atom{annAtom(base, TS)},
			Builtins: []term.Builtin{{Op: term.EQ, L: vars[n.Pos], R: term.CNull()}},
		})
	}

	// Rules 5–7 for every predicate of the constraints and the instance
	// (constrained predicates only when pruning).
	for _, sig := range tr.allPreds(d) {
		if tr.annotated != nil && !tr.annotated[sig.Name] {
			continue
		}
		vars := freshVars("x", sig.Arity)
		base := term.Atom{Pred: sig.Name, Args: vars}
		tr.notePred(sig.Name)
		tr.Program.Rules = append(tr.Program.Rules,
			// Rule 5: t* holds for facts and for advised insertions.
			logic.Rule{Head: []term.Atom{annAtom(base, TS)}, Pos: []term.Atom{base}},
			logic.Rule{Head: []term.Atom{annAtom(base, TS)}, Pos: []term.Atom{annAtom(base, TA)}},
			// Rule 6: t** holds for what is (or becomes) true and is
			// not advised false.
			logic.Rule{
				Head: []term.Atom{annAtom(base, TSS)},
				Pos:  []term.Atom{annAtom(base, TS)},
				Neg:  []term.Atom{annAtom(base, FA)},
			},
			// Rule 7: the program denial.
			logic.Rule{Pos: []term.Atom{annAtom(base, TA), annAtom(base, FA)}},
		)
	}
	if err := tr.Program.Validate(); err != nil {
		return nil, fmt.Errorf("repairprog: generated an invalid program: %v", err)
	}
	return tr, nil
}

func (tr *Translation) notePred(name string) {
	tr.annToBase[name+AnnSuffix] = name
}

// allPreds collects predicate signatures from the constraint set and the
// instance (repairs leave unconstrained relations untouched, but rule 6
// must still annotate their atoms with t**).
func (tr *Translation) allPreds(d *relational.Instance) []constraint.PredSig {
	seen := map[constraint.PredSig]bool{}
	var out []constraint.PredSig
	add := func(sig constraint.PredSig) {
		if !seen[sig] {
			seen[sig] = true
			out = append(out, sig)
		}
	}
	for _, sig := range tr.Set.Preds() {
		add(sig)
	}
	for _, rk := range d.RelKeys() {
		add(constraint.PredSig{Name: rk.Pred, Arity: rk.Arity})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// addUIC emits the rules 2 of Definition 9: one rule per split of the
// consequent atoms into Q′ (advised false) and Q″ (not originally true).
func (tr *Translation) addUIC(ic *constraint.IC) {
	relevantVars := ic.RelevantBodyVars()
	n := len(ic.Head)
	for mask := 0; mask < 1<<n; mask++ {
		var r logic.Rule
		for _, b := range ic.Body {
			tr.notePred(b.Pred)
			r.Head = append(r.Head, annAtom(b, FA))
			r.Pos = append(r.Pos, annAtom(b, TS))
		}
		for j, h := range ic.Head {
			tr.notePred(h.Pred)
			r.Head = append(r.Head, annAtom(h, TA))
			if mask&(1<<j) != 0 {
				r.Pos = append(r.Pos, annAtom(h, FA)) // Q′
			} else {
				r.Neg = append(r.Neg, h) // Q″: not originally true
			}
		}
		for _, v := range relevantVars {
			r.Builtins = append(r.Builtins, term.Builtin{Op: term.NEQ, L: term.V(v), R: term.CNull()})
		}
		for _, phi := range ic.Phi {
			r.Builtins = append(r.Builtins, phi.Negate()) // ϕ̄
		}
		tr.Program.Rules = append(tr.Program.Rules, r)
	}
}

// addRIC emits the rules 3 of Definition 9 (plus the corrected aux rule
// when selected).
func (tr *Translation) addRIC(ic *constraint.IC) {
	parts, ok := ic.RICParts()
	if !ok {
		panic("repairprog: addRIC on non-RIC")
	}
	body, head := parts.BodyAtom, parts.HeadAtom
	tr.notePred(body.Pred)
	tr.notePred(head.Pred)

	// x̄′: the shared terms, in head-position order.
	shared := make([]term.T, 0, len(parts.SharedPos))
	var sharedVars []string
	seenVar := map[string]bool{}
	for _, p := range parts.SharedPos {
		t := head.Args[p]
		shared = append(shared, t)
		if t.IsVar() && !seenVar[t.Var] {
			seenVar[t.Var] = true
			sharedVars = append(sharedVars, t.Var)
		}
	}
	auxName := "aux_" + ic.Name
	auxAtom := term.Atom{Pred: auxName, Args: shared}

	// Null-padded insertion head: existential positions become null.
	padded := head.Clone()
	for _, p := range parts.ExistPos {
		padded.Args[p] = term.CNull()
	}

	sharedGuards := make([]term.Builtin, 0, len(sharedVars))
	for _, v := range sharedVars {
		sharedGuards = append(sharedGuards, term.Builtin{Op: term.NEQ, L: term.V(v), R: term.CNull()})
	}

	// Main rule: P(x̄,fa) ∨ Q(x̄′,null,ta) ← P(x̄,t*), not aux(x̄′), x̄′ ≠ null.
	tr.Program.Rules = append(tr.Program.Rules, logic.Rule{
		Head:     []term.Atom{annAtom(body, FA), annAtom(padded, TA)},
		Pos:      []term.Atom{annAtom(body, TS)},
		Neg:      []term.Atom{auxAtom},
		Builtins: sharedGuards,
	})

	// aux rules, one per distinct existential variable (Definition 9):
	// aux(x̄′) ← Q(x̄′,ȳ,t*), not Q(x̄′,ȳ,fa), x̄′ ≠ null, yi ≠ null.
	var existVars []string
	seenExist := map[string]bool{}
	for _, p := range parts.ExistPos {
		v := head.Args[p].Var
		if !seenExist[v] {
			seenExist[v] = true
			existVars = append(existVars, v)
		}
	}
	for _, y := range existVars {
		builtins := append(append([]term.Builtin{}, sharedGuards...),
			term.Builtin{Op: term.NEQ, L: term.V(y), R: term.CNull()})
		tr.Program.Rules = append(tr.Program.Rules, logic.Rule{
			Head:     []term.Atom{auxAtom},
			Pos:      []term.Atom{annAtom(head, TS)},
			Neg:      []term.Atom{annAtom(head, FA)},
			Builtins: builtins,
		})
	}

	if tr.Variant == VariantCorrected {
		// aux(x̄′) ← Q(x̄′,ȳ), not Q(x̄′,ȳ,fa), x̄′ ≠ null: original
		// facts witness regardless of nulls in existential positions.
		tr.Program.Rules = append(tr.Program.Rules, logic.Rule{
			Head:     []term.Atom{auxAtom},
			Pos:      []term.Atom{head},
			Neg:      []term.Atom{annAtom(head, FA)},
			Builtins: sharedGuards,
		})
	}
}

// Interpret extracts the database instance D_M of Definition 10 from a
// stable model: the atoms annotated t**, plus the base facts of pruned
// unconstrained predicates (which every repair preserves verbatim).
func (tr *Translation) Interpret(gp *ground.Program, m stable.Model) *relational.Instance {
	out := relational.NewInstance()
	for _, id := range m {
		f := gp.Atoms[id]
		if tr.passthrough[f.Pred] {
			out.Insert(f)
			continue
		}
		base, ok := tr.annToBase[f.Pred]
		if !ok || len(f.Args) == 0 {
			continue
		}
		if !f.Args[len(f.Args)-1].Eq(TSS) {
			continue
		}
		out.Insert(relational.Fact{Pred: base, Args: f.Args[:len(f.Args)-1]})
	}
	return out
}

// StreamRepairs grounds the program and streams each stable model with the
// database instance D_M it induces (Definition 10) and its delta against
// the base, as the model arrives from stable.Enumerate — the first repair
// candidate is observable before the model enumeration completes, so
// boolean CQA can cancel the rest. The instance is a copy-on-write overlay
// of the base D (see ModelReader), built and delivered in O(|Δ|) per model.
// Distinct models can induce the same instance; deduplication is the
// caller's concern. yield returning false cancels the enumeration (nil
// error), mirroring the streaming contract of repair.Enumerate.
func (tr *Translation) StreamRepairs(opts stable.Options, yield func(inst *relational.Instance, delta relational.Delta, m stable.Model) bool) error {
	return tr.StreamRepairsCtx(context.Background(), opts, yield)
}

// StreamRepairsCtx is StreamRepairs under a context: cancellation aborts the
// underlying stable-model enumeration (see stable.EnumerateCtx) and returns
// ctx.Err(). The cached base grounding is never poisoned by cancellation —
// it either completed (and is reused by the next call) or the sync.Once
// never ran.
func (tr *Translation) StreamRepairsCtx(ctx context.Context, opts stable.Options, yield func(inst *relational.Instance, delta relational.Delta, m stable.Model) bool) error {
	gp, err := tr.BaseGrounding()
	if err != nil {
		return err
	}
	reader := tr.NewModelReader(gp)
	return stable.EnumerateCtx(ctx, gp, opts, func(m stable.Model) bool {
		inst, delta := reader.Repair(m)
		return yield(inst, delta, m)
	})
}

// AffectedBy reports whether a base update invalidates this translation:
// true iff some changed fact belongs to an annotated relation, whose facts
// are compiled into the program (rule 1) and its cached grounding. For an
// unpruned translation every relation is annotated, so any non-empty delta
// invalidates it; a pruned translation survives updates that touch only
// passthrough (unconstrained) relations.
func (tr *Translation) AffectedBy(delta relational.Delta) bool {
	touched := func(fs []relational.Fact) bool {
		for _, f := range fs {
			if tr.annotates(f.Pred) {
				return true
			}
		}
		return false
	}
	return touched(delta.Removed) || touched(delta.Added)
}

// Rebase swaps the translation's base for newBase, where delta is the
// change between the two. It refuses (returns false) when AffectedBy(delta)
// — the compiled program would be stale — and otherwise repoints the base
// and registers any newly appearing relations as passthrough, leaving the
// program and its cached grounding intact.
//
// After a rebase, repair streams are coherent: ModelReader rebuilds its
// edit lists from the current base per call, edits touch only annotated
// relations, and passthrough facts ride the new base. The one stale
// surface is GroundWithQuery: query rules mentioning a drifted passthrough
// relation ground its atoms against the retained snapshot, so callers must
// track which passthrough relations have drifted since Build and rebuild
// the translation before compiling such a query.
func (tr *Translation) Rebase(newBase *relational.Instance, delta relational.Delta) bool {
	if tr.AffectedBy(delta) {
		return false
	}
	tr.base = newBase
	if tr.passthrough != nil {
		for _, f := range delta.Added {
			if !tr.annotates(f.Pred) {
				tr.passthrough[f.Pred] = true
			}
		}
	}
	return true
}

// BaseGrounding grounds Π(D, IC) once per Translation and caches the
// result; every repair stream and query of the translation shares it. The
// returned program retains its grounding snapshot, so per-query rules can
// be grounded against it with ground.Extend instead of re-grounding the
// repair program. Safe for concurrent use.
func (tr *Translation) BaseGrounding() (*ground.Program, error) {
	tr.groundOnce.Do(func() {
		tr.groundProg, tr.groundErr = ground.GroundBase(tr.Program, tr.GroundOptions)
	})
	return tr.groundProg, tr.groundErr
}

// StableRepairs materializes the stream: the distinct database instances
// induced by the stable models, in content-canonical order, along with the
// models themselves (in stream order). Dedup goes through fingerprints
// confirmed by Equal; since every streamed repair is an overlay of one
// shared base, each confirm costs O(|Δ|), not an O(|D|) key encoding.
func (tr *Translation) StableRepairs(opts stable.Options) ([]*relational.Instance, []stable.Model, error) {
	return tr.StableRepairsCtx(context.Background(), opts)
}

// StableRepairsCtx is StableRepairs under a context (see StreamRepairsCtx).
func (tr *Translation) StableRepairsCtx(ctx context.Context, opts stable.Options) ([]*relational.Instance, []stable.Model, error) {
	var models []stable.Model
	seen := relational.NewInstanceSet()
	var out []*relational.Instance
	if err := tr.StreamRepairsCtx(ctx, opts, func(inst *relational.Instance, _ relational.Delta, m stable.Model) bool {
		models = append(models, m)
		if seen.Add(inst) {
			out = append(out, inst)
		}
		return true
	}); err != nil {
		return nil, nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, models, nil
}

// BilateralPreds returns the predicates that occur in the antecedent of
// some constraint and in the consequent of some (possibly the same)
// constraint — Definition 11.
func BilateralPreds(set *constraint.Set) []string {
	inBody := map[string]bool{}
	inHead := map[string]bool{}
	for _, ic := range set.ICs {
		for _, a := range ic.Body {
			inBody[a.Pred] = true
		}
		for _, a := range ic.Head {
			inHead[a.Pred] = true
		}
	}
	var out []string
	for p := range inBody {
		if inHead[p] {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// GuaranteedHCF implements Theorem 5's sufficient condition: every
// constraint has at most one occurrence of a bilateral predicate. The
// condition is sufficient but not necessary (the paper's P(x,a) → P(x,b)
// example fails the condition yet grounds to an HCF program).
func GuaranteedHCF(set *constraint.Set) bool {
	bilateral := map[string]bool{}
	for _, p := range BilateralPreds(set) {
		bilateral[p] = true
	}
	for _, ic := range set.ICs {
		occurrences := 0
		for _, a := range ic.Body {
			if bilateral[a.Pred] {
				occurrences++
			}
		}
		for _, a := range ic.Head {
			if bilateral[a.Pred] {
				occurrences++
			}
		}
		if occurrences > 1 {
			return false
		}
	}
	return true
}

// Render prints the program with a rule-group commentary matching
// Definition 9's numbering, for cmd/repairgen and the examples.
func (tr *Translation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%% repair program Π(D, IC), variant=%s\n", tr.Variant)
	fmt.Fprintf(&b, "%% annotations: ta=advised true, fa=advised false, ts=t*, tss=t**\n")
	b.WriteString(tr.Program.String())
	return b.String()
}

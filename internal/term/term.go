// Package term provides the shared first-order building blocks of the paper's
// languages: terms (variables or domain constants), predicate atoms, builtin
// comparison atoms, and substitutions. Constraints (internal/constraint),
// queries (internal/query) and logic programs (internal/logic) are all built
// from these.
package term

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// T is a term: either a variable (Var != "") or a domain constant.
type T struct {
	Var   string
	Const value.V
}

// V returns a variable term.
func V(name string) T { return T{Var: name} }

// C returns a constant term.
func C(v value.V) T { return T{Const: v} }

// CInt returns an integer constant term.
func CInt(i int64) T { return C(value.Int(i)) }

// CStr returns a string constant term.
func CStr(s string) T { return C(value.Str(s)) }

// CNull returns the null constant term.
func CNull() T { return C(value.Null()) }

// IsVar reports whether t is a variable.
func (t T) IsVar() bool { return t.Var != "" }

func (t T) String() string {
	if t.IsVar() {
		return t.Var
	}
	return t.Const.String()
}

// Equal reports structural equality of terms (null constants compare equal
// to each other).
func (t T) Equal(u T) bool {
	if t.IsVar() != u.IsVar() {
		return false
	}
	if t.IsVar() {
		return t.Var == u.Var
	}
	return t.Const.Eq(u.Const)
}

// Atom is a predicate atom P(t1, ..., tn). Predicates are identified by name
// and arity, so P/2 and P/3 are distinct (this matters for the annotated
// predicates of repair programs).
type Atom struct {
	Pred string
	Args []T
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...T) Atom { return Atom{Pred: pred, Args: args} }

func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// Equal reports structural equality.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Vars appends the variables of a, in order of occurrence with duplicates, to
// dst and returns the extended slice.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		if t.IsVar() {
			dst = append(dst, t.Var)
		}
	}
	return dst
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]T, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// CompOp is a builtin comparison operator.
type CompOp uint8

// The builtin comparison operators of B.
const (
	EQ CompOp = iota
	NEQ
	LT
	LEQ
	GT
	GEQ
)

func (op CompOp) String() string {
	switch op {
	case EQ:
		return "="
	case NEQ:
		return "!="
	case LT:
		return "<"
	case LEQ:
		return "<="
	case GT:
		return ">"
	case GEQ:
		return ">="
	default:
		return fmt.Sprintf("CompOp(%d)", uint8(op))
	}
}

// Negate returns the complementary operator (used to build the conjunction
// ϕ̄ equivalent to the negation of the disjunction ϕ in repair programs).
func (op CompOp) Negate() CompOp {
	switch op {
	case EQ:
		return NEQ
	case NEQ:
		return EQ
	case LT:
		return GEQ
	case LEQ:
		return GT
	case GT:
		return LEQ
	default: // GEQ
		return LT
	}
}

// Builtin is a builtin comparison atom t1 op (t2 + Offset) from B. The
// optional integer Offset supports arithmetic comparisons such as the
// "u > w + 15" of the paper's Example 8; it only applies when the right side
// evaluates to an integer.
type Builtin struct {
	Op     CompOp
	L, R   T
	Offset int64
}

func (b Builtin) String() string {
	rhs := b.R.String()
	switch {
	case b.Offset > 0:
		rhs = fmt.Sprintf("%s+%d", rhs, b.Offset)
	case b.Offset < 0:
		rhs = fmt.Sprintf("%s-%d", rhs, -b.Offset)
	}
	return b.L.String() + " " + b.Op.String() + " " + rhs
}

// Negate returns the complementary builtin.
func (b Builtin) Negate() Builtin {
	return Builtin{Op: b.Op.Negate(), L: b.L, R: b.R, Offset: b.Offset}
}

// Vars appends the variables of b to dst.
func (b Builtin) Vars(dst []string) []string {
	if b.L.IsVar() {
		dst = append(dst, b.L.Var)
	}
	if b.R.IsVar() {
		dst = append(dst, b.R.Var)
	}
	return dst
}

// EvalGround evaluates the builtin on two constants with null treated as an
// ordinary constant: equality and inequality are total, while order
// comparisons between incomparable values (different kinds, or null) are
// false. This is the evaluation mode of Definition 4.
func (op CompOp) EvalGround(l, r value.V) bool {
	switch op {
	case EQ:
		return l.Eq(r)
	case NEQ:
		return !l.Eq(r)
	}
	cmp, ok := l.Order(r)
	if !ok {
		return false
	}
	switch op {
	case LT:
		return cmp < 0
	case LEQ:
		return cmp <= 0
	case GT:
		return cmp > 0
	default: // GEQ
		return cmp >= 0
	}
}

// EvalGround3 evaluates the builtin in three-valued SQL logic: any comparison
// involving null is unknown.
func (op CompOp) EvalGround3(l, r value.V) value.Bool3 {
	if l.IsNull() || r.IsNull() {
		return value.Unknown3
	}
	if op.EvalGround(l, r) {
		return value.True3
	}
	return value.False3
}

// Subst is a substitution from variable names to domain constants.
type Subst map[string]value.V

// Apply resolves a term under the substitution. Unbound variables are
// reported with ok = false.
func (s Subst) Apply(t T) (value.V, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := s[t.Var]
	return v, ok
}

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	c := make(Subst, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// String renders the substitution deterministically, e.g. {x=a, y=null}.
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + s[k].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// rhs resolves the right-hand side including the offset. A non-zero offset
// on a non-integer right side makes the side unresolvable (reported via ok).
func (b Builtin) rhs(s Subst) (value.V, bool) {
	r, ok := s.Apply(b.R)
	if !ok {
		return value.V{}, false
	}
	if b.Offset == 0 {
		return r, true
	}
	i, isInt := r.AsInt()
	if !isInt {
		return value.V{}, false
	}
	return value.Int(i + b.Offset), true
}

// Eval evaluates a builtin under a substitution in ordinary-constant mode.
// It reports ok = false if a variable is unbound. An offset applied to a
// non-integer right side evaluates to false (res=false, ok=true) since the
// comparison cannot hold.
func (b Builtin) Eval(s Subst) (res, ok bool) {
	l, okL := s.Apply(b.L)
	if !okL {
		return false, false
	}
	if _, okVar := s.Apply(b.R); !okVar {
		return false, false
	}
	r, okR := b.rhs(s)
	if !okR {
		return false, true
	}
	return b.Op.EvalGround(l, r), true
}

// Eval3 evaluates a builtin under a substitution in three-valued SQL logic
// (comparisons with null are unknown). It reports ok = false if a variable
// is unbound.
func (b Builtin) Eval3(s Subst) (res value.Bool3, ok bool) {
	l, okL := s.Apply(b.L)
	if !okL {
		return value.False3, false
	}
	rRaw, okVar := s.Apply(b.R)
	if !okVar {
		return value.False3, false
	}
	if l.IsNull() || rRaw.IsNull() {
		return value.Unknown3, true
	}
	r, okR := b.rhs(s)
	if !okR {
		return value.False3, true
	}
	return b.Op.EvalGround3(l, r), true
}

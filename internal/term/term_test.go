package term

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestTermBasics(t *testing.T) {
	x := V("x")
	if !x.IsVar() || x.String() != "x" {
		t.Errorf("V(x) broken: %v", x)
	}
	c := CInt(5)
	if c.IsVar() || c.String() != "5" {
		t.Errorf("CInt(5) broken: %v", c)
	}
	if CNull().String() != "null" {
		t.Errorf("CNull String = %q", CNull().String())
	}
	if !CStr("a").Equal(CStr("a")) || CStr("a").Equal(CStr("b")) {
		t.Error("constant equality broken")
	}
	if V("x").Equal(CStr("x")) {
		t.Error("variable x must differ from constant x")
	}
	if !CNull().Equal(CNull()) {
		t.Error("null terms must be equal")
	}
}

func TestAtomString(t *testing.T) {
	a := NewAtom("P", V("x"), CStr("b"), CNull())
	if got := a.String(); got != "P(x,b,null)" {
		t.Errorf("String = %q", got)
	}
	if got := NewAtom("False").String(); got != "False" {
		t.Errorf("0-ary String = %q", got)
	}
}

func TestAtomGroundAndVars(t *testing.T) {
	a := NewAtom("P", V("x"), CStr("b"), V("y"), V("x"))
	if a.IsGround() {
		t.Error("atom with vars reported ground")
	}
	vars := a.Vars(nil)
	want := []string{"x", "y", "x"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("Vars[%d] = %q, want %q", i, vars[i], want[i])
		}
	}
	g := NewAtom("P", CStr("a"), CNull())
	if !g.IsGround() {
		t.Error("ground atom reported non-ground")
	}
}

func TestAtomCloneIndependent(t *testing.T) {
	a := NewAtom("P", V("x"), CStr("b"))
	b := a.Clone()
	b.Args[0] = CStr("z")
	if !a.Args[0].IsVar() {
		t.Error("Clone shares argument storage")
	}
	if !a.Equal(NewAtom("P", V("x"), CStr("b"))) {
		t.Error("original mutated")
	}
}

func TestCompOpNegate(t *testing.T) {
	ops := []CompOp{EQ, NEQ, LT, LEQ, GT, GEQ}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("double negation of %v = %v", op, op.Negate().Negate())
		}
	}
	// Negation must complement the relation on every comparable pair.
	vals := []value.V{value.Int(1), value.Int(2), value.Int(3)}
	for _, op := range ops {
		for _, l := range vals {
			for _, r := range vals {
				if op.EvalGround(l, r) == op.Negate().EvalGround(l, r) {
					t.Errorf("%v and its negation agree on (%v,%v)", op, l, r)
				}
			}
		}
	}
}

func TestEvalGroundNullAsConstant(t *testing.T) {
	n := value.Null()
	if !EQ.EvalGround(n, n) {
		t.Error("null = null must hold in ordinary-constant mode")
	}
	if NEQ.EvalGround(n, n) {
		t.Error("null != null must fail in ordinary-constant mode")
	}
	if !NEQ.EvalGround(n, value.Int(3)) {
		t.Error("null != 3 must hold")
	}
	// Order comparisons involving null are false either way.
	if LT.EvalGround(n, value.Int(3)) || GT.EvalGround(n, value.Int(3)) {
		t.Error("order comparison with null must be false")
	}
	if LEQ.EvalGround(value.Str("a"), value.Int(3)) {
		t.Error("cross-kind order comparison must be false")
	}
}

func TestEvalGround3(t *testing.T) {
	n := value.Null()
	if got := EQ.EvalGround3(n, n); got != value.Unknown3 {
		t.Errorf("null = null (3VL) = %v, want unknown", got)
	}
	if got := GT.EvalGround3(value.Int(5), n); got != value.Unknown3 {
		t.Errorf("5 > null (3VL) = %v, want unknown", got)
	}
	if got := GT.EvalGround3(value.Int(5), value.Int(3)); got != value.True3 {
		t.Errorf("5 > 3 (3VL) = %v", got)
	}
	if got := LT.EvalGround3(value.Int(5), value.Int(3)); got != value.False3 {
		t.Errorf("5 < 3 (3VL) = %v", got)
	}
}

func TestBuiltinEval(t *testing.T) {
	s := Subst{"x": value.Int(3), "y": value.Int(8)}
	b := Builtin{Op: LT, L: V("x"), R: V("y")}
	if res, ok := b.Eval(s); !ok || !res {
		t.Errorf("3 < 8 under subst = %v,%v", res, ok)
	}
	b2 := Builtin{Op: GT, L: V("x"), R: V("z")}
	if _, ok := b2.Eval(s); ok {
		t.Error("unbound variable must report ok=false")
	}
	b3 := Builtin{Op: EQ, L: V("x"), R: CInt(3)}
	if res, ok := b3.Eval(s); !ok || !res {
		t.Errorf("x = 3 under subst = %v,%v", res, ok)
	}
}

func TestBuiltinNegateString(t *testing.T) {
	b := Builtin{Op: LEQ, L: V("w"), R: V("y")}
	if got := b.String(); got != "w <= y" {
		t.Errorf("String = %q", got)
	}
	if got := b.Negate().String(); got != "w > y" {
		t.Errorf("Negate String = %q", got)
	}
}

func TestSubstApplyAndClone(t *testing.T) {
	s := Subst{"x": value.Str("a")}
	if v, ok := s.Apply(V("x")); !ok || !v.Eq(value.Str("a")) {
		t.Error("Apply variable failed")
	}
	if v, ok := s.Apply(CInt(9)); !ok || !v.Eq(value.Int(9)) {
		t.Error("Apply constant failed")
	}
	if _, ok := s.Apply(V("missing")); ok {
		t.Error("Apply unbound variable must fail")
	}
	c := s.Clone()
	c["x"] = value.Str("b")
	if !s["x"].Eq(value.Str("a")) {
		t.Error("Clone shares storage")
	}
}

func TestSubstStringDeterministic(t *testing.T) {
	s := Subst{"y": value.Null(), "x": value.Int(1)}
	if got := s.String(); got != "{x=1, y=null}" {
		t.Errorf("Subst.String = %q", got)
	}
}

func TestQuickEvalGroundEqMatchesValueEq(t *testing.T) {
	f := func(i, j int64) bool {
		return EQ.EvalGround(value.Int(i), value.Int(j)) == (i == j) &&
			LT.EvalGround(value.Int(i), value.Int(j)) == (i < j) &&
			GEQ.EvalGround(value.Int(i), value.Int(j)) == (i >= j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNegationComplement(t *testing.T) {
	ops := []CompOp{EQ, NEQ, LT, LEQ, GT, GEQ}
	f := func(opIdx uint8, i, j int64) bool {
		op := ops[int(opIdx)%len(ops)]
		l, r := value.Int(i), value.Int(j)
		return op.EvalGround(l, r) != op.Negate().EvalGround(l, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package engine

import (
	"errors"
	"testing"

	"repro/internal/session"
)

func TestLookup(t *testing.T) {
	for _, name := range Names() {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) not found", name)
		}
	}
	if s, ok := Lookup(""); !ok || s.Name != "search" {
		t.Errorf("Lookup(\"\") = %+v, %v; want the search default", s, ok)
	}
	if _, ok := Lookup("warp"); ok {
		t.Errorf("Lookup(warp) found")
	}
}

func TestOptions(t *testing.T) {
	opts, err := Options("direct", 3)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Engine != session.EngineDirect {
		t.Errorf("engine = %v, want direct", opts.Engine)
	}
	if opts.Repair.Workers != 3 || opts.Stable.Workers != 3 || opts.Ground.Workers != 3 {
		t.Errorf("workers not applied uniformly: %+v", opts)
	}

	_, err = Options("warp", 1)
	var unknown *UnknownError
	if !errors.As(err, &unknown) || unknown.Name != "warp" {
		t.Fatalf("Options(warp) err = %v, want *UnknownError", err)
	}
	if got := unknown.Error(); got != `unknown engine "warp": want search, program, cautious, direct, or auto` {
		t.Errorf("error text: %s", got)
	}
}

func TestCapabilities(t *testing.T) {
	repairs := map[string]bool{"search": true, "program": true, "cautious": false, "direct": false, "auto": false}
	for name, want := range repairs {
		s, _ := Lookup(name)
		if s.Repairs != want {
			t.Errorf("%s: Repairs = %v, want %v", name, s.Repairs, want)
		}
	}
	if s, _ := Lookup("search"); !s.Classic {
		t.Errorf("search should support classic semantics")
	}
	if s, _ := Lookup("direct"); s.Classic {
		t.Errorf("direct must not claim classic semantics")
	}
}

// Package engine is the one registry of CQA engine names. The cqa CLI, the
// cqad daemon, and the public facade all used to repeat the same
// name-to-options switch; they now share this table, so adding an engine is
// one entry here plus its session implementation.
package engine

import (
	"fmt"
	"strings"

	"repro/internal/session"
)

// Spec describes one selectable engine: its wire/CLI name, the session
// engine it maps to, and its capabilities.
type Spec struct {
	// Name is the string accepted by -engine flags and wire documents.
	Name string
	// Engine is the session-layer engine the name selects.
	Engine session.Engine
	// Repairs reports whether the engine can materialize the repair set
	// (the cqa repairs command); cautious and direct never enumerate
	// repairs, and auto's choice is input-dependent.
	Repairs bool
	// Classic reports whether the engine supports the classic [2] repair
	// semantics in addition to the paper's null-based one.
	Classic bool
	// Description is a one-line summary for usage text.
	Description string
}

// specs is the registry, in documentation order. The empty name aliases
// search (the historical default) via Lookup.
var specs = []Spec{
	{
		Name:        "search",
		Engine:      session.EngineSearch,
		Repairs:     true,
		Classic:     true,
		Description: "violation-driven repair search (Sections 3-4)",
	},
	{
		Name:        "program",
		Engine:      session.EngineProgram,
		Repairs:     true,
		Description: "Definition 9 repair program, repairs from stable models (Section 5)",
	},
	{
		Name:        "cautious",
		Engine:      session.EngineProgramCautious,
		Description: "cautious stable-model reasoning over the repair program, no repairs materialized",
	},
	{
		Name:        "direct",
		Engine:      session.EngineDirect,
		Description: "repair-less polynomial classification, FD-only constraint sets",
	},
	{
		Name:        "auto",
		Engine:      session.EngineAuto,
		Description: "route by constraint class: direct when FD-only, search otherwise",
	},
}

// All returns the registry in documentation order. The slice is shared;
// callers must not mutate it.
func All() []Spec { return specs }

// Names returns every registered engine name in documentation order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Lookup resolves an engine name; the empty string means search. The second
// result reports whether the name is registered.
func Lookup(name string) (Spec, bool) {
	if name == "" {
		name = "search"
	}
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// NameOf returns the registered name for a session engine, or "" when the
// engine is not in the registry. Useful for reporting a session's resolved
// engine (EngineAuto resolves at session creation, so a live session's
// Options never carry it).
func NameOf(e session.Engine) string {
	for _, s := range specs {
		if s.Engine == e {
			return s.Name
		}
	}
	return ""
}

// UnknownError reports an engine name outside the registry, listing the
// accepted names.
type UnknownError struct {
	Name string
}

func (e *UnknownError) Error() string {
	names := Names()
	return fmt.Sprintf("unknown engine %q: want %s, or %s",
		e.Name, strings.Join(names[:len(names)-1], ", "), names[len(names)-1])
}

// Options maps an engine name and worker count onto session options. Every
// worker knob is set uniformly — each engine reads only its own section —
// so one mapping serves the CLI flags, the daemon's wire fields, and the
// facade. Unknown names fail with *UnknownError.
func Options(name string, workers int) (session.Options, error) {
	opts := session.NewOptions()
	spec, ok := Lookup(name)
	if !ok {
		return opts, &UnknownError{Name: name}
	}
	opts.Engine = spec.Engine
	if workers > 0 {
		opts.Repair.Workers = workers
		opts.Stable.Workers = workers
		opts.Ground.Workers = workers
	}
	return opts, nil
}

package stable

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/logic"
	"repro/internal/term"
)

// choiceProgram builds n independent binary choices (2^n stable models,
// one component per choice).
func choiceProgram(n int) *logic.Program {
	p := &logic.Program{}
	for i := 0; i < n; i++ {
		p.Rules = append(p.Rules, logic.Rule{
			Head: []term.Atom{{Pred: "l" + itoa(i)}, {Pred: "r" + itoa(i)}},
			Pos:  []term.Atom{{Pred: "s" + itoa(i)}},
		})
		p.Facts = append(p.Facts, term.Atom{Pred: "s" + itoa(i)})
	}
	return p
}

// linkedChoiceProgram is choiceProgram glued into one component: the seed
// is derived by a head-only rule instead of being a fact (the grounder
// simplifies facts out of rule bodies), so every choice rule shares the
// seed atom and the ground program cannot be decomposed.
func linkedChoiceProgram(n int) *logic.Program {
	p := &logic.Program{Rules: []logic.Rule{{Head: []term.Atom{atom("seed")}}}}
	for i := 0; i < n; i++ {
		p.Rules = append(p.Rules, logic.Rule{
			Head: []term.Atom{{Pred: "l" + itoa(i)}, {Pred: "r" + itoa(i)}},
			Pos:  []term.Atom{atom("seed")},
		})
	}
	return p
}

// TestEnumerateStreamsFirstModel is the tentpole's streaming guarantee: the
// first model must be observable before the enumeration completes. With a
// candidate budget too small for the full single-component 2^8-model
// enumeration, Models fails with ErrCandidateLimit — but a consumer that
// cancels at the first model gets it without ever paying for the rest.
func TestEnumerateStreamsFirstModel(t *testing.T) {
	gp := groundProgram(t, linkedChoiceProgram(8))
	opts := Options{MaxCandidates: 40} // far below the 2^8 candidates

	if _, err := Models(gp, opts); err != ErrCandidateLimit {
		t.Fatalf("full enumeration err = %v, want ErrCandidateLimit", err)
	}

	var got Model
	calls := 0
	if err := Enumerate(gp, opts, func(m Model) bool {
		calls++
		got = m
		return false
	}); err != nil {
		t.Fatalf("streaming first model err = %v", err)
	}
	if calls != 1 || len(got) != 9 { // seed + 8 chosen disjuncts
		t.Fatalf("calls=%d first model=%v", calls, got)
	}
}

// TestWorkersCancelStaysWithinBudget guards the bounded-prefetch contract:
// with Workers > 1 a consumer that cancels at the first model must not
// have the fill workers eagerly drain the whole component through the
// candidate budget — the same budget that admits the first model
// sequentially must admit it in parallel.
func TestWorkersCancelStaysWithinBudget(t *testing.T) {
	gp := groundProgram(t, linkedChoiceProgram(8)) // single component, 2^8 models
	for trial := 0; trial < 20; trial++ {
		var got Model
		calls := 0
		if err := Enumerate(gp, Options{MaxCandidates: 90, Workers: 4}, func(m Model) bool {
			calls++
			got = m
			return false
		}); err != nil {
			t.Fatalf("trial %d: parallel first-model stream err = %v", trial, err)
		}
		if calls != 1 || len(got) != 9 {
			t.Fatalf("trial %d: calls=%d first model=%v", trial, calls, got)
		}
	}
}

// TestBudgetCutoffIdenticalAcrossWorkers pins the demand-order budget
// contract: whether (and where in the stream) MaxCandidates trips is a pure
// function of the demanded prefix, so for any budget an enumeration yields
// the same models and the same error at every worker count — parallel
// prefetch must never spend the shared budget on models the combiner has
// not consumed.
func TestBudgetCutoffIdenticalAcrossWorkers(t *testing.T) {
	// Two independent 2^6-model components plus one trivial one: the
	// odometer exhausts the last component's models 64 times over while
	// the first crawls, so eager prefetch and lazy demand diverge wildly
	// in solve order.
	p := &logic.Program{Rules: []logic.Rule{
		{Head: []term.Atom{atom("seedA")}},
		{Head: []term.Atom{atom("seedB")}},
	}}
	for i := 0; i < 6; i++ {
		p.Rules = append(p.Rules,
			logic.Rule{
				Head: []term.Atom{{Pred: "al" + itoa(i)}, {Pred: "ar" + itoa(i)}},
				Pos:  []term.Atom{atom("seedA")},
			},
			logic.Rule{
				Head: []term.Atom{{Pred: "bl" + itoa(i)}, {Pred: "br" + itoa(i)}},
				Pos:  []term.Atom{atom("seedB")},
			})
	}
	gp := groundProgram(t, p)
	type outcome struct {
		models []Model
		err    error
	}
	collect := func(budget, workers, maxModels int) outcome {
		var out []Model
		err := Enumerate(gp, Options{MaxCandidates: budget, Workers: workers, MaxModels: maxModels}, func(m Model) bool {
			out = append(out, m)
			return true
		})
		return outcome{out, err}
	}
	for _, budget := range []int{1, 3, 7, 20, 65, 130, 300, 5000} {
		for _, maxModels := range []int{0, 1, 100} {
			seq := collect(budget, 1, maxModels)
			for _, workers := range []int{2, 4} {
				par := collect(budget, workers, maxModels)
				if seq.err != par.err {
					t.Fatalf("budget=%d maxModels=%d workers=%d: err %v vs sequential %v",
						budget, maxModels, workers, par.err, seq.err)
				}
				if !reflect.DeepEqual(seq.models, par.models) {
					t.Fatalf("budget=%d maxModels=%d workers=%d: %d models vs sequential %d",
						budget, maxModels, workers, len(par.models), len(seq.models))
				}
			}
		}
	}
}

// TestDecompositionBeatsCandidateBudget pins the component win itself: the
// same 2^8 models, with the seeds as facts, decompose into 8 two-model
// components, so the full enumeration fits in a budget the single-component
// program blows through — the cross-product is combined, never solved for.
func TestDecompositionBeatsCandidateBudget(t *testing.T) {
	gp := groundProgram(t, choiceProgram(8))
	ms, err := Models(gp, Options{MaxCandidates: 40})
	if err != nil {
		t.Fatalf("decomposed enumeration err = %v", err)
	}
	if len(ms) != 1<<8 {
		t.Fatalf("models = %d, want %d", len(ms), 1<<8)
	}
}

// TestEnumerateCancelMidStream checks exact cancellation: after yield
// returns false no further models are delivered and no error is reported.
func TestEnumerateCancelMidStream(t *testing.T) {
	gp := groundProgram(t, choiceProgram(5))
	seen := 0
	if err := Enumerate(gp, Options{}, func(Model) bool {
		seen++
		return seen < 7
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 7 {
		t.Fatalf("yield ran %d times after cancellation at 7", seen)
	}
}

// TestEnumerateWorkersIdenticalStream pins the parallel contract: the model
// stream — content and order — is byte-identical for every worker count, on
// randomized multi-component programs.
func TestEnumerateWorkersIdenticalStream(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		p := randomGroundProgramClean(rng, 8)
		collect := func(workers int) ([]Model, error) {
			var out []Model
			err := Enumerate(p, Options{Workers: workers}, func(m Model) bool {
				out = append(out, m)
				return true
			})
			return out, err
		}
		seq, errSeq := collect(1)
		for _, workers := range []int{2, 4} {
			par, errPar := collect(workers)
			if (errSeq == nil) != (errPar == nil) {
				t.Fatalf("trial %d: errors differ: %v vs %v", trial, errSeq, errPar)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("trial %d: workers=%d stream differs\nseq: %v\npar: %v\nprogram:\n%s",
					trial, workers, seq, par, p)
			}
		}
	}
}

// TestModelsSortedOption documents the ordering contract: without Sorted,
// Models keeps Enumerate's deterministic stream order; with Sorted it is
// lexicographic. Both hold the same model set.
func TestModelsSortedOption(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		p := randomGroundProgramClean(rng, 7)
		plain, err := Models(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sorted, err := Models(p, Options{Sorted: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != len(sorted) {
			t.Fatalf("trial %d: %d vs %d models", trial, len(plain), len(sorted))
		}
		for i := 1; i < len(sorted); i++ {
			if !lessModel(sorted[i-1], sorted[i]) {
				t.Fatalf("trial %d: sorted output out of order at %d: %v", trial, i, sorted)
			}
		}
		keys := map[string]bool{}
		for _, m := range plain {
			keys[modelKey(m)] = true
		}
		for _, m := range sorted {
			if !keys[modelKey(m)] {
				t.Fatalf("trial %d: sorted model %v missing from plain stream", trial, m)
			}
		}
		// And the stream order itself is reproducible.
		again, err := Models(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, again) {
			t.Fatalf("trial %d: stream order not reproducible", trial)
		}
	}
}

// TestComponentDecomposition checks the split directly: independent choices
// land in separate components, core facts stay out of every component, and
// an atom-free ground denial marks the program inconsistent.
func TestComponentDecomposition(t *testing.T) {
	gp := groundProgram(t, &logic.Program{
		Facts: []term.Atom{atom("seed"), atom("lonely")},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("a"), atom("b")}, Pos: []term.Atom{atom("seed")}},
			{Head: []term.Atom{atom("c"), atom("d")}},
		},
	})
	core, comps, inconsistent := decompose(gp)
	if inconsistent {
		t.Fatal("program wrongly marked inconsistent")
	}
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	// The grounder drops fact atoms from rule bodies, so both facts are
	// core facts and the components are exactly the disjunction pairs.
	names := make([]string, len(core))
	for i, a := range core {
		names[i] = gp.Names[a]
	}
	if len(core) != 2 {
		t.Fatalf("core facts = %v, want [lonely seed]", names)
	}
	total := 0
	for _, c := range comps {
		if len(c.atoms) != 2 {
			t.Fatalf("component atom count = %d, want 2", len(c.atoms))
		}
		total += len(c.atoms)
	}
	if total != 4 { // a, b, c, d
		t.Fatalf("component atoms = %d, want 4", total)
	}

	// A hand-built program may repeat a fact id; core facts (and hence
	// every model) must stay duplicate-free.
	dupFacts := groundProgram(t, &logic.Program{Facts: []term.Atom{atom("p")}})
	dupFacts.Facts = append(dupFacts.Facts, dupFacts.Facts[0])
	core, _, _ = decompose(dupFacts)
	if len(core) != 1 {
		t.Fatalf("core facts with duplicated fact id = %v, want one entry", core)
	}

	// An instantiated denial with an empty body is an inconsistency marker.
	_, _, inconsistent = decompose(groundProgram(t, &logic.Program{
		Facts: []term.Atom{atom("p"), atom("q")},
		Rules: []logic.Rule{{Pos: []term.Atom{atom("p"), atom("q")}}},
	}))
	if !inconsistent {
		t.Fatal("violated ground denial not detected")
	}
}

// TestSolverIncrementalAssumptions drives the CDCL core directly through
// the incremental interface: clauses added between solves persist, and
// assumption sets flip satisfiability without touching the clause set.
func TestSolverIncrementalAssumptions(t *testing.T) {
	s := newSolver(3)
	s.addClause([]int{pos(0), pos(1)})
	s.addClause([]int{neg(0), pos(2)})
	if !s.solveWith(nil) {
		t.Fatal("satisfiable base reported UNSAT")
	}
	if s.solveWith([]int{neg(0), neg(1)}) {
		t.Fatal("assumptions ¬a,¬b must falsify (a ∨ b)")
	}
	if !s.solveWith([]int{pos(0)}) {
		t.Fatal("assuming a must stay SAT")
	}
	if s.assign[2] != 1 {
		t.Fatal("a must propagate c through (¬a ∨ c)")
	}
	// The assumption is gone on the next call: ¬c back-propagates ¬a, b.
	if !s.solveWith([]int{neg(2)}) {
		t.Fatal("assuming ¬c must stay SAT")
	}
	if s.assign[0] != 0 || s.assign[1] != 1 {
		t.Fatalf("model under ¬c = %v, want ¬a, b", s.assign)
	}
	// An incremental clause narrows all later solves.
	s.addClause([]int{neg(1)})
	if s.solveWith([]int{neg(0)}) {
		t.Fatal("after adding ¬b, assuming ¬a must be UNSAT")
	}
	if !s.solveWith(nil) {
		t.Fatal("a, ¬b, c must remain satisfiable")
	}
	if s.assign[0] != 1 || s.assign[1] != 0 || s.assign[2] != 1 {
		t.Fatalf("final model = %v, want a, ¬b, c", s.assign)
	}
}

// TestSolverLearnsAcrossSolves pins the incremental learning behavior on a
// pigeonhole instance: the UNSAT result must be reproducible from the same
// solver instance (learned clauses must never change satisfiability).
func TestSolverLearnsAcrossSolves(t *testing.T) {
	varOf := func(p, h int) int { return p*3 + h }
	s := newSolver(12)
	for p := 0; p < 4; p++ {
		s.addClause([]int{pos(varOf(p, 0)), pos(varOf(p, 1)), pos(varOf(p, 2))})
	}
	for h := 0; h < 3; h++ {
		for p1 := 0; p1 < 4; p1++ {
			for p2 := p1 + 1; p2 < 4; p2++ {
				s.addClause([]int{neg(varOf(p1, h)), neg(varOf(p2, h))})
			}
		}
	}
	if s.solveWith(nil) {
		t.Fatal("pigeonhole 4/3 reported SAT")
	}
	if s.solveWith(nil) {
		t.Fatal("pigeonhole 4/3 flipped to SAT on re-solve")
	}
	// Restricting to 3 pigeons by assumption is satisfiable.
	if !s.ok {
		// UNSAT was established at level 0: nothing more to check.
		return
	}
	t.Fatal("level-0 UNSAT must latch solver.ok = false")
}

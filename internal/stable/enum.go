package stable

import "sync/atomic"

// This file turns one component into an incremental stream of its stable
// models, on a single CDCL solver. The solver is dual-rail:
//
//   - variables 0..n-1 ("originals") carry the component's classical models:
//     one clause per rule, units for facts, negative units for underivable
//     atoms — exactly the old clausify;
//   - variables n..2n-1 ("shadows") carry candidate submodels of the
//     Gelfond–Lifschitz reduct: for every rule, the clause
//     ⋁_{b∈Neg} b  ∨  ⋁_{h∈Head} h'  ∨  ⋁_{b∈Pos} ¬b'
//     over shadow primes, plus the linking clauses h' → h. When the
//     originals are pinned to a model M by assumptions, a rule with a
//     negative body atom in M is satisfied outright (the reduct drops it)
//     and the rest collapse to the reduct's clauses over shadows, with
//     shadows confined to subsets of M by the links.
//
// Enumeration, minimization and the reduct-minimality check are therefore
// three assumption patterns against one incrementally growing clause set,
// and every learned clause carries over between phases — and, through the
// solver's trail retention and deferred selector retirement, between
// candidates: consecutive solves re-use the shared assumption-prefix trail
// instead of restarting from level 0. Temporary constraints ("find a model
// strictly below m") are guarded by fresh selector variables that are
// assumed during the phase and retired lazily afterwards.
//
// Options.ScratchSolve is the ablation switch: it replays the accumulated
// clause log into a fresh solver for every solve call, discarding learned
// clauses, saved phases and the retained trail — the rebuild-per-candidate
// behaviour the persistent solver replaces.

// candidateBudget is an atomic solve counter with a cap, used in two roles
// (Options.MaxCandidates sets the cap for both): each enumerator meters its
// own candidate solves against a private budget (the per-component work
// bound), and modelAt charges the costs of consumed models against one
// shared budget in demand order — so the point at which ErrCandidateLimit
// surfaces is a pure function of the demanded stream, identical for every
// worker count, no matter how far ahead the fill workers prefetched.
type candidateBudget struct {
	n   atomic.Int64
	max int64
}

func (b *candidateBudget) take() bool { return b.n.Add(1) <= b.max }

func (b *candidateBudget) takeN(k int64) bool { return b.n.Add(k) <= b.max }

// enumerator streams the stable models of one component in a deterministic
// order (the CDCL discovery order, a pure function of the component and the
// ScratchSolve mode).
type enumerator struct {
	comp *component
	s    *solver
	n    int // component atoms; shadows are n..2n-1
	bud  *candidateBudget
	done bool
	err  error

	inM []bool // scratch: membership of the current model

	// Scratch-solve ablation state: every clause is recorded so each solve
	// can rebuild a fresh solver from the log.
	scratch bool
	stop    func() bool
	nVars   int
	log     [][]int
}

// sh maps a local atom to its shadow variable.
func (e *enumerator) sh(a int) int { return e.n + a }

func newEnumerator(c *component, bud *candidateBudget, stop func() bool, scratch bool) *enumerator {
	n := len(c.atoms)
	e := &enumerator{comp: c, n: n, bud: bud, inM: make([]bool, n), scratch: scratch, stop: stop}
	if e.scratch {
		e.nVars = 2 * n
	} else {
		e.s = newSolver(2 * n)
		e.s.stop = stop
	}

	inHead := make([]bool, n)
	isFact := make([]bool, n)
	for _, f := range c.facts {
		isFact[f] = true
		e.addClause([]int{pos(f)})
		e.addClause([]int{pos(e.sh(f))})
	}
	for _, r := range c.rules {
		base := make([]int, 0, len(r.Head)+len(r.Pos)+len(r.Neg))
		shadow := make([]int, 0, len(r.Head)+len(r.Pos)+len(r.Neg))
		for _, h := range r.Head {
			inHead[h] = true
			base = append(base, pos(h))
			shadow = append(shadow, pos(e.sh(h)))
		}
		for _, b := range r.Pos {
			base = append(base, neg(b))
			shadow = append(shadow, neg(e.sh(b)))
		}
		for _, b := range r.Neg {
			base = append(base, pos(b))
			shadow = append(shadow, pos(b)) // unshifted: reduct blocking tests the model itself
		}
		e.addClause(base)
		e.addClause(shadow)
	}
	for a := 0; a < n; a++ {
		// h' → h: shadow models are submodels of the pinned original.
		e.addClause([]int{neg(e.sh(a)), pos(a)})
		if !inHead[a] && !isFact[a] {
			// No rule can ever justify a: false on both rails.
			e.addClause([]int{neg(a)})
			e.addClause([]int{neg(e.sh(a))})
		}
	}
	return e
}

// addClause registers a clause with the persistent solver, or appends it to
// the replay log in scratch mode.
func (e *enumerator) addClause(c []int) {
	if e.scratch {
		e.log = append(e.log, append([]int(nil), c...))
		return
	}
	e.s.addClause(c)
}

// newVar allocates a solver variable (scratch mode: a fresh id the next
// rebuilt solver will cover).
func (e *enumerator) newVar() int {
	if e.scratch {
		v := e.nVars
		e.nVars++
		return v
	}
	return e.s.newVar()
}

// retire permanently deactivates a selector variable. The persistent solver
// defers the unit to its next sweep (an immediate unit would force a restart
// to level 0); in scratch mode the unit just joins the log.
func (e *enumerator) retire(sel int) {
	if e.scratch {
		e.addClause([]int{neg(sel)})
		return
	}
	e.s.retireLater(neg(sel))
}

// solve runs one solver call. In scratch mode it rebuilds a fresh solver
// from the clause log first — the ablation baseline the persistent,
// learned-clause-retaining solver is measured against.
func (e *enumerator) solve(assumps []int) bool {
	if e.scratch {
		s := newSolver(e.nVars)
		s.stop = e.stop
		e.s = s
		for _, c := range e.log {
			if !s.addClause(c) {
				return false
			}
		}
	}
	return e.s.solveWith(assumps)
}

// next produces the component's next stable model (global atom ids,
// ascending), or ok=false when the stream is exhausted, cancelled, or the
// private candidate meter ran out (then e.err is ErrCandidateLimit). cost
// is the number of candidate solves this call performed; the caller charges
// it to the shared budget when (and only when) the result is consumed.
func (e *enumerator) next() (m Model, cost int64, ok bool) {
	for !e.done {
		if !e.bud.take() {
			e.err = ErrCandidateLimit
			e.done = true
			break
		}
		cost++
		if !e.solve(nil) {
			e.done = true
			break
		}
		cand := e.minimize(e.extract())
		stable := e.isStable(cand)
		if len(cand) == 0 {
			// The empty model: no further distinct minimal model exists.
			e.done = true
		} else {
			// Block cand and its supersets; minimal models are pairwise
			// incomparable, so no other candidate is lost.
			block := make([]int, len(cand))
			for i, a := range cand {
				block[i] = neg(a)
			}
			e.addClause(block)
		}
		if stable {
			return e.globalize(cand), cost, true
		}
	}
	return nil, cost, false
}

// extract reads the original-rail model off the solver.
func (e *enumerator) extract() []int {
	var m []int
	for a := 0; a < e.n; a++ {
		if e.s.assign[a] == 1 {
			m = append(m, a)
		}
	}
	return m
}

// setM populates the membership scratch for m and returns a restore hook.
func (e *enumerator) setM(m []int) func() {
	for _, a := range m {
		e.inM[a] = true
	}
	return func() {
		for _, a := range m {
			e.inM[a] = false
		}
	}
}

// minimize descends from a classical model to a minimal classical model
// (set inclusion over the originals). Each round adds, under a fresh
// selector sel, the clause "at least one atom of m is false" and solves
// with atoms outside m assumed false; UNSAT means m is minimal. The
// selector rides at the end of the assumptions so consecutive rounds (whose
// outside-sets grow monotonically) share a retained assumption-prefix trail
// in the persistent solver.
func (e *enumerator) minimize(m []int) []int {
	if len(m) == 0 {
		return m
	}
	sel := e.newVar()
	for {
		clause := make([]int, 0, len(m)+1)
		clause = append(clause, neg(sel))
		for _, a := range m {
			clause = append(clause, neg(a))
		}
		e.addClause(clause)

		restore := e.setM(m)
		assumps := make([]int, 0, e.n-len(m)+1)
		for a := 0; a < e.n; a++ {
			if !e.inM[a] {
				assumps = append(assumps, neg(a))
			}
		}
		assumps = append(assumps, pos(sel))
		restore()
		if !e.solve(assumps) {
			break
		}
		m = e.extract()
	}
	e.retire(sel)
	return m
}

// isStable checks whether m is a minimal model of the GL-reduct Π^m: the
// originals are pinned to m by assumptions, and a strictness clause (under
// a fresh selector, assumed last) demands a shadow model missing at least
// one atom of m. SAT refutes stability; UNSAT certifies it.
func (e *enumerator) isStable(m []int) bool {
	sel := e.newVar()
	clause := make([]int, 0, len(m)+1)
	clause = append(clause, neg(sel))
	for _, a := range m {
		clause = append(clause, neg(e.sh(a)))
	}
	e.addClause(clause)

	restore := e.setM(m)
	assumps := make([]int, 0, e.n+1)
	for a := 0; a < e.n; a++ {
		if e.inM[a] {
			assumps = append(assumps, pos(a))
		} else {
			assumps = append(assumps, neg(a))
		}
	}
	assumps = append(assumps, pos(sel))
	restore()
	sat := e.solve(assumps)
	e.retire(sel)
	return !sat
}

// globalize maps a local model onto the program's atom ids (order is
// preserved: comp.atoms ascends, so the result ascends).
func (e *enumerator) globalize(m []int) Model {
	out := make(Model, len(m))
	for i, a := range m {
		out[i] = e.comp.atoms[a]
	}
	return out
}

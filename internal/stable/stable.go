// Package stable computes the stable models (answer sets) of ground
// disjunctive logic programs — the semantics of Gelfond & Lifschitz (1991)
// under which Definition 9's repair programs are interpreted (Section 5).
//
// The engine splits the ground program into independent components (no rule
// spans two components, so stable models factorize into a cross-product of
// per-component models), enumerates each component's models on an
// incremental CDCL solver (see sat.go and enum.go), and combines the
// fragments lazily: Enumerate streams combined models one at a time —
// the first model is observable long before the enumeration completes —
// and components can be solved in parallel (Options.Workers) without
// changing the stream. It also provides the head-cycle-freeness test and
// the shift transformation sh(Π) of Section 6 (Ben-Eliyahu & Dechter).
package stable

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ground"
)

// Options bounds and tunes the enumeration.
type Options struct {
	// MaxModels caps the number of stable models streamed (0 = no cap).
	MaxModels int
	// MaxCandidates caps the number of candidate solver calls consumed by
	// the demanded model stream (0 = DefaultMaxCandidates); exceeding it
	// returns ErrCandidateLimit. The budget is charged in demand order —
	// solves a parallel prefetch performed for models the consumer never
	// reached are not counted — so whether and where the limit hits is a
	// pure function of the stream, identical for every Workers value.
	// Each component is additionally work-bounded by the same limit, so
	// total solving never exceeds (components+1) × MaxCandidates.
	MaxCandidates int
	// Workers sets the number of goroutines enumerating components
	// (<= 1 solves components lazily on the calling goroutine). The
	// model stream — content, order, and any ErrCandidateLimit cutoff —
	// is identical for every worker count; workers only overlap the
	// per-component solves, prefetching at most a bounded window ahead
	// of the stream.
	Workers int
	// Sorted makes Models sort its result lexicographically (the
	// pre-streaming contract). Enumerate ignores it: the stream order is
	// the deterministic component-odometer order documented there.
	Sorted bool
	// ScratchSolve is an ablation knob: rebuild each component's solver
	// from its clause log on every solve call instead of keeping one
	// persistent solver with learned clauses, saved phases, and a retained
	// assumption trail. The set of stable models is unchanged, but each
	// component's discovery order may differ from the persistent solver's;
	// within either mode the stream stays deterministic and identical for
	// every Workers value.
	ScratchSolve bool
}

// DefaultMaxCandidates bounds candidate enumeration when unset.
const DefaultMaxCandidates = 1 << 18

// ErrCandidateLimit reports that candidate enumeration was cut short. API
// consumers match it with errors.Is; a server maps it to load-shedding.
var ErrCandidateLimit = errors.New("stable: candidate model limit exceeded")

// Model is a stable model: the sorted ids of its true atoms.
type Model []int

// Contains reports membership via binary search.
func (m Model) Contains(atom int) bool {
	i := sort.SearchInts(m, atom)
	return i < len(m) && m[i] == atom
}

// Enumerate streams the stable models of the ground program to yield, one
// model at a time; yield returning false cancels the rest of the
// enumeration (Enumerate then returns nil). The first model is delivered as
// soon as every component has produced one — long before the full model set
// exists.
//
// Ordering contract: models arrive in component-odometer order — components
// ordered by smallest atom id, each component's models in its solver's
// discovery order, the last component cycling fastest. The order is a pure
// function of the program: identical for every Workers value, stable across
// runs, but NOT lexicographic — collect via Models with Options.Sorted for
// the lexicographic order.
func Enumerate(p *ground.Program, opts Options, yield func(Model) bool) error {
	return EnumerateCtx(context.Background(), p, opts, yield)
}

// EnumerateCtx is Enumerate under a context. Cancellation aborts in-flight
// CDCL solves through the solvers' stop hooks (polled at every conflict and
// decision, so aborts are prompt even mid-solve) and returns ctx.Err();
// models already yielded remain valid stable models, but the stream is
// incomplete, so consumers must not treat a cancelled run as exhaustive.
func EnumerateCtx(ctx context.Context, p *ground.Program, opts Options, yield func(Model) bool) error {
	maxCand := opts.MaxCandidates
	if maxCand == 0 {
		maxCand = DefaultMaxCandidates
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	coreFacts, comps, inconsistent := decompose(p)
	if inconsistent {
		return nil // a violated ground denial: no stable models
	}
	if len(comps) == 0 {
		// Facts only: the single stable model.
		yield(Model(coreFacts))
		return nil
	}

	// One shared budget, charged in demand order as models are consumed;
	// each component also gets a private meter with the same cap as its
	// work bound (see candidateBudget).
	shared := &candidateBudget{max: int64(maxCand)}
	var stopped atomic.Bool
	stop := func() bool { return stopped.Load() || ctx.Err() != nil }
	srcs := make([]*modelSource, len(comps))
	for i, c := range comps {
		srcs[i] = newModelSource(c, int64(maxCand), shared, stop, opts.ScratchSolve)
	}
	if opts.Workers > 1 {
		// Eager mode for every source: modelAt waits on the cache instead
		// of touching the enumerator, so exactly one worker ever drives
		// each solver.
		for _, ms := range srcs {
			ms.eager = true
		}
		var wg sync.WaitGroup
		defer func() {
			// Stop and wake the fillers (they may be parked at the
			// prefetch window), then wait for them to unwind — promptly,
			// even on cancellation (in-flight solves abort via the stop
			// hook).
			stopped.Store(true)
			for _, ms := range srcs {
				ms.mu.Lock()
				ms.cond.Broadcast()
				ms.mu.Unlock()
			}
			wg.Wait()
		}()
		// One filler per component, demand-driven; the semaphore bounds
		// concurrent solving to Workers. A filler parked at its window
		// holds no token, so demanded components always make progress.
		workers := opts.Workers
		if workers > len(comps) {
			workers = len(comps)
		}
		sem := make(chan struct{}, workers)
		for _, ms := range srcs {
			wg.Add(1)
			go func(ms *modelSource) {
				defer wg.Done()
				ms.fill(sem)
			}(ms)
		}
	}

	// Lazy cross-product odometer: idx[i] walks source i's model cache,
	// the last component cycling fastest. Each step pulls at most one new
	// per-component model; everything else is cached.
	k := len(comps)
	idx := make([]int, k)
	parts := make([]Model, k)
	for i := range srcs {
		m, ok, err := srcs[i].modelAt(0)
		if err != nil {
			return err
		}
		// Re-check the context after every pull: a solve aborted by the
		// stop hook surfaces as end-of-stream, which must not be reported
		// as a genuinely empty component.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if !ok {
			return nil // a component with no stable model: none overall
		}
		parts[i] = m
	}
	emitted := 0
	for {
		if !yield(combine(coreFacts, parts)) {
			return nil
		}
		emitted++
		if opts.MaxModels > 0 && emitted >= opts.MaxModels {
			return nil
		}
		pos := k - 1
		for pos >= 0 {
			m, ok, err := srcs[pos].modelAt(idx[pos] + 1)
			if err != nil {
				return err
			}
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			if ok {
				idx[pos]++
				parts[pos] = m
				for j := pos + 1; j < k; j++ {
					idx[j] = 0
					parts[j], _, _ = srcs[j].modelAt(0) // cached
				}
				break
			}
			pos--
		}
		if pos < 0 {
			return nil
		}
	}
}

// combine merges the always-true core facts with one model fragment per
// component into a sorted Model. Every input is already sorted, so this is
// a k-way merge (k = components + 1, small), not a re-sort — combine runs
// once per emitted model, on the enumeration's hot path.
func combine(coreFacts []int, parts []Model) Model {
	n := len(coreFacts)
	srcs := make([][]int, 0, len(parts)+1)
	if len(coreFacts) > 0 {
		srcs = append(srcs, coreFacts)
	}
	for _, p := range parts {
		n += len(p)
		if len(p) > 0 {
			srcs = append(srcs, p)
		}
	}
	if n == 0 {
		return nil
	}
	out := make(Model, 0, n)
	idx := make([]int, len(srcs))
	for len(out) < n {
		best := -1
		for i, s := range srcs {
			if idx[i] < len(s) && (best == -1 || s[idx[i]] < srcs[best][idx[best]]) {
				best = i
			}
		}
		out = append(out, srcs[best][idx[best]])
		idx[best]++
	}
	return out
}

// prefetchWindow bounds how far an eager fill worker may run ahead of the
// combiner's demand, so a cancelled or capped enumeration with Workers > 1
// does not waste work draining whole components the consumer never asked
// for. (Prefetched solves are metered privately and charged to the shared
// budget only on consumption, so the window affects wasted work, never the
// stream or its budget cutoff.)
const prefetchWindow = 64

// modelSource adapts one component enumerator to indexed access, in two
// modes: lazy (sequential — modelAt pulls the underlying solver on the
// calling goroutine) and eager (parallel — a worker drains the solver into
// the cache via fill while modelAt waits). Both expose the identical model
// sequence, and both charge production costs to the shared budget in the
// combiner's demand order.
type modelSource struct {
	e      *enumerator
	shared *candidateBudget
	stop   func() bool

	mu       sync.Mutex
	cond     *sync.Cond
	cache    []Model
	costs    []int64 // candidate solves spent producing cache[i]
	tailCost int64   // solves spent discovering the stream's end
	charged  int     // cache prefix already charged to shared
	tailDone bool    // tailCost charged
	want     int     // highest index the combiner has requested
	done     bool
	err      error
	eager    bool
}

func newModelSource(c *component, maxCand int64, shared *candidateBudget, stop func() bool, scratch bool) *modelSource {
	ms := &modelSource{
		e:      newEnumerator(c, &candidateBudget{max: maxCand}, stop, scratch),
		shared: shared,
		stop:   stop,
	}
	ms.cond = sync.NewCond(&ms.mu)
	return ms
}

// fill eagerly drains the enumerator into the cache (parallel mode), at
// most prefetchWindow models ahead of the combiner's demand, holding a
// token of the shared worker semaphore only while solving. The enumerator's
// own stop hook aborts an in-flight solve on cancellation; Enumerate's
// cleanup broadcasts the cond so a filler parked at the window wakes up and
// exits.
func (ms *modelSource) fill(sem chan struct{}) {
	for {
		ms.mu.Lock()
		for !ms.stop() && len(ms.cache) >= ms.want+prefetchWindow {
			ms.cond.Wait()
		}
		ms.mu.Unlock()
		if ms.stop() {
			return
		}
		sem <- struct{}{}
		m, cost, ok := ms.e.next()
		<-sem
		ms.mu.Lock()
		if !ok {
			ms.done = true
			ms.err = ms.e.err
			ms.tailCost = cost
			ms.cond.Broadcast()
			ms.mu.Unlock()
			return
		}
		ms.cache = append(ms.cache, m)
		ms.costs = append(ms.costs, cost)
		ms.cond.Broadcast()
		ms.mu.Unlock()
	}
}

// modelAt returns the j-th model of the component, pulling (lazy) or
// waiting (eager) as needed; ok=false after the stream's end. Production
// costs are charged to the shared budget here, in demand order — the
// combiner demands indices sequentially, so the charge sequence (and hence
// any ErrCandidateLimit cutoff) is a pure function of the stream.
func (ms *modelSource) modelAt(j int) (Model, bool, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.eager {
		if j > ms.want {
			ms.want = j
			ms.cond.Broadcast() // raise the filler's prefetch window
		}
		for len(ms.cache) <= j && !ms.done {
			ms.cond.Wait()
		}
	} else {
		for len(ms.cache) <= j && !ms.done {
			m, cost, ok := ms.e.next()
			if !ok {
				ms.done = true
				ms.err = ms.e.err
				ms.tailCost = cost
				break
			}
			ms.cache = append(ms.cache, m)
			ms.costs = append(ms.costs, cost)
		}
	}
	for ms.charged <= j && ms.charged < len(ms.cache) {
		if !ms.shared.takeN(ms.costs[ms.charged]) {
			return nil, false, ErrCandidateLimit
		}
		ms.charged++
	}
	if j < len(ms.cache) {
		return ms.cache[j], true, nil
	}
	if !ms.tailDone {
		ms.tailDone = true
		if !ms.shared.takeN(ms.tailCost) && ms.err == nil {
			ms.err = ErrCandidateLimit
		}
	}
	return nil, false, ms.err
}

// Models enumerates the stable models of the ground program into a slice.
// With opts.Sorted they are sorted lexicographically; otherwise they keep
// Enumerate's deterministic stream order.
func Models(p *ground.Program, opts Options) ([]Model, error) {
	var out []Model
	if err := Enumerate(p, opts, func(m Model) bool {
		out = append(out, m)
		return true
	}); err != nil {
		return nil, err
	}
	if opts.Sorted {
		sort.Slice(out, func(i, j int) bool { return lessModel(out[i], out[j]) })
	}
	return out, nil
}

func lessModel(a, b Model) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// HasStableModel reports whether the program is consistent (has at least
// one stable model). It cancels the stream at the first model.
func HasStableModel(p *ground.Program) (bool, error) {
	found := false
	if err := Enumerate(p, Options{}, func(Model) bool {
		found = true
		return false
	}); err != nil {
		return false, err
	}
	return found, nil
}

// Cautious returns the atoms true in every stable model (cautious/certain
// consequences), or nil if the program has no stable model.
func Cautious(models []Model) []int {
	if len(models) == 0 {
		return nil
	}
	out := append([]int(nil), models[0]...)
	for _, m := range models[1:] {
		var kept []int
		for _, a := range out {
			if m.Contains(a) {
				kept = append(kept, a)
			}
		}
		out = kept
	}
	return out
}

// Brave returns the atoms true in at least one stable model.
func Brave(models []Model) []int {
	seen := map[int]bool{}
	var out []int
	for _, m := range models {
		for _, a := range m {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Package stable computes the stable models (answer sets) of ground
// disjunctive logic programs — the semantics of Gelfond & Lifschitz (1991)
// under which Definition 9's repair programs are interpreted (Section 5).
//
// The engine enumerates the minimal classical models of the program with a
// DPLL SAT core and blocking clauses (every stable model of a disjunctive
// program is a minimal model), and keeps exactly those that are minimal
// models of their own Gelfond–Lifschitz reduct, checked with a second SAT
// call. It also provides the head-cycle-freeness test and the shift
// transformation sh(Π) of Section 6 (Ben-Eliyahu & Dechter).
package stable

import (
	"fmt"
	"sort"

	"repro/internal/ground"
)

// Options bounds the enumeration.
type Options struct {
	// MaxModels caps the number of stable models returned (0 = no cap).
	MaxModels int
	// MaxCandidates caps the number of minimal classical models examined
	// (0 = DefaultMaxCandidates); exceeding it returns ErrCandidateLimit.
	MaxCandidates int
}

// DefaultMaxCandidates bounds candidate enumeration when unset.
const DefaultMaxCandidates = 1 << 18

// ErrCandidateLimit reports that candidate enumeration was cut short.
var ErrCandidateLimit = fmt.Errorf("stable: candidate model limit exceeded")

// Model is a stable model: the sorted ids of its true atoms.
type Model []int

// Contains reports membership via binary search.
func (m Model) Contains(atom int) bool {
	i := sort.SearchInts(m, atom)
	return i < len(m) && m[i] == atom
}

// clausify translates the ground program into CNF over its atom ids:
// one clause per rule (¬body+ ∨ body- ∨ head), one unit per fact, and one
// negative unit per atom that occurs in no head and is no fact (such atoms
// can never be justified).
func clausify(p *ground.Program) [][]int {
	n := p.NumAtoms()
	clauses := make([][]int, 0, len(p.Rules)+n)
	inHead := make([]bool, n)
	isFact := make([]bool, n)
	for _, f := range p.Facts {
		isFact[f] = true
		clauses = append(clauses, []int{pos(f)})
	}
	for _, r := range p.Rules {
		c := make([]int, 0, len(r.Head)+len(r.Pos)+len(r.Neg))
		for _, h := range r.Head {
			c = append(c, pos(h))
			inHead[h] = true
		}
		for _, b := range r.Pos {
			c = append(c, neg(b))
		}
		for _, b := range r.Neg {
			c = append(c, pos(b))
		}
		clauses = append(clauses, c)
	}
	for a := 0; a < n; a++ {
		if !inHead[a] && !isFact[a] {
			clauses = append(clauses, []int{neg(a)})
		}
	}
	return clauses
}

func modelFromBits(bits []bool) Model {
	var m Model
	for i, b := range bits {
		if b {
			m = append(m, i)
		}
	}
	return m
}

// minimize descends from a classical model to a minimal classical model of
// the clause set (w.r.t. set inclusion of true atoms).
func minimize(nAtoms int, clauses [][]int, m Model) Model {
	for {
		// Ask for a model strictly below m: all atoms outside m stay
		// false, and at least one atom of m becomes false.
		extra := make([][]int, 0, nAtoms-len(m)+1)
		inM := make([]bool, nAtoms)
		for _, a := range m {
			inM[a] = true
		}
		for a := 0; a < nAtoms; a++ {
			if !inM[a] {
				extra = append(extra, []int{neg(a)})
			}
		}
		smaller := make([]int, 0, len(m))
		for _, a := range m {
			smaller = append(smaller, neg(a))
		}
		extra = append(extra, smaller)
		bits, sat := solveCNF(nAtoms, append(append([][]int{}, clauses...), extra...), true)
		if !sat {
			return m
		}
		m = modelFromBits(bits)
	}
}

// isStable checks whether m is a minimal model of the GL-reduct Π^m.
func isStable(p *ground.Program, m Model) bool {
	n := p.NumAtoms()
	reduct := make([][]int, 0, len(p.Rules)+len(p.Facts))
	for _, f := range p.Facts {
		reduct = append(reduct, []int{pos(f)})
	}
	for _, r := range p.Rules {
		blocked := false
		for _, b := range r.Neg {
			if m.Contains(b) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		c := make([]int, 0, len(r.Head)+len(r.Pos))
		for _, h := range r.Head {
			c = append(c, pos(h))
		}
		for _, b := range r.Pos {
			c = append(c, neg(b))
		}
		reduct = append(reduct, c)
	}
	// Any proper submodel of m that satisfies the reduct disproves
	// stability.
	for a := 0; a < n; a++ {
		if !m.Contains(a) {
			reduct = append(reduct, []int{neg(a)})
		}
	}
	smaller := make([]int, 0, len(m))
	for _, a := range m {
		smaller = append(smaller, neg(a))
	}
	reduct = append(reduct, smaller)
	_, sat := solveCNF(n, reduct, true)
	return !sat
}

// Models enumerates the stable models of the ground program, sorted
// lexicographically for determinism.
func Models(p *ground.Program, opts Options) ([]Model, error) {
	n := p.NumAtoms()
	base := clausify(p)
	blocked := make([][]int, 0, 16)
	maxCand := opts.MaxCandidates
	if maxCand == 0 {
		maxCand = DefaultMaxCandidates
	}
	var out []Model
	for cand := 0; ; cand++ {
		if cand >= maxCand {
			return nil, ErrCandidateLimit
		}
		clauses := append(append([][]int{}, base...), blocked...)
		bits, sat := solveCNF(n, clauses, true)
		if !sat {
			break
		}
		m := minimize(n, base, modelFromBits(bits))
		if isStable(p, m) {
			out = append(out, m)
			if opts.MaxModels > 0 && len(out) >= opts.MaxModels {
				break
			}
		}
		// Block m and all supersets; minimal models are pairwise
		// incomparable, so no other minimal model is lost. An empty
		// minimal model means no further (distinct) models exist.
		if len(m) == 0 {
			break
		}
		block := make([]int, 0, len(m))
		for _, a := range m {
			block = append(block, neg(a))
		}
		blocked = append(blocked, block)
	}
	sort.Slice(out, func(i, j int) bool { return lessModel(out[i], out[j]) })
	return out, nil
}

func lessModel(a, b Model) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// HasStableModel reports whether the program is consistent (has at least
// one stable model).
func HasStableModel(p *ground.Program) (bool, error) {
	ms, err := Models(p, Options{MaxModels: 1})
	if err != nil {
		return false, err
	}
	return len(ms) > 0, nil
}

// Cautious returns the atoms true in every stable model (cautious/certain
// consequences), or nil if the program has no stable model.
func Cautious(models []Model) []int {
	if len(models) == 0 {
		return nil
	}
	out := append([]int(nil), models[0]...)
	for _, m := range models[1:] {
		var kept []int
		for _, a := range out {
			if m.Contains(a) {
				kept = append(kept, a)
			}
		}
		out = kept
	}
	return out
}

// Brave returns the atoms true in at least one stable model.
func Brave(models []Model) []int {
	seen := map[int]bool{}
	var out []int
	for _, m := range models {
		for _, a := range m {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Ints(out)
	return out
}

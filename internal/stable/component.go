package stable

import (
	"slices"
	"sort"

	"repro/internal/depgraph"
	"repro/internal/ground"
)

// This file splits a ground program into independent components. Two atoms
// are dependent when they co-occur in a rule (head, positive or negative
// body); the transitive closure of that relation partitions the atoms, and
// no rule spans two parts. Stable models therefore factorize: every stable
// model of the program is the union of one stable model per component plus
// the core facts, and every such union is stable (the Gelfond–Lifschitz
// reduct and its minimality check both factorize over disjoint atom sets).
// The engine exploits this by enumerating components separately — turning
// one 2^(a+b)-model search into two of 2^a and 2^b — and combining the
// per-component models lazily.

// component is one independent fragment of a ground program, re-indexed to
// dense local atom ids (local id = index into atoms).
type component struct {
	atoms []int // global atom ids, ascending
	rules []ground.Rule
	facts []int // local ids
}

// decompose partitions the program. coreFacts are fact atoms no rule
// mentions (true in every stable model); atoms mentioned by neither a rule
// nor a fact are false in every model and appear nowhere. inconsistent
// reports an atom-free ground rule — an unconditionally violated denial —
// which makes the program have no stable models at all.
func decompose(p *ground.Program) (coreFacts []int, comps []*component, inconsistent bool) {
	n := p.NumAtoms()
	uf := depgraph.NewUnionFind(n)
	inRule := make([]bool, n)
	for _, r := range p.Rules {
		first := -1
		link := func(atoms []int) {
			for _, a := range atoms {
				inRule[a] = true
				if first == -1 {
					first = a
				} else {
					uf.Union(first, a)
				}
			}
		}
		link(r.Head)
		link(r.Pos)
		link(r.Neg)
		if first == -1 {
			// A ground rule with no atoms is a violated denial: the
			// program is inconsistent regardless of everything else.
			return nil, nil, true
		}
	}

	isFact := make([]bool, n)
	for _, f := range p.Facts {
		isFact[f] = true
		if !inRule[f] {
			coreFacts = append(coreFacts, f)
		}
	}
	sort.Ints(coreFacts)
	// Hand-built programs may repeat a fact id; models must not.
	coreFacts = slices.Compact(coreFacts)

	// Group rule-connected atoms by their set representative, in ascending
	// atom order so components and their atom lists are deterministic.
	compOf := make(map[int]*component)
	for a := 0; a < n; a++ {
		if !inRule[a] {
			continue
		}
		root := uf.Find(a)
		c := compOf[root]
		if c == nil {
			c = &component{}
			compOf[root] = c
			comps = append(comps, c)
		}
		c.atoms = append(c.atoms, a)
	}

	// Local ids: position of the global id in the component's atom list.
	local := make([]int32, n)
	for _, c := range comps {
		for i, a := range c.atoms {
			local[a] = int32(i)
		}
	}
	relabel := func(atoms []int) []int {
		if len(atoms) == 0 {
			return nil
		}
		out := make([]int, len(atoms))
		for i, a := range atoms {
			out[i] = int(local[a])
		}
		return out
	}
	for _, r := range p.Rules {
		var owner int
		switch {
		case len(r.Head) > 0:
			owner = r.Head[0]
		case len(r.Pos) > 0:
			owner = r.Pos[0]
		default:
			owner = r.Neg[0]
		}
		c := compOf[uf.Find(owner)]
		c.rules = append(c.rules, ground.Rule{
			Head: relabel(r.Head),
			Pos:  relabel(r.Pos),
			Neg:  relabel(r.Neg),
		})
	}
	for _, f := range p.Facts {
		if inRule[f] {
			c := compOf[uf.Find(f)]
			c.facts = append(c.facts, int(local[f]))
		}
	}
	return coreFacts, comps, false
}

package stable

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ground"
)

func sortedModelSet(t *testing.T, p *ground.Program, opts Options) []string {
	t.Helper()
	models, err := Models(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = fmt.Sprint([]int(m))
	}
	sort.Strings(out)
	return out
}

// TestScratchSolveMatchesPersistent is the solver-reuse soundness pin: on
// randomized ground programs the scratch ablation (fresh solver per solve
// call) must produce exactly the same set of stable models as the default
// persistent solver. The per-component discovery order may differ between
// the modes, so the comparison is on sorted model sets; within each mode the
// stream must be identical for every worker count.
func TestScratchSolveMatchesPersistent(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 60; trial++ {
		p := randomGroundProgramClean(rng, 4+rng.Intn(4))
		persistent := sortedModelSet(t, p, Options{})
		scratch := sortedModelSet(t, p, Options{ScratchSolve: true})
		if len(persistent) != len(scratch) {
			t.Fatalf("trial %d: %d persistent models, %d scratch", trial, len(persistent), len(scratch))
		}
		for i := range persistent {
			if persistent[i] != scratch[i] {
				t.Fatalf("trial %d: model sets diverge at %d: %s vs %s", trial, i, persistent[i], scratch[i])
			}
		}

		// Per-mode worker invariance: each mode's stream (content and
		// order) must not depend on the worker count.
		for _, opts := range []Options{{}, {ScratchSolve: true}} {
			var sequential []string
			for _, workers := range []int{1, 4} {
				opts.Workers = workers
				var stream []string
				if err := Enumerate(p, opts, func(m Model) bool {
					stream = append(stream, fmt.Sprint([]int(m)))
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if workers == 1 {
					sequential = stream
					continue
				}
				if len(stream) != len(sequential) {
					t.Fatalf("trial %d scratch=%v workers=%d: stream length %d != %d",
						trial, opts.ScratchSolve, workers, len(stream), len(sequential))
				}
				for i := range stream {
					if stream[i] != sequential[i] {
						t.Fatalf("trial %d scratch=%v workers=%d: stream diverges at %d",
							trial, opts.ScratchSolve, workers, i)
					}
				}
			}
		}
	}
}

// TestScratchSolveBudgetDeterminism checks that the candidate budget cutoff
// in scratch mode is, like the persistent mode's, a pure function of the
// demanded stream: same prefix and same error at every worker count. (The
// two modes may legitimately cut off at different points — candidate counts
// differ when discovery orders do — so each mode is only compared with
// itself.)
func TestScratchSolveBudgetDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p := randomGroundProgramClean(rng, 7)
	for _, budget := range []int{1, 2, 4, 8, 1 << 16} {
		type outcome struct {
			models []string
			err    error
		}
		collect := func(workers int) outcome {
			var out outcome
			out.err = Enumerate(p, Options{ScratchSolve: true, MaxCandidates: budget, Workers: workers},
				func(m Model) bool {
					out.models = append(out.models, fmt.Sprint([]int(m)))
					return true
				})
			return out
		}
		seq := collect(1)
		for _, workers := range []int{2, 4} {
			par := collect(workers)
			if seq.err != par.err {
				t.Fatalf("budget=%d workers=%d: err %v != sequential %v", budget, workers, par.err, seq.err)
			}
			if len(par.models) != len(seq.models) {
				t.Fatalf("budget=%d workers=%d: %d models != sequential %d", budget, workers, len(par.models), len(seq.models))
			}
			for i := range par.models {
				if par.models[i] != seq.models[i] {
					t.Fatalf("budget=%d workers=%d: stream diverges at %d", budget, workers, i)
				}
			}
		}
	}
}

package stable

import (
	"repro/internal/depgraph"
	"repro/internal/ground"
)

// This file implements Section 6: head-cycle-freeness (Ben-Eliyahu &
// Dechter) and the shift transformation sh(Π) that turns an HCF disjunctive
// program into a normal program with the same stable models, dropping the
// data complexity of query evaluation from Π₂ᵖ to coNP.

// DependencyGraph builds the positive atom dependency graph of the ground
// program: an edge from every positive body atom to every head atom of the
// same rule.
func DependencyGraph(p *ground.Program) [][]int {
	adj := make([][]int, p.NumAtoms())
	for _, r := range p.Rules {
		for _, b := range r.Pos {
			adj[b] = append(adj[b], r.Head...)
		}
	}
	return adj
}

// IsHCF reports whether the ground program is head-cycle-free: no rule has
// two distinct head atoms in the same strongly connected component of the
// positive dependency graph (SCCs via depgraph.SCC).
func IsHCF(p *ground.Program) bool {
	comp := depgraph.SCC(DependencyGraph(p))
	for _, r := range p.Rules {
		for i := 0; i < len(r.Head); i++ {
			for j := i + 1; j < len(r.Head); j++ {
				if r.Head[i] != r.Head[j] && comp[r.Head[i]] == comp[r.Head[j]] {
					return false
				}
			}
		}
	}
	return true
}

// Shift applies the shift transformation: every disjunctive rule
// a1 v ... v an :- B becomes the n normal rules ai :- B, not a(j≠i).
// For HCF programs sh(Π) has exactly the stable models of Π
// (Ben-Eliyahu & Dechter 1994); for non-HCF programs it may lose models.
func Shift(p *ground.Program) *ground.Program {
	out := &ground.Program{
		Names: p.Names,
		Atoms: p.Atoms,
		Facts: append([]int(nil), p.Facts...),
	}
	for _, r := range p.Rules {
		if len(r.Head) <= 1 {
			out.Rules = append(out.Rules, r)
			continue
		}
		for i := range r.Head {
			neg := append([]int(nil), r.Neg...)
			for j, h := range r.Head {
				if j != i {
					neg = append(neg, h)
				}
			}
			out.Rules = append(out.Rules, ground.Rule{
				Head: []int{r.Head[i]},
				Pos:  append([]int(nil), r.Pos...),
				Neg:  neg,
			})
		}
	}
	return out
}

package stable

import (
	"testing"

	"repro/internal/ground"
	"repro/internal/logic"
	"repro/internal/term"
)

func TestEmptyProgram(t *testing.T) {
	gp := &ground.Program{}
	ms := mustModels(t, gp)
	if len(ms) != 1 || len(ms[0]) != 0 {
		t.Errorf("empty program models = %v, want one empty model", ms)
	}
}

func TestFactsOnlyProgram(t *testing.T) {
	p := &logic.Program{
		Facts: []term.Atom{atom("p", c("a")), atom("q", c("b"))},
	}
	gp := groundProgram(t, p)
	ms := mustModels(t, gp)
	if len(ms) != 1 || len(ms[0]) != 2 {
		t.Errorf("facts-only models = %v", modelNames(gp, ms))
	}
}

func TestUnconditionalContradiction(t *testing.T) {
	// A ground constraint with an empty body is unsatisfiable.
	p := &logic.Program{
		Facts: []term.Atom{atom("p", c("a")), atom("q", c("a"))},
		Rules: []logic.Rule{
			{Pos: []term.Atom{atom("p", v("x")), atom("q", v("x"))}},
		},
	}
	gp := groundProgram(t, p)
	ms := mustModels(t, gp)
	if len(ms) != 0 {
		t.Errorf("contradictory program has models: %v", modelNames(gp, ms))
	}
}

func TestMaxModelsCap(t *testing.T) {
	// a v b; c v d: four stable models, capped at 2.
	p := &logic.Program{
		Facts: []term.Atom{atom("seed")},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("a"), atom("b")}, Pos: []term.Atom{atom("seed")}},
			{Head: []term.Atom{atom("cc"), atom("dd")}, Pos: []term.Atom{atom("seed")}},
		},
	}
	gp := groundProgram(t, p)
	all := mustModels(t, gp)
	if len(all) != 4 {
		t.Fatalf("models = %d, want 4", len(all))
	}
	capped, err := Models(gp, Options{MaxModels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 2 {
		t.Errorf("capped models = %d, want 2", len(capped))
	}
}

func TestCandidateLimit(t *testing.T) {
	p := &logic.Program{
		Facts: []term.Atom{atom("seed")},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("a"), atom("b")}, Pos: []term.Atom{atom("seed")}},
		},
	}
	gp := groundProgram(t, p)
	if _, err := Models(gp, Options{MaxCandidates: 1}); err != ErrCandidateLimit {
		t.Errorf("err = %v, want ErrCandidateLimit", err)
	}
}

func TestChainPropagation(t *testing.T) {
	// A long implication chain exercises unit propagation.
	p := &logic.Program{Facts: []term.Atom{atom("n0")}}
	for i := 0; i < 50; i++ {
		p.Rules = append(p.Rules, logic.Rule{
			Head: []term.Atom{{Pred: "n" + itoa(i+1)}},
			Pos:  []term.Atom{{Pred: "n" + itoa(i)}},
		})
	}
	gp := groundProgram(t, p)
	ms := mustModels(t, gp)
	if len(ms) != 1 || len(ms[0]) != 51 {
		t.Errorf("chain model = %v", modelNames(gp, ms))
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestChoiceGrid(t *testing.T) {
	// n independent binary choices => 2^n stable models; exercises the
	// blocking-clause enumeration.
	const n = 6
	p := &logic.Program{Facts: []term.Atom{atom("seed")}}
	for i := 0; i < n; i++ {
		p.Rules = append(p.Rules, logic.Rule{
			Head: []term.Atom{{Pred: "l" + itoa(i)}, {Pred: "r" + itoa(i)}},
			Pos:  []term.Atom{atom("seed")},
		})
	}
	gp := groundProgram(t, p)
	ms := mustModels(t, gp)
	if len(ms) != 1<<n {
		t.Errorf("models = %d, want %d", len(ms), 1<<n)
	}
}

func TestModelContains(t *testing.T) {
	m := Model{1, 3, 5}
	for _, a := range []int{1, 3, 5} {
		if !m.Contains(a) {
			t.Errorf("Contains(%d) = false", a)
		}
	}
	for _, a := range []int{0, 2, 4, 6} {
		if m.Contains(a) {
			t.Errorf("Contains(%d) = true", a)
		}
	}
}

func TestSATSolverDirect(t *testing.T) {
	// (a ∨ b) ∧ (¬a ∨ b) ∧ (¬b ∨ c): unit-propagation-heavy instance.
	clauses := [][]int{
		{pos(0), pos(1)},
		{neg(0), pos(1)},
		{neg(1), pos(2)},
	}
	bits, sat := solveCNF(3, clauses, true)
	if !sat {
		t.Fatal("satisfiable instance reported UNSAT")
	}
	if !bits[1] || !bits[2] {
		t.Errorf("model = %v, want b and c true", bits)
	}
	// Pigeonhole 3 pigeons / 2 holes: UNSAT.
	varOf := func(p, h int) int { return p*2 + h }
	var ph [][]int
	for p := 0; p < 3; p++ {
		ph = append(ph, []int{pos(varOf(p, 0)), pos(varOf(p, 1))})
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				ph = append(ph, []int{neg(varOf(p1, h)), neg(varOf(p2, h))})
			}
		}
	}
	if _, sat := solveCNF(6, ph, false); sat {
		t.Error("pigeonhole 3/2 reported SAT")
	}
}

func TestTautologyClauses(t *testing.T) {
	// A tautological clause (a ∨ ¬a) must be ignored, not break watches.
	clauses := [][]int{
		{pos(0), neg(0)},
		{pos(1)},
	}
	bits, sat := solveCNF(2, clauses, true)
	if !sat || !bits[1] {
		t.Errorf("bits=%v sat=%v", bits, sat)
	}
	// Duplicate literals are deduplicated.
	clauses2 := [][]int{{pos(0), pos(0), pos(0)}}
	if _, sat := solveCNF(1, clauses2, true); !sat {
		t.Error("duplicate-literal clause broke the solver")
	}
	// An empty clause is UNSAT.
	if _, sat := solveCNF(1, [][]int{{}}, true); sat {
		t.Error("empty clause reported SAT")
	}
}

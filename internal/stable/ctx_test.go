package stable

import (
	"context"
	"errors"
	"testing"
)

// TestEnumerateCtxCancel pins the cancellation contract: a cancelled
// context aborts the model stream with ctx.Err() instead of reporting a
// (spuriously complete) enumeration, for both the lazy and parallel
// drivers.
func TestEnumerateCtxCancel(t *testing.T) {
	// Ten independent binary components: 2^10 combined models.
	gp := groundProgram(t, choiceProgram(10))

	var full int
	if err := Enumerate(gp, Options{}, func(Model) bool { full++; return true }); err != nil {
		t.Fatal(err)
	}
	if full != 1024 {
		t.Fatalf("full stream = %d models, want 1024", full)
	}

	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		err := EnumerateCtx(ctx, gp, Options{Workers: workers}, func(Model) bool {
			seen++
			if seen == 3 {
				cancel()
			}
			return true
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if seen >= full {
			t.Errorf("workers=%d: cancelled stream still delivered all %d models", workers, seen)
		}
	}

	// Pre-cancelled: no models at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := EnumerateCtx(ctx, gp, Options{}, func(Model) bool {
		t.Fatal("model delivered on a pre-cancelled context")
		return false
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
}

package stable

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ground"
	"repro/internal/logic"
	"repro/internal/term"
)

func v(name string) term.T                       { return term.V(name) }
func atom(pred string, args ...term.T) term.Atom { return term.NewAtom(pred, args...) }
func c(s string) term.T                          { return term.CStr(s) }

func groundProgram(t *testing.T, p *logic.Program) *ground.Program {
	t.Helper()
	gp, err := ground.Ground(p)
	if err != nil {
		t.Fatal(err)
	}
	return gp
}

// modelNames renders models as sorted atom-name sets for readable asserts.
func modelNames(gp *ground.Program, ms []Model) [][]string {
	out := make([][]string, len(ms))
	for i, m := range ms {
		for _, a := range m {
			out[i] = append(out[i], gp.Names[a])
		}
	}
	return out
}

func mustModels(t *testing.T, gp *ground.Program) []Model {
	t.Helper()
	ms, err := Models(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func namesContain(t *testing.T, got [][]string, want []string) bool {
	t.Helper()
	for _, m := range got {
		if reflect.DeepEqual(m, want) {
			return true
		}
	}
	return false
}

func TestEvenNegationLoop(t *testing.T) {
	// a :- not b. b :- not a. => two stable models {a}, {b}.
	p := &logic.Program{
		Facts: []term.Atom{atom("seed")},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("a")}, Pos: []term.Atom{atom("seed")}, Neg: []term.Atom{atom("b")}},
			{Head: []term.Atom{atom("b")}, Pos: []term.Atom{atom("seed")}, Neg: []term.Atom{atom("a")}},
		},
	}
	gp := groundProgram(t, p)
	ms := mustModels(t, gp)
	if len(ms) != 2 {
		t.Fatalf("models = %v", modelNames(gp, ms))
	}
	got := modelNames(gp, ms)
	if !namesContain(t, got, []string{"seed", "a"}) && !namesContain(t, got, []string{"a", "seed"}) {
		t.Errorf("missing {seed,a}: %v", got)
	}
}

func TestOddNegationLoopInconsistent(t *testing.T) {
	// a :- not a. => no stable model.
	p := &logic.Program{
		Facts: []term.Atom{atom("seed")},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("a")}, Pos: []term.Atom{atom("seed")}, Neg: []term.Atom{atom("a")}},
		},
	}
	gp := groundProgram(t, p)
	if ms := mustModels(t, gp); len(ms) != 0 {
		t.Errorf("models = %v", modelNames(gp, ms))
	}
	ok, err := HasStableModel(gp)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("HasStableModel = true")
	}
}

func TestDisjunctiveSplit(t *testing.T) {
	// a v b. => stable models {a} and {b}; never {a,b} (not minimal).
	p := &logic.Program{
		Facts: []term.Atom{atom("seed")},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("a"), atom("b")}, Pos: []term.Atom{atom("seed")}},
		},
	}
	gp := groundProgram(t, p)
	ms := mustModels(t, gp)
	if len(ms) != 2 {
		t.Fatalf("models = %v", modelNames(gp, ms))
	}
	for _, m := range ms {
		if len(m) != 2 { // seed + one disjunct
			t.Errorf("non-minimal model %v", modelNames(gp, []Model{m}))
		}
	}
}

func TestDisjunctionWithDependence(t *testing.T) {
	// a v b. a :- b. b :- a. => the single stable model {a,b}
	// (not HCF: shifting loses it).
	p := &logic.Program{
		Facts: []term.Atom{atom("seed")},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("a"), atom("b")}, Pos: []term.Atom{atom("seed")}},
			{Head: []term.Atom{atom("a")}, Pos: []term.Atom{atom("b")}},
			{Head: []term.Atom{atom("b")}, Pos: []term.Atom{atom("a")}},
		},
	}
	gp := groundProgram(t, p)
	ms := mustModels(t, gp)
	if len(ms) != 1 || len(ms[0]) != 3 {
		t.Fatalf("models = %v", modelNames(gp, ms))
	}
	if IsHCF(gp) {
		t.Error("program must not be HCF")
	}
	shifted := Shift(gp)
	sms := mustModels(t, shifted)
	if len(sms) != 0 {
		t.Errorf("shifted models = %v (shift must lose the non-HCF model)", modelNames(shifted, sms))
	}
}

func TestConstraintPrunesModels(t *testing.T) {
	// a v b. :- b. => only {a}.
	p := &logic.Program{
		Facts: []term.Atom{atom("seed")},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("a"), atom("b")}, Pos: []term.Atom{atom("seed")}},
			{Pos: []term.Atom{atom("b")}},
		},
	}
	gp := groundProgram(t, p)
	ms := mustModels(t, gp)
	if len(ms) != 1 {
		t.Fatalf("models = %v", modelNames(gp, ms))
	}
	got := modelNames(gp, ms)[0]
	for _, name := range got {
		if name == "b" {
			t.Errorf("b survives its constraint: %v", got)
		}
	}
}

func TestStratifiedUnique(t *testing.T) {
	// Classic stratified program has exactly one stable model.
	p := &logic.Program{
		Facts: []term.Atom{atom("edge", c("a"), c("b")), atom("edge", c("b"), c("c"))},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("reach", v("x"), v("y"))}, Pos: []term.Atom{atom("edge", v("x"), v("y"))}},
			{
				Head: []term.Atom{atom("reach", v("x"), v("z"))},
				Pos:  []term.Atom{atom("reach", v("x"), v("y")), atom("edge", v("y"), v("z"))},
			},
			{
				Head: []term.Atom{atom("unreached", v("x"), v("y"))},
				Pos:  []term.Atom{atom("edge", v("x"), v("y")), atom("edge", v("y"), v("x"))},
			},
		},
	}
	gp := groundProgram(t, p)
	ms := mustModels(t, gp)
	if len(ms) != 1 {
		t.Fatalf("models = %v", modelNames(gp, ms))
	}
	names := modelNames(gp, ms)[0]
	has := func(s string) bool {
		for _, n := range names {
			if n == s {
				return true
			}
		}
		return false
	}
	if !has("reach(a,c)") || has("unreached(a,b)") {
		t.Errorf("model = %v", names)
	}
}

func TestCautiousAndBrave(t *testing.T) {
	p := &logic.Program{
		Facts: []term.Atom{atom("seed")},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("a"), atom("b")}, Pos: []term.Atom{atom("seed")}},
			{Head: []term.Atom{atom("cm")}, Pos: []term.Atom{atom("a")}},
			{Head: []term.Atom{atom("cm")}, Pos: []term.Atom{atom("b")}},
		},
	}
	gp := groundProgram(t, p)
	ms := mustModels(t, gp)
	caut := Cautious(ms)
	brave := Brave(ms)
	// cm and seed are cautious; a and b only brave.
	cautNames := map[string]bool{}
	for _, a := range caut {
		cautNames[gp.Names[a]] = true
	}
	if !cautNames["cm"] || !cautNames["seed"] || cautNames["a"] || cautNames["b"] {
		t.Errorf("cautious = %v", cautNames)
	}
	if len(brave) != 4 {
		t.Errorf("brave = %d atoms", len(brave))
	}
	if Cautious(nil) != nil {
		t.Error("cautious of no models must be nil")
	}
}

func TestHCFDetection(t *testing.T) {
	// a v b :- seed. (no positive cycle between a and b) => HCF.
	p := &logic.Program{
		Facts: []term.Atom{atom("seed")},
		Rules: []logic.Rule{
			{Head: []term.Atom{atom("a"), atom("b")}, Pos: []term.Atom{atom("seed")}},
		},
	}
	gp := groundProgram(t, p)
	if !IsHCF(gp) {
		t.Error("disjunctive program without head cycles must be HCF")
	}
	// Shift preserves the stable models for HCF programs.
	ms := mustModels(t, gp)
	sms := mustModels(t, Shift(gp))
	if len(ms) != len(sms) {
		t.Errorf("HCF shift changed model count: %d vs %d", len(ms), len(sms))
	}
}

// --- brute-force cross-check -------------------------------------------------

// bruteStable enumerates all subsets and checks the Gelfond–Lifschitz
// condition directly.
func bruteStable(p *ground.Program) []Model {
	n := p.NumAtoms()
	var out []Model
	for mask := 0; mask < 1<<n; mask++ {
		m := Model{}
		for a := 0; a < n; a++ {
			if mask&(1<<a) != 0 {
				m = append(m, a)
			}
		}
		if isClassicalModel(p, m) && bruteMinimalReduct(p, m) {
			out = append(out, m)
		}
	}
	return out
}

func isClassicalModel(p *ground.Program, m Model) bool {
	for _, f := range p.Facts {
		if !m.Contains(f) {
			return false
		}
	}
	for _, r := range p.Rules {
		bodyTrue := true
		for _, b := range r.Pos {
			if !m.Contains(b) {
				bodyTrue = false
				break
			}
		}
		for _, b := range r.Neg {
			if m.Contains(b) {
				bodyTrue = false
				break
			}
		}
		if !bodyTrue {
			continue
		}
		headTrue := false
		for _, h := range r.Head {
			if m.Contains(h) {
				headTrue = true
				break
			}
		}
		if !headTrue {
			return false
		}
	}
	return true
}

// bruteMinimalReduct checks that no proper subset of m models the reduct.
func bruteMinimalReduct(p *ground.Program, m Model) bool {
	var reduct []ground.Rule
	for _, r := range p.Rules {
		blocked := false
		for _, b := range r.Neg {
			if m.Contains(b) {
				blocked = true
				break
			}
		}
		if !blocked {
			reduct = append(reduct, ground.Rule{Head: r.Head, Pos: r.Pos})
		}
	}
	reductProg := &ground.Program{Names: p.Names, Atoms: p.Atoms, Facts: p.Facts, Rules: reduct}
	k := len(m)
	for sub := 0; sub < 1<<k; sub++ {
		if sub == (1<<k)-1 {
			continue // the full set
		}
		var mm Model
		for i := 0; i < k; i++ {
			if sub&(1<<i) != 0 {
				mm = append(mm, m[i])
			}
		}
		if isClassicalModel(reductProg, mm) {
			return false
		}
	}
	return true
}

func overlap(a, b []int) bool {
	set := map[int]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, y := range b {
		if set[y] {
			return true
		}
	}
	return false
}

func TestModelsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 400; trial++ {
		p := randomGroundProgramClean(rng, 6)
		got, err := Models(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteStable(p)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d models %v, want %d %v\nprogram:\n%s",
				trial, len(got), got, len(want), want, p)
		}
		wantKeys := map[string]bool{}
		for _, m := range want {
			wantKeys[modelKey(m)] = true
		}
		for _, m := range got {
			if !wantKeys[modelKey(m)] {
				t.Fatalf("trial %d: spurious model %v, want %v\nprogram:\n%s", trial, m, want, p)
			}
		}
	}
}

func TestShiftEquivalenceOnHCF(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for trial := 0; trial < 600 && checked < 200; trial++ {
		p := randomGroundProgramClean(rng, 6)
		if !IsHCF(p) {
			continue
		}
		checked++
		got, err := Models(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		shifted, err := Models(Shift(p), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(shifted) {
			t.Fatalf("trial %d: HCF shift changed models: %v vs %v\nprogram:\n%s", trial, got, shifted, p)
		}
		keys := map[string]bool{}
		for _, m := range got {
			keys[modelKey(m)] = true
		}
		for _, m := range shifted {
			if !keys[modelKey(m)] {
				t.Fatalf("trial %d: shifted model %v missing from original\nprogram:\n%s", trial, m, p)
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d HCF programs sampled", checked)
	}
}

func modelKey(m Model) string {
	out := ""
	for _, a := range m {
		out += string(rune('0' + a))
	}
	return out
}

// randomGroundProgramClean is randomGroundProgram with names usable by
// Program.String (Atoms left nil-safe).
func randomGroundProgramClean(rng *rand.Rand, nAtoms int) *ground.Program {
	p := &ground.Program{}
	for a := 0; a < nAtoms; a++ {
		p.Names = append(p.Names, string(rune('a'+a)))
	}
	for a := 0; a < nAtoms; a++ {
		if rng.Intn(4) == 0 {
			p.Facts = append(p.Facts, a)
		}
	}
	nRules := 2 + rng.Intn(5)
	for i := 0; i < nRules; i++ {
		var r ground.Rule
		for a := 0; a < nAtoms; a++ {
			switch rng.Intn(6) {
			case 0:
				r.Head = append(r.Head, a)
			case 1:
				r.Pos = append(r.Pos, a)
			case 2:
				if rng.Intn(2) == 0 {
					r.Neg = append(r.Neg, a)
				}
			}
		}
		if overlap(r.Head, r.Pos) || overlap(r.Head, r.Neg) || overlap(r.Pos, r.Neg) {
			continue
		}
		p.Rules = append(p.Rules, r)
	}
	return p
}

package stable

// A conflict-driven clause-learning (CDCL) SAT solver — the search core of
// the stable-model engine. Compared with the DPLL core it replaces, the
// solver learns a first-UIP clause at every conflict, backjumps
// non-chronologically, branches by VSIDS-style activity with phase saving,
// and solves incrementally: clauses can be added between solve calls
// (blocking clauses, minimization descents) and each call may carry
// assumptions, so model enumeration, the minimization descent and the
// GL-reduct minimality check all share one solver and its learned clauses.
//
// Literal encoding: variable v (0-based) contributes literals 2v (positive)
// and 2v+1 (negative). All operations are deterministic: activity ties break
// by variable id, so a fixed clause stream yields a fixed model stream.

// lit constructors.
func pos(v int) int { return 2 * v }
func neg(v int) int { return 2*v + 1 }

func litVar(l int) int   { return l >> 1 }
func litSign(l int) bool { return l&1 == 0 } // true = positive

func negate(l int) int { return l ^ 1 }

// noReason marks decision (and assumption) variables on the trail.
const noReason = -1

type clause struct {
	lits   []int
	learnt bool
}

type solver struct {
	clauses []*clause
	watches [][]int32 // literal -> indices of clauses watching it
	assign  []int8    // -1 unassigned, 0 false, 1 true
	level   []int32   // decision level per variable
	reason  []int32   // antecedent clause index per variable, or noReason

	trail    []int // assigned literals in order
	trailLim []int // trail length at the start of each decision level
	qhead    int   // propagation queue head into trail

	activity []float64
	varInc   float64
	heap     []int // max-heap of variables ordered by activity
	heapPos  []int // variable -> heap index, -1 when absent
	phase    []int8

	seen []bool // conflict-analysis scratch
	ok   bool   // false once the clause set is UNSAT at level 0

	// lastAssumps remembers the previous solveWith's assumptions so the
	// next call can keep the trail prefix both calls share instead of
	// restarting from level 0 — the Δ-seeded re-solve: when consecutive
	// solves differ in a few assumptions (the minimization descent, or a
	// candidate solve after a blocking clause), only the differing suffix
	// is re-searched.
	lastAssumps []int

	// deferred holds retirement units (see retireLater) not yet applied:
	// enqueueing a unit forces a full restart to level 0, so enumeration
	// selectors are retired lazily, in a batch, right before the next
	// sweep — which is when the units are needed to reclaim their clauses.
	deferred []int

	// rootAssigns counts level-0 assignments since the last sweep of
	// satisfied clauses; enumeration retires selector variables with
	// level-0 units, so without sweeping, dead descent/strictness/learned
	// clauses would accumulate in the watch lists forever.
	rootAssigns int

	// stop, when non-nil, is polled at every conflict and decision so a
	// cancelled enumeration abandons an in-flight solve promptly. A solve
	// interrupted this way reports UNSAT; callers only cancel when the
	// result is discarded.
	stop func() bool
}

func newSolver(nVars int) *solver {
	s := &solver{ok: true, varInc: 1}
	for v := 0; v < nVars; v++ {
		s.newVar()
	}
	return s
}

// newVar grows the solver by one variable and returns its id. The default
// phase is false, which biases enumeration toward small models.
func (s *solver) newVar() int {
	v := len(s.assign)
	s.watches = append(s.watches, nil, nil)
	s.assign = append(s.assign, -1)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, noReason)
	s.activity = append(s.activity, 0)
	s.heapPos = append(s.heapPos, -1)
	s.phase = append(s.phase, 0)
	s.seen = append(s.seen, false)
	s.heapInsert(v)
	return v
}

func (s *solver) litValue(l int) int8 {
	v := s.assign[litVar(l)]
	if v == -1 {
		return -1
	}
	if litSign(l) {
		return v
	}
	return 1 - v
}

func (s *solver) decisionLevel() int { return len(s.trailLim) }

// dedupLits removes duplicate literals; returns nil, false for tautologies.
func dedupLits(c []int) ([]int, bool) {
	seen := map[int]bool{}
	out := make([]int, 0, len(c))
	for _, l := range c {
		if seen[negate(l)] {
			return nil, false
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out, true
}

// addClause registers a clause without abandoning the search trail: literals
// false at level 0 are dropped, a clause satisfied at level 0 is discarded,
// and the solver backtracks only as far as needed to leave the clause with
// two watchable (non-false) literals — blocking and descent clauses land
// mid-search with a minimal backjump instead of a restart. Unit clauses are
// permanent consequences and do go to level 0. Returns false if the clause
// set became UNSAT.
func (s *solver) addClause(c []int) bool {
	if !s.ok {
		return false
	}
	cc, keep := dedupLits(c)
	if !keep {
		return true // tautology
	}
	lits := cc[:0]
	for _, l := range cc {
		switch s.litValue(l) {
		case 1:
			if s.level[litVar(l)] == 0 {
				return true // already satisfied forever
			}
			lits = append(lits, l)
		case 0:
			if s.level[litVar(l)] != 0 {
				lits = append(lits, l)
			}
			// level-0 false literals are dropped
		default:
			lits = append(lits, l)
		}
	}
	switch len(lits) {
	case 0:
		s.cancelUntil(0)
		s.ok = false
		return false
	case 1:
		s.cancelUntil(0)
		s.uncheckedEnqueue(lits[0], noReason) // non-false above level 0, so unassigned now
		return true
	}
	// Backtrack just far enough that two literals are watchable: to keep a
	// falsified watch detectable by propagate, a watch must not already be
	// false when attached.
	nonFalse := 0
	hi1, hi2 := 0, 0 // the two highest false-literal levels
	for _, l := range lits {
		if s.litValue(l) != 0 {
			nonFalse++
			continue
		}
		lvl := int(s.level[litVar(l)])
		if lvl > hi1 {
			hi1, hi2 = lvl, hi1
		} else if lvl > hi2 {
			hi2 = lvl
		}
	}
	switch nonFalse {
	case 0:
		s.cancelUntil(hi2 - 1) // unassigns the two deepest false literals
	case 1:
		s.cancelUntil(hi1 - 1) // unassigns the deepest false literal
	}
	w := 0
	for i, l := range lits {
		if s.litValue(l) != 0 {
			lits[w], lits[i] = lits[i], lits[w]
			w++
			if w == 2 {
				break
			}
		}
	}
	s.attach(&clause{lits: lits})
	return true
}

// retireLater schedules a unit clause (a retired enumeration selector) to be
// added at the next sweep. Until then the selector merely floats: nothing
// forces it true, so its descent/strictness clauses are satisfiable by its
// negation and every model remains a model of the eventual clause set —
// deferring only avoids the restart-to-level-0 an immediate unit would cost.
func (s *solver) retireLater(l int) {
	s.deferred = append(s.deferred, l)
}

func (s *solver) attach(c *clause) {
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, c)
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], ci)
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], ci)
}

func (s *solver) uncheckedEnqueue(l int, reason int32) {
	v := litVar(l)
	if litSign(l) {
		s.assign[v] = 1
	} else {
		s.assign[v] = 0
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = reason
	s.trail = append(s.trail, l)
	if s.decisionLevel() == 0 {
		s.rootAssigns++
	}
}

// propagate runs unit propagation to fixpoint; it returns the index of a
// conflicting clause, or -1.
func (s *solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		falsified := negate(p)
		ws := s.watches[falsified]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			c := s.clauses[ci].lits
			if c[0] == falsified {
				c[0], c[1] = c[1], c[0]
			}
			// Invariant: c[1] == falsified.
			if s.litValue(c[0]) == 1 {
				kept = append(kept, ci)
				continue
			}
			found := false
			for k := 2; k < len(c); k++ {
				if s.litValue(c[k]) != 0 {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1]] = append(s.watches[c[1]], ci)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting on c[0].
			kept = append(kept, ci)
			if s.litValue(c[0]) == 0 {
				kept = append(kept, ws[wi+1:]...)
				s.watches[falsified] = kept
				s.qhead = len(s.trail)
				return ci
			}
			s.uncheckedEnqueue(c[0], ci)
		}
		s.watches[falsified] = kept
	}
	return -1
}

// analyze derives the first-UIP learned clause from a conflict. It returns
// the clause (asserting literal first) and the backjump level.
func (s *solver) analyze(confl int32) ([]int, int) {
	s.varInc /= varDecay
	learnt := []int{0} // slot for the asserting literal
	counter := 0
	p := -1
	index := len(s.trail) - 1
	cur := s.decisionLevel()
	for {
		c := s.clauses[confl].lits
		for _, q := range c {
			if q == p {
				continue
			}
			v := litVar(q)
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bump(v)
			if int(s.level[v]) >= cur {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		for !s.seen[litVar(s.trail[index])] {
			index--
		}
		p = s.trail[index]
		index--
		s.seen[litVar(p)] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[litVar(p)]
	}
	learnt[0] = negate(p)
	for _, q := range learnt[1:] {
		s.seen[litVar(q)] = false
	}
	// Backjump to the second-highest level in the clause, moving one of its
	// literals into the watch position.
	bt := 0
	for i := 1; i < len(learnt); i++ {
		if int(s.level[litVar(learnt[i])]) > bt {
			bt = int(s.level[litVar(learnt[i])])
			learnt[1], learnt[i] = learnt[i], learnt[1]
		}
	}
	return learnt, bt
}

const (
	varDecay    = 0.95
	activityCap = 1e100
)

func (s *solver) bump(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > activityCap {
		for i := range s.activity {
			s.activity[i] /= activityCap
		}
		s.varInc /= activityCap
	}
	if s.heapPos[v] != -1 {
		s.heapUp(s.heapPos[v])
	}
}

// record installs a learned clause and enqueues its asserting literal. The
// caller has already backjumped to the clause's assertion level.
func (s *solver) record(learnt []int) {
	if len(learnt) == 1 {
		s.uncheckedEnqueue(learnt[0], noReason)
		return
	}
	c := &clause{lits: learnt, learnt: true}
	ci := int32(len(s.clauses))
	s.attach(c)
	s.uncheckedEnqueue(learnt[0], ci)
}

// cancelUntil undoes all assignments above the given decision level, saving
// phases and restoring branch candidates.
func (s *solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	mark := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= mark; i-- {
		v := litVar(s.trail[i])
		s.phase[v] = s.assign[v]
		s.assign[v] = -1
		s.reason[v] = noReason
		if s.heapPos[v] == -1 {
			s.heapInsert(v)
		}
	}
	s.trail = s.trail[:mark]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = mark
}

func (s *solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

// pickBranchLit pops the highest-activity unassigned variable and returns
// its saved-phase literal, or -1 when every variable is assigned.
func (s *solver) pickBranchLit() int {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] == -1 {
			if s.phase[v] == 1 {
				return pos(v)
			}
			return neg(v)
		}
	}
	return -1
}

// solveWith searches for a model under the given assumptions. Assumption i
// is decided at level i+1, so conflict clauses can backjump through them and
// be re-applied. It returns false when the clause set is UNSAT under the
// assumptions (or the stop hook fired). On true, every variable is assigned;
// read the model from assign before the next addClause or solveWith call.
// sweepThreshold schedules the satisfied-clause sweep: once this many
// level-0 assignments have accumulated, the next solve call garbage-collects
// root-satisfied clauses before searching.
const sweepThreshold = 32

func (s *solver) solveWith(assumps []int) bool {
	if !s.ok {
		return false
	}
	if s.rootAssigns+len(s.deferred) >= sweepThreshold {
		// Flush the deferred retirement units and garbage-collect: both
		// need level 0, and batching them here means only the sweep pays
		// the restart.
		s.cancelUntil(0)
		deferred := s.deferred
		s.deferred = s.deferred[:0]
		for _, l := range deferred {
			if !s.addClause([]int{l}) {
				return false
			}
		}
		s.sweepSatisfied()
		s.rootAssigns = 0
	}
	// Keep the trail prefix the previous call's assumptions share with this
	// one: those levels hold only matching assumption decisions and their
	// consequences under the clause set, so they are valid verbatim — the
	// minimization descent re-solves only the suffix that changed. When the
	// new assumptions are a prefix of the previous ones (in particular,
	// when there are none), every retained level beyond them is kept as a
	// plain decision: models found under it satisfy the full clause set,
	// and conflict-driven learning undoes it when the subspace is exhausted,
	// so completeness is unaffected.
	cp := 0
	for cp < len(assumps) && cp < len(s.lastAssumps) && assumps[cp] == s.lastAssumps[cp] {
		cp++
	}
	if cp < len(assumps) {
		s.cancelUntil(cp)
	}
	s.lastAssumps = append(s.lastAssumps[:0], assumps...)
	for {
		confl := s.propagate()
		if confl != -1 {
			if s.stop != nil && s.stop() {
				return false
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return false
			}
			learnt, bt := s.analyze(confl)
			s.cancelUntil(bt)
			s.record(learnt)
			continue
		}
		// Re-apply assumptions up to the current level.
		next := -1
		for next == -1 && s.decisionLevel() < len(assumps) {
			p := assumps[s.decisionLevel()]
			switch s.litValue(p) {
			case 1:
				s.newDecisionLevel() // already holds: dummy level keeps the mapping
			case 0:
				return false // falsified by level 0 and earlier assumptions
			default:
				next = p
			}
		}
		if next == -1 {
			if s.stop != nil && s.stop() {
				return false
			}
			next = s.pickBranchLit()
			if next == -1 {
				return true // every variable assigned: model found
			}
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, noReason)
	}
}

// sweepSatisfied detaches and frees every clause satisfied at level 0 —
// blocking clauses of supersets already excluded by units, descent and
// strictness clauses whose selector was retired, and learned clauses
// containing a retired selector. Must run at decision level 0; clause slots
// are nil'ed rather than compacted so reason indices stay valid (reasons of
// level-0 variables are never dereferenced by analyze).
func (s *solver) sweepSatisfied() {
	for ci, c := range s.clauses {
		if c == nil {
			continue
		}
		satisfied := false
		for _, l := range c.lits {
			if s.litValue(l) == 1 {
				satisfied = true
				break
			}
		}
		if !satisfied {
			continue
		}
		s.detachWatch(c.lits[0], int32(ci))
		s.detachWatch(c.lits[1], int32(ci))
		s.clauses[ci] = nil
	}
}

func (s *solver) detachWatch(l int, ci int32) {
	ws := s.watches[l]
	for i, w := range ws {
		if w == ci {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

// --- activity-ordered variable heap (max-heap, ties by variable id) --------

func (s *solver) heapLess(a, b int) bool {
	if s.activity[a] != s.activity[b] {
		return s.activity[a] > s.activity[b]
	}
	return a < b
}

func (s *solver) heapInsert(v int) {
	s.heapPos[v] = len(s.heap)
	s.heap = append(s.heap, v)
	s.heapUp(len(s.heap) - 1)
}

func (s *solver) heapPop() int {
	v := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heapPos[s.heap[0]] = 0
	s.heap = s.heap[:last]
	s.heapPos[v] = -1
	if len(s.heap) > 0 {
		s.heapDown(0)
	}
	return v
}

func (s *solver) heapUp(i int) {
	v := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(v, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.heapPos[s.heap[i]] = i
		i = parent
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *solver) heapDown(i int) {
	v := s.heap[i]
	for {
		child := 2*i + 1
		if child >= len(s.heap) {
			break
		}
		if child+1 < len(s.heap) && s.heapLess(s.heap[child+1], s.heap[child]) {
			child++
		}
		if !s.heapLess(s.heap[child], v) {
			break
		}
		s.heap[i] = s.heap[child]
		s.heapPos[s.heap[i]] = i
		i = child
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

// solveCNF solves a one-shot clause set: the historical package entry point,
// kept for the direct solver tests. preferTrue flips the default phase.
func solveCNF(nVars int, clauses [][]int, preferFalse bool) ([]bool, bool) {
	s := newSolver(nVars)
	if !preferFalse {
		for v := range s.phase {
			s.phase[v] = 1
		}
	}
	for _, c := range clauses {
		if !s.addClause(c) {
			return nil, false
		}
	}
	if !s.solveWith(nil) {
		return nil, false
	}
	model := make([]bool, nVars)
	for v := 0; v < nVars; v++ {
		model[v] = s.assign[v] == 1
	}
	return model, true
}

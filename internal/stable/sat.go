package stable

// A compact DPLL SAT solver with two watched literals, used as the search
// core for model enumeration, minimization, and the GL-reduct minimality
// check. Literal encoding: variable v (0-based) contributes literals 2v
// (positive) and 2v+1 (negative).

// lit constructors.
func pos(v int) int { return 2 * v }
func neg(v int) int { return 2*v + 1 }

func litVar(l int) int   { return l >> 1 }
func litSign(l int) bool { return l&1 == 0 } // true = positive

func negate(l int) int { return l ^ 1 }

type solver struct {
	nVars   int
	clauses [][]int
	watch   [][]int // literal -> clause indices watching it
	assign  []int8  // -1 unassigned, 0 false, 1 true
	trail   []int   // assigned literals in order
	reasons []int   // trail marks per decision level
}

func newSolver(nVars int, clauses [][]int) *solver {
	s := &solver{
		nVars:   nVars,
		watch:   make([][]int, 2*nVars),
		assign:  make([]int8, nVars),
		clauses: make([][]int, 0, len(clauses)),
	}
	for i := range s.assign {
		s.assign[i] = -1
	}
	for _, c := range clauses {
		s.addClause(c)
	}
	return s
}

// addClause registers a clause; empty clauses make the instance trivially
// unsatisfiable (tracked via a sentinel).
func (s *solver) addClause(c []int) {
	cc := dedupLits(c)
	if cc == nil {
		return // tautology
	}
	s.clauses = append(s.clauses, cc)
	idx := len(s.clauses) - 1
	if len(cc) >= 1 {
		s.watch[cc[0]] = append(s.watch[cc[0]], idx)
	}
	if len(cc) >= 2 {
		s.watch[cc[1]] = append(s.watch[cc[1]], idx)
	}
}

// dedupLits removes duplicate literals; returns nil for tautologies.
func dedupLits(c []int) []int {
	seen := map[int]bool{}
	out := make([]int, 0, len(c))
	for _, l := range c {
		if seen[negate(l)] {
			return nil
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// value of a literal under the current assignment: 1 true, 0 false, -1
// unassigned.
func (s *solver) litValue(l int) int8 {
	v := s.assign[litVar(l)]
	if v == -1 {
		return -1
	}
	if litSign(l) {
		return v
	}
	return 1 - v
}

// enqueue assigns a literal true; returns false on conflict.
func (s *solver) enqueue(l int) bool {
	switch s.litValue(l) {
	case 1:
		return true
	case 0:
		return false
	}
	if litSign(l) {
		s.assign[litVar(l)] = 1
	} else {
		s.assign[litVar(l)] = 0
	}
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation from the given trail position; returns
// false on conflict.
func (s *solver) propagate(from int) bool {
	for qhead := from; qhead < len(s.trail); qhead++ {
		l := s.trail[qhead]
		falsified := negate(l)
		ws := s.watch[falsified]
		var kept []int
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			c := s.clauses[ci]
			// Ensure the falsified literal is at position 1.
			if len(c) >= 2 && c[0] == falsified {
				c[0], c[1] = c[1], c[0]
			}
			if len(c) == 1 {
				if s.litValue(c[0]) != 1 {
					// unit clause falsified
					kept = append(kept, ws[wi:]...)
					s.watch[falsified] = kept
					return false
				}
				kept = append(kept, ci)
				continue
			}
			if s.litValue(c[0]) == 1 {
				kept = append(kept, ci)
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c); k++ {
				if s.litValue(c[k]) != 0 {
					c[1], c[k] = c[k], c[1]
					s.watch[c[1]] = append(s.watch[c[1]], ci)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit (or conflicting) on c[0].
			kept = append(kept, ci)
			if !s.enqueue(c[0]) {
				kept = append(kept, ws[wi+1:]...)
				s.watch[falsified] = kept
				return false
			}
		}
		s.watch[falsified] = kept
	}
	return true
}

// backtrackTo undoes assignments beyond the trail mark.
func (s *solver) backtrackTo(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		s.assign[litVar(s.trail[i])] = -1
	}
	s.trail = s.trail[:mark]
}

// initialUnits enqueues all unit clauses; returns false on conflict.
func (s *solver) initialUnits() bool {
	for _, c := range s.clauses {
		if len(c) == 0 {
			return false
		}
		if len(c) == 1 {
			if !s.enqueue(c[0]) {
				return false
			}
		}
	}
	return true
}

// solve searches for a satisfying assignment. preferFalse biases branching
// toward false, which tends to find small models first. It returns the
// model as a bitset of true variables.
func (s *solver) solve(preferFalse bool) ([]bool, bool) {
	if !s.initialUnits() || !s.propagate(0) {
		return nil, false
	}
	type frame struct {
		v         int
		mark      int
		triedBoth bool
	}
	var stack []frame
	for {
		// Pick an unassigned variable.
		v := -1
		for i := 0; i < s.nVars; i++ {
			if s.assign[i] == -1 {
				v = i
				break
			}
		}
		if v == -1 {
			model := make([]bool, s.nVars)
			for i := range model {
				model[i] = s.assign[i] == 1
			}
			return model, true
		}
		mark := len(s.trail)
		l := pos(v)
		if preferFalse {
			l = neg(v)
		}
		stack = append(stack, frame{v: v, mark: mark})
		s.enqueue(l)
		for !s.propagate(mark) {
			// Conflict: flip the most recent decision not yet flipped.
			for {
				if len(stack) == 0 {
					return nil, false
				}
				f := &stack[len(stack)-1]
				s.backtrackTo(f.mark)
				if f.triedBoth {
					stack = stack[:len(stack)-1]
					continue
				}
				f.triedBoth = true
				l := pos(f.v)
				if !preferFalse {
					l = neg(f.v)
				}
				mark = f.mark
				s.enqueue(l)
				break
			}
		}
	}
}

// solveCNF is the package entry point: solve the clause set over nVars
// variables.
func solveCNF(nVars int, clauses [][]int, preferFalse bool) ([]bool, bool) {
	return newSolver(nVars, clauses).solve(preferFalse)
}

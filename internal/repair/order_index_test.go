package repair

import (
	"math/rand"
	"testing"

	"repro/internal/relational"
)

// TestAntichainIndexedMatchesPairwise is the differential pin for the
// fingerprint-indexed Add: on randomized distinct candidate sets (null
// patterns included via randomSmallInstance), the indexed antichain must
// agree with the pairwise reference path on every per-Add observable —
// minimality verdict, the displaced sequence (content and order),
// MinimalCount — and on the final Results, under both orders.
func TestAntichainIndexedMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 120; trial++ {
		d := randomSmallInstance(rng)
		var leaves []*relational.Instance
		seen := map[string]bool{}
		for len(leaves) < 3+rng.Intn(12) {
			c := randomSmallInstance(rng)
			if k := c.Key(); !seen[k] {
				seen[k] = true
				leaves = append(leaves, c)
			}
		}
		for _, mode := range []Mode{NullBased, Classic} {
			indexed := NewAntichain(d, mode)
			reference := NewAntichain(d, mode)
			reference.noIndex = true
			for i, leaf := range leaves {
				gotMin, gotDisp := indexed.Add(leaf)
				wantMin, wantDisp := reference.Add(leaf)
				if gotMin != wantMin {
					t.Fatalf("trial %d mode=%v add %d: indexed minimal=%v, pairwise %v (leaf %v, base %v)",
						trial, mode, i, gotMin, wantMin, leaf, d)
				}
				if len(gotDisp) != len(wantDisp) {
					t.Fatalf("trial %d mode=%v add %d: indexed displaced %v, pairwise %v",
						trial, mode, i, gotDisp, wantDisp)
				}
				for j := range gotDisp {
					if gotDisp[j] != wantDisp[j] {
						t.Fatalf("trial %d mode=%v add %d: displaced[%d] differs: %v vs %v",
							trial, mode, i, j, gotDisp[j], wantDisp[j])
					}
				}
				if indexed.MinimalCount() != reference.MinimalCount() {
					t.Fatalf("trial %d mode=%v add %d: minimal count %d != %d",
						trial, mode, i, indexed.MinimalCount(), reference.MinimalCount())
				}
			}
			gotR, gotD := indexed.Results()
			wantR, wantD := reference.Results()
			if len(gotR) != len(wantR) {
				t.Fatalf("trial %d mode=%v: %d results != %d", trial, mode, len(gotR), len(wantR))
			}
			for i := range gotR {
				if gotR[i] != wantR[i] {
					t.Fatalf("trial %d mode=%v: result %d differs: %v vs %v", trial, mode, i, gotR[i], wantR[i])
				}
				if gotD[i].Size() != wantD[i].Size() {
					t.Fatalf("trial %d mode=%v: delta %d differs", trial, mode, i)
				}
			}
		}
	}
}

// TestAntichainIndexedAgainstMinimalUnder cross-checks the indexed online
// filter against the offline MinimalUnder on the same candidate sets: the
// surviving instances must coincide as sets regardless of arrival order.
func TestAntichainIndexedAgainstMinimalUnder(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 60; trial++ {
		d := randomSmallInstance(rng)
		var leaves []*relational.Instance
		seen := map[string]bool{}
		for len(leaves) < 2+rng.Intn(10) {
			c := randomSmallInstance(rng)
			if k := c.Key(); !seen[k] {
				seen[k] = true
				leaves = append(leaves, c)
			}
		}
		for _, mode := range []Mode{NullBased, Classic} {
			ord := Ordering(LeqD)
			if mode == Classic {
				ord = SubsetDelta
			}
			want := map[string]bool{}
			for _, m := range MinimalUnder(d, leaves, ord) {
				want[m.Key()] = true
			}
			ac := NewAntichain(d, mode)
			for _, leaf := range leaves {
				ac.Add(leaf)
			}
			got, _ := ac.Results()
			if len(got) != len(want) {
				t.Fatalf("trial %d mode=%v: antichain kept %d, MinimalUnder %d", trial, mode, len(got), len(want))
			}
			for _, g := range got {
				if !want[g.Key()] {
					t.Fatalf("trial %d mode=%v: antichain kept %v, MinimalUnder did not", trial, mode, g)
				}
			}
		}
	}
}

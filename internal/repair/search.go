package repair

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/nullsem"
	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

// Mode selects a repair semantics.
type Mode uint8

const (
	// NullBased is the paper's semantics (Definition 7): referential
	// violations may be fixed by inserting tuples padded with null in the
	// existential positions, and minimality is ≤_D.
	NullBased Mode = iota
	// Classic is the Arenas–Bertossi–Chomicki semantics (the paper's
	// [2]): existential positions range over the active domain and the
	// constraint constants (never null), minimality is ⊆ of the symmetric
	// difference, and IC satisfaction is classical.
	Classic
)

func (m Mode) String() string {
	if m == Classic {
		return "classic"
	}
	return "null-based"
}

// Options configures repair enumeration.
type Options struct {
	// Mode selects the repair semantics. Default NullBased.
	Mode Mode
	// MaxStates bounds the number of distinct search states explored
	// before giving up (0 means DefaultMaxStates). Exceeding it returns
	// ErrStateLimit.
	MaxStates int
}

// DefaultMaxStates bounds the search space when Options.MaxStates is 0.
const DefaultMaxStates = 1 << 20

// ErrStateLimit is returned when the search exceeds Options.MaxStates.
var ErrStateLimit = fmt.Errorf("repair: state limit exceeded")

// Result is the outcome of a repair enumeration.
type Result struct {
	// Repairs are the minimal consistent instances, in content-canonical
	// order (Instance.Compare — stable across runs, unlike Key order).
	Repairs []*relational.Instance
	// Deltas are the symmetric differences Δ(D, repair), aligned with
	// Repairs.
	Deltas []relational.Delta
	// StatesExplored counts distinct instances visited by the search.
	StatesExplored int
	// Leaves counts distinct consistent instances reached before the
	// minimality filter.
	Leaves int
}

// Repairs computes Rep(D, IC) under the selected mode. For NullBased it
// requires a non-conflicting set (Section 4's standing assumption); use
// RepairsD for conflicting sets.
func Repairs(d *relational.Instance, set *constraint.Set, opts Options) (Result, error) {
	if opts.Mode == NullBased && !set.NonConflicting() {
		return Result{}, fmt.Errorf("repair: conflicting IC set (%v); use RepairsD", set.Conflicts()[0])
	}
	return run(d, set, opts, nil)
}

// RepairsD computes the deletion-preferring class Rep_d(D, IC) defined at
// the end of Section 4 for sets with conflicting NNCs: the repairs of D wrt
// IC (with existential positions blocked by NNCs ranging over the active
// domain, per Example 20) that are not strictly dominated by a repair of
// the set IC′ obtained by dropping the conflicting NNCs. For
// non-conflicting sets it coincides with Repairs.
func RepairsD(d *relational.Instance, set *constraint.Set, opts Options) (Result, error) {
	conflicts := set.Conflicts()
	if len(conflicts) == 0 {
		return Repairs(d, set, opts)
	}
	conflicted := map[string]bool{}
	for _, c := range conflicts {
		conflicted[c.IC.Name] = true
	}
	full, err := run(d, set, opts, conflicted)
	if err != nil {
		return Result{}, err
	}
	prime, err := Repairs(d, dropConflictingNNCs(set), opts)
	if err != nil {
		return Result{}, err
	}
	var res Result
	res.StatesExplored = full.StatesExplored + prime.StatesExplored
	res.Leaves = full.Leaves
	for _, cand := range full.Repairs {
		dominated := false
		for _, dp := range prime.Repairs {
			if LessD(d, dp, cand) {
				dominated = true
				break
			}
		}
		if !dominated {
			res.Repairs = append(res.Repairs, cand)
			res.Deltas = append(res.Deltas, relational.Diff(d, cand))
		}
	}
	return res, nil
}

func dropConflictingNNCs(set *constraint.Set) *constraint.Set {
	bad := map[*constraint.NNC]bool{}
	for _, c := range set.Conflicts() {
		bad[c.NNC] = true
	}
	var keep []*constraint.NNC
	for _, n := range set.NNCs {
		if !bad[n] {
			keep = append(keep, n)
		}
	}
	return constraint.MustSet(set.ICs, keep)
}

// run performs the violation-driven search. adomICs, when non-nil, names
// the ICs whose existential positions must range over the active domain in
// addition to null (used by RepairsD for conflicting RICs).
func run(d *relational.Instance, set *constraint.Set, opts Options, adomICs map[string]bool) (Result, error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}
	sem := nullsem.NullAware
	insertDomain := []value.V{value.Null()}
	if opts.Mode == Classic {
		sem = nullsem.ClassicFO
		insertDomain = nil
	}
	if opts.Mode == Classic || adomICs != nil {
		for _, v := range d.ActiveDomain() {
			insertDomain = append(insertDomain, v)
		}
		for _, t := range set.Constants() {
			insertDomain = append(insertDomain, t.Const)
		}
		insertDomain = dedupValues(insertDomain)
	}

	visited := newInstanceSet()
	var leaves []*relational.Instance
	var res Result

	var rec func(cur *relational.Instance) error
	rec = func(cur *relational.Instance) error {
		if visited.contains(cur) {
			return nil
		}
		if visited.size >= maxStates {
			return ErrStateLimit
		}
		visited.insert(cur)

		viol, nncViol, ok := firstViolation(cur, set, sem)
		if !ok {
			// The visited guard above ensures each state is processed
			// once, so leaves are distinct by construction.
			leaves = append(leaves, cur)
			return nil
		}
		for _, next := range fixes(cur, set, viol, nncViol, opts.Mode, insertDomain, adomICs) {
			if err := rec(next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(d); err != nil {
		return Result{}, err
	}
	res.StatesExplored = visited.size
	res.Leaves = len(leaves)

	candidates := append([]*relational.Instance(nil), leaves...)
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Compare(candidates[j]) < 0 })
	ord := Ordering(LeqD)
	if opts.Mode == Classic {
		ord = SubsetDelta
	}
	res.Repairs = MinimalUnder(d, candidates, ord)
	res.Deltas = make([]relational.Delta, len(res.Repairs))
	for i, r := range res.Repairs {
		res.Deltas[i] = relational.Diff(d, r)
	}
	return res, nil
}

// instanceSet memoizes search states by their incremental fingerprint, with
// full Equal confirmation inside a bucket, so state deduplication never
// serializes a whole instance.
type instanceSet struct {
	buckets map[uint64][]*relational.Instance
	size    int
}

func newInstanceSet() *instanceSet {
	return &instanceSet{buckets: map[uint64][]*relational.Instance{}}
}

func (s *instanceSet) contains(d *relational.Instance) bool {
	for _, o := range s.buckets[d.Fingerprint()] {
		if o.Equal(d) {
			return true
		}
	}
	return false
}

func (s *instanceSet) insert(d *relational.Instance) {
	fp := d.Fingerprint()
	s.buckets[fp] = append(s.buckets[fp], d)
	s.size++
}

// firstViolation returns a deterministic first violation of the set, if
// any: either an IC violation or an NNC violation. The probes stop at the
// first falsifying assignment instead of materializing every violation.
func firstViolation(d *relational.Instance, set *constraint.Set, sem nullsem.Semantics) (*nullsem.Violation, *nullsem.NNCViolation, bool) {
	for _, ic := range set.ICs {
		if v, ok := nullsem.FirstViolationIC(d, ic, sem); ok {
			return &v, nil, true
		}
	}
	for _, n := range set.NNCs {
		if f, ok := nullsem.FirstViolationNNC(d, n); ok {
			return nil, &nullsem.NNCViolation{NNC: n, Fact: f}, true
		}
	}
	return nil, nil, false
}

// fixes returns the paper-sanctioned successor instances for one violation:
// delete one antecedent support atom, or insert one instantiated consequent
// atom (existential positions drawn from insertDomain — {null} in the
// paper's semantics).
func fixes(cur *relational.Instance, set *constraint.Set, viol *nullsem.Violation, nncViol *nullsem.NNCViolation, mode Mode, insertDomain []value.V, adomICs map[string]bool) []*relational.Instance {
	var out []*relational.Instance
	if nncViol != nil {
		next := cur.Clone()
		next.Delete(nncViol.Fact)
		return []*relational.Instance{next}
	}

	seen := map[string]bool{}
	for _, f := range viol.Support {
		if seen[f.Key()] {
			continue
		}
		seen[f.Key()] = true
		next := cur.Clone()
		next.Delete(f)
		out = append(out, next)
	}

	domain := insertDomain
	if mode == NullBased && adomICs != nil && !adomICs[viol.IC.Name] {
		// Rep_d search: only conflicted ICs use the extended domain.
		domain = []value.V{value.Null()}
	}
	for _, head := range viol.IC.Head {
		for _, f := range instantiations(head, viol.Subst, domain) {
			next := cur.Clone()
			next.Insert(f)
			out = append(out, next)
		}
	}
	_ = set
	return out
}

// instantiations grounds a head atom under the antecedent substitution,
// with each distinct existential variable ranging over domain.
func instantiations(head term.Atom, subst term.Subst, domain []value.V) []relational.Fact {
	var existVars []string
	seen := map[string]bool{}
	for _, t := range head.Args {
		if t.IsVar() {
			if _, bound := subst[t.Var]; !bound && !seen[t.Var] {
				seen[t.Var] = true
				existVars = append(existVars, t.Var)
			}
		}
	}
	assign := make(map[string]value.V, len(existVars))
	var out []relational.Fact
	var rec func(i int)
	rec = func(i int) {
		if i == len(existVars) {
			args := make(relational.Tuple, len(head.Args))
			for j, t := range head.Args {
				switch {
				case !t.IsVar():
					args[j] = t.Const
				default:
					if v, ok := subst[t.Var]; ok {
						args[j] = v
					} else {
						args[j] = assign[t.Var]
					}
				}
			}
			out = append(out, relational.Fact{Pred: head.Pred, Args: args})
			return
		}
		for _, v := range domain {
			assign[existVars[i]] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

func dedupValues(vs []value.V) []value.V {
	seen := map[string]bool{}
	out := vs[:0]
	for _, v := range vs {
		if !seen[v.Key()] {
			seen[v.Key()] = true
			out = append(out, v)
		}
	}
	return out
}

// IsRepair reports whether cand belongs to Rep(D, IC) under the options, by
// membership in the enumerated repair set (the search is complete over the
// finite Proposition 1 domain).
func IsRepair(d *relational.Instance, set *constraint.Set, cand *relational.Instance, opts Options) (bool, error) {
	res, err := Repairs(d, set, opts)
	if err != nil {
		return false, err
	}
	key := cand.Key()
	for _, r := range res.Repairs {
		if r.Key() == key {
			return true, nil
		}
	}
	return false, nil
}

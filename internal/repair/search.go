package repair

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/constraint"
	"repro/internal/nullsem"
	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

// Mode selects a repair semantics.
type Mode uint8

const (
	// NullBased is the paper's semantics (Definition 7): referential
	// violations may be fixed by inserting tuples padded with null in the
	// existential positions, and minimality is ≤_D.
	NullBased Mode = iota
	// Classic is the Arenas–Bertossi–Chomicki semantics (the paper's
	// [2]): existential positions range over the active domain and the
	// constraint constants (never null), minimality is ⊆ of the symmetric
	// difference, and IC satisfaction is classical.
	Classic
)

func (m Mode) String() string {
	if m == Classic {
		return "classic"
	}
	return "null-based"
}

// Options configures repair enumeration.
type Options struct {
	// Mode selects the repair semantics. Default NullBased.
	Mode Mode
	// MaxStates bounds the number of distinct search states explored
	// before giving up (0 means DefaultMaxStates). Exceeding it returns
	// ErrStateLimit.
	MaxStates int
	// Workers sets the number of goroutines expanding search states.
	// 0 and 1 both mean a single worker. Result.Repairs and Result.Deltas
	// (content and order) are identical for every worker count: any leaf
	// set the search can produce is a consistent superset of Rep(D, IC),
	// and the minimality filter reduces every such superset to exactly
	// Rep. StatesExplored/Leaves are diagnostics: deterministic for
	// Workers <= 1, but with more workers the race for the memo can pick
	// a different overlay representative of an equal-content state, whose
	// iteration order may steer the violation probe — and with it the
	// explored fringe — differently. Likewise, when a consumer cancels
	// the stream while a MaxStates limit is in flight, the race resolves
	// by schedule: a cancellation that wins reports the partial stats,
	// where another schedule might hit ErrStateLimit first.
	Workers int
	// ScratchProbe disables the delta-driven incremental violation probes
	// and re-checks every constraint from scratch at every search node, as
	// the pre-incremental engine did. Repairs and Deltas are byte-identical
	// either way (the two probes agree on whether a state is consistent,
	// and any violation-choice policy enumerates a consistent superset of
	// Rep that the minimality filter reduces to exactly Rep); the knob
	// exists for differential tests and ablation benchmarks.
	// StatesExplored/Leaves may differ between the two probes — the probes
	// can pick different (equally valid) violations of the same state, so
	// the explored fringes diverge while the repair set does not.
	ScratchProbe bool
	// Seed, when non-nil, supplies the root instance's complete per-IC
	// violation lists so the enumeration resumes from maintained state
	// instead of re-checking every constraint over the whole instance —
	// the root becomes O(|seed|) like every other node. The lists must be
	// exactly the violations of each IC on the root (in Set.ICs order);
	// they are read, never mutated, so a session can hand over the lists
	// it maintains via nullsem.ICChecker.Update. NNCs are always probed
	// live at the root (FirstViolationNNC is an indexed scan, and keeping
	// them out of the seed avoids pinning a second list order). Ignored
	// under ScratchProbe. Repairs/Deltas are unaffected by seeding; root
	// StatesExplored/Leaves diagnostics match an unseeded run whenever
	// the seed lists are in the checkers' own Violations order.
	Seed *Seed
}

// Seed is resumable enumeration state: the root's complete violation lists,
// one per IC in Set.ICs order. See Options.Seed.
type Seed struct {
	Viols [][]nullsem.Violation
}

// DefaultMaxStates bounds the search space when Options.MaxStates is 0.
const DefaultMaxStates = 1 << 20

// ErrStateLimit is returned when the search exceeds Options.MaxStates.
var ErrStateLimit = errors.New("repair: state limit exceeded")

// ErrConflictingSet is returned (wrapped, with the offending conflict named)
// by Repairs and Enumerate when a NullBased run is given a conflicting IC
// set — Section 4's standing assumption is violated and RepairsD must be
// used instead. Match with errors.Is.
var ErrConflictingSet = errors.New("repair: conflicting IC set")

// Result is the outcome of a repair enumeration.
type Result struct {
	// Repairs are the minimal consistent instances, in content-canonical
	// order (Instance.Compare — stable across runs, unlike Key order).
	Repairs []*relational.Instance
	// Deltas are the symmetric differences Δ(D, repair), aligned with
	// Repairs.
	Deltas []relational.Delta
	// StatesExplored counts distinct instances visited by the search.
	StatesExplored int
	// Leaves counts distinct consistent instances reached before the
	// minimality filter.
	Leaves int
}

// Stats summarizes a streaming enumeration.
type Stats struct {
	// StatesExplored counts distinct instances admitted by the search
	// (equal to Result.StatesExplored when the enumeration ran to
	// completion).
	StatesExplored int
	// Leaves counts the consistent leaves delivered to yield.
	Leaves int
}

// Repairs computes Rep(D, IC) under the selected mode. For NullBased it
// requires a non-conflicting set (Section 4's standing assumption); use
// RepairsD for conflicting sets.
func Repairs(d *relational.Instance, set *constraint.Set, opts Options) (Result, error) {
	return RepairsCtx(context.Background(), d, set, opts)
}

// RepairsCtx is Repairs under a context: cancellation aborts the enumeration
// (workers stop popping states) and returns ctx.Err(), wrapped so errors.Is
// matches context.Canceled / context.DeadlineExceeded. Results delivered
// before cancellation are discarded — a Result is only returned for complete
// enumerations, preserving the byte-identical-output contract.
func RepairsCtx(ctx context.Context, d *relational.Instance, set *constraint.Set, opts Options) (Result, error) {
	if opts.Mode == NullBased && !set.NonConflicting() {
		return Result{}, fmt.Errorf("%w (%v); use RepairsD", ErrConflictingSet, set.Conflicts()[0])
	}
	return run(ctx, d, set, opts, nil)
}

// Enumerate runs the violation-driven search and streams every distinct
// consistent leaf — a pre-minimality repair candidate — to yield as it is
// found, instead of materializing the full set first. yield is always
// invoked from the calling goroutine, one leaf at a time, in a deterministic
// order for Workers <= 1 (arrival order is scheduling-dependent for larger
// worker counts, but the leaf *set* is not); returning false cancels the
// remaining search, and Enumerate returns the stats accumulated so far with
// a nil error. Feed the leaves to an Antichain to recover Rep(D, IC), or
// short-circuit on a ConfirmMinimal certificate without waiting for the
// enumeration to finish.
//
// Like Repairs, Enumerate requires a non-conflicting set in NullBased mode.
func Enumerate(d *relational.Instance, set *constraint.Set, opts Options, yield func(*relational.Instance) bool) (Stats, error) {
	return EnumerateCtx(context.Background(), d, set, opts, yield)
}

// EnumerateCtx is Enumerate under a context. Cancellation halts the search
// as soon as the drivers observe it — no further states are admitted after
// the sequential driver sees the cancellation, and parallel workers stop at
// their next pop — and EnumerateCtx returns ctx.Err(). Leaves already
// yielded remain valid (each is a self-contained consistent instance), but
// the enumeration is incomplete, so antichain post-processing must be
// abandoned on error.
func EnumerateCtx(ctx context.Context, d *relational.Instance, set *constraint.Set, opts Options, yield func(*relational.Instance) bool) (Stats, error) {
	if opts.Mode == NullBased && !set.NonConflicting() {
		return Stats{}, fmt.Errorf("%w (%v); use RepairsD", ErrConflictingSet, set.Conflicts()[0])
	}
	return enumerate(ctx, d, set, opts, nil, yield)
}

// RepairsD computes the deletion-preferring class Rep_d(D, IC) defined at
// the end of Section 4 for sets with conflicting NNCs: the repairs of D wrt
// IC (with existential positions blocked by NNCs ranging over the active
// domain, per Example 20) that are not strictly dominated by a repair of
// the set IC′ obtained by dropping the conflicting NNCs. For
// non-conflicting sets it coincides with Repairs.
func RepairsD(d *relational.Instance, set *constraint.Set, opts Options) (Result, error) {
	return RepairsDCtx(context.Background(), d, set, opts)
}

// RepairsDCtx is RepairsD under a context (see RepairsCtx for the
// cancellation contract).
func RepairsDCtx(ctx context.Context, d *relational.Instance, set *constraint.Set, opts Options) (Result, error) {
	conflicts := set.Conflicts()
	if len(conflicts) == 0 {
		return RepairsCtx(ctx, d, set, opts)
	}
	conflicted := map[string]bool{}
	for _, c := range conflicts {
		conflicted[c.IC.Name] = true
	}
	full, err := run(ctx, d, set, opts, conflicted)
	if err != nil {
		return Result{}, err
	}
	prime, err := RepairsCtx(ctx, d, dropConflictingNNCs(set), opts)
	if err != nil {
		return Result{}, err
	}
	var res Result
	res.StatesExplored = full.StatesExplored + prime.StatesExplored
	res.Leaves = full.Leaves
	for i, cand := range full.Repairs {
		dominated := false
		for j := range prime.Repairs {
			// Both enumerations cached their deltas; compare those
			// instead of re-diffing per pair (LessD would).
			if LeqDDeltas(prime.Deltas[j], full.Deltas[i]) && !LeqDDeltas(full.Deltas[i], prime.Deltas[j]) {
				dominated = true
				break
			}
		}
		if !dominated {
			res.Repairs = append(res.Repairs, cand)
			res.Deltas = append(res.Deltas, full.Deltas[i])
		}
	}
	return res, nil
}

func dropConflictingNNCs(set *constraint.Set) *constraint.Set {
	bad := map[*constraint.NNC]bool{}
	for _, c := range set.Conflicts() {
		bad[c.NNC] = true
	}
	var keep []*constraint.NNC
	for _, n := range set.NNCs {
		if !bad[n] {
			keep = append(keep, n)
		}
	}
	return constraint.MustSet(set.ICs, keep)
}

// run materializes a full enumeration through the online antichain filter.
func run(ctx context.Context, d *relational.Instance, set *constraint.Set, opts Options, adomICs map[string]bool) (Result, error) {
	ac := NewAntichain(d, opts.Mode)
	stats, err := enumerate(ctx, d, set, opts, adomICs, func(leaf *relational.Instance) bool {
		ac.Add(leaf)
		return true
	})
	if err != nil {
		return Result{}, err
	}
	var res Result
	res.StatesExplored = stats.StatesExplored
	res.Leaves = stats.Leaves
	res.Repairs, res.Deltas = ac.Results()
	return res, nil
}

// enumerate performs the violation-driven search as an explicit work-list
// drained by opts.Workers goroutines. adomICs, when non-nil, names the ICs
// whose existential positions must range over the active domain in addition
// to null (used by RepairsD for conflicting RICs).
//
// Every distinct state is admitted exactly once through a sharded,
// mutex-striped fingerprint memo; admission is content-determined, which is
// what makes the final repair set independent of worker count and
// scheduling (see Options.Workers for the exact contract — the explored
// fringe itself can vary when equal-content states are reachable through
// different insertion orders). Leaves are delivered to the collector (the
// calling goroutine) over a channel; workers block on a full channel rather
// than dropping results, and the collector keeps draining after
// cancellation so workers always unwind.
func enumerate(ctx context.Context, d *relational.Instance, set *constraint.Set, opts Options, adomICs map[string]bool, yield func(*relational.Instance) bool) (Stats, error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if opts.Seed != nil && len(opts.Seed.Viols) != len(set.ICs) {
		return Stats{}, fmt.Errorf("repair: seed has %d violation lists for %d ICs", len(opts.Seed.Viols), len(set.ICs))
	}
	sem := nullsem.NullAware
	insertDomain := []value.V{value.Null()}
	if opts.Mode == Classic {
		sem = nullsem.ClassicFO
		insertDomain = nil
	}
	if opts.Mode == Classic || adomICs != nil {
		for _, v := range d.ActiveDomain() {
			insertDomain = append(insertDomain, v)
		}
		for _, t := range set.Constants() {
			insertDomain = append(insertDomain, t.Const)
		}
		insertDomain = dedupValues(insertDomain)
	}

	// Seal the root: every state of the search is an overlay view of this
	// one frozen engine, which is what makes concurrent probes of the
	// shared base race-free and Diff/Equal between states O(|Δ|).
	d.Freeze()

	s := &searcher{
		ctx:          ctx,
		set:          set,
		sem:          sem,
		mode:         opts.Mode,
		insertDomain: insertDomain,
		adomICs:      adomICs,
		memo:         newStateMemo(),
		maxStates:    int64(maxStates),
		scratchProbe: opts.ScratchProbe,
	}
	if !opts.ScratchProbe {
		s.checkers = make([]*nullsem.ICChecker, len(set.ICs))
		for i, ic := range set.ICs {
			s.checkers[i] = nullsem.NewICChecker(ic, sem)
		}
		s.seed = opts.Seed
	}
	s.cond = sync.NewCond(&s.mu)
	if s.admit(d) {
		s.stack = append(s.stack, node{inst: d})
	}
	if workers == 1 {
		return s.runSequential(yield)
	}
	return s.runParallel(workers, yield)
}

// runSequential drains the work-list on the calling goroutine: no worker
// goroutines, no channel. Beyond avoiding scheduling overhead on the default
// path, this makes cancellation exact — after yield returns false not a
// single further state is admitted — which is what the short-circuit
// regression tests pin StatesExplored against.
func (s *searcher) runSequential(yield func(*relational.Instance) bool) (Stats, error) {
	var stats Stats
	for !s.stopped.Load() {
		if err := s.ctx.Err(); err != nil {
			s.stop(err)
			break
		}
		s.mu.Lock()
		n := len(s.stack)
		if n == 0 {
			s.mu.Unlock()
			break
		}
		cur := s.stack[n-1]
		s.stack = s.stack[:n-1]
		s.mu.Unlock()
		s.expand(cur, func(leaf *relational.Instance) bool {
			stats.Leaves++
			return yield(leaf)
		})
	}
	stats.StatesExplored = int(s.visited.Load())
	if err := s.err(); err != nil {
		return Stats{}, err
	}
	return stats, nil
}

// runParallel spawns the worker pool and collects leaves on the calling
// goroutine. Cancellation is best-effort: in-flight workers finish their
// current expansion, so a short-circuiting consumer may see a few more
// states admitted than the sequential search would have — never different
// results, since full enumerations explore the identical state set.
func (s *searcher) runParallel(workers int, yield func(*relational.Instance) bool) (Stats, error) {
	s.leaves = make(chan *relational.Instance, leafBuffer)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.work()
		}()
	}
	go func() {
		wg.Wait()
		close(s.leaves)
	}()

	var stats Stats
	cancelled := false
	for leaf := range s.leaves {
		if cancelled {
			continue // drain so blocked workers can unwind
		}
		stats.Leaves++
		if !yield(leaf) {
			cancelled = true
			s.stop(nil)
		}
	}
	stats.StatesExplored = int(s.visited.Load())
	// A deliberate consumer cancellation outranks a concurrent state-limit
	// failure: the leaves already delivered are valid regardless of how
	// much of the space remained (a ConfirmMinimal certificate in
	// particular does not depend on enumeration completeness), and the
	// sequential driver would likewise have returned success had the
	// cancelling leaf arrived before the limit.
	if err := s.err(); err != nil && !cancelled {
		return Stats{}, err
	}
	return stats, nil
}

// leafBuffer decouples workers from the collector without letting leaves
// pile up unboundedly.
const leafBuffer = 64

// searcher is the shared state of one streaming enumeration: the work-list,
// the visited memo, and the leaf channel to the collector.
type searcher struct {
	ctx          context.Context // the enumeration's context; checked by the drivers
	set          *constraint.Set
	sem          nullsem.Semantics
	mode         Mode
	insertDomain []value.V
	adomICs      map[string]bool
	checkers     []*nullsem.ICChecker // cached per-IC analysis (incremental probe)
	scratchProbe bool
	seed         *Seed // root violation lists handed in by a session, if any

	memo      *stateMemo
	visited   atomic.Int64
	maxStates int64
	stopped   atomic.Bool

	leaves chan *relational.Instance

	mu      sync.Mutex
	cond    *sync.Cond
	stack   []node
	active  int // workers currently expanding a state
	failure error
}

// node is one work-list entry: a search state plus the delta that produced
// it and what its parent's probe established, so the state can be probed
// incrementally instead of re-checking every constraint over the whole
// instance.
type node struct {
	inst *relational.Instance
	// df is the single fact this state changed relative to its parent —
	// deleted when del is true, inserted otherwise. Meaningless at the
	// root (snap == nil), which is probed from scratch.
	df  relational.Fact
	del bool
	// snap is the parent's probe snapshot (shared, read-only, by all the
	// parent's children); nil at the root.
	snap *probeSnap
}

// probeSnap is what one expansion learned about its instance's constraint
// status, inherited by the children it pushed.
type probeSnap struct {
	// sat marks the constraints verified satisfied on the parent instance:
	// bit i < len(set.ICs) is ICs[i], bit len(set.ICs)+j is NNCs[j].
	// Constraints past the first violated one were never probed and stay
	// unset.
	sat bitset
	// violIC indexes the violated IC whose complete violation list is
	// tracked, or -1 when the probe stopped at an NNC violation.
	violIC int
	// viols is the complete violation list of ICs[violIC] on the parent,
	// in deterministic order; viols[0] is the violation the children fix.
	viols []nullsem.Violation
}

// bitset is a minimal fixed-size bit vector over constraint indexes.
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// work is one worker's loop: pop a state, expand it, repeat until the
// work-list drains (stack empty with no expansion in flight), the search
// stops, or the context is cancelled.
func (s *searcher) work() {
	for {
		cur, ok := s.pop()
		if !ok {
			return
		}
		if err := s.ctx.Err(); err != nil {
			s.stop(err)
			s.release()
			return
		}
		s.expand(cur, s.sendLeaf)
		s.release()
	}
}

// sendLeaf is the parallel emit: publish to the collector and keep going.
func (s *searcher) sendLeaf(leaf *relational.Instance) bool {
	s.leaves <- leaf
	return true
}

func (s *searcher) pop() (node, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped.Load() {
			return node{}, false
		}
		if n := len(s.stack); n > 0 {
			cur := s.stack[n-1]
			s.stack = s.stack[:n-1]
			s.active++
			return cur, true
		}
		if s.active == 0 {
			return node{}, false
		}
		s.cond.Wait()
	}
}

func (s *searcher) release() {
	s.mu.Lock()
	s.active--
	if s.active == 0 && len(s.stack) == 0 {
		s.cond.Broadcast() // work-list drained: wake waiters so they exit
	}
	s.mu.Unlock()
}

func (s *searcher) push(next node) {
	s.mu.Lock()
	s.stack = append(s.stack, next)
	s.cond.Signal()
	s.mu.Unlock()
}

// stop halts the search, recording err (if any) as its failure. The leaf
// channel is left to the workers/closer; the collector drains it.
func (s *searcher) stop(err error) {
	s.mu.Lock()
	if err != nil && s.failure == nil {
		s.failure = err
	}
	s.stopped.Store(true)
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *searcher) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failure
}

// admit registers a candidate state: false if it was already visited or the
// state limit is hit, true if the caller should push it. Admitted states are
// sealed for shared reads first, so every instance reachable from the memo
// or the work-list is safe to probe from any goroutine.
func (s *searcher) admit(next *relational.Instance) bool {
	next.Freeze()
	if !s.memo.tryVisit(next) {
		return false
	}
	if s.visited.Add(1) > s.maxStates {
		s.stop(ErrStateLimit)
		return false
	}
	return true
}

// expand processes one state — the single definition of the search's
// transition relation, shared by the sequential and parallel drivers: emit
// it as a leaf if consistent (emit returning false stops the search),
// otherwise admit and push its paper-sanctioned successor states, which
// inherit this probe's snapshot so they can be probed incrementally.
func (s *searcher) expand(cur node, emit func(*relational.Instance) bool) {
	if s.stopped.Load() {
		return
	}
	viol, nncViol, snap, bad := s.probe(cur)
	if !bad {
		// Each state is admitted once, so leaves are distinct by
		// construction.
		if !emit(cur.inst) {
			s.stopped.Store(true)
		}
		return
	}
	for _, next := range fixes(cur.inst, viol, nncViol, s.mode, s.insertDomain, s.adomICs) {
		if s.stopped.Load() {
			return
		}
		next.snap = snap
		if s.admit(next.inst) {
			s.push(next)
		}
	}
}

// probe decides a state's status: its first violation, if any, plus the
// snapshot its children inherit. The root (and every state under
// Options.ScratchProbe) is probed from scratch. Every other state differs
// from its parent by one fact, so the probe is delta-driven:
//
//   - constraints verified on the parent that share no predicate with the
//     changed fact cannot have changed — their probe results are skipped
//     entirely (the pred→IC incidence is baked into ICChecker.SharesPred);
//   - constraints verified on the parent that do share a predicate are
//     probed Δ-seeded: only constraint occurrences unifying with the
//     changed fact are instantiated, each join anchored on the Δ-atom and
//     completed against the indexed store;
//   - the parent's violated IC carries its complete violation list through
//     the work-list, advanced here by the one-fact delta (survivors are
//     filtered in place, newly created violations are found Δ-seeded);
//   - constraints past the parent's first violation were never probed
//     there and are checked from scratch.
//
// The two probes agree exactly on whether a state is consistent; they may
// pick different violations of an inconsistent state (the incremental list
// keeps survivors in inherited order, the scratch join re-enumerates in
// instance order), which is covered by the policy-independence contract
// documented on Options.Workers.
func (s *searcher) probe(nd node) (*nullsem.Violation, *nullsem.NNCViolation, *probeSnap, bool) {
	if s.scratchProbe {
		viol, nncViol, bad := firstViolation(nd.inst, s.set, s.sem)
		return viol, nncViol, nil, bad
	}
	d := nd.inst
	nIC := len(s.set.ICs)
	sat := newBitset(nIC + len(s.set.NNCs))
	if nd.snap == nil && s.seed != nil {
		// Resume from maintained root state: the seed lists stand in for
		// the scratch ck.Violations(d) calls; NNCs are still probed live.
		for i := range s.set.ICs {
			vs := s.seed.Viols[i]
			if len(vs) == 0 {
				sat.set(i)
				continue
			}
			return &vs[0], nil, &probeSnap{sat: sat, violIC: i, viols: vs}, true
		}
		for j, n := range s.set.NNCs {
			if f, found := nullsem.FirstViolationNNC(d, n); found {
				return nil, &nullsem.NNCViolation{NNC: n, Fact: f}, &probeSnap{sat: sat, violIC: -1}, true
			}
			sat.set(nIC + j)
		}
		return nil, nil, nil, false
	}
	var delta relational.Delta
	if nd.snap != nil {
		if nd.del {
			delta.Removed = []relational.Fact{nd.df}
		} else {
			delta.Added = []relational.Fact{nd.df}
		}
	}
	for i, ck := range s.checkers {
		var vs []nullsem.Violation
		switch {
		case nd.snap != nil && nd.snap.sat.has(i) && !ck.SharesPred(nd.df.Pred):
			sat.set(i)
			continue
		case nd.snap != nil && nd.snap.sat.has(i):
			vs = ck.ViolationsFrom(d, delta)
		case nd.snap != nil && i == nd.snap.violIC:
			vs = ck.Update(d, nd.snap.viols, delta)
		default:
			vs = ck.Violations(d)
		}
		if len(vs) == 0 {
			sat.set(i)
			continue
		}
		return &vs[0], nil, &probeSnap{sat: sat, violIC: i, viols: vs}, true
	}
	for j, n := range s.set.NNCs {
		bit := nIC + j
		if nd.snap != nil && nd.snap.sat.has(bit) {
			// NNC satisfaction is per-fact: a deletion, or an insertion
			// of another relation or with a non-null constrained column,
			// cannot violate it.
			if nd.del || nd.df.Pred != n.Pred || len(nd.df.Args) != n.Arity || !nd.df.Args[n.Pos].IsNull() {
				sat.set(bit)
				continue
			}
			return nil, &nullsem.NNCViolation{NNC: n, Fact: nd.df}, &probeSnap{sat: sat, violIC: -1}, true
		}
		if f, found := nullsem.FirstViolationNNC(d, n); found {
			return nil, &nullsem.NNCViolation{NNC: n, Fact: f}, &probeSnap{sat: sat, violIC: -1}, true
		}
		sat.set(bit)
	}
	return nil, nil, nil, false
}

// memoShards stripes the visited-state memo; fingerprints spread uniformly,
// so contention concentrates only under adversarial hash collisions.
const memoShards = 64

// stateMemo is the visited-state set of a streaming search: fingerprint
// buckets with full Equal confirmation (as in the sequential memo), sharded
// and mutex-striped so concurrent workers rarely touch the same lock. Shards
// are padded to cache-line size to avoid false sharing between stripes.
type stateMemo struct {
	shards [memoShards]memoShard
}

type memoShard struct {
	mu      sync.Mutex
	buckets map[uint64][]*relational.Instance
	_       [64 - 16]byte
}

func newStateMemo() *stateMemo {
	m := &stateMemo{}
	for i := range m.shards {
		m.shards[i].buckets = map[uint64][]*relational.Instance{}
	}
	return m
}

// tryVisit reports whether d is a new state, inserting it if so. The
// outcome is content-determined (fingerprint bucket plus Equal), so the
// visited set is independent of which worker gets here first.
func (m *stateMemo) tryVisit(d *relational.Instance) bool {
	fp := d.Fingerprint()
	sh := &m.shards[fp%memoShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, o := range sh.buckets[fp] {
		if o.Equal(d) {
			return false
		}
	}
	sh.buckets[fp] = append(sh.buckets[fp], d)
	return true
}

// firstViolation returns a deterministic first violation of the set, if
// any: either an IC violation or an NNC violation. The probes stop at the
// first falsifying assignment instead of materializing every violation.
func firstViolation(d *relational.Instance, set *constraint.Set, sem nullsem.Semantics) (*nullsem.Violation, *nullsem.NNCViolation, bool) {
	for _, ic := range set.ICs {
		if v, ok := nullsem.FirstViolationIC(d, ic, sem); ok {
			return &v, nil, true
		}
	}
	for _, n := range set.NNCs {
		if f, ok := nullsem.FirstViolationNNC(d, n); ok {
			return nil, &nullsem.NNCViolation{NNC: n, Fact: f}, true
		}
	}
	return nil, nil, false
}

// fixes returns the paper-sanctioned successor states for one violation:
// delete one antecedent support atom, or insert one instantiated consequent
// atom (existential positions drawn from insertDomain — {null} in the
// paper's semantics). Each successor records its one-fact delta so the
// expansion can probe it incrementally.
func fixes(cur *relational.Instance, viol *nullsem.Violation, nncViol *nullsem.NNCViolation, mode Mode, insertDomain []value.V, adomICs map[string]bool) []node {
	var out []node
	if nncViol != nil {
		next := cur.Clone()
		next.Delete(nncViol.Fact)
		return []node{{inst: next, df: nncViol.Fact, del: true}}
	}

	seen := newFactDedup(len(viol.Support))
	for _, f := range viol.Support {
		if !seen.add(f) {
			continue
		}
		next := cur.Clone()
		next.Delete(f)
		out = append(out, node{inst: next, df: f, del: true})
	}

	domain := insertDomain
	if mode == NullBased && adomICs != nil && !adomICs[viol.IC.Name] {
		// Rep_d search: only conflicted ICs use the extended domain.
		domain = []value.V{value.Null()}
	}
	for _, head := range viol.IC.Head {
		for _, f := range instantiations(head, viol.Subst, domain) {
			if cur.Has(f) {
				// The consequent instantiation is already present: the
				// "successor" is the current state itself, which has
				// already been admitted — skip it before paying for a
				// clone or a memo round-trip.
				continue
			}
			next := cur.Clone()
			next.Insert(f)
			out = append(out, node{inst: next, df: f, del: false})
		}
	}
	return out
}

// factDedup is a small dedup set keyed by the interned fact hash with Equal
// confirmation — no string keys on the hot path.
type factDedup struct {
	m map[uint64][]relational.Fact
}

func newFactDedup(capacity int) factDedup {
	return factDedup{m: make(map[uint64][]relational.Fact, capacity)}
}

// add inserts f, reporting whether it was new.
func (s factDedup) add(f relational.Fact) bool {
	h := f.Hash()
	for _, g := range s.m[h] {
		if g.Equal(f) {
			return false
		}
	}
	s.m[h] = append(s.m[h], f)
	return true
}

// instantiations grounds a head atom under the antecedent substitution,
// with each distinct existential variable ranging over domain.
func instantiations(head term.Atom, subst term.Subst, domain []value.V) []relational.Fact {
	var existVars []string
	seen := map[string]bool{}
	for _, t := range head.Args {
		if t.IsVar() {
			if _, bound := subst[t.Var]; !bound && !seen[t.Var] {
				seen[t.Var] = true
				existVars = append(existVars, t.Var)
			}
		}
	}
	assign := make(map[string]value.V, len(existVars))
	var out []relational.Fact
	var rec func(i int)
	rec = func(i int) {
		if i == len(existVars) {
			args := make(relational.Tuple, len(head.Args))
			for j, t := range head.Args {
				switch {
				case !t.IsVar():
					args[j] = t.Const
				default:
					if v, ok := subst[t.Var]; ok {
						args[j] = v
					} else {
						args[j] = assign[t.Var]
					}
				}
			}
			out = append(out, relational.Fact{Pred: head.Pred, Args: args})
			return
		}
		for _, v := range domain {
			assign[existVars[i]] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// dedupValues collapses duplicate constants (value.V is comparable, so the
// values key the map directly).
func dedupValues(vs []value.V) []value.V {
	seen := make(map[value.V]bool, len(vs))
	out := vs[:0]
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// IsRepair reports whether cand belongs to Rep(D, IC) under the options:
// cand must be reached as a consistent leaf and no leaf may strictly precede
// it (the search is complete over the finite Proposition 1 domain). The
// check rides the streaming API and short-circuits: it answers false the
// moment any leaf strictly dominates cand, and true the moment cand itself
// is emitted with a ConfirmMinimal certificate — without waiting for the
// rest of the enumeration.
func IsRepair(d *relational.Instance, set *constraint.Set, cand *relational.Instance, opts Options) (bool, error) {
	return IsRepairCtx(context.Background(), d, set, cand, opts)
}

// IsRepairCtx is IsRepair under a context: cancellation aborts the
// underlying enumeration and returns ctx.Err().
func IsRepairCtx(ctx context.Context, d *relational.Instance, set *constraint.Set, cand *relational.Instance, opts Options) (bool, error) {
	sem := nullsem.NullAware
	if opts.Mode == Classic {
		sem = nullsem.ClassicFO
	}
	if !nullsem.Satisfies(cand, set, sem) {
		return false, nil
	}
	leq := deltaOrder(opts.Mode)
	candDelta := relational.Diff(d, cand)
	found, confirmed, dominated := false, false, false
	_, err := EnumerateCtx(ctx, d, set, opts, func(leaf *relational.Instance) bool {
		if leaf.Equal(cand) {
			found = true
			if ConfirmMinimal(d, cand, set, opts) {
				confirmed = true
				return false
			}
			return true
		}
		dl := relational.Diff(d, leaf)
		if leq(dl, candDelta) && !leq(candDelta, dl) {
			dominated = true
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return confirmed || (found && !dominated), nil
}

// Package repair implements Section 4 of the paper: the refined repair
// order ≤_D of Definition 6, the repair notion of Definition 7 (consistency
// wrt |=_N plus ≤_D-minimality), the deletion-preferring class Rep_d for
// conflicting NNCs, and — as the baseline the paper compares against — the
// classic repair semantics of Arenas, Bertossi & Chomicki (PODS 99, the
// paper's [2]) with active-domain insertions and plain ⊆-minimality of the
// symmetric difference.
//
// Repairs are enumerated by a violation-driven search (see search.go) whose
// termination follows from Proposition 1: every reachable instance lives in
// the finite space over adom(D) ∪ const(IC) ∪ {null}.
package repair

import (
	"sort"

	"repro/internal/constraint"
	"repro/internal/nullsem"
	"repro/internal/relational"
	"repro/internal/value"
)

// LeqD implements the intended reading of Definition 6: D1 ≤_D D2 iff
//
//	(a) every atom of Δ(D,D1) without nulls, and every *deleted* atom with
//	    nulls, occurs identically in Δ(D,D2); and
//	(b) every *inserted* atom Q(ā) of Δ(D,D1) containing nulls is matched
//	    in Δ(D,D2) either by the identical atom, or by an inserted atom
//	    not in Δ(D,D1) that agrees with Q(ā) on its non-null positions.
//
// Two refinements over the letter of Definition 6 are needed to reproduce
// the repair sets the paper states for Examples 16–18 (both are exercised
// by discriminating unit tests and the brute-force cross-check):
//
//   - the identical atom counts as its own match (the literal "∉ Δ(D,D′)"
//     exclusion alone makes ≤_D irreflexive, and leaves instances with
//     gratuitous extra deletions incomparable to, rather than dominated by,
//     proper repairs);
//   - matching is directional: inserted null atoms are matched against
//     insertions only (the literal reading lets a *deleted* original atom
//     pattern-match an insertion), and deletions always match exactly.
//
// See LeqDLiteral for the verbatim text; DESIGN.md records the deviation.
func LeqD(d, d1, d2 *relational.Instance) bool {
	return LeqDDeltas(relational.Diff(d, d1), relational.Diff(d, d2))
}

// LeqDDeltas is LeqD on precomputed symmetric differences dl1 = Δ(D, D1)
// and dl2 = Δ(D, D2). Streaming consumers (the Antichain) compute each
// candidate's delta once and compare deltas directly instead of re-diffing
// per pair.
func LeqDDeltas(dl1, dl2 relational.Delta) bool {
	removed2 := factSet(dl2.Removed)
	added1 := factSet(dl1.Added)
	added2 := factSet(dl2.Added)

	for _, f := range dl1.Removed {
		if !removed2[f.Key()] {
			return false
		}
	}
	for _, f := range dl1.Added {
		if !f.Args.HasNull() {
			if !added2[f.Key()] {
				return false
			}
			continue
		}
		if added2[f.Key()] {
			continue // the identical insertion
		}
		if !hasPatternMatch(f, dl2.Added, added1) {
			return false
		}
	}
	return true
}

// LessD is the strict order: D1 <_D D2 iff D1 ≤_D D2 and not D2 ≤_D D1.
func LessD(d, d1, d2 *relational.Instance) bool {
	return LeqD(d, d1, d2) && !LeqD(d, d2, d1)
}

// LeqDLiteral is the letter of Definition 6: condition (b) requires a
// matching atom outside Δ(D,D1), and applies to every null-containing atom
// of the symmetric difference (inserted or deleted). Kept for documentation
// and tests; the repair machinery uses LeqD.
func LeqDLiteral(d, d1, d2 *relational.Instance) bool {
	dl1, dl2 := relational.Diff(d, d1), relational.Diff(d, d2)
	delta1 := deltaSet(dl1)
	delta2 := append(append([]relational.Fact(nil), dl2.Removed...), dl2.Added...)
	delta2Set := deltaSet(dl2)

	check := func(f relational.Fact) bool {
		if !f.Args.HasNull() {
			return delta2Set[f.Key()]
		}
		return hasPatternMatch(f, delta2, delta1)
	}
	for _, f := range dl1.Removed {
		if !check(f) {
			return false
		}
	}
	for _, f := range dl1.Added {
		if !check(f) {
			return false
		}
	}
	return true
}

// hasPatternMatch reports whether some candidate agrees with f on f's
// non-null positions (same predicate and arity), excluding candidates whose
// key appears in excluded.
func hasPatternMatch(f relational.Fact, candidates []relational.Fact, excluded map[string]bool) bool {
	for _, g := range candidates {
		if g.Pred != f.Pred || len(g.Args) != len(f.Args) {
			continue
		}
		if excluded != nil && excluded[g.Key()] {
			continue
		}
		ok := true
		for i, v := range f.Args {
			if !v.IsNull() && !g.Args[i].Eq(v) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func factSet(fs []relational.Fact) map[string]bool {
	m := make(map[string]bool, len(fs))
	for _, f := range fs {
		m[f.Key()] = true
	}
	return m
}

// deltaSet is the key set of both halves of a symmetric difference, built
// without materializing (and sorting) a merged fact slice.
func deltaSet(dl relational.Delta) map[string]bool {
	m := make(map[string]bool, dl.Size())
	for _, f := range dl.Removed {
		m[f.Key()] = true
	}
	for _, f := range dl.Added {
		m[f.Key()] = true
	}
	return m
}

// SubsetDelta is the classic order of the paper's [2]: Δ(D,D1) ⊆ Δ(D,D2)
// as plain sets of atoms.
func SubsetDelta(d, d1, d2 *relational.Instance) bool {
	return SubsetDeltas(relational.Diff(d, d1), relational.Diff(d, d2))
}

// SubsetDeltas is SubsetDelta on precomputed symmetric differences.
func SubsetDeltas(dl1, dl2 relational.Delta) bool {
	set2 := deltaSet(dl2)
	for _, f := range dl1.Removed {
		if !set2[f.Key()] {
			return false
		}
	}
	for _, f := range dl1.Added {
		if !set2[f.Key()] {
			return false
		}
	}
	return true
}

// Ordering compares two candidate repaired instances relative to the
// original d.
type Ordering func(d, d1, d2 *relational.Instance) bool

// deltaOrder returns the mode's ≤ comparison on precomputed deltas.
func deltaOrder(mode Mode) func(dl1, dl2 relational.Delta) bool {
	if mode == Classic {
		return SubsetDeltas
	}
	return LeqDDeltas
}

// Antichain is the online form of MinimalUnder: it consumes a stream of
// distinct consistent leaves and maintains, at every point, the subset that
// is minimal among the leaves seen so far under the mode's order. Dominated
// leaves are remembered (a non-minimal leaf can still dominate a later one —
// MinimalUnder compares against every candidate, not only the minimal ones,
// and ≤_D transitivity is a tested property, not an assumption), so the
// final minimal set is exactly MinimalUnder over the whole stream, no matter
// in which order a parallel search delivered it. Each leaf's Δ(D, leaf) is
// computed once on entry — together with its per-fact key encodings, key
// sets, and fact fingerprints — and cached for every later comparison and
// for Result.Deltas.
//
// Add does not compare the new leaf against every stored entry. Both orders
// require, as a necessary condition for a ≤ b, that a's exact-match
// obligations (all removals plus, under ≤_D, the null-free additions; under
// ⊆-Δ every delta atom) appear identically in b. The antichain therefore
// keeps inverted posting lists from per-fact fingerprints (Fact.Hash) to the
// entries obligated on — or containing — that fact, and each Add makes one
// counting pass over the new delta's fingerprints: an entry can precede the
// candidate only if its obligation count is fully met, and can follow it
// only if the candidate's own obligations are all found in the entry.
// Fingerprint collisions merely overcount (the filters test >=), so the
// survivors of the count filter are confirmed with the exact comparators;
// entries with no obligations at all ("wild": pure null-insertion or empty
// deltas) sit on a side list that is always confirmed pairwise, and a
// candidate with no obligations of its own falls back to the full scan. The
// per-Add cost thus scales with the entries sharing facts with the new
// delta, not with the antichain size.
//
// Antichain is not safe for concurrent use; the streaming search calls Add
// from the single collector goroutine.
type Antichain struct {
	d            *relational.Instance
	classic      bool
	entries      []acEntry
	minimalCount int

	// noIndex forces the pairwise reference path (differential tests).
	noIndex bool

	// Inverted index: fact fingerprint → entries obligated on that fact.
	// Under ≤_D the roles are separate (invRem for removals, invAdd for
	// null-free additions — a null-free key can only ever match a null-free
	// key, so null-containing additions need no posting lists); the classic
	// order uses the single role-blind invUnion. wild lists entries with
	// zero obligations.
	invRem   map[uint64][]int32
	invAdd   map[uint64][]int32
	invUnion map[uint64][]int32
	wild     []int32

	// Counting-pass scratch, reused across Adds: cnt[i]/mark[i] are live for
	// entry i iff mark[i] == gen; touched lists the live indices in
	// first-touch order.
	cnt     []acCount
	mark    []uint32
	gen     uint32
	touched []int32
}

type acEntry struct {
	inst      *relational.Instance
	view      *deltaView
	dominated bool
}

// deltaView is a delta with its comparison artifacts precomputed: the key of
// every fact (keys are interner round-trips, the hot cost of ≤_D), the key
// sets both orders probe, and the per-fact fingerprints the antichain's
// inverted index buckets by.
type deltaView struct {
	dl          relational.Delta
	removedKeys []string        // aligned with dl.Removed
	addedKeys   []string        // aligned with dl.Added
	addedNull   []bool          // aligned with dl.Added: Args.HasNull()
	removedSet  map[string]bool // keys of dl.Removed
	addedSet    map[string]bool // keys of dl.Added
	removedFps  []uint64        // aligned with dl.Removed: Fact.Hash()
	addedFps    []uint64        // aligned with dl.Added: Fact.Hash()
	reqAdd      int             // additions without nulls (exact-match obligations)
}

func newDeltaView(dl relational.Delta) *deltaView {
	v := &deltaView{
		dl:          dl,
		removedKeys: make([]string, len(dl.Removed)),
		addedKeys:   make([]string, len(dl.Added)),
		addedNull:   make([]bool, len(dl.Added)),
		removedSet:  make(map[string]bool, len(dl.Removed)),
		addedSet:    make(map[string]bool, len(dl.Added)),
		removedFps:  make([]uint64, len(dl.Removed)),
		addedFps:    make([]uint64, len(dl.Added)),
	}
	for i, f := range dl.Removed {
		k := f.Key()
		v.removedKeys[i] = k
		v.removedSet[k] = true
		v.removedFps[i] = f.Hash()
	}
	for i, f := range dl.Added {
		k := f.Key()
		v.addedKeys[i] = k
		v.addedNull[i] = f.Args.HasNull()
		v.addedSet[k] = true
		v.addedFps[i] = f.Hash()
		if !v.addedNull[i] {
			v.reqAdd++
		}
	}
	return v
}

// leqDViews is LeqDDeltas over precomputed views.
func leqDViews(a, b *deltaView) bool {
	for _, k := range a.removedKeys {
		if !b.removedSet[k] {
			return false
		}
	}
	for i := range a.dl.Added {
		k := a.addedKeys[i]
		if !a.addedNull[i] {
			if !b.addedSet[k] {
				return false
			}
			continue
		}
		if b.addedSet[k] {
			continue // the identical insertion
		}
		if !patternMatchViews(a.dl.Added[i], b, a.addedSet) {
			return false
		}
	}
	return true
}

// patternMatchViews is hasPatternMatch against a view's additions, using the
// cached keys for the exclusion test.
func patternMatchViews(f relational.Fact, b *deltaView, excluded map[string]bool) bool {
	for i, g := range b.dl.Added {
		if g.Pred != f.Pred || len(g.Args) != len(f.Args) {
			continue
		}
		if excluded[b.addedKeys[i]] {
			continue
		}
		ok := true
		for p, v := range f.Args {
			if !v.IsNull() && !g.Args[p].Eq(v) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// subsetViews is SubsetDeltas over precomputed views.
func subsetViews(a, b *deltaView) bool {
	for _, k := range a.removedKeys {
		if !b.removedSet[k] && !b.addedSet[k] {
			return false
		}
	}
	for _, k := range a.addedKeys {
		if !b.removedSet[k] && !b.addedSet[k] {
			return false
		}
	}
	return true
}

func (a *Antichain) leq(v1, v2 *deltaView) bool {
	if a.classic {
		return subsetViews(v1, v2)
	}
	return leqDViews(v1, v2)
}

// NewAntichain returns an empty antichain filtering under the given mode's
// order (≤_D for NullBased, ⊆-Δ for Classic) relative to the original d.
func NewAntichain(d *relational.Instance, mode Mode) *Antichain {
	a := &Antichain{d: d, classic: mode == Classic}
	if a.classic {
		a.invUnion = map[uint64][]int32{}
	} else {
		a.invRem = map[uint64][]int32{}
		a.invAdd = map[uint64][]int32{}
	}
	return a
}

// obligations counts a view's exact-match obligations under the antichain's
// order: every removal plus (≤_D) the null-free additions, or (classic)
// every delta atom.
func (a *Antichain) obligations(v *deltaView) int {
	if a.classic {
		return len(v.removedKeys) + len(v.addedKeys)
	}
	return len(v.removedKeys) + v.reqAdd
}

// Add feeds one leaf into the filter. It reports whether the leaf is
// minimal among the leaves seen so far (it may still be displaced by a later
// leaf), plus the previously-minimal leaves this one strictly dominates —
// streaming consumers drop per-candidate state (cached query answers) for
// displaced leaves. Leaves must be distinct; the search guarantees that.
func (a *Antichain) Add(leaf *relational.Instance) (minimal bool, displaced []*relational.Instance) {
	view := newDeltaView(relational.Diff(a.d, leaf))
	var dominated bool
	if a.noIndex || a.obligations(view) == 0 {
		// A candidate with no obligations could sit below any entry; the
		// count filter has no handle on it, so scan (rare: empty or pure
		// null-insertion deltas only).
		dominated, displaced = a.addScan(view)
	} else {
		dominated, displaced = a.addIndexed(view)
	}
	id := int32(len(a.entries))
	a.entries = append(a.entries, acEntry{inst: leaf, view: view, dominated: dominated})
	if !a.noIndex {
		a.indexEntry(id, view)
	}
	if !dominated {
		a.minimalCount++
	}
	return !dominated, displaced
}

// addScan is the pairwise reference path: compare the candidate against
// every stored entry in insertion order.
func (a *Antichain) addScan(view *deltaView) (dominated bool, displaced []*relational.Instance) {
	for i := range a.entries {
		d2, disp := a.compare(&a.entries[i], view)
		dominated = dominated || d2
		if disp != nil {
			displaced = append(displaced, disp)
		}
	}
	return dominated, displaced
}

// compare runs both exact order tests between one stored entry and the
// candidate view, updating the entry's domination state; disp is non-nil
// when the entry was minimal until now and the candidate displaces it.
func (a *Antichain) compare(o *acEntry, view *deltaView) (dominated bool, disp *relational.Instance) {
	oBelow := a.leq(o.view, view)
	cBelow := a.leq(view, o.view)
	if cBelow && !oBelow && !o.dominated {
		o.dominated = true
		a.minimalCount--
		disp = o.inst
	}
	return oBelow && !cBelow, disp
}

// acCount accumulates one counting pass's per-entry intersection sizes.
type acCount struct {
	rem, add, union int32
}

// addIndexed finds the entries comparable to the candidate via the inverted
// index: one counting pass over the candidate's fact fingerprints, then the
// exact comparators on the entries whose obligation counts survive the
// necessary-condition filters. Fingerprint collisions and duplicate postings
// only ever overcount, so the filters test >= and the exact tests decide.
func (a *Antichain) addIndexed(view *deltaView) (dominated bool, displaced []*relational.Instance) {
	for len(a.cnt) < len(a.entries) {
		a.cnt = append(a.cnt, acCount{})
		a.mark = append(a.mark, 0)
	}
	a.gen++
	a.touched = a.touched[:0]
	at := func(id int32) *acCount {
		if a.mark[id] != a.gen {
			a.mark[id] = a.gen
			a.cnt[id] = acCount{}
			a.touched = append(a.touched, id)
		}
		return &a.cnt[id]
	}
	if a.classic {
		for _, fp := range view.removedFps {
			for _, id := range a.invUnion[fp] {
				at(id).union++
			}
		}
		for _, fp := range view.addedFps {
			for _, id := range a.invUnion[fp] {
				at(id).union++
			}
		}
	} else {
		for _, fp := range view.removedFps {
			for _, id := range a.invRem[fp] {
				at(id).rem++
			}
		}
		for i, fp := range view.addedFps {
			if view.addedNull[i] {
				continue // null-containing: never an exact match either way
			}
			for _, id := range a.invAdd[fp] {
				at(id).add++
			}
		}
	}
	// Wild entries (zero obligations) pass the entry-below filter vacuously
	// but own no postings; pull them into the candidate set.
	for _, id := range a.wild {
		at(id)
	}

	// Insertion order keeps the displaced sequence identical to addScan's.
	ids := a.touched
	sort.Slice(ids, func(x, y int) bool { return ids[x] < ids[y] })

	cRem, cAdd := int32(len(view.removedFps)), int32(view.reqAdd)
	cAll := cRem + int32(len(view.addedFps))
	for _, id := range ids {
		o := &a.entries[id]
		cnt := &a.cnt[id]
		var mayBelow, mayAbove bool
		if a.classic {
			mayBelow = int(cnt.union) >= a.obligations(o.view)
			mayAbove = cnt.union >= cAll
		} else {
			mayBelow = int(cnt.rem) >= len(o.view.removedKeys) && int(cnt.add) >= o.view.reqAdd
			mayAbove = cnt.rem >= cRem && cnt.add >= cAdd
		}
		if !mayBelow && !mayAbove {
			continue
		}
		oBelow := mayBelow && a.leq(o.view, view)
		cBelow := mayAbove && a.leq(view, o.view)
		if cBelow && !oBelow && !o.dominated {
			o.dominated = true
			a.minimalCount--
			displaced = append(displaced, o.inst)
		}
		if oBelow && !cBelow {
			dominated = true
		}
	}
	return dominated, displaced
}

// indexEntry posts the new entry's obligations (and classic-mode fact set)
// into the inverted index.
func (a *Antichain) indexEntry(id int32, v *deltaView) {
	if a.classic {
		for _, fp := range v.removedFps {
			a.invUnion[fp] = append(a.invUnion[fp], id)
		}
		for _, fp := range v.addedFps {
			a.invUnion[fp] = append(a.invUnion[fp], id)
		}
	} else {
		for _, fp := range v.removedFps {
			a.invRem[fp] = append(a.invRem[fp], id)
		}
		for i, fp := range v.addedFps {
			if !v.addedNull[i] {
				a.invAdd[fp] = append(a.invAdd[fp], id)
			}
		}
	}
	if a.obligations(v) == 0 {
		a.wild = append(a.wild, id)
	}
}

// MinimalCount returns the current number of surviving candidates.
func (a *Antichain) MinimalCount() int { return a.minimalCount }

// Results returns the surviving candidates in content-canonical order
// (Instance.Compare) with their cached deltas aligned — exactly
// Result.Repairs/Result.Deltas of a completed enumeration, independent of
// the order leaves arrived in.
func (a *Antichain) Results() ([]*relational.Instance, []relational.Delta) {
	idx := make([]int, 0, a.minimalCount)
	for i := range a.entries {
		if !a.entries[i].dominated {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(x, y int) bool {
		return a.entries[idx[x]].inst.Compare(a.entries[idx[y]].inst) < 0
	})
	if len(idx) == 0 {
		return nil, nil
	}
	repairs := make([]*relational.Instance, len(idx))
	deltas := make([]relational.Delta, len(idx))
	for i, j := range idx {
		repairs[i] = a.entries[j].inst
		deltas[i] = a.entries[j].view.dl
	}
	return repairs, deltas
}

// ConfirmLimit bounds the dominator pool ConfirmMinimal is willing to
// enumerate: at most 2^ConfirmLimit candidate instances are checked.
const ConfirmLimit = 12

// ConfirmMinimal reports whether cand — a consistent leaf of the search on
// (d, set) — is provably minimal, i.e. certainly a member of Rep(D, IC)
// even though the enumeration has not finished. The certificate enumerates
// every instance whose delta could strictly precede Δ(d, cand) under the
// mode's order — subsets of cand's removals and additions, extended under
// ≤_D with the null-generalizations of the additions (condition (b) of
// Definition 6 lets an inserted atom with nulls be matched by a more
// specific insertion, so a dominator may generalize one of cand's atoms) —
// and checks that none of them is consistent. Any future leaf strictly below
// cand would be exactly such a consistent instance, so a true result lets
// streaming consumers short-circuit: a boolean certain answer is refuted the
// moment one confirmed-minimal counterexample exists.
//
// A false result promises nothing: the pool may exceed ConfirmLimit, or a
// consistent dominator may exist that the search never reaches. Callers fall
// back to full enumeration in that case, so the final answer is unchanged
// either way.
func ConfirmMinimal(d, cand *relational.Instance, set *constraint.Set, opts Options) bool {
	dl := relational.Diff(d, cand)
	sem := nullsem.NullAware
	if opts.Mode == Classic {
		sem = nullsem.ClassicFO
	}
	leq := deltaOrder(opts.Mode)

	type edit struct {
		f      relational.Fact
		insert bool
	}
	pool := make([]edit, 0, len(dl.Removed)+len(dl.Added))
	for _, f := range dl.Removed {
		pool = append(pool, edit{f: f})
	}
	adds := dl.Added
	if opts.Mode == NullBased {
		var ok bool
		if adds, ok = nullGeneralizations(dl.Added); !ok {
			return false
		}
	}
	for _, f := range adds {
		pool = append(pool, edit{f: f, insert: true})
	}
	if len(pool) > ConfirmLimit {
		return false
	}
	// Each candidate dominator differs from cand — a consistent instance —
	// by only a handful of facts, so its consistency is decided by the
	// Δ-seeded incremental check anchored on cand instead of a full
	// re-evaluation of every constraint: constraints untouched by
	// Δ(cand, d2) are skipped outright. Every violation the anchored check
	// finds is genuine (confirmed on d2), so even if a caller passes an
	// inconsistent cand the certificate can only degrade to a false
	// negative — ConfirmMinimal never wrongly returns true.
	sc := nullsem.NewSetChecker(set, sem)
	for mask := 0; mask < 1<<len(pool); mask++ {
		d2 := d.Clone()
		for b, e := range pool {
			if mask&(1<<b) == 0 {
				continue
			}
			if e.insert {
				d2.Insert(e.f)
			} else {
				d2.Delete(e.f)
			}
		}
		dl2 := relational.Diff(d, d2)
		if !leq(dl2, dl) || leq(dl, dl2) {
			continue // not strictly below cand
		}
		if sc.SatisfiesFrom(d2, relational.Diff(cand, d2)) {
			return false // a consistent strict dominator exists
		}
	}
	return true
}

// nullGeneralizations returns the added atoms together with every variant
// obtained by replacing a subset of positions with null, deduplicated. ok is
// false when the expansion would exceed ConfirmLimit (the caller then skips
// the certificate rather than enumerate an oversized pool).
func nullGeneralizations(added []relational.Fact) ([]relational.Fact, bool) {
	var out []relational.Fact
	seen := newFactDedup(len(added))
	for _, g := range added {
		if len(g.Args) > ConfirmLimit {
			return nil, false
		}
		for mask := 0; mask < 1<<len(g.Args); mask++ {
			args := g.Args.Clone()
			for p := range args {
				if mask&(1<<p) != 0 {
					args[p] = value.Null()
				}
			}
			f := relational.Fact{Pred: g.Pred, Args: args}
			if !seen.add(f) {
				continue
			}
			out = append(out, f)
			if len(out) > ConfirmLimit {
				return nil, false
			}
		}
	}
	return out, true
}

// MinimalUnder returns the candidates that are minimal under the given
// (reflexive) ordering: c is kept iff no other candidate is strictly below
// it. Duplicate instances are collapsed. The result preserves input order.
func MinimalUnder(d *relational.Instance, candidates []*relational.Instance, leq Ordering) []*relational.Instance {
	var uniq []*relational.Instance
	seen := map[string]bool{}
	for _, c := range candidates {
		k := c.Key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, c)
		}
	}
	var out []*relational.Instance
	for i, c := range uniq {
		minimal := true
		for j, o := range uniq {
			if i == j {
				continue
			}
			if leq(d, o, c) && !leq(d, c, o) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, c)
		}
	}
	return out
}

// Package repair implements Section 4 of the paper: the refined repair
// order ≤_D of Definition 6, the repair notion of Definition 7 (consistency
// wrt |=_N plus ≤_D-minimality), the deletion-preferring class Rep_d for
// conflicting NNCs, and — as the baseline the paper compares against — the
// classic repair semantics of Arenas, Bertossi & Chomicki (PODS 99, the
// paper's [2]) with active-domain insertions and plain ⊆-minimality of the
// symmetric difference.
//
// Repairs are enumerated by a violation-driven search (see search.go) whose
// termination follows from Proposition 1: every reachable instance lives in
// the finite space over adom(D) ∪ const(IC) ∪ {null}.
package repair

import (
	"sort"

	"repro/internal/constraint"
	"repro/internal/nullsem"
	"repro/internal/relational"
	"repro/internal/value"
)

// LeqD implements the intended reading of Definition 6: D1 ≤_D D2 iff
//
//	(a) every atom of Δ(D,D1) without nulls, and every *deleted* atom with
//	    nulls, occurs identically in Δ(D,D2); and
//	(b) every *inserted* atom Q(ā) of Δ(D,D1) containing nulls is matched
//	    in Δ(D,D2) either by the identical atom, or by an inserted atom
//	    not in Δ(D,D1) that agrees with Q(ā) on its non-null positions.
//
// Two refinements over the letter of Definition 6 are needed to reproduce
// the repair sets the paper states for Examples 16–18 (both are exercised
// by discriminating unit tests and the brute-force cross-check):
//
//   - the identical atom counts as its own match (the literal "∉ Δ(D,D′)"
//     exclusion alone makes ≤_D irreflexive, and leaves instances with
//     gratuitous extra deletions incomparable to, rather than dominated by,
//     proper repairs);
//   - matching is directional: inserted null atoms are matched against
//     insertions only (the literal reading lets a *deleted* original atom
//     pattern-match an insertion), and deletions always match exactly.
//
// See LeqDLiteral for the verbatim text; DESIGN.md records the deviation.
func LeqD(d, d1, d2 *relational.Instance) bool {
	return LeqDDeltas(relational.Diff(d, d1), relational.Diff(d, d2))
}

// LeqDDeltas is LeqD on precomputed symmetric differences dl1 = Δ(D, D1)
// and dl2 = Δ(D, D2). Streaming consumers (the Antichain) compute each
// candidate's delta once and compare deltas directly instead of re-diffing
// per pair.
func LeqDDeltas(dl1, dl2 relational.Delta) bool {
	removed2 := factSet(dl2.Removed)
	added1 := factSet(dl1.Added)
	added2 := factSet(dl2.Added)

	for _, f := range dl1.Removed {
		if !removed2[f.Key()] {
			return false
		}
	}
	for _, f := range dl1.Added {
		if !f.Args.HasNull() {
			if !added2[f.Key()] {
				return false
			}
			continue
		}
		if added2[f.Key()] {
			continue // the identical insertion
		}
		if !hasPatternMatch(f, dl2.Added, added1) {
			return false
		}
	}
	return true
}

// LessD is the strict order: D1 <_D D2 iff D1 ≤_D D2 and not D2 ≤_D D1.
func LessD(d, d1, d2 *relational.Instance) bool {
	return LeqD(d, d1, d2) && !LeqD(d, d2, d1)
}

// LeqDLiteral is the letter of Definition 6: condition (b) requires a
// matching atom outside Δ(D,D1), and applies to every null-containing atom
// of the symmetric difference (inserted or deleted). Kept for documentation
// and tests; the repair machinery uses LeqD.
func LeqDLiteral(d, d1, d2 *relational.Instance) bool {
	dl1, dl2 := relational.Diff(d, d1), relational.Diff(d, d2)
	delta1 := deltaSet(dl1)
	delta2 := append(append([]relational.Fact(nil), dl2.Removed...), dl2.Added...)
	delta2Set := deltaSet(dl2)

	check := func(f relational.Fact) bool {
		if !f.Args.HasNull() {
			return delta2Set[f.Key()]
		}
		return hasPatternMatch(f, delta2, delta1)
	}
	for _, f := range dl1.Removed {
		if !check(f) {
			return false
		}
	}
	for _, f := range dl1.Added {
		if !check(f) {
			return false
		}
	}
	return true
}

// hasPatternMatch reports whether some candidate agrees with f on f's
// non-null positions (same predicate and arity), excluding candidates whose
// key appears in excluded.
func hasPatternMatch(f relational.Fact, candidates []relational.Fact, excluded map[string]bool) bool {
	for _, g := range candidates {
		if g.Pred != f.Pred || len(g.Args) != len(f.Args) {
			continue
		}
		if excluded != nil && excluded[g.Key()] {
			continue
		}
		ok := true
		for i, v := range f.Args {
			if !v.IsNull() && !g.Args[i].Eq(v) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func factSet(fs []relational.Fact) map[string]bool {
	m := make(map[string]bool, len(fs))
	for _, f := range fs {
		m[f.Key()] = true
	}
	return m
}

// deltaSet is the key set of both halves of a symmetric difference, built
// without materializing (and sorting) a merged fact slice.
func deltaSet(dl relational.Delta) map[string]bool {
	m := make(map[string]bool, dl.Size())
	for _, f := range dl.Removed {
		m[f.Key()] = true
	}
	for _, f := range dl.Added {
		m[f.Key()] = true
	}
	return m
}

// SubsetDelta is the classic order of the paper's [2]: Δ(D,D1) ⊆ Δ(D,D2)
// as plain sets of atoms.
func SubsetDelta(d, d1, d2 *relational.Instance) bool {
	return SubsetDeltas(relational.Diff(d, d1), relational.Diff(d, d2))
}

// SubsetDeltas is SubsetDelta on precomputed symmetric differences.
func SubsetDeltas(dl1, dl2 relational.Delta) bool {
	set2 := deltaSet(dl2)
	for _, f := range dl1.Removed {
		if !set2[f.Key()] {
			return false
		}
	}
	for _, f := range dl1.Added {
		if !set2[f.Key()] {
			return false
		}
	}
	return true
}

// Ordering compares two candidate repaired instances relative to the
// original d.
type Ordering func(d, d1, d2 *relational.Instance) bool

// deltaOrder returns the mode's ≤ comparison on precomputed deltas.
func deltaOrder(mode Mode) func(dl1, dl2 relational.Delta) bool {
	if mode == Classic {
		return SubsetDeltas
	}
	return LeqDDeltas
}

// Antichain is the online form of MinimalUnder: it consumes a stream of
// distinct consistent leaves and maintains, at every point, the subset that
// is minimal among the leaves seen so far under the mode's order. Dominated
// leaves are remembered (a non-minimal leaf can still dominate a later one —
// MinimalUnder compares against every candidate, not only the minimal ones,
// and ≤_D transitivity is a tested property, not an assumption), so the
// final minimal set is exactly MinimalUnder over the whole stream, no matter
// in which order a parallel search delivered it. Each leaf's Δ(D, leaf) is
// computed once on entry — together with its per-fact key encodings and key
// sets — and cached for every later comparison and for Result.Deltas, so
// the O(n²) pairwise comparisons never re-intern a constant or rebuild a
// key map (the pre-view antichain spent most of the enumeration's time
// doing exactly that).
//
// Antichain is not safe for concurrent use; the streaming search calls Add
// from the single collector goroutine.
type Antichain struct {
	d            *relational.Instance
	classic      bool
	entries      []acEntry
	minimalCount int
}

type acEntry struct {
	inst      *relational.Instance
	view      *deltaView
	dominated bool
}

// deltaView is a delta with its comparison artifacts precomputed: the key of
// every fact (keys are interner round-trips, the hot cost of ≤_D) and the
// key sets both orders probe.
type deltaView struct {
	dl          relational.Delta
	removedKeys []string        // aligned with dl.Removed
	addedKeys   []string        // aligned with dl.Added
	addedNull   []bool          // aligned with dl.Added: Args.HasNull()
	removedSet  map[string]bool // keys of dl.Removed
	addedSet    map[string]bool // keys of dl.Added
}

func newDeltaView(dl relational.Delta) *deltaView {
	v := &deltaView{
		dl:          dl,
		removedKeys: make([]string, len(dl.Removed)),
		addedKeys:   make([]string, len(dl.Added)),
		addedNull:   make([]bool, len(dl.Added)),
		removedSet:  make(map[string]bool, len(dl.Removed)),
		addedSet:    make(map[string]bool, len(dl.Added)),
	}
	for i, f := range dl.Removed {
		k := f.Key()
		v.removedKeys[i] = k
		v.removedSet[k] = true
	}
	for i, f := range dl.Added {
		k := f.Key()
		v.addedKeys[i] = k
		v.addedNull[i] = f.Args.HasNull()
		v.addedSet[k] = true
	}
	return v
}

// leqDViews is LeqDDeltas over precomputed views.
func leqDViews(a, b *deltaView) bool {
	for _, k := range a.removedKeys {
		if !b.removedSet[k] {
			return false
		}
	}
	for i := range a.dl.Added {
		k := a.addedKeys[i]
		if !a.addedNull[i] {
			if !b.addedSet[k] {
				return false
			}
			continue
		}
		if b.addedSet[k] {
			continue // the identical insertion
		}
		if !patternMatchViews(a.dl.Added[i], b, a.addedSet) {
			return false
		}
	}
	return true
}

// patternMatchViews is hasPatternMatch against a view's additions, using the
// cached keys for the exclusion test.
func patternMatchViews(f relational.Fact, b *deltaView, excluded map[string]bool) bool {
	for i, g := range b.dl.Added {
		if g.Pred != f.Pred || len(g.Args) != len(f.Args) {
			continue
		}
		if excluded[b.addedKeys[i]] {
			continue
		}
		ok := true
		for p, v := range f.Args {
			if !v.IsNull() && !g.Args[p].Eq(v) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// subsetViews is SubsetDeltas over precomputed views.
func subsetViews(a, b *deltaView) bool {
	for _, k := range a.removedKeys {
		if !b.removedSet[k] && !b.addedSet[k] {
			return false
		}
	}
	for _, k := range a.addedKeys {
		if !b.removedSet[k] && !b.addedSet[k] {
			return false
		}
	}
	return true
}

func (a *Antichain) leq(v1, v2 *deltaView) bool {
	if a.classic {
		return subsetViews(v1, v2)
	}
	return leqDViews(v1, v2)
}

// NewAntichain returns an empty antichain filtering under the given mode's
// order (≤_D for NullBased, ⊆-Δ for Classic) relative to the original d.
func NewAntichain(d *relational.Instance, mode Mode) *Antichain {
	return &Antichain{d: d, classic: mode == Classic}
}

// Add feeds one leaf into the filter. It reports whether the leaf is
// minimal among the leaves seen so far (it may still be displaced by a later
// leaf), plus the previously-minimal leaves this one strictly dominates —
// streaming consumers drop per-candidate state (cached query answers) for
// displaced leaves. Leaves must be distinct; the search guarantees that.
func (a *Antichain) Add(leaf *relational.Instance) (minimal bool, displaced []*relational.Instance) {
	view := newDeltaView(relational.Diff(a.d, leaf))
	dominated := false
	for i := range a.entries {
		o := &a.entries[i]
		oBelow := a.leq(o.view, view)
		cBelow := a.leq(view, o.view)
		if oBelow && !cBelow {
			dominated = true
		}
		if cBelow && !oBelow && !o.dominated {
			o.dominated = true
			a.minimalCount--
			displaced = append(displaced, o.inst)
		}
	}
	a.entries = append(a.entries, acEntry{inst: leaf, view: view, dominated: dominated})
	if !dominated {
		a.minimalCount++
	}
	return !dominated, displaced
}

// MinimalCount returns the current number of surviving candidates.
func (a *Antichain) MinimalCount() int { return a.minimalCount }

// Results returns the surviving candidates in content-canonical order
// (Instance.Compare) with their cached deltas aligned — exactly
// Result.Repairs/Result.Deltas of a completed enumeration, independent of
// the order leaves arrived in.
func (a *Antichain) Results() ([]*relational.Instance, []relational.Delta) {
	idx := make([]int, 0, a.minimalCount)
	for i := range a.entries {
		if !a.entries[i].dominated {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(x, y int) bool {
		return a.entries[idx[x]].inst.Compare(a.entries[idx[y]].inst) < 0
	})
	if len(idx) == 0 {
		return nil, nil
	}
	repairs := make([]*relational.Instance, len(idx))
	deltas := make([]relational.Delta, len(idx))
	for i, j := range idx {
		repairs[i] = a.entries[j].inst
		deltas[i] = a.entries[j].view.dl
	}
	return repairs, deltas
}

// ConfirmLimit bounds the dominator pool ConfirmMinimal is willing to
// enumerate: at most 2^ConfirmLimit candidate instances are checked.
const ConfirmLimit = 12

// ConfirmMinimal reports whether cand — a consistent leaf of the search on
// (d, set) — is provably minimal, i.e. certainly a member of Rep(D, IC)
// even though the enumeration has not finished. The certificate enumerates
// every instance whose delta could strictly precede Δ(d, cand) under the
// mode's order — subsets of cand's removals and additions, extended under
// ≤_D with the null-generalizations of the additions (condition (b) of
// Definition 6 lets an inserted atom with nulls be matched by a more
// specific insertion, so a dominator may generalize one of cand's atoms) —
// and checks that none of them is consistent. Any future leaf strictly below
// cand would be exactly such a consistent instance, so a true result lets
// streaming consumers short-circuit: a boolean certain answer is refuted the
// moment one confirmed-minimal counterexample exists.
//
// A false result promises nothing: the pool may exceed ConfirmLimit, or a
// consistent dominator may exist that the search never reaches. Callers fall
// back to full enumeration in that case, so the final answer is unchanged
// either way.
func ConfirmMinimal(d, cand *relational.Instance, set *constraint.Set, opts Options) bool {
	dl := relational.Diff(d, cand)
	sem := nullsem.NullAware
	if opts.Mode == Classic {
		sem = nullsem.ClassicFO
	}
	leq := deltaOrder(opts.Mode)

	type edit struct {
		f      relational.Fact
		insert bool
	}
	pool := make([]edit, 0, len(dl.Removed)+len(dl.Added))
	for _, f := range dl.Removed {
		pool = append(pool, edit{f: f})
	}
	adds := dl.Added
	if opts.Mode == NullBased {
		var ok bool
		if adds, ok = nullGeneralizations(dl.Added); !ok {
			return false
		}
	}
	for _, f := range adds {
		pool = append(pool, edit{f: f, insert: true})
	}
	if len(pool) > ConfirmLimit {
		return false
	}
	// Each candidate dominator differs from cand — a consistent instance —
	// by only a handful of facts, so its consistency is decided by the
	// Δ-seeded incremental check anchored on cand instead of a full
	// re-evaluation of every constraint: constraints untouched by
	// Δ(cand, d2) are skipped outright. Every violation the anchored check
	// finds is genuine (confirmed on d2), so even if a caller passes an
	// inconsistent cand the certificate can only degrade to a false
	// negative — ConfirmMinimal never wrongly returns true.
	sc := nullsem.NewSetChecker(set, sem)
	for mask := 0; mask < 1<<len(pool); mask++ {
		d2 := d.Clone()
		for b, e := range pool {
			if mask&(1<<b) == 0 {
				continue
			}
			if e.insert {
				d2.Insert(e.f)
			} else {
				d2.Delete(e.f)
			}
		}
		dl2 := relational.Diff(d, d2)
		if !leq(dl2, dl) || leq(dl, dl2) {
			continue // not strictly below cand
		}
		if sc.SatisfiesFrom(d2, relational.Diff(cand, d2)) {
			return false // a consistent strict dominator exists
		}
	}
	return true
}

// nullGeneralizations returns the added atoms together with every variant
// obtained by replacing a subset of positions with null, deduplicated. ok is
// false when the expansion would exceed ConfirmLimit (the caller then skips
// the certificate rather than enumerate an oversized pool).
func nullGeneralizations(added []relational.Fact) ([]relational.Fact, bool) {
	var out []relational.Fact
	seen := newFactDedup(len(added))
	for _, g := range added {
		if len(g.Args) > ConfirmLimit {
			return nil, false
		}
		for mask := 0; mask < 1<<len(g.Args); mask++ {
			args := g.Args.Clone()
			for p := range args {
				if mask&(1<<p) != 0 {
					args[p] = value.Null()
				}
			}
			f := relational.Fact{Pred: g.Pred, Args: args}
			if !seen.add(f) {
				continue
			}
			out = append(out, f)
			if len(out) > ConfirmLimit {
				return nil, false
			}
		}
	}
	return out, true
}

// MinimalUnder returns the candidates that are minimal under the given
// (reflexive) ordering: c is kept iff no other candidate is strictly below
// it. Duplicate instances are collapsed. The result preserves input order.
func MinimalUnder(d *relational.Instance, candidates []*relational.Instance, leq Ordering) []*relational.Instance {
	var uniq []*relational.Instance
	seen := map[string]bool{}
	for _, c := range candidates {
		k := c.Key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, c)
		}
	}
	var out []*relational.Instance
	for i, c := range uniq {
		minimal := true
		for j, o := range uniq {
			if i == j {
				continue
			}
			if leq(d, o, c) && !leq(d, c, o) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, c)
		}
	}
	return out
}

// Package repair implements Section 4 of the paper: the refined repair
// order ≤_D of Definition 6, the repair notion of Definition 7 (consistency
// wrt |=_N plus ≤_D-minimality), the deletion-preferring class Rep_d for
// conflicting NNCs, and — as the baseline the paper compares against — the
// classic repair semantics of Arenas, Bertossi & Chomicki (PODS 99, the
// paper's [2]) with active-domain insertions and plain ⊆-minimality of the
// symmetric difference.
//
// Repairs are enumerated by a violation-driven search (see search.go) whose
// termination follows from Proposition 1: every reachable instance lives in
// the finite space over adom(D) ∪ const(IC) ∪ {null}.
package repair

import (
	"repro/internal/relational"
)

// LeqD implements the intended reading of Definition 6: D1 ≤_D D2 iff
//
//	(a) every atom of Δ(D,D1) without nulls, and every *deleted* atom with
//	    nulls, occurs identically in Δ(D,D2); and
//	(b) every *inserted* atom Q(ā) of Δ(D,D1) containing nulls is matched
//	    in Δ(D,D2) either by the identical atom, or by an inserted atom
//	    not in Δ(D,D1) that agrees with Q(ā) on its non-null positions.
//
// Two refinements over the letter of Definition 6 are needed to reproduce
// the repair sets the paper states for Examples 16–18 (both are exercised
// by discriminating unit tests and the brute-force cross-check):
//
//   - the identical atom counts as its own match (the literal "∉ Δ(D,D′)"
//     exclusion alone makes ≤_D irreflexive, and leaves instances with
//     gratuitous extra deletions incomparable to, rather than dominated by,
//     proper repairs);
//   - matching is directional: inserted null atoms are matched against
//     insertions only (the literal reading lets a *deleted* original atom
//     pattern-match an insertion), and deletions always match exactly.
//
// See LeqDLiteral for the verbatim text; DESIGN.md records the deviation.
func LeqD(d, d1, d2 *relational.Instance) bool {
	dl1, dl2 := relational.Diff(d, d1), relational.Diff(d, d2)
	removed2 := factSet(dl2.Removed)
	added1 := factSet(dl1.Added)
	added2 := factSet(dl2.Added)

	for _, f := range dl1.Removed {
		if !removed2[f.Key()] {
			return false
		}
	}
	for _, f := range dl1.Added {
		if !f.Args.HasNull() {
			if !added2[f.Key()] {
				return false
			}
			continue
		}
		if added2[f.Key()] {
			continue // the identical insertion
		}
		if !hasPatternMatch(f, dl2.Added, added1) {
			return false
		}
	}
	return true
}

// LessD is the strict order: D1 <_D D2 iff D1 ≤_D D2 and not D2 ≤_D D1.
func LessD(d, d1, d2 *relational.Instance) bool {
	return LeqD(d, d1, d2) && !LeqD(d, d2, d1)
}

// LeqDLiteral is the letter of Definition 6: condition (b) requires a
// matching atom outside Δ(D,D1), and applies to every null-containing atom
// of the symmetric difference (inserted or deleted). Kept for documentation
// and tests; the repair machinery uses LeqD.
func LeqDLiteral(d, d1, d2 *relational.Instance) bool {
	dl1, dl2 := relational.Diff(d, d1), relational.Diff(d, d2)
	delta1 := deltaSet(dl1)
	delta2 := append(append([]relational.Fact(nil), dl2.Removed...), dl2.Added...)
	delta2Set := deltaSet(dl2)

	check := func(f relational.Fact) bool {
		if !f.Args.HasNull() {
			return delta2Set[f.Key()]
		}
		return hasPatternMatch(f, delta2, delta1)
	}
	for _, f := range dl1.Removed {
		if !check(f) {
			return false
		}
	}
	for _, f := range dl1.Added {
		if !check(f) {
			return false
		}
	}
	return true
}

// hasPatternMatch reports whether some candidate agrees with f on f's
// non-null positions (same predicate and arity), excluding candidates whose
// key appears in excluded.
func hasPatternMatch(f relational.Fact, candidates []relational.Fact, excluded map[string]bool) bool {
	for _, g := range candidates {
		if g.Pred != f.Pred || len(g.Args) != len(f.Args) {
			continue
		}
		if excluded != nil && excluded[g.Key()] {
			continue
		}
		ok := true
		for i, v := range f.Args {
			if !v.IsNull() && !g.Args[i].Eq(v) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func factSet(fs []relational.Fact) map[string]bool {
	m := make(map[string]bool, len(fs))
	for _, f := range fs {
		m[f.Key()] = true
	}
	return m
}

// deltaSet is the key set of both halves of a symmetric difference, built
// without materializing (and sorting) a merged fact slice.
func deltaSet(dl relational.Delta) map[string]bool {
	m := make(map[string]bool, dl.Size())
	for _, f := range dl.Removed {
		m[f.Key()] = true
	}
	for _, f := range dl.Added {
		m[f.Key()] = true
	}
	return m
}

// SubsetDelta is the classic order of the paper's [2]: Δ(D,D1) ⊆ Δ(D,D2)
// as plain sets of atoms.
func SubsetDelta(d, d1, d2 *relational.Instance) bool {
	dl1, dl2 := relational.Diff(d, d1), relational.Diff(d, d2)
	set2 := deltaSet(dl2)
	for _, f := range dl1.Removed {
		if !set2[f.Key()] {
			return false
		}
	}
	for _, f := range dl1.Added {
		if !set2[f.Key()] {
			return false
		}
	}
	return true
}

// Ordering compares two candidate repaired instances relative to the
// original d.
type Ordering func(d, d1, d2 *relational.Instance) bool

// MinimalUnder returns the candidates that are minimal under the given
// (reflexive) ordering: c is kept iff no other candidate is strictly below
// it. Duplicate instances are collapsed. The result preserves input order.
func MinimalUnder(d *relational.Instance, candidates []*relational.Instance, leq Ordering) []*relational.Instance {
	var uniq []*relational.Instance
	seen := map[string]bool{}
	for _, c := range candidates {
		k := c.Key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, c)
		}
	}
	var out []*relational.Instance
	for i, c := range uniq {
		minimal := true
		for j, o := range uniq {
			if i == j {
				continue
			}
			if leq(d, o, c) && !leq(d, c, o) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, c)
		}
	}
	return out
}

package repair

import (
	"math/rand"
	"testing"

	"repro/internal/relational"
	"repro/internal/value"
)

// randomSmallInstance draws an instance over P/1 and Q/2 with constants
// {a, b, null}.
func randomSmallInstance(rng *rand.Rand) *relational.Instance {
	vals := []value.V{value.Str("a"), value.Str("b"), value.Null()}
	d := relational.NewInstance()
	for _, x := range vals {
		if rng.Intn(2) == 0 {
			d.Insert(relational.F("P", x))
		}
		for _, y := range vals {
			if rng.Intn(4) == 0 {
				d.Insert(relational.F("Q", x, y))
			}
		}
	}
	return d
}

func TestLeqDReflexiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		d := randomSmallInstance(rng)
		d1 := randomSmallInstance(rng)
		if !LeqD(d, d1, d1) {
			t.Fatalf("trial %d: ≤_D not reflexive for D=%v, D1=%v", trial, d, d1)
		}
	}
}

func TestLeqDTransitiveOnRandomTriples(t *testing.T) {
	// ≤_D as implemented should be transitive on the instances the
	// repair machinery compares; this property test guards the
	// minimality filter's correctness.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		d := randomSmallInstance(rng)
		d1 := randomSmallInstance(rng)
		d2 := randomSmallInstance(rng)
		d3 := randomSmallInstance(rng)
		if LeqD(d, d1, d2) && LeqD(d, d2, d3) && !LeqD(d, d1, d3) {
			t.Fatalf("trial %d: transitivity violated:\nD=%v\nD1=%v\nD2=%v\nD3=%v",
				trial, d, d1, d2, d3)
		}
	}
}

func TestLeqDNeverComparesAcrossPredicates(t *testing.T) {
	d := inst()
	d1 := inst(fact("P", n()))
	d2 := inst(fact("Q", s("a"), s("a")))
	if LeqD(d, d1, d2) || LeqD(d, d2, d1) {
		t.Error("insertions of different predicates must not match")
	}
}

func TestLeqDArityMismatch(t *testing.T) {
	d := inst()
	d1 := d.Clone()
	d1.Insert(relational.Fact{Pred: "Q", Args: relational.Tuple{n()}})
	d2 := d.Clone()
	d2.Insert(fact("Q", s("a"), s("b")))
	if LeqD(d, d1, d2) {
		t.Error("a null insertion must not match an insertion of different arity")
	}
}

func TestMinimalUnderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		d := randomSmallInstance(rng)
		var candidates []*relational.Instance
		for k := 0; k < 1+rng.Intn(6); k++ {
			candidates = append(candidates, randomSmallInstance(rng))
		}
		minimal := MinimalUnder(d, candidates, LeqD)
		if len(minimal) == 0 {
			t.Fatalf("trial %d: minimal set empty for %d candidates", trial, len(candidates))
		}
		kept := map[string]bool{}
		for _, m := range minimal {
			kept[m.Key()] = true
		}
		// Every excluded candidate is strictly dominated by some
		// candidate; every kept candidate is dominated by none.
		for _, c := range candidates {
			dominated := false
			for _, o := range candidates {
				if o.Key() != c.Key() && LessD(d, o, c) {
					dominated = true
					break
				}
			}
			if kept[c.Key()] && dominated {
				t.Fatalf("trial %d: kept candidate %v is dominated", trial, c)
			}
			if !kept[c.Key()] && !dominated {
				t.Fatalf("trial %d: excluded candidate %v is not dominated", trial, c)
			}
		}
	}
}

func TestSubsetDeltaMatchesSetInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		d := randomSmallInstance(rng)
		d1 := randomSmallInstance(rng)
		d2 := randomSmallInstance(rng)
		got := SubsetDelta(d, d1, d2)
		// Independent reimplementation via maps.
		set2 := map[string]bool{}
		for _, f := range relational.Diff(d, d2).Facts() {
			set2[f.Key()] = true
		}
		want := true
		for _, f := range relational.Diff(d, d1).Facts() {
			if !set2[f.Key()] {
				want = false
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d: SubsetDelta = %v, want %v", trial, got, want)
		}
	}
}

func TestLeqDLiteralDocumentedDifferences(t *testing.T) {
	// The two readings agree on null-free instances.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		d := inst()
		d1 := inst()
		d2 := inst()
		vals := []value.V{value.Str("a"), value.Str("b")}
		for _, x := range vals {
			for _, y := range vals {
				f := fact("Q", x, y)
				if rng.Intn(2) == 0 {
					d.Insert(f)
				}
				if rng.Intn(2) == 0 {
					d1.Insert(f)
				}
				if rng.Intn(2) == 0 {
					d2.Insert(f)
				}
			}
		}
		if LeqD(d, d1, d2) != LeqDLiteral(d, d1, d2) {
			t.Fatalf("trial %d: readings disagree on a null-free instance:\nD=%v\nD1=%v\nD2=%v",
				trial, d, d1, d2)
		}
	}
}

package repair

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/relational"
	"repro/internal/value"
)

// TestIncrementalProbeMatchesScratch is the tentpole differential for the
// delta-driven search: over randomized instances and constraint sets, the
// incremental probe (the default) must produce byte-identical Repairs and
// Deltas — content and order — to the scratch probe (Options.ScratchProbe),
// in both modes and at workers ∈ {1, 4}. Run under -race this also exercises
// concurrent reads of the shared probe snapshots.
func TestIncrementalProbeMatchesScratch(t *testing.T) {
	universe := atomUniverse()
	sets := bruteSets()
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 40; trial++ {
		d := relational.NewInstance()
		for _, f := range universe {
			if rng.Intn(2) == 0 {
				d.Insert(f)
			}
		}
		set := sets[trial%len(sets)]
		for _, mode := range []Mode{NullBased, Classic} {
			scratch, err := Repairs(d, set, Options{Mode: mode, ScratchProbe: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				inc, err := Repairs(d, set, Options{Mode: mode, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if len(inc.Repairs) != len(scratch.Repairs) {
					t.Fatalf("trial %d mode %v workers %d: incremental %d repairs, scratch %d\nD=%v",
						trial, mode, workers, len(inc.Repairs), len(scratch.Repairs), d)
				}
				for i := range scratch.Repairs {
					if inc.Repairs[i].Key() != scratch.Repairs[i].Key() {
						t.Fatalf("trial %d mode %v workers %d: repair %d differs: %v vs %v",
							trial, mode, workers, i, inc.Repairs[i], scratch.Repairs[i])
					}
					if !sameDelta(inc.Deltas[i], scratch.Deltas[i]) {
						t.Fatalf("trial %d mode %v workers %d: delta %d differs: %v vs %v",
							trial, mode, workers, i, inc.Deltas[i], scratch.Deltas[i])
					}
				}
			}
		}
	}
}

// TestIncrementalProbeDeepChains pins incremental ≡ scratch on the chained
// bulk-FD workload (deletion-only fixes, deep fix sequences) where the
// maintained violation lists carry across many levels, including the exact
// per-state diagnostics: deletion-only expansion is content-determined, so
// the probes choose identical violations and the fringes coincide.
func TestIncrementalProbeDeepChains(t *testing.T) {
	d := relational.NewInstance()
	for i := 0; i < 4; i++ {
		k := value.Str(fmt.Sprintf("k%d", i))
		d.Insert(relational.F("r", k, value.Str("b")))
		d.Insert(relational.F("r", k, value.Str("c")))
	}
	for i := 0; i < 32; i++ {
		d.Insert(relational.F("r", value.Str(fmt.Sprintf("u%d", i)), value.Str("v")))
	}
	fd := constraint.MustSet(constraint.FD("r", 2, []int{0}, []int{1}), nil)
	scratch := mustRepairs(t, d, fd, Options{ScratchProbe: true})
	inc := mustRepairs(t, d, fd, Options{})
	if len(inc.Repairs) != 16 || len(scratch.Repairs) != 16 {
		t.Fatalf("repairs = %d incremental / %d scratch, want 16", len(inc.Repairs), len(scratch.Repairs))
	}
	if inc.StatesExplored != scratch.StatesExplored || inc.Leaves != scratch.Leaves {
		t.Fatalf("diagnostics diverge on a deletion-only workload: incremental %d/%d, scratch %d/%d",
			inc.StatesExplored, inc.Leaves, scratch.StatesExplored, scratch.Leaves)
	}
	for i := range scratch.Repairs {
		if inc.Repairs[i].Key() != scratch.Repairs[i].Key() {
			t.Fatalf("repair %d differs between probes", i)
		}
	}
}

package repair

import (
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/nullsem"
	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

func v(name string) term.T                       { return term.V(name) }
func atom(pred string, args ...term.T) term.Atom { return term.NewAtom(pred, args...) }
func s(x string) value.V                         { return value.Str(x) }
func i(x int64) value.V                          { return value.Int(x) }
func n() value.V                                 { return value.Null() }
func fact(pred string, args ...value.V) relational.Fact {
	return relational.F(pred, args...)
}
func inst(facts ...relational.Fact) *relational.Instance {
	return relational.NewInstance(facts...)
}

func mustRepairs(t *testing.T, d *relational.Instance, set *constraint.Set, opts Options) Result {
	t.Helper()
	res, err := Repairs(d, set, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func wantRepairSet(t *testing.T, got []*relational.Instance, want []*relational.Instance) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d repairs, want %d:\ngot: %v\nwant: %v", len(got), len(want), got, want)
	}
	gotKeys := map[string]bool{}
	for _, g := range got {
		gotKeys[g.Key()] = true
	}
	for _, w := range want {
		if !gotKeys[w.Key()] {
			t.Errorf("missing repair %v\ngot %v", w, got)
		}
	}
}

// --- Definition 6 order ------------------------------------------------------

func TestLeqDExample16(t *testing.T) {
	d := inst(fact("Q", s("a"), s("b")), fact("P", s("a"), s("c")))
	d1 := inst() // empty
	d2 := inst(fact("P", s("a"), s("c")), fact("Q", s("a"), n()))
	if LeqD(d, d2, d1) {
		t.Error("D2 ≤_D D1 must fail (no fresh Q(a,·) insertion in Δ1)")
	}
	if LeqD(d, d1, d2) {
		t.Error("D1 ≤_D D2 must fail (P(a,c) ∉ Δ2)")
	}
}

func TestLeqDExample17(t *testing.T) {
	d := inst(fact("P", s("a"), n()), fact("P", s("b"), s("c")), fact("R", s("a"), s("b")))
	d1 := d.Clone()
	d1.Insert(fact("R", s("b"), n()))
	d3 := d.Clone()
	d3.Insert(fact("R", s("b"), s("d")))
	// D1 <_D D3: the null insertion R(b,null) is dominated-matched by
	// R(b,d), but not vice versa.
	if !LeqD(d, d1, d3) {
		t.Error("D1 ≤_D D3 must hold")
	}
	if LeqD(d, d3, d1) {
		t.Error("D3 ≤_D D1 must fail")
	}
	if !LessD(d, d1, d3) {
		t.Error("D1 <_D D3 must hold")
	}
}

func TestLeqDReflexive(t *testing.T) {
	d := inst(fact("P", s("a")))
	d1 := inst(fact("P", s("a")), fact("Q", s("a"), n()))
	if !LeqD(d, d1, d1) {
		t.Error("≤_D must be reflexive")
	}
	// The literal reading is not reflexive on instances with null
	// insertions — the discriminating wrinkle documented in DESIGN.md.
	if LeqDLiteral(d, d1, d1) {
		t.Error("literal Definition 6 is expected to be irreflexive here")
	}
}

func TestLeqDGratuitousDeletion(t *testing.T) {
	// The case where the literal reading admits a spurious repair: an
	// instance that gratuitously deletes an unrelated fact is
	// incomparable under the literal reading but dominated under ours.
	d := inst(fact("P", s("a")), fact("R", s("b")))
	good := inst(fact("P", s("a")), fact("R", s("b")), fact("Q", s("a"), n()))
	spurious := inst(fact("P", s("a")), fact("Q", s("a"), n()))
	if !LessD(d, good, spurious) {
		t.Error("good must strictly dominate the gratuitous deletion")
	}
	if LeqDLiteral(d, good, spurious) {
		t.Error("literal reading unexpectedly compares the two")
	}
}

func TestSubsetDelta(t *testing.T) {
	d := inst(fact("P", s("a")), fact("P", s("b")))
	d1 := inst(fact("P", s("a")))
	d2 := inst()
	if !SubsetDelta(d, d1, d2) || SubsetDelta(d, d2, d1) {
		t.Error("subset order broken")
	}
	if !SubsetDelta(d, d1, d1) {
		t.Error("subset order must be reflexive")
	}
}

// --- Examples 14 / 15 --------------------------------------------------------

func courseStudent() (*relational.Instance, *constraint.Set) {
	d := inst(
		fact("Course", i(21), s("C15")),
		fact("Course", i(34), s("C18")),
		fact("Student", i(21), s("Ann")),
		fact("Student", i(45), s("Paul")),
	)
	ric := &constraint.IC{
		Name: "fk",
		Body: []term.Atom{atom("Course", v("id"), v("code"))},
		Head: []term.Atom{atom("Student", v("id"), v("name"))},
	}
	return d, constraint.MustSet([]*constraint.IC{ric}, nil)
}

func TestExample15NullBasedRepairs(t *testing.T) {
	d, set := courseStudent()
	res := mustRepairs(t, d, set, Options{})
	del := inst(
		fact("Course", i(21), s("C15")),
		fact("Student", i(21), s("Ann")),
		fact("Student", i(45), s("Paul")),
	)
	add := d.Clone()
	add.Insert(fact("Student", i(34), n()))
	wantRepairSet(t, res.Repairs, []*relational.Instance{del, add})
}

func TestExample14ClassicRepairs(t *testing.T) {
	d, set := courseStudent()
	res, err := Repairs(d, set, Options{Mode: Classic})
	if err != nil {
		t.Fatal(err)
	}
	// Classic repairs: one deletion plus one insertion Student(34, µ)
	// per active-domain value µ (7 values here). The paper notes this
	// yields "a possibly infinite number of repairs" over an infinite
	// domain; restricted to the active domain we get 1 + |adom|.
	adom := d.ActiveDomain()
	if want := 1 + len(adom); len(res.Repairs) != want {
		t.Fatalf("classic repairs = %d, want %d", len(res.Repairs), want)
	}
	for _, r := range res.Repairs {
		for _, f := range relational.Diff(d, r).Added {
			if f.Args.HasNull() {
				t.Errorf("classic repair inserted a null: %v", f)
			}
		}
	}
}

// --- Example 16 --------------------------------------------------------------

func TestExample16(t *testing.T) {
	// ψ1: P(x,y) → ∃z Q(x,z); ψ2: Q(x,y) → y ≠ b (non-generic check).
	d := inst(fact("Q", s("a"), s("b")), fact("P", s("a"), s("c")))
	psi1 := &constraint.IC{
		Name: "psi1",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("Q", v("x"), v("z"))},
	}
	psi2 := &constraint.IC{
		Name: "psi2",
		Body: []term.Atom{atom("Q", v("x"), v("y"))},
		Phi:  []term.Builtin{{Op: term.NEQ, L: v("y"), R: term.CStr("b")}},
	}
	set := constraint.MustSet([]*constraint.IC{psi1, psi2}, nil)
	res := mustRepairs(t, d, set, Options{})
	// The paper lists D2 = {P(a,b), Q(a,null)}; P(a,b) is a typo for the
	// untouched original P(a,c) (consistent with Δ(D,D2) as printed).
	d1 := inst()
	d2 := inst(fact("P", s("a"), s("c")), fact("Q", s("a"), n()))
	wantRepairSet(t, res.Repairs, []*relational.Instance{d1, d2})
}

// --- Example 17 --------------------------------------------------------------

func TestExample17(t *testing.T) {
	d := inst(fact("P", s("a"), n()), fact("P", s("b"), s("c")), fact("R", s("a"), s("b")))
	ric := &constraint.IC{
		Name: "ric",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("R", v("x"), v("z"))},
	}
	set := constraint.MustSet([]*constraint.IC{ric}, nil)
	res := mustRepairs(t, d, set, Options{})
	d1 := d.Clone()
	d1.Insert(fact("R", s("b"), n()))
	d2 := inst(fact("P", s("a"), n()), fact("R", s("a"), s("b")))
	wantRepairSet(t, res.Repairs, []*relational.Instance{d1, d2})

	// D3 (insert R(b,d) instead) satisfies IC but is not a repair.
	d3 := d.Clone()
	d3.Insert(fact("R", s("b"), s("d")))
	if !nullsem.Satisfies(d3, set, nullsem.NullAware) {
		t.Fatal("D3 must satisfy the IC")
	}
	ok, err := IsRepair(d, set, d3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("D3 must not be a repair")
	}
}

// --- Example 18 (cyclic RICs, Theorem 2 decidability) ------------------------

func example18() (*relational.Instance, *constraint.Set) {
	d := inst(fact("P", s("a"), s("b")), fact("P", n(), s("a")), fact("T", s("c")))
	uic := &constraint.IC{
		Name: "uic",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("T", v("x"))},
	}
	ric := &constraint.IC{
		Name: "ric",
		Body: []term.Atom{atom("T", v("x"))},
		Head: []term.Atom{atom("P", v("y"), v("x"))},
	}
	return d, constraint.MustSet([]*constraint.IC{uic, ric}, nil)
}

func TestExample18CyclicRepairs(t *testing.T) {
	d, set := example18()
	res := mustRepairs(t, d, set, Options{})
	d1 := inst(fact("P", s("a"), s("b")), fact("P", n(), s("a")), fact("T", s("c")),
		fact("P", n(), s("c")), fact("T", s("a")))
	d2 := inst(fact("P", s("a"), s("b")), fact("P", n(), s("a")), fact("T", s("a")))
	d3 := inst(fact("P", n(), s("a")), fact("T", s("c")), fact("P", n(), s("c")))
	d4 := inst(fact("P", n(), s("a")))
	wantRepairSet(t, res.Repairs, []*relational.Instance{d1, d2, d3, d4})

	// The D5 of the example (insert T(a) and a non-null witness for
	// T(c)) satisfies IC but is dominated by D1.
	d5 := d.Clone()
	d5.Insert(fact("T", s("a")))
	d5.Insert(fact("P", s("a"), s("c")))
	if !nullsem.Satisfies(d5, set, nullsem.NullAware) {
		t.Fatal("D5 must satisfy IC")
	}
	if !LessD(d, d1, d5) {
		t.Error("D1 <_D D5 must hold")
	}
}

// --- Example 19 --------------------------------------------------------------

func example19() (*relational.Instance, *constraint.Set) {
	d := inst(
		fact("R", s("a"), s("b")),
		fact("R", s("a"), s("c")),
		fact("S", s("e"), s("f")),
		fact("S", n(), s("a")),
	)
	fd := constraint.FD("R", 2, []int{0}, []int{1})
	fk := constraint.ForeignKey("S", 2, []int{1}, "R", 2, []int{0})
	nnc := &constraint.NNC{Name: "rkey", Pred: "R", Arity: 2, Pos: 0}
	return d, constraint.MustSet(append(fd, fk), []*constraint.NNC{nnc})
}

func TestExample19Repairs(t *testing.T) {
	d, set := example19()
	if !set.NonConflicting() {
		t.Fatal("Example 19 set must be non-conflicting")
	}
	res := mustRepairs(t, d, set, Options{})
	d1 := inst(fact("R", s("a"), s("b")), fact("S", s("e"), s("f")), fact("S", n(), s("a")), fact("R", s("f"), n()))
	d2 := inst(fact("R", s("a"), s("c")), fact("S", s("e"), s("f")), fact("S", n(), s("a")), fact("R", s("f"), n()))
	d3 := inst(fact("R", s("a"), s("b")), fact("S", n(), s("a")))
	d4 := inst(fact("R", s("a"), s("c")), fact("S", n(), s("a")))
	wantRepairSet(t, res.Repairs, []*relational.Instance{d1, d2, d3, d4})
}

// --- Example 20 (conflicting NNC, Rep_d) --------------------------------------

func example20() (*relational.Instance, *constraint.Set) {
	d := inst(fact("P", s("a")), fact("P", s("b")), fact("Q", s("b"), s("c")))
	ric := &constraint.IC{
		Name: "ric",
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("Q", v("x"), v("y"))},
	}
	nnc := &constraint.NNC{Name: "qnn", Pred: "Q", Arity: 2, Pos: 1}
	return d, constraint.MustSet([]*constraint.IC{ric}, []*constraint.NNC{nnc})
}

func TestExample20ConflictingSet(t *testing.T) {
	d, set := example20()
	if set.NonConflicting() {
		t.Fatal("Example 20 set must be conflicting")
	}
	if _, err := Repairs(d, set, Options{}); err == nil {
		t.Error("Repairs must refuse a conflicting set")
	}
	res, err := RepairsD(d, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rep_d prefers the tuple-deletion repair: the arbitrary-value
	// insertions Q(a,µ) are all dominated by the (hypothetical)
	// Q(a,null) repair of IC′.
	del := inst(fact("P", s("b")), fact("Q", s("b"), s("c")))
	wantRepairSet(t, res.Repairs, []*relational.Instance{del})
}

// --- General properties -------------------------------------------------------

func TestConsistentDatabaseHasItselfAsOnlyRepair(t *testing.T) {
	d, set := example19()
	res := mustRepairs(t, d, set, Options{})
	for _, r := range res.Repairs {
		fixed := mustRepairs(t, r, set, Options{})
		if len(fixed.Repairs) != 1 || fixed.Repairs[0].Key() != r.Key() {
			t.Errorf("repair %v is not its own unique repair", r)
		}
	}
}

func TestRepairsAreConsistentAndIncomparable(t *testing.T) {
	d, set := example18()
	res := mustRepairs(t, d, set, Options{})
	for _, r := range res.Repairs {
		if !nullsem.Satisfies(r, set, nullsem.NullAware) {
			t.Errorf("repair %v inconsistent", r)
		}
	}
	for x, r1 := range res.Repairs {
		for y, r2 := range res.Repairs {
			if x != y && LessD(d, r1, r2) {
				t.Errorf("repairs comparable: %v < %v", r1, r2)
			}
		}
	}
}

func TestProposition1DomainBound(t *testing.T) {
	// adom(D') ⊆ adom(D) ∪ const(IC) ∪ {null} for every repair.
	d, set := example18()
	allowed := map[string]bool{}
	for _, c := range d.ActiveDomain() {
		allowed[c.Key()] = true
	}
	for _, c := range set.Constants() {
		allowed[c.Const.Key()] = true
	}
	res := mustRepairs(t, d, set, Options{})
	if len(res.Repairs) == 0 {
		t.Fatal("Proposition 1: repair set must be non-empty")
	}
	for _, r := range res.Repairs {
		for _, c := range r.ActiveDomain() {
			if !allowed[c.Key()] {
				t.Errorf("repair %v uses constant %v outside the Proposition 1 domain", r, c)
			}
		}
	}
}

func TestStateLimit(t *testing.T) {
	d, set := example18()
	if _, err := Repairs(d, set, Options{MaxStates: 2}); err != ErrStateLimit {
		t.Errorf("err = %v, want ErrStateLimit", err)
	}
}

func TestNNCOnlyRepair(t *testing.T) {
	d := inst(fact("R", n(), s("b")), fact("R", s("a"), s("b")))
	set := constraint.MustSet(nil, []*constraint.NNC{{Pred: "R", Arity: 2, Pos: 0}})
	res := mustRepairs(t, d, set, Options{})
	want := inst(fact("R", s("a"), s("b")))
	wantRepairSet(t, res.Repairs, []*relational.Instance{want})
}

// --- Brute-force cross-check ---------------------------------------------------

// bruteRepairs enumerates every instance over the given atom universe,
// keeps the consistent ones, and filters ≤_D-minimality — Definition 7
// executed literally. Only usable for tiny universes.
func bruteRepairs(d *relational.Instance, set *constraint.Set, universe []relational.Fact) []*relational.Instance {
	var consistent []*relational.Instance
	nAtoms := len(universe)
	for mask := 0; mask < 1<<nAtoms; mask++ {
		cand := relational.NewInstance()
		for b := 0; b < nAtoms; b++ {
			if mask&(1<<b) != 0 {
				cand.Insert(universe[b])
			}
		}
		if nullsem.Satisfies(cand, set, nullsem.NullAware) {
			consistent = append(consistent, cand)
		}
	}
	return MinimalUnder(d, consistent, LeqD)
}

// atomUniverse builds all facts for the given predicate arities over the
// constants {a, null}.
func atomUniverse() []relational.Fact {
	vals := []value.V{s("a"), n()}
	var out []relational.Fact
	for _, p := range vals {
		out = append(out, fact("P", p))
	}
	for _, x := range vals {
		for _, y := range vals {
			out = append(out, fact("R", x, y))
		}
	}
	return out
}

func bruteSets() []*constraint.Set {
	ric := &constraint.IC{
		Name: "ric",
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("R", v("x"), v("z"))},
	}
	uicBack := &constraint.IC{
		Name: "back",
		Body: []term.Atom{atom("R", v("x"), v("y"))},
		Head: []term.Atom{atom("P", v("x"))},
	}
	denial := &constraint.IC{
		Name: "den",
		Body: []term.Atom{atom("P", v("x")), atom("R", v("x"), v("x"))},
	}
	nnc := &constraint.NNC{Name: "nn", Pred: "R", Arity: 2, Pos: 0}
	return []*constraint.Set{
		constraint.MustSet([]*constraint.IC{ric}, nil),
		constraint.MustSet([]*constraint.IC{ric, uicBack}, nil), // cyclic
		constraint.MustSet([]*constraint.IC{denial}, nil),
		constraint.MustSet([]*constraint.IC{ric}, []*constraint.NNC{nnc}),
		constraint.MustSet([]*constraint.IC{uicBack, denial}, nil),
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	universe := atomUniverse()
	rng := rand.New(rand.NewSource(11))
	sets := bruteSets()
	for trial := 0; trial < 60; trial++ {
		d := relational.NewInstance()
		for _, f := range universe {
			if rng.Intn(2) == 0 {
				d.Insert(f)
			}
		}
		set := sets[trial%len(sets)]
		res, err := Repairs(d, set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		brute := bruteRepairs(d, set, universe)
		if len(res.Repairs) != len(brute) {
			t.Fatalf("trial %d (set %d, D=%v): search %d repairs %v, brute %d %v",
				trial, trial%len(sets), d, len(res.Repairs), res.Repairs, len(brute), brute)
		}
		bruteKeys := map[string]bool{}
		for _, b := range brute {
			bruteKeys[b.Key()] = true
		}
		for _, r := range res.Repairs {
			if !bruteKeys[r.Key()] {
				t.Fatalf("trial %d: search repair %v not in brute set %v", trial, r, brute)
			}
		}
	}
}

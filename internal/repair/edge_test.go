package repair

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/relational"
	"repro/internal/term"
)

func TestDisjunctiveUICRepairChoices(t *testing.T) {
	// P(x) → R(x) ∨ S(x): three ways to fix each violation.
	uic := &constraint.IC{
		Name: "u",
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("R", v("x")), atom("S", v("x"))},
	}
	set := constraint.MustSet([]*constraint.IC{uic}, nil)
	d := inst(fact("P", s("a")))
	res := mustRepairs(t, d, set, Options{})
	want := []*relational.Instance{
		inst(),
		inst(fact("P", s("a")), fact("R", s("a"))),
		inst(fact("P", s("a")), fact("S", s("a"))),
	}
	wantRepairSet(t, res.Repairs, want)
}

func TestRICWithConstantHead(t *testing.T) {
	// P(x) → ∃z Q(x, active, z): the null-padded insertion keeps the
	// constant.
	ric := &constraint.IC{
		Name: "c",
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("Q", v("x"), term.CStr("active"), v("z"))},
	}
	set := constraint.MustSet([]*constraint.IC{ric}, nil)
	d := inst(fact("P", s("a")))
	res := mustRepairs(t, d, set, Options{})
	withInsert := inst(fact("P", s("a")), fact("Q", s("a"), s("active"), n()))
	wantRepairSet(t, res.Repairs, []*relational.Instance{inst(), withInsert})
}

func TestRepeatedExistentialInsertion(t *testing.T) {
	// P(x) → ∃z Q(x,z,z): a single insertion Q(a,null,null) suffices
	// because null = null under the ordinary-constant treatment.
	ric := &constraint.IC{
		Name: "rep",
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("Q", v("x"), v("z"), v("z"))},
	}
	set := constraint.MustSet([]*constraint.IC{ric}, nil)
	d := inst(fact("P", s("a")))
	res := mustRepairs(t, d, set, Options{})
	withInsert := inst(fact("P", s("a")), fact("Q", s("a"), n(), n()))
	wantRepairSet(t, res.Repairs, []*relational.Instance{inst(), withInsert})
}

func TestEmptyDatabaseRepairsToItself(t *testing.T) {
	set := constraint.MustSet([]*constraint.IC{{
		Name: "r",
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("Q", v("x"))},
	}}, nil)
	res := mustRepairs(t, inst(), set, Options{})
	if len(res.Repairs) != 1 || res.Repairs[0].Len() != 0 {
		t.Errorf("repairs = %v", res.Repairs)
	}
	if res.StatesExplored != 1 {
		t.Errorf("states = %d, want 1", res.StatesExplored)
	}
}

func TestInterleavedNNCAndRIC(t *testing.T) {
	// An insertion into Q triggered by a RIC can itself violate an FD
	// on Q's shared position; the search must chain the fixes.
	ric := &constraint.IC{
		Name: "ric",
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("Q", v("x"), v("z"))},
	}
	// Key on Q[1]: at most one row per key.
	fd := constraint.FD("Q", 2, []int{0}, []int{1})
	set := constraint.MustSet(append([]*constraint.IC{ric}, fd...), nil)
	// Q(a,b) exists, so the RIC is satisfied and nothing fires.
	d := inst(fact("P", s("a")), fact("Q", s("a"), s("b")))
	res := mustRepairs(t, d, set, Options{})
	if len(res.Repairs) != 1 || res.Repairs[0].Key() != d.Key() {
		t.Fatalf("consistent instance must be its own repair: %v", res.Repairs)
	}
	// Remove the witness: inserting Q(a,null) does NOT violate the FD
	// (null in a relevant ϕ-position exempts), so two repairs again.
	d2 := inst(fact("P", s("a")))
	res2 := mustRepairs(t, d2, set, Options{})
	withInsert := inst(fact("P", s("a")), fact("Q", s("a"), n()))
	wantRepairSet(t, res2.Repairs, []*relational.Instance{inst(), withInsert})
}

func TestClassicModeNeverUsesNull(t *testing.T) {
	ric := &constraint.IC{
		Name: "r",
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("Q", v("x"), v("z"))},
	}
	set := constraint.MustSet([]*constraint.IC{ric}, nil)
	d := inst(fact("P", s("a")), fact("P", n()))
	res, err := Repairs(d, set, Options{Mode: Classic})
	if err != nil {
		t.Fatal(err)
	}
	// Classic insertions draw existential values from the active domain
	// only; a null may still appear in the shared position, copied from
	// the antecedent tuple P(null) (null is an ordinary constant
	// classically).
	for _, r := range res.Repairs {
		for _, f := range relational.Diff(d, r).Added {
			if f.Args[1].IsNull() {
				t.Errorf("classic repair used null for an existential position: %v in %v", f, r)
			}
		}
	}
	if len(res.Repairs) == 0 {
		t.Fatal("classic mode found no repairs")
	}
}

func TestRepairsDNonConflictingDelegates(t *testing.T) {
	d, set := example18()
	viaD, err := RepairsD(d, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct := mustRepairs(t, d, set, Options{})
	if len(viaD.Repairs) != len(direct.Repairs) {
		t.Errorf("RepairsD disagrees with Repairs on a non-conflicting set: %d vs %d",
			len(viaD.Repairs), len(direct.Repairs))
	}
}

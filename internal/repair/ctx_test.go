package repair

import (
	"context"
	"errors"
	"testing"

	"repro/internal/parser"
	"repro/internal/relational"
)

// TestEnumerateCtxCancel pins the cancellation contract for both drivers:
// cancelling the context mid-stream aborts the search with ctx.Err(), after
// strictly fewer leaves than the full enumeration delivers.
func TestEnumerateCtxCancel(t *testing.T) {
	// Eight FD-violating pairs: 2^8 = 256 repairs and a much larger state
	// space, so a cancellation fired at the first leaf always lands while
	// plenty of work remains for every driver.
	src := ""
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		src += "r(" + k + ", x). r(" + k + ", y).\n"
	}
	d := parser.MustInstance(src)
	set := parser.MustConstraints(`r(X, Y), r(X, Z) -> Y = Z.`)

	fullStats, err := Enumerate(d, set, Options{}, func(*relational.Instance) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.Leaves < 2 {
		t.Fatalf("fixture too small: %d leaves", fullStats.Leaves)
	}

	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		leaves := 0
		_, err := EnumerateCtx(ctx, d, set, Options{Workers: workers}, func(*relational.Instance) bool {
			leaves++
			cancel() // cancel mid-stream, keep yielding true
			return true
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if leaves >= fullStats.Leaves {
			t.Errorf("workers=%d: cancelled run still delivered all %d leaves", workers, leaves)
		}
	}

	// A pre-cancelled context aborts before any exploration.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RepairsCtx(ctx, d, set, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RepairsCtx err = %v, want context.Canceled", err)
	}
}

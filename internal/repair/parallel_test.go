package repair

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/nullsem"
	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

// TestParallelMatchesSequential is the tentpole differential test: for
// randomized instances and constraint sets, the parallel search (workers=4)
// must produce byte-identical Repairs and Deltas — content and order — to
// the sequential search, along with the same states-explored and leaf
// counts. Run under -race this also exercises the concurrent probes of the
// shared frozen base.
func TestParallelMatchesSequential(t *testing.T) {
	universe := atomUniverse()
	sets := bruteSets()
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		d := relational.NewInstance()
		for _, f := range universe {
			if rng.Intn(2) == 0 {
				d.Insert(f)
			}
		}
		set := sets[trial%len(sets)]
		for _, mode := range []Mode{NullBased, Classic} {
			seq, err := Repairs(d, set, Options{Mode: mode, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Repairs(d, set, Options{Mode: mode, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			// StatesExplored/Leaves are deliberately NOT asserted equal
			// here: when one content is reachable through different
			// insertion orders, the parallel race picks which overlay
			// representative enters the memo, and its iteration order can
			// steer firstViolation to a different (equally valid)
			// violation. The repair set is schedule-independent anyway —
			// every leaf set the search can produce is a consistent
			// superset of Rep(D, IC), and the antichain filters any such
			// superset to exactly Rep.
			if len(seq.Repairs) != len(par.Repairs) {
				t.Fatalf("trial %d mode %v: %d vs %d repairs", trial, mode, len(seq.Repairs), len(par.Repairs))
			}
			for i := range seq.Repairs {
				if seq.Repairs[i].Key() != par.Repairs[i].Key() {
					t.Fatalf("trial %d mode %v: repair %d differs: %v vs %v",
						trial, mode, i, seq.Repairs[i], par.Repairs[i])
				}
				if !sameDelta(seq.Deltas[i], par.Deltas[i]) {
					t.Fatalf("trial %d mode %v: delta %d differs: %v vs %v",
						trial, mode, i, seq.Deltas[i], par.Deltas[i])
				}
			}
		}
	}
}

func sameDelta(a, b relational.Delta) bool {
	if len(a.Removed) != len(b.Removed) || len(a.Added) != len(b.Added) {
		return false
	}
	for i := range a.Removed {
		if !a.Removed[i].Equal(b.Removed[i]) {
			return false
		}
	}
	for i := range a.Added {
		if !a.Added[i].Equal(b.Added[i]) {
			return false
		}
	}
	return true
}

// TestParallelChainedFixes runs the worker pool on a deeper workload — bulk
// FD violations whose fixes chain — under every worker count, pinning the
// result against the sequential baseline.
func TestParallelChainedFixes(t *testing.T) {
	d := relational.NewInstance()
	for i := 0; i < 4; i++ {
		k := value.Str(fmt.Sprintf("k%d", i))
		d.Insert(relational.F("r", k, value.Str("b")))
		d.Insert(relational.F("r", k, value.Str("c")))
	}
	for i := 0; i < 32; i++ {
		d.Insert(relational.F("r", value.Str(fmt.Sprintf("u%d", i)), value.Str("v")))
	}
	fd := constraint.MustSet(constraint.FD("r", 2, []int{0}, []int{1}), nil)
	seq, err := Repairs(d, fd, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Repairs) != 16 {
		t.Fatalf("sequential repairs = %d, want 16", len(seq.Repairs))
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := Repairs(d, fd, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		// Exact StatesExplored equality is safe to assert on this
		// workload: FD fixes are deletions only, and deletion-only states
		// iterate in base order regardless of the path that produced
		// them, so expansion is content-determined.
		if par.StatesExplored != seq.StatesExplored || len(par.Repairs) != len(seq.Repairs) {
			t.Fatalf("workers=%d: %d states / %d repairs, want %d / %d",
				workers, par.StatesExplored, len(par.Repairs), seq.StatesExplored, len(seq.Repairs))
		}
		for i := range seq.Repairs {
			if seq.Repairs[i].Key() != par.Repairs[i].Key() {
				t.Fatalf("workers=%d: repair %d differs", workers, i)
			}
		}
	}
}

// example17RIC is the referential constraint of Example 17:
// P(x,y) → ∃z R(x,z).
func example17RIC() *constraint.Set {
	return constraint.MustSet([]*constraint.IC{{
		Name: "ric",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("R", v("x"), v("z"))},
	}}, nil)
}

// TestEnumerateStreams checks the streaming contract: leaves arrive one at a
// time, feeding them to an Antichain reproduces Repairs exactly, and
// cancelling mid-stream stops the sequential search before it admits
// further states.
func TestEnumerateStreams(t *testing.T) {
	d, set := example18()
	full := mustRepairs(t, d, set, Options{})

	ac := NewAntichain(d, NullBased)
	var leaves int
	stats, err := Enumerate(d, set, Options{}, func(leaf *relational.Instance) bool {
		if !nullsem.Satisfies(leaf, set, nullsem.NullAware) {
			t.Fatalf("streamed leaf %v is not consistent", leaf)
		}
		leaves++
		ac.Add(leaf)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if leaves != full.Leaves || stats.Leaves != full.Leaves || stats.StatesExplored != full.StatesExplored {
		t.Fatalf("stream stats %+v with %d yields, want %d leaves / %d states",
			stats, leaves, full.Leaves, full.StatesExplored)
	}
	repairs, deltas := ac.Results()
	if len(repairs) != len(full.Repairs) || len(deltas) != len(repairs) {
		t.Fatalf("antichain kept %d repairs, want %d", len(repairs), len(full.Repairs))
	}
	for i := range repairs {
		if repairs[i].Key() != full.Repairs[i].Key() {
			t.Fatalf("antichain repair %d differs from Repairs", i)
		}
	}

	// Cancelling after the first leaf stops a sequential search cold.
	stats, err = Enumerate(d, set, Options{}, func(*relational.Instance) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leaves != 1 {
		t.Fatalf("cancelled stream yielded %d leaves, want 1", stats.Leaves)
	}
	if stats.StatesExplored >= full.StatesExplored {
		t.Fatalf("cancelled stream explored %d states, full search %d — no short-circuit",
			stats.StatesExplored, full.StatesExplored)
	}
}

// TestAntichainMatchesMinimalUnder cross-checks the online filter against
// the batch MinimalUnder on random candidate streams in random arrival
// orders.
func TestAntichainMatchesMinimalUnder(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		d := randomSmallInstance(rng)
		var candidates []*relational.Instance
		seen := map[string]bool{}
		for k := 0; k < 1+rng.Intn(7); k++ {
			c := randomSmallInstance(rng)
			if seen[c.Key()] {
				continue // the search never emits duplicate leaves
			}
			seen[c.Key()] = true
			candidates = append(candidates, c)
		}
		want := MinimalUnder(d, candidates, LeqD)
		wantKeys := map[string]bool{}
		for _, w := range want {
			wantKeys[w.Key()] = true
		}
		ac := NewAntichain(d, NullBased)
		for _, i := range rng.Perm(len(candidates)) {
			ac.Add(candidates[i])
		}
		got, _ := ac.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: antichain kept %d, MinimalUnder %d\nD=%v\ncands=%v",
				trial, len(got), len(want), d, candidates)
		}
		for _, g := range got {
			if !wantKeys[g.Key()] {
				t.Fatalf("trial %d: antichain kept %v, not minimal per MinimalUnder", trial, g)
			}
		}
		if ac.MinimalCount() != len(want) {
			t.Fatalf("trial %d: MinimalCount %d, want %d", trial, ac.MinimalCount(), len(want))
		}
	}
}

// TestConfirmMinimal pins the certificate on Example 17: both true repairs
// are confirmed, while the consistent-but-dominated D3 is not (its
// null-generalized pool contains the dominating R(b,null) insertion).
func TestConfirmMinimal(t *testing.T) {
	d := inst(fact("P", s("a"), n()), fact("P", s("b"), s("c")), fact("R", s("a"), s("b")))
	set := example17RIC()
	res := mustRepairs(t, d, set, Options{})
	if len(res.Repairs) != 2 {
		t.Fatalf("repairs = %d, want 2", len(res.Repairs))
	}
	for _, r := range res.Repairs {
		if !ConfirmMinimal(d, r, set, Options{}) {
			t.Errorf("true repair %v not confirmed minimal", r)
		}
	}
	d3 := d.Clone()
	d3.Insert(fact("R", s("b"), s("d")))
	if ConfirmMinimal(d, d3, set, Options{}) {
		t.Error("dominated D3 must not be confirmed minimal")
	}
}

// TestIsRepairParallel re-runs the Example 17 membership checks through the
// short-circuiting IsRepair under both worker counts.
func TestIsRepairParallel(t *testing.T) {
	d := inst(fact("P", s("a"), n()), fact("P", s("b"), s("c")), fact("R", s("a"), s("b")))
	set := example17RIC()
	d1 := d.Clone()
	d1.Insert(fact("R", s("b"), n()))
	d3 := d.Clone()
	d3.Insert(fact("R", s("b"), s("d")))
	inconsistent := inst(fact("P", s("b"), s("c")))
	for _, workers := range []int{1, 4} {
		opts := Options{Workers: workers}
		for _, tc := range []struct {
			cand *relational.Instance
			want bool
		}{{d1, true}, {d3, false}, {inconsistent, false}} {
			got, err := IsRepair(d, set, tc.cand, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("workers=%d: IsRepair(%v) = %v, want %v", workers, tc.cand, got, tc.want)
			}
		}
	}
}

package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/value"
)

// TestProgramEngineStreamDifferential is the tentpole invariant for the
// stable-model engine: on randomized workloads, the program engines'
// streaming answers — cautious (ConsistentAnswers) and brave
// (PossibleAnswers), with the boolean short-circuit in play and with it
// sidestepped by full materialization — agree with the direct search
// engine, and the program-engine repair sets are byte-identical to the
// search-engine repair sets at every stable worker count.
func TestProgramEngineStreamDifferential(t *testing.T) {
	sets := []*constraint.Set{
		parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`),
		parser.MustConstraints(`
			r(X, Y), r(X, Z) -> Y = Z.
			s(U, V) -> r(V, W).
		`),
		parser.MustConstraints(`
			p(X) -> q(X) | t(X).
			q(X), t(X) -> false.
		`),
	}
	queries := [][]string{
		{`q(Id) :- student(Id, Name).`, `q :- course(21, c15).`, `q :- student(45, "Paul").`},
		{`q(V) :- s(U, V).`, `q(X, Y) :- r(X, Y).`, `q :- r(a, b).`},
		{`q(X) :- p(X), not t(X).`, `q :- t(a).`, `q :- p(a).`},
	}
	rng := rand.New(rand.NewSource(404))
	vals := []value.V{value.Str("a"), value.Str("b"), value.Null(), value.Int(21)}
	pick := func() value.V { return vals[rng.Intn(len(vals))] }

	gen := func(si int) *relational.Instance {
		d := relational.NewInstance()
		switch si {
		case 0:
			d.Insert(relational.F("course", value.Int(21), value.Str("c15")))
			for k := 0; k < rng.Intn(3); k++ {
				d.Insert(relational.F("course", pick(), pick()))
			}
			for k := 0; k < rng.Intn(3); k++ {
				d.Insert(relational.F("student", pick(), pick()))
			}
		case 1:
			for k := 0; k < 1+rng.Intn(3); k++ {
				d.Insert(relational.F("r", pick(), pick()))
			}
			for k := 0; k < rng.Intn(3); k++ {
				d.Insert(relational.F("s", pick(), pick()))
			}
		case 2:
			for k := 0; k < 1+rng.Intn(3); k++ {
				d.Insert(relational.F("p", pick()))
			}
			for k := 0; k < rng.Intn(2); k++ {
				d.Insert(relational.F("q", pick()))
			}
			for k := 0; k < rng.Intn(2); k++ {
				d.Insert(relational.F("t", pick()))
			}
		}
		return d
	}

	workerCounts := []int{1, 4}
	trials := 0
	for round := 0; round < 10; round++ {
		for si, set := range sets {
			d := gen(si)
			trials++

			// Repairs: search baseline vs program engine per worker count,
			// byte-identical content and order.
			searchRes, err := repair.Repairs(d, set, repair.Options{})
			if err != nil {
				t.Fatalf("search repairs failed on D=%v, set %d: %v", d, si, err)
			}
			for _, workers := range workerCounts {
				opts := NewOptions()
				opts.Engine = EngineProgram
				opts.Stable.Workers = workers
				progRepairs, err := RepairsOf(d, set, opts)
				if err != nil {
					t.Fatalf("program repairs failed on D=%v, set %d, workers=%d: %v", d, si, workers, err)
				}
				if len(progRepairs) != len(searchRes.Repairs) {
					t.Fatalf("repair counts differ on D=%v, set %d, workers=%d: search %d, program %d",
						d, si, workers, len(searchRes.Repairs), len(progRepairs))
				}
				for i := range progRepairs {
					if !progRepairs[i].Equal(searchRes.Repairs[i]) {
						t.Fatalf("repair %d differs on D=%v, set %d, workers=%d:\nsearch:  %v\nprogram: %v",
							i, d, si, workers, searchRes.Repairs[i], progRepairs[i])
					}
				}
			}

			for _, qsrc := range queries[si] {
				q := parser.MustQuery(qsrc)
				base, err := ConsistentAnswers(d, set, q, NewOptions())
				if err != nil {
					t.Fatalf("search answers failed on D=%v, set %d, q=%q: %v", d, si, qsrc, err)
				}
				baseBrave, err := PossibleAnswers(d, set, q, NewOptions())
				if err != nil {
					t.Fatalf("search possible answers failed on D=%v, set %d, q=%q: %v", d, si, qsrc, err)
				}
				// The short-circuit-free reference: evaluate the query on
				// every materialized repair.
				refBool := true
				if q.IsBoolean() {
					for _, r := range searchRes.Repairs {
						holds, err := query.EvalBool(r, q)
						if err != nil {
							t.Fatal(err)
						}
						refBool = refBool && holds
					}
				}

				for _, engine := range []Engine{EngineProgram, EngineProgramCautious} {
					for _, workers := range workerCounts {
						opts := NewOptions()
						opts.Engine = engine
						opts.Stable.Workers = workers
						got, err := ConsistentAnswers(d, set, q, opts)
						if err != nil {
							t.Fatalf("%v failed on D=%v, set %d, q=%q, workers=%d: %v", engine, d, si, qsrc, workers, err)
						}
						if err := sameAnswer(base, got, q); err != nil {
							t.Fatalf("engines disagree on D=%v, set %d, q=%q, workers=%d: %v\nsearch: %+v\n%v: %+v",
								d, si, qsrc, err, workers, base, engine, got)
						}
						if q.IsBoolean() {
							if got.Boolean != refBool {
								t.Fatalf("streaming boolean %v != materialized %v on D=%v, set %d, q=%q",
									got.Boolean, refBool, d, si, qsrc)
							}
							if got.ShortCircuited && got.Boolean {
								t.Fatalf("short-circuit with a certain yes on D=%v, set %d, q=%q", d, si, qsrc)
							}
						}
						brave, err := PossibleAnswers(d, set, q, opts)
						if err != nil {
							t.Fatalf("%v possible answers failed on D=%v, set %d, q=%q: %v", engine, d, si, qsrc, err)
						}
						if err := sameTuples(baseBrave, brave); err != nil {
							t.Fatalf("possible answers disagree (%v, workers=%d) on D=%v, set %d, q=%q: %v\nsearch: %v\nprogram: %v",
								engine, workers, d, si, qsrc, err, baseBrave, brave)
						}
					}
				}
			}
		}
	}
	if trials < 30 {
		t.Fatalf("only %d differential trials executed", trials)
	}
}

func sameTuples(a, b []relational.Tuple) error {
	if len(a) != len(b) {
		return fmt.Errorf("tuple counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return fmt.Errorf("tuple %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}

// TestProgramBooleanShortCircuit mirrors the PR 2 search-engine regression
// for the program engines: a refuted boolean query stops the stable-model
// stream before all repairs are seen, a certain yes pays for the full
// enumeration.
func TestProgramBooleanShortCircuit(t *testing.T) {
	d, setSrc := violatingCourses(5)
	set := parser.MustConstraints(setSrc)
	full, err := repair.Repairs(d, set, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Repairs) < 8 {
		t.Fatalf("workload too small: %d repairs", len(full.Repairs))
	}

	refuted := parser.MustQuery(`q :- course(34, c18).`)
	certain := parser.MustQuery(`q :- student(21, "Ann").`)
	for _, engine := range []Engine{EngineProgram, EngineProgramCautious} {
		opts := NewOptions()
		opts.Engine = engine
		ans, err := ConsistentAnswers(d, set, refuted, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Boolean || !ans.ShortCircuited {
			t.Errorf("%v: refuted answer = %+v, want short-circuited no", engine, ans)
		}
		if ans.NumRepairs >= len(full.Repairs) {
			t.Errorf("%v: short-circuit saw %d repairs of %d — no early cancellation",
				engine, ans.NumRepairs, len(full.Repairs))
		}
		ans, err = ConsistentAnswers(d, set, certain, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !ans.Boolean || ans.ShortCircuited {
			t.Errorf("%v: certain answer = %+v, want non-short-circuited yes", engine, ans)
		}
		if ans.NumRepairs != len(full.Repairs) {
			t.Errorf("%v: certain yes saw %d repairs, want all %d", engine, ans.NumRepairs, len(full.Repairs))
		}
	}
}

// TestStableWorkersMatchSequentialAnswers pins cmd/cqa's -workers contract
// one level down: answers and repair listings from the program engines are
// identical for every stable worker count, including under cancellation
// (boolean short-circuits).
func TestStableWorkersMatchSequentialAnswers(t *testing.T) {
	d, setSrc := violatingCourses(4)
	set := parser.MustConstraints(setSrc)
	qs := []*query.Q{
		parser.MustQuery(`q(Id) :- student(Id, Name).`),
		parser.MustQuery(`q :- course(34, c18).`),
		parser.MustQuery(`q :- student(21, "Ann").`),
	}
	for _, engine := range []Engine{EngineProgram, EngineProgramCautious} {
		for _, q := range qs {
			seqOpts := NewOptions()
			seqOpts.Engine = engine
			seq, err := ConsistentAnswers(d, set, q, seqOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				parOpts := NewOptions()
				parOpts.Engine = engine
				parOpts.Stable.Workers = workers
				par, err := ConsistentAnswers(d, set, q, parOpts)
				if err != nil {
					t.Fatal(err)
				}
				// The model stream is deterministic, so even the
				// diagnostics must match exactly.
				if seq.Boolean != par.Boolean || seq.NumRepairs != par.NumRepairs ||
					seq.ShortCircuited != par.ShortCircuited || len(seq.Tuples) != len(par.Tuples) {
					t.Fatalf("%v workers=%d diverges on %v:\nseq: %+v\npar: %+v", engine, workers, q, seq, par)
				}
			}
		}
	}
}
